let split p =
  if p = "/" || p = "" then []
  else String.split_on_char '/' (String.sub p 1 (String.length p - 1))

let validate p =
  let len = String.length p in
  if len = 0 || p.[0] <> '/' then Error Zerror.ZBADARGUMENTS
  else if p = "/" then Ok ()
  else if p.[len - 1] = '/' then Error Zerror.ZBADARGUMENTS
  else
    let ok_component c = c <> "" && c <> "." && c <> ".." in
    if List.for_all ok_component (split p) then Ok ()
    else Error Zerror.ZBADARGUMENTS

let join = function
  | [] -> "/"
  | comps -> "/" ^ String.concat "/" comps

let parent p =
  match String.rindex_opt p '/' with
  | None | Some 0 -> "/"
  | Some i -> String.sub p 0 i

let basename p =
  match String.rindex_opt p '/' with
  | None -> p
  | Some i -> String.sub p (i + 1) (String.length p - i - 1)

let concat dir name = if dir = "/" then "/" ^ name else dir ^ "/" ^ name

let depth p = List.length (split p)

let sequential_name base counter = Printf.sprintf "%s%010d" base counter
