(** ZooKeeper-style error codes returned by the coordination service. *)

type t =
  | ZNONODE                    (** node does not exist *)
  | ZNODEEXISTS                (** node already exists *)
  | ZNOTEMPTY                  (** node has children *)
  | ZBADVERSION                (** version check failed *)
  | ZNOCHILDRENFOREPHEMERALS   (** ephemeral nodes cannot have children *)
  | ZBADARGUMENTS              (** malformed path or arguments *)
  | ZCONNECTIONLOSS            (** server unreachable / request lost *)
  | ZSESSIONEXPIRED            (** session timed out *)
  | ZOPERATIONTIMEOUT          (** no reply within the deadline *)

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
