(** Resident-memory model for a ZooKeeper server process (Fig. 11).

    The server is a JVM: its resident size is a baseline (JVM runtime,
    code, thread stacks, request buffers) plus the znode database, whose
    heap footprint exceeds the raw payload by a boxing/GC factor. The
    constants are tuned so that one million DUFS-sized znodes cost
    ~417 MB, the figure measured in the paper (§V-E). *)

(** JVM baseline: heap headroom + runtime, before any znode exists. *)
let jvm_baseline_bytes = 64 * 1024 * 1024

(** Java object-header / boxing / GC overhead multiplier on the raw
    znode-tree bytes reported by {!Ztree.resident_bytes}. *)
let java_heap_factor = 1.94

let server_resident_bytes tree =
  jvm_baseline_bytes
  + int_of_float (java_heap_factor *. float_of_int (Ztree.resident_bytes tree))

let to_mib bytes = float_of_int bytes /. (1024. *. 1024.)
