(** Classic ZooKeeper coordination recipes built on the client API —
    demonstrating that the substrate supports the standard patterns
    (locks, counters, barriers) that "higher level services for
    synchronization" (§II-C) are built from.

    Blocking variants park the calling simulation process on a watch, so
    they require an {!Ensemble}-backed handle inside a process. The
    non-blocking variants work on any handle, including {!Zk_local}. *)

module Lock : sig
  type t

  (** [try_acquire handle ~path] attempts the lock rooted at [path]
      (created if absent): creates an ephemeral sequential member node
      and succeeds iff it is the lowest sequence. On failure the member
      node is removed. Non-blocking; works on any handle. *)
  val try_acquire : Zk_client.handle -> path:string -> (t option, Zerror.t) result

  (** [acquire handle ~path] blocks (watch on the predecessor member)
      until the lock is held. Simulation-process context only. *)
  val acquire : Zk_client.handle -> path:string -> (t, Zerror.t) result

  val release : t -> (unit, Zerror.t) result

  (** The znode this holder owns (for tests). *)
  val member_path : t -> string
end

module Counter : sig
  (** [increment handle ~path ?by ()] — atomic add via version-checked
      read-modify-write with retry; creates the node at 0 if missing.
      Returns the new value. *)
  val increment : Zk_client.handle -> path:string -> ?by:int -> unit -> (int, Zerror.t) result

  val read : Zk_client.handle -> path:string -> (int, Zerror.t) result
end

module Double_barrier : sig
  (** [enter handle ~path ~parties] — register and block until [parties]
      processes have entered. Returns this process's member znode, to be
      passed to [leave]. Simulation-process context only. *)
  val enter :
    Zk_client.handle -> path:string -> parties:int -> (string, Zerror.t) result

  (** [leave handle ~path ~member] — remove our registration and block
      until everyone has left. *)
  val leave : Zk_client.handle -> path:string -> member:string -> (unit, Zerror.t) result
end
