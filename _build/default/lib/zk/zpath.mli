(** Znode path algebra.

    Znode paths are absolute, '/'-separated, with no trailing slash, no
    empty components and no ["."] / [".."] components — the rules the
    ZooKeeper server enforces. *)

(** [validate p] is [Ok ()] iff [p] is a legal znode path. ["/"] is legal
    (the root). *)
val validate : string -> (unit, Zerror.t) result

val split : string -> string list
val join : string list -> string
val parent : string -> string
val basename : string -> string
val concat : string -> string -> string
val depth : string -> int

(** [sequential_name base counter] appends the 10-digit zero-padded
    counter ZooKeeper uses for sequential znodes, e.g.
    [sequential_name "lock-" 7 = "lock-0000000007"]. *)
val sequential_name : string -> int -> string
