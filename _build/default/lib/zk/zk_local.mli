(** Single-process, immediate-mode coordination service.

    Functionally identical to a one-server {!Ensemble} but with no
    simulator in the loop: every call executes synchronously against one
    {!Ztree}. Used by unit tests, the examples, and the Fig. 11 memory
    experiment (where only state size matters, not timing). *)

type t

val create : ?clock:(unit -> float) -> unit -> t

(** Open a session. Ephemeral nodes created through it are deleted by
    [close]. *)
val session : t -> Zk_client.handle

val tree : t -> Ztree.t

(** Modelled resident size of the (single) server process. *)
val server_resident_bytes : t -> int
