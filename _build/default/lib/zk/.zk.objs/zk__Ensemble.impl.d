lib/zk/ensemble.ml: Array Float Hashtbl Int64 List Memory_model Result Seq Simkit Txn Zerror Zk_client Ztree
