lib/zk/zk_local.mli: Zk_client Ztree
