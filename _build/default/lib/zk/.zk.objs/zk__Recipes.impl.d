lib/zk/recipes.ml: List Result Simkit String Zerror Zk_client Zpath Ztree
