lib/zk/zk_client.mli: Txn Zerror Ztree
