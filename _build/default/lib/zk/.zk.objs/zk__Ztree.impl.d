lib/zk/ztree.ml: Buffer Hashtbl Int64 List Option Printf String Txn Zerror Zpath
