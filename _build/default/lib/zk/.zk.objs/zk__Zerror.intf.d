lib/zk/zerror.mli: Format
