lib/zk/zpath.ml: List Printf String Zerror
