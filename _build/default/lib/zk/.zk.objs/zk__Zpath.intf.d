lib/zk/zpath.mli: Zerror
