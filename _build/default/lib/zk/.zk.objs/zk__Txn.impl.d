lib/zk/txn.ml: Format List String
