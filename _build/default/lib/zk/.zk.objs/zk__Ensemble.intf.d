lib/zk/ensemble.mli: Simkit Zk_client Ztree
