lib/zk/memory_model.ml: Ztree
