lib/zk/ztree.mli: Txn Zerror
