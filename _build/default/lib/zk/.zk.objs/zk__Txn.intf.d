lib/zk/txn.mli: Format
