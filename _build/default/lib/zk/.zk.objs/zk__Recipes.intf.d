lib/zk/recipes.mli: Zerror Zk_client
