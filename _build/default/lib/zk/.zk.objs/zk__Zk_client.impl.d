lib/zk/zk_client.ml: Txn Zerror Ztree
