lib/zk/zerror.ml: Format
