lib/zk/zk_local.ml: Int64 List Memory_model Result Txn Zerror Zk_client Ztree
