type op =
  | Create of {
      path : string;
      data : string;
      ephemeral_owner : int64;
      sequential : bool;
    }
  | Delete of { path : string; expected_version : int }
  | Set_data of { path : string; data : string; expected_version : int }
  | Check of { path : string; expected_version : int }

type t = op list

type result_item =
  | Created of string
  | Deleted
  | Data_set
  | Checked

let op_path = function
  | Create { path; _ } | Delete { path; _ } | Set_data { path; _ } | Check { path; _ }
    -> path

let op_wire_size = function
  | Create { path; data; _ } -> 32 + String.length path + String.length data
  | Delete { path; _ } -> 24 + String.length path
  | Set_data { path; data; _ } -> 28 + String.length path + String.length data
  | Check { path; _ } -> 24 + String.length path

let wire_size t = List.fold_left (fun acc op -> acc + op_wire_size op) 16 t

let pp_op fmt = function
  | Create { path; sequential; ephemeral_owner; _ } ->
    Format.fprintf fmt "create%s%s %s"
      (if sequential then "/seq" else "")
      (if ephemeral_owner <> 0L then "/eph" else "")
      path
  | Delete { path; expected_version } ->
    Format.fprintf fmt "delete %s v%d" path expected_version
  | Set_data { path; expected_version; _ } ->
    Format.fprintf fmt "set %s v%d" path expected_version
  | Check { path; expected_version } ->
    Format.fprintf fmt "check %s v%d" path expected_version

let pp fmt t =
  Format.fprintf fmt "[%a]" (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f "; ") pp_op) t
