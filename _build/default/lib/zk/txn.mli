(** Replicated transactions — the unit ZAB agrees on and every replica
    applies deterministically, in zxid order.

    A transaction is a list of operations applied atomically
    (all-or-nothing), which covers both single client calls and the
    multi-op updates DUFS uses for rename. *)

type op =
  | Create of {
      path : string;
      data : string;
      ephemeral_owner : int64;  (** 0 for persistent nodes *)
      sequential : bool;
    }
  | Delete of { path : string; expected_version : int }  (** -1 = any *)
  | Set_data of { path : string; data : string; expected_version : int }
  | Check of { path : string; expected_version : int }
      (** version guard used inside multi-transactions *)

type t = op list

type result_item =
  | Created of string  (** actual path (sequential suffix resolved) *)
  | Deleted
  | Data_set
  | Checked

(** Path touched by an op (the requested path, pre-sequential-suffix). *)
val op_path : op -> string

(** Approximate wire size in bytes, for network cost modelling. *)
val wire_size : t -> int

val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> t -> unit
