lib/scenarios/systems.ml: Array Dufs Fuselike Hashtbl Int64 Mdtest Pfs Printf Simkit Zk
