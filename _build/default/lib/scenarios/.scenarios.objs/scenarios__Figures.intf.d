lib/scenarios/figures.mli:
