lib/scenarios/figures.ml: Array Dufs Fun Fuselike Gigaplus Int64 List Mdtest Pfs Printf Simkit Systems Zk
