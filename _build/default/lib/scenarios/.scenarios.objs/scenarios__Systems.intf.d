lib/scenarios/systems.mli: Mdtest Zk
