(** Measurement helpers: counters, online summaries and latency histograms. *)

module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val reset : t -> unit
end

(** Online mean / min / max / variance (Welford). *)
module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val min : t -> float
  val max : t -> float
  val stddev : t -> float
end

(** Fixed-bucket log-scale latency histogram with quantile estimation. *)
module Histogram : sig
  type t

  (** [create ~lo ~hi ~buckets ()] covers [lo, hi] seconds with
      logarithmically spaced buckets; out-of-range samples clamp.
      @raise Invalid_argument unless [0 < lo < hi] and [buckets > 0]. *)
  val create : lo:float -> hi:float -> buckets:int -> unit -> t

  val add : t -> float -> unit
  val count : t -> int

  (** [quantile t q] for q in [0,1]; 0. when empty. *)
  val quantile : t -> float -> float
end

(** Throughput over an interval of the virtual clock. *)
module Throughput : sig
  type t

  val start : at:float -> t
  val record : t -> unit
  val record_n : t -> int -> unit
  val ops : t -> int

  (** Completed operations per second between [start] and [now].
      0. if no time has elapsed. *)
  val rate : t -> now:float -> float
end
