exception Process_failure of exn

type _ Effect.t +=
  | Sleep : float -> unit Effect.t
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t
  | Self_engine : Engine.t Effect.t

let spawn eng f =
  let open Effect.Deep in
  let handler =
    { retc = (fun () -> ());
      exnc = (fun e -> raise (Process_failure e));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sleep d ->
            Some
              (fun (k : (a, unit) continuation) ->
                Engine.schedule eng ~delay:d (fun () -> continue k ()))
          | Suspend register ->
            Some
              (fun (k : (a, unit) continuation) ->
                let resumed = ref false in
                let resume v =
                  if !resumed then invalid_arg "Process: double resume";
                  resumed := true;
                  Engine.schedule eng ~delay:0. (fun () -> continue k v)
                in
                register resume)
          | Self_engine -> Some (fun (k : (a, unit) continuation) -> continue k eng)
          | _ -> None) }
  in
  Engine.schedule eng ~delay:0. (fun () -> match_with f () handler)

let sleep d = Effect.perform (Sleep d)
let suspend register = Effect.perform (Suspend register)
let suspend_v register = Effect.perform (Suspend register)
let engine () = Effect.perform Self_engine
let now () = Engine.now (engine ())
