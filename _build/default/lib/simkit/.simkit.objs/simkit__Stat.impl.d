lib/simkit/stat.ml: Array Float Stdlib
