lib/simkit/rng.mli:
