lib/simkit/resource.mli:
