lib/simkit/gate.mli:
