lib/simkit/rng.ml: Array Int64
