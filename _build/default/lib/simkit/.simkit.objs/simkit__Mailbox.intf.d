lib/simkit/mailbox.mli:
