lib/simkit/mailbox.ml: Process Queue
