lib/simkit/gate.ml: Process Queue
