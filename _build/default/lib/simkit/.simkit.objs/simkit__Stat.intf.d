lib/simkit/stat.mli:
