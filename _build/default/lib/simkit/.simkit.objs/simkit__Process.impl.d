lib/simkit/process.ml: Effect Engine
