lib/simkit/resource.ml: Process Queue
