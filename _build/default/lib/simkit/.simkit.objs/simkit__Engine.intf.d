lib/simkit/engine.mli:
