lib/simkit/engine.ml: Array Float Printf
