(** Discrete-event simulation engine.

    An engine owns a virtual clock and a pending-event queue. Events are
    executed in nondecreasing timestamp order; events with equal timestamps
    run in scheduling (FIFO) order, which makes every simulation
    deterministic for a fixed seed. *)

type t

val create : unit -> t

(** [now t] is the current virtual time, in seconds. *)
val now : t -> float

(** [schedule t ~delay f] runs [f] at time [now t +. delay].
    @raise Invalid_argument if [delay] is negative or not finite. *)
val schedule : t -> delay:float -> (unit -> unit) -> unit

(** [schedule_at t ~time f] runs [f] at absolute time [time].
    @raise Invalid_argument if [time] is in the past. *)
val schedule_at : t -> time:float -> (unit -> unit) -> unit

(** [run t] executes events until the queue is empty or [stop] is called.
    [until] bounds the virtual clock: events scheduled strictly after
    [until] remain pending and the clock is left at [until]. *)
val run : ?until:float -> t -> unit

(** [stop t] makes [run] return after the currently executing event. *)
val stop : t -> unit

(** Number of events executed since [create]. *)
val executed_events : t -> int

(** Number of events currently pending. *)
val pending_events : t -> int
