type event = { time : float; seq : int; run : unit -> unit }

type t = {
  mutable now : float;
  mutable heap : event array;
  mutable size : int;
  mutable seq : int;
  mutable stopped : bool;
  mutable executed : int;
}

let dummy_event = { time = 0.; seq = 0; run = ignore }

let create () =
  { now = 0.;
    heap = Array.make 256 dummy_event;
    size = 0;
    seq = 0;
    stopped = false;
    executed = 0 }

let now t = t.now
let executed_events t = t.executed
let pending_events t = t.size
let stop t = t.stopped <- true

(* Min-heap ordered by (time, seq): earliest time first, FIFO on ties. *)
let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let heap = Array.make (2 * Array.length t.heap) dummy_event in
  Array.blit t.heap 0 heap 0 t.size;
  t.heap <- heap

let push t ev =
  if t.size = Array.length t.heap then grow t;
  let heap = t.heap in
  let i = ref t.size in
  t.size <- t.size + 1;
  heap.(!i) <- ev;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if earlier heap.(!i) heap.(parent) then begin
      let tmp = heap.(parent) in
      heap.(parent) <- heap.(!i);
      heap.(!i) <- tmp;
      i := parent
    end else continue := false
  done

let pop t =
  assert (t.size > 0);
  let heap = t.heap in
  let top = heap.(0) in
  t.size <- t.size - 1;
  heap.(0) <- heap.(t.size);
  heap.(t.size) <- dummy_event;
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && earlier heap.(l) heap.(!smallest) then smallest := l;
    if r < t.size && earlier heap.(r) heap.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = heap.(!smallest) in
      heap.(!smallest) <- heap.(!i);
      heap.(!i) <- tmp;
      i := !smallest
    end else continue := false
  done;
  top

let schedule_at t ~time run =
  if not (Float.is_finite time) || time < t.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is before now %g" time t.now);
  let seq = t.seq in
  t.seq <- seq + 1;
  push t { time; seq; run }

let schedule t ~delay run =
  if not (Float.is_finite delay) || delay < 0. then
    invalid_arg (Printf.sprintf "Engine.schedule: bad delay %g" delay);
  schedule_at t ~time:(t.now +. delay) run

let run ?until t =
  t.stopped <- false;
  let horizon = match until with None -> Float.infinity | Some u -> u in
  let continue = ref true in
  while !continue && not t.stopped && t.size > 0 do
    if t.heap.(0).time > horizon then continue := false
    else begin
      let ev = pop t in
      t.now <- ev.time;
      t.executed <- t.executed + 1;
      ev.run ()
    end
  done;
  (match until with
   | Some u when t.now < u -> t.now <- u
   | Some _ | None -> ())
