type t = {
  capacity : int;
  mutable in_use : int;
  waiters : (unit -> unit) Queue.t;
}

let create ~capacity () =
  if capacity < 1 then invalid_arg "Resource.create: capacity < 1";
  { capacity; in_use = 0; waiters = Queue.create () }

let capacity t = t.capacity
let in_use t = t.in_use
let queue_length t = Queue.length t.waiters

let acquire t =
  if t.in_use < t.capacity then t.in_use <- t.in_use + 1
  else
    (* The releaser transfers its slot directly to us, so [in_use] is not
       decremented on hand-off; see [release]. *)
    Process.suspend (fun resume -> Queue.push resume t.waiters)

let release t =
  if t.in_use <= 0 then invalid_arg "Resource.release: not held";
  match Queue.take_opt t.waiters with
  | Some resume -> resume ()
  | None -> t.in_use <- t.in_use - 1

let with_slot t f =
  acquire t;
  match f () with
  | v -> release t; v
  | exception e -> release t; raise e

let serve t d = with_slot t (fun () -> Process.sleep d)
