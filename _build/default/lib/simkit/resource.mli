(** FIFO k-server resources (queueing stations) for simulation processes.

    A resource with capacity [k] admits at most [k] concurrent holders;
    further acquirers park in FIFO order. This models service centers such
    as a metadata server's request threads or a per-directory lock. *)

type t

(** [create ~capacity ()] makes a resource with [capacity] servers.
    @raise Invalid_argument if [capacity < 1]. *)
val create : capacity:int -> unit -> t

val capacity : t -> int

(** Number of slots currently held. *)
val in_use : t -> int

(** Number of processes parked waiting for a slot. *)
val queue_length : t -> int

(** Acquire one slot, parking FIFO if none is free. Process context only. *)
val acquire : t -> unit

(** Release one slot previously acquired; wakes the oldest waiter, if any.
    @raise Invalid_argument if the resource is not held. *)
val release : t -> unit

(** [with_slot t f] = acquire; [f ()]; release — exception safe. *)
val with_slot : t -> (unit -> 'a) -> 'a

(** [serve t d] models one service visit: acquire a slot, hold it for [d]
    seconds of virtual time, release. *)
val serve : t -> float -> unit
