module Counter = struct
  type t = { mutable value : int }

  let create () = { value = 0 }
  let incr t = t.value <- t.value + 1
  let add t n = t.value <- t.value + n
  let value t = t.value
  let reset t = t.value <- 0
end

module Summary = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () =
    { count = 0; mean = 0.; m2 = 0.; min = Float.infinity; max = Float.neg_infinity }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count
  let mean t = if t.count = 0 then 0. else t.mean
  let min t = if t.count = 0 then 0. else t.min
  let max t = if t.count = 0 then 0. else t.max

  let stddev t =
    if t.count < 2 then 0. else sqrt (t.m2 /. float_of_int (t.count - 1))
end

module Histogram = struct
  type t = {
    lo : float;
    log_lo : float;
    log_step : float;
    buckets : int array;
    mutable count : int;
  }

  let create ~lo ~hi ~buckets () =
    if not (lo > 0. && hi > lo && buckets > 0) then
      invalid_arg "Histogram.create: need 0 < lo < hi and buckets > 0";
    { lo;
      log_lo = log lo;
      log_step = (log hi -. log lo) /. float_of_int buckets;
      buckets = Array.make buckets 0;
      count = 0 }

  let index t x =
    if x <= t.lo then 0
    else
      let i = int_of_float ((log x -. t.log_lo) /. t.log_step) in
      Stdlib.min i (Array.length t.buckets - 1)

  let add t x =
    let i = index t x in
    t.buckets.(i) <- t.buckets.(i) + 1;
    t.count <- t.count + 1

  let count t = t.count

  let bucket_upper t i = exp (t.log_lo +. (t.log_step *. float_of_int (i + 1)))

  let quantile t q =
    if t.count = 0 then 0.
    else begin
      let target = int_of_float (Float.round (q *. float_of_int t.count)) in
      let target = Stdlib.max 1 (Stdlib.min t.count target) in
      let rec scan i acc =
        if i >= Array.length t.buckets then bucket_upper t (Array.length t.buckets - 1)
        else
          let acc = acc + t.buckets.(i) in
          if acc >= target then bucket_upper t i else scan (i + 1) acc
      in
      scan 0 0
    end
end

module Throughput = struct
  type t = { started : float; mutable ops : int }

  let start ~at = { started = at; ops = 0 }
  let record t = t.ops <- t.ops + 1
  let record_n t n = t.ops <- t.ops + n
  let ops t = t.ops

  let rate t ~now =
    let dt = now -. t.started in
    if dt <= 0. then 0. else float_of_int t.ops /. dt
end
