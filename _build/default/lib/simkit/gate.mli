(** One-shot broadcast gates and reusable cyclic barriers. *)

type t

(** A closed gate. Processes that [wait] park until [open_] is called;
    afterwards [wait] returns immediately. *)
val create : unit -> t

val wait : t -> unit
val open_ : t -> unit
val is_open : t -> bool

module Barrier : sig
  type t

  (** [create ~parties ()] is a cyclic barrier for [parties] processes.
      @raise Invalid_argument if [parties < 1]. *)
  val create : parties:int -> unit -> t

  (** Park until [parties] processes have arrived, then release all of
      them and reset the barrier for the next cycle. *)
  val await : t -> unit
end
