type t = {
  mutable opened : bool;
  waiters : (unit -> unit) Queue.t;
}

let create () = { opened = false; waiters = Queue.create () }

let create_gate = create
let is_open t = t.opened

let wait t =
  if not t.opened then
    Process.suspend (fun resume -> Queue.push resume t.waiters)

let open_ t =
  if not t.opened then begin
    t.opened <- true;
    Queue.iter (fun resume -> resume ()) t.waiters;
    Queue.clear t.waiters
  end

module Barrier = struct
  type nonrec t = {
    parties : int;
    mutable arrived : int;
    mutable gate : t;
  }

  let create ~parties () =
    if parties < 1 then invalid_arg "Barrier.create: parties < 1";
    { parties; arrived = 0; gate = create_gate () }

  let await t =
    t.arrived <- t.arrived + 1;
    if t.arrived = t.parties then begin
      let gate = t.gate in
      t.arrived <- 0;
      t.gate <- create_gate ();
      open_ gate
    end else begin
      let gate = t.gate in
      wait gate
    end
end
