lib/core/consistent_hash.ml: Array List Md5 Printf
