lib/core/namespace.mli: Either Fid Meta Zk
