lib/core/rebalancer.ml: Array Consistent_hash Fid Fuselike Int64 List Mapping Namespace Physical Result
