lib/core/mapping.ml: Array Consistent_hash Fid Float List Md5
