lib/core/fsck.ml: Array Either Fid Format Fuselike Hashtbl Int64 List Mapping Meta Namespace Physical Result
