lib/core/md5.mli:
