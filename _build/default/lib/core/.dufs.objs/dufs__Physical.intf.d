lib/core/physical.mli: Fid Fuselike
