lib/core/rebalancer.mli: Fid Fuselike Mapping Physical Zk
