lib/core/meta.ml: Fid Float Format Int64 Printf String
