lib/core/meta.mli: Fid Format
