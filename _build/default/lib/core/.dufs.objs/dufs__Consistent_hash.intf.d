lib/core/consistent_hash.mli:
