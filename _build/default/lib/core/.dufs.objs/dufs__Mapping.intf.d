lib/core/mapping.mli: Consistent_hash Fid
