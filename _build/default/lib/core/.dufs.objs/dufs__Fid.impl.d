lib/core/fid.ml: Bytes Char Format Int64 Printf String
