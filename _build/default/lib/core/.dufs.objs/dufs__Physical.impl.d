lib/core/physical.ml: Fid Fuselike List Printf String
