lib/core/fid.mli: Format
