lib/core/client.ml: Array Consistent_hash Fid Fuselike Int64 List Mapping Meta Physical Result String Zk
