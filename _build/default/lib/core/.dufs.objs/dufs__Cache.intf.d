lib/core/cache.mli: Zk
