lib/core/namespace.ml: Either List Meta Result String Zk
