lib/core/client.mli: Fid Fuselike Mapping Physical Zk
