lib/core/fsck.mli: Fid Format Fuselike Mapping Physical Zk
