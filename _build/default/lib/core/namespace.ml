module Zk_client = Zk.Zk_client
module Zpath = Zk.Zpath

type entry = {
  vpath : string;
  meta : Meta.t;
}

let virtual_of ~zroot zpath =
  if zpath = zroot then "/"
  else String.sub zpath (String.length zroot) (String.length zpath - String.length zroot)

let scan (coord : Zk_client.handle) ~zroot =
  let ( let* ) = Result.bind in
  (* breadth-first so parents precede children *)
  let rec walk acc = function
    | [] -> Ok (List.rev acc)
    | zpath :: rest ->
      let* data, _stat = coord.Zk_client.get zpath in
      let* names = coord.Zk_client.children zpath in
      let children = List.map (Zpath.concat zpath) names in
      let acc =
        if zpath = zroot then acc
        else
          let vpath = virtual_of ~zroot zpath in
          match Meta.decode data with
          | Ok meta -> Either.Left { vpath; meta } :: acc
          | Error _ -> Either.Right (`Undecodable (vpath, data)) :: acc
      in
      (* only directories can have children worth visiting, but walking
         every znode is harmless and catches stray children of files *)
      walk acc (rest @ children)
  in
  walk [] [ zroot ]

let files coord ~zroot =
  Result.map
    (fun entries ->
      List.filter_map
        (function
          | Either.Left { vpath; meta = { Meta.kind = Meta.File fid; _ } } ->
            Some (vpath, fid)
          | Either.Left _ | Either.Right _ -> None)
        entries)
    (scan coord ~zroot)
