(** Physical-path layout on the back-end storage (§IV-G).

    The physical filename is derived purely from the FID's hexadecimal
    representation, so it never changes when the virtual name does. To
    avoid congestion from creating every file in one directory, leading
    path components are taken from the *low* (fastest-varying) end of the
    hex string, exactly like the paper's example
    [FID 0123456789abcdef -> cdef/89ab/4567/0123].

    The hierarchy is static and identical on every back-end mount
    ({!format} pre-creates it), which keeps concurrent clients free of
    mkdir races. *)

type layout = {
  levels : int;           (** directory levels above the file *)
  chars_per_level : int;  (** hex characters consumed per level *)
}

(** 2 levels of one hex nibble each: 16 + 256 pre-created directories,
    fan-out bounded, one physical create per file. *)
val default_layout : layout

(** [path layout fid] — absolute back-end path for [fid], e.g.
    ["/f/e/0123456789abcdef0123456789abcdef"] under the default layout. *)
val path : layout -> Fid.t -> string

(** Parent directory of [path layout fid]. *)
val dir : layout -> Fid.t -> string

(** Recover the FID from a physical path produced by [path]. *)
val fid_of_path : string -> Fid.t option

(** Pre-create the whole static hierarchy on a back-end (use the mount's
    zero-cost [local_ops] — this is mount-format time, not benchmark
    time). *)
val format : layout -> Fuselike.Vfs.ops -> (unit, Fuselike.Errno.t) result

(** The paper's Fig. 4 function verbatim: split a 16-hex-digit FID string
    into four 4-digit components, lowest first —
    ["0123456789abcdef"] ↦ ["cdef/89ab/4567/0123"]. Kept for
    documentation and tests. *)
val paper_split : string -> string
