type kind =
  | Dir
  | File of Fid.t
  | Symlink of string

type t = {
  kind : kind;
  mode : int;
  ctime : float;
}

let dir ~mode ~ctime = { kind = Dir; mode; ctime }
let file fid ~mode ~ctime = { kind = File fid; mode; ctime }
let symlink ~target ~ctime = { kind = Symlink target; mode = 0o777; ctime }

let equal a b =
  a.mode = b.mode
  && Float.equal a.ctime b.ctime
  &&
  match a.kind, b.kind with
  | Dir, Dir -> true
  | File x, File y -> Fid.equal x y
  | Symlink x, Symlink y -> String.equal x y
  | (Dir | File _ | Symlink _), _ -> false

(* v1|<kind>|<mode octal>|<ctime bits hex>|<payload>
   payload: FID hex for files, raw target for symlinks (last field, so it
   may contain any character including '|'). *)
let encode t =
  let kind_tag, payload =
    match t.kind with
    | Dir -> ("d", "")
    | File fid -> ("f", Fid.to_hex fid)
    | Symlink target -> ("l", target)
  in
  Printf.sprintf "v1|%s|%o|%Lx|%s" kind_tag t.mode (Int64.bits_of_float t.ctime) payload

let decode s =
  let field_error what = Error (Printf.sprintf "Meta.decode: bad %s in %S" what s) in
  match String.split_on_char '|' s with
  | "v1" :: kind_tag :: mode_s :: ctime_s :: rest ->
    let payload = String.concat "|" rest in
    let mode = int_of_string_opt ("0o" ^ mode_s) in
    let ctime =
      match Int64.of_string_opt ("0x" ^ ctime_s) with
      | Some bits -> Some (Int64.float_of_bits bits)
      | None -> None
    in
    (match mode, ctime with
     | Some mode, Some ctime ->
       (match kind_tag with
        | "d" -> Ok { kind = Dir; mode; ctime }
        | "f" ->
          (match Fid.of_hex payload with
           | Some fid -> Ok { kind = File fid; mode; ctime }
           | None -> field_error "fid")
        | "l" -> Ok { kind = Symlink payload; mode; ctime }
        | _ -> field_error "kind")
     | _, _ -> field_error "numeric field")
  | _ -> field_error "layout"

let pp fmt t =
  match t.kind with
  | Dir -> Format.fprintf fmt "dir(mode=%o)" t.mode
  | File fid -> Format.fprintf fmt "file(%a, mode=%o)" Fid.pp fid t.mode
  | Symlink target -> Format.fprintf fmt "symlink(%s)" target
