(** Walking the DUFS virtual namespace stored in the coordination
    service — shared by {!Fsck} and {!Rebalancer}. *)

type entry = {
  vpath : string;   (** virtual path as the user sees it *)
  meta : Meta.t;
}

(** [scan coord ~zroot] — every entry under [zroot] (the root directory
    itself excluded), parents before children. Fails with the first
    coordination error encountered; undecodable znode payloads are
    returned with their raw data wrapped in [`Undecodable]. *)
val scan :
  Zk.Zk_client.handle ->
  zroot:string ->
  ((entry, [ `Undecodable of string * string ]) Either.t list, Zk.Zerror.t) result

(** Only the regular files, with their FIDs. *)
val files :
  Zk.Zk_client.handle -> zroot:string -> ((string * Fid.t) list, Zk.Zerror.t) result
