type strategy =
  | Md5_mod
  | Consistent of Consistent_hash.t

let md5_mod ~backends fid =
  if backends < 1 then invalid_arg "Mapping.md5_mod: backends < 1";
  Md5.to_int (Md5.digest (Fid.to_bytes fid)) mod backends

let locate strategy ~backends fid =
  match strategy with
  | Md5_mod -> md5_mod ~backends fid
  | Consistent ring -> Consistent_hash.lookup ring (Fid.to_bytes fid)

let imbalance locate_fid ~backends fids =
  if backends < 1 then invalid_arg "Mapping.imbalance: backends < 1";
  let buckets = Array.make backends 0 in
  List.iter (fun fid -> let i = locate_fid fid in buckets.(i) <- buckets.(i) + 1) fids;
  let largest = Array.fold_left max 0 buckets in
  let smallest = Array.fold_left min max_int buckets in
  if smallest = 0 then Float.infinity
  else float_of_int largest /. float_of_int smallest
