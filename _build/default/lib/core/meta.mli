(** The payload DUFS stores in each znode's custom data field (§IV-D):
    whether the node is a directory or a file, and in the latter case its
    FID. Directories additionally carry their permission bits and creation
    time, since they exist only at the metadata level. *)

type kind =
  | Dir
  | File of Fid.t
  | Symlink of string

type t = {
  kind : kind;
  mode : int;
  ctime : float;
}

val dir : mode:int -> ctime:float -> t
val file : Fid.t -> mode:int -> ctime:float -> t
val symlink : target:string -> ctime:float -> t

val equal : t -> t -> bool

(** Compact single-line encoding stored as znode data. *)
val encode : t -> string

(** [decode s] — [Error] on malformed payloads (never raises). *)
val decode : string -> (t, string) result

val pp : Format.formatter -> t -> unit
