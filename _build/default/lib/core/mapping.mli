(** The deterministic mapping function (§IV-F): which back-end storage
    holds a FID's physical contents.

    Every DUFS client evaluates the same pure function, so no coordination
    is needed for the FID → back-end step. The paper's function is
    [MD5(fid) mod N]; the consistent-hashing strategy is the paper's
    stated future work (§VII), included here as an extension that keeps
    relocation bounded when back-ends are added or removed. *)

type strategy =
  | Md5_mod                      (** the paper's mapping *)
  | Consistent of Consistent_hash.t

(** [md5_mod ~backends fid] is [MD5(fid) mod backends], in [0, backends).
    @raise Invalid_argument if [backends < 1]. *)
val md5_mod : backends:int -> Fid.t -> int

(** [locate strategy ~backends fid] — back-end index under either
    strategy. For [Consistent], the ring's node ids must lie in
    [0, backends). *)
val locate : strategy -> backends:int -> Fid.t -> int

(** Largest/smallest bucket-count ratio over [fids]; 1.0 is perfectly
    fair. Used by fairness tests and the mapping ablation bench. *)
val imbalance : (Fid.t -> int) -> backends:int -> Fid.t list -> float
