module Vfs = Fuselike.Vfs

type layout = {
  levels : int;
  chars_per_level : int;
}

let default_layout = { levels = 2; chars_per_level = 1 }

let check_layout layout =
  if layout.levels < 0 || layout.chars_per_level < 1
     || layout.levels * layout.chars_per_level > 16
  then invalid_arg "Physical: bad layout"

(* Components come from the low end of the hex string: the counter's low
   digits vary fastest, spreading consecutive creates across the top
   directories. *)
let components layout hex =
  check_layout layout;
  let len = String.length hex in
  List.init layout.levels (fun i ->
      let width = layout.chars_per_level in
      String.sub hex (len - ((i + 1) * width)) width)

let dir layout fid =
  let hex = Fid.to_hex fid in
  "/" ^ String.concat "/" (components layout hex)

let path layout fid =
  let hex = Fid.to_hex fid in
  let d = dir layout fid in
  if d = "/" then "/" ^ hex else d ^ "/" ^ hex

let fid_of_path p =
  match String.rindex_opt p '/' with
  | None -> None
  | Some i -> Fid.of_hex (String.sub p (i + 1) (String.length p - i - 1))

let format layout ops =
  check_layout layout;
  let rec fill parent level =
    if level = layout.levels then Ok ()
    else begin
      let width = layout.chars_per_level in
      let count = 1 lsl (4 * width) in
      let rec each i =
        if i = count then Ok ()
        else begin
          let name = Printf.sprintf "%0*x" width i in
          let child = Fuselike.Fspath.concat parent name in
          match ops.Vfs.mkdir child ~mode:0o755 with
          | Ok () | Error Fuselike.Errno.EEXIST ->
            (match fill child (level + 1) with
             | Ok () -> each (i + 1)
             | Error _ as e -> e)
          | Error _ as e -> e
        end
      in
      each 0
    end
  in
  fill "/" 0

let paper_split hex =
  if String.length hex <> 16 then invalid_arg "Physical.paper_split: want 16 hex digits";
  let quarter i = String.sub hex (4 * i) 4 in
  String.concat "/" [ quarter 3; quarter 2; quarter 1; quarter 0 ]
