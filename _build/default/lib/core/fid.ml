type t = { client_id : int64; counter : int64 }

let make ~client_id ~counter = { client_id; counter }
let equal a b = Int64.equal a.client_id b.client_id && Int64.equal a.counter b.counter

let compare a b =
  match Int64.unsigned_compare a.client_id b.client_id with
  | 0 -> Int64.unsigned_compare a.counter b.counter
  | c -> c

let to_hex t = Printf.sprintf "%016Lx%016Lx" t.client_id t.counter

let hex_value c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let parse_u64 s off =
  let rec go acc i =
    if i = 16 then Some acc
    else
      match hex_value s.[off + i] with
      | Some v -> go (Int64.logor (Int64.shift_left acc 4) (Int64.of_int v)) (i + 1)
      | None -> None
  in
  go 0L 0

let of_hex s =
  if String.length s <> 32 then None
  else
    match parse_u64 s 0, parse_u64 s 16 with
    | Some client_id, Some counter -> Some { client_id; counter }
    | _, _ -> None

let to_bytes t =
  let bytes = Bytes.create 16 in
  let put off v =
    for i = 0 to 7 do
      Bytes.set bytes (off + i)
        (Char.chr
           (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * (7 - i))) 0xFFL)))
    done
  in
  put 0 t.client_id;
  put 8 t.counter;
  Bytes.to_string bytes

let pp fmt t = Format.pp_print_string fmt (to_hex t)

module Gen = struct
  type fid = t
  type nonrec t = { gen_client_id : int64; mutable next_counter : int64 }

  let create ~client_id = { gen_client_id = client_id; next_counter = 0L }
  let client_id t = t.gen_client_id
  let generated t = t.next_counter

  let next t =
    let counter = t.next_counter in
    t.next_counter <- Int64.add counter 1L;
    make ~client_id:t.gen_client_id ~counter
end
