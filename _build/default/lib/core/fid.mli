(** File Identifiers (§IV-E).

    A FID is a 128-bit integer: the 64-bit id of the DUFS client instance
    that created the file, concatenated with that client's 64-bit file
    creation counter. FIDs are generated without any coordination and
    uniquely identify a file's physical contents for its whole life —
    renames never change the FID. *)

type t = private { client_id : int64; counter : int64 }

val make : client_id:int64 -> counter:int64 -> t
val equal : t -> t -> bool
val compare : t -> t -> int

(** 32 lowercase hex characters: client id (16) then counter (16). *)
val to_hex : t -> string

val of_hex : string -> t option

(** 16 bytes, big-endian — the input to the mapping function. *)
val to_bytes : t -> string

val pp : Format.formatter -> t -> unit

(** Per-client generator. A restarted client must be given a fresh
    [client_id]; the counter then restarts at zero (§IV-E). *)
module Gen : sig
  type fid = t
  type t

  val create : client_id:int64 -> t
  val client_id : t -> int64

  (** Number of FIDs generated so far. *)
  val generated : t -> int64

  val next : t -> fid
end
