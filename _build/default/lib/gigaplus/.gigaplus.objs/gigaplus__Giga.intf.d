lib/gigaplus/giga.mli: Simkit
