lib/gigaplus/giga.ml: Array Hashtbl List Pfs Simkit
