(** GIGA+-style distributed directory indexing (Patil et al., PDSW'07) —
    the alternative design the paper's related work weighs against DUFS
    (§VI): a single huge directory is split into partitions by extensible
    hashing, each server manages only its own partitions with *no shared
    state*, and clients are allowed arbitrarily stale partition maps —
    servers simply redirect them and piggyback fresher map bits.

    The trade-off the paper points out: no synchronization bottleneck, so
    inserts into one directory scale with servers; but partition state is
    unreplicated, so "if the server or the partition goes down ... the
    files are not accessible anymore". Both sides are measurable here
    ([create_file] scaling in the `ablation-giga` bench, and
    {!available_fraction} under {!crash_server}). *)

type config = {
  servers : int;
  split_threshold : int;   (** entries per partition before it splits *)
  max_radix : int;         (** bound on splits: at most 2^max_radix partitions *)
  net_latency : float;
  insert_service : float;
  lookup_service : float;
  split_entry_cost : float; (** per entry migrated during a split *)
  server_threads : int;
}

val default_config : servers:int -> config

type t

val create : Simkit.Engine.t -> ?config:config -> unit -> t
val config : t -> config

(** {2 Clients}

    A client caches the partition bitmap; it may be stale. Operations run
    from a simulation process; addressing mistakes cost an extra hop and
    return fresher map bits (counted in {!redirects}). *)

type client

val client : t -> client

(** [create_file client name] — insert [name] into the (single, huge)
    indexed directory. *)
val create_file : client -> string -> (unit, [ `Exists | `Unavailable ]) result

(** [lookup client name] — is [name] present? [`Unavailable] if the
    owning partition's server is down. *)
val lookup : client -> string -> (bool, [ `Unavailable ]) result

(** Redirections this client suffered from stale map bits. *)
val redirects : client -> int

(** {2 Introspection and fault injection} *)

val partition_count : t -> int
val total_entries : t -> int

(** Entries per partition, for balance checks. *)
val partition_sizes : t -> (int * int) list

val crash_server : t -> int -> unit
val restart_server : t -> int -> unit

(** Fraction of inserted names still reachable (their partition's server
    is alive) — the availability cost of unreplicated partitions. *)
val available_fraction : t -> float
