module Process = Simkit.Process

type config = {
  servers : int;
  split_threshold : int;
  max_radix : int;
  net_latency : float;
  insert_service : float;
  lookup_service : float;
  split_entry_cost : float;
  server_threads : int;
}

let default_config ~servers =
  { servers;
    split_threshold = 2000;
    max_radix = 12;
    net_latency = Pfs.Costs.gige_latency;
    insert_service = 60e-6;
    lookup_service = 30e-6;
    split_entry_cost = 2e-6;
    server_threads = 4 }

type partition = {
  mutable radix : int;
  entries : (string, unit) Hashtbl.t;
}

type t = {
  cfg : config;
  (* authoritative split state; servers act on it, clients cache it *)
  bitmap : bool array;
  partitions : (int, partition) Hashtbl.t;
  stations : Pfs.Mdserver.t array;
  alive : bool array;
  mutable entry_count : int;
}

let create engine ?config () =
  let cfg = match config with Some c -> c | None -> default_config ~servers:4 in
  if cfg.servers < 1 then invalid_arg "Giga.create: servers < 1";
  if cfg.max_radix < 1 || cfg.max_radix > 24 then invalid_arg "Giga.create: bad max_radix";
  let t =
    { cfg;
      bitmap = Array.make (1 lsl cfg.max_radix) false;
      partitions = Hashtbl.create 64;
      stations =
        Array.init cfg.servers (fun _ ->
            Pfs.Mdserver.create engine ~threads:cfg.server_threads ~thrash:0.
              ~net_latency:cfg.net_latency ());
      alive = Array.make cfg.servers true;
      entry_count = 0 }
  in
  t.bitmap.(0) <- true;
  Hashtbl.replace t.partitions 0 { radix = 0; entries = Hashtbl.create 64 };
  t

let config t = t.cfg
let owner t p = p mod t.cfg.servers
let partition_count t = Hashtbl.length t.partitions
let total_entries t = t.entry_count

let partition_sizes t =
  List.sort compare
    (Hashtbl.fold (fun i p acc -> (i, Hashtbl.length p.entries) :: acc) t.partitions [])

let crash_server t i = t.alive.(i) <- false
let restart_server t i = t.alive.(i) <- true

let available_fraction t =
  if t.entry_count = 0 then 1.
  else begin
    let reachable =
      Hashtbl.fold
        (fun i p acc ->
          if t.alive.(owner t i) then acc + Hashtbl.length p.entries else acc)
        t.partitions 0
    in
    float_of_int reachable /. float_of_int t.entry_count
  end

(* 30 usable hash bits from the stdlib's string hash, spread once more so
   low bits are well mixed for the radix addressing. *)
let hash_name name =
  let h = Hashtbl.hash name in
  let h = h * 0x9E3779B1 in
  (h lxor (h lsr 16)) land ((1 lsl 24) - 1)

(* GIGA+ addressing: take the low max_radix bits, then clear the most
   significant set bit until landing on a partition the bitmap knows —
   partition 0 always exists, so this terminates. *)
let locate bitmap ~max_radix h =
  let i = ref (h land ((1 lsl max_radix) - 1)) in
  while not bitmap.(!i) do
    (* clear the most significant set bit of !i *)
    let msb = ref 0 in
    let v = ref !i in
    while !v > 1 do
      incr msb;
      v := !v lsr 1
    done;
    i := !i land lnot (1 lsl !msb)
  done;
  !i

(* Split partition [p_index]: entries whose hash has bit [radix] set move
   to the sibling p_index + 2^radix. Returns the number moved (the caller
   charges the migration cost). *)
let split t p_index =
  let p = Hashtbl.find t.partitions p_index in
  let sibling_index = p_index + (1 lsl p.radix) in
  let sibling = { radix = p.radix + 1; entries = Hashtbl.create 64 } in
  let moved =
    Hashtbl.fold
      (fun name () acc ->
        if (hash_name name lsr p.radix) land 1 = 1 then name :: acc else acc)
      p.entries []
  in
  List.iter
    (fun name ->
      Hashtbl.remove p.entries name;
      Hashtbl.replace sibling.entries name ())
    moved;
  p.radix <- p.radix + 1;
  Hashtbl.replace t.partitions sibling_index sibling;
  t.bitmap.(sibling_index) <- true;
  List.length moved

let can_split t p_index =
  let p = Hashtbl.find t.partitions p_index in
  p_index + (1 lsl p.radix) < Array.length t.bitmap

(* {2 Clients} *)

type client = {
  cluster : t;
  my_bitmap : bool array;  (* possibly stale *)
  mutable redirect_count : int;
}

let client t =
  { cluster = t; my_bitmap = Array.copy t.bitmap; redirect_count = 0 }

let redirects c = c.redirect_count

let refresh_map c = Array.blit c.cluster.bitmap 0 c.my_bitmap 0 (Array.length c.my_bitmap)

(* One addressing round: pick the partition per the client's map, visit
   its server. The server re-addresses with the authoritative map; a
   mismatch means the client was stale: it gets fresh map bits and must
   retry (GIGA+'s "eventual consistency" for client views). *)
let rec visit c ~service ~attempt (h : int) f =
  let t = c.cluster in
  let p_client = locate c.my_bitmap ~max_radix:t.cfg.max_radix h in
  let server = owner t p_client in
  if not t.alive.(server) then begin
    (* request into the void: pay the wire latency, report unavailability *)
    Process.sleep (2. *. t.cfg.net_latency);
    Error `Unavailable
  end
  else
    let outcome =
      Pfs.Mdserver.request t.stations.(server) ~service (fun () ->
          let p_actual = locate t.bitmap ~max_radix:t.cfg.max_radix h in
          if p_actual <> p_client then `Stale
          else `Served (f p_actual))
    in
    match outcome with
    | `Served result -> Ok result
    | `Stale ->
      c.redirect_count <- c.redirect_count + 1;
      refresh_map c;
      if attempt > 32 then Error `Unavailable
      else visit c ~service ~attempt:(attempt + 1) h f

let create_file c name =
  let t = c.cluster in
  let h = hash_name name in
  match
    visit c ~service:t.cfg.insert_service ~attempt:0 h (fun p_index ->
        let p = Hashtbl.find t.partitions p_index in
        if Hashtbl.mem p.entries name then `Exists
        else begin
          Hashtbl.replace p.entries name ();
          t.entry_count <- t.entry_count + 1;
          if Hashtbl.length p.entries > t.cfg.split_threshold && can_split t p_index
          then `Split (split t p_index)
          else `Done
        end)
  with
  | Error `Unavailable -> Error `Unavailable
  | Ok `Exists -> Error `Exists
  | Ok `Done -> Ok ()
  | Ok (`Split moved) ->
    (* the splitting server streams the moved entries to the sibling's
       server; the inserting client waits it out (incremental splits are
       GIGA+ future work) *)
    Process.sleep (t.cfg.split_entry_cost *. float_of_int moved);
    Ok ()

let lookup c name =
  let t = c.cluster in
  let h = hash_name name in
  match
    visit c ~service:t.cfg.lookup_service ~attempt:0 h (fun p_index ->
        let p = Hashtbl.find t.partitions p_index in
        Hashtbl.mem p.entries name)
  with
  | Error `Unavailable -> Error `Unavailable
  | Ok present -> Ok present
