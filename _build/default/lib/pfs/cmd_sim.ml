module Process = Simkit.Process
module Resource = Simkit.Resource
module Vfs = Fuselike.Vfs
module Memfs = Fuselike.Memfs
module Fspath = Fuselike.Fspath

type config = {
  net_latency : float;
  mds_count : int;
  mds_threads : int;
  local_update_service : float;
  remote_update_service : float;
  lookup_service : float;
  global_lock_hold : float;
  cross_ratio : float;
  thrash : float;
}

let default_config ~mds_count =
  { net_latency = Costs.gige_latency;
    mds_count;
    mds_threads = Costs.Lustre.mds_threads;
    (* one shard behaves like a regular Lustre MDS *)
    local_update_service = Costs.Lustre.mkdir_service;
    remote_update_service = Costs.Lustre.mkdir_service /. 2.;
    lookup_service = Costs.Lustre.getattr_service;
    (* grant + two-phase update + release over the wire *)
    global_lock_hold = 4. *. Costs.gige_latency;
    cross_ratio = -1.;
    thrash = Costs.Lustre.thrash }

type t = {
  cfg : config;
  fs : Memfs.t;
  fs_ops : Vfs.ops;
  servers : Mdserver.t array;
  global_lock : Resource.t;
  mutable lock_acquisitions : int;
}

let create engine ?config () =
  let cfg = match config with Some c -> c | None -> default_config ~mds_count:2 in
  let fs = Memfs.create ~clock:(fun () -> Simkit.Engine.now engine) () in
  { cfg;
    fs;
    fs_ops = Memfs.ops fs;
    servers =
      Array.init cfg.mds_count (fun _ ->
          Mdserver.create engine ~threads:cfg.mds_threads ~thrash:cfg.thrash
            ~net_latency:cfg.net_latency ());
    global_lock = Resource.create ~capacity:1 ();
    lock_acquisitions = 0 }

let config t = t.cfg
let local_ops t = t.fs_ops
let global_lock_acquisitions t = t.lock_acquisitions

let shard t key = Hashtbl.hash key mod t.cfg.mds_count

(* Does this mutation span two servers? The new object's server is an
   independent hash, so with k servers a fraction (k-1)/k of updates
   cross; an explicit [cross_ratio] overrides for ablations. *)
let crosses t ~parent_key ~object_key =
  if t.cfg.cross_ratio >= 0. then
    (* deterministic pseudo-choice so runs stay reproducible *)
    float_of_int (Hashtbl.hash (parent_key, object_key) land 0xFFFF) /. 65536.
    < t.cfg.cross_ratio
  else shard t parent_key <> shard t object_key

let lookup t ~key ~service f =
  Mdserver.request t.servers.(shard t key) ~service f

(* A namespace mutation: the parent's shard does the update; if the new
   object hashes to a different server, both are updated under the global
   lock (grant, remote visit, release). *)
let update t ~parent_key ~object_key ~service f =
  if not (crosses t ~parent_key ~object_key) then
    Mdserver.request t.servers.(shard t parent_key) ~service f
  else begin
    t.lock_acquisitions <- t.lock_acquisitions + 1;
    Resource.with_slot t.global_lock (fun () ->
        Process.sleep t.cfg.global_lock_hold;
        Mdserver.request t.servers.(shard t parent_key) ~service ignore;
        Mdserver.request
          t.servers.(shard t object_key)
          ~service:t.cfg.remote_update_service f)
  end

let client t ~client_id:_ =
  let cfg = t.cfg in
  let fs = t.fs_ops in
  let parent = Fspath.parent in
  { Vfs.getattr =
      (fun path -> lookup t ~key:path ~service:cfg.lookup_service (fun () ->
           fs.Vfs.getattr path));
    access =
      (fun path -> lookup t ~key:path ~service:cfg.lookup_service (fun () ->
           fs.Vfs.access path));
    mkdir =
      (fun path ~mode ->
        update t ~parent_key:(parent path) ~object_key:path
          ~service:cfg.local_update_service (fun () -> fs.Vfs.mkdir path ~mode));
    rmdir =
      (fun path ->
        update t ~parent_key:(parent path) ~object_key:path
          ~service:cfg.local_update_service (fun () -> fs.Vfs.rmdir path));
    create =
      (fun path ~mode ->
        update t ~parent_key:(parent path) ~object_key:path
          ~service:cfg.local_update_service (fun () -> fs.Vfs.create path ~mode));
    unlink =
      (fun path ->
        update t ~parent_key:(parent path) ~object_key:path
          ~service:cfg.local_update_service (fun () -> fs.Vfs.unlink path));
    rename =
      (fun src dst ->
        (* rename touches both parents: treat them as the two endpoints *)
        update t ~parent_key:(parent src) ~object_key:(parent dst)
          ~service:cfg.local_update_service (fun () -> fs.Vfs.rename src dst));
    readdir =
      (fun path -> lookup t ~key:path ~service:cfg.lookup_service (fun () ->
           fs.Vfs.readdir path));
    symlink =
      (fun ~target path ->
        update t ~parent_key:(parent path) ~object_key:path
          ~service:cfg.local_update_service (fun () -> fs.Vfs.symlink ~target path));
    readlink =
      (fun path -> lookup t ~key:path ~service:cfg.lookup_service (fun () ->
           fs.Vfs.readlink path));
    chmod =
      (fun path ~mode ->
        update t ~parent_key:(parent path) ~object_key:path
          ~service:cfg.lookup_service (fun () -> fs.Vfs.chmod path ~mode));
    truncate =
      (fun path ~size ->
        update t ~parent_key:(parent path) ~object_key:path
          ~service:cfg.lookup_service (fun () -> fs.Vfs.truncate path ~size));
    read =
      (fun path ~off ~len ->
        Process.sleep (2. *. cfg.net_latency);
        fs.Vfs.read path ~off ~len);
    write =
      (fun path ~off payload ->
        Process.sleep (2. *. cfg.net_latency);
        fs.Vfs.write path ~off payload);
    statfs = fs.Vfs.statfs }
