lib/pfs/pvfs_sim.mli: Fuselike Simkit
