lib/pfs/mdserver.ml: Simkit
