lib/pfs/cmd_sim.mli: Fuselike Simkit
