lib/pfs/mdserver.mli: Simkit
