lib/pfs/costs.ml:
