lib/pfs/lustre_sim.mli: Fuselike Simkit
