lib/pfs/lustre_sim.ml: Costs Fuselike Hashtbl Mdserver Simkit String
