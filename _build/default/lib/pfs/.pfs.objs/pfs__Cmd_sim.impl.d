lib/pfs/cmd_sim.ml: Array Costs Fuselike Hashtbl Mdserver Simkit
