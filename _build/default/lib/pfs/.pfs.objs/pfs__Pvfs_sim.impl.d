lib/pfs/pvfs_sim.ml: Array Costs Fuselike Hashtbl Mdserver Simkit String
