(** Lustre Clustered Metadata (CMD) simulator — the design the paper
    contrasts DUFS against (§I, §VI).

    CMD shards the namespace over several active metadata servers by
    hashing the parent directory. Reads and single-server updates go to
    one MDS, but an update whose parent directory and new object land on
    *different* servers must update both atomically; per the CMD design
    notes the paper cites, a global lock serializes those cross-server
    updates so a failed server can be rolled back consistently. That lock
    is exactly the bottleneck the paper predicts ("this might hurt the
    throughput of metadata operations") and what this simulator lets the
    `ablation-cmd` experiment measure against DUFS.

    Namespace semantics are full POSIX (shared in-memory tree); the
    sharding and locking only affect timing. *)

type config = {
  net_latency : float;
  mds_count : int;          (** active metadata servers *)
  mds_threads : int;
  local_update_service : float;   (** single-server mutation *)
  remote_update_service : float;  (** extra work on the second server *)
  lookup_service : float;         (** getattr / readdir *)
  global_lock_hold : float;
      (** time the global lock is held per cross-server update
          (lock grant + 2-phase update + release) *)
  cross_ratio : float;
      (** fraction of mutations whose object lands on a different server
          than its parent entry (hash independence makes this
          ≈ (mds_count-1)/mds_count) — computed, not configured, when
          negative *)
  thrash : float;
}

val default_config : mds_count:int -> config

type t

val create : Simkit.Engine.t -> ?config:config -> unit -> t
val config : t -> config
val client : t -> client_id:int -> Fuselike.Vfs.ops
val local_ops : t -> Fuselike.Vfs.ops

(** Cross-server updates that took the global lock. *)
val global_lock_acquisitions : t -> int
