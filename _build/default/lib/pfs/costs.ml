(** Calibrated service-time model — the single source of truth for every
    latency constant in the simulation.

    Calibration targets come exclusively from the paper's plotted values
    (§V, Figs. 7-10) on its testbed: dual Xeon E5335 nodes, 1 GigE,
    Lustre 1.8.3, PVFS2 2.8.2, ZooKeeper with in-memory znodes. We tune
    for the *shapes and ratios* the paper reports, not absolute
    microseconds:

    - Basic Lustre dir-create ≈ 5.5 kops/s at 64 procs, declining to
      ≈ 3 kops/s at 256 procs (Fig. 8a) — decline driven by DLM lock
      ping-pong and MDS thrashing as client count grows.
    - ZooKeeper 1-server create ≈ 14 kops/s; write throughput decreases
      with ensemble size; read throughput scales with it (Fig. 7).
    - At 256 procs: DUFS/Lustre ≈ 1.9 on dir create, ≈ 1.3 on file stat;
      DUFS/PVFS2 ≈ 23 and ≈ 3.0 (§V-D).
    - 4 vs 2 back-ends: > 37 % file-stat gain at 256 procs (Fig. 9c). *)

(** {1 Network} *)

(** One-way 1-GigE + IP-stack latency for small RPCs. *)
let gige_latency = 60e-6

(** {1 FUSE / DUFS client} *)

(** Two user/kernel crossings plus request marshalling per FUSE op. *)
let fuse_crossing = 12e-6

(** DUFS bookkeeping per op (FID handling, mapping-function evaluation). *)
let dufs_overhead = 3e-6

(** {1 Co-located client load (paper §V: ZooKeeper servers and DUFS
    clients share the 8 client nodes)} *)

(** Service-time inflation for a server co-located with [procs] client
    processes spread over [nodes] nodes of [cores] cores each. *)
let colocated_load_factor ~procs ~nodes ~cores =
  let per_node = float_of_int procs /. float_of_int nodes in
  1. +. (0.065 *. per_node /. float_of_int cores)

let client_nodes = 8
let cores_per_node = 8

(** {1 Lustre (single MDS + DLM + OSS)} *)

module Lustre = struct
  (** MDS request-handler concurrency. *)
  let mds_threads = 4

  (* Per-op MDS CPU. Mutations take the parent-directory DLM lock and
     journal a transaction; reads are lookup + getattr. *)
  let mkdir_service = 460e-6
  let rmdir_service = 400e-6
  let create_service = 260e-6   (* + OSS object preallocation below *)
  let unlink_service = 330e-6
  let getattr_service = 95e-6
  let readdir_service = 120e-6
  let setattr_service = 120e-6
  let rename_service = 420e-6
  let oss_create = 30e-6

  (** Extra MDS time when a directory's DLM lock moves between clients
      (blocking AST + client writeback round). *)
  let lock_revoke = 180e-6

  (** Service inflation per request already queued at the MDS: lock-state
      growth, handler contention, backing-fs seeks. Drives the declining
      Lustre curves of Figs. 8 and 10. *)
  let thrash = 0.0055

  (** Multiplier applied by DUFS back-end mounts: physical paths live in a
      4-level, 65536-way hash tree, so every access walks cold dentries
      instead of re-using the benchmark's hot working directory. *)
  let hashed_namespace_penalty = 1.75
end

(** {1 PVFS2 (userspace servers, no client caching, no locks)} *)

module Pvfs = struct
  let meta_servers = 2
  let server_threads = 4

  (* Every op is a full userspace round trip; creates touch two servers
     (dirent + datafile handles) and are dominated by synchronous
     Berkeley-DB metadata commits — the factor-23 gap of §V-D. *)
  let mkdir_service = 5.2e-3
  let rmdir_service = 5.0e-3
  let create_service = 1.9e-3
  let unlink_service = 1.4e-3
  let getattr_service = 360e-6
  let readdir_service = 420e-6
  let setattr_service = 400e-6
  let rename_service = 3.0e-3
  let thrash = 0.022

  (* PVFS2 resolves objects through handles and has no client-side dentry
     cache to lose, so the deep hashed tree costs no extra per op. *)
  let hashed_namespace_penalty = 1.0
end

(** {1 ZooKeeper ensemble} *)

module Zookeeper = struct
  let read_service = 40e-6
  let write_service = 50e-6
  let delete_service = 82e-6
  let set_service = 78e-6
  let persist = 20e-6
  let rpc_cpu = 5e-6
  let follower_apply = 8e-6
end
