(** In-memory POSIX filesystem implementing {!Vfs.ops}.

    This is the reference VFS used directly as a back-end in local mode, as
    the namespace store inside the Lustre/PVFS2 server simulators, and as
    the oracle in model-equivalence tests. Semantics follow POSIX for the
    metadata operations the paper exercises: ENOENT/EEXIST/ENOTDIR/EISDIR/
    ENOTEMPTY errors, rename replacement rules, and no-rename-into-own-
    subtree. *)

type t

(** [create ~clock ()] — [clock] supplies the timestamps recorded in
    attributes (virtual time in simulations, a constant in pure tests). *)
val create : clock:(unit -> float) -> unit -> t

val ops : t -> Vfs.ops

(** Approximate resident bytes: per-node overhead plus file contents.
    Used by the Fig. 11 memory experiment. *)
val resident_bytes : t -> int
