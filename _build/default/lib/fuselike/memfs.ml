type file = { mutable content : Bytes.t; mutable size : int }

type payload =
  | Dir of (string, node) Hashtbl.t
  | File of file
  | Link of string

and node = {
  ino : int64;
  mutable payload : payload;
  mutable mode : int;
  mutable atime : float;
  mutable mtime : float;
  mutable ctime : float;
}

type t = {
  root : node;
  clock : unit -> float;
  mutable next_ino : int64;
  mutable n_files : int;
  mutable n_dirs : int;
  mutable n_symlinks : int;
  mutable bytes : int64;
}

(* Rough per-node bookkeeping overhead, for the Fig. 11 memory model:
   a node record, a hash-table slot in the parent, and the name string. *)
let node_overhead_bytes = 168

let create ~clock () =
  let root =
    { ino = 1L;
      payload = Dir (Hashtbl.create 8);
      mode = 0o755;
      atime = clock ();
      mtime = clock ();
      ctime = clock () }
  in
  { root; clock; next_ino = 2L;
    n_files = 0; n_dirs = 1; n_symlinks = 0; bytes = 0L }

let fresh_ino t =
  let ino = t.next_ino in
  t.next_ino <- Int64.add ino 1L;
  ino

let ( let* ) = Result.bind

(* Resolve a normalized path to its node. Intermediate components must be
   directories; symlinks are not followed (DUFS resolves them itself, as the
   paper's prototype does through FUSE). *)
let resolve t path =
  let rec walk node = function
    | [] -> Ok node
    | comp :: rest ->
      (match node.payload with
       | Dir children ->
         (match Hashtbl.find_opt children comp with
          | Some child -> walk child rest
          | None -> Error Errno.ENOENT)
       | File _ | Link _ -> Error Errno.ENOTDIR)
  in
  let* () = Fspath.validate path in
  walk t.root (Fspath.split path)

(* Resolve the parent directory of [path] and return its children table
   together with the final component. *)
let resolve_parent t path =
  let* () = Fspath.validate path in
  if path = "/" then Error Errno.EINVAL
  else
    let* parent = resolve t (Fspath.parent path) in
    match parent.payload with
    | Dir children -> Ok (parent, children, Fspath.basename path)
    | File _ | Link _ -> Error Errno.ENOTDIR

let kind_of_node node =
  match node.payload with
  | Dir _ -> Inode.Directory
  | File _ -> Inode.Regular
  | Link _ -> Inode.Symlink

let attr_of_node node =
  let size, nlink =
    match node.payload with
    | Dir children -> (Int64.of_int (Hashtbl.length children), 2)
    | File f -> (Int64.of_int f.size, 1)
    | Link target -> (Int64.of_int (String.length target), 1)
  in
  { Inode.kind = kind_of_node node;
    ino = node.ino;
    mode = node.mode;
    uid = 0;
    gid = 0;
    size;
    nlink;
    atime = node.atime;
    mtime = node.mtime;
    ctime = node.ctime }

let getattr t path =
  let* node = resolve t path in
  Ok (attr_of_node node)

let access t path =
  let* _node = resolve t path in
  Ok ()

let insert_new t path make_payload =
  let* parent, children, name = resolve_parent t path in
  if Hashtbl.mem children name then Error Errno.EEXIST
  else begin
    let now = t.clock () in
    let node =
      { ino = fresh_ino t; payload = make_payload (); mode = 0o644;
        atime = now; mtime = now; ctime = now }
    in
    Hashtbl.replace children name node;
    parent.mtime <- now;
    t.bytes <- Int64.add t.bytes (Int64.of_int (node_overhead_bytes + String.length name));
    Ok node
  end

let mkdir t path ~mode =
  let* node = insert_new t path (fun () -> Dir (Hashtbl.create 4)) in
  node.mode <- mode;
  t.n_dirs <- t.n_dirs + 1;
  Ok ()

let create_file t path ~mode =
  let* node = insert_new t path (fun () -> File { content = Bytes.empty; size = 0 }) in
  node.mode <- mode;
  t.n_files <- t.n_files + 1;
  Ok ()

let symlink t ~target path =
  let* _node = insert_new t path (fun () -> Link target) in
  t.n_symlinks <- t.n_symlinks + 1;
  Ok ()

let readlink t path =
  let* node = resolve t path in
  match node.payload with
  | Link target -> Ok target
  | Dir _ | File _ -> Error Errno.EINVAL

let release_accounting t node name =
  t.bytes <- Int64.sub t.bytes (Int64.of_int (node_overhead_bytes + String.length name));
  match node.payload with
  | Dir _ -> t.n_dirs <- t.n_dirs - 1
  | File f ->
    t.n_files <- t.n_files - 1;
    t.bytes <- Int64.sub t.bytes (Int64.of_int f.size)
  | Link _ -> t.n_symlinks <- t.n_symlinks - 1

let rmdir t path =
  let* parent, children, name = resolve_parent t path in
  match Hashtbl.find_opt children name with
  | None -> Error Errno.ENOENT
  | Some node ->
    (match node.payload with
     | File _ | Link _ -> Error Errno.ENOTDIR
     | Dir grandchildren ->
       if Hashtbl.length grandchildren > 0 then Error Errno.ENOTEMPTY
       else begin
         Hashtbl.remove children name;
         parent.mtime <- t.clock ();
         release_accounting t node name;
         Ok ()
       end)

let unlink t path =
  let* parent, children, name = resolve_parent t path in
  match Hashtbl.find_opt children name with
  | None -> Error Errno.ENOENT
  | Some node ->
    (match node.payload with
     | Dir _ -> Error Errno.EISDIR
     | File _ | Link _ ->
       Hashtbl.remove children name;
       parent.mtime <- t.clock ();
       release_accounting t node name;
       Ok ())

let is_dir node = match node.payload with Dir _ -> true | File _ | Link _ -> false

let rename t src dst =
  let src = Fspath.normalize src and dst = Fspath.normalize dst in
  let* src_parent, src_children, src_name = resolve_parent t src in
  let* dst_parent, dst_children, dst_name = resolve_parent t dst in
  match Hashtbl.find_opt src_children src_name with
  | None -> Error Errno.ENOENT
  | Some src_node ->
    if src = dst then Ok ()
    else if is_dir src_node && Fspath.is_prefix ~prefix:src dst then
      (* cannot move a directory into its own subtree *)
      Error Errno.EINVAL
    else begin
      let replace_ok =
        match Hashtbl.find_opt dst_children dst_name with
        | None -> Ok None
        | Some dst_node ->
          (match src_node.payload, dst_node.payload with
           | Dir _, Dir existing ->
             if Hashtbl.length existing > 0 then Error Errno.ENOTEMPTY
             else Ok (Some dst_node)
           | Dir _, (File _ | Link _) -> Error Errno.ENOTDIR
           | (File _ | Link _), Dir _ -> Error Errno.EISDIR
           | (File _ | Link _), (File _ | Link _) -> Ok (Some dst_node))
      in
      let* replaced = replace_ok in
      (match replaced with
       | Some old -> release_accounting t old dst_name
       | None ->
         (* net effect of the move on name accounting *)
         t.bytes <-
           Int64.add t.bytes
             (Int64.of_int (String.length dst_name - String.length src_name)));
      Hashtbl.remove src_children src_name;
      Hashtbl.replace dst_children dst_name src_node;
      let now = t.clock () in
      src_parent.mtime <- now;
      dst_parent.mtime <- now;
      src_node.ctime <- now;
      Ok ()
    end

let readdir t path =
  let* node = resolve t path in
  match node.payload with
  | File _ | Link _ -> Error Errno.ENOTDIR
  | Dir children ->
    let entries =
      Hashtbl.fold
        (fun name child acc -> { Vfs.name; kind = kind_of_node child } :: acc)
        children []
    in
    Ok (List.sort Vfs.compare_dirent entries)

let chmod t path ~mode =
  let* node = resolve t path in
  node.mode <- mode;
  node.ctime <- t.clock ();
  Ok ()

let with_file t path f =
  let* node = resolve t path in
  match node.payload with
  | Dir _ -> Error Errno.EISDIR
  | Link _ -> Error Errno.EINVAL
  | File file -> f node file

let ensure_capacity file n =
  if Bytes.length file.content < n then begin
    let capacity = max n (max 64 (2 * Bytes.length file.content)) in
    let content = Bytes.make capacity '\000' in
    Bytes.blit file.content 0 content 0 file.size;
    file.content <- content
  end

let truncate t path ~size =
  let size = Int64.to_int size in
  if size < 0 then Error Errno.EINVAL
  else
    with_file t path (fun node file ->
        let old = file.size in
        if size > old then begin
          ensure_capacity file size;
          Bytes.fill file.content old (size - old) '\000'
        end;
        file.size <- size;
        t.bytes <- Int64.add t.bytes (Int64.of_int (size - old));
        node.mtime <- t.clock ();
        Ok ())

let read t path ~off ~len =
  if off < 0 || len < 0 then Error Errno.EINVAL
  else
    with_file t path (fun node file ->
        node.atime <- t.clock ();
        if off >= file.size then Ok ""
        else begin
          let len = min len (file.size - off) in
          Ok (Bytes.sub_string file.content off len)
        end)

let write t path ~off data =
  if off < 0 then Error Errno.EINVAL
  else
    with_file t path (fun node file ->
        let len = String.length data in
        let new_size = max file.size (off + len) in
        ensure_capacity file new_size;
        if off > file.size then Bytes.fill file.content file.size (off - file.size) '\000';
        Bytes.blit_string data 0 file.content off len;
        t.bytes <- Int64.add t.bytes (Int64.of_int (new_size - file.size));
        file.size <- new_size;
        node.mtime <- t.clock ();
        Ok len)

let statfs t () =
  { Vfs.files = t.n_files;
    directories = t.n_dirs;
    symlinks = t.n_symlinks;
    bytes_used = t.bytes }

let resident_bytes t = Int64.to_int t.bytes + node_overhead_bytes

let ops t =
  { Vfs.getattr = getattr t;
    access = access t;
    mkdir = mkdir t;
    rmdir = rmdir t;
    create = create_file t;
    unlink = unlink t;
    rename = rename t;
    readdir = readdir t;
    symlink = symlink t;
    readlink = readlink t;
    chmod = chmod t;
    truncate = truncate t;
    read = read t;
    write = write t;
    statfs = statfs t }
