type t =
  | ENOENT
  | EEXIST
  | ENOTDIR
  | EISDIR
  | ENOTEMPTY
  | EACCES
  | EPERM
  | EINVAL
  | ENAMETOOLONG
  | EIO
  | ENOSPC
  | EXDEV
  | EBADF
  | ELOOP

let equal = ( = )

let to_string = function
  | ENOENT -> "ENOENT"
  | EEXIST -> "EEXIST"
  | ENOTDIR -> "ENOTDIR"
  | EISDIR -> "EISDIR"
  | ENOTEMPTY -> "ENOTEMPTY"
  | EACCES -> "EACCES"
  | EPERM -> "EPERM"
  | EINVAL -> "EINVAL"
  | ENAMETOOLONG -> "ENAMETOOLONG"
  | EIO -> "EIO"
  | ENOSPC -> "ENOSPC"
  | EXDEV -> "EXDEV"
  | EBADF -> "EBADF"
  | ELOOP -> "ELOOP"

let to_code = function
  | ENOENT -> -2
  | EEXIST -> -17
  | ENOTDIR -> -20
  | EISDIR -> -21
  | ENOTEMPTY -> -39
  | EACCES -> -13
  | EPERM -> -1
  | EINVAL -> -22
  | ENAMETOOLONG -> -36
  | EIO -> -5
  | ENOSPC -> -28
  | EXDEV -> -18
  | EBADF -> -9
  | ELOOP -> -40

let pp fmt t = Format.pp_print_string fmt (to_string t)
