(** The "dummy FUSE" filesystem of the paper's Fig. 11: a userspace layer
    that forwards every operation to an underlying filesystem unchanged.

    It keeps only a bounded amount of state (operation counters and a FUSE
    channel buffer), which is exactly why the paper uses it as the memory
    baseline: its resident size must stay flat as the namespace grows. *)

type t

val create : Vfs.ops -> t
val ops : t -> Vfs.ops

(** Total operations forwarded since creation. *)
val forwarded : t -> int

(** Modelled resident size: request buffers + counters, independent of how
    many files exist underneath. *)
val resident_bytes : t -> int
