(** File attributes — the [struct stat] equivalent returned by [getattr]. *)

type kind = Regular | Directory | Symlink

type attr = {
  kind : kind;
  ino : int64;
  mode : int;    (** permission bits, e.g. 0o755 *)
  uid : int;
  gid : int;
  size : int64;  (** bytes for regular files; entry count for directories *)
  nlink : int;
  atime : float;
  mtime : float;
  ctime : float;
}

val kind_to_string : kind -> string
val equal_kind : kind -> kind -> bool

(** A fresh attribute record with the given fields and times set to [now]. *)
val make : kind:kind -> ino:int64 -> mode:int -> now:float -> attr

val pp : Format.formatter -> attr -> unit
