(** The FUSE-equivalent virtual-filesystem operation table.

    Every filesystem in this repository — the in-memory reference
    filesystem, the Lustre and PVFS2 simulators, and DUFS itself — exposes
    this same path-based interface, mirroring the high-level FUSE API the
    paper's prototype implements (§IV-C). Implementations backed by the
    simulator block the calling simulation process; pure implementations
    return immediately. *)

type dirent = { name : string; kind : Inode.kind }

(** Aggregate filesystem counters, for sanity checks and reporting. *)
type fsstats = {
  files : int;
  directories : int;
  symlinks : int;
  bytes_used : int64;
}

type ops = {
  getattr : string -> (Inode.attr, Errno.t) result;
  access : string -> (unit, Errno.t) result;
  mkdir : string -> mode:int -> (unit, Errno.t) result;
  rmdir : string -> (unit, Errno.t) result;
  create : string -> mode:int -> (unit, Errno.t) result;
  unlink : string -> (unit, Errno.t) result;
  rename : string -> string -> (unit, Errno.t) result;
  readdir : string -> (dirent list, Errno.t) result;
  symlink : target:string -> string -> (unit, Errno.t) result;
  readlink : string -> (string, Errno.t) result;
  chmod : string -> mode:int -> (unit, Errno.t) result;
  truncate : string -> size:int64 -> (unit, Errno.t) result;
  read : string -> off:int -> len:int -> (string, Errno.t) result;
  write : string -> off:int -> string -> (int, Errno.t) result;
  statfs : unit -> fsstats;
}

(** [not_supported] returns [Error EPERM] (or empty stats) everywhere;
    useful as a base record for partial implementations. *)
val not_supported : ops

val compare_dirent : dirent -> dirent -> int

(** [exists ops p] — does [getattr] succeed? *)
val exists : ops -> string -> bool

(** [mkdir_p ops p ~mode] creates all missing ancestors of [p] then [p];
    succeeds if [p] already is a directory. *)
val mkdir_p : ops -> string -> mode:int -> (unit, Errno.t) result
