let max_component = 255

let normalize p =
  if p = "" then ""
  else begin
    let buf = Buffer.create (String.length p) in
    let last_slash = ref false in
    String.iter
      (fun c ->
        if c = '/' then begin
          if not !last_slash then Buffer.add_char buf c;
          last_slash := true
        end else begin
          Buffer.add_char buf c;
          last_slash := false
        end)
      p;
    let s = Buffer.contents buf in
    if String.length s > 1 && s.[String.length s - 1] = '/' then
      String.sub s 0 (String.length s - 1)
    else s
  end

let split p =
  match normalize p with
  | "/" -> []
  | p -> String.split_on_char '/' (String.sub p 1 (String.length p - 1))

let validate p =
  if p = "" || p.[0] <> '/' then Error Errno.EINVAL
  else
    let ok_component c =
      c <> "" && c <> "." && c <> ".." && String.length c <= max_component
    in
    if p = "/" then Ok ()
    else if List.for_all ok_component (split p) then Ok ()
    else if List.exists (fun c -> String.length c > max_component) (split p)
    then Error Errno.ENAMETOOLONG
    else Error Errno.EINVAL

let join = function
  | [] -> "/"
  | comps -> "/" ^ String.concat "/" comps

let parent p =
  match split p with
  | [] -> "/"
  | comps ->
    (* all but the last component *)
    let rec drop_last = function
      | [] | [ _ ] -> []
      | c :: rest -> c :: drop_last rest
    in
    join (drop_last comps)

let basename p =
  match List.rev (split p) with
  | [] -> ""
  | last :: _ -> last

let concat dir name = if dir = "/" then "/" ^ name else dir ^ "/" ^ name

let is_prefix ~prefix p =
  let prefix = normalize prefix and p = normalize p in
  prefix = p
  || prefix = "/"
  ||
  let lp = String.length prefix in
  String.length p > lp && String.sub p 0 lp = prefix && p.[lp] = '/'

let depth p = List.length (split p)
