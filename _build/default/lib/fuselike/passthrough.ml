type t = { inner : Vfs.ops; mutable forwarded : int }

(* A FUSE daemon keeps the /dev/fuse channel buffer (one max-write-sized
   request buffer per worker thread) plus library state; it does not grow
   with the number of files. 10 worker buffers of 132 KiB is typical. *)
let base_resident_bytes = 10 * 132 * 1024

let create inner = { inner; forwarded = 0 }

let forwarded t = t.forwarded
let resident_bytes _t = base_resident_bytes

let ops t =
  let count () = t.forwarded <- t.forwarded + 1 in
  let fwd1 f x = count (); f x in
  { Vfs.getattr = fwd1 t.inner.Vfs.getattr;
    access = fwd1 t.inner.Vfs.access;
    mkdir = (fun p ~mode -> count (); t.inner.Vfs.mkdir p ~mode);
    rmdir = fwd1 t.inner.Vfs.rmdir;
    create = (fun p ~mode -> count (); t.inner.Vfs.create p ~mode);
    unlink = fwd1 t.inner.Vfs.unlink;
    rename = (fun a b -> count (); t.inner.Vfs.rename a b);
    readdir = fwd1 t.inner.Vfs.readdir;
    symlink = (fun ~target p -> count (); t.inner.Vfs.symlink ~target p);
    readlink = fwd1 t.inner.Vfs.readlink;
    chmod = (fun p ~mode -> count (); t.inner.Vfs.chmod p ~mode);
    truncate = (fun p ~size -> count (); t.inner.Vfs.truncate p ~size);
    read = (fun p ~off ~len -> count (); t.inner.Vfs.read p ~off ~len);
    write = (fun p ~off data -> count (); t.inner.Vfs.write p ~off data);
    statfs = t.inner.Vfs.statfs }
