type kind = Regular | Directory | Symlink

type attr = {
  kind : kind;
  ino : int64;
  mode : int;
  uid : int;
  gid : int;
  size : int64;
  nlink : int;
  atime : float;
  mtime : float;
  ctime : float;
}

let kind_to_string = function
  | Regular -> "file"
  | Directory -> "dir"
  | Symlink -> "symlink"

let equal_kind (a : kind) (b : kind) = a = b

let make ~kind ~ino ~mode ~now =
  let nlink = match kind with Directory -> 2 | Regular | Symlink -> 1 in
  { kind; ino; mode; uid = 0; gid = 0; size = 0L; nlink;
    atime = now; mtime = now; ctime = now }

let pp fmt a =
  Format.fprintf fmt "{%s ino=%Ld mode=%o size=%Ld nlink=%d}"
    (kind_to_string a.kind) a.ino a.mode a.size a.nlink
