(** POSIX error codes surfaced by the VFS layer.

    Only the codes that filesystem metadata paths can produce are modelled;
    they match what a FUSE filesystem returns as negated errno values. *)

type t =
  | ENOENT      (** no such file or directory *)
  | EEXIST      (** file exists *)
  | ENOTDIR     (** not a directory *)
  | EISDIR      (** is a directory *)
  | ENOTEMPTY   (** directory not empty *)
  | EACCES      (** permission denied *)
  | EPERM       (** operation not permitted *)
  | EINVAL      (** invalid argument *)
  | ENAMETOOLONG
  | EIO         (** input/output error *)
  | ENOSPC      (** no space left on device *)
  | EXDEV       (** cross-device link *)
  | EBADF       (** bad file descriptor *)
  | ELOOP       (** too many levels of symbolic links *)

val equal : t -> t -> bool
val to_string : t -> string

(** Conventional negative errno integer (e.g. ENOENT -> -2). *)
val to_code : t -> int

val pp : Format.formatter -> t -> unit
