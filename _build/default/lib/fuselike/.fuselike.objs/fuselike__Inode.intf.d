lib/fuselike/inode.mli: Format
