lib/fuselike/passthrough.mli: Vfs
