lib/fuselike/passthrough.ml: Vfs
