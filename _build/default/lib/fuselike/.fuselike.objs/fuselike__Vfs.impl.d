lib/fuselike/vfs.ml: Errno Fspath Inode Result String
