lib/fuselike/inode.ml: Format
