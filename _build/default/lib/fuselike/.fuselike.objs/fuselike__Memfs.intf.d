lib/fuselike/memfs.mli: Vfs
