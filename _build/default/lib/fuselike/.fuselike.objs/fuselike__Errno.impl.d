lib/fuselike/errno.ml: Format
