lib/fuselike/vfs.mli: Errno Inode
