lib/fuselike/memfs.ml: Bytes Errno Fspath Hashtbl Inode Int64 List Result String Vfs
