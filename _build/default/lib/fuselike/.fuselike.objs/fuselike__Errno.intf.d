lib/fuselike/errno.mli: Format
