lib/fuselike/fspath.ml: Buffer Errno List String
