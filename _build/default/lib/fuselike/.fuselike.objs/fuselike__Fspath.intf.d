lib/fuselike/fspath.mli: Errno
