(** Absolute-path algebra shared by all VFS implementations.

    Paths are rooted at ["/"]; components never contain ['/'] and are never
    ["."] or [".."]. [normalize] collapses repeated slashes and strips a
    trailing slash; it does not resolve ["."]/[".."], which are rejected. *)

val max_component : int
(** Longest accepted component (NAME_MAX equivalent, 255). *)

(** [validate p] is [Ok ()] for a well-formed absolute path. *)
val validate : string -> (unit, Errno.t) result

(** [normalize p] collapses duplicate separators and removes any trailing
    separator (["/"] stays ["/"]). *)
val normalize : string -> string

(** [split p] is the component list of a normalized path; [split "/"] = []. *)
val split : string -> string list

(** [join comps] rebuilds an absolute path; [join []] = ["/"]. *)
val join : string list -> string

(** [parent p] and [basename p]; [parent "/"] = ["/"], [basename "/"] = "". *)
val parent : string -> string

val basename : string -> string

(** [concat dir name] appends one component. *)
val concat : string -> string -> string

(** [is_prefix ~prefix p]: is [p] equal to or inside [prefix]? *)
val is_prefix : prefix:string -> string -> bool

(** [depth p] is the number of components. *)
val depth : string -> int
