type dirent = { name : string; kind : Inode.kind }

type fsstats = {
  files : int;
  directories : int;
  symlinks : int;
  bytes_used : int64;
}

type ops = {
  getattr : string -> (Inode.attr, Errno.t) result;
  access : string -> (unit, Errno.t) result;
  mkdir : string -> mode:int -> (unit, Errno.t) result;
  rmdir : string -> (unit, Errno.t) result;
  create : string -> mode:int -> (unit, Errno.t) result;
  unlink : string -> (unit, Errno.t) result;
  rename : string -> string -> (unit, Errno.t) result;
  readdir : string -> (dirent list, Errno.t) result;
  symlink : target:string -> string -> (unit, Errno.t) result;
  readlink : string -> (string, Errno.t) result;
  chmod : string -> mode:int -> (unit, Errno.t) result;
  truncate : string -> size:int64 -> (unit, Errno.t) result;
  read : string -> off:int -> len:int -> (string, Errno.t) result;
  write : string -> off:int -> string -> (int, Errno.t) result;
  statfs : unit -> fsstats;
}

let not_supported =
  let eperm _ = Error Errno.EPERM in
  { getattr = eperm;
    access = eperm;
    mkdir = (fun _ ~mode:_ -> Error Errno.EPERM);
    rmdir = eperm;
    create = (fun _ ~mode:_ -> Error Errno.EPERM);
    unlink = eperm;
    rename = (fun _ _ -> Error Errno.EPERM);
    readdir = eperm;
    symlink = (fun ~target:_ _ -> Error Errno.EPERM);
    readlink = eperm;
    chmod = (fun _ ~mode:_ -> Error Errno.EPERM);
    truncate = (fun _ ~size:_ -> Error Errno.EPERM);
    read = (fun _ ~off:_ ~len:_ -> Error Errno.EPERM);
    write = (fun _ ~off:_ _ -> Error Errno.EPERM);
    statfs =
      (fun () -> { files = 0; directories = 0; symlinks = 0; bytes_used = 0L }) }

let compare_dirent a b = String.compare a.name b.name

let exists ops p = Result.is_ok (ops.getattr p)

let mkdir_p ops p ~mode =
  let rec ensure path =
    match ops.getattr path with
    | Ok attr ->
      if Inode.equal_kind attr.Inode.kind Inode.Directory then Ok ()
      else Error Errno.ENOTDIR
    | Error Errno.ENOENT ->
      (match ensure (Fspath.parent path) with
       | Error _ as e -> e
       | Ok () ->
         (match ops.mkdir path ~mode with
          | Ok () | Error Errno.EEXIST -> Ok ()
          | Error _ as e -> e))
    | Error _ as e -> e
  in
  if p = "/" then Ok () else ensure (Fspath.normalize p)
