lib/mdtest/report.ml: List Printf
