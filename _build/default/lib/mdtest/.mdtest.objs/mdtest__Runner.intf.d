lib/mdtest/runner.mli: Fuselike Simkit Workload
