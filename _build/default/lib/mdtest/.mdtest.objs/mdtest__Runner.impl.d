lib/mdtest/runner.ml: Fuselike List Simkit Workload
