lib/mdtest/workload.mli:
