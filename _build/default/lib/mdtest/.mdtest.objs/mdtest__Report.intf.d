lib/mdtest/report.mli:
