lib/mdtest/workload.ml: List Printf String
