(** Plain-text table/series rendering shared by the benchmark drivers,
    matching the shape of the paper's figures: one series per system
    configuration, one row per x value (client-process count). *)

type series = {
  label : string;
  points : (int * float) list;  (** (x, ops per second) *)
}

(** Render a figure: title, x-axis label, series rendered as columns. *)
val print_figure :
  title:string -> x_label:string -> ?unit_label:string -> series list -> unit

(** One labelled scalar row (for headline ratios). *)
val print_ratio : label:string -> float -> unit

val print_header : string -> unit
