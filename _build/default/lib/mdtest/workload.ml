type tree = { fan_out : int; depth : int }

type config = {
  procs : int;
  dirs_per_proc : int;
  files_per_proc : int;
  tree : tree;
  unique_working_dirs : bool;
}

let default_tree = { fan_out = 10; depth = 2 }

let config ?(dirs_per_proc = 100) ?(files_per_proc = 100) ?(tree = default_tree)
    ?(unique_working_dirs = false) ~procs () =
  if procs < 1 then invalid_arg "Workload.config: procs < 1";
  { procs; dirs_per_proc; files_per_proc; tree; unique_working_dirs }

(* Shared skeleton: /t0 .. /t9, /t0/t0 .. — parents before children. *)
let shared_skeleton tree =
  let rec level parents depth acc =
    if depth = 0 then List.rev acc
    else begin
      let children =
        List.concat_map
          (fun parent ->
            List.init tree.fan_out (fun i ->
                (if parent = "/" then "" else parent) ^ "/t" ^ string_of_int i))
          parents
      in
      level children (depth - 1) (List.rev_append children acc)
    end
  in
  level [ "/" ] tree.depth []

let shared_leaves tree =
  let depth = tree.depth in
  List.filter
    (fun p ->
      let slashes = List.length (String.split_on_char '/' p) - 1 in
      slashes = depth)
    (shared_skeleton tree)

let skeleton cfg =
  if cfg.unique_working_dirs then
    List.init cfg.procs (fun p -> "/proc" ^ string_of_int p)
  else shared_skeleton cfg.tree

let leaves_for cfg ~proc =
  if cfg.unique_working_dirs then [ "/proc" ^ string_of_int proc ]
  else shared_leaves cfg.tree

let place cfg ~proc ~item ~prefix =
  let leaves = leaves_for cfg ~proc in
  let leaf = List.nth leaves ((proc + item) mod List.length leaves) in
  Printf.sprintf "%s/%s.%d.%d" leaf prefix proc item

let dir_path cfg ~proc ~item = place cfg ~proc ~item ~prefix:"dir.mdtest"
let file_path cfg ~proc ~item = place cfg ~proc ~item ~prefix:"file.mdtest"

let total_dirs cfg = cfg.procs * cfg.dirs_per_proc
let total_files cfg = cfg.procs * cfg.files_per_proc
