type series = {
  label : string;
  points : (int * float) list;
}

let print_header title =
  Printf.printf "\n=== %s ===\n%!" title

let print_figure ~title ~x_label ?(unit_label = "ops/sec") series =
  print_header title;
  let xs =
    List.sort_uniq compare (List.concat_map (fun s -> List.map fst s.points) series)
  in
  let width = 24 in
  Printf.printf "%-10s" x_label;
  List.iter (fun s -> Printf.printf " %*s" width s.label) series;
  Printf.printf "   [%s]\n" unit_label;
  List.iter
    (fun x ->
      Printf.printf "%-10d" x;
      List.iter
        (fun s ->
          match List.assoc_opt x s.points with
          | Some v -> Printf.printf " %*.0f" width v
          | None -> Printf.printf " %*s" width "-")
        series;
      print_newline ())
    xs;
  flush stdout

let print_ratio ~label v = Printf.printf "  %-58s %8.2fx\n%!" label v
