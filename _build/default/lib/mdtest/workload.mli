(** mdtest-style metadata workload definition (paper §V).

    The paper runs mdtest over a directory skeleton with fan-out 10; as
    the number of client processes grows, the number of items per
    directory grows with it. Our skeleton is the same shape scaled to
    simulation size (fan-out 10, depth 2 by default — the paper's depth-5
    tree only adds more skeleton directories, not a different contention
    pattern), and each process then creates / stats / removes its own
    items spread round-robin across the shared leaf directories. *)

type tree = { fan_out : int; depth : int }

type config = {
  procs : int;
  dirs_per_proc : int;
  files_per_proc : int;
  tree : tree;
  unique_working_dirs : bool;
      (** mdtest -u: give each process a private directory instead of
          sharing the leaf directories (ablation for lock contention) *)
}

val default_tree : tree

val config :
  ?dirs_per_proc:int ->
  ?files_per_proc:int ->
  ?tree:tree ->
  ?unique_working_dirs:bool ->
  procs:int ->
  unit ->
  config

(** All skeleton directory paths, parents before children. *)
val skeleton : config -> string list

(** Leaf directories items get spread over (for process [proc]). *)
val leaves_for : config -> proc:int -> string list

(** [dir_path cfg ~proc ~item] / [file_path cfg ~proc ~item] — deterministic
    item placement: leaf chosen round-robin, name unique per (proc, item). *)
val dir_path : config -> proc:int -> item:int -> string

val file_path : config -> proc:int -> item:int -> string

(** Total items of each kind across all processes. *)
val total_dirs : config -> int

val total_files : config -> int
