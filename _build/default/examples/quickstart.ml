(* Quickstart: mount DUFS over two in-memory back-ends with a local
   coordination service, and use it like any POSIX filesystem.

       dune exec examples/quickstart.exe

   This is "immediate mode": no simulator, every call runs synchronously.
   The same [Dufs.Client] code runs unmodified over the replicated
   ensemble and the Lustre/PVFS2 simulators (see the other examples). *)

module Vfs = Fuselike.Vfs

let ok label = function
  | Ok v -> v
  | Error e -> failwith (label ^ ": " ^ Fuselike.Errno.to_string e)

let () =
  (* 1. A coordination service holds all metadata (znode tree). *)
  let service = Zk.Zk_local.create () in

  (* 2. Two independent back-end mounts store file contents. In a real
        deployment these are separate parallel-filesystem mounts; here
        they are in-memory filesystems. *)
  let mounts = Array.init 2 (fun _ -> Fuselike.Memfs.create ~clock:(fun () -> 0.) ()) in
  let backends = Array.map Fuselike.Memfs.ops mounts in

  (* 3. Format each back-end once: pre-create the static FID hash tree. *)
  Array.iter
    (fun ops -> ok "format" (Dufs.Physical.format Dufs.Physical.default_layout ops))
    backends;

  (* 4. Mount. The client is stateless: all shared state lives in the
        coordination service and on the back-ends. *)
  let client = Dufs.Client.mount ~coord:(Zk.Zk_local.session service) ~backends () in
  let fs = Dufs.Client.ops client in

  (* 5. Use the virtual filesystem. *)
  ok "mkdir" (fs.Vfs.mkdir "/projects" ~mode:0o755);
  ok "mkdir" (fs.Vfs.mkdir "/projects/demo" ~mode:0o755);
  ok "create" (fs.Vfs.create "/projects/demo/readme.txt" ~mode:0o644);
  let n = ok "write" (fs.Vfs.write "/projects/demo/readme.txt" ~off:0 "hello, DUFS!") in
  Printf.printf "wrote %d bytes\n" n;

  let attr = ok "stat" (fs.Vfs.getattr "/projects/demo/readme.txt") in
  Printf.printf "stat: kind=%s size=%Ld mode=%o\n"
    (Fuselike.Inode.kind_to_string attr.Fuselike.Inode.kind)
    attr.Fuselike.Inode.size attr.Fuselike.Inode.mode;

  (* Rename never moves data: only the znode changes; the FID — and hence
     the physical file — stays put. *)
  ok "rename" (fs.Vfs.rename "/projects/demo/readme.txt" "/projects/demo/README");
  Printf.printf "after rename, content = %S\n"
    (ok "read" (fs.Vfs.read "/projects/demo/README" ~off:0 ~len:64));

  let entries = ok "readdir" (fs.Vfs.readdir "/projects/demo") in
  Printf.printf "readdir /projects/demo: %s\n"
    (String.concat ", " (List.map (fun e -> e.Vfs.name) entries));

  (* Where did the bytes land? The deterministic mapping function knows. *)
  Array.iteri
    (fun i mount ->
      let stats = mount.Vfs.statfs () in
      Printf.printf "backend %d holds %d physical file(s)\n" i stats.Vfs.files)
    backends;

  ok "unlink" (fs.Vfs.unlink "/projects/demo/README");
  ok "rmdir" (fs.Vfs.rmdir "/projects/demo");
  ok "rmdir" (fs.Vfs.rmdir "/projects");
  print_endline "quickstart done."
