(* Fault tolerance: the reliability story of §IV-I. A DUFS namespace stays
   available while coordination-service replicas fail, because metadata is
   replicated with quorum commit; losing the quorum blocks updates (not
   reads of surviving replicas' state) until servers return.

       dune exec examples/fault_tolerance.exe *)

module Engine = Simkit.Engine
module Process = Simkit.Process
module Vfs = Fuselike.Vfs

let () =
  let engine = Engine.create () in
  let ensemble =
    Zk.Ensemble.start engine
      { (Zk.Ensemble.default_config ~servers:5) with
        Zk.Ensemble.election_timeout = 0.25;
        request_timeout = 0.4 }
  in
  let layout = Dufs.Physical.default_layout in
  let mount = Pfs.Lustre_sim.create engine ~config:(Pfs.Lustre_sim.backend_config ()) () in
  (match Dufs.Physical.format layout (Pfs.Lustre_sim.local_ops mount) with
  | Ok () -> ()
  | Error e -> failwith (Fuselike.Errno.to_string e));

  let log fmt =
    Printf.ksprintf
      (fun msg -> Printf.printf "[t=%6.2fs] %s\n%!" (Engine.now engine) msg)
      fmt
  in

  Process.spawn engine (fun () ->
      let fs =
        Dufs.Client.ops
          (Dufs.Client.mount
             ~coord:(Zk.Ensemble.session ensemble ())
             ~backends:[| Pfs.Lustre_sim.client mount ~client_id:0 |]
             ~clock:(fun () -> Engine.now engine)
             ~delay:Process.sleep ())
      in
      let attempt label op =
        match op () with
        | Ok _ -> log "%-34s -> ok" label
        | Error e -> log "%-34s -> %s" label (Fuselike.Errno.to_string e)
      in
      attempt "mkdir /data (all 5 up)" (fun () -> fs.Vfs.mkdir "/data" ~mode:0o755);
      attempt "create /data/f" (fun () -> fs.Vfs.create "/data/f" ~mode:0o644);

      log "crashing the coordination leader (server 0)";
      Zk.Ensemble.crash ensemble 0;
      attempt "mkdir /data/after-leader-crash" (fun () ->
          fs.Vfs.mkdir "/data/after-leader-crash" ~mode:0o755);
      (match Zk.Ensemble.leader_id ensemble with
       | Some id -> log "new leader elected: server %d" id
       | None -> log "no leader yet");

      log "crashing two more servers (quorum lost: 2/5 alive)";
      Zk.Ensemble.crash ensemble 1;
      Zk.Ensemble.crash ensemble 2;
      attempt "mkdir /data/no-quorum (must fail)" (fun () ->
          fs.Vfs.mkdir "/data/no-quorum" ~mode:0o755);
      attempt "stat /data/f (reads still served)" (fun () -> fs.Vfs.getattr "/data/f");

      log "restarting servers 1 and 2 (quorum restored)";
      Zk.Ensemble.restart ensemble 1;
      Zk.Ensemble.restart ensemble 2;
      Process.sleep 0.5;
      attempt "mkdir /data/recovered" (fun () -> fs.Vfs.mkdir "/data/recovered" ~mode:0o755);
      attempt "stat /data/recovered" (fun () -> fs.Vfs.getattr "/data/recovered");

      log "alive servers: %s"
        (String.concat ", " (List.map string_of_int (Zk.Ensemble.alive_ids ensemble))));
  Engine.run engine;
  print_endline "fault_tolerance done."
