(* Growing the back-end set — the paper's §VII future work in action.

       dune exec examples/rebalance.exe

   Two mounts hold 2000 files. We add a third mount under both mapping
   strategies and compare how much data each forces us to relocate:
   MD5-mod-N (the paper's function) remaps almost everything, consistent
   hashing only ≈ 1/(N+1). Afterwards fsck verifies the deployment is
   consistent under the new mapping, and a freshly-mounted client still
   reads every file. *)

module Vfs = Fuselike.Vfs

let ok_fs label = function
  | Ok v -> v
  | Error e -> failwith (label ^ ": " ^ Fuselike.Errno.to_string e)

let ok_zk label = function
  | Ok v -> v
  | Error e -> failwith (label ^ ": " ^ Zk.Zerror.to_string e)

let fresh_mount () =
  let ops = Fuselike.Memfs.ops (Fuselike.Memfs.create ~clock:(fun () -> 0.) ()) in
  ok_fs "format" (Dufs.Physical.format Dufs.Physical.default_layout ops);
  ops

let build strategy =
  let service = Zk.Zk_local.create () in
  let coord = Zk.Zk_local.session service in
  let mounts = Array.init 2 (fun _ -> fresh_mount ()) in
  let client = Dufs.Client.mount ~coord ~backends:mounts ~strategy () in
  let fs = Dufs.Client.ops client in
  ok_fs "mkdir" (fs.Vfs.mkdir "/data" ~mode:0o755);
  for i = 0 to 1999 do
    let path = Printf.sprintf "/data/file%04d" i in
    ok_fs "create" (fs.Vfs.create path ~mode:0o644);
    ignore (ok_fs "write" (fs.Vfs.write path ~off:0 (Printf.sprintf "payload %04d" i)))
  done;
  (coord, mounts)

let grow ~label strategy =
  Printf.printf "— strategy: %s\n" label;
  let coord, mounts = build strategy in
  let moves, new_strategy =
    ok_zk "plan"
      (Dufs.Rebalancer.plan_add_backend ~coord ~strategy ~backends_before:2 ())
  in
  Printf.printf "  adding a 3rd backend: %d of 2000 files must move (%.1f%%)\n"
    (List.length moves)
    (float_of_int (List.length moves) /. 20.);
  let all = Array.append mounts [| fresh_mount () |] in
  let stats = ok_fs "execute" (Dufs.Rebalancer.execute ~backends:all moves) in
  Printf.printf "  moved %d files, %Ld bytes\n" stats.Dufs.Rebalancer.moved
    stats.Dufs.Rebalancer.bytes_moved;
  let report = ok_zk "fsck" (Dufs.Fsck.scan ~coord ~backends:all ~strategy:new_strategy ()) in
  Printf.printf "  fsck after rebalance: %s (%d files, %d physicals checked)\n"
    (if Dufs.Fsck.is_clean report then "clean" else "ISSUES FOUND")
    report.Dufs.Fsck.files_checked report.Dufs.Fsck.physicals_checked;
  (* a new client mounted over three backends sees every byte *)
  let client3 = Dufs.Client.mount ~coord ~backends:all ~strategy:new_strategy
      ~client_id:77L () in
  let fs3 = Dufs.Client.ops client3 in
  let intact = ref 0 in
  for i = 0 to 1999 do
    let path = Printf.sprintf "/data/file%04d" i in
    if ok_fs "read" (fs3.Vfs.read path ~off:0 ~len:64) = Printf.sprintf "payload %04d" i
    then incr intact
  done;
  Printf.printf "  %d/2000 files read back intact through the grown mount\n\n" !intact

let () =
  grow ~label:"MD5 mod N (paper §IV-F)" Dufs.Mapping.Md5_mod;
  grow ~label:"consistent hashing (paper §VII)"
    (Dufs.Mapping.Consistent (Dufs.Consistent_hash.create [ 0; 1 ]))
