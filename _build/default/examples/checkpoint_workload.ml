(* N-to-N checkpointing — the HPC workload that motivates the paper's
   introduction: every rank of a parallel job simultaneously creates and
   writes its own checkpoint file in one shared directory, a pattern that
   hammers a single metadata server.

       dune exec examples/checkpoint_workload.exe

   We run the same checkpoint phase against Basic Lustre (one MDS) and
   against DUFS (metadata through the coordination ensemble, data spread
   over two Lustre mounts) on the simulator, and report the time to
   complete the checkpoint as the job grows. *)

module Engine = Simkit.Engine
module Process = Simkit.Process
module Vfs = Fuselike.Vfs

let checkpoint_bytes = 4096

let run_checkpoint ~label ~ranks ~ops_for_rank engine =
  let barrier = Simkit.Gate.Barrier.create ~parties:ranks () in
  let t0 = ref 0. and t1 = ref 0. in
  let errors = ref 0 in
  for rank = 0 to ranks - 1 do
    Process.spawn engine (fun () ->
        let ops : Vfs.ops = ops_for_rank rank in
        if rank = 0 then
          (match ops.Vfs.mkdir "/ckpt" ~mode:0o755 with
           | Ok () -> ()
           | Error e -> failwith (Fuselike.Errno.to_string e));
        Simkit.Gate.Barrier.await barrier;
        if rank = 0 then t0 := Engine.now engine;
        let path = Printf.sprintf "/ckpt/rank-%05d.ckpt" rank in
        (match ops.Vfs.create path ~mode:0o644 with
         | Ok () -> ()
         | Error _ -> incr errors);
        (match ops.Vfs.write path ~off:0 (String.make checkpoint_bytes 'x') with
         | Ok _ -> ()
         | Error _ -> incr errors);
        (* every rank then confirms its checkpoint landed *)
        (match ops.Vfs.getattr path with
         | Ok _ -> ()
         | Error _ -> incr errors);
        Simkit.Gate.Barrier.await barrier;
        if rank = 0 then t1 := Engine.now engine)
  done;
  Engine.run engine;
  if !errors > 0 then Printf.printf "  (%d errors!)\n" !errors;
  Printf.printf "  %-14s %4d ranks: checkpoint in %7.1f ms (%6.0f creates/s)\n" label
    ranks
    ((!t1 -. !t0) *. 1e3)
    (float_of_int ranks /. (!t1 -. !t0))

let lustre_setup engine =
  let fs = Pfs.Lustre_sim.create engine () in
  fun rank -> Pfs.Lustre_sim.client fs ~client_id:rank

let dufs_setup engine =
  let ensemble = Zk.Ensemble.start engine (Zk.Ensemble.default_config ~servers:5) in
  let layout = Dufs.Physical.default_layout in
  let mounts =
    Array.init 2 (fun _ ->
        Pfs.Lustre_sim.create engine ~config:(Pfs.Lustre_sim.backend_config ()) ())
  in
  Array.iter
    (fun mount ->
      match Dufs.Physical.format layout (Pfs.Lustre_sim.local_ops mount) with
      | Ok () -> ()
      | Error e -> failwith (Fuselike.Errno.to_string e))
    mounts;
  fun rank ->
    let backends =
      Array.mapi (fun i m -> Pfs.Lustre_sim.client m ~client_id:((rank * 2) + i)) mounts
    in
    Dufs.Client.ops
      (Dufs.Client.mount
         ~coord:(Zk.Ensemble.session ensemble ())
         ~backends
         ~client_id:(Int64.of_int (rank + 1))
         ~clock:(fun () -> Engine.now engine)
         ~delay:Process.sleep ())

let () =
  print_endline "N-to-N checkpoint: every rank creates+writes its file in one directory";
  List.iter
    (fun ranks ->
      Printf.printf "ranks = %d\n" ranks;
      let engine = Engine.create () in
      run_checkpoint ~label:"Basic Lustre" ~ranks ~ops_for_rank:(lustre_setup engine)
        engine;
      let engine = Engine.create () in
      run_checkpoint ~label:"DUFS" ~ranks ~ops_for_rank:(dufs_setup engine) engine)
    [ 64; 256; 1024 ]
