(* Metadata scaling sweep: run the mdtest workload over DUFS and Basic
   Lustre at increasing client counts and watch the crossover the paper
   reports — Lustre wins small, DUFS wins big.

       dune exec examples/metadata_scaling.exe

   This drives the same [Mdtest.Runner] harness the benchmarks use, at a
   reduced item count so it finishes in seconds. *)

module Engine = Simkit.Engine
module Process = Simkit.Process

let dufs_run ~procs =
  let engine = Engine.create () in
  let ensemble = Zk.Ensemble.start engine (Zk.Ensemble.default_config ~servers:8) in
  let layout = Dufs.Physical.default_layout in
  let mounts =
    Array.init 2 (fun _ ->
        Pfs.Lustre_sim.create engine ~config:(Pfs.Lustre_sim.backend_config ()) ())
  in
  Array.iter
    (fun mount ->
      match Dufs.Physical.format layout (Pfs.Lustre_sim.local_ops mount) with
      | Ok () -> ()
      | Error e -> failwith (Fuselike.Errno.to_string e))
    mounts;
  let ops_for_proc proc =
    let backends =
      Array.mapi (fun i m -> Pfs.Lustre_sim.client m ~client_id:((proc * 2) + i)) mounts
    in
    Dufs.Client.ops
      (Dufs.Client.mount
         ~coord:(Zk.Ensemble.session ensemble ())
         ~backends
         ~client_id:(Int64.of_int (proc + 1))
         ~clock:(fun () -> Engine.now engine)
         ~delay:Process.sleep ())
  in
  let cfg = Mdtest.Workload.config ~procs ~dirs_per_proc:40 ~files_per_proc:40 () in
  Mdtest.Runner.run engine cfg ~ops_for_proc

let lustre_run ~procs =
  let engine = Engine.create () in
  let fs = Pfs.Lustre_sim.create engine () in
  let cfg = Mdtest.Workload.config ~procs ~dirs_per_proc:40 ~files_per_proc:40 () in
  Mdtest.Runner.run engine cfg ~ops_for_proc:(fun proc ->
      Pfs.Lustre_sim.client fs ~client_id:proc)

let () =
  Printf.printf "%-8s %-14s" "procs" "system";
  List.iter
    (fun p -> Printf.printf " %12s" (Mdtest.Runner.phase_to_string p))
    Mdtest.Runner.all_phases;
  print_newline ();
  List.iter
    (fun procs ->
      List.iter
        (fun (label, results) ->
          Printf.printf "%-8d %-14s" procs label;
          List.iter
            (fun (_, rate) -> Printf.printf " %12.0f" rate)
            results.Mdtest.Runner.rates;
          Printf.printf "  (err=%d)\n%!" results.Mdtest.Runner.errors)
        [ ("Basic Lustre", lustre_run ~procs); ("DUFS 2xLustre", dufs_run ~procs) ])
    [ 16; 64; 256 ];
  print_endline "\n(ops/sec; note the crossover as the client count grows)"
