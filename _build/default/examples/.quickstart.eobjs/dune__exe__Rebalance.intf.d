examples/rebalance.mli:
