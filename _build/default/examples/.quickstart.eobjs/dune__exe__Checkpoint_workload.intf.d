examples/checkpoint_workload.mli:
