examples/quickstart.mli:
