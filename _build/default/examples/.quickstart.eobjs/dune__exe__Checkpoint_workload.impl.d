examples/checkpoint_workload.ml: Array Dufs Fuselike Int64 List Pfs Printf Simkit String Zk
