examples/rebalance.ml: Array Dufs Fuselike List Printf Zk
