examples/quickstart.ml: Array Dufs Fuselike List Printf String Zk
