examples/fault_tolerance.ml: Dufs Fuselike List Pfs Printf Simkit String Zk
