examples/metadata_scaling.mli:
