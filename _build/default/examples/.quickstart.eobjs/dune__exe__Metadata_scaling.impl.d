examples/metadata_scaling.ml: Array Dufs Fuselike Int64 List Mdtest Pfs Printf Simkit Zk
