(* Tests for the FUSE-equivalent VFS layer: errno, path algebra, the
   in-memory reference filesystem and the passthrough layer. *)

module Errno = Fuselike.Errno
module Fspath = Fuselike.Fspath
module Inode = Fuselike.Inode
module Vfs = Fuselike.Vfs
module Memfs = Fuselike.Memfs
module Passthrough = Fuselike.Passthrough

let errno = Alcotest.testable Errno.pp Errno.equal
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let ok_or_fail label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected %s" label (Errno.to_string e)

let expect_err label expected = function
  | Ok _ -> Alcotest.failf "%s: expected %s" label (Errno.to_string expected)
  | Error e -> Alcotest.check errno label expected e

(* {2 Errno} *)

let test_errno_codes () =
  check_int "ENOENT" (-2) (Errno.to_code Errno.ENOENT);
  check_int "EEXIST" (-17) (Errno.to_code Errno.EEXIST);
  check_int "ENOTEMPTY" (-39) (Errno.to_code Errno.ENOTEMPTY);
  check_string "string form" "EISDIR" (Errno.to_string Errno.EISDIR)

(* {2 Fspath} *)

let test_normalize () =
  check_string "collapses slashes" "/a/b" (Fspath.normalize "//a///b");
  check_string "strips trailing" "/a" (Fspath.normalize "/a/");
  check_string "root unchanged" "/" (Fspath.normalize "/");
  check_string "root from slashes" "/" (Fspath.normalize "///")

let test_split_join () =
  Alcotest.(check (list string)) "split" [ "a"; "b"; "c" ] (Fspath.split "/a/b/c");
  Alcotest.(check (list string)) "split root" [] (Fspath.split "/");
  check_string "join" "/a/b" (Fspath.join [ "a"; "b" ]);
  check_string "join empty" "/" (Fspath.join [])

let test_parent_basename () =
  check_string "parent" "/a/b" (Fspath.parent "/a/b/c");
  check_string "parent of top" "/" (Fspath.parent "/a");
  check_string "parent of root" "/" (Fspath.parent "/");
  check_string "basename" "c" (Fspath.basename "/a/b/c");
  check_string "basename of root" "" (Fspath.basename "/")

let test_concat () =
  check_string "concat" "/a/b" (Fspath.concat "/a" "b");
  check_string "concat at root" "/b" (Fspath.concat "/" "b")

let test_is_prefix () =
  check_bool "proper prefix" true (Fspath.is_prefix ~prefix:"/a" "/a/b");
  check_bool "equal" true (Fspath.is_prefix ~prefix:"/a" "/a");
  check_bool "sibling" false (Fspath.is_prefix ~prefix:"/a" "/ab");
  check_bool "root prefixes all" true (Fspath.is_prefix ~prefix:"/" "/x")

let test_validate () =
  check_bool "valid" true (Result.is_ok (Fspath.validate "/a/b"));
  check_bool "root valid" true (Result.is_ok (Fspath.validate "/"));
  expect_err "relative" Errno.EINVAL (Fspath.validate "a/b");
  expect_err "empty" Errno.EINVAL (Fspath.validate "");
  expect_err "dotdot" Errno.EINVAL (Fspath.validate "/a/../b");
  expect_err "dot" Errno.EINVAL (Fspath.validate "/a/./b");
  expect_err "too long" Errno.ENAMETOOLONG
    (Fspath.validate ("/" ^ String.make 300 'x'))

let prop_normalize_idempotent =
  QCheck2.Test.make ~name:"normalize is idempotent" ~count:300
    QCheck2.Gen.(string_size ~gen:(oneofl [ '/'; 'a'; 'b' ]) (int_range 1 20))
    (fun s ->
      let n = Fspath.normalize s in
      Fspath.normalize n = n)

let prop_split_join_roundtrip =
  QCheck2.Test.make ~name:"join (split p) = normalize p for absolute paths" ~count:300
    QCheck2.Gen.(
      list_size (int_range 0 6) (string_size ~gen:(char_range 'a' 'z') (int_range 1 8)))
    (fun comps ->
      let p = Fspath.join comps in
      Fspath.split p = comps && Fspath.join (Fspath.split p) = p)

(* {2 Memfs basics} *)

let make_fs () = Memfs.ops (Memfs.create ~clock:(fun () -> 1000.) ())

let test_root_exists () =
  let fs = make_fs () in
  let attr = ok_or_fail "getattr /" (fs.Vfs.getattr "/") in
  check_bool "is dir" true (Inode.equal_kind attr.Inode.kind Inode.Directory)

let test_mkdir_and_stat () =
  let fs = make_fs () in
  ok_or_fail "mkdir" (fs.Vfs.mkdir "/d" ~mode:0o700);
  let attr = ok_or_fail "getattr" (fs.Vfs.getattr "/d") in
  check_bool "dir kind" true (Inode.equal_kind attr.Inode.kind Inode.Directory);
  check_int "mode" 0o700 attr.Inode.mode

let test_mkdir_errors () =
  let fs = make_fs () in
  ok_or_fail "mkdir" (fs.Vfs.mkdir "/d" ~mode:0o755);
  expect_err "duplicate" Errno.EEXIST (fs.Vfs.mkdir "/d" ~mode:0o755);
  expect_err "missing parent" Errno.ENOENT (fs.Vfs.mkdir "/x/y" ~mode:0o755);
  ok_or_fail "create file" (fs.Vfs.create "/f" ~mode:0o644);
  expect_err "file as parent" Errno.ENOTDIR (fs.Vfs.mkdir "/f/sub" ~mode:0o755)

let test_create_errors () =
  let fs = make_fs () in
  ok_or_fail "create" (fs.Vfs.create "/f" ~mode:0o644);
  expect_err "duplicate file" Errno.EEXIST (fs.Vfs.create "/f" ~mode:0o644);
  expect_err "missing parent" Errno.ENOENT (fs.Vfs.create "/nope/f" ~mode:0o644)

let test_unlink () =
  let fs = make_fs () in
  ok_or_fail "create" (fs.Vfs.create "/f" ~mode:0o644);
  ok_or_fail "unlink" (fs.Vfs.unlink "/f");
  expect_err "gone" Errno.ENOENT (fs.Vfs.getattr "/f");
  expect_err "unlink again" Errno.ENOENT (fs.Vfs.unlink "/f");
  ok_or_fail "mkdir" (fs.Vfs.mkdir "/d" ~mode:0o755);
  expect_err "unlink dir" Errno.EISDIR (fs.Vfs.unlink "/d")

let test_rmdir () =
  let fs = make_fs () in
  ok_or_fail "mkdir" (fs.Vfs.mkdir "/d" ~mode:0o755);
  ok_or_fail "mkdir nested" (fs.Vfs.mkdir "/d/e" ~mode:0o755);
  expect_err "not empty" Errno.ENOTEMPTY (fs.Vfs.rmdir "/d");
  ok_or_fail "rmdir child" (fs.Vfs.rmdir "/d/e");
  ok_or_fail "rmdir now empty" (fs.Vfs.rmdir "/d");
  ok_or_fail "create file" (fs.Vfs.create "/f" ~mode:0o644);
  expect_err "rmdir on file" Errno.ENOTDIR (fs.Vfs.rmdir "/f")

let test_readdir_sorted () =
  let fs = make_fs () in
  List.iter
    (fun name -> ok_or_fail name (fs.Vfs.create ("/" ^ name) ~mode:0o644))
    [ "zeta"; "alpha"; "mid" ];
  ok_or_fail "mkdir" (fs.Vfs.mkdir "/beta" ~mode:0o755);
  let entries = ok_or_fail "readdir" (fs.Vfs.readdir "/") in
  Alcotest.(check (list string)) "sorted names" [ "alpha"; "beta"; "mid"; "zeta" ]
    (List.map (fun e -> e.Vfs.name) entries);
  let kinds = List.map (fun e -> Inode.kind_to_string e.Vfs.kind) entries in
  Alcotest.(check (list string)) "kinds" [ "file"; "dir"; "file"; "file" ] kinds

let test_readdir_errors () =
  let fs = make_fs () in
  expect_err "missing" Errno.ENOENT (fs.Vfs.readdir "/nope");
  ok_or_fail "create" (fs.Vfs.create "/f" ~mode:0o644);
  expect_err "file" Errno.ENOTDIR (fs.Vfs.readdir "/f")

let test_symlink_readlink () =
  let fs = make_fs () in
  ok_or_fail "symlink" (fs.Vfs.symlink ~target:"/somewhere" "/l");
  check_string "target" "/somewhere" (ok_or_fail "readlink" (fs.Vfs.readlink "/l"));
  let attr = ok_or_fail "getattr" (fs.Vfs.getattr "/l") in
  check_bool "symlink kind" true (Inode.equal_kind attr.Inode.kind Inode.Symlink);
  ok_or_fail "mkdir" (fs.Vfs.mkdir "/d" ~mode:0o755);
  expect_err "readlink on dir" Errno.EINVAL (fs.Vfs.readlink "/d")

let test_chmod () =
  let fs = make_fs () in
  ok_or_fail "create" (fs.Vfs.create "/f" ~mode:0o644);
  ok_or_fail "chmod" (fs.Vfs.chmod "/f" ~mode:0o400);
  let attr = ok_or_fail "getattr" (fs.Vfs.getattr "/f") in
  check_int "new mode" 0o400 attr.Inode.mode

(* {2 Memfs data path} *)

let test_write_read () =
  let fs = make_fs () in
  ok_or_fail "create" (fs.Vfs.create "/f" ~mode:0o644);
  check_int "written" 5 (ok_or_fail "write" (fs.Vfs.write "/f" ~off:0 "hello"));
  check_string "read" "hello" (ok_or_fail "read" (fs.Vfs.read "/f" ~off:0 ~len:5));
  check_string "partial" "ell" (ok_or_fail "read" (fs.Vfs.read "/f" ~off:1 ~len:3));
  check_string "past eof" "" (ok_or_fail "read" (fs.Vfs.read "/f" ~off:10 ~len:5));
  check_string "clamped" "lo" (ok_or_fail "read" (fs.Vfs.read "/f" ~off:3 ~len:100))

let test_sparse_write () =
  let fs = make_fs () in
  ok_or_fail "create" (fs.Vfs.create "/f" ~mode:0o644);
  ignore (ok_or_fail "write at offset" (fs.Vfs.write "/f" ~off:3 "xy"));
  check_string "zero filled" "\000\000\000xy"
    (ok_or_fail "read" (fs.Vfs.read "/f" ~off:0 ~len:5));
  let attr = ok_or_fail "getattr" (fs.Vfs.getattr "/f") in
  check_int "size" 5 (Int64.to_int attr.Inode.size)

let test_truncate () =
  let fs = make_fs () in
  ok_or_fail "create" (fs.Vfs.create "/f" ~mode:0o644);
  ignore (ok_or_fail "write" (fs.Vfs.write "/f" ~off:0 "hello world"));
  ok_or_fail "shrink" (fs.Vfs.truncate "/f" ~size:5L);
  check_string "shrunk" "hello" (ok_or_fail "read" (fs.Vfs.read "/f" ~off:0 ~len:100));
  ok_or_fail "grow" (fs.Vfs.truncate "/f" ~size:8L);
  check_string "zero padded" "hello\000\000\000"
    (ok_or_fail "read" (fs.Vfs.read "/f" ~off:0 ~len:100));
  ok_or_fail "mkdir" (fs.Vfs.mkdir "/d" ~mode:0o755);
  expect_err "truncate dir" Errno.EISDIR (fs.Vfs.truncate "/d" ~size:0L)

let test_overwrite () =
  let fs = make_fs () in
  ok_or_fail "create" (fs.Vfs.create "/f" ~mode:0o644);
  ignore (ok_or_fail "write" (fs.Vfs.write "/f" ~off:0 "aaaa"));
  ignore (ok_or_fail "overwrite" (fs.Vfs.write "/f" ~off:1 "bb"));
  check_string "merged" "abba" (ok_or_fail "read" (fs.Vfs.read "/f" ~off:0 ~len:4))

(* {2 Memfs rename} *)

let test_rename_file () =
  let fs = make_fs () in
  ok_or_fail "create" (fs.Vfs.create "/f" ~mode:0o644);
  ignore (ok_or_fail "write" (fs.Vfs.write "/f" ~off:0 "data"));
  ok_or_fail "rename" (fs.Vfs.rename "/f" "/g");
  expect_err "source gone" Errno.ENOENT (fs.Vfs.getattr "/f");
  check_string "content moved" "data" (ok_or_fail "read" (fs.Vfs.read "/g" ~off:0 ~len:4))

let test_rename_replaces_file () =
  let fs = make_fs () in
  ok_or_fail "create src" (fs.Vfs.create "/src" ~mode:0o644);
  ignore (ok_or_fail "write" (fs.Vfs.write "/src" ~off:0 "new"));
  ok_or_fail "create dst" (fs.Vfs.create "/dst" ~mode:0o644);
  ignore (ok_or_fail "write" (fs.Vfs.write "/dst" ~off:0 "old"));
  ok_or_fail "rename over" (fs.Vfs.rename "/src" "/dst");
  check_string "replaced" "new" (ok_or_fail "read" (fs.Vfs.read "/dst" ~off:0 ~len:3))

let test_rename_dir_rules () =
  let fs = make_fs () in
  ok_or_fail "mkdir a" (fs.Vfs.mkdir "/a" ~mode:0o755);
  ok_or_fail "mkdir a/inner" (fs.Vfs.mkdir "/a/inner" ~mode:0o755);
  ok_or_fail "mkdir empty" (fs.Vfs.mkdir "/empty" ~mode:0o755);
  ok_or_fail "mkdir full" (fs.Vfs.mkdir "/full" ~mode:0o755);
  ok_or_fail "file inside" (fs.Vfs.create "/full/x" ~mode:0o644);
  ok_or_fail "create f" (fs.Vfs.create "/f" ~mode:0o644);
  ok_or_fail "dir over empty dir" (fs.Vfs.rename "/a" "/empty");
  check_bool "moved with children" true (Result.is_ok (fs.Vfs.getattr "/empty/inner"));
  expect_err "dir over full dir" Errno.ENOTEMPTY (fs.Vfs.rename "/empty" "/full");
  expect_err "dir over file" Errno.ENOTDIR (fs.Vfs.rename "/empty" "/f");
  expect_err "file over dir" Errno.EISDIR (fs.Vfs.rename "/f" "/full")

let test_rename_into_own_subtree () =
  let fs = make_fs () in
  ok_or_fail "mkdir" (fs.Vfs.mkdir "/a" ~mode:0o755);
  ok_or_fail "mkdir nested" (fs.Vfs.mkdir "/a/b" ~mode:0o755);
  expect_err "into own subtree" Errno.EINVAL (fs.Vfs.rename "/a" "/a/b/c");
  ok_or_fail "self rename is noop" (fs.Vfs.rename "/a" "/a")

let test_rename_missing () =
  let fs = make_fs () in
  expect_err "missing source" Errno.ENOENT (fs.Vfs.rename "/nope" "/x");
  ok_or_fail "create" (fs.Vfs.create "/f" ~mode:0o644);
  expect_err "missing dest parent" Errno.ENOENT (fs.Vfs.rename "/f" "/no/dir/f")

(* {2 Memfs accounting} *)

let test_statfs_counts () =
  let fs = make_fs () in
  ok_or_fail "mkdir" (fs.Vfs.mkdir "/d" ~mode:0o755);
  ok_or_fail "create 1" (fs.Vfs.create "/d/f1" ~mode:0o644);
  ok_or_fail "create 2" (fs.Vfs.create "/d/f2" ~mode:0o644);
  ok_or_fail "symlink" (fs.Vfs.symlink ~target:"t" "/l");
  let stats = fs.Vfs.statfs () in
  check_int "files" 2 stats.Vfs.files;
  check_int "dirs (incl root)" 2 stats.Vfs.directories;
  check_int "symlinks" 1 stats.Vfs.symlinks;
  ok_or_fail "unlink" (fs.Vfs.unlink "/d/f1");
  check_int "file count drops" 1 (fs.Vfs.statfs ()).Vfs.files

let test_resident_bytes_grow_and_shrink () =
  let memfs = Memfs.create ~clock:(fun () -> 0.) () in
  let fs = Memfs.ops memfs in
  let before = Memfs.resident_bytes memfs in
  ok_or_fail "create" (fs.Vfs.create "/f" ~mode:0o644);
  ignore (ok_or_fail "write" (fs.Vfs.write "/f" ~off:0 (String.make 1000 'x')));
  let during = Memfs.resident_bytes memfs in
  check_bool "grew by at least payload" true (during >= before + 1000);
  ok_or_fail "unlink" (fs.Vfs.unlink "/f");
  check_int "back to baseline" before (Memfs.resident_bytes memfs)

(* {2 Vfs helpers} *)

let test_mkdir_p () =
  let fs = make_fs () in
  ok_or_fail "mkdir_p deep" (Vfs.mkdir_p fs "/a/b/c" ~mode:0o755);
  check_bool "leaf exists" true (Vfs.exists fs "/a/b/c");
  ok_or_fail "idempotent" (Vfs.mkdir_p fs "/a/b/c" ~mode:0o755);
  ok_or_fail "create" (fs.Vfs.create "/a/file" ~mode:0o644);
  expect_err "through a file" Errno.ENOTDIR (Vfs.mkdir_p fs "/a/file/x" ~mode:0o755)

let test_not_supported () =
  let fs = Vfs.not_supported in
  expect_err "getattr" Errno.EPERM (fs.Vfs.getattr "/");
  expect_err "mkdir" Errno.EPERM (fs.Vfs.mkdir "/d" ~mode:0o755);
  check_int "statfs zero" 0 (fs.Vfs.statfs ()).Vfs.files

(* {2 Passthrough} *)

let test_passthrough_forwards () =
  let inner = make_fs () in
  let pt = Passthrough.create inner in
  let fs = Passthrough.ops pt in
  ok_or_fail "mkdir through" (fs.Vfs.mkdir "/d" ~mode:0o755);
  check_bool "visible underneath" true (Vfs.exists inner "/d");
  ok_or_fail "create through" (fs.Vfs.create "/d/f" ~mode:0o644);
  ignore (ok_or_fail "stat through" (fs.Vfs.getattr "/d/f"));
  check_int "ops counted" 3 (Passthrough.forwarded pt)

let test_passthrough_memory_flat () =
  let inner = make_fs () in
  let pt = Passthrough.create inner in
  let fs = Passthrough.ops pt in
  let before = Passthrough.resident_bytes pt in
  for i = 0 to 999 do
    ok_or_fail "mkdir" (fs.Vfs.mkdir (Printf.sprintf "/d%d" i) ~mode:0o755)
  done;
  check_int "resident size unchanged by namespace growth" before
    (Passthrough.resident_bytes pt)

(* {2 Property: random op sequences never corrupt invariants} *)

type op =
  | Op_mkdir of string
  | Op_create of string
  | Op_unlink of string
  | Op_rmdir of string
  | Op_rename of string * string

let gen_path =
  QCheck2.Gen.(
    let comp = oneofl [ "a"; "b"; "c" ] in
    map (fun comps -> "/" ^ String.concat "/" comps) (list_size (int_range 1 3) comp))

let gen_op =
  QCheck2.Gen.(
    oneof
      [ map (fun p -> Op_mkdir p) gen_path;
        map (fun p -> Op_create p) gen_path;
        map (fun p -> Op_unlink p) gen_path;
        map (fun p -> Op_rmdir p) gen_path;
        map (fun (a, b) -> Op_rename (a, b)) (pair gen_path gen_path) ])

(* After any op sequence: statfs counters equal a recursive walk's counts. *)
let prop_memfs_counters_consistent =
  QCheck2.Test.make ~name:"statfs counters match a recursive walk" ~count:300
    QCheck2.Gen.(list_size (int_range 0 40) gen_op)
    (fun ops_list ->
      let fs = make_fs () in
      List.iter
        (fun op ->
          ignore
            (match op with
            | Op_mkdir p -> Result.map ignore (fs.Vfs.mkdir p ~mode:0o755)
            | Op_create p -> Result.map ignore (fs.Vfs.create p ~mode:0o644)
            | Op_unlink p -> Result.map ignore (fs.Vfs.unlink p)
            | Op_rmdir p -> Result.map ignore (fs.Vfs.rmdir p)
            | Op_rename (a, b) -> Result.map ignore (fs.Vfs.rename a b)))
        ops_list;
      let rec walk path (files, dirs) =
        match fs.Vfs.readdir path with
        | Error _ -> (files, dirs)
        | Ok entries ->
          List.fold_left
            (fun acc e ->
              let child = Fspath.concat path e.Vfs.name in
              match e.Vfs.kind with
              | Inode.Directory -> walk child (fst acc, snd acc + 1)
              | Inode.Regular | Inode.Symlink -> (fst acc + 1, snd acc))
            (files, dirs) entries
      in
      let files, dirs = walk "/" (0, 1) in
      let stats = fs.Vfs.statfs () in
      stats.Vfs.files = files && stats.Vfs.directories = dirs)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "fuselike"
    [ ("errno", [ Alcotest.test_case "codes" `Quick test_errno_codes ]);
      ( "fspath",
        [ Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "split/join" `Quick test_split_join;
          Alcotest.test_case "parent/basename" `Quick test_parent_basename;
          Alcotest.test_case "concat" `Quick test_concat;
          Alcotest.test_case "is_prefix" `Quick test_is_prefix;
          Alcotest.test_case "validate" `Quick test_validate;
          qc prop_normalize_idempotent;
          qc prop_split_join_roundtrip ] );
      ( "memfs-namespace",
        [ Alcotest.test_case "root exists" `Quick test_root_exists;
          Alcotest.test_case "mkdir and stat" `Quick test_mkdir_and_stat;
          Alcotest.test_case "mkdir errors" `Quick test_mkdir_errors;
          Alcotest.test_case "create errors" `Quick test_create_errors;
          Alcotest.test_case "unlink" `Quick test_unlink;
          Alcotest.test_case "rmdir" `Quick test_rmdir;
          Alcotest.test_case "readdir sorted" `Quick test_readdir_sorted;
          Alcotest.test_case "readdir errors" `Quick test_readdir_errors;
          Alcotest.test_case "symlink/readlink" `Quick test_symlink_readlink;
          Alcotest.test_case "chmod" `Quick test_chmod ] );
      ( "memfs-data",
        [ Alcotest.test_case "write/read" `Quick test_write_read;
          Alcotest.test_case "sparse write" `Quick test_sparse_write;
          Alcotest.test_case "truncate" `Quick test_truncate;
          Alcotest.test_case "overwrite" `Quick test_overwrite ] );
      ( "memfs-rename",
        [ Alcotest.test_case "rename file" `Quick test_rename_file;
          Alcotest.test_case "rename replaces file" `Quick test_rename_replaces_file;
          Alcotest.test_case "dir rename rules" `Quick test_rename_dir_rules;
          Alcotest.test_case "into own subtree" `Quick test_rename_into_own_subtree;
          Alcotest.test_case "missing endpoints" `Quick test_rename_missing ] );
      ( "memfs-accounting",
        [ Alcotest.test_case "statfs counts" `Quick test_statfs_counts;
          Alcotest.test_case "resident bytes" `Quick
            test_resident_bytes_grow_and_shrink;
          qc prop_memfs_counters_consistent ] );
      ( "vfs-helpers",
        [ Alcotest.test_case "mkdir_p" `Quick test_mkdir_p;
          Alcotest.test_case "not_supported" `Quick test_not_supported ] );
      ( "passthrough",
        [ Alcotest.test_case "forwards" `Quick test_passthrough_forwards;
          Alcotest.test_case "memory flat" `Quick test_passthrough_memory_flat ] ) ]
