(* Tests for the DUFS core primitives: MD5, FIDs, the deterministic
   mapping function, consistent hashing, physical layout and metadata
   encoding. *)

module Md5 = Dufs.Md5
module Fid = Dufs.Fid
module Mapping = Dufs.Mapping
module Consistent_hash = Dufs.Consistent_hash
module Physical = Dufs.Physical
module Meta = Dufs.Meta

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* {2 MD5 (RFC 1321 test vectors)} *)

let rfc1321_vectors =
  [ ("", "d41d8cd98f00b204e9800998ecf8427e");
    ("a", "0cc175b9c0f1b6a831c399e269772661");
    ("abc", "900150983cd24fb0d6963f7d28e17f72");
    ("message digest", "f96b697d7cb7938d525a2f31aaf161d0");
    ("abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b");
    ( "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
      "d174ab98d277d9f5a5611c2c9f419d9f" );
    ( "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
      "57edf4a22be3c955ac49da2e2107b67a" ) ]

let test_rfc_vectors () =
  List.iter
    (fun (input, expected) ->
      check_string (Printf.sprintf "md5(%S)" input) expected (Md5.hex input))
    rfc1321_vectors

let test_digest_length () =
  check_int "raw digest is 16 bytes" 16 (String.length (Md5.digest "anything"));
  check_int "hex digest is 32 chars" 32 (String.length (Md5.hex "anything"))

let test_block_boundaries () =
  (* lengths around the 64-byte block and 56-byte padding boundary *)
  List.iter
    (fun n ->
      let s = String.make n 'x' in
      let direct = Md5.digest s in
      let ctx = Md5.init () in
      Md5.update ctx s;
      check_string
        (Printf.sprintf "one-shot = incremental at length %d" n)
        direct (Md5.finalize ctx))
    [ 0; 1; 55; 56; 57; 63; 64; 65; 119; 120; 127; 128; 1000 ]

let test_incremental_chunking () =
  let s = String.init 333 (fun i -> Char.chr (i mod 256)) in
  let direct = Md5.digest s in
  let ctx = Md5.init () in
  let rec feed off =
    if off < String.length s then begin
      let len = min 7 (String.length s - off) in
      Md5.update ctx ~off ~len s;
      feed (off + len)
    end
  in
  feed 0;
  check_string "chunked = one-shot" direct (Md5.finalize ctx)

let test_update_range_validation () =
  let ctx = Md5.init () in
  Alcotest.check_raises "bad range" (Invalid_argument "Md5.update: bad range")
    (fun () -> Md5.update ctx ~off:5 ~len:10 "short")

let prop_md5_deterministic =
  QCheck2.Test.make ~name:"md5 deterministic and 128-bit" ~count:300
    QCheck2.Gen.string (fun s ->
      Md5.digest s = Md5.digest s && String.length (Md5.digest s) = 16)

let prop_md5_incremental_split =
  QCheck2.Test.make ~name:"md5 split at any point = one-shot" ~count:300
    QCheck2.Gen.(pair string (int_range 0 1000))
    (fun (s, k) ->
      let k = if String.length s = 0 then 0 else k mod (String.length s + 1) in
      let ctx = Md5.init () in
      Md5.update ctx ~off:0 ~len:k s;
      Md5.update ctx ~off:k ~len:(String.length s - k) s;
      Md5.finalize ctx = Md5.digest s)

let test_to_int_nonnegative () =
  List.iter
    (fun s -> check_bool "to_int >= 0" true (Md5.to_int (Md5.digest s) >= 0))
    [ ""; "a"; "\255\255\255\255\255\255\255\255"; "zzz" ]

(* {2 FID} *)

let test_fid_hex_roundtrip () =
  let fid = Fid.make ~client_id:0x0123456789abcdefL ~counter:42L in
  let hex = Fid.to_hex fid in
  check_int "32 hex chars" 32 (String.length hex);
  check_string "layout" "0123456789abcdef000000000000002a" hex;
  (match Fid.of_hex hex with
  | Some fid' -> check_bool "roundtrip" true (Fid.equal fid fid')
  | None -> Alcotest.fail "of_hex failed")

let test_fid_of_hex_rejects_garbage () =
  check_bool "short" true (Fid.of_hex "abc" = None);
  check_bool "bad chars" true (Fid.of_hex (String.make 32 'g') = None);
  check_bool "right length wrong chars" true
    (Fid.of_hex "0123456789abcdef0123456789abcdeZ" = None)

let test_fid_bytes () =
  let fid = Fid.make ~client_id:1L ~counter:258L in
  let b = Fid.to_bytes fid in
  check_int "16 bytes" 16 (String.length b);
  check_int "client id big-endian" 1 (Char.code b.[7]);
  check_int "counter high byte" 1 (Char.code b.[14]);
  check_int "counter low byte" 2 (Char.code b.[15])

let test_fid_generator () =
  let gen = Fid.Gen.create ~client_id:7L in
  let a = Fid.Gen.next gen and b = Fid.Gen.next gen in
  check_bool "distinct" true (not (Fid.equal a b));
  check_bool "same client" true (Fid.compare a b < 0);
  check_bool "counter increments" true
    (Int64.equal (Fid.Gen.generated gen) 2L)

let prop_fid_uniqueness =
  QCheck2.Test.make ~name:"fids unique across clients and counters" ~count:100
    QCheck2.Gen.(int_range 2 8)
    (fun clients ->
      let all =
        List.concat_map
          (fun c ->
            let gen = Fid.Gen.create ~client_id:(Int64.of_int c) in
            List.init 50 (fun _ -> Fid.to_hex (Fid.Gen.next gen)))
          (List.init clients (fun i -> i + 1))
      in
      List.length (List.sort_uniq compare all) = List.length all)

(* {2 Mapping function} *)

let fids_for_tests n =
  let gen = Fid.Gen.create ~client_id:99L in
  List.init n (fun _ -> Fid.Gen.next gen)

let test_mapping_range () =
  List.iter
    (fun backends ->
      List.iter
        (fun fid ->
          let i = Mapping.md5_mod ~backends fid in
          check_bool "in range" true (i >= 0 && i < backends))
        (fids_for_tests 200))
    [ 1; 2; 3; 7; 16 ]

let test_mapping_deterministic () =
  let fid = Fid.make ~client_id:5L ~counter:123L in
  check_int "same result every time"
    (Mapping.md5_mod ~backends:4 fid)
    (Mapping.md5_mod ~backends:4 fid)

let test_mapping_rejects_zero_backends () =
  Alcotest.check_raises "zero backends"
    (Invalid_argument "Mapping.md5_mod: backends < 1") (fun () ->
      ignore (Mapping.md5_mod ~backends:0 (Fid.make ~client_id:1L ~counter:1L)))

let test_mapping_fairness () =
  (* the paper picks MD5 precisely for its load-spreading fairness (§IV-F) *)
  let fids = fids_for_tests 20_000 in
  List.iter
    (fun backends ->
      let imbalance =
        Mapping.imbalance (Mapping.md5_mod ~backends) ~backends fids
      in
      check_bool
        (Printf.sprintf "max/min bucket ratio %.3f < 1.15 for N=%d" imbalance backends)
        true (imbalance < 1.15))
    [ 2; 4; 8 ]

let test_mapping_consistent_strategy_agrees_with_ring () =
  let ring = Consistent_hash.create [ 0; 1; 2 ] in
  let fid = Fid.make ~client_id:3L ~counter:77L in
  check_int "locate delegates to the ring"
    (Consistent_hash.lookup ring (Fid.to_bytes fid))
    (Mapping.locate (Mapping.Consistent ring) ~backends:3 fid)

(* {2 Consistent hashing} *)

let test_ring_basic () =
  let ring = Consistent_hash.create [ 0; 1; 2; 3 ] in
  Alcotest.(check (list int)) "nodes" [ 0; 1; 2; 3 ] (Consistent_hash.nodes ring);
  let owner = Consistent_hash.lookup ring "some-key" in
  check_bool "owner valid" true (owner >= 0 && owner < 4);
  check_int "lookup deterministic" owner (Consistent_hash.lookup ring "some-key")

let test_ring_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Consistent_hash.create: no nodes")
    (fun () -> ignore (Consistent_hash.create []));
  Alcotest.check_raises "duplicate ids"
    (Invalid_argument "Consistent_hash.create: duplicate node ids") (fun () ->
      ignore (Consistent_hash.create [ 1; 1 ]));
  let ring = Consistent_hash.create [ 0 ] in
  Alcotest.check_raises "remove last"
    (Invalid_argument "Consistent_hash.remove_node: would empty the ring") (fun () ->
      ignore (Consistent_hash.remove_node ring 0))

let keys_for_tests n = List.init n (fun i -> Printf.sprintf "key-%d" i)

let test_ring_bounded_relocation_on_add () =
  (* §VII: adding a back-end must relocate only ~1/(N+1) of the data *)
  let keys = keys_for_tests 20_000 in
  let before = Consistent_hash.create [ 0; 1; 2; 3 ] in
  let after = Consistent_hash.add_node before 4 in
  let moved = Consistent_hash.relocated ~before ~after keys in
  check_bool (Printf.sprintf "moved %.3f ≈ 1/5" moved) true
    (moved > 0.10 && moved < 0.30)

let test_ring_relocation_only_to_new_node () =
  let keys = keys_for_tests 5_000 in
  let before = Consistent_hash.create [ 0; 1; 2 ] in
  let after = Consistent_hash.add_node before 3 in
  List.iter
    (fun key ->
      let a = Consistent_hash.lookup before key and b = Consistent_hash.lookup after key in
      if a <> b then check_int "keys only move to the new node" 3 b)
    keys

let test_ring_remove_inverse_of_add () =
  let before = Consistent_hash.create [ 0; 1; 2 ] in
  let round_trip = Consistent_hash.remove_node (Consistent_hash.add_node before 9) 9 in
  List.iter
    (fun key ->
      check_int "same owner after add+remove"
        (Consistent_hash.lookup before key)
        (Consistent_hash.lookup round_trip key))
    (keys_for_tests 1_000)

let test_md5_mod_relocation_is_unbounded () =
  (* the contrast motivating the future work: mod-N moves ~1 - 1/(N+1) *)
  let fids = fids_for_tests 20_000 in
  let moved =
    List.length
      (List.filter
         (fun fid -> Mapping.md5_mod ~backends:4 fid <> Mapping.md5_mod ~backends:5 fid)
         fids)
  in
  let fraction = float_of_int moved /. 20_000. in
  check_bool (Printf.sprintf "mod-N moved %.2f > 0.6" fraction) true (fraction > 0.6)

let prop_ring_balance =
  QCheck2.Test.make ~name:"ring spreads keys within 2.5x of fair" ~count:10
    QCheck2.Gen.(int_range 2 8)
    (fun nodes ->
      let ring = Consistent_hash.create ~replicas:128 (List.init nodes Fun.id) in
      let counts = Array.make nodes 0 in
      List.iter
        (fun key ->
          let o = Consistent_hash.lookup ring key in
          counts.(o) <- counts.(o) + 1)
        (keys_for_tests 20_000);
      let fair = 20_000. /. float_of_int nodes in
      Array.for_all
        (fun c -> float_of_int c > fair /. 2.5 && float_of_int c < fair *. 2.5)
        counts)

(* {2 Physical layout} *)

let test_paper_split_example () =
  (* Fig. 4 of the paper, verbatim *)
  check_string "paper example" "cdef/89ab/4567/0123"
    (Physical.paper_split "0123456789abcdef")

let test_physical_path_shape () =
  let fid = Fid.make ~client_id:0x0123456789abcdefL ~counter:0x1122334455667788L in
  let layout = Physical.default_layout in
  let p = Physical.path layout fid in
  (* low hex digits of the counter become the leading components *)
  check_string "path" "/8/8/0123456789abcdef1122334455667788" p;
  check_string "dir" "/8/8" (Physical.dir layout fid)

let test_physical_components_vary_fastest () =
  (* consecutive creates land in different top-level directories *)
  let layout = Physical.default_layout in
  let gen = Fid.Gen.create ~client_id:1L in
  let dirs =
    List.init 16 (fun _ -> Physical.dir layout (Fid.Gen.next gen))
  in
  check_int "16 consecutive fids hit 16 distinct dirs" 16
    (List.length (List.sort_uniq compare dirs))

let test_physical_fid_roundtrip () =
  let layout = { Physical.levels = 3; chars_per_level = 2 } in
  let fid = Fid.make ~client_id:123L ~counter:456L in
  (match Physical.fid_of_path (Physical.path layout fid) with
  | Some fid' -> check_bool "roundtrip through path" true (Fid.equal fid fid')
  | None -> Alcotest.fail "fid_of_path failed")

let test_physical_bad_layout () =
  Alcotest.check_raises "too many chars" (Invalid_argument "Physical: bad layout")
    (fun () ->
      ignore
        (Physical.path { Physical.levels = 5; chars_per_level = 4 }
           (Fid.make ~client_id:1L ~counter:1L)))

let test_format_creates_hierarchy () =
  let fs = Fuselike.Memfs.create ~clock:(fun () -> 0.) () in
  let ops = Fuselike.Memfs.ops fs in
  (match Physical.format Physical.default_layout ops with
  | Ok () -> ()
  | Error e -> Alcotest.failf "format: %s" (Fuselike.Errno.to_string e));
  (* 16 top dirs, each with 16 children *)
  check_int "16 top-level dirs" 16
    (List.length (Result.get_ok (ops.Fuselike.Vfs.readdir "/")));
  check_int "16 second-level dirs" 16
    (List.length (Result.get_ok (ops.Fuselike.Vfs.readdir "/a")));
  (* formatting is idempotent *)
  check_bool "idempotent" true (Physical.format Physical.default_layout ops = Ok ())

let prop_physical_unique_paths =
  QCheck2.Test.make ~name:"distinct fids give distinct physical paths" ~count:100
    QCheck2.Gen.(pair int64 int64)
    (fun (a, b) ->
      let fid_a = Fid.make ~client_id:1L ~counter:a in
      let fid_b = Fid.make ~client_id:1L ~counter:b in
      Int64.equal a b
      || Physical.path Physical.default_layout fid_a
         <> Physical.path Physical.default_layout fid_b)

(* {2 Meta encoding} *)

let test_meta_roundtrip_dir () =
  let meta = Meta.dir ~mode:0o751 ~ctime:1234.5 in
  (match Meta.decode (Meta.encode meta) with
  | Ok meta' -> check_bool "dir roundtrip" true (Meta.equal meta meta')
  | Error e -> Alcotest.fail e)

let test_meta_roundtrip_file () =
  let fid = Fid.make ~client_id:77L ~counter:88L in
  let meta = Meta.file fid ~mode:0o640 ~ctime:0.125 in
  match Meta.decode (Meta.encode meta) with
  | Ok { Meta.kind = Meta.File fid'; mode; _ } ->
    check_bool "fid kept" true (Fid.equal fid fid');
    check_int "mode kept" 0o640 mode
  | Ok _ -> Alcotest.fail "wrong kind"
  | Error e -> Alcotest.fail e

let test_meta_roundtrip_symlink_with_separator () =
  (* the target is the last field, so it may contain the separator *)
  let meta = Meta.symlink ~target:"/weird|name|with|pipes" ~ctime:9. in
  match Meta.decode (Meta.encode meta) with
  | Ok { Meta.kind = Meta.Symlink target; _ } ->
    check_string "target with pipes survives" "/weird|name|with|pipes" target
  | Ok _ -> Alcotest.fail "wrong kind"
  | Error e -> Alcotest.fail e

let test_meta_decode_rejects_garbage () =
  List.iter
    (fun s ->
      check_bool (Printf.sprintf "rejects %S" s) true (Result.is_error (Meta.decode s)))
    [ ""; "v0|d|755|0|"; "v1|z|755|0|"; "v1|d|xyz|0|"; "v1|f|644|0|nothex"; "random" ]

let prop_meta_roundtrip =
  QCheck2.Test.make ~name:"meta encode/decode roundtrip" ~count:300
    QCheck2.Gen.(triple (int_range 0 0o777) (float_range 0. 1e9) (pair int64 int64))
    (fun (mode, ctime, (client_id, counter)) ->
      let metas =
        [ Meta.dir ~mode ~ctime;
          Meta.file (Fid.make ~client_id ~counter) ~mode ~ctime ]
      in
      List.for_all
        (fun meta ->
          match Meta.decode (Meta.encode meta) with
          | Ok meta' -> Meta.equal meta meta'
          | Error _ -> false)
        metas)

(* {2 Extra edges} *)

let test_md5_large_input () =
  (* multi-megabyte input exercises the block loop; value cross-checked
     against the incremental path rather than an external oracle *)
  let s = String.init (3 * 1024 * 1024) (fun i -> Char.chr (i mod 251)) in
  let ctx = Md5.init () in
  let half = String.length s / 2 in
  Md5.update ctx ~off:0 ~len:half s;
  Md5.update ctx ~off:half ~len:(String.length s - half) s;
  check_string "3 MiB split = one-shot" (Md5.hex s)
    (let buf = Buffer.create 32 in
     String.iter
       (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c)))
       (Md5.finalize ctx);
     Buffer.contents buf)

let test_fid_compare_total_order () =
  let a = Fid.make ~client_id:1L ~counter:5L in
  let b = Fid.make ~client_id:1L ~counter:6L in
  let c = Fid.make ~client_id:2L ~counter:0L in
  check_bool "counter orders within client" true (Fid.compare a b < 0);
  check_bool "client id dominates" true (Fid.compare b c < 0);
  check_int "reflexive" 0 (Fid.compare a a);
  (* unsigned comparison: a 'negative' int64 client id sorts high *)
  let big = Fid.make ~client_id:(-1L) ~counter:0L in
  check_bool "unsigned client ordering" true (Fid.compare c big < 0)

let test_physical_zero_levels () =
  let layout = { Physical.levels = 0; chars_per_level = 1 } in
  let fid = Fid.make ~client_id:1L ~counter:2L in
  check_string "flat layout" ("/" ^ Fid.to_hex fid) (Physical.path layout fid);
  (* formatting a flat layout creates nothing and succeeds *)
  let fs = Fuselike.Memfs.create ~clock:(fun () -> 0.) () in
  check_bool "format ok" true (Physical.format layout (Fuselike.Memfs.ops fs) = Ok ())

let test_mapping_single_backend () =
  List.iter
    (fun fid -> check_int "always 0" 0 (Mapping.md5_mod ~backends:1 fid))
    (fids_for_tests 50)

let test_meta_encode_is_stable () =
  (* the wire format is persisted in znodes: lock it down *)
  let fid = Fid.make ~client_id:0xabcdL ~counter:7L in
  check_string "file encoding frozen"
    "v1|f|644|0|000000000000abcd0000000000000007"
    (Meta.encode (Meta.file fid ~mode:0o644 ~ctime:0.));
  check_string "dir encoding frozen" "v1|d|755|0|"
    (Meta.encode (Meta.dir ~mode:0o755 ~ctime:0.))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "dufs-core"
    [ ( "md5",
        [ Alcotest.test_case "RFC 1321 vectors" `Quick test_rfc_vectors;
          Alcotest.test_case "digest length" `Quick test_digest_length;
          Alcotest.test_case "block boundaries" `Quick test_block_boundaries;
          Alcotest.test_case "incremental chunking" `Quick test_incremental_chunking;
          Alcotest.test_case "update range validation" `Quick
            test_update_range_validation;
          Alcotest.test_case "to_int nonnegative" `Quick test_to_int_nonnegative;
          qc prop_md5_deterministic;
          qc prop_md5_incremental_split ] );
      ( "fid",
        [ Alcotest.test_case "hex roundtrip" `Quick test_fid_hex_roundtrip;
          Alcotest.test_case "of_hex rejects garbage" `Quick
            test_fid_of_hex_rejects_garbage;
          Alcotest.test_case "bytes layout" `Quick test_fid_bytes;
          Alcotest.test_case "generator" `Quick test_fid_generator;
          qc prop_fid_uniqueness ] );
      ( "mapping",
        [ Alcotest.test_case "range" `Quick test_mapping_range;
          Alcotest.test_case "deterministic" `Quick test_mapping_deterministic;
          Alcotest.test_case "rejects zero backends" `Quick
            test_mapping_rejects_zero_backends;
          Alcotest.test_case "fairness" `Quick test_mapping_fairness;
          Alcotest.test_case "consistent strategy" `Quick
            test_mapping_consistent_strategy_agrees_with_ring ] );
      ( "consistent-hash",
        [ Alcotest.test_case "basics" `Quick test_ring_basic;
          Alcotest.test_case "validation" `Quick test_ring_validation;
          Alcotest.test_case "bounded relocation on add" `Quick
            test_ring_bounded_relocation_on_add;
          Alcotest.test_case "moves only to new node" `Quick
            test_ring_relocation_only_to_new_node;
          Alcotest.test_case "remove inverts add" `Quick test_ring_remove_inverse_of_add;
          Alcotest.test_case "mod-N relocation unbounded" `Quick
            test_md5_mod_relocation_is_unbounded;
          qc prop_ring_balance ] );
      ( "physical",
        [ Alcotest.test_case "paper Fig. 4 example" `Quick test_paper_split_example;
          Alcotest.test_case "path shape" `Quick test_physical_path_shape;
          Alcotest.test_case "components vary fastest" `Quick
            test_physical_components_vary_fastest;
          Alcotest.test_case "fid roundtrip" `Quick test_physical_fid_roundtrip;
          Alcotest.test_case "bad layout" `Quick test_physical_bad_layout;
          Alcotest.test_case "format creates hierarchy" `Quick
            test_format_creates_hierarchy;
          qc prop_physical_unique_paths ] );
      ( "edges",
        [ Alcotest.test_case "md5 large input" `Quick test_md5_large_input;
          Alcotest.test_case "fid total order" `Quick test_fid_compare_total_order;
          Alcotest.test_case "physical zero levels" `Quick test_physical_zero_levels;
          Alcotest.test_case "mapping single backend" `Quick test_mapping_single_backend;
          Alcotest.test_case "meta encoding frozen" `Quick test_meta_encode_is_stable ] );
      ( "meta",
        [ Alcotest.test_case "dir roundtrip" `Quick test_meta_roundtrip_dir;
          Alcotest.test_case "file roundtrip" `Quick test_meta_roundtrip_file;
          Alcotest.test_case "symlink with separators" `Quick
            test_meta_roundtrip_symlink_with_separator;
          Alcotest.test_case "rejects garbage" `Quick test_meta_decode_rejects_garbage;
          qc prop_meta_roundtrip ] ) ]
