(* Tests for the parallel-filesystem simulators: correct POSIX results,
   sensible queueing/timing behaviour, DLM lock-revoke accounting, and the
   load-dependent performance shapes the evaluation relies on. *)

module Engine = Simkit.Engine
module Process = Simkit.Process
module Vfs = Fuselike.Vfs
module Errno = Fuselike.Errno
module Lustre = Pfs.Lustre_sim
module Pvfs = Pfs.Pvfs_sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ok_or_fail label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected %s" label (Errno.to_string e)

let in_sim f =
  let engine = Engine.create () in
  let result = ref None in
  Process.spawn engine (fun () -> result := Some (f engine));
  Engine.run engine;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "simulation did not finish"

(* {2 Lustre: semantics through the simulator} *)

let test_lustre_posix_results () =
  in_sim (fun engine ->
      let fs = Lustre.create engine () in
      let ops = Lustre.client fs ~client_id:0 in
      ok_or_fail "mkdir" (ops.Vfs.mkdir "/d" ~mode:0o755);
      ok_or_fail "create" (ops.Vfs.create "/d/f" ~mode:0o644);
      ignore (ok_or_fail "write" (ops.Vfs.write "/d/f" ~off:0 "abc"));
      Alcotest.(check string)
        "read through simulator" "abc"
        (ok_or_fail "read" (ops.Vfs.read "/d/f" ~off:0 ~len:3));
      (match ops.Vfs.mkdir "/d" ~mode:0o755 with
      | Error Errno.EEXIST -> ()
      | _ -> Alcotest.fail "expected EEXIST");
      ok_or_fail "rename" (ops.Vfs.rename "/d/f" "/d/g");
      ok_or_fail "unlink" (ops.Vfs.unlink "/d/g");
      ok_or_fail "rmdir" (ops.Vfs.rmdir "/d"))

let test_lustre_ops_cost_time () =
  let elapsed =
    in_sim (fun engine ->
        let fs = Lustre.create engine () in
        let ops = Lustre.client fs ~client_id:0 in
        let t0 = Engine.now engine in
        ok_or_fail "mkdir" (ops.Vfs.mkdir "/d" ~mode:0o755);
        Engine.now engine -. t0)
  in
  (* network round trip + mkdir service, give or take queueing *)
  check_bool (Printf.sprintf "mkdir took %.0f us" (elapsed *. 1e6)) true
    (elapsed > 400e-6 && elapsed < 2e-3)

let test_lustre_local_ops_are_instant () =
  let engine = Engine.create () in
  let fs = Lustre.create engine () in
  let ops = Lustre.local_ops fs in
  ok_or_fail "local mkdir (no process needed)" (ops.Vfs.mkdir "/setup" ~mode:0o755);
  check_int "no events consumed" 0 (Engine.executed_events engine)

let test_lustre_lock_revokes () =
  in_sim (fun engine ->
      let fs = Lustre.create engine () in
      let a = Lustre.client fs ~client_id:1 in
      let b = Lustre.client fs ~client_id:2 in
      ok_or_fail "mk parent" (a.Vfs.mkdir "/shared" ~mode:0o755);
      check_int "no revoke yet" 0 (Lustre.lock_revokes fs);
      (* same client again: still no revoke *)
      ok_or_fail "a again" (a.Vfs.mkdir "/shared/a1" ~mode:0o755);
      check_int "same owner keeps the lock" 0 (Lustre.lock_revokes fs);
      (* other client mutating the same directory: revoke *)
      ok_or_fail "b mutates" (b.Vfs.mkdir "/shared/b1" ~mode:0o755);
      check_int "ownership change revokes" 1 (Lustre.lock_revokes fs);
      ok_or_fail "a back" (a.Vfs.create "/shared/f" ~mode:0o644);
      check_int "ping-pong counts again" 2 (Lustre.lock_revokes fs))

let test_lustre_getattr_takes_no_lock () =
  in_sim (fun engine ->
      let fs = Lustre.create engine () in
      let a = Lustre.client fs ~client_id:1 in
      let b = Lustre.client fs ~client_id:2 in
      ok_or_fail "mk" (a.Vfs.mkdir "/d" ~mode:0o755);
      ignore (ok_or_fail "stat" (b.Vfs.getattr "/d"));
      ignore (ok_or_fail "stat" (a.Vfs.getattr "/d"));
      check_int "stats do not revoke" 0 (Lustre.lock_revokes fs))

let measure_closed_loop ~make_ops ~procs ~items =
  let engine = Engine.create () in
  let ops_of = make_ops engine in
  let barrier = Simkit.Gate.Barrier.create ~parties:procs () in
  let t0 = ref 0. and t1 = ref 0. in
  for proc = 0 to procs - 1 do
    Process.spawn engine (fun () ->
        let ops : Vfs.ops = ops_of proc in
        Simkit.Gate.Barrier.await barrier;
        if proc = 0 then t0 := Engine.now engine;
        for i = 0 to items - 1 do
          ignore (ops.Vfs.mkdir (Printf.sprintf "/p%d_%d" proc i) ~mode:0o755)
        done;
        Simkit.Gate.Barrier.await barrier;
        if proc = 0 then t1 := Engine.now engine)
  done;
  Engine.run engine;
  float_of_int (procs * items) /. (!t1 -. !t0)

let test_lustre_throughput_declines_with_clients () =
  (* the central Lustre observation of Figs. 8 and 10 *)
  let rate procs =
    measure_closed_loop ~procs ~items:50 ~make_ops:(fun engine ->
        let fs = Lustre.create engine () in
        fun proc -> Lustre.client fs ~client_id:proc)
  in
  let r16 = rate 16 and r256 = rate 256 in
  check_bool
    (Printf.sprintf "mkdir rate declines: %.0f/s at 16 procs vs %.0f/s at 256" r16 r256)
    true
    (r256 < r16 *. 0.85)

let test_lustre_namespace_penalty_slows_ops () =
  let rate config =
    measure_closed_loop ~procs:8 ~items:50 ~make_ops:(fun engine ->
        let fs = Lustre.create engine ~config () in
        fun proc -> Lustre.client fs ~client_id:proc)
  in
  let native = rate (Lustre.default_config ()) in
  let backend = rate (Lustre.backend_config ()) in
  check_bool
    (Printf.sprintf "hashed namespace slower: %.0f vs %.0f" backend native)
    true (backend < native)

(* {2 PVFS} *)

let test_pvfs_posix_results () =
  in_sim (fun engine ->
      let fs = Pvfs.create engine () in
      let ops = Pvfs.client fs ~client_id:0 in
      ok_or_fail "mkdir" (ops.Vfs.mkdir "/d" ~mode:0o755);
      ok_or_fail "create" (ops.Vfs.create "/d/f" ~mode:0o644);
      ignore (ok_or_fail "stat" (ops.Vfs.getattr "/d/f"));
      (match ops.Vfs.unlink "/d" with
      | Error Errno.EISDIR -> ()
      | _ -> Alcotest.fail "expected EISDIR");
      ok_or_fail "unlink" (ops.Vfs.unlink "/d/f");
      ok_or_fail "rmdir" (ops.Vfs.rmdir "/d"))

let test_pvfs_slower_than_lustre_for_creates () =
  let lustre_rate =
    measure_closed_loop ~procs:32 ~items:30 ~make_ops:(fun engine ->
        let fs = Lustre.create engine () in
        fun proc -> Lustre.client fs ~client_id:proc)
  in
  let pvfs_rate =
    measure_closed_loop ~procs:32 ~items:30 ~make_ops:(fun engine ->
        let fs = Pvfs.create engine () in
        fun proc -> Pvfs.client fs ~client_id:proc)
  in
  check_bool
    (Printf.sprintf "PVFS mkdir (%.0f/s) far below Lustre (%.0f/s)" pvfs_rate
       lustre_rate)
    true
    (pvfs_rate *. 4. < lustre_rate)

let test_pvfs_spreads_over_meta_servers () =
  in_sim (fun engine ->
      let fs = Pvfs.create engine () in
      let ops = Pvfs.client fs ~client_id:0 in
      for i = 0 to 63 do
        ok_or_fail "mkdir" (ops.Vfs.mkdir (Printf.sprintf "/d%d" i) ~mode:0o755)
      done;
      let served = Pvfs.served_per_server fs in
      Array.iter
        (fun count -> check_bool "every metadata server saw requests" true (count > 0))
        served)

(* {2 Lustre Clustered MDS (CMD)} *)

let test_cmd_posix_results () =
  in_sim (fun engine ->
      let fs = Pfs.Cmd_sim.create engine () in
      let ops = Pfs.Cmd_sim.client fs ~client_id:0 in
      ok_or_fail "mkdir" (ops.Vfs.mkdir "/d" ~mode:0o755);
      ok_or_fail "create" (ops.Vfs.create "/d/f" ~mode:0o644);
      ignore (ok_or_fail "stat" (ops.Vfs.getattr "/d/f"));
      ok_or_fail "rename" (ops.Vfs.rename "/d/f" "/d/g");
      ok_or_fail "unlink" (ops.Vfs.unlink "/d/g");
      ok_or_fail "rmdir" (ops.Vfs.rmdir "/d");
      (match ops.Vfs.rmdir "/d" with
      | Error Errno.ENOENT -> ()
      | _ -> Alcotest.fail "expected ENOENT"))

let test_cmd_global_lock_taken_for_cross_updates () =
  in_sim (fun engine ->
      let fs = Pfs.Cmd_sim.create engine () in
      let ops = Pfs.Cmd_sim.client fs ~client_id:0 in
      for i = 0 to 63 do
        ok_or_fail "mkdir" (ops.Vfs.mkdir (Printf.sprintf "/d%02d" i) ~mode:0o755)
      done;
      let locks = Pfs.Cmd_sim.global_lock_acquisitions fs in
      (* with 2 servers, about half the updates cross *)
      check_bool (Printf.sprintf "cross updates took the lock (%d of 64)" locks) true
        (locks > 10 && locks < 55))

let test_cmd_cross_ratio_zero_never_locks () =
  in_sim (fun engine ->
      let config = { (Pfs.Cmd_sim.default_config ~mds_count:4) with
                     Pfs.Cmd_sim.cross_ratio = 0. } in
      let fs = Pfs.Cmd_sim.create engine ~config () in
      let ops = Pfs.Cmd_sim.client fs ~client_id:0 in
      for i = 0 to 31 do
        ok_or_fail "mkdir" (ops.Vfs.mkdir (Printf.sprintf "/d%02d" i) ~mode:0o755)
      done;
      check_int "no lock acquisitions" 0 (Pfs.Cmd_sim.global_lock_acquisitions fs))

let cmd_rate ~mds_count ~phase_lookup =
  measure_closed_loop ~procs:64 ~items:20 ~make_ops:(fun engine ->
      let fs =
        Pfs.Cmd_sim.create engine ~config:(Pfs.Cmd_sim.default_config ~mds_count) ()
      in
      fun proc ->
        let ops = Pfs.Cmd_sim.client fs ~client_id:proc in
        if phase_lookup then ops else ops)

let test_cmd_mutations_bottlenecked_by_lock () =
  (* more CMD servers means more cross-server updates, so mutation
     throughput falls — §VI's argument *)
  let r2 = cmd_rate ~mds_count:2 ~phase_lookup:false in
  let r4 = cmd_rate ~mds_count:4 ~phase_lookup:false in
  check_bool
    (Printf.sprintf "4-MDS mkdir (%.0f/s) <= 2-MDS (%.0f/s)" r4 r2)
    true (r4 <= r2 *. 1.05)

let test_cmd_lookups_scale_with_servers () =
  let rate mds_count =
    let engine = Engine.create () in
    let fs =
      Pfs.Cmd_sim.create engine ~config:(Pfs.Cmd_sim.default_config ~mds_count) ()
    in
    (* populate without timing *)
    let setup = Pfs.Cmd_sim.local_ops fs in
    for i = 0 to 63 do
      ok_or_fail "setup" (setup.Vfs.mkdir (Printf.sprintf "/d%02d" i) ~mode:0o755)
    done;
    let barrier = Simkit.Gate.Barrier.create ~parties:64 () in
    let t0 = ref 0. and t1 = ref 0. in
    for proc = 0 to 63 do
      Process.spawn engine (fun () ->
          let ops = Pfs.Cmd_sim.client fs ~client_id:proc in
          Simkit.Gate.Barrier.await barrier;
          if proc = 0 then t0 := Engine.now engine;
          for i = 0 to 19 do
            ignore (ops.Vfs.getattr (Printf.sprintf "/d%02d" ((proc + i) mod 64)))
          done;
          Simkit.Gate.Barrier.await barrier;
          if proc = 0 then t1 := Engine.now engine)
    done;
    Engine.run engine;
    (64. *. 20.) /. (!t1 -. !t0)
  in
  let r1 = rate 1 and r4 = rate 4 in
  check_bool
    (Printf.sprintf "4-MDS stats (%.0f/s) > 2x 1-MDS (%.0f/s)" r4 r1)
    true (r4 > 2. *. r1)

(* {2 Mdserver queueing station} *)

let test_mdserver_thrash_inflates_service () =
  (* same op stream, higher thrash -> longer makespan *)
  let makespan thrash =
    let engine = Engine.create () in
    let server =
      Pfs.Mdserver.create engine ~threads:1 ~thrash ~net_latency:10e-6 ()
    in
    for _ = 0 to 19 do
      Process.spawn engine (fun () ->
          Pfs.Mdserver.request server ~service:100e-6 (fun () -> ()))
    done;
    Engine.run engine;
    Engine.now engine
  in
  let flat = makespan 0. in
  let thrashed = makespan 0.05 in
  check_bool
    (Printf.sprintf "thrash lengthens makespan (%.1f us vs %.1f us)" (flat *. 1e6)
       (thrashed *. 1e6))
    true (thrashed > flat *. 1.2);
  check_bool "served counted" true (flat > 0.)

let test_mdserver_threads_add_capacity () =
  let makespan threads =
    let engine = Engine.create () in
    let server =
      Pfs.Mdserver.create engine ~threads ~thrash:0. ~net_latency:10e-6 ()
    in
    for _ = 0 to 15 do
      Process.spawn engine (fun () ->
          Pfs.Mdserver.request server ~service:100e-6 (fun () -> ()))
    done;
    Engine.run engine;
    Engine.now engine
  in
  let one = makespan 1 and four = makespan 4 in
  check_bool
    (Printf.sprintf "4 threads faster (%.1f us) than 1 (%.1f us)" (four *. 1e6)
       (one *. 1e6))
    true
    (four < one /. 2.)

let () =
  Alcotest.run "pfs"
    [ ( "lustre",
        [ Alcotest.test_case "posix results" `Quick test_lustre_posix_results;
          Alcotest.test_case "ops cost virtual time" `Quick test_lustre_ops_cost_time;
          Alcotest.test_case "local ops instant" `Quick test_lustre_local_ops_are_instant;
          Alcotest.test_case "dlm lock revokes" `Quick test_lustre_lock_revokes;
          Alcotest.test_case "getattr takes no lock" `Quick
            test_lustre_getattr_takes_no_lock;
          Alcotest.test_case "throughput declines with clients" `Quick
            test_lustre_throughput_declines_with_clients;
          Alcotest.test_case "namespace penalty" `Quick
            test_lustre_namespace_penalty_slows_ops ] );
      ( "pvfs",
        [ Alcotest.test_case "posix results" `Quick test_pvfs_posix_results;
          Alcotest.test_case "slower than lustre for creates" `Quick
            test_pvfs_slower_than_lustre_for_creates;
          Alcotest.test_case "spreads over meta servers" `Quick
            test_pvfs_spreads_over_meta_servers ] );
      ( "cmd",
        [ Alcotest.test_case "posix results" `Quick test_cmd_posix_results;
          Alcotest.test_case "global lock on cross updates" `Quick
            test_cmd_global_lock_taken_for_cross_updates;
          Alcotest.test_case "cross_ratio 0 never locks" `Quick
            test_cmd_cross_ratio_zero_never_locks;
          Alcotest.test_case "mutations bottlenecked by lock" `Quick
            test_cmd_mutations_bottlenecked_by_lock;
          Alcotest.test_case "lookups scale with servers" `Quick
            test_cmd_lookups_scale_with_servers ] );
      ( "mdserver",
        [ Alcotest.test_case "thrash inflates service" `Quick
            test_mdserver_thrash_inflates_service;
          Alcotest.test_case "threads add capacity" `Quick
            test_mdserver_threads_add_capacity ] ) ]
