(* Tests for the coordination recipes (lock / counter / double barrier)
   over the replicated ensemble on the simulator — mutual exclusion,
   fairness, atomicity under concurrency, and crash-release of ephemeral
   lock members. *)

module Engine = Simkit.Engine
module Process = Simkit.Process
module Ensemble = Zk.Ensemble
module Recipes = Zk.Recipes
module Zerror = Zk.Zerror

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ok label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" label (Zerror.to_string e)

let with_ensemble ?(servers = 3) f =
  let engine = Engine.create () in
  let ensemble = Ensemble.start engine (Ensemble.default_config ~servers) in
  f engine ensemble;
  Engine.run engine

(* {2 Lock} *)

let test_lock_mutual_exclusion () =
  with_ensemble (fun engine ensemble ->
      let inside = ref 0 in
      let peak = ref 0 in
      let completed = ref 0 in
      for _ = 1 to 10 do
        Process.spawn engine (fun () ->
            let handle = Ensemble.session ensemble () in
            let lock = ok "acquire" (Recipes.Lock.acquire handle ~path:"/lock") in
            incr inside;
            peak := max !peak !inside;
            Process.sleep 0.01;  (* hold the lock across virtual time *)
            decr inside;
            ok "release" (Recipes.Lock.release lock);
            incr completed)
      done);
  ()

let test_lock_mutual_exclusion_checked () =
  let engine = Engine.create () in
  let ensemble = Ensemble.start engine (Ensemble.default_config ~servers:3) in
  let inside = ref 0 and peak = ref 0 and completed = ref 0 in
  for _ = 1 to 10 do
    Process.spawn engine (fun () ->
        let handle = Ensemble.session ensemble () in
        let lock = ok "acquire" (Recipes.Lock.acquire handle ~path:"/lock") in
        incr inside;
        peak := max !peak !inside;
        Process.sleep 0.01;
        decr inside;
        ok "release" (Recipes.Lock.release lock);
        incr completed)
  done;
  Engine.run engine;
  check_int "at most one holder at a time" 1 !peak;
  check_int "all ten acquired eventually" 10 !completed

let test_lock_fifo_fairness () =
  let engine = Engine.create () in
  let ensemble = Ensemble.start engine (Ensemble.default_config ~servers:3) in
  let order = ref [] in
  for i = 0 to 4 do
    Process.spawn engine (fun () ->
        (* stagger arrivals so the queue order is deterministic *)
        Process.sleep (float_of_int i *. 0.01);
        let handle = Ensemble.session ensemble () in
        let lock = ok "acquire" (Recipes.Lock.acquire handle ~path:"/fifo") in
        order := i :: !order;
        Process.sleep 0.05;
        ok "release" (Recipes.Lock.release lock))
  done;
  Engine.run engine;
  Alcotest.(check (list int)) "granted in arrival order" [ 0; 1; 2; 3; 4 ]
    (List.rev !order)

let test_try_acquire () =
  let engine = Engine.create () in
  let ensemble = Ensemble.start engine (Ensemble.default_config ~servers:3) in
  let second_attempt = ref None in
  Process.spawn engine (fun () ->
      let h1 = Ensemble.session ensemble () in
      let h2 = Ensemble.session ensemble () in
      let lock1 = ok "first" (Recipes.Lock.try_acquire h1 ~path:"/try") in
      check_bool "first succeeds" true (lock1 <> None);
      second_attempt := Some (ok "second" (Recipes.Lock.try_acquire h2 ~path:"/try"));
      ok "release" (Recipes.Lock.release (Option.get lock1));
      let third = ok "third" (Recipes.Lock.try_acquire h2 ~path:"/try") in
      check_bool "after release it succeeds" true (third <> None));
  Engine.run engine;
  check_bool "contended try fails" true (!second_attempt = Some None)

let test_lock_released_by_session_close () =
  (* lock members are ephemeral: closing the holder's session frees it *)
  let engine = Engine.create () in
  let ensemble = Ensemble.start engine (Ensemble.default_config ~servers:3) in
  let acquired_after_close = ref false in
  Process.spawn engine (fun () ->
      let h1 = Ensemble.session ensemble () in
      let _lock = ok "holder" (Recipes.Lock.acquire h1 ~path:"/crash") in
      (* the holder "crashes": its session closes without releasing *)
      h1.Zk.Zk_client.close ());
  Process.spawn engine (fun () ->
      Process.sleep 0.1;
      let h2 = Ensemble.session ensemble () in
      let lock = ok "successor" (Recipes.Lock.acquire h2 ~path:"/crash") in
      acquired_after_close := true;
      ok "release" (Recipes.Lock.release lock));
  Engine.run engine;
  check_bool "lock recovered after holder session closed" true !acquired_after_close

(* {2 Counter} *)

let test_counter_concurrent_increments () =
  let engine = Engine.create () in
  let ensemble = Ensemble.start engine (Ensemble.default_config ~servers:3) in
  let final = ref 0 in
  let procs = 8 and each = 25 in
  let barrier = Simkit.Gate.Barrier.create ~parties:procs () in
  for _ = 1 to procs do
    Process.spawn engine (fun () ->
        let handle = Ensemble.session ensemble () in
        Simkit.Gate.Barrier.await barrier;
        for _ = 1 to each do
          ignore (ok "incr" (Recipes.Counter.increment handle ~path:"/ctr" ()))
        done;
        Simkit.Gate.Barrier.await barrier;
        final := ok "read" (Recipes.Counter.read handle ~path:"/ctr"))
  done;
  Engine.run engine;
  check_int "no lost updates under contention" (procs * each) !final

let test_counter_custom_step_and_read_missing () =
  let engine = Engine.create () in
  let ensemble = Ensemble.start engine (Ensemble.default_config ~servers:1) in
  Process.spawn engine (fun () ->
      let handle = Ensemble.session ensemble () in
      check_int "missing counter reads 0" 0
        (ok "read" (Recipes.Counter.read handle ~path:"/none"));
      check_int "first increment creates" 5
        (ok "incr" (Recipes.Counter.increment handle ~path:"/c5" ~by:5 ()));
      check_int "second adds" 12
        (ok "incr" (Recipes.Counter.increment handle ~path:"/c5" ~by:7 ())));
  Engine.run engine

(* {2 Double barrier} *)

let test_double_barrier () =
  let engine = Engine.create () in
  let ensemble = Ensemble.start engine (Ensemble.default_config ~servers:3) in
  let parties = 5 in
  let entered_at = ref [] and left_at = ref [] in
  for i = 0 to parties - 1 do
    Process.spawn engine (fun () ->
        let handle = Ensemble.session ensemble () in
        Process.sleep (float_of_int i *. 0.02);
        let member =
          ok "enter" (Recipes.Double_barrier.enter handle ~path:"/db" ~parties)
        in
        entered_at := Engine.now engine :: !entered_at;
        Process.sleep (float_of_int (parties - i) *. 0.02);
        ok "leave" (Recipes.Double_barrier.leave handle ~path:"/db" ~member);
        left_at := Engine.now engine :: !left_at)
  done;
  Engine.run engine;
  check_int "all entered" parties (List.length !entered_at);
  check_int "all left" parties (List.length !left_at);
  (* nobody proceeds past enter before the last arrival (~0.08s) *)
  List.iter
    (fun t -> check_bool "held until last entry" true (t >= 0.08 -. 1e-9))
    !entered_at;
  (* nobody finishes leave before the slowest leaver has deleted its
     member (entered ~0.08s + longest post-enter sleep 0.1s)... *)
  List.iter
    (fun t -> check_bool "held until the last member left" true (t >= 0.18 -. 1e-6))
    !left_at;
  (* ... and then everyone is released together, within RPC jitter *)
  let first = List.fold_left min infinity !left_at in
  let last = List.fold_left max 0. !left_at in
  check_bool "released as a group" true (last -. first < 0.005)

let () =
  Alcotest.run "zk-recipes"
    [ ( "lock",
        [ Alcotest.test_case "mutual exclusion" `Quick test_lock_mutual_exclusion_checked;
          Alcotest.test_case "smoke" `Quick test_lock_mutual_exclusion;
          Alcotest.test_case "fifo fairness" `Quick test_lock_fifo_fairness;
          Alcotest.test_case "try_acquire" `Quick test_try_acquire;
          Alcotest.test_case "released by session close" `Quick
            test_lock_released_by_session_close ] );
      ( "counter",
        [ Alcotest.test_case "concurrent increments" `Quick
            test_counter_concurrent_increments;
          Alcotest.test_case "custom step, missing read" `Quick
            test_counter_custom_step_and_read_missing ] );
      ( "double-barrier", [ Alcotest.test_case "enter/leave" `Quick test_double_barrier ] )
    ]
