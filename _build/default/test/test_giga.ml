(* Tests for the GIGA+-style distributed directory index: extensible-
   hashing correctness, split behaviour and balance, stale-client
   redirection, scaling with servers, and the availability trade-off the
   paper highlights (§VI). *)

module Engine = Simkit.Engine
module Process = Simkit.Process
module Giga = Gigaplus.Giga

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let in_sim f =
  let engine = Engine.create () in
  let out = ref None in
  Process.spawn engine (fun () -> out := Some (f engine));
  Engine.run engine;
  Option.get !out

let small_config ~servers =
  { (Giga.default_config ~servers) with Giga.split_threshold = 50; max_radix = 8 }

let test_insert_and_lookup () =
  in_sim (fun engine ->
      let t = Giga.create engine ~config:(small_config ~servers:3) () in
      let c = Giga.client t in
      for i = 0 to 399 do
        match Giga.create_file c (Printf.sprintf "file%04d" i) with
        | Ok () -> ()
        | Error `Exists -> Alcotest.fail "spurious Exists"
        | Error `Unavailable -> Alcotest.fail "spurious Unavailable"
      done;
      check_int "all inserted" 400 (Giga.total_entries t);
      for i = 0 to 399 do
        match Giga.lookup c (Printf.sprintf "file%04d" i) with
        | Ok true -> ()
        | Ok false -> Alcotest.failf "file%04d lost after splits" i
        | Error `Unavailable -> Alcotest.fail "unavailable"
      done;
      (match Giga.lookup c "never-created" with
      | Ok false -> ()
      | _ -> Alcotest.fail "phantom entry"))

let test_duplicate_detected () =
  in_sim (fun engine ->
      let t = Giga.create engine ~config:(small_config ~servers:2) () in
      let c = Giga.client t in
      (match Giga.create_file c "dup" with Ok () -> () | _ -> Alcotest.fail "first");
      match Giga.create_file c "dup" with
      | Error `Exists -> ()
      | _ -> Alcotest.fail "duplicate accepted")

let test_splits_bound_partition_size () =
  in_sim (fun engine ->
      let t = Giga.create engine ~config:(small_config ~servers:4) () in
      let c = Giga.client t in
      for i = 0 to 999 do
        ignore (Giga.create_file c (Printf.sprintf "n%05d" i))
      done;
      check_bool
        (Printf.sprintf "directory split into %d partitions" (Giga.partition_count t))
        true
        (Giga.partition_count t >= 8);
      List.iter
        (fun (p, size) ->
          check_bool
            (Printf.sprintf "partition %d size %d <= threshold+1" p size)
            true
            (size <= 51))
        (Giga.partition_sizes t);
      (* extensible hashing keeps sizes in the same ballpark *)
      let sizes = List.map snd (Giga.partition_sizes t) in
      let max_size = List.fold_left max 0 sizes in
      check_bool "no partition dominates" true
        (max_size * Giga.partition_count t < 1000 * 6))

let test_stale_client_redirected () =
  in_sim (fun engine ->
      let t = Giga.create engine ~config:(small_config ~servers:3) () in
      let writer = Giga.client t in
      (* a client attached before any split has a maximally stale map *)
      let stale = Giga.client t in
      for i = 0 to 599 do
        ignore (Giga.create_file writer (Printf.sprintf "w%05d" i))
      done;
      check_bool "splits happened" true (Giga.partition_count t > 1);
      (* the stale client still finds everything, paying redirects *)
      for i = 0 to 599 do
        match Giga.lookup stale (Printf.sprintf "w%05d" i) with
        | Ok true -> ()
        | _ -> Alcotest.failf "stale client lost w%05d" i
      done;
      check_bool
        (Printf.sprintf "stale client was redirected (%d times)" (Giga.redirects stale))
        true
        (Giga.redirects stale > 0);
      (* after refreshing through redirects it stops paying *)
      let before = Giga.redirects stale in
      for i = 0 to 599 do
        ignore (Giga.lookup stale (Printf.sprintf "w%05d" i))
      done;
      check_int "map converged: no further redirects" before (Giga.redirects stale))

let insert_rate ~servers ~procs =
  let engine = Engine.create () in
  let t =
    Giga.create engine
      ~config:{ (Giga.default_config ~servers) with Giga.split_threshold = 100 }
      ()
  in
  (* warm the directory past its early single-partition phase, untimed *)
  Process.spawn engine (fun () ->
      let c = Giga.client t in
      for i = 0 to 4999 do
        ignore (Giga.create_file c (Printf.sprintf "warm%05d" i))
      done);
  Engine.run engine;
  let barrier = Simkit.Gate.Barrier.create ~parties:procs () in
  let t0 = ref 0. and t1 = ref 0. in
  for proc = 0 to procs - 1 do
    Process.spawn engine (fun () ->
        let c = Giga.client t in
        Simkit.Gate.Barrier.await barrier;
        if proc = 0 then t0 := Engine.now engine;
        for i = 0 to 99 do
          ignore (Giga.create_file c (Printf.sprintf "p%d_%d" proc i))
        done;
        Simkit.Gate.Barrier.await barrier;
        if proc = 0 then t1 := Engine.now engine)
  done;
  Engine.run engine;
  float_of_int (procs * 100) /. (!t1 -. !t0)

let test_inserts_scale_with_servers () =
  let r2 = insert_rate ~servers:2 ~procs:64 in
  let r8 = insert_rate ~servers:8 ~procs:64 in
  check_bool
    (Printf.sprintf "8 servers (%.0f/s) > 2.5x 2 servers (%.0f/s)" r8 r2)
    true
    (r8 > 2.5 *. r2)

let test_availability_loss_on_crash () =
  in_sim (fun engine ->
      let t = Giga.create engine ~config:(small_config ~servers:4) () in
      let c = Giga.client t in
      for i = 0 to 999 do
        ignore (Giga.create_file c (Printf.sprintf "a%05d" i))
      done;
      check_bool "all available before crash" true (Giga.available_fraction t = 1.);
      Giga.crash_server t 0;
      let avail = Giga.available_fraction t in
      (* ~1/4 of partitions (and so ~1/4 of entries) just vanished *)
      check_bool (Printf.sprintf "availability dropped to %.2f" avail) true
        (avail > 0.5 && avail < 0.95);
      (* lookups for entries on the dead server report unavailability *)
      let unavailable = ref 0 in
      for i = 0 to 999 do
        match Giga.lookup c (Printf.sprintf "a%05d" i) with
        | Error `Unavailable -> incr unavailable
        | Ok true -> ()
        | Ok false -> Alcotest.fail "entry silently missing"
      done;
      check_bool
        (Printf.sprintf "%d lookups hit the dead server" !unavailable)
        true
        (!unavailable > 0);
      Giga.restart_server t 0;
      check_bool "full availability after restart" true
        (Giga.available_fraction t = 1.))

let test_inserts_error_when_owner_down () =
  in_sim (fun engine ->
      let t = Giga.create engine ~config:(small_config ~servers:2) () in
      let c = Giga.client t in
      Giga.crash_server t 0;
      (* partition 0 lives on server 0: everything addressed there fails *)
      let failures = ref 0 in
      for i = 0 to 9 do
        match Giga.create_file c (Printf.sprintf "x%d" i) with
        | Error `Unavailable -> incr failures
        | Ok () | Error `Exists -> ()
      done;
      check_int "all inserts on the dead root partition fail" 10 !failures)

let () =
  Alcotest.run "gigaplus"
    [ ( "indexing",
        [ Alcotest.test_case "insert and lookup" `Quick test_insert_and_lookup;
          Alcotest.test_case "duplicate detected" `Quick test_duplicate_detected;
          Alcotest.test_case "splits bound partition size" `Quick
            test_splits_bound_partition_size;
          Alcotest.test_case "stale client redirected" `Quick
            test_stale_client_redirected ] );
      ( "scaling",
        [ Alcotest.test_case "inserts scale with servers" `Quick
            test_inserts_scale_with_servers ] );
      ( "availability",
        [ Alcotest.test_case "loss on crash" `Quick test_availability_loss_on_crash;
          Alcotest.test_case "inserts fail when owner down" `Quick
            test_inserts_error_when_owner_down ] ) ]
