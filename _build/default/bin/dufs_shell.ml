(* An interactive shell over a DUFS mount (immediate mode): a local
   coordination service plus N in-memory back-ends. Useful for poking at
   the filesystem semantics by hand, or scripted:

       dune exec bin/dufs_shell.exe            # interactive
       echo "mkdir /a
       touch /a/f
       write /a/f hello
       ls /a
       fsck" | dune exec bin/dufs_shell.exe    # scripted *)

module Vfs = Fuselike.Vfs
module Errno = Fuselike.Errno
module Inode = Fuselike.Inode

type shell = {
  coord : Zk.Zk_client.handle;
  backends : Vfs.ops array;
  fs : Vfs.ops;
}

let make_shell ~backends:n =
  let service = Zk.Zk_local.create () in
  let backends =
    Array.init n (fun _ -> Fuselike.Memfs.ops (Fuselike.Memfs.create ~clock:Unix.gettimeofday ()))
  in
  Array.iter
    (fun ops ->
      match Dufs.Physical.format Dufs.Physical.default_layout ops with
      | Ok () -> ()
      | Error e -> failwith (Errno.to_string e))
    backends;
  let coord = Zk.Zk_local.session service in
  let client = Dufs.Client.mount ~coord ~backends ~clock:Unix.gettimeofday () in
  { coord; backends; fs = Dufs.Client.ops client }

let report label = function
  | Ok () -> ()
  | Error e -> Printf.printf "%s: %s\n" label (Errno.to_string e)

let print_attr path (attr : Inode.attr) =
  Printf.printf "%-6s %6o %8Ld  %s\n"
    (Inode.kind_to_string attr.Inode.kind)
    attr.Inode.mode attr.Inode.size path

let help () =
  print_string
    "commands:\n\
    \  ls [path]            list a directory\n\
    \  mkdir <path>         create a directory\n\
    \  rmdir <path>         remove an empty directory\n\
    \  touch <path>         create an empty file\n\
    \  rm <path>            remove a file or symlink\n\
    \  mv <src> <dst>       rename (metadata only; data never moves)\n\
    \  ln <target> <path>   create a symlink\n\
    \  readlink <path>      print a symlink's target\n\
    \  stat <path>          print attributes\n\
    \  write <path> <text>  overwrite file contents\n\
    \  cat <path>           print file contents\n\
    \  chmod <octal> <path> change permission bits\n\
    \  truncate <path> <n>  set file size\n\
    \  df                   aggregate statistics per backend\n\
    \  fsck                 cross-check namespace vs backends\n\
    \  help                 this text\n\
    \  quit                 exit\n"

let run_command shell line =
  let fs = shell.fs in
  match String.split_on_char ' ' (String.trim line) with
  | [ "" ] | [] -> ()
  | [ "help" ] -> help ()
  | [ "ls" ] | [ "ls"; "/" ] | "ls" :: [ "" ] -> (
    match fs.Vfs.readdir "/" with
    | Ok entries ->
      List.iter (fun e -> Printf.printf "%s\n" e.Vfs.name) entries
    | Error e -> Printf.printf "ls: %s\n" (Errno.to_string e))
  | [ "ls"; path ] -> (
    match fs.Vfs.readdir path with
    | Ok entries ->
      List.iter
        (fun e ->
          Printf.printf "%-9s %s\n" (Inode.kind_to_string e.Vfs.kind) e.Vfs.name)
        entries
    | Error e -> Printf.printf "ls: %s\n" (Errno.to_string e))
  | [ "mkdir"; path ] -> report "mkdir" (fs.Vfs.mkdir path ~mode:0o755)
  | [ "rmdir"; path ] -> report "rmdir" (fs.Vfs.rmdir path)
  | [ "touch"; path ] -> report "touch" (fs.Vfs.create path ~mode:0o644)
  | [ "rm"; path ] -> report "rm" (fs.Vfs.unlink path)
  | [ "mv"; src; dst ] -> report "mv" (fs.Vfs.rename src dst)
  | [ "ln"; target; path ] -> report "ln" (fs.Vfs.symlink ~target path)
  | [ "readlink"; path ] -> (
    match fs.Vfs.readlink path with
    | Ok target -> Printf.printf "%s\n" target
    | Error e -> Printf.printf "readlink: %s\n" (Errno.to_string e))
  | [ "stat"; path ] -> (
    match fs.Vfs.getattr path with
    | Ok attr -> print_attr path attr
    | Error e -> Printf.printf "stat: %s\n" (Errno.to_string e))
  | "write" :: path :: rest ->
    let text = String.concat " " rest in
    (match fs.Vfs.truncate path ~size:0L with
     | Ok () | Error _ -> ());
    (match fs.Vfs.write path ~off:0 text with
     | Ok n -> Printf.printf "%d bytes\n" n
     | Error e -> Printf.printf "write: %s\n" (Errno.to_string e))
  | [ "cat"; path ] -> (
    match fs.Vfs.getattr path with
    | Error e -> Printf.printf "cat: %s\n" (Errno.to_string e)
    | Ok attr -> (
      match fs.Vfs.read path ~off:0 ~len:(Int64.to_int attr.Inode.size) with
      | Ok contents -> Printf.printf "%s\n" contents
      | Error e -> Printf.printf "cat: %s\n" (Errno.to_string e)))
  | [ "chmod"; mode; path ] -> (
    match int_of_string_opt ("0o" ^ mode) with
    | Some mode -> report "chmod" (fs.Vfs.chmod path ~mode)
    | None -> print_endline "chmod: bad mode (want octal digits)")
  | [ "truncate"; path; n ] -> (
    match Int64.of_string_opt n with
    | Some size -> report "truncate" (fs.Vfs.truncate path ~size)
    | None -> print_endline "truncate: bad size")
  | [ "df" ] ->
    Array.iteri
      (fun i ops ->
        let s = ops.Vfs.statfs () in
        Printf.printf "backend %d: %d files, %d dirs, %Ld bytes\n" i s.Vfs.files
          s.Vfs.directories s.Vfs.bytes_used)
      shell.backends;
    let s = fs.Vfs.statfs () in
    Printf.printf "total    : %d files, %Ld bytes\n" s.Vfs.files s.Vfs.bytes_used
  | [ "fsck" ] -> (
    match Dufs.Fsck.scan ~coord:shell.coord ~backends:shell.backends () with
    | Ok r ->
      if Dufs.Fsck.is_clean r then
        Printf.printf "clean: %d files, %d dirs, %d physicals\n" r.Dufs.Fsck.files_checked
          r.Dufs.Fsck.dirs_checked r.Dufs.Fsck.physicals_checked
      else
        List.iter
          (fun issue -> Format.printf "%a@." Dufs.Fsck.pp_issue issue)
          r.Dufs.Fsck.issues
    | Error e -> Printf.printf "fsck: %s\n" (Zk.Zerror.to_string e))
  | [ "quit" ] | [ "exit" ] -> raise Exit
  | cmd :: _ -> Printf.printf "unknown command %S (try: help)\n" cmd

let () =
  let interactive = Unix.isatty Unix.stdin in
  let shell = make_shell ~backends:2 in
  if interactive then begin
    print_endline "DUFS shell — 2 in-memory backends, local coordination service";
    print_endline "type 'help' for commands"
  end;
  (try
     while true do
       if interactive then (print_string "dufs> "; flush stdout);
       match In_channel.input_line stdin with
       | None -> raise Exit
       | Some line -> run_command shell line
     done
   with Exit -> ());
  if interactive then print_endline "bye."
