bin/smoke.mli:
