bin/smoke.ml: Array Dufs Fuselike Int64 List Mdtest Pfs Printf Simkit String Zk
