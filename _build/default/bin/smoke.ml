(* Quick end-to-end exercise of the whole stack; not part of the test
   suite, just a development aid: `dune exec bin/smoke.exe`. *)

module Vfs = Fuselike.Vfs

let check label = function
  | Ok _ -> Printf.printf "  ok   %s\n%!" label
  | Error e -> Printf.printf "  FAIL %s: %s\n%!" label (Fuselike.Errno.to_string e)

let local_mode () =
  print_endline "== local mode ==";
  let zk = Zk.Zk_local.create () in
  let backends =
    Array.init 2 (fun _ -> Fuselike.Memfs.create ~clock:(fun () -> 0.) ())
  in
  let backend_ops = Array.map Fuselike.Memfs.ops backends in
  Array.iter
    (fun ops ->
      match Dufs.Physical.format Dufs.Physical.default_layout ops with
      | Ok () -> ()
      | Error e -> failwith (Fuselike.Errno.to_string e))
    backend_ops;
  let client =
    Dufs.Client.mount ~coord:(Zk.Zk_local.session zk) ~backends:backend_ops ()
  in
  let fs = Dufs.Client.ops client in
  check "mkdir /a" (fs.Vfs.mkdir "/a" ~mode:0o755);
  check "mkdir /a/b" (fs.Vfs.mkdir "/a/b" ~mode:0o755);
  check "create /a/b/f" (fs.Vfs.create "/a/b/f" ~mode:0o644);
  check "getattr /a/b/f" (fs.Vfs.getattr "/a/b/f");
  check "write" (fs.Vfs.write "/a/b/f" ~off:0 "hello");
  (match fs.Vfs.read "/a/b/f" ~off:0 ~len:5 with
   | Ok "hello" -> print_endline "  ok   read back"
   | Ok other -> Printf.printf "  FAIL read: %S\n" other
   | Error e -> Printf.printf "  FAIL read: %s\n" (Fuselike.Errno.to_string e));
  check "rename /a/b/f -> /a/g" (fs.Vfs.rename "/a/b/f" "/a/g");
  (match fs.Vfs.read "/a/g" ~off:0 ~len:5 with
   | Ok "hello" -> print_endline "  ok   data survived rename"
   | _ -> print_endline "  FAIL data after rename");
  check "rmdir /a/b" (fs.Vfs.rmdir "/a/b");
  (match fs.Vfs.readdir "/a" with
   | Ok entries ->
     Printf.printf "  ok   readdir /a = [%s]\n"
       (String.concat "; " (List.map (fun e -> e.Vfs.name) entries))
   | Error e -> Printf.printf "  FAIL readdir: %s\n" (Fuselike.Errno.to_string e));
  check "unlink /a/g" (fs.Vfs.unlink "/a/g")

let sim_mode () =
  print_endline "== simulated mode (8 procs, 2 Lustre backends, 3 zk) ==";
  let engine = Simkit.Engine.create () in
  let ensemble = Zk.Ensemble.start engine (Zk.Ensemble.default_config ~servers:3) in
  let backends =
    Array.init 2 (fun _ ->
        Pfs.Lustre_sim.create engine ~config:(Pfs.Lustre_sim.backend_config ()) ())
  in
  Array.iter
    (fun b ->
      match Dufs.Physical.format Dufs.Physical.default_layout (Pfs.Lustre_sim.local_ops b) with
      | Ok () -> ()
      | Error e -> failwith (Fuselike.Errno.to_string e))
    backends;
  let cfg = Mdtest.Workload.config ~procs:8 ~dirs_per_proc:50 ~files_per_proc:50 () in
  let ops_for_proc proc =
    let coord = Zk.Ensemble.session ensemble () in
    let backend_ops =
      Array.mapi (fun i b -> Pfs.Lustre_sim.client b ~client_id:((proc * 10) + i)) backends
    in
    let client =
      Dufs.Client.mount ~coord ~backends:backend_ops
        ~client_id:(Int64.of_int (proc + 1))
        ~clock:(fun () -> Simkit.Engine.now engine)
        ~delay:Simkit.Process.sleep ()
    in
    Dufs.Client.ops client
  in
  let results = Mdtest.Runner.run engine cfg ~ops_for_proc in
  Printf.printf "  errors: %d  wall: %.3fs (virtual)\n" results.Mdtest.Runner.errors
    results.Mdtest.Runner.wall;
  List.iter
    (fun (phase, rate) ->
      Printf.printf "  %-12s %10.0f ops/s\n" (Mdtest.Runner.phase_to_string phase) rate)
    results.Mdtest.Runner.rates;
  Printf.printf "  engine events: %d\n" (Simkit.Engine.executed_events engine)

let () =
  local_mode ();
  sim_mode ()
