bin/dufs_shell.mli:
