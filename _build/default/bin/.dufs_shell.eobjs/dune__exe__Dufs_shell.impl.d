bin/dufs_shell.ml: Array Dufs Format Fuselike In_channel Int64 List Printf String Unix Zk
