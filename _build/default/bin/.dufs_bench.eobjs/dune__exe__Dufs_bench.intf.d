bin/dufs_bench.mli:
