bin/dufs_bench.ml: Arg Cmd Cmdliner List Manpage Printf Scenarios String Term
