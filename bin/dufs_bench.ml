(* Command-line driver: run any single experiment from the paper's
   evaluation (or the extensions) by id. `dune exec bin/dufs_bench.exe -- --help` *)

let experiments =
  [ ("fig7", "ZooKeeper raw op throughput vs ensemble size",
     fun () -> Scenarios.Figures.fig7 ());
    ("fig8", "DUFS op throughput vs number of ZooKeeper servers",
     Scenarios.Figures.fig8);
    ("fig9", "DUFS file ops with 2 vs 4 Lustre backends", Scenarios.Figures.fig9);
    ("fig10", "DUFS vs Basic Lustre and Basic PVFS2", Scenarios.Figures.fig10);
    ("headline", "§V-D headline ratios at 256 procs", Scenarios.Figures.headline);
    ("fig11", "memory usage vs directories created",
     fun () -> Scenarios.Figures.fig11 ());
    ("ablation-mapping", "MD5-mod-N vs consistent hashing",
     Scenarios.Figures.ablation_mapping);
    ("ablation-cmd", "DUFS vs hypothetical Lustre Clustered MDS",
     Scenarios.Figures.ablation_cmd);
    ("ablation-unique", "shared vs unique working directories (mdtest -u)",
     Scenarios.Figures.ablation_unique);
    ("ablation-async", "synchronous vs pipelined coordination API",
     Scenarios.Figures.ablation_async);
    ("ablation-cache", "client-side metadata cache with watch invalidation",
     Scenarios.Figures.ablation_cache);
    ("ablation-giga", "GIGA+ directory indexing vs DUFS vs Lustre",
     Scenarios.Figures.ablation_giga);
    ("ablation-observers", "non-voting observers: reads scale, writes unaffected",
     Scenarios.Figures.ablation_observers);
    ("ablation-faults", "ensemble fault injection timeline",
     Scenarios.Figures.ablation_faults);
    ("batching", "ZAB group commit: batched vs unbatched mdtest (writes BENCH_pr1.json)",
     fun () -> Scenarios.Figures.batching ~json_path:"BENCH_pr1.json" ());
    ("faults", "mdtest under fault schedules: fault-free vs faulted (writes BENCH_pr2.json)",
     fun () -> Scenarios.Figures.faults ~json_path:"BENCH_pr2.json" ());
    ("profile", "span-traced mdtest: latency percentiles + quorum phase breakdown (writes BENCH_pr3.json)",
     fun () -> Scenarios.Figures.profile ~json_path:"BENCH_pr3.json" ());
    ("profile-smoke", "profile at 64 procs only (CI; writes BENCH_pr3_smoke.json)",
     fun () ->
       Scenarios.Figures.profile ~procs_list:[ 64 ]
         ~json_path:"BENCH_pr3_smoke.json" ());
    ("sharding", "namespace sharded across 1/2/4 ZAB ensembles, batched and \
                  unbatched (writes BENCH_pr4.json)",
     fun () -> Scenarios.Figures.sharding ~json_path:"BENCH_pr4.json" ());
    ("sharding-smoke", "sharding at 64 procs, 1x8 vs 2x4 batched (CI; writes \
                        BENCH_pr4_smoke.json)",
     fun () ->
       Scenarios.Figures.sharding ~procs_list:[ 64 ]
         ~topologies:[ (1, 8); (2, 4) ] ~batches:[ 16 ]
         ~json_path:"BENCH_pr4_smoke.json" ());
    ("chaos", "randomized network-fault schedules + linearizability checker \
               (writes BENCH_pr5.json)",
     fun () -> Scenarios.Figures.chaos ~json_path:"BENCH_pr5.json" ());
    ("chaos-smoke", "chaos at 64 procs, 2 fixed seeds (CI; writes \
                     BENCH_pr5_smoke.json)",
     fun () -> Scenarios.Figures.chaos_smoke ~json_path:"BENCH_pr5_smoke.json" ());
    ("engine", "simulator engine wall-clock throughput: 10^6-event \
                timer/mailbox/net mixes (writes BENCH_pr6.json)",
     fun () -> Scenarios.Figures.engine ~json_path:"BENCH_pr6.json" ());
    ("engine-smoke", "engine throughput at 10^5 events (CI; writes \
                      BENCH_pr6_smoke.json)",
     fun () ->
       Scenarios.Figures.engine ~events:100_000 ~quota_s:0.5
         ~json_path:"BENCH_pr6_smoke.json" ());
    ("sessions", "client-cache coherence at 1k-100k sessions: leases vs \
                  per-znode watches, observer read scaling (writes \
                  BENCH_pr7.json)",
     fun () -> Scenarios.Figures.sessions ~json_path:"BENCH_pr7.json" ());
    ("sessions-smoke", "sessions at 1k, both coherence modes (CI; writes \
                        BENCH_pr7_smoke.json)",
     fun () ->
       Scenarios.Figures.sessions_smoke ~json_path:"BENCH_pr7_smoke.json" ());
    ("reshard", "elastic resharding: live 2->4 shard split (and 4->2 merge) \
                 during mdtest file creates, linearizability-checked (writes \
                 BENCH_pr8.json)",
     fun () -> Scenarios.Figures.reshard ~json_path:"BENCH_pr8.json" ());
    ("reshard-smoke", "resharding at 64 procs (CI; writes \
                       BENCH_pr8_smoke.json)",
     fun () ->
       Scenarios.Figures.reshard_smoke ~json_path:"BENCH_pr8_smoke.json" ());
    ("pipeline", "pipelined ZAB write path: windowed proposals vs \
                  stop-and-wait, traced breakdown + chaos sweep with the \
                  window open (writes BENCH_pr9.json)",
     fun () -> Scenarios.Figures.pipeline ~json_path:"BENCH_pr9.json" ());
    ("pipeline-smoke", "pipeline at 64 procs, 2 chaos seeds (CI; writes \
                        BENCH_pr9_smoke.json)",
     fun () ->
       Scenarios.Figures.pipeline_smoke ~json_path:"BENCH_pr9_smoke.json" ());
    ("durability", "checksummed-WAL durability: whole-cluster power failures \
                    + storage corruption under mdtest, durability oracle \
                    (writes BENCH_pr10.json)",
     fun () -> Scenarios.Figures.durability ~json_path:"BENCH_pr10.json" ());
    ("durability-smoke", "durability at 16 procs, 4 schedules (CI; writes \
                          BENCH_pr10_smoke.json)",
     fun () ->
       Scenarios.Figures.durability_smoke
         ~json_path:"BENCH_pr10_smoke.json" ());
    ("all", "every experiment in order", Scenarios.Figures.all) ]

open Cmdliner

let experiment =
  let doc =
    "Experiment to run: " ^ String.concat ", " (List.map (fun (n, _, _) -> n) experiments)
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT" ~doc)

let run name =
  match List.find_opt (fun (n, _, _) -> n = name) experiments with
  | Some (_, _, f) ->
    f ();
    `Ok ()
  | None ->
    `Error
      (false,
       Printf.sprintf "unknown experiment %S; available: %s" name
         (String.concat ", " (List.map (fun (n, _, _) -> n) experiments)))

let cmd =
  let doc = "Regenerate the DUFS paper's tables and figures" in
  let man =
    [ `S Manpage.s_description;
      `P
        "Each experiment rebuilds the corresponding figure of 'Can a \
         Decentralized Metadata Service Layer benefit Parallel Filesystems?' \
         (CLUSTER 2011) on the discrete-event simulator.";
      `S "EXPERIMENTS" ]
    @ List.map (fun (n, d, _) -> `P (Printf.sprintf "$(b,%s): %s" n d)) experiments
  in
  Cmd.v
    (Cmd.info "dufs_bench" ~doc ~man)
    Term.(ret (const run $ experiment))

let () = exit (Cmd.eval cmd)
