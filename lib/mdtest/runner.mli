(** Closed-loop benchmark runner on the simulator.

    Spawns one simulation process per client, separates phases with
    barriers (as mdtest does with MPI_Barrier), and reports each phase's
    aggregate throughput over the virtual clock. *)

type phase =
  | Dir_create
  | Dir_stat
  | Dir_remove
  | File_create
  | File_stat
  | File_remove

val all_phases : phase list
val phase_to_string : phase -> string

(** Per-phase operation-latency distribution (virtual seconds). [max] is
    the exact observed maximum, not a histogram-bucket upper bound. *)
type latency = {
  samples : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}

type results = {
  rates : (phase * float) list;  (** ops/second per phase *)
  latencies : (phase * latency) list;
      (** only phases that recorded at least one sample *)
  errors : int;                  (** operations that returned an error *)
  wall : float;                  (** virtual seconds for the whole run *)
}

val rate : results -> phase -> float

(** [None] when the phase recorded no samples — an empty distribution has
    no honest statistics to report. *)
val latency_of : results -> phase -> latency option

(** [run engine cfg ~ops_for_proc] executes the six mdtest phases.
    [ops_for_proc p] supplies client [p]'s operation table (its own DUFS
    client instance, or a shared native-filesystem client). Process 0
    creates the skeleton before the first barrier (outside every
    measurement window). The engine is run to completion.

    [on_phase] fires once per phase (from process 0, at the phase's
    start, after the preceding barrier) — the hook a fault schedule uses
    to anchor crash/restart events to workload phases. *)
val run :
  ?on_phase:(phase -> unit) ->
  Simkit.Engine.t ->
  Workload.config ->
  ops_for_proc:(int -> Fuselike.Vfs.ops) ->
  results

(** [closed_loop engine ~procs ~items f] — generic barrier-delimited
    closed loop: [procs] processes each execute [f ~proc ~item] [items]
    times; returns aggregate ops/second. Used for the raw coordination-
    service benchmarks (Fig. 7). *)
val closed_loop :
  Simkit.Engine.t -> procs:int -> items:int -> (proc:int -> item:int -> unit) -> float
