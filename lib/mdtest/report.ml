type series = {
  label : string;
  points : (int * float) list;
}

let print_header title =
  Printf.printf "\n=== %s ===\n%!" title

let print_figure ~title ~x_label ?(unit_label = "ops/sec") series =
  print_header title;
  let xs =
    List.sort_uniq compare (List.concat_map (fun s -> List.map fst s.points) series)
  in
  let width = 24 in
  Printf.printf "%-10s" x_label;
  List.iter (fun s -> Printf.printf " %*s" width s.label) series;
  Printf.printf "   [%s]\n" unit_label;
  List.iter
    (fun x ->
      Printf.printf "%-10d" x;
      List.iter
        (fun s ->
          match List.assoc_opt x s.points with
          | Some v -> Printf.printf " %*.0f" width v
          | None -> Printf.printf " %*s" width "-")
        series;
      print_newline ())
    xs;
  flush stdout

let print_ratio ~label v = Printf.printf "  %-58s %8.2fx\n%!" label v

(* {2 Machine-readable bench points} *)

type bench_point = {
  experiment : string;
  procs : int;
  config : string;
  ops_per_sec : float;
}

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let emit_json ~path points =
  let oc = open_out path in
  output_string oc "[\n";
  List.iteri
    (fun i p ->
      Printf.fprintf oc
        "  {\"experiment\": \"%s\", \"procs\": %d, \"config\": \"%s\", \
         \"ops_per_sec\": %.3f}%s\n"
        (json_escape p.experiment) p.procs (json_escape p.config) p.ops_per_sec
        (if i < List.length points - 1 then "," else ""))
    points;
  output_string oc "]\n";
  close_out oc
