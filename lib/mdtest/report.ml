type series = {
  label : string;
  points : (int * float) list;
}

let print_header title =
  Printf.printf "\n=== %s ===\n%!" title

let print_figure ~title ~x_label ?(unit_label = "ops/sec") series =
  print_header title;
  let xs =
    List.sort_uniq compare (List.concat_map (fun s -> List.map fst s.points) series)
  in
  let width = 24 in
  Printf.printf "%-10s" x_label;
  List.iter (fun s -> Printf.printf " %*s" width s.label) series;
  Printf.printf "   [%s]\n" unit_label;
  List.iter
    (fun x ->
      Printf.printf "%-10d" x;
      List.iter
        (fun s ->
          match List.assoc_opt x s.points with
          | Some v -> Printf.printf " %*.0f" width v
          | None -> Printf.printf " %*s" width "-")
        series;
      print_newline ())
    xs;
  flush stdout

let print_ratio ~label v = Printf.printf "  %-58s %8.2fx\n%!" label v

(* {2 Machine-readable bench points} *)

type latency_stats = {
  samples : int;
  mean_s : float;
  p50_s : float;
  p95_s : float;
  p99_s : float;
  max_s : float;
}

type shard_stat = {
  shard : int;
  znodes : int;
  writes_committed : int;
  dedup_hits : int;
  queue_wait_mean_s : float option;
}

type bench_point = {
  experiment : string;
  procs : int;
  config : string;
  ops_per_sec : float;
  latency : latency_stats option;
  phases : (string * float) list;
  shards : shard_stat list;
}

let point ~experiment ~procs ~config ~ops_per_sec ?latency ?(phases = [])
    ?(shards = []) () =
  { experiment; procs; config; ops_per_sec; latency; phases; shards }

let latency_of_runner (l : Runner.latency) =
  { samples = l.Runner.samples;
    mean_s = l.Runner.mean;
    p50_s = l.Runner.p50;
    p95_s = l.Runner.p95;
    p99_s = l.Runner.p99;
    max_s = l.Runner.max }

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Every float is checked before it reaches the file: a bench JSON with
   NaN/Infinity in it is worse than a crashed bench run. *)
let finite ~experiment ~field v =
  if Float.is_finite v then v
  else
    invalid_arg
      (Printf.sprintf "Report.emit_json: %s.%s is not finite" experiment field)

let emit_json ~path points =
  let oc = open_out path in
  output_string oc "[\n";
  List.iteri
    (fun i p ->
      let f = finite ~experiment:p.experiment in
      Printf.fprintf oc
        "  {\"experiment\": \"%s\", \"procs\": %d, \"config\": \"%s\", \
         \"ops_per_sec\": %.3f"
        (json_escape p.experiment) p.procs (json_escape p.config)
        (f ~field:"ops_per_sec" p.ops_per_sec);
      (match p.latency with
       | None -> ()
       | Some l ->
         Printf.fprintf oc
           ", \"latency\": {\"samples\": %d, \"mean_s\": %.9g, \"p50_s\": \
            %.9g, \"p95_s\": %.9g, \"p99_s\": %.9g, \"max_s\": %.9g}"
           l.samples
           (f ~field:"mean_s" l.mean_s)
           (f ~field:"p50_s" l.p50_s)
           (f ~field:"p95_s" l.p95_s)
           (f ~field:"p99_s" l.p99_s)
           (f ~field:"max_s" l.max_s));
      (match p.phases with
       | [] -> ()
       | phases ->
         output_string oc ", \"phases\": {";
         List.iteri
           (fun j (name, dur) ->
             if j > 0 then output_string oc ", ";
             Printf.fprintf oc "\"%s\": %.9g" (json_escape name)
               (f ~field:name dur))
           phases;
         output_string oc "}");
      (match p.shards with
       | [] -> ()
       | shards ->
         output_string oc ", \"shards\": [";
         List.iteri
           (fun j s ->
             if j > 0 then output_string oc ", ";
             Printf.fprintf oc
               "{\"shard\": %d, \"znodes\": %d, \"writes_committed\": %d, \
                \"dedup_hits\": %d"
               s.shard s.znodes s.writes_committed s.dedup_hits;
             (match s.queue_wait_mean_s with
              | None -> ()
              | Some q ->
                Printf.fprintf oc ", \"queue_wait_mean_s\": %.9g"
                  (f ~field:(Printf.sprintf "shard%d.queue_wait" s.shard) q));
             output_string oc "}")
           shards;
         output_string oc "]");
      Printf.fprintf oc "}%s\n" (if i < List.length points - 1 then "," else ""))
    points;
  output_string oc "]\n";
  close_out oc
