module Engine = Simkit.Engine
module Process = Simkit.Process
module Barrier = Simkit.Gate.Barrier
module Vfs = Fuselike.Vfs

type phase =
  | Dir_create
  | Dir_stat
  | Dir_remove
  | File_create
  | File_stat
  | File_remove

let all_phases = [ Dir_create; Dir_stat; Dir_remove; File_create; File_stat; File_remove ]

let phase_to_string = function
  | Dir_create -> "dir-create"
  | Dir_stat -> "dir-stat"
  | Dir_remove -> "dir-remove"
  | File_create -> "file-create"
  | File_stat -> "file-stat"
  | File_remove -> "file-remove"

type latency = {
  samples : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}

type results = {
  rates : (phase * float) list;
  latencies : (phase * latency) list;
  errors : int;
  wall : float;
}

let rate results phase = List.assoc phase results.rates

(* [None] for a phase that recorded no samples: an empty distribution has
   no honest mean or quantiles, so it reports nothing instead of zeros. *)
let latency_of results phase = List.assoc_opt phase results.latencies

let count_result errors = function
  | Ok _ -> ()
  | Error _ -> incr errors

let phase_items cfg phase =
  match phase with
  | Dir_create | Dir_stat | Dir_remove -> cfg.Workload.dirs_per_proc
  | File_create | File_stat | File_remove -> cfg.Workload.files_per_proc

let perform cfg (ops : Vfs.ops) errors phase ~proc ~item =
  match phase with
  | Dir_create ->
    count_result errors (ops.Vfs.mkdir (Workload.dir_path cfg ~proc ~item) ~mode:0o755)
  | Dir_stat ->
    count_result errors (ops.Vfs.getattr (Workload.dir_path cfg ~proc ~item))
  | Dir_remove -> count_result errors (ops.Vfs.rmdir (Workload.dir_path cfg ~proc ~item))
  | File_create ->
    count_result errors (ops.Vfs.create (Workload.file_path cfg ~proc ~item) ~mode:0o644)
  | File_stat ->
    count_result errors (ops.Vfs.getattr (Workload.file_path cfg ~proc ~item))
  | File_remove ->
    count_result errors (ops.Vfs.unlink (Workload.file_path cfg ~proc ~item))

let run ?(on_phase = fun (_ : phase) -> ()) engine cfg ~ops_for_proc =
  let procs = cfg.Workload.procs in
  let barrier = Barrier.create ~parties:procs () in
  let errors = ref 0 in
  let rates = ref [] in
  let latencies = ref [] in
  let started = ref 0. in
  let finished = ref 0. in
  (* shared per-phase latency accumulators (all processes feed them) *)
  let histograms =
    List.map
      (fun phase ->
        ( phase,
          ( Simkit.Stat.Histogram.create ~lo:1e-6 ~hi:60. ~buckets:240 (),
            Simkit.Stat.Summary.create () ) ))
      all_phases
  in
  let proc_body proc =
    let ops = ops_for_proc proc in
    if proc = 0 then begin
      List.iter
        (fun dir -> count_result errors (ops.Vfs.mkdir dir ~mode:0o755))
        (Workload.skeleton cfg);
      started := Engine.now engine
    end;
    Barrier.await barrier;
    List.iter
      (fun phase ->
        if proc = 0 then on_phase phase;
        let t0 = Engine.now engine in
        let items = phase_items cfg phase in
        let histogram, summary = List.assoc phase histograms in
        for item = 0 to items - 1 do
          let op_start = Engine.now engine in
          perform cfg ops errors phase ~proc ~item;
          let dt = Engine.now engine -. op_start in
          Simkit.Stat.Histogram.add histogram dt;
          Simkit.Stat.Summary.add summary dt
        done;
        Barrier.await barrier;
        if proc = 0 then begin
          let dt = Engine.now engine -. t0 in
          let total = float_of_int (items * procs) in
          rates := (phase, if dt > 0. then total /. dt else 0.) :: !rates;
          match Simkit.Stat.Summary.max summary with
          | None -> ()  (* no samples: no latency row *)
          | Some max ->
            latencies :=
              ( phase,
                { samples = Simkit.Stat.Summary.count summary;
                  mean = Simkit.Stat.Summary.mean summary;
                  p50 = Simkit.Stat.Histogram.quantile histogram 0.5;
                  p95 = Simkit.Stat.Histogram.quantile histogram 0.95;
                  p99 = Simkit.Stat.Histogram.quantile histogram 0.99;
                  max } )
              :: !latencies
        end)
      all_phases;
    if proc = 0 then finished := Engine.now engine
  in
  for proc = 0 to procs - 1 do
    Process.spawn engine (fun () -> proc_body proc)
  done;
  Engine.run engine;
  { rates = List.rev !rates;
    latencies = List.rev !latencies;
    errors = !errors;
    wall = !finished -. !started }

let closed_loop engine ~procs ~items f =
  let barrier = Barrier.create ~parties:procs () in
  let t0 = ref 0. and t1 = ref 0. in
  for proc = 0 to procs - 1 do
    Process.spawn engine (fun () ->
        Barrier.await barrier;
        if proc = 0 then t0 := Engine.now engine;
        for item = 0 to items - 1 do
          f ~proc ~item
        done;
        Barrier.await barrier;
        if proc = 0 then t1 := Engine.now engine)
  done;
  Engine.run engine;
  let dt = !t1 -. !t0 in
  if dt > 0. then float_of_int (procs * items) /. dt else 0.
