(** Plain-text table/series rendering shared by the benchmark drivers,
    matching the shape of the paper's figures: one series per system
    configuration, one row per x value (client-process count). *)

type series = {
  label : string;
  points : (int * float) list;  (** (x, ops per second) *)
}

(** Render a figure: title, x-axis label, series rendered as columns. *)
val print_figure :
  title:string -> x_label:string -> ?unit_label:string -> series list -> unit

(** One labelled scalar row (for headline ratios). *)
val print_ratio : label:string -> float -> unit

val print_header : string -> unit

(** {2 Machine-readable bench points}

    The stable cross-PR schema for benchmark output files
    ([BENCH_*.json]): a flat JSON array of
    [{experiment, procs, config, ops_per_sec}] objects, so successive
    PRs append comparable points. *)

type bench_point = {
  experiment : string;  (** e.g. ["mdtest-file-create"] *)
  procs : int;          (** simulated client processes *)
  config : string;      (** system + knob description, e.g. ["max_batch=16"] *)
  ops_per_sec : float;
}

(** Write [points] to [path] as a JSON array, one object per line. *)
val emit_json : path:string -> bench_point list -> unit
