(** Plain-text table/series rendering shared by the benchmark drivers,
    matching the shape of the paper's figures: one series per system
    configuration, one row per x value (client-process count). *)

type series = {
  label : string;
  points : (int * float) list;  (** (x, ops per second) *)
}

(** Render a figure: title, x-axis label, series rendered as columns. *)
val print_figure :
  title:string -> x_label:string -> ?unit_label:string -> series list -> unit

(** One labelled scalar row (for headline ratios). *)
val print_ratio : label:string -> float -> unit

val print_header : string -> unit

(** {2 Machine-readable bench points}

    The stable cross-PR schema for benchmark output files
    ([BENCH_*.json]): a flat JSON array of
    [{experiment, procs, config, ops_per_sec}] objects, so successive
    PRs append comparable points. Points may additionally carry a
    latency-percentile block and a per-phase breakdown; points without
    them serialize exactly as before. *)

(** Operation-latency percentiles (virtual seconds), [samples > 0]. *)
type latency_stats = {
  samples : int;
  mean_s : float;
  p50_s : float;
  p95_s : float;
  p99_s : float;
  max_s : float;
}

(** Per-shard balance of a sharded coordination deployment at the end
    of a run. [znodes] counts everything resident on the shard (its own
    root and any stubs included); [queue_wait_mean_s] is the mean
    client-send-to-leader-batch wait of writes the shard served (absent
    when the run was untraced or the shard saw no writes). *)
type shard_stat = {
  shard : int;
  znodes : int;
  writes_committed : int;
  dedup_hits : int;
  queue_wait_mean_s : float option;
}

type bench_point = {
  experiment : string;  (** e.g. ["mdtest-file-create"] *)
  procs : int;          (** simulated client processes *)
  config : string;      (** system + knob description, e.g. ["max_batch=16"] *)
  ops_per_sec : float;
  latency : latency_stats option;
  phases : (string * float) list;
      (** named critical-path phase durations (seconds), e.g. the quorum
          phases of a coordination write; empty for throughput-only points *)
  shards : shard_stat list;
      (** per-shard balance; empty for unsharded deployments *)
}

val point :
  experiment:string ->
  procs:int ->
  config:string ->
  ops_per_sec:float ->
  ?latency:latency_stats ->
  ?phases:(string * float) list ->
  ?shards:shard_stat list ->
  unit ->
  bench_point

val latency_of_runner : Runner.latency -> latency_stats

(** Write [points] to [path] as a JSON array, one object per line.
    @raise Invalid_argument on NaN/infinite values — a bench file is
    either honest JSON or an error, never silently poisoned. *)
val emit_json : path:string -> bench_point list -> unit
