(** FIFO k-server resources (queueing stations) for simulation processes.

    A resource with capacity [k] admits at most [k] concurrent holders;
    further acquirers park in FIFO order. This models service centers such
    as a metadata server's request threads or a per-directory lock. *)

type t

(** [create ~capacity ()] makes a resource with [capacity] servers.
    @raise Invalid_argument if [capacity < 1]. *)
val create : capacity:int -> unit -> t

val capacity : t -> int

(** Number of slots currently held. *)
val in_use : t -> int

(** Number of processes parked waiting for a slot. *)
val queue_length : t -> int

(** Acquire one slot, parking FIFO if none is free. Process context only. *)
val acquire : t -> unit

(** Release one slot previously acquired; wakes the oldest waiter, if any.
    @raise Invalid_argument if the resource is not held. *)
val release : t -> unit

(** [with_slot t f] = acquire; [f ()]; release — exception safe. *)
val with_slot : t -> (unit -> 'a) -> 'a

(** [serve t d] models one service visit: acquire a slot, hold it for [d]
    seconds of virtual time, release. *)
val serve : t -> float -> unit

(** {2 Wait-vs-service decomposition}

    Every acquire records its queueing delay (0. when a slot was free)
    and every [with_slot]/[serve] visit records its holding time, so a
    station can report how much of its latency is contention and how
    much is service. Recording is pure bookkeeping on the virtual clock:
    it never schedules events, so instrumented and uninstrumented runs
    are identical. *)

(** Per-acquire queueing delay, seconds. *)
val wait_summary : t -> Stat.Summary.t

(** Per-visit slot-holding time, seconds. *)
val hold_summary : t -> Stat.Summary.t
