(** Cooperative simulation processes built on OCaml effects.

    A process is ordinary OCaml code running inside {!spawn}. It advances
    virtual time with {!sleep} and can park itself with {!suspend} /
    {!suspend_v} until another process resumes it. Blocking primitives
    ({!Resource}, {!Mailbox}, {!Gate}) are built from these two effects. *)

exception Process_failure of exn
(** Raised out of {!Engine.run} when a spawned process terminates with an
    uncaught exception. *)

(** [spawn engine f] starts [f] as a process at the current virtual time. *)
val spawn : Engine.t -> (unit -> unit) -> unit

(** [sleep d] advances the process's virtual clock by [d] seconds.
    Must be called from inside a process. *)
val sleep : float -> unit

(** [suspend register] parks the calling process. [register] receives a
    [resume] thunk; invoking [resume ()] (from any other process or event)
    reschedules the parked process at the then-current virtual time.
    [resume] must be called at most once. *)
val suspend : ((unit -> unit) -> unit) -> unit

(** [suspend_v register] is {!suspend} for value-carrying resumption:
    the value passed to [resume] becomes the result of [suspend_v]. *)
val suspend_v : (('a -> unit) -> unit) -> 'a

(** A parked process awaiting a value of type ['a]; see
    {!suspend_with}. *)
type 'a waiter

(** [suspend_with register ctx] parks the calling process like
    {!suspend_v}, but hands [register] a reified {!waiter} (plus [ctx],
    so [register] can be a static function rather than a closure).
    Resume with {!wake}. This is the allocation-lean parking primitive
    for hot blocking structures ({!Mailbox}); semantics are identical
    to [suspend_v]. *)
val suspend_with : ('ctx -> 'a waiter -> unit) -> 'ctx -> 'a

(** [wake w v] reschedules the process parked as [w] at the current
    virtual time; [v] becomes the result of its [suspend_with].
    @raise Invalid_argument on a second [wake] of the same waiter. *)
val wake : 'a waiter -> 'a -> unit

(** [engine ()] is the engine the calling process runs on. *)
val engine : unit -> Engine.t

(** [now ()] is the virtual time seen by the calling process. *)
val now : unit -> float
