type t = {
  capacity : int;
  mutable in_use : int;
  waiters : (unit -> unit) Queue.t;
  (* wait-vs-service decomposition: queueing delay per acquire (0. for an
     uncontended grant) and holding time per with_slot/serve visit *)
  wait : Stat.Summary.t;
  hold : Stat.Summary.t;
}

let create ~capacity () =
  if capacity < 1 then invalid_arg "Resource.create: capacity < 1";
  { capacity;
    in_use = 0;
    waiters = Queue.create ();
    wait = Stat.Summary.create ();
    hold = Stat.Summary.create () }

let capacity t = t.capacity
let in_use t = t.in_use
let queue_length t = Queue.length t.waiters
let wait_summary t = t.wait
let hold_summary t = t.hold

let acquire t =
  if t.in_use < t.capacity then begin
    t.in_use <- t.in_use + 1;
    (* uncontended grants count as zero wait, so the mean is over every
       acquire, not only the unlucky ones *)
    Stat.Summary.add t.wait 0.
  end
  else begin
    (* The releaser transfers its slot directly to us, so [in_use] is not
       decremented on hand-off; see [release]. *)
    let parked_at = Process.now () in
    Process.suspend (fun resume -> Queue.push resume t.waiters);
    Stat.Summary.add t.wait (Process.now () -. parked_at)
  end

let release t =
  if t.in_use <= 0 then invalid_arg "Resource.release: not held";
  match Queue.take_opt t.waiters with
  | Some resume -> resume ()
  | None -> t.in_use <- t.in_use - 1

let with_slot t f =
  acquire t;
  let entered = Process.now () in
  match f () with
  | v ->
    Stat.Summary.add t.hold (Process.now () -. entered);
    release t;
    v
  | exception e ->
    Stat.Summary.add t.hold (Process.now () -. entered);
    release t;
    raise e

let serve t d = with_slot t (fun () -> Process.sleep d)
