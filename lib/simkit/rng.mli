(** Deterministic splittable PRNG (splitmix64) for reproducible runs. *)

type t

val create : seed:int64 -> t

(** An independent stream derived from [t]'s state. *)
val split : t -> t

(** Raw next 64-bit value. *)
val next : t -> int64

(** Uniform float in [0, 1). *)
val float : t -> float

(** Uniform int in [0, bound), bias-free (rejection sampling rather than
    a plain modulo fold). @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** Exponentially distributed value with the given [mean]. *)
val exponential : t -> mean:float -> float

(** Uniform float in [lo, hi). *)
val uniform : t -> lo:float -> hi:float -> float

(** Pick a uniformly random element. @raise Invalid_argument on [||]. *)
val pick : t -> 'a array -> 'a

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit
