(** Unbounded typed mailboxes for message passing between processes.

    [send] never blocks; [recv] parks the caller until a message arrives.
    Messages are delivered in FIFO order, and parked receivers are served
    in FIFO order. Used to model RPC request/reply channels. *)

type 'a t

val create : unit -> 'a t

(** Queue a message; wakes the oldest parked receiver if any. Callable from
    any event context (not only processes). *)
val send : 'a t -> 'a -> unit

(** Dequeue the next message, parking if the mailbox is empty.
    Process context only. *)
val recv : 'a t -> 'a

(** [recv_opt t] is [Some m] if a message is immediately available. *)
val recv_opt : 'a t -> 'a option

(** [take_if t pred] scans the queue front-to-back and dequeues the
    {e oldest} message satisfying [pred]; [None] if no queued message
    matches. Never blocks. The relative FIFO order of the remaining
    messages is preserved. Cost is O(position of the match). *)
val take_if : 'a t -> ('a -> bool) -> 'a option

(** [take_head_if t pred] dequeues the head message only when one is
    queued and satisfies [pred]; otherwise leaves the mailbox untouched
    — unlike {!take_if} it never skips over a non-matching head. Never
    blocks. Use when global FIFO order across message classes matters
    (e.g. batch draining that must not reorder around unrelated
    traffic). *)
val take_head_if : 'a t -> ('a -> bool) -> 'a option

val length : 'a t -> int
val is_empty : 'a t -> bool

(** Discard every queued message. Parked receivers stay parked — they
    resume on the next [send]. Models a host losing its RAM-resident
    socket buffers on crash: what was queued but unprocessed is gone. *)
val clear : 'a t -> unit
