module Counter = struct
  type t = { mutable value : int }

  let create () = { value = 0 }
  let incr t = t.value <- t.value + 1
  let add t n = t.value <- t.value + n
  let value t = t.value
  let reset t = t.value <- 0
end

module Summary = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () =
    { count = 0; mean = 0.; m2 = 0.; min = Float.infinity; max = Float.neg_infinity }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count
  let mean t = if t.count = 0 then 0. else t.mean

  (* An empty summary has no extrema: returning 0.0 here would be
     indistinguishable from a genuine zero-latency sample downstream. *)
  let min t = if t.count = 0 then None else Some t.min
  let max t = if t.count = 0 then None else Some t.max

  let stddev t =
    if t.count < 2 then 0.
    else
      (* catastrophic cancellation can drive m2 a hair below zero; sqrt
         of that is NaN, which then poisons every aggregate it meets *)
      let v = t.m2 /. float_of_int (t.count - 1) in
      if v > 0. then sqrt v else 0.
end

module Histogram = struct
  type t = {
    lo : float;
    hi : float;
    log_lo : float;
    log_step : float;
    buckets : int array;
    (* samples above [hi] land here instead of being folded into the top
       bucket, so tail quantiles cannot silently report [hi] as the max *)
    mutable overflow : int;
    mutable count : int;
    mutable max_seen : float;
  }

  let create ~lo ~hi ~buckets () =
    if not (lo > 0. && hi > lo && buckets > 0) then
      invalid_arg "Histogram.create: need 0 < lo < hi and buckets > 0";
    { lo;
      hi;
      log_lo = log lo;
      log_step = (log hi -. log lo) /. float_of_int buckets;
      buckets = Array.make buckets 0;
      overflow = 0;
      count = 0;
      max_seen = Float.neg_infinity }

  let index t x =
    if x <= t.lo then 0
    else
      let i = int_of_float ((log x -. t.log_lo) /. t.log_step) in
      Stdlib.min i (Array.length t.buckets - 1)

  let add t x =
    if x > t.hi then t.overflow <- t.overflow + 1
    else begin
      let i = index t x in
      t.buckets.(i) <- t.buckets.(i) + 1
    end;
    t.count <- t.count + 1;
    if x > t.max_seen then t.max_seen <- x

  let count t = t.count
  let overflow t = t.overflow
  let max_seen t = if t.count = 0 then None else Some t.max_seen

  let bucket_upper t i = exp (t.log_lo +. (t.log_step *. float_of_int (i + 1)))

  let quantile t q =
    if t.count = 0 then 0.
    else begin
      let target = int_of_float (Float.round (q *. float_of_int t.count)) in
      let target = Stdlib.max 1 (Stdlib.min t.count target) in
      let rec scan i acc =
        if i >= Array.length t.buckets then
          (* the target falls among overflow samples: the honest answer
             is the exact observed maximum, not the [hi] clamp *)
          t.max_seen
        else
          let acc = acc + t.buckets.(i) in
          if acc >= target then Stdlib.min (bucket_upper t i) t.max_seen
          else scan (i + 1) acc
      in
      scan 0 0
    end
end

module Throughput = struct
  type t = { started : float; mutable ops : int }

  let start ~at = { started = at; ops = 0 }
  let record t = t.ops <- t.ops + 1
  let record_n t n = t.ops <- t.ops + n
  let ops t = t.ops

  let rate t ~now =
    let dt = now -. t.started in
    if dt <= 0. then 0. else float_of_int t.ops /. dt
end
