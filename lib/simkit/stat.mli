(** Measurement helpers: counters, online summaries and latency histograms. *)

module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val reset : t -> unit
end

(** Online mean / min / max / variance (Welford). *)
module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float

  (** [None] when no sample has been recorded — an empty summary has no
      minimum, and reporting [0.0] would masquerade as a real sample. *)
  val min : t -> float option

  (** [None] when no sample has been recorded. *)
  val max : t -> float option

  (** Sample standard deviation; [0.] below two samples. Guarded against
      floating-point cancellation driving the variance negative (never
      returns NaN). *)
  val stddev : t -> float
end

(** Fixed-bucket log-scale latency histogram with quantile estimation. *)
module Histogram : sig
  type t

  (** [create ~lo ~hi ~buckets ()] covers [lo, hi] seconds with
      logarithmically spaced buckets. Samples below [lo] clamp into the
      first bucket; samples above [hi] are counted in a separate
      overflow bucket (see {!overflow}) and the exact observed maximum
      is tracked, so tail quantiles never silently report [hi].
      @raise Invalid_argument unless [0 < lo < hi] and [buckets > 0]. *)
  val create : lo:float -> hi:float -> buckets:int -> unit -> t

  val add : t -> float -> unit
  val count : t -> int

  (** Samples recorded above [hi]. *)
  val overflow : t -> int

  (** Exact largest sample recorded; [None] when empty. *)
  val max_seen : t -> float option

  (** [quantile t q] for q in [0,1]; 0. when empty. In-range quantiles
      report the matching bucket's upper bound (capped at the observed
      maximum); a quantile that falls among overflow samples reports the
      exact observed maximum. *)
  val quantile : t -> float -> float
end

(** Throughput over an interval of the virtual clock. *)
module Throughput : sig
  type t

  val start : at:float -> t
  val record : t -> unit
  val record_n : t -> int -> unit
  val ops : t -> int

  (** Completed operations per second between [start] and [now].
      0. if no time has elapsed. *)
  val rate : t -> now:float -> float
end
