(* Ring-buffer mailboxes. Messages and parked receivers live in
   power-of-two circular arrays, so the quiet path — send with a
   receiver parked, recv with a message queued — touches no allocator
   at all (compare the [Queue]-cell-per-message implementation this
   replaced). Messages are stored as [Obj.t] in an array seeded with
   [Obj.repr ()], which keeps the array from specializing to the flat
   float representation when ['a = float]. *)

type 'a t = {
  mutable msgs : Obj.t array;
  mutable m_head : int;
  mutable m_size : int;
  mutable rcvs : Obj.t array;  (* parked 'a Process.waiter values *)
  mutable r_head : int;
  mutable r_size : int;
}

let obj_unit = Obj.repr ()
let initial_cap = 8

(* Store [v] into the empty slot [arr.(i)] without the [caml_modify]
   write barrier when [v] is an immediate. Sound only because BOTH
   sides are immediate: the new value needs no minor remembered-set
   entry, and the old value (empty slots always hold an immediate —
   [obj_unit] or a stale popped immediate) needs no deletion-barrier
   mark. Overwriting a pointer this way would break OCaml 5's
   concurrent major GC; pointer clears below go through the normal
   barriered store. *)
let[@inline] set_empty_slot (arr : Obj.t array) i (v : Obj.t) =
  if Obj.is_int v then
    Array.unsafe_set (Obj.magic arr : int array) i (Obj.magic v : int)
  else Array.unsafe_set arr i v

let create () =
  { msgs = Array.make initial_cap obj_unit;
    m_head = 0;
    m_size = 0;
    rcvs = Array.make initial_cap obj_unit;
    r_head = 0;
    r_size = 0 }

let grow_msgs t =
  let cap = Array.length t.msgs in
  let arr = Array.make (2 * cap) obj_unit in
  for k = 0 to t.m_size - 1 do
    arr.(k) <- t.msgs.((t.m_head + k) land (cap - 1))
  done;
  t.msgs <- arr;
  t.m_head <- 0

let grow_rcvs t =
  let cap = Array.length t.rcvs in
  let arr = Array.make (2 * cap) obj_unit in
  for k = 0 to t.r_size - 1 do
    arr.(k) <- t.rcvs.((t.r_head + k) land (cap - 1))
  done;
  t.rcvs <- arr;
  t.r_head <- 0

let[@inline] push_msg t msg =
  if t.m_size = Array.length t.msgs then grow_msgs t;
  set_empty_slot t.msgs ((t.m_head + t.m_size) land (Array.length t.msgs - 1)) (Obj.repr msg);
  t.m_size <- t.m_size + 1

let[@inline] pop_msg t : 'a =
  let i = t.m_head in
  let r = Array.unsafe_get t.msgs i in
  (* immediates can stay in the slot: clearing only matters to avoid
     retaining heap blocks past their consumption *)
  if not (Obj.is_int r) then Array.unsafe_set t.msgs i obj_unit;
  t.m_head <- (i + 1) land (Array.length t.msgs - 1);
  t.m_size <- t.m_size - 1;
  Obj.obj r

let[@inline] send t msg =
  if t.r_size > 0 then begin
    let i = t.r_head in
    let w : 'a Process.waiter = Obj.obj (Array.unsafe_get t.rcvs i) in
    Array.unsafe_set t.rcvs i obj_unit;
    t.r_head <- (i + 1) land (Array.length t.rcvs - 1);
    t.r_size <- t.r_size - 1;
    Process.wake w msg
  end
  else push_msg t msg

(* Static registrar for {!Process.suspend_with}: parking allocates no
   closure over [t]. *)
let[@inline] park t (w : 'a Process.waiter) =
  if t.r_size = Array.length t.rcvs then grow_rcvs t;
  Array.unsafe_set t.rcvs ((t.r_head + t.r_size) land (Array.length t.rcvs - 1)) (Obj.repr w);
  t.r_size <- t.r_size + 1

let[@inline] recv t =
  if t.m_size > 0 then pop_msg t else Process.suspend_with park t

let[@inline] recv_opt t = if t.m_size > 0 then Some (pop_msg t) else None

let[@inline] take_head_if t pred =
  if t.m_size > 0 && pred (Obj.obj (Array.unsafe_get t.msgs t.m_head)) then
    Some (pop_msg t)
  else None

let take_if t pred =
  let mask = Array.length t.msgs - 1 in
  let n = t.m_size in
  let rec find k =
    if k = n then None
    else
      let i = (t.m_head + k) land mask in
      let msg : 'a = Obj.obj t.msgs.(i) in
      if pred msg then begin
        (* shift the [k] older messages one slot toward the match,
           freeing the head slot; their relative order is untouched *)
        let j = ref i in
        for _ = 1 to k do
          let p = (!j - 1) land mask in
          t.msgs.(!j) <- t.msgs.(p);
          j := p
        done;
        t.msgs.(t.m_head) <- obj_unit;
        t.m_head <- (t.m_head + 1) land mask;
        t.m_size <- n - 1;
        Some msg
      end
      else find (k + 1)
  in
  find 0

let[@inline] length t = t.m_size
let[@inline] is_empty t = t.m_size = 0

let clear t =
  if t.m_size > 0 then begin
    Array.fill t.msgs 0 (Array.length t.msgs) obj_unit;
    t.m_head <- 0;
    t.m_size <- 0
  end
