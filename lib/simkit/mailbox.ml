type 'a t = {
  messages : 'a Queue.t;
  receivers : ('a -> unit) Queue.t;
}

let create () = { messages = Queue.create (); receivers = Queue.create () }

let send t msg =
  match Queue.take_opt t.receivers with
  | Some resume -> resume msg
  | None -> Queue.push msg t.messages

let recv t =
  match Queue.take_opt t.messages with
  | Some msg -> msg
  | None -> Process.suspend_v (fun resume -> Queue.push resume t.receivers)

let recv_opt t = Queue.take_opt t.messages

let take_if t pred =
  match Queue.peek_opt t.messages with
  | Some msg when pred msg ->
      ignore (Queue.pop t.messages);
      Some msg
  | Some _ | None -> None
let length t = Queue.length t.messages
let is_empty t = Queue.is_empty t.messages
let clear t = Queue.clear t.messages
