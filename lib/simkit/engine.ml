(* The event core is built for throughput under bit-identical dispatch
   order: events run in nondecreasing (time, seq) order exactly as the
   original binary-heap engine dispatched them.

   Two structures split the load:

   - a dedicated FIFO lane for zero-delay events ([delay:0.] /
     [schedule_at ~time:now]) — the dominant event class (every
     [Process.suspend] resume and same-tick [Mailbox.send]). A ring
     buffer of (fn, arg) pairs: O(1) push/pop, no comparisons, no
     allocation.
   - a calendar queue (Brown '88) for future events: an array of
     bucketed, (time, seq)-sorted intrusive lists indexed by
     [time / width mod nbuckets]. Push and pop are O(1) amortized at
     any occupancy; the width adapts on resize so a bucket holds ~1-3
     events. A full-year scan without a hit falls back to a global
     min-of-heads sweep, so pathological widths degrade to O(nbuckets)
     per pop, never to wrong order.

   Event records are recycled through a free list and carry a
   monomorphic [fn : Obj.t -> unit] plus its argument instead of a
   fresh closure, so the steady-state schedule/dispatch path allocates
   nothing. The [Obj] use is contained to this module and
   [schedule_app]'s boundary: arguments round-trip through [Obj.repr]/
   [Obj.obj] and functions are only ever applied to the argument they
   were registered with (indirect calls use the uniform representation,
   so boxed floats and immediates are both safe).

   Why cross-lane order is exact: a calendar event with time [T] can
   only be scheduled while [now < T] (at [now = T] it would be routed
   to the FIFO lane), so every calendar event at [T] carries a smaller
   seq than every lane event pushed at [T]; and the lane always drains
   before the clock advances (its events are due immediately). The run
   loop therefore (1) drains calendar events at exactly [now] — they
   are contiguous at the head of the current window's bucket — then
   (2) the FIFO lane, then (3) pops the calendar to advance the
   clock. *)

type event = {
  mutable time : float;
  mutable seq : int;
  mutable fn : Obj.t -> unit;
  mutable arg : Obj.t;
  mutable next : event;  (* intrusive bucket link, [nil]-terminated *)
}

let obj_unit = Obj.repr ()
let ignore_obj : Obj.t -> unit = fun _ -> ()

(* Shared trampoline for thunk events: the thunk itself is the argument. *)
let run_thunk : Obj.t -> unit = fun f -> (Obj.obj f : unit -> unit) ()

let rec nil =
  { time = infinity; seq = -1; fn = ignore_obj; arg = obj_unit; next = nil }

type t = {
  mutable now : float;
  mutable stopped : bool;
  mutable executed : int;
  mutable seq : int;  (* tie-break for calendar events only *)
  (* calendar queue (strictly-future events) *)
  mutable buckets : event array;
  mutable tails : event array;  (* valid only where buckets.(b) != nil *)
  mutable mask : int;           (* nbuckets - 1; nbuckets is a power of two *)
  mutable width : float;
  mutable cal_size : int;
  mutable window : int;         (* un-modded window index of the scan cursor *)
  (* zero-delay FIFO lane: parallel rings, power-of-two capacity *)
  mutable nl_fn : (Obj.t -> unit) array;
  mutable nl_arg : Obj.t array;
  mutable nl_head : int;
  mutable nl_size : int;
  (* event-record free list, chained through [next] *)
  mutable free : event;
  (* insert-walk feedback: when sorted inserts walk long bucket lists,
     the width is stale (size-triggered resizes never fire on a
     stable-size queue) — re-derive it from the live population *)
  mutable ins_count : int;
  mutable walk_steps : int;
  (* window where {!cal_find} located the head event (scratch return
     slot: a tuple result would allocate on every pop) *)
  mutable found_w : int;
}

let initial_buckets = 64
let max_buckets = 1 lsl 20

let create () =
  { now = 0.;
    stopped = false;
    executed = 0;
    seq = 0;
    buckets = Array.make initial_buckets nil;
    tails = Array.make initial_buckets nil;
    mask = initial_buckets - 1;
    width = 1e-3;
    cal_size = 0;
    window = 0;
    nl_fn = Array.make 256 ignore_obj;
    nl_arg = Array.make 256 obj_unit;
    nl_head = 0;
    nl_size = 0;
    free = nil;
    ins_count = 0;
    walk_steps = 0;
    found_w = 0 }

let now t = t.now
let executed_events t = t.executed
let pending_events t = t.cal_size + t.nl_size
let stop t = t.stopped <- true

(* (time, seq) order: earliest first, FIFO on ties. *)
let[@inline] earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

(* Window index of a timestamp. Monotone in [time]; clamped so that
   [int_of_float] stays exact (< 2^53) for any finite input. *)
let max_window = 1 lsl 50

let[@inline] idx_of t time =
  let q = time /. t.width in
  if q >= float_of_int max_window then max_window else int_of_float q

(* {2 FIFO lane} *)

let nl_grow t =
  let cap = Array.length t.nl_fn in
  let fns = Array.make (2 * cap) ignore_obj in
  let args = Array.make (2 * cap) obj_unit in
  for k = 0 to t.nl_size - 1 do
    let i = (t.nl_head + k) land (cap - 1) in
    fns.(k) <- t.nl_fn.(i);
    args.(k) <- t.nl_arg.(i)
  done;
  t.nl_fn <- fns;
  t.nl_arg <- args;
  t.nl_head <- 0

let[@inline] nl_push t fn arg =
  if t.nl_size = Array.length t.nl_fn then nl_grow t;
  let i = (t.nl_head + t.nl_size) land (Array.length t.nl_fn - 1) in
  Array.unsafe_set t.nl_fn i fn;
  Array.unsafe_set t.nl_arg i arg;
  t.nl_size <- t.nl_size + 1

(* {2 Calendar queue} *)

let alloc_event t =
  let ev = t.free in
  if ev == nil then
    { time = 0.; seq = 0; fn = ignore_obj; arg = obj_unit; next = nil }
  else begin
    t.free <- ev.next;
    ev.next <- nil;
    ev
  end

let recycle t ev =
  ev.fn <- ignore_obj;
  ev.arg <- obj_unit;
  ev.next <- t.free;
  t.free <- ev

(* Link [ev] after the first element of [prev]'s tail that it is not
   earlier than; returns the number of links walked (width feedback).
   Top-level and tuple-free so the insert path stays allocation-free. *)
let rec walk_insert prev ev steps =
  let next = prev.next in
  if next != nil && not (earlier ev next) then walk_insert next ev (steps + 1)
  else begin
    ev.next <- next;
    prev.next <- ev;
    steps
  end

let cal_insert t ev =
  let b = idx_of t ev.time land t.mask in
  let head = Array.unsafe_get t.buckets b in
  if head == nil then begin
    ev.next <- nil;
    Array.unsafe_set t.buckets b ev;
    Array.unsafe_set t.tails b ev
  end
  else begin
    let tail = Array.unsafe_get t.tails b in
    if not (earlier ev tail) then begin
      (* monotone/equal-time bursts append in O(1) *)
      ev.next <- nil;
      tail.next <- ev;
      Array.unsafe_set t.tails b ev
    end
    else if earlier ev head then begin
      ev.next <- head;
      Array.unsafe_set t.buckets b ev
    end
    else
      (* ev is after head and before tail: the walk terminates early *)
      t.walk_steps <- t.walk_steps + walk_insert head ev 1
  end

(* Rebucket every event under a fresh width estimated from the current
   population: ~3x the mean inter-event spacing, floored so that
   [time / width] stays far below the [idx_of] clamp. Depends only on
   queue state, so replay determinism is unaffected. *)
let resize t nbuckets =
  let chain = ref nil in
  for b = 0 to t.mask do
    let ev = ref t.buckets.(b) in
    while !ev != nil do
      let next = !ev.next in
      !ev.next <- !chain;
      chain := !ev;
      ev := next
    done;
    t.buckets.(b) <- nil
  done;
  let mn = ref infinity and mx = ref neg_infinity in
  let ev = ref !chain in
  while !ev != nil do
    if !ev.time < !mn then mn := !ev.time;
    if !ev.time > !mx then mx := !ev.time;
    ev := !ev.next
  done;
  let spread = !mx -. !mn in
  let width =
    if t.cal_size > 1 && spread > 0. then spread /. float_of_int t.cal_size
    else t.width
  in
  let width = Float.max width (!mx /. 1e12) in
  let width =
    if Float.is_finite width && width > 0. then width else t.width
  in
  t.width <- width;
  if Array.length t.buckets <> nbuckets then begin
    t.buckets <- Array.make nbuckets nil;
    t.tails <- Array.make nbuckets nil;
    t.mask <- nbuckets - 1
  end;
  t.window <- idx_of t t.now;
  t.ins_count <- 0;
  t.walk_steps <- 0;
  let ev = ref !chain in
  while !ev != nil do
    let next = !ev.next in
    cal_insert t !ev;
    ev := next
  done;
  (* the reinsertion walks don't reflect steady-state traffic *)
  t.ins_count <- 0;
  t.walk_steps <- 0

let cal_schedule t ~time fn arg =
  let ev = alloc_event t in
  ev.time <- time;
  ev.seq <- t.seq;
  t.seq <- t.seq + 1;
  ev.fn <- fn;
  ev.arg <- arg;
  cal_insert t ev;
  t.cal_size <- t.cal_size + 1;
  t.ins_count <- t.ins_count + 1;
  if t.cal_size > 2 * (t.mask + 1) && t.mask + 1 < max_buckets then
    resize t (2 * (t.mask + 1))
  else if t.ins_count >= 128 then
    if t.walk_steps > 2 * t.ins_count then resize t (t.mask + 1)
    else begin
      t.ins_count <- 0;
      t.walk_steps <- 0
    end

(* Find the earliest calendar event, leaving its window in [t.found_w]
   without unlinking it — the caller commits (or not, when the event
   lies beyond the run horizon). Top-level recursion, not a local
   closure: [cal_find] runs on every clock advance. Precondition:
   [t.cal_size > 0]. *)
let rec cal_scan t w tries =
  if tries > t.mask then begin
    (* full year empty: jump straight to the earliest head *)
    let best = ref nil in
    for b = 0 to t.mask do
      let h = t.buckets.(b) in
      if h != nil && (!best == nil || earlier h !best) then best := h
    done;
    t.found_w <- idx_of t !best.time;
    !best
  end
  else
    let h = Array.unsafe_get t.buckets (w land t.mask) in
    if h != nil && idx_of t h.time <= w then begin
      t.found_w <- w;
      h
    end
    else cal_scan t (w + 1) (tries + 1)

let cal_find t = cal_scan t t.window 0

(* Unlink [ev], known to be the head of the bucket for window [w]. *)
let cal_remove_head t ev w =
  let b = w land t.mask in
  Array.unsafe_set t.buckets b ev.next;
  t.window <- w;
  t.cal_size <- t.cal_size - 1;
  if t.cal_size * 4 < t.mask + 1 && t.mask + 1 > initial_buckets then
    resize t ((t.mask + 1) / 2)

(* {2 Scheduling} *)

let schedule_obj t ~time fn arg =
  if time = t.now then nl_push t fn arg else cal_schedule t ~time fn arg

let schedule t ~delay run =
  if not (Float.is_finite delay) || delay < 0. then
    invalid_arg (Printf.sprintf "Engine.schedule: bad delay %g" delay);
  if delay = 0. then nl_push t run_thunk (Obj.repr run)
  else cal_schedule t ~time:(t.now +. delay) run_thunk (Obj.repr run)

let schedule_at t ~time run =
  if not (Float.is_finite time) || time < t.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is before now %g" time t.now);
  schedule_obj t ~time run_thunk (Obj.repr run)

let schedule_app (type a) t ~delay (fn : a -> unit) (arg : a) =
  if not (Float.is_finite delay) || delay < 0. then
    invalid_arg (Printf.sprintf "Engine.schedule: bad delay %g" delay);
  let fn : Obj.t -> unit = Obj.magic fn in
  if delay = 0. then nl_push t fn (Obj.repr arg)
  else cal_schedule t ~time:(t.now +. delay) fn (Obj.repr arg)

(* {2 The run loop} *)

let run ?until t =
  t.stopped <- false;
  let horizon = match until with None -> Float.infinity | Some u -> u in
  let continue = ref true in
  while !continue && not t.stopped do
    if t.now > horizon then continue := false
    else begin
      (* calendar events due at exactly [now] precede the lane (smaller
         seq); they sit contiguously at the current window's bucket head *)
      let b = t.window land t.mask in
      let h = Array.unsafe_get t.buckets b in
      if t.cal_size > 0 && h != nil && h.time = t.now then begin
        cal_remove_head t h t.window;
        let fn = h.fn and arg = h.arg in
        recycle t h;
        t.executed <- t.executed + 1;
        fn arg
      end
      else if t.nl_size > 0 then begin
        let cap = Array.length t.nl_fn in
        let i = t.nl_head in
        let fn = Array.unsafe_get t.nl_fn i
        and arg = Array.unsafe_get t.nl_arg i in
        Array.unsafe_set t.nl_fn i ignore_obj;
        (* pointer args must be cleared through the barriered store
           (OCaml 5 deletion barrier); immediates can stay in place *)
        if not (Obj.is_int arg) then Array.unsafe_set t.nl_arg i obj_unit;
        t.nl_head <- (i + 1) land (cap - 1);
        t.nl_size <- t.nl_size - 1;
        t.executed <- t.executed + 1;
        fn arg
      end
      else if t.cal_size > 0 then begin
        let ev = cal_find t in
        if ev.time > horizon then continue := false
        else begin
          cal_remove_head t ev t.found_w;
          t.now <- ev.time;
          let fn = ev.fn and arg = ev.arg in
          recycle t ev;
          t.executed <- t.executed + 1;
          fn arg
        end
      end
      else continue := false
    end
  done;
  (* A run that drained the queue or hit the horizon parks the clock at
     the horizon; a [stop]ped run keeps [now] at the last executed
     event so the caller sees how far it actually got. *)
  match until with
  | Some u when (not t.stopped) && t.now < u -> t.now <- u
  | Some _ | None -> ()
