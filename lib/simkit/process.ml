exception Process_failure of exn

(* A parked process, reified as a record instead of a resume closure:
   the continuation rides in [w_k], the wake value in [w_v], and
   {!wake} dispatches both through a single static trampoline. Parking
   this way allocates one record; the closure-based {!suspend} path
   allocates a register closure, a guard ref, and two resume closures
   per park. *)
type 'a waiter = {
  w_eng : Engine.t;
  mutable w_fired : bool;
  mutable w_k : Obj.t;  (* the parked continuation *)
  mutable w_v : Obj.t;  (* the value passed to {!wake} *)
}

type _ Effect.t +=
  | Sleep : float -> unit Effect.t
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t
  | Suspend_with : ('ctx -> 'a waiter -> unit) * 'ctx -> 'a Effect.t
  | Self_engine : Engine.t Effect.t

(* Shared dispatch trampolines: the continuation itself rides as the
   event argument ({!Engine.schedule_app}), so waking a process
   allocates no per-event closure. *)
let resume_sleep : (unit, unit) Effect.Deep.continuation -> unit =
 fun k -> Effect.Deep.continue k ()

let obj_unit = Obj.repr ()

let wake_tramp (w : Obj.t waiter) =
  let k : (Obj.t, unit) Effect.Deep.continuation = Obj.obj w.w_k in
  w.w_k <- obj_unit;
  Effect.Deep.continue k w.w_v

let wake (type a) (w : a waiter) (v : a) =
  if w.w_fired then invalid_arg "Process: double resume";
  w.w_fired <- true;
  w.w_v <- Obj.repr v;
  Engine.schedule_app w.w_eng ~delay:0. wake_tramp (Obj.magic w : Obj.t waiter)

let spawn eng f =
  let open Effect.Deep in
  let handler =
    { retc = (fun () -> ());
      exnc = (fun e -> raise (Process_failure e));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sleep d ->
            Some
              (fun (k : (a, unit) continuation) ->
                Engine.schedule_app eng ~delay:d resume_sleep k)
          | Suspend register ->
            Some
              (fun (k : (a, unit) continuation) ->
                let resumed = ref false in
                let kont v = continue k v in
                let resume v =
                  if !resumed then invalid_arg "Process: double resume";
                  resumed := true;
                  Engine.schedule_app eng ~delay:0. kont v
                in
                register resume)
          | Suspend_with (register, ctx) ->
            Some
              (fun (k : (a, unit) continuation) ->
                register ctx
                  { w_eng = eng;
                    w_fired = false;
                    w_k = Obj.repr k;
                    w_v = obj_unit })
          | Self_engine -> Some (fun (k : (a, unit) continuation) -> continue k eng)
          | _ -> None) }
  in
  Engine.schedule eng ~delay:0. (fun () -> match_with f () handler)

let sleep d = Effect.perform (Sleep d)
let suspend register = Effect.perform (Suspend register)
let suspend_v register = Effect.perform (Suspend register)
let suspend_with register ctx = Effect.perform (Suspend_with (register, ctx))
let engine () = Effect.perform Self_engine
let now () = Engine.now (engine ())
