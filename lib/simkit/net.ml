type endpoint = int

type latency =
  | Fixed of float
  | Uniform_lat of float * float
  | Exp_lat of float

type t = {
  engine : Engine.t;
  rng : Rng.t;
  default_latency : latency;
  mutable names : string array;
  mutable follows : int array;  (* endpoint -> endpoint whose side it shares *)
  mutable count : int;
  links : (int * int, latency) Hashtbl.t;
  (* fault state *)
  mutable sides : (int, int) Hashtbl.t option;  (* endpoint -> partition group *)
  mutable oneway : (int * int) list;            (* blocked (src, dst) pairs *)
  mutable drop_p : float;
  mutable dup_p : float;
  mutable extra_delay : float;
  mutable reorder_p : float;
  mutable reorder_window : float;
  (* counters *)
  mutable n_sent : int;
  mutable n_delivered : int;
  mutable n_dropped : int;
  mutable n_duplicated : int;
  (* Precomputed hop delay for the quiet state: no per-link overrides,
     no partition/one-way blocks, every probabilistic knob at zero and a
     [Fixed] default latency. [-1.] whenever any of that is untrue.
     Lets [send] skip the link lookup (a tuple + option allocation per
     message) and the whole fault-guard chain on the hot path. *)
  mutable quiet_fixed : float;
}

let refresh_quiet t =
  t.quiet_fixed <-
    (match t.default_latency with
     | Fixed d
       when Hashtbl.length t.links = 0
            && t.sides = None && t.oneway = []
            && t.drop_p = 0. && t.dup_p = 0. && t.reorder_p = 0. ->
       d +. t.extra_delay
     | Fixed _ | Uniform_lat _ | Exp_lat _ -> -1.)

let create ?(default_latency = Fixed 0.) ~seed engine =
  let t =
    { engine;
      rng = Rng.create ~seed;
      default_latency;
      names = Array.make 8 "";
      follows = Array.make 8 0;
      count = 0;
      links = Hashtbl.create 16;
      sides = None;
      oneway = [];
      drop_p = 0.;
      dup_p = 0.;
      extra_delay = 0.;
      reorder_p = 0.;
      reorder_window = 0.;
      n_sent = 0;
      n_delivered = 0;
      n_dropped = 0;
      n_duplicated = 0;
      quiet_fixed = -1. }
  in
  refresh_quiet t;
  t

let endpoint ?follow t name =
  if t.count = Array.length t.names then begin
    let grow a fill =
      let b = Array.make (2 * Array.length a) fill in
      Array.blit a 0 b 0 (Array.length a);
      b
    in
    t.names <- grow t.names "";
    t.follows <- grow t.follows 0
  end;
  let e = t.count in
  t.count <- e + 1;
  t.names.(e) <- name;
  (match follow with
   | Some f when f < 0 || f >= e ->
     invalid_arg (Printf.sprintf "Net.endpoint: cannot follow %d" f)
   | Some f -> t.follows.(e) <- f
   | None -> t.follows.(e) <- e);
  e

let check t e op =
  if e < 0 || e >= t.count then
    invalid_arg (Printf.sprintf "Net.%s: unknown endpoint %d" op e)

let name t e =
  check t e "name";
  t.names.(e)

let set_link_latency t ~src ~dst lat =
  check t src "set_link_latency";
  check t dst "set_link_latency";
  Hashtbl.replace t.links (src, dst) lat;
  refresh_quiet t

(* A follower chain is one hop deep by construction ([endpoint] only
   lets a fresh endpoint follow an existing one, and servers follow
   themselves), but resolving iteratively keeps this robust. *)
let resolve t e =
  let rec go e = if t.follows.(e) = e then e else go t.follows.(e) in
  go e

let partition t groups =
  let sides = Hashtbl.create 16 in
  List.iteri
    (fun side members ->
      List.iter
        (fun e ->
          check t e "partition";
          Hashtbl.replace sides e side)
        members)
    groups;
  t.sides <- (if Hashtbl.length sides = 0 then None else Some sides);
  refresh_quiet t

let block_oneway t ~src ~dst =
  check t src "block_oneway";
  check t dst "block_oneway";
  t.oneway <- (resolve t src, resolve t dst) :: t.oneway;
  refresh_quiet t

let heal t =
  t.sides <- None;
  t.oneway <- [];
  refresh_quiet t

let check_p op p =
  if not (p >= 0. && p <= 1.) then
    invalid_arg (Printf.sprintf "Net.%s: probability %g outside [0,1]" op p)

let set_drop t p = check_p "set_drop" p; t.drop_p <- p; refresh_quiet t

let set_duplicate t p =
  check_p "set_duplicate" p;
  t.dup_p <- p;
  refresh_quiet t

let set_extra_delay t d =
  if not (d >= 0.) then invalid_arg "Net.set_extra_delay: negative delay";
  t.extra_delay <- d;
  refresh_quiet t

let set_reorder t ~p ~window =
  check_p "set_reorder" p;
  if not (window >= 0.) then invalid_arg "Net.set_reorder: negative window";
  t.reorder_p <- p;
  t.reorder_window <- window;
  refresh_quiet t

let unreachable t src dst =
  let s = resolve t src and d = resolve t dst in
  (match t.sides with
   | None -> false
   | Some sides -> (
     match (Hashtbl.find_opt sides s, Hashtbl.find_opt sides d) with
     | Some a, Some b -> a <> b
     | _ -> false))
  || (t.oneway <> [] && List.mem (s, d) t.oneway)

(* Each guard below tests its knob before touching the RNG, so a
   network with every fault at rest consumes no randomness at all —
   the fault-free schedule is bit-identical to bare Engine.schedule. *)
let sample_latency t lat =
  match lat with
  | Fixed d -> d
  | Uniform_lat (lo, hi) -> Rng.uniform t.rng ~lo ~hi
  | Exp_lat mean -> Rng.exponential t.rng ~mean

let hop_delay t ~src ~dst =
  let lat =
    (* the tuple-keyed lookup allocates; skip it while no link has an
       override, which is every run that never calls set_link_latency *)
    if Hashtbl.length t.links = 0 then t.default_latency
    else
      match Hashtbl.find_opt t.links (src, dst) with
      | Some lat -> lat
      | None -> t.default_latency
  in
  let jitter =
    if t.reorder_p > 0. && Rng.float t.rng < t.reorder_p then
      Rng.uniform t.rng ~lo:0. ~hi:t.reorder_window
    else 0.
  in
  sample_latency t lat +. t.extra_delay +. jitter

let send t ~src ~dst deliver =
  check t src "send";
  check t dst "send";
  t.n_sent <- t.n_sent + 1;
  if t.quiet_fixed >= 0. then begin
    (* quiet state: same delay the general path computes (Fixed default
       plus extra_delay, zero jitter), no RNG draws, no lookups *)
    t.n_delivered <- t.n_delivered + 1;
    Engine.schedule t.engine ~delay:t.quiet_fixed deliver
  end
  else if unreachable t src dst then t.n_dropped <- t.n_dropped + 1
  else if t.drop_p > 0. && Rng.float t.rng < t.drop_p then
    t.n_dropped <- t.n_dropped + 1
  else begin
    Engine.schedule t.engine ~delay:(hop_delay t ~src ~dst) deliver;
    t.n_delivered <- t.n_delivered + 1;
    if t.dup_p > 0. && Rng.float t.rng < t.dup_p then begin
      t.n_duplicated <- t.n_duplicated + 1;
      t.n_delivered <- t.n_delivered + 1;
      Engine.schedule t.engine ~delay:(hop_delay t ~src ~dst) deliver
    end
  end

let sent t = t.n_sent
let delivered t = t.n_delivered
let dropped t = t.n_dropped
let duplicated t = t.n_duplicated
