(** Discrete-event simulation engine.

    An engine owns a virtual clock and a pending-event queue. Events are
    executed in nondecreasing timestamp order; events with equal timestamps
    run in scheduling (FIFO) order, which makes every simulation
    deterministic for a fixed seed.

    Internally the queue is a calendar queue for strictly-future events
    plus a dedicated FIFO ring for zero-delay events, and event records
    are recycled through a free list, so the steady-state
    schedule/dispatch path performs no allocation. None of this is
    observable: the dispatch order is exactly the (time, scheduling
    order) total order stated above. *)

type t

val create : unit -> t

(** [now t] is the current virtual time, in seconds. *)
val now : t -> float

(** [schedule t ~delay f] runs [f] at time [now t +. delay].
    @raise Invalid_argument if [delay] is negative or not finite. *)
val schedule : t -> delay:float -> (unit -> unit) -> unit

(** [schedule_at t ~time f] runs [f] at absolute time [time].
    @raise Invalid_argument if [time] is in the past. *)
val schedule_at : t -> time:float -> (unit -> unit) -> unit

(** [schedule_app t ~delay f x] runs [f x] at time [now t +. delay] —
    same dispatch order as [schedule], without allocating a closure to
    capture [x]. Hot paths that would otherwise build
    [fun () -> f x] per event (process resume, message delivery) use
    this to keep the event path allocation-free.
    @raise Invalid_argument if [delay] is negative or not finite. *)
val schedule_app : t -> delay:float -> ('a -> unit) -> 'a -> unit

(** [run t] executes events until the queue is empty or [stop] is called.
    [until] bounds the virtual clock: events scheduled strictly after
    [until] remain pending. When the run drains the queue or reaches the
    horizon, the clock is left at [until]; when it exits via [stop], the
    clock stays at the time of the last executed event. *)
val run : ?until:float -> t -> unit

(** [stop t] makes [run] return after the currently executing event. *)
val stop : t -> unit

(** Number of events executed since [create]. *)
val executed_events : t -> int

(** Number of events currently pending. *)
val pending_events : t -> int
