(* splitmix64, computed on native ints.

   The state is one 64-bit word held as two 32-bit limbs in native
   (63-bit) ints, and the mix pipeline is written limb-wise, so drawing
   consumes no allocation at all — the previous [int64]-typed
   implementation boxed every intermediate (~8 boxes per draw), which
   made the RNG the single hottest allocation site in fault-injected
   runs. The sequence is bit-for-bit identical to textbook splitmix64
   (and to the boxed implementation this replaced); [test_simkit]
   pins it against an independent [Int64] reference.

   Limb arithmetic notes: native-int multiplication wraps modulo 2^63,
   and 2^32 divides 2^63, so [(a * b) land 0xFFFFFFFF] is exactly
   [a * b mod 2^32] even when the product overflows. The upper half of
   a 32x32 product is recovered from 16-bit sub-limbs, where every
   intermediate stays below 2^49. *)

type t = {
  mutable hi : int;  (* state bits 63..32 *)
  mutable lo : int;  (* state bits 31..0 *)
  (* mix output scratch (valid after [step]); avoids returning a pair *)
  mutable out_hi : int;
  mutable out_lo : int;
}

let mask32 = 0xFFFFFFFF

(* golden gamma 0x9E3779B97F4A7C15 *)
let gamma_hi = 0x9E3779B9
let gamma_lo = 0x7F4A7C15

(* mix multipliers 0xBF58476D1CE4E5B9 and 0x94D049BB133111EB *)
let c1_hi = 0xBF58476D
let c1_lo = 0x1CE4E5B9
let c2_hi = 0x94D049BB
let c2_lo = 0x133111EB

let create ~seed =
  { hi = Int64.to_int (Int64.shift_right_logical seed 32) land mask32;
    lo = Int64.to_int (Int64.logand seed 0xFFFFFFFFL);
    out_hi = 0;
    out_lo = 0 }

(* Advance the state by gamma and run the mix; the 64-bit result lands
   in [out_hi]/[out_lo]. *)
let step t =
  let lo = t.lo + gamma_lo in
  let hi = (t.hi + gamma_hi + (lo lsr 32)) land mask32 in
  let lo = lo land mask32 in
  t.hi <- hi;
  t.lo <- lo;
  (* z ^= z >>> 30; z *= c1 *)
  let zhi = hi lxor (hi lsr 30) in
  let zlo = lo lxor (((hi lsl 2) lor (lo lsr 30)) land mask32) in
  let t0 = (zlo land 0xFFFF) * c1_lo in
  let t1 = (zlo lsr 16) * c1_lo in
  let upper = (t1 + (t0 lsr 16)) lsr 16 in
  let plo = (zlo * c1_lo) land mask32 in
  let phi = (upper + (zlo * c1_hi) + (zhi * c1_lo)) land mask32 in
  (* z ^= z >>> 27; z *= c2 *)
  let zhi = phi lxor (phi lsr 27) in
  let zlo = plo lxor (((phi lsl 5) lor (plo lsr 27)) land mask32) in
  let t0 = (zlo land 0xFFFF) * c2_lo in
  let t1 = (zlo lsr 16) * c2_lo in
  let upper = (t1 + (t0 lsr 16)) lsr 16 in
  let plo = (zlo * c2_lo) land mask32 in
  let phi = (upper + (zlo * c2_hi) + (zhi * c2_lo)) land mask32 in
  (* z ^= z >>> 31 *)
  t.out_hi <- phi lxor (phi lsr 31);
  t.out_lo <- plo lxor (((phi lsl 1) lor (plo lsr 31)) land mask32)

let next t =
  step t;
  Int64.logor
    (Int64.shift_left (Int64.of_int t.out_hi) 32)
    (Int64.of_int t.out_lo)

let split t =
  step t;
  { hi = t.out_hi; lo = t.out_lo; out_hi = 0; out_lo = 0 }

let float t =
  (* 53 high-quality bits -> [0,1) *)
  step t;
  let bits = (t.out_hi lsl 21) lor (t.out_lo lsr 11) in
  float_of_int bits /. 9007199254740992.

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* Rejection sampling: a plain modulo over a non-power-of-two bound
     maps the draw range unevenly onto [0, bound), biasing small
     residues. Draw 62 bits and retry the (rare) draws at or above the
     largest exact multiple of [bound]. Power-of-two bounds divide 2^62
     exactly, so they never reject. *)
  if bound land (bound - 1) = 0 then begin
    step t;
    ((t.out_hi lsl 30) lor (t.out_lo lsr 2)) land (bound - 1)
  end
  else begin
    (* max_int = 2^62 - 1 and bound does not divide 2^62, so
       [max_int / bound] is exactly [2^62 / bound]. *)
    let limit = bound * (max_int / bound) in
    let rec draw () =
      step t;
      let v = (t.out_hi lsl 30) lor (t.out_lo lsr 2) in
      if v < limit then v mod bound else draw ()
    in
    draw ()
  end

let exponential t ~mean =
  let u = float t in
  -. mean *. log (1. -. u)

let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
