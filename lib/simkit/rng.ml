type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = seed }

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = next t }

let float t =
  (* 53 high-quality bits -> [0,1) *)
  let bits = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits /. 9007199254740992.

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* Rejection sampling: [Int64.rem] over a non-power-of-two bound maps
     the draw range unevenly onto [0, bound), biasing small residues.
     Draw 62 bits and retry the (rare) draws at or above the largest
     exact multiple of [bound]. *)
  let b = Int64.of_int bound in
  let range = 0x4000000000000000L (* 2^62 > max_int, so any bound fits *) in
  let limit = Int64.mul b (Int64.div range b) in
  let rec draw () =
    let v = Int64.shift_right_logical (next t) 2 in
    if v < limit then Int64.to_int (Int64.rem v b) else draw ()
  in
  draw ()

let exponential t ~mean =
  let u = float t in
  -. mean *. log (1. -. u)

let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
