(** A fault-injectable message network.

    [Net] sits between protocol code and {!Engine.schedule}: every
    message names a source and destination {!endpoint}, and delivery is
    subject to the network's current fault state — symmetric partitions,
    one-way blocks, probabilistic drop, added delay, duplication, and
    bounded reorder windows. With every fault knob at rest and a [Fixed]
    latency, [send] degenerates to exactly one [Engine.schedule] call
    and consumes no randomness, so a fault-free run is event-for-event
    identical to scheduling directly.

    Endpoints are cheap integers. A client endpoint may [follow] a
    server endpoint, meaning it sits on the same side of any partition
    as that server (a client co-located with, or connected through, its
    home server's network segment). Partitions and one-way blocks are
    evaluated against the followed endpoint.

    All randomness comes from the seed given to [create]; identical
    seeds and identical call sequences reproduce identical schedules. *)

type t

type endpoint = int

(** One-way link latency model. *)
type latency =
  | Fixed of float                (** constant seconds; draws no randomness *)
  | Uniform_lat of float * float  (** uniform in [lo, hi) seconds *)
  | Exp_lat of float              (** exponential with the given mean *)

val create : ?default_latency:latency -> seed:int64 -> Engine.t -> t

(** [endpoint t name] registers a new endpoint. [follow] makes it share
    the partition side of an existing endpoint (re-evaluated at every
    send, so re-partitioning moves followers with their server). *)
val endpoint : ?follow:endpoint -> t -> string -> endpoint

val name : t -> endpoint -> string

(** Override the latency model of the directed link [src -> dst]. *)
val set_link_latency : t -> src:endpoint -> dst:endpoint -> latency -> unit

(** [send t ~src ~dst deliver] delivers [deliver] at the destination
    after the link's sampled latency, unless the current fault state
    drops the message. Never raises; dropped messages just vanish
    (counted in {!dropped}). *)
val send : t -> src:endpoint -> dst:endpoint -> (unit -> unit) -> unit

(** {2 Fault state}

    All mutators take effect for messages sent after the call;
    messages already in flight are not recalled. *)

(** [partition t groups] installs a symmetric partition: endpoints in
    different groups cannot exchange messages. Endpoints not named in
    any group can reach (and be reached by) everyone — so a partial
    partition only needs to name the isolated minority. Followers are
    resolved through the endpoint they follow. Replaces any previous
    partition. *)
val partition : t -> endpoint list list -> unit

(** [block_oneway t ~src ~dst] drops messages from [src]'s side to
    [dst]'s side only; the reverse direction still delivers.
    Cumulative with other one-way blocks and with [partition]. *)
val block_oneway : t -> src:endpoint -> dst:endpoint -> unit

(** Remove the partition and all one-way blocks. Probabilistic faults
    (drop/dup/delay/reorder) are separate knobs and survive [heal]. *)
val heal : t -> unit

(** P(message silently lost). *)
val set_drop : t -> float -> unit

(** P(second copy delivered). *)
val set_duplicate : t -> float -> unit

(** Seconds added to every hop. *)
val set_extra_delay : t -> float -> unit

(** [set_reorder t ~p ~window] delays each message, with probability
    [p], by an extra uniform [0, window) seconds — enough to overtake
    later traffic on the same link. NOTE: the coordination protocol
    assumes FIFO links for its read-your-own-writes routing; enabling
    reorder deliberately violates that assumption (see DESIGN.md §7). *)
val set_reorder : t -> p:float -> window:float -> unit

(** {2 Counters} *)

val sent : t -> int

(** Messages scheduled for delivery, duplicates included. *)
val delivered : t -> int

(** Messages lost to a partition, a one-way block, or drop probability. *)
val dropped : t -> int

val duplicated : t -> int
