(** Online resharding: change a {!Shard_router} deployment's shard
    count while client traffic flows.

    Only the bounded-load remainder moves: {!Shard_router.prepare_reshard}
    replays the assigned directory keys over the new ring and the
    controller migrates exactly the keys whose owner changed, each
    through a prepare / copy / flip / retire state machine (DESIGN.md
    §10). While a key migrates, routed writes to it park at the router;
    once the copy freezes, reads park too, the old owner's watch and
    lease state for the directory is revoked, and the placement flips —
    parked ops resume against the new owner. Stub accounting stays
    exact throughout, so {!Shard_router.logical_population} is an
    invariant of the procedure.

    On a simulated deployment ({!Shard_router.start}) the controller
    must run inside a simulation process — its per-shard sessions block
    on RPCs and it sleeps [drain] between the write barrier and the
    copy. On an immediate-mode deployment ({!Shard_router.local}) pass
    [~drain:0.] and it runs synchronously. *)

type stats = {
  mutable shards_before : int;
  mutable shards_after : int;
  mutable keys_total : int;      (** keys assigned when the plan was cut *)
  mutable keys_migrated : int;   (** the bounded-load remainder *)
  mutable batches : int;
  mutable znodes_copied : int;   (** fresh creates on the new owners *)
  mutable znodes_retired : int;  (** deletes on the old owners *)
  mutable stubs_promoted : int;  (** dst stub became the primary *)
  mutable stubs_demoted : int;   (** src primary became a stub *)
  mutable reconciled : int;      (** straggler fixes after freeze *)
  mutable ephemerals_flattened : int;
      (** ephemeral children copied as persistent (logged as orphan
          notes for Fsck-style review) *)
  mutable errors : int;          (** unexpected per-node failures (also
                                     noted via [note_failure]) *)
}

val fresh_stats : unit -> stats
val pp : Format.formatter -> stats -> unit

(** [run ?drain ?batch t ~to_shards ()] moves the deployment to
    [to_shards] shards, booting new backends as needed (a merge leaves
    the drained backends in place, empty). [drain] (default 0.02 sim
    seconds) is slept once per batch after the write barrier so writes
    issued before it commit on the old owner; [batch] (default 64)
    bounds how many keys share one drain — keys still migrate one at a
    time.
    @raise Invalid_argument if [to_shards < 1] or a migration is open. *)
val run :
  ?drain:float -> ?batch:int -> Shard_router.t -> to_shards:int -> unit ->
  stats

(** {!run} that insists the count grows. *)
val split :
  ?drain:float -> ?batch:int -> Shard_router.t -> to_shards:int -> unit ->
  stats

(** {!run} that insists the count shrinks. *)
val merge :
  ?drain:float -> ?batch:int -> Shard_router.t -> to_shards:int -> unit ->
  stats
