let split p =
  if p = "/" || p = "" then []
  else String.split_on_char '/' (String.sub p 1 (String.length p - 1))

(* Single char scan, no intermediate component list: [validate] sits on
   every create/delete path of every replica, so it must not allocate.
   A component is the span between slashes; reject empty ones (double
   slash), ["."] and [".."]. *)
let validate p =
  let len = String.length p in
  if len = 0 || p.[0] <> '/' then Error Zerror.ZBADARGUMENTS
  else if len = 1 then Ok ()
  else if p.[len - 1] = '/' then Error Zerror.ZBADARGUMENTS
  else begin
    let bad = ref false in
    let start = ref 1 in
    (* component [start..i-1] ends at each '/' and at the end of string *)
    for i = 1 to len do
      if i = len || p.[i] = '/' then begin
        let n = i - !start in
        if
          n = 0
          || (n = 1 && p.[!start] = '.')
          || (n = 2 && p.[!start] = '.' && p.[!start + 1] = '.')
        then bad := true;
        start := i + 1
      end
    done;
    if !bad then Error Zerror.ZBADARGUMENTS else Ok ()
  end

let join = function
  | [] -> "/"
  | comps -> "/" ^ String.concat "/" comps

let parent p =
  match String.rindex_opt p '/' with
  | None | Some 0 -> "/"
  | Some i -> String.sub p 0 i

let basename p =
  match String.rindex_opt p '/' with
  | None -> p
  | Some i -> String.sub p (i + 1) (String.length p - i - 1)

let concat dir name = if dir = "/" then "/" ^ name else dir ^ "/" ^ name

let depth p = List.length (split p)

let sequential_name base counter = Printf.sprintf "%s%010d" base counter
