(** Consistent hashing ring with virtual nodes (the paper's §VII future
    work: add/remove back-end storages while keeping the amount of data to
    relocate bounded to ≈ 1/(N+1) of the keys). *)

type t

(** [create ~replicas node_ids] builds a ring with [replicas] virtual
    points per node. @raise Invalid_argument on empty [node_ids] or
    [replicas < 1]. *)
val create : ?replicas:int -> int list -> t

val nodes : t -> int list

(** [lookup t key] — the node owning [key] (first virtual point clockwise
    of MD5(key)). *)
val lookup : t -> string -> int

(** [add_node t id] / [remove_node t id] return a new ring; [t] is
    unchanged. @raise Invalid_argument if [id] is already present /
    missing, or if removal would empty the ring. *)
val add_node : t -> int -> t

val remove_node : t -> int -> t

(** Fraction of [keys] whose owner differs between [before] and [after]. *)
val relocated : before:t -> after:t -> string list -> float
