let ( let* ) = Result.bind

let ensure_node (handle : Zk_client.handle) path =
  match handle.Zk_client.create path ~data:"" with
  | Ok _ | Error Zerror.ZNODEEXISTS -> Ok ()
  | Error _ as e -> e

(* One guarded wait round: register a fire-once watch via [register],
   evaluate [check], and if it says retry, park until the watch fires.
   Registering *before* checking closes the lost-wakeup race (the event
   may fire between check and park; [fired] catches it). *)
let guarded_wait ~register ~check =
  let fired = ref false in
  let resume_ref = ref None in
  register (fun (_ : Ztree.watch_event) ->
      match !resume_ref with
      | Some resume -> resume ()
      | None -> fired := true);
  let* verdict = check () in
  match verdict with
  | `Done -> Ok `Done
  | `Retry ->
    if not !fired then
      Simkit.Process.suspend (fun resume -> resume_ref := Some resume);
    Ok `Retry

module Lock = struct
  type t = {
    handle : Zk_client.handle;
    member : string;
  }

  let member_path t = t.member

  let members (handle : Zk_client.handle) path =
    Result.map (List.sort String.compare) (handle.Zk_client.children path)

  let make_member (handle : Zk_client.handle) path =
    let* () = ensure_node handle path in
    handle.Zk_client.create ~ephemeral:true ~sequential:true
      (Zpath.concat path "lock-") ~data:""

  (* `Held, or `Wait p where p is the predecessor member to watch. *)
  let holds_lock (handle : Zk_client.handle) path member =
    let* names = members handle path in
    let mine = Zpath.basename member in
    let predecessor =
      List.fold_left (fun best name -> if name < mine then Some name else best) None names
    in
    if not (List.mem mine names) then Error Zerror.ZSESSIONEXPIRED
    else
      match predecessor with
      | None -> Ok `Held
      | Some p -> Ok (`Wait (Zpath.concat path p))

  let try_acquire handle ~path =
    let* member = make_member handle path in
    let* status = holds_lock handle path member in
    match status with
    | `Held -> Ok (Some { handle; member })
    | `Wait _ ->
      let* () = handle.Zk_client.delete member in
      Ok None

  let acquire handle ~path =
    let* member = make_member handle path in
    let rec wait () =
      let* status = holds_lock handle path member in
      match status with
      | `Held -> Ok { handle; member }
      | `Wait predecessor ->
        let* round =
          guarded_wait
            ~register:(fun cb -> handle.Zk_client.watch_data predecessor cb)
            ~check:(fun () ->
              (* if the predecessor vanished between listing and watching,
                 don't park — re-list instead *)
              match handle.Zk_client.exists predecessor with
              | Ok None -> Ok `Done
              | Ok (Some _) -> Ok `Retry
              | Error _ as e -> e)
        in
        (match round with `Done | `Retry -> wait ())
    in
    wait ()

  let release t = t.handle.Zk_client.delete t.member
end

module Counter = struct
  let decode data = match int_of_string_opt data with Some v -> v | None -> 0

  let read (handle : Zk_client.handle) ~path =
    match handle.Zk_client.get path with
    | Ok (data, _) -> Ok (decode data)
    | Error Zerror.ZNONODE -> Ok 0
    | Error e -> Error e

  let rec increment (handle : Zk_client.handle) ~path ?(by = 1) () =
    match handle.Zk_client.get path with
    | Error Zerror.ZNONODE ->
      (match handle.Zk_client.create path ~data:(string_of_int by) with
       | Ok _ -> Ok by
       | Error Zerror.ZNODEEXISTS -> increment handle ~path ~by ()
       | Error e -> Error e)
    | Error e -> Error e
    | Ok (data, stat) ->
      let value = decode data + by in
      (match
         handle.Zk_client.set ~version:stat.Ztree.version path
           ~data:(string_of_int value)
       with
      | Ok () -> Ok value
      | Error Zerror.ZBADVERSION -> increment handle ~path ~by ()
      | Error e -> Error e)
end

module Double_barrier = struct
  let wait_for_children handle ~path ~condition =
    let rec go () =
      let* round =
        guarded_wait
          ~register:(fun cb -> handle.Zk_client.watch_children path cb)
          ~check:(fun () ->
            let* names = handle.Zk_client.children path in
            if condition names then Ok `Done else Ok `Retry)
      in
      match round with `Done -> Ok () | `Retry -> go ()
    in
    go ()

  let enter (handle : Zk_client.handle) ~path ~parties =
    let* () = ensure_node handle path in
    let* member =
      handle.Zk_client.create ~ephemeral:true ~sequential:true
        (Zpath.concat path "p-") ~data:""
    in
    let* () =
      wait_for_children handle ~path ~condition:(fun names ->
          List.length names >= parties)
    in
    Ok member

  let leave (handle : Zk_client.handle) ~path ~member =
    let* () =
      match handle.Zk_client.delete member with
      | Ok () | Error Zerror.ZNONODE -> Ok ()
      | Error _ as e -> e
    in
    wait_for_children handle ~path ~condition:(fun names -> names = [])
end
