(* Shard router: the full client surface over N independent ensembles.
   See the .mli for the routing invariant (parent-directory co-location)
   and the cross-shard atomicity boundary; DESIGN.md §sharding for the
   honest list of caveats. *)

type stats = {
  mutable cross_shard_multis : int;
  mutable cross_shard_deletes : int;
  mutable stub_creates : int;
  mutable stub_deletes : int;
  mutable rollbacks : int;
  mutable rollback_failures : int;
  mutable orphan_notes : string list;
}

let fresh_stats () =
  { cross_shard_multis = 0;
    cross_shard_deletes = 0;
    stub_creates = 0;
    stub_deletes = 0;
    rollbacks = 0;
    rollback_failures = 0;
    orphan_notes = [] }

let live_stubs s = s.stub_creates - s.stub_deletes

let note stats msg =
  stats.rollback_failures <- stats.rollback_failures + 1;
  stats.orphan_notes <- msg :: stats.orphan_notes

(* {2 Placement — consistent hashing with bounded loads}

   The ring alone cannot balance a small key population: a namespace
   with ~100 populated directories hashed onto 4 shards leaves the hot
   shard with ~28% of the keys (binomial spread), and read throughput
   tracks the hottest shard. So each key's shard is the ring's choice
   {e unless} that shard already holds [ceil ((1+eps) * keys / shards)]
   keys, in which case the next shard (ascending id, wrapping) under
   the cap takes it. With [eps = 0] (the default) per-shard key counts
   never differ by more than one. Assignments are memoized, so a key's
   shard is stable for the lifetime of the placement — the table models
   the durable directory-placement map a real deployment would keep in
   a (small, cacheable) coordination namespace, IndexFS-style. *)

type placement = {
  p_ring : Consistent_hash.t;
  p_shards : int;
  eps : float;
  assigned : (string, int) Hashtbl.t; (* directory key -> shard *)
  loads : int array;                  (* keys per shard *)
  mutable total : int;
}

let make_ring ~shards =
  if shards < 1 then invalid_arg "Shard_router: shards < 1";
  Consistent_hash.create (List.init shards Fun.id)

let make_placement ?(eps = 0.) ~shards () =
  if eps < 0. then invalid_arg "Shard_router.make_placement: eps < 0";
  { p_ring = make_ring ~shards;
    p_shards = shards;
    eps;
    assigned = Hashtbl.create 256;
    loads = Array.make shards 0;
    total = 0 }

let placement_ring p = p.p_ring

let place p key =
  match Hashtbl.find_opt p.assigned key with
  | Some s -> s
  | None ->
    let cap =
      max
        ((p.total / p.p_shards) + 1)
        (int_of_float
           (ceil
              ((1. +. p.eps) *. float_of_int (p.total + 1)
              /. float_of_int p.p_shards)))
    in
    let pref = Consistent_hash.lookup p.p_ring key in
    let rec pick j =
      (* some shard is under cap: min load <= total/shards < cap *)
      if j >= p.p_shards then pref
      else
        let s = (pref + j) mod p.p_shards in
        if p.loads.(s) < cap then s else pick (j + 1)
    in
    let s = pick 0 in
    Hashtbl.replace p.assigned key s;
    p.loads.(s) <- p.loads.(s) + 1;
    p.total <- p.total + 1;
    s

(* {2 The routed handle} *)

(* [home p]: the shard holding p's primary (placed by the parent, so
   siblings co-locate). [kids p]: the shard holding p's children
   (placed by p itself). For "/" both reduce to [place pl "/"]. *)
let home_of pl path =
  place pl (if path = "/" then "/" else Zpath.parent path)

let kids_of pl path = place pl path

let wrap ?(stats = fresh_stats ()) ~placement (h : Zk_client.handle array) =
  let home p = home_of placement p and kids p = kids_of placement p in
  let ( let* ) = Result.bind in
  (* Make [path] exist on shard [s], mirroring primaries into empty
     stubs top-down. Refuses to materialize anything the primary shard
     does not have, so a genuine ZNONODE stays ZNONODE. *)
  let rec ensure_on s path =
    if path = "/" then Ok ()
    else
      match h.(s).Zk_client.exists path with
      | Error _ as e -> e |> Result.map ignore
      | Ok (Some _) -> Ok ()
      | Ok None -> (
        match h.(home path).Zk_client.exists path with
        | Error _ as e -> e |> Result.map ignore
        | Ok None -> Error Zerror.ZNONODE
        | Ok (Some st) ->
          if st.Ztree.ephemeral_owner <> 0L then
            (* ephemerals cannot have children; never stub one *)
            Error Zerror.ZNOCHILDRENFOREPHEMERALS
          else
            let* () = ensure_on s (Zpath.parent path) in
            (match h.(s).Zk_client.create path ~data:"" with
             | Ok _ ->
               stats.stub_creates <- stats.stub_creates + 1;
               Ok ()
             | Error Zerror.ZNODEEXISTS -> Ok ()
             | Error _ as e -> e |> Result.map ignore))
  in
  let create ?ephemeral ?sequential path ~data =
    let s = home path in
    match h.(s).Zk_client.create ?ephemeral ?sequential path ~data with
    | Error Zerror.ZNONODE when path <> "/" && Zpath.parent path <> "/" -> (
      (* the parent may be a primary elsewhere with no stub here yet *)
      match ensure_on s (Zpath.parent path) with
      | Ok () -> h.(s).Zk_client.create ?ephemeral ?sequential path ~data
      | Error e -> Error e)
    | r -> r
  in
  let delete ?version path =
    let s = home path and k = kids path in
    if s = k then h.(s).Zk_client.delete ?version path
    else
      (* cheap read probe: most nodes (all files) never grow a stub *)
      match h.(k).Zk_client.exists path with
      | Error e -> Error e
      | Ok None -> h.(s).Zk_client.delete ?version path
      | Ok (Some _) -> (
        stats.cross_shard_deletes <- stats.cross_shard_deletes + 1;
        (* ordered two-phase: the stub holds the children, so deleting
           it first preserves ZNOTEMPTY semantics exactly *)
        match h.(k).Zk_client.delete path with
        | Error Zerror.ZNONODE -> h.(s).Zk_client.delete ?version path
        | Error e -> Error e
        | Ok () -> (
          stats.stub_deletes <- stats.stub_deletes + 1;
          match h.(s).Zk_client.delete ?version path with
          | Ok () -> Ok ()
          | Error e ->
            (* primary refused (version conflict, concurrent delete):
               restore the stub so the pair stays consistent *)
            (match h.(k).Zk_client.create path ~data:"" with
             | Ok _ ->
               stats.stub_creates <- stats.stub_creates + 1;
               stats.rollbacks <- stats.rollbacks + 1
             | Error Zerror.ZNODEEXISTS -> stats.rollbacks <- stats.rollbacks + 1
             | Error e2 ->
               note stats
                 (Printf.sprintf
                    "delete %s: stub lost on shard %d after primary refused (%s; %s)"
                    path k (Zerror.to_string e) (Zerror.to_string e2)));
            Error e))
  in
  (* children-family fallback: an existing directory whose children
     shard never saw a stub is an {e empty} directory, not a missing
     one. The underlying call has already armed any requested child
     watch on [kids path] (watch registries accept absent paths). *)
  let absent_fallback : 'a. string -> empty:'a -> ('a, Zerror.t) result =
    fun path ~empty ->
     if home path = kids path then Error Zerror.ZNONODE
     else
       match h.(home path).Zk_client.exists path with
       | Ok (Some _) -> Ok empty
       | Ok None -> Error Zerror.ZNONODE
       | Error e -> Error e
  in
  let children path =
    match h.(kids path).Zk_client.children path with
    | Error Zerror.ZNONODE -> absent_fallback path ~empty:[]
    | r -> r
  in
  let children_with_data path =
    match h.(kids path).Zk_client.children_with_data path with
    | Error Zerror.ZNONODE -> absent_fallback path ~empty:[]
    | r -> r
  in
  let children_with_data_watch path cb =
    match h.(kids path).Zk_client.children_with_data_watch path cb with
    | Error Zerror.ZNONODE -> absent_fallback path ~empty:[]
    | r -> r
  in
  let children_watch path cb =
    match h.(kids path).Zk_client.children_watch path cb with
    | Error Zerror.ZNONODE -> absent_fallback path ~empty:[]
    | r -> r
  in
  (* {2 Multi} *)
  let shard_of_op op = home (Txn.op_path op) in
  (* Retry a single-shard multi once after materializing stubs for its
     create parents — same lazy-stub rule as the create path. *)
  let multi_on s txn =
    match h.(s).Zk_client.multi txn with
    | Error Zerror.ZNONODE as err ->
      let planted =
        List.fold_left
          (fun planted op ->
            match op with
            | Txn.Create { path; _ } when Zpath.parent path <> "/" ->
              let before = stats.stub_creates in
              (match ensure_on s (Zpath.parent path) with
               | Ok () -> planted || stats.stub_creates > before
               | Error _ -> planted)
            | _ -> planted)
          false txn
      in
      if planted then h.(s).Zk_client.multi txn else err
    | r -> r
  in
  (* Ops grouped by shard in ascending shard order; each op keeps its
     original index so results re-assemble in request order. *)
  let group_by_shard txn =
    let tbl = Hashtbl.create 4 in
    List.iteri
      (fun i op ->
        let s = shard_of_op op in
        let prev = Option.value ~default:[] (Hashtbl.find_opt tbl s) in
        Hashtbl.replace tbl s ((i, op) :: prev))
      txn;
    Hashtbl.fold (fun s ops acc -> (s, List.rev ops) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  (* Undo one committed group: created nodes are deleted (deepest-first);
     committed deletes and data writes are unrecoverable — note them. *)
  let rollback_group (s, iops, items) =
    let undo =
      List.rev
        (List.filter_map
           (fun ((_, op), item) ->
             match (op, item) with
             | Txn.Create _, Txn.Created actual ->
               Some (Zk_client.delete_op actual)
             | _ -> None)
           (List.combine iops items))
    in
    let lost =
      List.exists
        (fun (_, op) ->
          match op with Txn.Delete _ | Txn.Set_data _ -> true | _ -> false)
        iops
    in
    (if undo <> [] then
       match h.(s).Zk_client.multi undo with
       | Ok _ -> stats.rollbacks <- stats.rollbacks + 1
       | Error e ->
         note stats
           (Printf.sprintf
              "multi rollback failed on shard %d: %d created node(s) left (%s)"
              s (List.length undo) (Zerror.to_string e)));
    if lost then
      note stats
        (Printf.sprintf
           "multi partially committed on shard %d: delete/set ops cannot be rolled back"
           s)
  in
  let stitch txn groups_done =
    let results = Hashtbl.create 16 in
    List.iter
      (fun (_, iops, items) ->
        List.iter2 (fun (i, _) item -> Hashtbl.replace results i item) iops items)
      groups_done;
    List.mapi (fun i _ -> Hashtbl.find results i) txn
  in
  let multi txn =
    match group_by_shard txn with
    | [] -> h.(0).Zk_client.multi txn (* empty txn: a sync, any shard *)
    | [ (s, _) ] -> multi_on s txn
    | groups ->
      stats.cross_shard_multis <- stats.cross_shard_multis + 1;
      let rec run done_groups = function
        | [] -> Ok (stitch txn (List.rev done_groups))
        | (s, iops) :: rest -> (
          match multi_on s (List.map snd iops) with
          | Ok items -> run ((s, iops, items) :: done_groups) rest
          | Error e ->
            List.iter rollback_group done_groups;
            Error e)
      in
      run [] groups
  in
  let multi_async txn callback =
    match group_by_shard txn with
    | [] -> h.(0).Zk_client.multi_async txn callback
    | [ (s, _) ] ->
      (* pass-through; no lazy stubbing on the async path (DESIGN.md) *)
      h.(s).Zk_client.multi_async txn callback
    | groups ->
      stats.cross_shard_multis <- stats.cross_shard_multis + 1;
      let rec step done_groups = function
        | [] -> callback (Ok (stitch txn (List.rev done_groups)))
        | (s, iops) :: rest ->
          h.(s).Zk_client.multi_async (List.map snd iops) (function
            | Ok items -> step ((s, iops, items) :: done_groups) rest
            | Error e ->
              List.iter rollback_group done_groups;
              callback (Error e))
      in
      step [] groups
  in
  { Zk_client.create;
    get = (fun path -> h.(home path).Zk_client.get path);
    set = (fun ?version path ~data -> h.(home path).Zk_client.set ?version path ~data);
    delete;
    exists = (fun path -> h.(home path).Zk_client.exists path);
    children;
    children_with_data;
    children_with_data_watch;
    multi;
    multi_async;
    watch_data = (fun path cb -> h.(home path).Zk_client.watch_data path cb);
    watch_children = (fun path cb -> h.(kids path).Zk_client.watch_children path cb);
    get_watch = (fun path cb -> h.(home path).Zk_client.get_watch path cb);
    children_watch;
    lease_get = (fun path -> h.(home path).Zk_client.lease_get path);
    lease_children = (fun path -> h.(kids path).Zk_client.lease_children path);
    lease_children_with_data =
      (fun path -> h.(kids path).Zk_client.lease_children_with_data path);
    set_invalidation =
      (* one channel per shard session; the client's callback hears
         revocations from every shard its working set spans *)
      (fun cb -> Array.iter (fun s -> s.Zk_client.set_invalidation cb) h);
    release_data_watch =
      (fun path cb -> h.(home path).Zk_client.release_data_watch path cb);
    release_child_watch =
      (fun path cb -> h.(kids path).Zk_client.release_child_watch path cb);
    sync = (fun () -> Array.iter (fun s -> s.Zk_client.sync ()) h);
    close = (fun () -> Array.iter (fun s -> s.Zk_client.close ()) h);
    session_id = h.(0).Zk_client.session_id }

(* {2 Deployments} *)

type backend =
  | Ens of Ensemble.t
  | Local of Zk_local.t

type t = {
  placement : placement;
  backends : backend array;
  stats : stats;
}

let start ?trace engine ~shards cfg =
  let placement = make_placement ~shards () in
  let backends =
    Array.init shards (fun i ->
        (* each shard owns its own network and jitter streams; distinct
           seeds keep their randomness independent while the whole
           deployment stays a pure function of cfg.seed *)
        let cfg = { cfg with Ensemble.seed = Int64.add cfg.Ensemble.seed (Int64.of_int i) } in
        Ens (Ensemble.start ?trace ~tag:(Printf.sprintf "shard%d" i) engine cfg))
  in
  { placement; backends; stats = fresh_stats () }

let local ?clock ~shards () =
  let placement = make_placement ~shards () in
  let backends = Array.init shards (fun _ -> Local (Zk_local.create ?clock ())) in
  { placement; backends; stats = fresh_stats () }

let session t () =
  wrap ~stats:t.stats ~placement:t.placement
    (Array.map
       (function
         | Ens e -> Ensemble.session e ()
         | Local l -> Zk_local.session l)
       t.backends)

let shard_count t = Array.length t.backends
let stats t = t.stats
let ring t = t.placement.p_ring
let placement t = t.placement
let home_shard t path = home_of t.placement path

let ensembles t =
  Array.map
    (function
      | Ens e -> e
      | Local _ -> invalid_arg "Shard_router.ensembles: local deployment")
    t.backends

let tree_of_shard t i =
  match t.backends.(i) with
  | Local l -> Zk_local.tree l
  | Ens e ->
    let id =
      match Ensemble.leader_id e with
      | Some id -> id
      | None -> ( match Ensemble.alive_ids e with id :: _ -> id | [] -> 0)
    in
    Ensemble.tree_of e id

let node_counts t =
  Array.init (shard_count t) (fun i -> Ztree.node_count (tree_of_shard t i))

let logical_population t =
  Array.fold_left (fun acc n -> acc + (n - 1)) 0 (node_counts t)
  - live_stubs t.stats

let writes_committed_by_shard t =
  Array.map
    (function Ens e -> Ensemble.writes_committed e | Local _ -> 0)
    t.backends

let writes_committed t = Array.fold_left ( + ) 0 (writes_committed_by_shard t)

let dedup_hits_by_shard t =
  Array.map (function Ens e -> Ensemble.dedup_hits e | Local _ -> 0) t.backends

let dedup_hits t = Array.fold_left ( + ) 0 (dedup_hits_by_shard t)

let publish t metrics =
  let set name v = Obs.Metrics.Gauge.set (Obs.Metrics.gauge metrics name) v in
  let counts = node_counts t
  and writes = writes_committed_by_shard t
  and hits = dedup_hits_by_shard t in
  Array.iteri
    (fun i n ->
      set (Printf.sprintf "zk.shard%d.znodes" i) (float_of_int n);
      set
        (Printf.sprintf "zk.shard%d.writes_committed" i)
        (float_of_int writes.(i));
      set (Printf.sprintf "zk.shard%d.dedup_hits" i) (float_of_int hits.(i)))
    counts;
  let s = t.stats in
  set "zk.router.cross_shard_multis" (float_of_int s.cross_shard_multis);
  set "zk.router.cross_shard_deletes" (float_of_int s.cross_shard_deletes);
  set "zk.router.stub_creates" (float_of_int s.stub_creates);
  set "zk.router.stub_deletes" (float_of_int s.stub_deletes);
  set "zk.router.rollbacks" (float_of_int s.rollbacks);
  set "zk.router.rollback_failures" (float_of_int s.rollback_failures);
  set "zk.router.live_stubs" (float_of_int (live_stubs s))
