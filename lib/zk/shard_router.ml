(* Shard router: the full client surface over N independent ensembles.
   See the .mli for the routing invariant (parent-directory co-location)
   and the cross-shard atomicity boundary; DESIGN.md §sharding for the
   honest list of caveats, §10 for the online-resharding protocol. *)

type stats = {
  mutable cross_shard_multis : int;
  mutable cross_shard_deletes : int;
  mutable stub_creates : int;
  mutable stub_deletes : int;
  mutable rollbacks : int;
  mutable rollback_failures : int;
  mutable orphan_notes : string list;
  mutable orphan_notes_total : int;
  mutable orphan_notes_dropped : int;
}

let fresh_stats () =
  { cross_shard_multis = 0;
    cross_shard_deletes = 0;
    stub_creates = 0;
    stub_deletes = 0;
    rollbacks = 0;
    rollback_failures = 0;
    orphan_notes = [];
    orphan_notes_total = 0;
    orphan_notes_dropped = 0 }

let live_stubs s = s.stub_creates - s.stub_deletes

(* The note log is a diagnosis aid, not an unbounded ledger: long chaos
   runs emit thousands of informational notes, so the log keeps only the
   newest [note_log_cap] and counts the rest as dropped. *)
let note_log_cap = 200

let note stats msg =
  stats.orphan_notes_total <- stats.orphan_notes_total + 1;
  if stats.orphan_notes_total <= note_log_cap then
    stats.orphan_notes <- msg :: stats.orphan_notes
  else begin
    (* rotate: drop the oldest entry to make room for the newest *)
    stats.orphan_notes_dropped <- stats.orphan_notes_dropped + 1;
    let kept =
      match List.rev stats.orphan_notes with
      | [] -> []
      | _oldest :: rest -> List.rev rest
    in
    stats.orphan_notes <- msg :: kept
  end

(* A note that records an unrecoverable partial commit — the only kind
   that counts against [rollback_failures]. Informational notes (stub
   cleanup, migration bookkeeping) go through [note] alone. *)
let note_failure stats msg =
  stats.rollback_failures <- stats.rollback_failures + 1;
  note stats msg

(* {2 Placement — consistent hashing with bounded loads}

   The ring alone cannot balance a small key population: a namespace
   with ~100 populated directories hashed onto 4 shards leaves the hot
   shard with ~28% of the keys (binomial spread), and read throughput
   tracks the hottest shard. So each key's shard is the ring's choice
   {e unless} that shard already holds [ceil ((1+eps) * keys / shards)]
   keys, in which case the next shard (ascending id, wrapping) under
   the cap takes it. With [eps = 0] (the default) per-shard key counts
   never differ by more than one. Assignments are memoized, so a key's
   shard is stable for the lifetime of the placement {e unless} an
   explicit reshard migrates it — the table models the durable
   directory-placement map a real deployment would keep in a (small,
   cacheable) coordination namespace, IndexFS-style. *)

(* One in-flight directory migration. While present in
   [placement.migrations] the key's writes park at the router; once
   [frozen] reads park too (the copy is being verified and retired and
   neither owner can safely serve them). *)
type migration = { mutable frozen : bool }

type placement = {
  mutable p_ring : Consistent_hash.t;
  mutable p_shards : int;
  eps : float;
  assigned : (string, int) Hashtbl.t; (* directory key -> shard *)
  mutable loads : int array;          (* keys per shard *)
  mutable total : int;
  migrations : (string, migration) Hashtbl.t;
  (* called in a loop while an op is parked on a migrating key; a
     simulation deployment installs a short [Process.sleep] here. The
     default raises: an immediate-mode deployment must never leave a
     migration open across a client call. *)
  mutable block_hook : string -> unit;
}

let make_ring ~shards =
  if shards < 1 then invalid_arg "Shard_router: shards < 1";
  Consistent_hash.create (List.init shards Fun.id)

let make_placement ?(eps = 0.) ~shards () =
  if eps < 0. then invalid_arg "Shard_router.make_placement: eps < 0";
  { p_ring = make_ring ~shards;
    p_shards = shards;
    eps;
    assigned = Hashtbl.create 256;
    loads = Array.make shards 0;
    total = 0;
    migrations = Hashtbl.create 8;
    block_hook =
      (fun key ->
        failwith
          (Printf.sprintf
             "Shard_router: op on migrating key %s with no block hook \
              (install one with set_block_hook)" key)) }

let placement_ring p = p.p_ring
let placement_shards p = p.p_shards
let placement_loads p = Array.copy p.loads
let keys_assigned p = p.total
let assigned_shard p key = Hashtbl.find_opt p.assigned key
let set_block_hook p hook = p.block_hook <- hook

(* The bounded-load assignment, shared by first-touch placement and the
   reshard replay. The cap is the ceil formula alone: for any [total]
   and [shards] at least one shard sits strictly under it
   (min load <= floor (total/shards) < ceil ((total+1)/shards) <= cap),
   so [pick] always terminates on an under-cap shard. *)
let place_raw ~eps ~shards ~ring ~loads ~total key =
  let cap =
    int_of_float
      (ceil ((1. +. eps) *. float_of_int (total + 1) /. float_of_int shards))
  in
  let pref = Consistent_hash.lookup ring key in
  let rec pick j =
    if j >= shards then pref
    else
      let s = (pref + j) mod shards in
      if loads.(s) < cap then s else pick (j + 1)
  in
  pick 0

let place p key =
  match Hashtbl.find_opt p.assigned key with
  | Some s -> s
  | None ->
    let s =
      place_raw ~eps:p.eps ~shards:p.p_shards ~ring:p.p_ring ~loads:p.loads
        ~total:p.total key
    in
    Hashtbl.replace p.assigned key s;
    p.loads.(s) <- p.loads.(s) + 1;
    p.total <- p.total + 1;
    s

(* {2 Online resharding support}

   [prepare_reshard] replays every assigned key (in sorted order, so the
   plan is deterministic) through the bounded-load algorithm over the
   {e new} ring and returns the remainder — the keys whose assignment
   changes. It commits the new ring/shard-count/loads immediately, so
   keys placed during the migration window land under the new regime,
   while each existing key keeps its old assignment (and its old
   routing) until {!finish_migration} flips it. *)

let prepare_reshard p ~shards =
  if shards < 1 then invalid_arg "Shard_router.prepare_reshard: shards < 1";
  if Hashtbl.length p.migrations > 0 then
    invalid_arg "Shard_router.prepare_reshard: a migration is already running";
  let ring = make_ring ~shards in
  let loads = Array.make shards 0 in
  let total = ref 0 in
  let keys =
    List.sort String.compare
      (Hashtbl.fold (fun k _ acc -> k :: acc) p.assigned [])
  in
  let moves = ref [] in
  List.iter
    (fun key ->
      let s = place_raw ~eps:p.eps ~shards ~ring ~loads ~total:!total key in
      loads.(s) <- loads.(s) + 1;
      incr total;
      let cur = Hashtbl.find p.assigned key in
      if cur <> s then moves := (key, cur, s) :: !moves)
    keys;
  p.p_ring <- ring;
  p.p_shards <- shards;
  p.loads <- loads;
  List.rev !moves

let begin_migration p key =
  Hashtbl.replace p.migrations key { frozen = false }

let freeze_migration p key =
  match Hashtbl.find_opt p.migrations key with
  | Some m -> m.frozen <- true
  | None -> invalid_arg "Shard_router.freeze_migration: key not migrating"

let finish_migration p key ~dst =
  Hashtbl.replace p.assigned key dst;
  Hashtbl.remove p.migrations key

let migrating p key = Hashtbl.mem p.migrations key

(* Park until the key's migration (if any) completes. Writes park for
   the whole migration; reads only once the copy is frozen — before
   that the old owner still serves them correctly. *)
let await p ~write key =
  let blocked () =
    match Hashtbl.find_opt p.migrations key with
    | None -> false
    | Some m -> write || m.frozen
  in
  while blocked () do
    p.block_hook key
  done

(* {2 The routed handle} *)

(* [home p]: the shard holding p's primary (placed by the parent, so
   siblings co-locate). [kids p]: the shard holding p's children
   (placed by p itself). For "/" both reduce to [place pl "/"]. *)
let key_of path = if path = "/" then "/" else Zpath.parent path
let home_of pl path = place pl (key_of path)
let kids_of pl path = place pl path

(* The router over an arbitrary shard-handle source: [get i] yields the
   sub-session for shard [i] (possibly opening it lazily — a reshard can
   add shards after a session was opened) and [iter_opened f] visits the
   sub-sessions opened so far. [set_inval] must both remember the
   callback for future opens and install it on the already-open ones. *)
let wrap_pool ~stats ~placement ~get ~iter_opened ~set_inval () =
  let pl = placement in
  let home p =
    await pl ~write:false (key_of p);
    home_of pl p
  and kids p =
    await pl ~write:false p;
    kids_of pl p
  in
  let home_w p =
    await pl ~write:true (key_of p);
    home_of pl p
  in
  let h i = (get i : Zk_client.handle) in
  let ( let* ) = Result.bind in
  (* Make [path] exist on shard [s], mirroring primaries into empty
     stubs top-down. Refuses to materialize anything the primary shard
     does not have, so a genuine ZNONODE stays ZNONODE. *)
  let rec ensure_on s path =
    if path = "/" then Ok ()
    else
      match (h s).Zk_client.exists path with
      | Error _ as e -> e |> Result.map ignore
      | Ok (Some _) -> Ok ()
      | Ok None -> (
        match (h (home path)).Zk_client.exists path with
        | Error _ as e -> e |> Result.map ignore
        | Ok None -> Error Zerror.ZNONODE
        | Ok (Some st) ->
          if st.Ztree.ephemeral_owner <> 0L then
            (* ephemerals cannot have children; never stub one *)
            Error Zerror.ZNOCHILDRENFOREPHEMERALS
          else
            let* () = ensure_on s (Zpath.parent path) in
            (match (h s).Zk_client.create path ~data:"" with
             | Ok _ ->
               stats.stub_creates <- stats.stub_creates + 1;
               Ok ()
             | Error Zerror.ZNODEEXISTS -> Ok ()
             | Error _ as e -> e |> Result.map ignore))
  in
  let create ?ephemeral ?sequential path ~data =
    let s = home_w path in
    match (h s).Zk_client.create ?ephemeral ?sequential path ~data with
    | Error Zerror.ZNONODE when path <> "/" && Zpath.parent path <> "/" -> (
      (* the parent may be a primary elsewhere with no stub here yet *)
      match ensure_on s (Zpath.parent path) with
      | Ok () -> (h s).Zk_client.create ?ephemeral ?sequential path ~data
      | Error e -> Error e)
    | r -> r
  in
  let delete ?version path =
    (* a delete touches both the primary and (possibly) the stub, so it
       must wait out migrations of either key *)
    await pl ~write:true path;
    let s = home_w path and k = kids_of pl path in
    if s = k then (h s).Zk_client.delete ?version path
    else
      (* cheap read probe: most nodes (all files) never grow a stub *)
      match (h k).Zk_client.exists path with
      | Error e -> Error e
      | Ok None -> (h s).Zk_client.delete ?version path
      | Ok (Some _) -> (
        stats.cross_shard_deletes <- stats.cross_shard_deletes + 1;
        (* ordered two-phase: the stub holds the children, so deleting
           it first preserves ZNOTEMPTY semantics exactly *)
        match (h k).Zk_client.delete path with
        | Error Zerror.ZNONODE -> (h s).Zk_client.delete ?version path
        | Error e -> Error e
        | Ok () -> (
          stats.stub_deletes <- stats.stub_deletes + 1;
          match (h s).Zk_client.delete ?version path with
          | Ok () -> Ok ()
          | Error e ->
            (* primary refused (version conflict, concurrent delete):
               restore the stub so the pair stays consistent *)
            (match (h k).Zk_client.create path ~data:"" with
             | Ok _ ->
               stats.stub_creates <- stats.stub_creates + 1;
               stats.rollbacks <- stats.rollbacks + 1
             | Error Zerror.ZNODEEXISTS -> stats.rollbacks <- stats.rollbacks + 1
             | Error e2 ->
               note_failure stats
                 (Printf.sprintf
                    "delete %s: stub lost on shard %d after primary refused (%s; %s)"
                    path k (Zerror.to_string e) (Zerror.to_string e2)));
            Error e))
  in
  (* children-family fallback: an existing directory whose children
     shard never saw a stub is an {e empty} directory, not a missing
     one. The underlying call has already armed any requested child
     watch on [kids path] (watch registries accept absent paths). *)
  let absent_fallback : 'a. string -> empty:'a -> ('a, Zerror.t) result =
    fun path ~empty ->
     if home_of pl path = kids_of pl path then Error Zerror.ZNONODE
     else
       match (h (home path)).Zk_client.exists path with
       | Ok (Some _) -> Ok empty
       | Ok None -> Error Zerror.ZNONODE
       | Error e -> Error e
  in
  let children path =
    match (h (kids path)).Zk_client.children path with
    | Error Zerror.ZNONODE -> absent_fallback path ~empty:[]
    | r -> r
  in
  let children_with_data path =
    match (h (kids path)).Zk_client.children_with_data path with
    | Error Zerror.ZNONODE -> absent_fallback path ~empty:[]
    | r -> r
  in
  let children_with_data_watch path cb =
    match (h (kids path)).Zk_client.children_with_data_watch path cb with
    | Error Zerror.ZNONODE -> absent_fallback path ~empty:[]
    | r -> r
  in
  let children_watch path cb =
    match (h (kids path)).Zk_client.children_watch path cb with
    | Error Zerror.ZNONODE -> absent_fallback path ~empty:[]
    | r -> r
  in
  (* The lease flavour of the fallback must also grant the directory
     interest on the children's shard — that is where future child
     events will fire — which a failed lease listing did not do. A
     lease read of an (absent) probe child grants exactly that interest
     and returns the deadline the listing would have carried. *)
  let lease_absent_fallback : 'a. string -> empty:'a -> ('a * float, Zerror.t) result =
    fun path ~empty ->
     if home_of pl path = kids_of pl path then Error Zerror.ZNONODE
     else
       match (h (home path)).Zk_client.exists path with
       | Ok (Some _) -> (
         match
           (h (kids path)).Zk_client.lease_get (Zpath.concat path "lease-probe")
         with
         | Ok (_, deadline) -> Ok (empty, deadline)
         | Error e -> Error e)
       | Ok None -> Error Zerror.ZNONODE
       | Error e -> Error e
  in
  let lease_children path =
    match (h (kids path)).Zk_client.lease_children path with
    | Error Zerror.ZNONODE -> lease_absent_fallback path ~empty:[]
    | r -> r
  in
  let lease_children_with_data path =
    match (h (kids path)).Zk_client.lease_children_with_data path with
    | Error Zerror.ZNONODE -> lease_absent_fallback path ~empty:[]
    | r -> r
  in
  (* {2 Multi} *)
  let shard_of_op op =
    let path = Txn.op_path op in
    await pl ~write:true (key_of path);
    home_of pl path
  in
  (* Retry a single-shard multi once after materializing stubs for its
     create parents — same lazy-stub rule as the create path. *)
  let multi_on s txn =
    match (h s).Zk_client.multi txn with
    | Error Zerror.ZNONODE as err ->
      let planted =
        List.fold_left
          (fun planted op ->
            match op with
            | Txn.Create { path; _ } when Zpath.parent path <> "/" ->
              let before = stats.stub_creates in
              (match ensure_on s (Zpath.parent path) with
               | Ok () -> planted || stats.stub_creates > before
               | Error _ -> planted)
            | _ -> planted)
          false txn
      in
      if planted then (h s).Zk_client.multi txn else err
    | r -> r
  in
  (* Ops grouped by shard in ascending shard order; each op keeps its
     original index so results re-assemble in request order. *)
  let group_by_shard txn =
    let tbl = Hashtbl.create 4 in
    List.iteri
      (fun i op ->
        let s = shard_of_op op in
        let prev = Option.value ~default:[] (Hashtbl.find_opt tbl s) in
        Hashtbl.replace tbl s ((i, op) :: prev))
      txn;
    Hashtbl.fold (fun s ops acc -> (s, List.rev ops) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  (* Undo one committed group: created nodes are deleted (deepest-first);
     committed deletes and data writes are unrecoverable — note them. *)
  let rollback_group (s, iops, items) =
    let undo =
      List.rev
        (List.filter_map
           (fun ((_, op), item) ->
             match (op, item) with
             | Txn.Create _, Txn.Created actual ->
               Some (Zk_client.delete_op actual)
             | _ -> None)
           (List.combine iops items))
    in
    let lost =
      List.exists
        (fun (_, op) ->
          match op with Txn.Delete _ | Txn.Set_data _ -> true | _ -> false)
        iops
    in
    (if undo <> [] then
       match (h s).Zk_client.multi undo with
       | Ok _ -> stats.rollbacks <- stats.rollbacks + 1
       | Error e ->
         note_failure stats
           (Printf.sprintf
              "multi rollback failed on shard %d: %d created node(s) left (%s)"
              s (List.length undo) (Zerror.to_string e)));
    if lost then
      note_failure stats
        (Printf.sprintf
           "multi partially committed on shard %d: delete/set ops cannot be rolled back"
           s)
  in
  let stitch txn groups_done =
    let results = Hashtbl.create 16 in
    List.iter
      (fun (_, iops, items) ->
        List.iter2 (fun (i, _) item -> Hashtbl.replace results i item) iops items)
      groups_done;
    List.mapi (fun i _ -> Hashtbl.find results i) txn
  in
  let multi txn =
    match group_by_shard txn with
    | [] -> (h 0).Zk_client.multi txn (* empty txn: a sync, any shard *)
    | [ (s, _) ] -> multi_on s txn
    | groups ->
      stats.cross_shard_multis <- stats.cross_shard_multis + 1;
      let rec run done_groups = function
        | [] -> Ok (stitch txn (List.rev done_groups))
        | (s, iops) :: rest -> (
          match multi_on s (List.map snd iops) with
          | Ok items -> run ((s, iops, items) :: done_groups) rest
          | Error e ->
            List.iter rollback_group done_groups;
            Error e)
      in
      run [] groups
  in
  let multi_async txn callback =
    match group_by_shard txn with
    | [] -> (h 0).Zk_client.multi_async txn callback
    | [ (s, _) ] ->
      (* pass-through; no lazy stubbing on the async path (DESIGN.md) *)
      (h s).Zk_client.multi_async txn callback
    | groups ->
      stats.cross_shard_multis <- stats.cross_shard_multis + 1;
      let rec step done_groups = function
        | [] -> callback (Ok (stitch txn (List.rev done_groups)))
        | (s, iops) :: rest ->
          (h s).Zk_client.multi_async (List.map snd iops) (function
            | Ok items -> step ((s, iops, items) :: done_groups) rest
            | Error e ->
              List.iter rollback_group done_groups;
              callback (Error e))
      in
      step [] groups
  in
  { Zk_client.create;
    get = (fun path -> (h (home path)).Zk_client.get path);
    set =
      (fun ?version path ~data ->
        (h (home_w path)).Zk_client.set ?version path ~data);
    delete;
    exists = (fun path -> (h (home path)).Zk_client.exists path);
    children;
    children_with_data;
    children_with_data_watch;
    multi;
    multi_async;
    watch_data = (fun path cb -> (h (home path)).Zk_client.watch_data path cb);
    watch_children =
      (fun path cb -> (h (kids path)).Zk_client.watch_children path cb);
    get_watch = (fun path cb -> (h (home path)).Zk_client.get_watch path cb);
    children_watch;
    lease_get = (fun path -> (h (home path)).Zk_client.lease_get path);
    lease_children;
    lease_children_with_data;
    set_invalidation =
      (* one channel per shard session; the client's callback hears
         revocations from every shard its working set spans (including
         shards added by a later reshard) *)
      set_inval;
    release_data_watch =
      (fun path cb ->
        (h (home_of pl path)).Zk_client.release_data_watch path cb);
    release_child_watch =
      (fun path cb ->
        (h (kids_of pl path)).Zk_client.release_child_watch path cb);
    sync = (fun () -> iter_opened (fun s -> s.Zk_client.sync ()));
    close = (fun () -> iter_opened (fun s -> s.Zk_client.close ()));
    session_id = (h 0).Zk_client.session_id }

let wrap ?(stats = fresh_stats ()) ~placement (h : Zk_client.handle array) =
  wrap_pool ~stats ~placement
    ~get:(fun i -> h.(i))
    ~iter_opened:(fun f -> Array.iter f h)
    ~set_inval:(fun cb -> Array.iter (fun s -> s.Zk_client.set_invalidation cb) h)
    ()

(* {2 Deployments} *)

type backend =
  | Ens of Ensemble.t
  | Local of Zk_local.t

type t = {
  placement : placement;
  mutable backends : backend array;
  boot : int -> backend; (* boots shard [i]; used by [add_shards] *)
  stats : stats;
}

let start ?trace engine ~shards cfg =
  let placement = make_placement ~shards () in
  (* parked router ops poll at sub-RPC granularity, so the migration
     window, not the poll, dominates their added latency *)
  set_block_hook placement (fun _key -> Simkit.Process.sleep 0.0005);
  let boot i =
    (* each shard owns its own network and jitter streams; distinct
       seeds keep their randomness independent while the whole
       deployment stays a pure function of cfg.seed *)
    let cfg = { cfg with Ensemble.seed = Int64.add cfg.Ensemble.seed (Int64.of_int i) } in
    Ens (Ensemble.start ?trace ~tag:(Printf.sprintf "shard%d" i) engine cfg)
  in
  { placement; backends = Array.init shards boot; boot; stats = fresh_stats () }

let local ?clock ~shards () =
  let placement = make_placement ~shards () in
  let boot _ = Local (Zk_local.create ?clock ()) in
  { placement; backends = Array.init shards boot; boot; stats = fresh_stats () }

let add_shards t count =
  if count < 1 then invalid_arg "Shard_router.add_shards: count < 1";
  let n = Array.length t.backends in
  t.backends <-
    Array.append t.backends (Array.init count (fun j -> t.boot (n + j)))

let backend_session t i =
  match t.backends.(i) with
  | Ens e -> Ensemble.session e ()
  | Local l -> Zk_local.session l

let revoke_dir t ~shard dir =
  match t.backends.(shard) with
  | Ens e -> Ensemble.revoke_dir e dir
  | Local l -> Zk_local.revoke_dir l dir

let session t () =
  (* Sub-sessions for the shards present at open time are eager (their
     open order is part of the deterministic replay schedule); shards a
     later reshard adds are opened lazily on first routed op. *)
  let opened = Hashtbl.create 8 in
  let order = ref [] in
  let inval = ref None in
  let get i =
    match Hashtbl.find_opt opened i with
    | Some h -> h
    | None ->
      let h = backend_session t i in
      (match !inval with Some cb -> h.Zk_client.set_invalidation cb | None -> ());
      Hashtbl.replace opened i h;
      order := i :: !order;
      h
  in
  let iter_opened f =
    (* open order, oldest first: deterministic and close-safe *)
    List.iter (fun i -> f (Hashtbl.find opened i)) (List.rev !order)
  in
  let set_inval cb =
    inval := Some cb;
    iter_opened (fun h -> h.Zk_client.set_invalidation cb)
  in
  for i = 0 to Array.length t.backends - 1 do
    ignore (get i)
  done;
  wrap_pool ~stats:t.stats ~placement:t.placement ~get ~iter_opened ~set_inval ()

let shard_count t = Array.length t.backends
let stats t = t.stats
let ring t = t.placement.p_ring
let placement t = t.placement
let home_shard t path = home_of t.placement path

let ensembles t =
  Array.map
    (function
      | Ens e -> e
      | Local _ -> invalid_arg "Shard_router.ensembles: local deployment")
    t.backends

let tree_of_shard t i =
  match t.backends.(i) with
  | Local l -> Zk_local.tree l
  | Ens e ->
    let id =
      match Ensemble.leader_id e with
      | Some id -> id
      | None -> ( match Ensemble.alive_ids e with id :: _ -> id | [] -> 0)
    in
    Ensemble.tree_of e id

let node_counts t =
  Array.init (shard_count t) (fun i -> Ztree.node_count (tree_of_shard t i))

let logical_population t =
  Array.fold_left (fun acc n -> acc + (n - 1)) 0 (node_counts t)
  - live_stubs t.stats

let writes_committed_by_shard t =
  Array.map
    (function Ens e -> Ensemble.writes_committed e | Local _ -> 0)
    t.backends

let writes_committed t = Array.fold_left ( + ) 0 (writes_committed_by_shard t)

let dedup_hits_by_shard t =
  Array.map (function Ens e -> Ensemble.dedup_hits e | Local _ -> 0) t.backends

let dedup_hits t = Array.fold_left ( + ) 0 (dedup_hits_by_shard t)

let publish t metrics =
  let set name v = Obs.Metrics.Gauge.set (Obs.Metrics.gauge metrics name) v in
  let counts = node_counts t
  and writes = writes_committed_by_shard t
  and hits = dedup_hits_by_shard t in
  Array.iteri
    (fun i n ->
      set (Printf.sprintf "zk.shard%d.znodes" i) (float_of_int n);
      set
        (Printf.sprintf "zk.shard%d.writes_committed" i)
        (float_of_int writes.(i));
      set (Printf.sprintf "zk.shard%d.dedup_hits" i) (float_of_int hits.(i)))
    counts;
  let s = t.stats in
  set "zk.router.cross_shard_multis" (float_of_int s.cross_shard_multis);
  set "zk.router.cross_shard_deletes" (float_of_int s.cross_shard_deletes);
  set "zk.router.stub_creates" (float_of_int s.stub_creates);
  set "zk.router.stub_deletes" (float_of_int s.stub_deletes);
  set "zk.router.rollbacks" (float_of_int s.rollbacks);
  set "zk.router.rollback_failures" (float_of_int s.rollback_failures);
  set "zk.router.orphan_notes_total" (float_of_int s.orphan_notes_total);
  set "zk.router.live_stubs" (float_of_int (live_stubs s))
