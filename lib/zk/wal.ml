(* Per-server stable storage: an append-only transaction log of
   checksummed records plus periodic tree snapshots.

   This is a *model* of the durable medium, in the spirit of Simkit's
   device models: the simulation's persist costs already say *when* an
   append reaches the platter ([persist] sleeps on the stop-and-wait
   paths, the [persist_until] device cursor on the pipelined leader);
   this module says *what* is on the platter at any instant, so a crash
   can be answered with the disk's truth instead of the dead process's
   RAM.

   Record layout (the checksummed [payload] of each record):

     W1 <epoch> <zxid> <time-bits-hex> <rsession> <rcxid> <close|-> <n>
     <op>...

   with each op length-prefixed ZTREE-style ("<len>:<string>"), followed
   by a 16-byte MD5 over the payload. A record is readable iff its MD5
   matches; a crash mid-append leaves the in-flight record torn (its
   checksum can never match), and bit-rot flips payload bytes under an
   unchanged checksum. Recovery walks the log in append order, stops at
   the first unreadable record (everything after a torn or rotten block
   is unreachable in a sequential log), and un-does zxid rewinds: a
   later record whose zxid is not above its predecessor's marks an
   epoch change that overwrote the old uncommitted suffix, exactly
   ZooKeeper's TRUNC.

   Three durability points are modeled as zero-latency ("piggybacked on
   the device's write stream", DESIGN.md §12): the apply marker
   [frontier] (ZooKeeper does not persist commits either; we trade its
   log-end recovery for an explicit marker so recovery reproduces the
   applied prefix exactly), the epoch stamp, and records installed by a
   leader state transfer. *)

type entry = {
  e_zxid : int64;
  e_txn : Txn.t;
  e_time : float;
  e_rsession : int64;
  e_rcxid : int64;
  e_close : int64 option;
}

type record = {
  r_entry : entry;
  r_epoch : int;
  mutable r_payload : string;
  r_sum : string; (* MD5 of the payload as appended *)
  r_start : float; (* device write issued *)
  r_done : float; (* device write (incl. fsync) complete *)
  mutable r_torn : bool; (* partially written: crash mid-append *)
}

type snapshot = {
  s_zxid : int64;
  s_epoch : int;
  mutable s_payload : string; (* Ztree.serialize at [s_zxid] *)
  s_sum : string;
}

type t = {
  mutable records : record list; (* newest first (append order reversed) *)
  by_zxid : (int64, record) Hashtbl.t; (* latest record per zxid *)
  mutable snaps : snapshot list; (* newest first; at most two kept *)
  mutable frontier : int64; (* durable apply marker *)
  mutable epoch : int; (* durable epoch stamp *)
  (* storage-fault state *)
  mutable stalled_until : float; (* disk-stall: device busy until then *)
  mutable fsync_extra : float; (* fail-slow: additive per-fsync latency *)
  (* counters (cumulative across this server's lifetime) *)
  mutable appended : int;
  mutable replayed : int;
  mutable truncated : int; (* records lost to torn tails / bad checksums *)
  mutable tail_dropped : int; (* un-fsynced records dropped at power-off *)
  mutable snap_loads : int;
  mutable snap_fallbacks : int; (* corrupt snapshot skipped for an older one *)
}

let create () =
  { records = [];
    by_zxid = Hashtbl.create 256;
    snaps = [];
    frontier = 0L;
    epoch = 0;
    stalled_until = 0.;
    fsync_extra = 0.;
    appended = 0;
    replayed = 0;
    truncated = 0;
    tail_dropped = 0;
    snap_loads = 0;
    snap_fallbacks = 0 }

(* {2 Record encoding} *)

let enc_str b s =
  Buffer.add_string b (string_of_int (String.length s));
  Buffer.add_char b ':';
  Buffer.add_string b s

let enc_op b op =
  (match op with
   | Txn.Create { path; data; ephemeral_owner; sequential } ->
     Buffer.add_string b "C ";
     enc_str b path;
     Buffer.add_char b ' ';
     enc_str b data;
     Buffer.add_string b (Printf.sprintf " %Ld %d" ephemeral_owner
                            (if sequential then 1 else 0))
   | Txn.Delete { path; expected_version } ->
     Buffer.add_string b "D ";
     enc_str b path;
     Buffer.add_string b (Printf.sprintf " %d" expected_version)
   | Txn.Set_data { path; data; expected_version } ->
     Buffer.add_string b "S ";
     enc_str b path;
     Buffer.add_char b ' ';
     enc_str b data;
     Buffer.add_string b (Printf.sprintf " %d" expected_version)
   | Txn.Check { path; expected_version } ->
     Buffer.add_string b "K ";
     enc_str b path;
     Buffer.add_string b (Printf.sprintf " %d" expected_version));
  Buffer.add_char b '\n'

let encode ~epoch (e : entry) =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "W1 %d %Ld %Lx %Ld %Ld %s %d\n" epoch e.e_zxid
       (Int64.bits_of_float e.e_time)
       e.e_rsession e.e_rcxid
       (match e.e_close with None -> "-" | Some o -> Int64.to_string o)
       (List.length e.e_txn));
  List.iter (enc_op b) e.e_txn;
  Buffer.contents b

(* {2 Appending} *)

let entry_at t zxid =
  Option.map (fun r -> r.r_entry) (Hashtbl.find_opt t.by_zxid zxid)

let epoch_at t zxid =
  Option.map (fun r -> r.r_epoch) (Hashtbl.find_opt t.by_zxid zxid)

let append t ~epoch ~start ~done_at entry =
  let payload = encode ~epoch entry in
  let r =
    { r_entry = entry; r_epoch = epoch; r_payload = payload;
      r_sum = Md5.digest payload; r_start = start; r_done = done_at;
      r_torn = false }
  in
  t.records <- r :: t.records;
  Hashtbl.replace t.by_zxid entry.e_zxid r;
  t.appended <- t.appended + 1

let note_commit t zxid = if zxid > t.frontier then t.frontier <- zxid
let note_epoch t epoch = if epoch > t.epoch then t.epoch <- epoch
let frontier t = t.frontier
let epoch t = t.epoch

(* {2 Snapshots} *)

let rebuild_index t =
  Hashtbl.reset t.by_zxid;
  List.iter
    (fun r -> Hashtbl.replace t.by_zxid r.r_entry.e_zxid r)
    (List.rev t.records)

(* Keep the newest two snapshots (the older one is the bit-rot fallback)
   and prune log records at or below the older snapshot's zxid: recovery
   never replays below the snapshot it loads. *)
let snapshot t ~zxid ~epoch payload =
  let s =
    { s_zxid = zxid; s_epoch = epoch; s_payload = payload;
      s_sum = Md5.digest payload }
  in
  (t.snaps <-
     (match t.snaps with
      | [] -> [ s ]
      | newest :: _ -> [ s; newest ]));
  (match t.snaps with
   | [ _; older ] ->
     let n0 = List.length t.records in
     t.records <-
       List.filter (fun r -> r.r_entry.e_zxid > older.s_zxid) t.records;
     if List.length t.records <> n0 then rebuild_index t
   | _ -> ())

let last_snapshot_zxid t =
  match t.snaps with [] -> 0L | s :: _ -> s.s_zxid

(* A leader-installed snapshot (SNAP state transfer) supersedes the
   whole local log: everything at or below it is captured by the
   snapshot, everything above it is a stale suffix the leader has
   overruled (ZooKeeper's TRUNC). *)
let install_snapshot t ~zxid ~epoch payload =
  t.records <- [];
  Hashtbl.reset t.by_zxid;
  t.snaps <-
    [ { s_zxid = zxid; s_epoch = epoch; s_payload = payload;
        s_sum = Md5.digest payload } ];
  if zxid > t.frontier then t.frontier <- zxid

(* {2 Storage-fault state} *)

(* Additional device latency an fsync issued at [now] pays on top of the
   configured [persist] cost: the remainder of a disk stall plus the
   fail-slow surcharge. Zero when no storage fault is armed, so the
   default schedule's sleep arguments are bit-identical. *)
let device_delay t ~now =
  (if t.stalled_until > now then t.stalled_until -. now else 0.)
  +. t.fsync_extra

let stall t ~now ~duration =
  let until = now +. duration in
  if until > t.stalled_until then t.stalled_until <- until

let stalled_until t = t.stalled_until
let add_fsync_delay t d = t.fsync_extra <- t.fsync_extra +. d
let fsync_extra t = t.fsync_extra

(* Tear the newest record: its trailing block never made it out of the
   drive cache (torn write), so its checksum cannot match. *)
let tear_tail t =
  match t.records with [] -> false | r :: _ -> r.r_torn <- true; true

(* Deterministic bit-rot: each record decays iff a hash of its checksum
   falls under [fraction] — reproducible across runs (no RNG draw), yet
   spread pseudo-randomly over the log. The flipped byte sits mid-
   payload, so the record parses identically but fails verification. *)
let corrupt t ~fraction =
  let threshold = int_of_float (fraction *. 65536.) in
  let hit = ref 0 in
  List.iter
    (fun r ->
      if Md5.to_int r.r_sum land 0xFFFF < threshold then begin
        let i = String.length r.r_payload / 2 in
        let b = Bytes.of_string r.r_payload in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
        r.r_payload <- Bytes.to_string b;
        incr hit
      end)
    t.records;
  !hit

let corrupt_snapshot t =
  match t.snaps with
  | [] -> false
  | s :: _ ->
    let i = String.length s.s_payload / 2 in
    let b = Bytes.of_string s.s_payload in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
    s.s_payload <- Bytes.to_string b;
    true

(* {2 Crash} *)

(* Power-off at [now]: appends whose device write had not completed are
   lost — fully (never issued, or issued and still queued behind an
   earlier write) or torn (the one write actually on the platter when
   the power died). The device serializes writes, so at most one record
   can be mid-write. *)
let power_off t ~now =
  let keep, gone =
    List.partition (fun r -> r.r_done <= now || r.r_torn) t.records
  in
  let dropped = ref 0 in
  let torn =
    List.filter
      (fun r ->
        if r.r_start < now then true
        else begin
          incr dropped;
          false
        end)
      gone
  in
  List.iter (fun r -> r.r_torn <- true) torn;
  t.records <- torn @ keep;
  t.tail_dropped <- t.tail_dropped + !dropped;
  if !dropped > 0 || torn <> [] then rebuild_index t

(* {2 Recovery} *)

type recovered = {
  rc_snapshot : string option; (* payload to deserialize; None = cold *)
  rc_snap_zxid : int64;
  rc_replay : entry list; (* (snap, frontier], ascending, contiguous *)
  rc_tail : entry list; (* beyond the frontier: persisted, uncommitted *)
  rc_log_end : int * int64; (* (epoch, zxid) of the last readable record *)
  rc_truncated : int; (* records lost to torn tails / bad checksums *)
  rc_replayed : int;
  rc_loaded_snapshot : bool;
  rc_snap_fallback : bool;
}

let record_valid r = (not r.r_torn) && Md5.digest r.r_payload = r.r_sum

(* Walk the log in append order, stop at the first unreadable record,
   and resolve zxid rewinds (epoch changes overwriting an uncommitted
   suffix) by popping the superseded tail — returns the effective log,
   ascending. *)
let effective_log t =
  let in_order = List.rev t.records in
  let rec scan eff bad = function
    | [] -> (eff, bad)
    | r :: rest ->
      if not (record_valid r) then (eff, 1 + List.length rest)
      else begin
        let rec pop = function
          | top :: below when top.r_entry.e_zxid >= r.r_entry.e_zxid -> pop below
          | eff -> eff
        in
        scan (r :: pop eff) bad rest
      end
  in
  let eff_rev, bad = scan [] 0 in_order in
  (List.rev eff_rev, bad)

let recover t =
  let eff, bad = effective_log t in
  t.truncated <- t.truncated + bad;
  (* truncate the physical log too: a real recovery rewrites the file
     up to the last readable record *)
  if bad > 0 then begin
    (* the readable prefix in append order: everything before the first
       torn or rotten record *)
    let rec keep_prefix acc = function
      | r :: rest when record_valid r -> keep_prefix (r :: acc) rest
      | _ -> acc (* newest first *)
    in
    t.records <- keep_prefix [] (List.rev t.records);
    rebuild_index t
  end;
  (* snapshot ladder: newest checksum-valid snapshot, else the older
     one, else cold start (the caller falls back to a leader SNAP) *)
  let rec pick_snap fallback = function
    | [] -> (None, 0L, fallback)
    | s :: rest ->
      if Md5.digest s.s_payload = s.s_sum then
        (Some s.s_payload, s.s_zxid, fallback)
      else begin
        t.snap_fallbacks <- t.snap_fallbacks + 1;
        pick_snap true rest
      end
  in
  let snap_payload, snap_zxid, snap_fallback = pick_snap false t.snaps in
  if snap_payload <> None then t.snap_loads <- t.snap_loads + 1;
  (* replay = contiguous records in (snap_zxid, frontier]; a gap means
     lost records (truncated tail or pruned-under-corrupt-snapshots) —
     stop there, the leader diff-sync supplies the rest *)
  let rec split_replay acc expect = function
    | [] -> (List.rev acc, [])
    | r :: rest ->
      if r.r_entry.e_zxid <= snap_zxid then split_replay acc expect rest
      else if r.r_entry.e_zxid > t.frontier then (List.rev acc, r :: rest)
      else if r.r_entry.e_zxid = expect then
        split_replay (r :: acc) (Int64.add expect 1L) rest
      else (List.rev acc, [])
  in
  let replay_recs, rest = split_replay [] (Int64.add snap_zxid 1L) eff in
  (* the uncommitted tail is usable only if it continues the replayed
     prefix without a hole *)
  let replay_end =
    match List.rev replay_recs with
    | last :: _ -> last.r_entry.e_zxid
    | [] -> snap_zxid
  in
  let rec take_tail acc expect = function
    | [] -> List.rev acc
    | r :: rest ->
      if r.r_entry.e_zxid = expect then
        take_tail (r :: acc) (Int64.add expect 1L) rest
      else List.rev acc
  in
  let tail_recs =
    if replay_end = t.frontier then
      take_tail [] (Int64.add t.frontier 1L)
        (List.filter (fun r -> r.r_entry.e_zxid > t.frontier) rest)
    else []
  in
  let log_end =
    match List.rev eff with
    | last :: _ -> (last.r_epoch, last.r_entry.e_zxid)
    | [] -> (t.epoch, snap_zxid)
  in
  t.replayed <- t.replayed + List.length replay_recs;
  { rc_snapshot = snap_payload;
    rc_snap_zxid = snap_zxid;
    rc_replay = List.map (fun r -> r.r_entry) replay_recs;
    rc_tail = List.map (fun r -> r.r_entry) tail_recs;
    rc_log_end = log_end;
    rc_truncated = bad;
    rc_replayed = List.length replay_recs;
    rc_loaded_snapshot = snap_payload <> None;
    rc_snap_fallback = snap_fallback }

(* {2 Introspection} *)

let records t = List.length t.records
let snapshots t = List.length t.snaps
let appended t = t.appended
let replayed t = t.replayed
let truncated t = t.truncated
let tail_dropped t = t.tail_dropped
let snap_loads t = t.snap_loads
let snap_fallbacks t = t.snap_fallbacks

(* Highest zxid whose record has completed its device write at [now]
   and verifies — "what would survive a power failure right now". *)
let durable_zxid t ~now =
  List.fold_left
    (fun acc r ->
      if r.r_done <= now && record_valid r then Int64.max acc r.r_entry.e_zxid
      else acc)
    (last_snapshot_zxid t) t.records
