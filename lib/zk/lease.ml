(* Server-side lease tables for time-bounded client cache coherence.

   A lease read registers *session-level* interest in one directory (the
   parent of the znode read, or the directory listed), not a per-znode
   watch: the table is O(sessions x working directories), independent of
   how many znodes each client caches under those directories. Interest
   is refreshed implicitly on every lease read and expires on the sim
   clock, so the table self-cleans when clients move on or die.

   Early revocation: when a committed transaction touches a path, every
   session holding a live interest in that path's directory (or in the
   path itself, for directories) is notified synchronously through the
   callback it registered — the same zero-latency channel the per-znode
   watches use, so sequential consistency is preserved fault-free while
   the TTL bounds staleness when the server (and this RAM table) is
   lost. *)

type interest = {
  mutable deadline : float;
  notify : Ztree.watch_event -> unit;
}

type t = {
  now : unit -> float;
  ttl : float;
  (* dir -> (session -> interest) *)
  interests : (string, (int64, interest) Hashtbl.t) Hashtbl.t;
  mutable granted : int;
  mutable renewed : int;
  mutable revoked : int;
  mutable expired : int;
}

let create ~now ~ttl =
  { now;
    ttl;
    interests = Hashtbl.create 64;
    granted = 0;
    renewed = 0;
    revoked = 0;
    expired = 0 }

let ttl t = t.ttl

let grant t ~session ~dir ~notify =
  let now = t.now () in
  let deadline = now +. t.ttl in
  let sessions =
    match Hashtbl.find_opt t.interests dir with
    | Some sessions -> sessions
    | None ->
      let sessions = Hashtbl.create 4 in
      Hashtbl.replace t.interests dir sessions;
      sessions
  in
  (* liveness is [deadline > now], matching the client's serve-local
     check [now < lease_until]: at the deadline both sides agree the
     lease is dead *)
  (match Hashtbl.find_opt sessions session with
   | Some i when i.deadline > now ->
     i.deadline <- deadline;
     t.renewed <- t.renewed + 1
   | Some i ->
     (* Expired but not yet purged: a fresh grant, not a renewal. *)
     i.deadline <- deadline;
     t.expired <- t.expired + 1;
     t.granted <- t.granted + 1
   | None ->
     Hashtbl.replace sessions session { deadline; notify };
     t.granted <- t.granted + 1);
  deadline

(* Fire every live interest in [dir]; lazily purge expired ones so the
   table stays bounded by live working sets without a sweeper process. *)
let notify_dir t dir event =
  match Hashtbl.find_opt t.interests dir with
  | None -> ()
  | Some sessions ->
    let now = t.now () in
    let dead = ref [] in
    Hashtbl.iter
      (fun session (i : interest) ->
        if i.deadline > now then begin
          t.revoked <- t.revoked + 1;
          i.notify event
        end
        else begin
          t.expired <- t.expired + 1;
          dead := session :: !dead
        end)
      sessions;
    List.iter (Hashtbl.remove sessions) !dead;
    if Hashtbl.length sessions = 0 then Hashtbl.remove t.interests dir

(* A change to [path] invalidates both the entries cached under its
   parent directory (get/stat fills) and listings of [path] itself
   (children fills) — same union the per-znode protocol covers with its
   two watch registries. *)
let notify_path t kind path =
  let event = { Ztree.kind; path } in
  notify_dir t (Zpath.parent path) event;
  notify_dir t path event

let revoke_txn t txn results =
  List.iter2
    (fun op result ->
      match op, result with
      | Txn.Create _, Txn.Created actual ->
        notify_path t Ztree.Node_created actual
      | Txn.Delete { path; _ }, Txn.Deleted ->
        notify_path t Ztree.Node_deleted path
      | Txn.Set_data { path; _ }, Txn.Data_set ->
        notify_path t Ztree.Node_data_changed path
      | _, Txn.Checked -> ()
      | _ -> ())
    txn results

(* Ownership flip: every interest in [dir] is notified (the directory's
   contents now live on another shard, so nothing here will ever again
   invalidate them) and dropped — a grant after the flip belongs to the
   new owner's table. Each live interest gets one data event per child
   (the caller enumerates them from its tree — the table itself only
   knows directories) so per-entry caches drop the children too, then
   the children event for the listing. Negative entries for {e absent}
   children cannot be enumerated and stay TTL-bounded (DESIGN.md §10). *)
let revoke_dir t ?(children = []) dir =
  match Hashtbl.find_opt t.interests dir with
  | None -> 0
  | Some sessions ->
    let now = t.now () in
    let fired = ref 0 in
    Hashtbl.iter
      (fun _session (i : interest) ->
        if i.deadline > now then begin
          t.revoked <- t.revoked + 1;
          incr fired;
          List.iter
            (fun child ->
              i.notify { Ztree.kind = Ztree.Node_data_changed; path = child })
            children;
          i.notify { Ztree.kind = Ztree.Node_children_changed; path = dir }
        end
        else t.expired <- t.expired + 1)
      sessions;
    Hashtbl.remove t.interests dir;
    !fired

let drop_session t session =
  let empty = ref [] in
  Hashtbl.iter
    (fun dir sessions ->
      Hashtbl.remove sessions session;
      if Hashtbl.length sessions = 0 then empty := dir :: !empty)
    t.interests;
  List.iter (Hashtbl.remove t.interests) !empty

let clear t = Hashtbl.reset t.interests

let entries t =
  Hashtbl.fold (fun _ sessions acc -> acc + Hashtbl.length sessions) t.interests 0

let granted t = t.granted
let renewed t = t.renewed
let revoked t = t.revoked
let expired t = t.expired
