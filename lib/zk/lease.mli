(** Server-side lease tables for time-bounded client cache coherence.

    The per-znode watch protocol costs one server-side registration per
    cached entry — O(cached znodes) server state, fatal at 10k+ sessions.
    A lease instead registers one *session-level interest per directory*
    a session is actively reading under: the table is
    O(sessions x working directories), and every lease read implicitly
    refreshes the interest, so there is no separate subscribe/renew
    traffic and the table self-cleans as deadlines pass (lazy purge — no
    sweeper process, no timer events).

    Coherence contract: while an interest is live, any committed change
    to a path in that directory is pushed synchronously through the
    session's notify callback (zero-latency, same channel semantics as
    watches — sequentially consistent fault-free). If the serving replica
    crashes, its lease table is lost with its RAM and clients can serve
    stale reads for at most the lease TTL; that TTL is the protocol's
    staleness bound (DESIGN.md §9). *)

type t

(** [create ~now ~ttl] — [now] is the sim clock; [ttl] the lease duration
    in virtual seconds. *)
val create : now:(unit -> float) -> ttl:float -> t

val ttl : t -> float

(** [grant t ~session ~dir ~notify] records (or refreshes) [session]'s
    interest in directory [dir] and returns the new deadline
    [now () +. ttl]. Counted as a renewal when a live interest existed,
    as a grant otherwise. [notify] must be stable per session — the
    latest registration wins only for brand-new interests; renewals keep
    the existing callback. *)
val grant :
  t -> session:int64 -> dir:string -> notify:(Ztree.watch_event -> unit) ->
  float

(** [revoke_txn t txn results] pushes revocations for one successfully
    applied transaction: each mutation notifies live interests in the
    touched path's parent directory (entry fills) and in the path itself
    (listing fills). Call with the op list and the matching
    {!Txn.result_item} list from {!Ztree.apply}. *)
val revoke_txn : t -> Txn.t -> Txn.result_item list -> unit

(** [revoke_dir t ~children dir] notifies and drops every live interest
    in [dir] — the ownership-flip revocation: after a reshard moves
    [dir] to another shard, nothing on this server will ever again
    invalidate entries cached under it, so the interests must not
    outlive the flip. Each live interest receives one
    [Node_data_changed] per path in [children] (the caller enumerates
    [dir]'s children from its tree; the table only knows directories)
    so per-entry caches drop child data too, then [Node_children_changed]
    on [dir] for the listing. Negative entries for absent children
    cannot be enumerated and stay TTL-bounded. Expired interests are
    purged silently. Returns the number of interests notified. *)
val revoke_dir : t -> ?children:string list -> string -> int

(** Remove every interest held by [session] (session close/expiry). *)
val drop_session : t -> int64 -> unit

(** Drop the whole table — a server crash loses its RAM. *)
val clear : t -> unit

(** Live + not-yet-purged interest entries — the server-state figure the
    sessions bench tracks against {!Ztree.watch_count}. *)
val entries : t -> int

(** {2 Counters} *)

val granted : t -> int
val renewed : t -> int
val revoked : t -> int

(** Interests observed past their deadline (purged lazily or re-granted). *)
val expired : t -> int
