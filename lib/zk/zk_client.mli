(** The client-side coordination API (ZooKeeper synchronous bindings).

    A {!handle} is a record of closures so that the same caller code (the
    DUFS client, tests, examples) runs unchanged against {!Zk_local}
    (immediate, single process) or {!Ensemble} (replicated servers on the
    simulator, where each call blocks the calling simulation process). *)

type handle = {
  create :
    ?ephemeral:bool -> ?sequential:bool -> string -> data:string ->
    (string, Zerror.t) result;
      (** Returns the actual path created (sequential suffix resolved). *)
  get : string -> (string * Ztree.stat, Zerror.t) result;
  set : ?version:int -> string -> data:string -> (unit, Zerror.t) result;
  delete : ?version:int -> string -> (unit, Zerror.t) result;
  exists : string -> (Ztree.stat option, Zerror.t) result;
      (** [Ok None] means the service answered and the node is absent;
          transport failures (timeout, connection loss) surface as
          [Error] instead of masquerading as "no such node". *)
  children : string -> (string list, Zerror.t) result;
  children_with_data :
    string -> ((string * string * Ztree.stat) list, Zerror.t) result;
      (** Bulk readdir: [(name, data, stat)] for every child, sorted by
          name, in one server visit — N+1 round-trips become 1. *)
  children_with_data_watch :
    string -> (Ztree.watch_event -> unit) ->
    ((string * string * Ztree.stat) list, Zerror.t) result;
      (** [children_with_data] that additionally arms, in the same server
          visit, a child watch on the parent plus a data watch on every
          listed child — so a cache can warm per-child entries from the
          bulk result and still hear about their invalidation. The
          callback dispatches on the event's [path]/[kind]. *)
  multi : Txn.t -> (Txn.result_item list, Zerror.t) result;
      (** Atomic multi-op transaction (all-or-nothing). *)
  multi_async :
    Txn.t -> ((Txn.result_item list, Zerror.t) result -> unit) -> unit;
      (** Asynchronous submission (the zoo_amulti-style API): returns
          immediately; the callback fires on completion. Lets one client
          keep several writes in flight — the pipelining the paper's
          prototype forgoes by using the synchronous API (§IV-D). *)
  watch_data : string -> (Ztree.watch_event -> unit) -> unit;
  watch_children : string -> (Ztree.watch_event -> unit) -> unit;
  get_watch :
    string -> (Ztree.watch_event -> unit) -> (string * Ztree.stat, Zerror.t) result;
      (** Read and arm a data watch in one server visit — ZooKeeper's
          watch piggybacking. The watch is armed whether or not the node
          exists (an exists-watch fires on creation). *)
  children_watch :
    string -> (Ztree.watch_event -> unit) -> (string list, Zerror.t) result;
      (** List children and arm a child watch in one server visit. *)
  lease_get :
    string -> ((string * Ztree.stat) option * float, Zerror.t) result;
      (** Read [path] under lease coherence: the server registers (or
          refreshes) this session's interest in [path]'s parent
          directory and stamps the reply with a lease deadline on the
          sim clock. Until that deadline the client may serve the value
          locally; committed changes to the directory revoke early via
          the {!field-set_invalidation} channel. [Ok (None, d)] is a
          leased negative result (node absent). One session-level
          interest per directory — zero per-znode server state. *)
  lease_children : string -> (string list * float, Zerror.t) result;
      (** Leased listing: interest registered on the directory itself. *)
  lease_children_with_data :
    string -> ((string * string * Ztree.stat) list * float, Zerror.t) result;
      (** Leased bulk readdir: one server visit returns every child's
          [(name, data, stat)] plus one lease deadline covering the
          listing and all per-child entries warmed from it. *)
  set_invalidation : (Ztree.watch_event -> unit) -> unit;
      (** Install the session's single aggregated invalidation callback:
          every early lease revocation (any committed change under a
          leased directory) is delivered through it, tagged with the
          changed path and event kind. Client-side only; replaces the
          per-znode watch fan-in. *)
  release_data_watch : string -> (Ztree.watch_event -> unit) -> unit;
      (** Fire-and-forget cancellation of a still-armed fire-once data
          watch this session registered (failed fill, cache eviction) —
          matched server-side by callback identity. Best-effort under
          faults: an unreleased duplicate fires once and is then gone. *)
  release_child_watch : string -> (Ztree.watch_event -> unit) -> unit;
  sync : unit -> unit;
      (** Flush the leader→replica pipeline for this session's server. *)
  close : unit -> unit;
      (** End the session; the service deletes its ephemeral nodes. *)
  session_id : int64;
}

(** [create_op ?ephemeral ?sequential path ~data] builds the {!Txn.op}
    matching [handle.create] — convenience for assembling multis. *)
val create_op : ?ephemeral:int64 -> ?sequential:bool -> string -> data:string -> Txn.op

val delete_op : ?version:int -> string -> Txn.op
val set_op : ?version:int -> string -> data:string -> Txn.op
val check_op : ?version:int -> string -> Txn.op
