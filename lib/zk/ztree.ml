type node = {
  mutable data : string;
  children : (string, unit) Hashtbl.t;
  mutable version : int;
  mutable cversion : int;
  mutable seq_counter : int;
  czxid : int64;
  mutable mzxid : int64;
  mutable pzxid : int64;
  ctime : float;
  mutable mtime : float;
  ephemeral_owner : int64;
}

type stat = {
  czxid : int64;
  mzxid : int64;
  pzxid : int64;
  ctime : float;
  mtime : float;
  version : int;
  cversion : int;
  ephemeral_owner : int64;
  data_length : int;
  num_children : int;
}

type event_kind =
  | Node_created
  | Node_deleted
  | Node_data_changed
  | Node_children_changed

type watch_event = { kind : event_kind; path : string }

type t = {
  nodes : (string, node) Hashtbl.t;
  data_watches : (string, (watch_event -> unit) list ref) Hashtbl.t;
  child_watches : (string, (watch_event -> unit) list ref) Hashtbl.t;
  ephemerals : (int64, (string, unit) Hashtbl.t) Hashtbl.t;
  mutable last_zxid : int64;
  mutable bytes : int;
}

(* Heap cost model per znode: node record (~96 B), two hash-table slots
   (parent child-set + global path index, ~96 B), plus path and data
   payloads counted separately. Chosen so that DUFS-sized znodes land near
   the paper's ~417 MB per million znodes once the JVM factor in
   Memory_model is applied. *)
let znode_overhead_bytes = 192

let make_node ~zxid ~time ~data ~ephemeral_owner =
  { data;
    children = Hashtbl.create 2;
    version = 0;
    cversion = 0;
    seq_counter = 0;
    czxid = zxid;
    mzxid = zxid;
    pzxid = zxid;
    ctime = time;
    mtime = time;
    ephemeral_owner }

let create () =
  let t =
    { nodes = Hashtbl.create 1024;
      data_watches = Hashtbl.create 64;
      child_watches = Hashtbl.create 64;
      ephemerals = Hashtbl.create 16;
      last_zxid = 0L;
      bytes = 0 }
  in
  Hashtbl.replace t.nodes "/"
    (make_node ~zxid:0L ~time:0. ~data:"" ~ephemeral_owner:0L);
  t

let stat_of_node (n : node) : stat =
  { czxid = n.czxid;
    mzxid = n.mzxid;
    pzxid = n.pzxid;
    ctime = n.ctime;
    mtime = n.mtime;
    version = n.version;
    cversion = n.cversion;
    ephemeral_owner = n.ephemeral_owner;
    data_length = String.length n.data;
    num_children = Hashtbl.length n.children }

(* {2 Reads} *)

let get t path =
  match Hashtbl.find_opt t.nodes path with
  | Some n -> Ok (n.data, stat_of_node n)
  | None -> Error Zerror.ZNONODE

let exists t path =
  Option.map stat_of_node (Hashtbl.find_opt t.nodes path)

let children t path =
  match Hashtbl.find_opt t.nodes path with
  | None -> Error Zerror.ZNONODE
  | Some n ->
    let names = Hashtbl.fold (fun name () acc -> name :: acc) n.children [] in
    Ok (List.sort String.compare names)

let children_with_data t path =
  match Hashtbl.find_opt t.nodes path with
  | None -> Error Zerror.ZNONODE
  | Some n ->
    let names = Hashtbl.fold (fun name () acc -> name :: acc) n.children [] in
    Ok
      (List.filter_map
         (fun name ->
           match Hashtbl.find_opt t.nodes (Zpath.concat path name) with
           | Some child -> Some (name, child.data, stat_of_node child)
           | None -> None)
         (List.sort String.compare names))

(* {2 Watches} *)

let add_watch table path callback =
  match Hashtbl.find_opt table path with
  | Some callbacks -> callbacks := callback :: !callbacks
  | None -> Hashtbl.replace table path (ref [ callback ])

let watch_data t path callback = add_watch t.data_watches path callback
let watch_children t path callback = add_watch t.child_watches path callback

(* Remove every registration of [callback] (by physical identity — the
   client re-registers the same closure on retries, so one cancel must
   clear all duplicates) on [path]. Returns how many were removed. *)
let cancel_watch table path callback =
  match Hashtbl.find_opt table path with
  | None -> 0
  | Some callbacks ->
    let kept = List.filter (fun cb -> cb != callback) !callbacks in
    let removed = List.length !callbacks - List.length kept in
    (match kept with
     | [] -> Hashtbl.remove table path
     | _ -> callbacks := kept);
    removed

let cancel_data_watch t path callback = cancel_watch t.data_watches path callback
let cancel_child_watch t path callback = cancel_watch t.child_watches path callback

let count_watch_table table =
  Hashtbl.fold (fun _ cbs acc -> acc + List.length !cbs) table 0

let watch_count t =
  count_watch_table t.data_watches + count_watch_table t.child_watches

(* Collect the fire-once watches triggered by an event; they are removed
   from the registry now and invoked only after the whole transaction
   commits. *)
let take_watches table path =
  match Hashtbl.find_opt table path with
  | None -> []
  | Some callbacks ->
    Hashtbl.remove table path;
    List.rev !callbacks

(* Each pending firing remembers its registry and path so that an aborted
   transaction can re-arm the watch instead of silently consuming it. *)
let trigger acc table kind path =
  match take_watches table path with
  | [] -> acc
  | callbacks ->
    let event = { kind; path } in
    List.fold_left (fun acc cb -> (table, cb, event) :: acc) acc callbacks

(* {2 Watch migration}

   When a replica resyncs from a snapshot it swaps in a freshly
   deserialized tree, which carries no watch registries. The watches the
   old tree held belong to still-connected sessions, so they must survive
   the swap: a watch whose node is identical in both states re-arms on
   the new tree; a watch whose node changed while the replica was behind
   fires right away with the event the session missed — ZooKeeper's
   setWatches-on-reconnect behaviour. *)

let drain_watch_table table =
  let entries = Hashtbl.fold (fun path cbs acc -> (path, !cbs) :: acc) table [] in
  Hashtbl.reset table;
  entries

let migrate_watches ~from ~into =
  let fire callbacks kind path =
    let event = { kind; path } in
    List.iter (fun cb -> cb event) (List.rev callbacks)
  in
  (* callbacks are stored newest-first; re-arming oldest-first rebuilds
     the same internal order on the destination table *)
  let rearm table path callbacks =
    List.iter (fun cb -> add_watch table path cb) (List.rev callbacks)
  in
  List.iter
    (fun (path, callbacks) ->
      match Hashtbl.find_opt from.nodes path, Hashtbl.find_opt into.nodes path with
      | None, None -> rearm into.data_watches path callbacks
      | Some o, Some n when o.mzxid = n.mzxid && o.version = n.version ->
        rearm into.data_watches path callbacks
      | None, Some _ -> fire callbacks Node_created path
      | Some _, None -> fire callbacks Node_deleted path
      | Some _, Some _ -> fire callbacks Node_data_changed path)
    (drain_watch_table from.data_watches);
  List.iter
    (fun (path, callbacks) ->
      match Hashtbl.find_opt from.nodes path, Hashtbl.find_opt into.nodes path with
      | None, None -> rearm into.child_watches path callbacks
      | Some o, Some n when o.pzxid = n.pzxid && o.cversion = n.cversion ->
        rearm into.child_watches path callbacks
      | Some _, None -> fire callbacks Node_deleted path
      | None, Some _ | Some _, Some _ -> fire callbacks Node_children_changed path)
    (drain_watch_table from.child_watches)

(* {2 Ownership-flip revocation}

   When a directory's placement migrates to another shard, watches this
   tree still holds for it will never fire again from here — the writes
   they wait for now commit elsewhere. The reshard controller fires
   them on the old owner right before the flip: child watches on the
   directory itself (a cached listing, possibly of an {e empty}
   directory the retire step touched nothing in), and data watches on
   its immediate children — including watches on {e absent} child
   paths, which back clients' cached negative entries (the registries
   accept absent paths, so only a table sweep finds them). *)

let fire_child_watches t path =
  match take_watches t.child_watches path with
  | [] -> 0
  | callbacks ->
    let event = { kind = Node_children_changed; path } in
    List.iter (fun cb -> cb event) callbacks;
    List.length callbacks

let fire_data_watches_under t ~dir =
  let paths =
    Hashtbl.fold
      (fun path _ acc ->
        if path <> dir && Zpath.parent path = dir then path :: acc else acc)
      t.data_watches []
  in
  List.fold_left
    (fun acc path ->
      match take_watches t.data_watches path with
      | [] -> acc
      | callbacks ->
        let event = { kind = Node_data_changed; path } in
        List.iter (fun cb -> cb event) callbacks;
        acc + List.length callbacks)
    0
    (List.sort String.compare paths)

(* {2 Ephemeral bookkeeping} *)

let record_ephemeral t ~owner path =
  if owner <> 0L then begin
    let set =
      match Hashtbl.find_opt t.ephemerals owner with
      | Some set -> set
      | None ->
        let set = Hashtbl.create 4 in
        Hashtbl.replace t.ephemerals owner set;
        set
    in
    Hashtbl.replace set path ()
  end

let forget_ephemeral t ~owner path =
  if owner <> 0L then
    match Hashtbl.find_opt t.ephemerals owner with
    | Some set ->
      Hashtbl.remove set path;
      if Hashtbl.length set = 0 then Hashtbl.remove t.ephemerals owner
    | None -> ()

let ephemerals_of t ~owner =
  match Hashtbl.find_opt t.ephemerals owner with
  | None -> []
  | Some set ->
    let paths = Hashtbl.fold (fun path () acc -> path :: acc) set [] in
    (* deepest first so children are deleted before parents *)
    List.sort (fun a b -> compare (Zpath.depth b) (Zpath.depth a)) paths

(* {2 Transactional application}

   Each op is validated and applied immediately; an undo closure is pushed
   so that a later op's failure rolls the whole transaction back. Watch
   events accumulate and fire only on overall success. *)

let node_bytes path (n : node) =
  znode_overhead_bytes + String.length path + String.length n.data

let apply_create t ~zxid ~time ~undo ~events
    ~path ~data ~ephemeral_owner ~sequential =
  match Zpath.validate path with
  | Error e -> Error e
  | Ok () ->
    if path = "/" then Error Zerror.ZNODEEXISTS
    else begin
      let parent_path = Zpath.parent path in
      match Hashtbl.find_opt t.nodes parent_path with
      | None -> Error Zerror.ZNONODE
      | Some parent when parent.ephemeral_owner <> 0L ->
        Error Zerror.ZNOCHILDRENFOREPHEMERALS
      | Some parent ->
        let name =
          if sequential then
            Zpath.sequential_name (Zpath.basename path) parent.seq_counter
          else Zpath.basename path
        in
        (* non-sequential: [concat parent name] would rebuild [path]
           byte for byte — reuse it instead of allocating a copy *)
        let actual_path =
          if sequential then Zpath.concat parent_path name else path
        in
        if Hashtbl.mem t.nodes actual_path then Error Zerror.ZNODEEXISTS
        else begin
          let node = make_node ~zxid ~time ~data ~ephemeral_owner in
          let saved_cversion = parent.cversion
          and saved_pzxid = parent.pzxid
          and saved_seq = parent.seq_counter in
          Hashtbl.replace t.nodes actual_path node;
          Hashtbl.replace parent.children name ();
          parent.cversion <- parent.cversion + 1;
          parent.seq_counter <- parent.seq_counter + 1;
          parent.pzxid <- zxid;
          record_ephemeral t ~owner:ephemeral_owner actual_path;
          t.bytes <- t.bytes + node_bytes actual_path node;
          (match undo with
           | None -> ()
           | Some undo ->
             undo := (fun () ->
                 t.bytes <- t.bytes - node_bytes actual_path node;
                 forget_ephemeral t ~owner:ephemeral_owner actual_path;
                 Hashtbl.remove t.nodes actual_path;
                 Hashtbl.remove parent.children name;
                 parent.cversion <- saved_cversion;
                 parent.pzxid <- saved_pzxid;
                 parent.seq_counter <- saved_seq)
               :: !undo);
          events :=
            trigger
              (trigger !events t.data_watches Node_created actual_path)
              t.child_watches Node_children_changed parent_path;
          Ok (Txn.Created actual_path)
        end
    end

let apply_delete t ~zxid ~time:_ ~undo ~events ~path ~expected_version =
  if path = "/" then Error Zerror.ZBADARGUMENTS
  else
    match Hashtbl.find_opt t.nodes path with
    | None -> Error Zerror.ZNONODE
    | Some node ->
      if expected_version >= 0 && expected_version <> node.version then
        Error Zerror.ZBADVERSION
      else if Hashtbl.length node.children > 0 then Error Zerror.ZNOTEMPTY
      else begin
        let parent_path = Zpath.parent path in
        let name = Zpath.basename path in
        (* The root always exists, so a live node's parent is present. *)
        let parent = Hashtbl.find t.nodes parent_path in
        let saved_cversion = parent.cversion and saved_pzxid = parent.pzxid in
        Hashtbl.remove t.nodes path;
        Hashtbl.remove parent.children name;
        parent.cversion <- parent.cversion + 1;
        parent.pzxid <- zxid;
        forget_ephemeral t ~owner:node.ephemeral_owner path;
        t.bytes <- t.bytes - node_bytes path node;
        (match undo with
         | None -> ()
         | Some undo ->
           undo := (fun () ->
               t.bytes <- t.bytes + node_bytes path node;
               record_ephemeral t ~owner:node.ephemeral_owner path;
               Hashtbl.replace t.nodes path node;
               Hashtbl.replace parent.children name ();
               parent.cversion <- saved_cversion;
               parent.pzxid <- saved_pzxid)
             :: !undo);
        events :=
          trigger
            (trigger
               (trigger !events t.data_watches Node_deleted path)
               t.child_watches Node_deleted path)
            t.child_watches Node_children_changed parent_path;
        Ok Txn.Deleted
      end

let apply_set t ~zxid ~time ~undo ~events ~path ~data ~expected_version =
  match Hashtbl.find_opt t.nodes path with
  | None -> Error Zerror.ZNONODE
  | Some node ->
    if expected_version >= 0 && expected_version <> node.version then
      Error Zerror.ZBADVERSION
    else begin
      let saved_data = node.data
      and saved_version = node.version
      and saved_mzxid = node.mzxid
      and saved_mtime = node.mtime in
      t.bytes <- t.bytes + String.length data - String.length node.data;
      node.data <- data;
      node.version <- node.version + 1;
      node.mzxid <- zxid;
      node.mtime <- time;
      (match undo with
       | None -> ()
       | Some undo ->
         undo := (fun () ->
             t.bytes <- t.bytes + String.length saved_data
                        - String.length node.data;
             node.data <- saved_data;
             node.version <- saved_version;
             node.mzxid <- saved_mzxid;
             node.mtime <- saved_mtime)
           :: !undo);
      events := trigger !events t.data_watches Node_data_changed path;
      Ok Txn.Data_set
    end

let apply_check t ~path ~expected_version =
  match Hashtbl.find_opt t.nodes path with
  | None -> Error Zerror.ZNONODE
  | Some node ->
    if expected_version >= 0 && expected_version <> node.version then
      Error Zerror.ZBADVERSION
    else Ok Txn.Checked

let apply t ~zxid ~time txn =
  if zxid <= t.last_zxid then
    invalid_arg
      (Printf.sprintf "Ztree.apply: zxid %Ld not beyond %Ld" zxid t.last_zxid);
  (* A failed op never mutates the tree, so a single-op transaction has
     nothing to roll back: skip allocating its undo closure entirely.
     Multi-op transactions record one closure per applied op. *)
  let undo_log = ref [] in
  let undo = match txn with [ _ ] -> None | _ -> Some undo_log in
  let events = ref [] in
  let rec run acc = function
    | [] -> Ok (List.rev acc)
    | op :: rest ->
      let result =
        match op with
        | Txn.Create { path; data; ephemeral_owner; sequential } ->
          apply_create t ~zxid ~time ~undo ~events ~path ~data
            ~ephemeral_owner ~sequential
        | Txn.Delete { path; expected_version } ->
          apply_delete t ~zxid ~time ~undo ~events ~path ~expected_version
        | Txn.Set_data { path; data; expected_version } ->
          apply_set t ~zxid ~time ~undo ~events ~path ~data ~expected_version
        | Txn.Check { path; expected_version } ->
          apply_check t ~path ~expected_version
      in
      (match result with
       | Ok item -> run (item :: acc) rest
       | Error _ as e -> e)
  in
  match run [] txn with
  | Ok items ->
    t.last_zxid <- zxid;
    (* Fire watches in registration/processing order, post-commit. *)
    List.iter (fun (_, cb, event) -> cb event) (List.rev !events);
    Ok items
  | Error _ as e ->
    List.iter (fun rollback -> rollback ()) !undo_log;
    (* re-arm the watches the aborted ops had taken *)
    List.iter (fun (table, cb, event) -> add_watch table event.path cb) !events;
    e

(* {2 Introspection} *)

let node_count t = Hashtbl.length t.nodes
let last_zxid t = t.last_zxid
let resident_bytes t = t.bytes + znode_overhead_bytes (* root *)

let equal_state a b =
  Hashtbl.length a.nodes = Hashtbl.length b.nodes
  && Hashtbl.fold
       (fun path (n : node) acc ->
         acc
         &&
         match Hashtbl.find_opt b.nodes path with
         | None -> false
         | Some m ->
           n.data = m.data && n.version = m.version && n.cversion = m.cversion
           && Hashtbl.length n.children = Hashtbl.length m.children)
       a.nodes true

let fingerprint t =
  Hashtbl.fold
    (fun path (n : node) acc ->
      acc lxor Hashtbl.hash (path, n.data, n.version, n.cversion))
    t.nodes 0

(* {2 Snapshots}

   Length-prefixed fields, so paths and data need no escaping:
     ZTREEv1 <last_zxid>\n
     <n>\n
     then per node (sorted by path for deterministic output):
     <len>:<path><len>:<data> v cv sq cz mz pz <ctime-bits> <mtime-bits> eo\n
   Children sets are reconstructed from the node paths themselves. *)

let serialize t =
  let buf = Buffer.create (4096 + (64 * Hashtbl.length t.nodes)) in
  Buffer.add_string buf (Printf.sprintf "ZTREEv1 %Ld\n" t.last_zxid);
  Buffer.add_string buf (Printf.sprintf "%d\n" (Hashtbl.length t.nodes));
  let paths = Hashtbl.fold (fun path _ acc -> path :: acc) t.nodes [] in
  let add_str s =
    Buffer.add_string buf (string_of_int (String.length s));
    Buffer.add_char buf ':';
    Buffer.add_string buf s
  in
  List.iter
    (fun path ->
      let n = Hashtbl.find t.nodes path in
      add_str path;
      add_str n.data;
      Buffer.add_string buf
        (Printf.sprintf " %d %d %d %Ld %Ld %Ld %Lx %Lx %Ld\n" n.version n.cversion
           n.seq_counter n.czxid n.mzxid n.pzxid (Int64.bits_of_float n.ctime)
           (Int64.bits_of_float n.mtime) n.ephemeral_owner))
    (List.sort String.compare paths);
  Buffer.contents buf

exception Bad_snapshot of string

let deserialize s =
  let pos = ref 0 in
  let fail msg = raise (Bad_snapshot msg) in
  let read_line () =
    match String.index_from_opt s !pos '\n' with
    | None -> fail "truncated"
    | Some i ->
      let line = String.sub s !pos (i - !pos) in
      pos := i + 1;
      line
  in
  let read_str () =
    match String.index_from_opt s !pos ':' with
    | None -> fail "missing length prefix"
    | Some i ->
      let len =
        match int_of_string_opt (String.sub s !pos (i - !pos)) with
        | Some len when len >= 0 && i + 1 + len <= String.length s -> len
        | Some _ | None -> fail "bad length prefix"
      in
      let str = String.sub s (i + 1) len in
      pos := i + 1 + len;
      str
  in
  try
    let header = read_line () in
    let last_zxid =
      match String.split_on_char ' ' header with
      | [ "ZTREEv1"; zxid ] ->
        (match Int64.of_string_opt zxid with
         | Some z -> z
         | None -> fail "bad zxid")
      | _ -> fail "bad header"
    in
    let count =
      match int_of_string_opt (read_line ()) with
      | Some n when n >= 1 -> n
      | Some _ | None -> fail "bad node count"
    in
    let t =
      { nodes = Hashtbl.create (2 * count);
        data_watches = Hashtbl.create 64;
        child_watches = Hashtbl.create 64;
        ephemerals = Hashtbl.create 16;
        last_zxid;
        bytes = 0 }
    in
    for _ = 1 to count do
      let path = read_str () in
      let data = read_str () in
      let fields = String.split_on_char ' ' (read_line ()) in
      match fields with
      | [ ""; v; cv; sq; cz; mz; pz; ct; mt; eo ] ->
        let int_field name x =
          match int_of_string_opt x with Some v -> v | None -> fail ("bad " ^ name)
        in
        let i64_field name x =
          match Int64.of_string_opt x with Some v -> v | None -> fail ("bad " ^ name)
        in
        let node =
          { data;
            children = Hashtbl.create 2;
            version = int_field "version" v;
            cversion = int_field "cversion" cv;
            seq_counter = int_field "seq" sq;
            czxid = i64_field "czxid" cz;
            mzxid = i64_field "mzxid" mz;
            pzxid = i64_field "pzxid" pz;
            ctime = Int64.float_of_bits (i64_field "ctime" ("0x" ^ ct));
            mtime = Int64.float_of_bits (i64_field "mtime" ("0x" ^ mt));
            ephemeral_owner = i64_field "owner" eo }
        in
        if Hashtbl.mem t.nodes path then fail "duplicate path";
        Hashtbl.replace t.nodes path node;
        record_ephemeral t ~owner:node.ephemeral_owner path;
        t.bytes <- t.bytes + node_bytes path node
      | _ -> fail "bad node record"
    done;
    if not (Hashtbl.mem t.nodes "/") then fail "no root";
    (* match live accounting: the root's overhead and path are excluded
       from [bytes] (counted once in [resident_bytes]), its data is not *)
    t.bytes <- t.bytes - (znode_overhead_bytes + 1);
    (* rebuild children sets from paths *)
    Hashtbl.iter
      (fun path _node ->
        if path <> "/" then begin
          match Hashtbl.find_opt t.nodes (Zpath.parent path) with
          | Some parent -> Hashtbl.replace parent.children (Zpath.basename path) ()
          | None -> fail ("dangling node " ^ path)
        end)
      t.nodes;
    Ok t
  with Bad_snapshot msg -> Error ("Ztree.deserialize: " ^ msg)
