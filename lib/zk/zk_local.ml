type t = {
  tree : Ztree.t;
  clock : unit -> float;
  leases : Lease.t;
  mutable next_zxid : int64;
  mutable next_session : int64;
}

let create ?(clock = fun () -> 0.) ?(lease_ttl = 5.0) () =
  let tree = Ztree.create () in
  { tree;
    clock;
    leases = Lease.create ~now:clock ~ttl:lease_ttl;
    next_zxid = 1L;
    next_session = 1L }

let tree t = t.tree
let leases t = t.leases
let server_resident_bytes t = Memory_model.server_resident_bytes t.tree

(* Ownership flip (online resharding): [dir]'s contents now live on
   another backend, so coherence state parked here for it is stale. *)
let revoke_dir t dir =
  ignore (Ztree.fire_data_watches_under t.tree ~dir);
  ignore (Ztree.fire_child_watches t.tree dir);
  let children =
    match Ztree.children t.tree dir with
    | Ok names -> List.map (Zpath.concat dir) names
    | Error _ -> []
  in
  ignore (Lease.revoke_dir t.leases ~children dir)

let submit t txn =
  let zxid = t.next_zxid in
  match Ztree.apply t.tree ~zxid ~time:(t.clock ()) txn with
  | Ok results as ok ->
    t.next_zxid <- Int64.add zxid 1L;
    Lease.revoke_txn t.leases txn results;
    ok
  | Error _ as e -> e

let session t =
  let session_id = t.next_session in
  t.next_session <- Int64.add session_id 1L;
  let create ?(ephemeral = false) ?(sequential = false) path ~data =
    let owner = if ephemeral then session_id else 0L in
    match submit t [ Zk_client.create_op ~ephemeral:owner ~sequential path ~data ] with
    | Ok [ Txn.Created actual ] -> Ok actual
    | Ok _ -> Error Zerror.ZBADARGUMENTS
    | Error _ as e -> e
  in
  let set ?(version = -1) path ~data =
    Result.map ignore (submit t [ Zk_client.set_op ~version path ~data ])
  in
  let delete ?(version = -1) path =
    Result.map ignore (submit t [ Zk_client.delete_op ~version path ])
  in
  let close () =
    Lease.drop_session t.leases session_id;
    List.iter
      (fun path -> ignore (submit t [ Zk_client.delete_op path ]))
      (Ztree.ephemerals_of t.tree ~owner:session_id)
  in
  (* One revocation callback per session; lease reads route through it.
     The indirection lets the client install its handler after the
     handle is built. *)
  let invalidation = ref (fun (_ : Ztree.watch_event) -> ()) in
  let notify event = !invalidation event in
  let lease dir = Lease.grant t.leases ~session:session_id ~dir ~notify in
  { Zk_client.create;
    get = (fun path -> Ztree.get t.tree path);
    set;
    delete;
    exists = (fun path -> Ok (Ztree.exists t.tree path));
    children = (fun path -> Ztree.children t.tree path);
    children_with_data = (fun path -> Ztree.children_with_data t.tree path);
    children_with_data_watch =
      (fun path cb ->
        Ztree.watch_children t.tree path cb;
        match Ztree.children_with_data t.tree path with
        | Ok entries ->
          List.iter
            (fun (name, _, _) ->
              Ztree.watch_data t.tree (Zpath.concat path name) cb)
            entries;
          Ok entries
        | Error _ as e -> e);
    multi = submit t;
    multi_async = (fun txn callback -> callback (submit t txn));
    watch_data = (fun path cb -> Ztree.watch_data t.tree path cb);
    watch_children = (fun path cb -> Ztree.watch_children t.tree path cb);
    get_watch =
      (fun path cb ->
        Ztree.watch_data t.tree path cb;
        Ztree.get t.tree path);
    children_watch =
      (fun path cb ->
        Ztree.watch_children t.tree path cb;
        Ztree.children t.tree path);
    lease_get =
      (fun path ->
        let deadline = lease (Zpath.parent path) in
        match Ztree.get t.tree path with
        | Ok (data, stat) -> Ok (Some (data, stat), deadline)
        | Error Zerror.ZNONODE -> Ok (None, deadline)
        | Error _ as e -> e);
    lease_children =
      (fun path ->
        match Ztree.children t.tree path with
        | Ok names -> Ok (names, lease path)
        | Error _ as e -> e);
    lease_children_with_data =
      (fun path ->
        match Ztree.children_with_data t.tree path with
        | Ok entries -> Ok (entries, lease path)
        | Error _ as e -> e);
    set_invalidation = (fun cb -> invalidation := cb);
    release_data_watch =
      (fun path cb -> ignore (Ztree.cancel_data_watch t.tree path cb));
    release_child_watch =
      (fun path cb -> ignore (Ztree.cancel_child_watch t.tree path cb));
    sync = (fun () -> ());
    close;
    session_id }
