(** The znode data tree — the state machine each replica applies.

    Mutations enter only through {!apply}, which executes one {!Txn.t}
    atomically (all-or-nothing) at a given zxid, exactly as a ZooKeeper
    replica applies committed proposals. Reads ({!get}, {!exists},
    {!children}) are local and never modify the tree.

    Semantics follow ZooKeeper: per-node data version / child version /
    czxid / mzxid / pzxid bookkeeping, 10-digit sequential-node suffixes
    derived from the parent's child-sequence counter, ephemeral nodes that
    cannot have children, and fire-once data / child watches. *)

type t

type stat = {
  czxid : int64;
  mzxid : int64;
  pzxid : int64;
  ctime : float;
  mtime : float;
  version : int;           (** data version *)
  cversion : int;          (** child-list version *)
  ephemeral_owner : int64; (** 0 for persistent nodes *)
  data_length : int;
  num_children : int;
}

type event_kind =
  | Node_created
  | Node_deleted
  | Node_data_changed
  | Node_children_changed

type watch_event = { kind : event_kind; path : string }

val create : unit -> t

(** {2 Replicated mutation} *)

(** [apply t ~zxid ~time txn] applies [txn] atomically. On error the tree
    is unchanged and no watch fires. [zxid] must be strictly increasing
    across calls. *)
val apply :
  t -> zxid:int64 -> time:float -> Txn.t ->
  (Txn.result_item list, Zerror.t) result

(** {2 Local reads} *)

val get : t -> string -> (string * stat, Zerror.t) result
val exists : t -> string -> stat option
val children : t -> string -> (string list, Zerror.t) result

(** [children_with_data t path] lists [path]'s children as
    [(name, data, stat)] triples sorted by name — the server-side
    aggregation behind a one-round-trip readdir. *)
val children_with_data :
  t -> string -> ((string * string * stat) list, Zerror.t) result

(** {2 Watches} *)

(** Register a fire-once data watch on [path] (legal even if the node does
    not exist yet — it then fires on creation, like an exists-watch). *)
val watch_data : t -> string -> (watch_event -> unit) -> unit

(** Register a fire-once child watch on an existing node. *)
val watch_children : t -> string -> (watch_event -> unit) -> unit

(** [cancel_data_watch t path cb] removes every registration of [cb]
    (compared by physical identity — client retries re-register the same
    closure, so one cancel clears all duplicates) from [path]'s data-watch
    list. Returns the number of registrations removed. The watch-lifecycle
    counterpart of fire-once consumption: clients use it to release
    watches for entries they failed to cache or have evicted. *)
val cancel_data_watch : t -> string -> (watch_event -> unit) -> int

(** [cancel_child_watch t path cb] — {!cancel_data_watch} for the
    child-watch registry. *)
val cancel_child_watch : t -> string -> (watch_event -> unit) -> int

(** Total armed watch registrations (data + child) — the server-side
    footprint the cache's watch lifecycle must keep bounded. *)
val watch_count : t -> int

(** [migrate_watches ~from ~into] carries [from]'s armed watch registries
    over to [into] — the setWatches-on-reconnect step of a snapshot-based
    resync, where the receiving replica swaps in a deserialized tree that
    has no watches. A watch whose node is unchanged between the two
    states (same mzxid/version for data watches, same pzxid/cversion for
    child watches) re-arms on [into]; a watch whose node was created,
    deleted, or modified in the gap fires immediately with the missed
    event. [from]'s registries are emptied. *)
val migrate_watches : from:t -> into:t -> unit

(** [fire_child_watches t dir] consumes and fires (as
    [Node_children_changed]) every armed child watch on [dir]. Used on
    an ownership flip: listings of a migrated directory will never
    again change on this tree, so watches waiting here are stale.
    Returns the number of callbacks fired. *)
val fire_child_watches : t -> string -> int

(** [fire_data_watches_under t ~dir] consumes and fires (as
    [Node_data_changed]) every armed data watch on an immediate child
    path of [dir] — including watches on {e absent} children, which
    back cached negative entries. Deterministic (paths are visited in
    sorted order). Returns the number of callbacks fired. *)
val fire_data_watches_under : t -> dir:string -> int

(** {2 Sessions} *)

(** All paths currently owned by [owner], deepest first (safe to delete in
    order). *)
val ephemerals_of : t -> owner:int64 -> string list

(** {2 Introspection} *)

val node_count : t -> int
val last_zxid : t -> int64

(** Modelled heap bytes consumed by the tree (structures + names + data).
    The server-process figure for Fig. 11 multiplies this by the JVM
    factor in {!Memory_model}. *)
val resident_bytes : t -> int

(** Deep structural equality of two trees (paths, data, versions) — used
    by replica-agreement tests. Watches are ignored. *)
val equal_state : t -> t -> bool

(** [fingerprint t] — order-independent digest of (path, data, version)
    triples, for cheap agreement checks. *)
val fingerprint : t -> int

(** {2 Snapshots}

    ZooKeeper servers periodically checkpoint the in-memory database to
    disk and fuzzy-restore from snapshot + log replay (§IV-I: "it can
    tolerate the failure of all servers by restarting them later"). *)

(** Serialize the whole tree (nodes, data, stats, sequence counters) to a
    self-contained byte string. Watches are not captured. *)
val serialize : t -> string

(** Rebuild a tree from [serialize] output. *)
val deserialize : string -> (t, string) result
