type t = {
  replicas : int;
  node_ids : int list;
  (* ring points sorted by position *)
  points : (int * int) array;  (* (position, node id) *)
}

let point_of node replica = Md5.to_int (Md5.digest (Printf.sprintf "node:%d:%d" node replica))

let build ~replicas node_ids =
  let points =
    List.concat_map
      (fun node -> List.init replicas (fun r -> (point_of node r, node)))
      node_ids
  in
  let points = Array.of_list points in
  Array.sort compare points;
  { replicas; node_ids = List.sort_uniq compare node_ids; points }

let create ?(replicas = 64) node_ids =
  if node_ids = [] then invalid_arg "Consistent_hash.create: no nodes";
  if replicas < 1 then invalid_arg "Consistent_hash.create: replicas < 1";
  if List.length (List.sort_uniq compare node_ids) <> List.length node_ids then
    invalid_arg "Consistent_hash.create: duplicate node ids";
  build ~replicas node_ids

let nodes t = t.node_ids

let lookup t key =
  let h = Md5.to_int (Md5.digest key) in
  let points = t.points in
  let n = Array.length points in
  (* first point with position >= h, wrapping around *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if fst points.(mid) < h then search (mid + 1) hi else search lo mid
  in
  let i = search 0 n in
  snd points.(if i = n then 0 else i)

let add_node t id =
  if List.mem id t.node_ids then invalid_arg "Consistent_hash.add_node: duplicate";
  build ~replicas:t.replicas (id :: t.node_ids)

let remove_node t id =
  if not (List.mem id t.node_ids) then invalid_arg "Consistent_hash.remove_node: missing";
  match List.filter (fun n -> n <> id) t.node_ids with
  | [] -> invalid_arg "Consistent_hash.remove_node: would empty the ring"
  | rest -> build ~replicas:t.replicas rest

let relocated ~before ~after keys =
  match keys with
  | [] -> 0.
  | _ ->
    let moved =
      List.fold_left
        (fun acc key -> if lookup before key <> lookup after key then acc + 1 else acc)
        0 keys
    in
    float_of_int moved /. float_of_int (List.length keys)
