(* RFC 1321. State is four 32-bit words; input is consumed in 64-byte
   blocks, little-endian. *)

type ctx = {
  mutable a : int32;
  mutable b : int32;
  mutable c : int32;
  mutable d : int32;
  buf : Bytes.t;          (* partial block *)
  mutable buf_len : int;
  mutable total : int64;  (* bytes absorbed *)
  x : int32 array;        (* decoded block scratch *)
}

(* Per-round left-rotation amounts. *)
let s =
  [| 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22;
     5;  9; 14; 20; 5;  9; 14; 20; 5;  9; 14; 20; 5;  9; 14; 20;
     4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23;
     6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21 |]

(* K[i] = floor(2^32 * |sin(i + 1)|). *)
let k =
  Array.init 64 (fun i ->
      Int64.to_int32
        (Int64.of_float (Float.of_int 4294967296 *. Float.abs (sin (float_of_int (i + 1))))))

let init () =
  { a = 0x67452301l;
    b = 0xefcdab89l;
    c = 0x98badcfel;
    d = 0x10325476l;
    buf = Bytes.create 64;
    buf_len = 0;
    total = 0L;
    x = Array.make 16 0l }

let rotl x n = Int32.logor (Int32.shift_left x n) (Int32.shift_right_logical x (32 - n))

let process_block ctx block off =
  let x = ctx.x in
  for i = 0 to 15 do
    let base = off + (4 * i) in
    let byte j = Int32.of_int (Char.code (Bytes.get block (base + j))) in
    x.(i) <-
      Int32.logor (byte 0)
        (Int32.logor
           (Int32.shift_left (byte 1) 8)
           (Int32.logor (Int32.shift_left (byte 2) 16) (Int32.shift_left (byte 3) 24)))
  done;
  let a = ref ctx.a and b = ref ctx.b and c = ref ctx.c and d = ref ctx.d in
  for i = 0 to 63 do
    let f, g =
      if i < 16 then (Int32.logor (Int32.logand !b !c) (Int32.logand (Int32.lognot !b) !d), i)
      else if i < 32 then
        (Int32.logor (Int32.logand !d !b) (Int32.logand (Int32.lognot !d) !c),
         ((5 * i) + 1) mod 16)
      else if i < 48 then (Int32.logxor !b (Int32.logxor !c !d), ((3 * i) + 5) mod 16)
      else (Int32.logxor !c (Int32.logor !b (Int32.lognot !d)), (7 * i) mod 16)
    in
    let tmp = !d in
    d := !c;
    c := !b;
    let sum = Int32.add (Int32.add !a f) (Int32.add k.(i) x.(g)) in
    b := Int32.add !b (rotl sum s.(i));
    a := tmp
  done;
  ctx.a <- Int32.add ctx.a !a;
  ctx.b <- Int32.add ctx.b !b;
  ctx.c <- Int32.add ctx.c !c;
  ctx.d <- Int32.add ctx.d !d

let update ctx ?(off = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - off in
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Md5.update: bad range";
  ctx.total <- Int64.add ctx.total (Int64.of_int len);
  let pos = ref off and remaining = ref len in
  (* top up a partial block first *)
  if ctx.buf_len > 0 then begin
    let take = min !remaining (64 - ctx.buf_len) in
    Bytes.blit_string s !pos ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if ctx.buf_len = 64 then begin
      process_block ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while !remaining >= 64 do
    Bytes.blit_string s !pos ctx.buf 0 64;
    process_block ctx ctx.buf 0;
    pos := !pos + 64;
    remaining := !remaining - 64
  done;
  if !remaining > 0 then begin
    Bytes.blit_string s !pos ctx.buf 0 !remaining;
    ctx.buf_len <- !remaining
  end

let finalize ctx =
  let bit_len = Int64.mul ctx.total 8L in
  (* padding: 0x80, zeros, then the 64-bit little-endian bit count *)
  let pad_len =
    let rem = (ctx.buf_len + 1 + 8) mod 64 in
    if rem = 0 then 1 else 1 + (64 - rem)
  in
  let padding = Bytes.make (pad_len + 8) '\000' in
  Bytes.set padding 0 '\x80';
  for i = 0 to 7 do
    Bytes.set padding (pad_len + i)
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bit_len (8 * i)) 0xFFL)))
  done;
  (* bypass the length accounting: feed the padding directly *)
  let feed = Bytes.to_string padding in
  let total_before = ctx.total in
  update ctx feed;
  ctx.total <- total_before;
  let out = Bytes.create 16 in
  let put i (w : int32) =
    for j = 0 to 3 do
      Bytes.set out ((4 * i) + j)
        (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical w (8 * j)) 0xFFl)))
    done
  in
  put 0 ctx.a;
  put 1 ctx.b;
  put 2 ctx.c;
  put 3 ctx.d;
  Bytes.to_string out

let digest s =
  let ctx = init () in
  update ctx s;
  finalize ctx

let hex_of_raw raw =
  let buf = Buffer.create 32 in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) raw;
  Buffer.contents buf

let hex s = hex_of_raw (digest s)

let to_int raw =
  let byte i = Char.code raw.[i] in
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor byte i
  done;
  !v land max_int
