(* Online resharding: grow (split) or shrink (merge) a sharded
   deployment's shard count while client traffic flows.

   [prepare_reshard] commits the new ring and returns the bounded-load
   remainder — the directory keys whose owner changes. Each key then
   moves through a four-step state machine, one key at a time:

     prepare  [begin_migration]: routed writes to the key park at the
              router; reads still go to the old owner. A short drain
              lets writes issued before the barrier commit on src.
     copy     the key's children (one directory's contents — the unit
              the parent-co-location invariant keeps on one shard) are
              bulk-read from src and created on dst; a create that hits
              an existing dst node is a stub promotion (set data).
     flip     [freeze_migration]: reads park too; src is synced and the
              listing re-read — any straggler that landed between copy
              and freeze is reconciled onto dst. Then the old owner's
              coherence state for the directory (armed watches, lease
              interests) is revoked — it would otherwise never fire
              again — and [finish_migration] flips the placement,
              releasing every parked op against the new owner.
     retire   src's copies are removed: a child with children still on
              src (its own kids key did not move) demotes to a stub;
              a childless one is deleted; src's key node itself is
              deleted once it is a childless stub.

   Stub accounting stays exact through every step (creates on dst count
   stub_creates for ensure-chain nodes, promotions count stub_deletes,
   demotions count stub_creates), so {!Shard_router.logical_population}
   is an invariant of the whole procedure — the census check the
   reshard experiment gates on.

   Keys are processed in batches only to amortize the drain sleep; the
   copy/flip/retire of each key completes before the next key starts,
   so at any instant at most one directory is in the ambiguous window,
   and [Shard_router.home_shard] (consulted to distinguish primaries
   from stubs on src) reflects physical reality. *)

type stats = {
  mutable shards_before : int;
  mutable shards_after : int;
  mutable keys_total : int;      (* keys assigned when the plan was cut *)
  mutable keys_migrated : int;   (* the bounded-load remainder *)
  mutable batches : int;
  mutable znodes_copied : int;   (* fresh creates on dst *)
  mutable znodes_retired : int;  (* deletes on src *)
  mutable stubs_promoted : int;  (* dst stub became the primary *)
  mutable stubs_demoted : int;   (* src primary became a stub *)
  mutable reconciled : int;      (* straggler fixes after freeze *)
  mutable ephemerals_flattened : int;
  mutable errors : int;          (* unexpected per-node failures *)
}

let fresh_stats () =
  { shards_before = 0;
    shards_after = 0;
    keys_total = 0;
    keys_migrated = 0;
    batches = 0;
    znodes_copied = 0;
    znodes_retired = 0;
    stubs_promoted = 0;
    stubs_demoted = 0;
    reconciled = 0;
    ephemerals_flattened = 0;
    errors = 0 }

let pp ppf s =
  Format.fprintf ppf
    "@[<v>shards %d -> %d@,keys %d migrated of %d (%d batches)@,\
     copied %d retired %d promoted %d demoted %d reconciled %d@,\
     ephemerals flattened %d errors %d@]"
    s.shards_before s.shards_after s.keys_migrated s.keys_total s.batches
    s.znodes_copied s.znodes_retired s.stubs_promoted s.stubs_demoted
    s.reconciled s.ephemerals_flattened s.errors

(* split a list into chunks of [n] (last may be short) *)
let chunks n xs =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if k = n then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 xs

let run ?(drain = 0.02) ?(batch = 64) t ~to_shards () =
  let rs = fresh_stats () in
  let router_stats = Shard_router.stats t in
  let pl = Shard_router.placement t in
  rs.shards_before <- Shard_router.placement_shards pl;
  if to_shards > Shard_router.shard_count t then
    Shard_router.add_shards t (to_shards - Shard_router.shard_count t);
  let moves = Shard_router.prepare_reshard pl ~shards:to_shards in
  rs.shards_after <- to_shards;
  rs.keys_total <- Shard_router.keys_assigned pl;
  rs.keys_migrated <- List.length moves;
  (* The controller's own per-shard sessions, opened on demand. *)
  let sessions = Hashtbl.create 8 in
  let session i =
    match Hashtbl.find_opt sessions i with
    | Some h -> h
    | None ->
      let h = Shard_router.backend_session t i in
      Hashtbl.replace sessions i h;
      h
  in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        rs.errors <- rs.errors + 1;
        Shard_router.note_failure router_stats ("reshard: " ^ msg))
      fmt
  in
  (* Make [path] exist on [dst]'s tree; every node this creates is a
     stub (a primary already present would have made [exists] succeed). *)
  let rec ensure dst path =
    if path <> "/" then begin
      let h = session dst in
      match h.Zk_client.exists path with
      | Ok (Some _) -> ()
      | Ok None ->
        ensure dst (Zpath.parent path);
        (match h.Zk_client.create path ~data:"" with
         | Ok _ ->
           router_stats.Shard_router.stub_creates <-
             router_stats.Shard_router.stub_creates + 1
         | Error Zerror.ZNODEEXISTS -> ()
         | Error e ->
           fail "ensure %s on shard %d: %s" path dst (Zerror.to_string e))
      | Error e ->
        fail "ensure (exists) %s on shard %d: %s" path dst (Zerror.to_string e)
    end
  in
  let listing_of h key =
    match h.Zk_client.children_with_data key with
    | Ok l -> l
    | Error Zerror.ZNONODE -> []
    | Error e ->
      fail "list %s: %s" key (Zerror.to_string e);
      []
  in
  (* Copy one child onto dst; an existing node there is the child's
     stub (its own kids live on dst) being promoted to primary. *)
  let copy_child dst key (name, data, (st : Ztree.stat)) =
    let path = Zpath.concat key name in
    if st.Ztree.ephemeral_owner <> 0L then begin
      (* The owner session's ephemeral bookkeeping cannot follow the
         node across backends; it survives as a persistent node and is
         logged for Fsck-style review (DESIGN.md §10). *)
      rs.ephemerals_flattened <- rs.ephemerals_flattened + 1;
      Shard_router.note router_stats
        (Printf.sprintf "reshard: ephemeral %s flattened to persistent" path)
    end;
    match (session dst).Zk_client.create path ~data with
    | Ok _ -> rs.znodes_copied <- rs.znodes_copied + 1
    | Error Zerror.ZNODEEXISTS ->
      (match (session dst).Zk_client.set path ~data with
       | Ok () ->
         rs.stubs_promoted <- rs.stubs_promoted + 1;
         router_stats.Shard_router.stub_deletes <-
           router_stats.Shard_router.stub_deletes + 1
       | Error e -> fail "promote %s: %s" path (Zerror.to_string e))
    | Error e -> fail "copy %s: %s" path (Zerror.to_string e)
  in
  (* After freeze: patch any straggler that committed between the copy
     pass and the freeze onto dst ([current] is the post-freeze src
     listing, [copied] the pre-freeze snapshot already on dst). *)
    let reconcile dst key ~copied ~current =
    let find name l =
      List.find_opt (fun (n, _, _) -> n = name) l
    in
    List.iter
      (fun ((name, data, _) as child) ->
        match find name copied with
        | None ->
          rs.reconciled <- rs.reconciled + 1;
          copy_child dst key child
        | Some (_, data0, _) when data0 <> data ->
          rs.reconciled <- rs.reconciled + 1;
          (match (session dst).Zk_client.set (Zpath.concat key name) ~data with
           | Ok () -> ()
           | Error e ->
             fail "reconcile set %s/%s: %s" key name (Zerror.to_string e))
        | Some _ -> ())
      current;
    List.iter
      (fun (name, _, _) ->
        if find name current = None then begin
          rs.reconciled <- rs.reconciled + 1;
          match (session dst).Zk_client.delete (Zpath.concat key name) with
          | Ok () | Error Zerror.ZNONODE -> ()
          | Error e ->
            fail "reconcile delete %s/%s: %s" key name (Zerror.to_string e)
        end)
      copied
  in
  (* Remove src's copies: a child whose own children still live on src
     demotes to a stub; a childless one is deleted outright. *)
  let retire src key current =
    let h = session src in
    List.iter
      (fun (name, _, _) ->
        let path = Zpath.concat key name in
        let has_children =
          match h.Zk_client.children path with
          | Ok (_ :: _) -> true
          | Ok [] | Error Zerror.ZNONODE -> false
          | Error e ->
            fail "retire (children) %s: %s" path (Zerror.to_string e);
            true (* when in doubt, keep the node *)
        in
        if has_children then begin
          match h.Zk_client.set path ~data:"" with
          | Ok () ->
            rs.stubs_demoted <- rs.stubs_demoted + 1;
            router_stats.Shard_router.stub_creates <-
              router_stats.Shard_router.stub_creates + 1
          | Error e -> fail "demote %s: %s" path (Zerror.to_string e)
        end
        else
          match h.Zk_client.delete path with
          | Ok () -> rs.znodes_retired <- rs.znodes_retired + 1
          | Error Zerror.ZNONODE -> ()
          | Error e -> fail "retire %s: %s" path (Zerror.to_string e))
      current;
    (* src's key node: once childless it is a pure stub (the primary
       lives on [home_shard], which after this key's children left can
       only coincide with src if the primary genuinely lives there). *)
    if key <> "/" && Shard_router.home_shard t key <> src then begin
      match h.Zk_client.children key with
      | Ok [] ->
        (match h.Zk_client.delete key with
         | Ok () ->
           router_stats.Shard_router.stub_deletes <-
             router_stats.Shard_router.stub_deletes + 1
         | Error (Zerror.ZNONODE | Zerror.ZNOTEMPTY) -> ()
         | Error e -> fail "retire stub %s: %s" key (Zerror.to_string e))
      | Ok (_ :: _) | Error Zerror.ZNONODE -> ()
      | Error e -> fail "retire stub (children) %s: %s" key (Zerror.to_string e)
    end
  in
  let migrate_key (key, src, dst) =
    (* copy *)
    let h_src = session src in
    let copied = listing_of h_src key in
    if copied <> [] then begin
      ensure dst key;
      List.iter (copy_child dst key) copied
    end;
    (* flip *)
    Shard_router.freeze_migration pl key;
    h_src.Zk_client.sync ();
    let current = listing_of h_src key in
    if current <> [] then ensure dst key;
    reconcile dst key ~copied ~current;
    Shard_router.revoke_dir t ~shard:src key;
    Shard_router.finish_migration pl key ~dst;
    (* retire — after the flip so parked ops resume the moment the new
       owner is authoritative; src's leftovers are invisible to routing *)
    retire src key current
  in
  List.iter
    (fun group ->
      rs.batches <- rs.batches + 1;
      List.iter (fun (key, _, _) -> Shard_router.begin_migration pl key) group;
      if drain > 0. then Simkit.Process.sleep drain;
      (* one drain covers the whole batch; keys then move one at a time *)
      List.iter migrate_key group)
    (chunks batch moves);
  Hashtbl.iter (fun _ (h : Zk_client.handle) -> h.Zk_client.close ()) sessions;
  rs

let split ?drain ?batch t ~to_shards () =
  if to_shards <= Shard_router.placement_shards (Shard_router.placement t) then
    invalid_arg "Reshard.split: to_shards must exceed the current count";
  run ?drain ?batch t ~to_shards ()

let merge ?drain ?batch t ~to_shards () =
  if to_shards >= Shard_router.placement_shards (Shard_router.placement t) then
    invalid_arg "Reshard.merge: to_shards must be below the current count";
  if to_shards < 1 then invalid_arg "Reshard.merge: to_shards < 1";
  run ?drain ?batch t ~to_shards ()
