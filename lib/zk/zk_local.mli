(** Single-process, immediate-mode coordination service.

    Functionally identical to a one-server {!Ensemble} but with no
    simulator in the loop: every call executes synchronously against one
    {!Ztree}. Used by unit tests, the examples, and the Fig. 11 memory
    experiment (where only state size matters, not timing). *)

type t

(** [lease_ttl] is the duration (in [clock] seconds) of leases granted
    through the handle's [lease_*] reads; default 5.0. *)
val create : ?clock:(unit -> float) -> ?lease_ttl:float -> unit -> t

(** Open a session. Ephemeral nodes created through it are deleted by
    [close]. *)
val session : t -> Zk_client.handle

val tree : t -> Ztree.t

(** The server-side lease-interest table behind the [lease_*] reads. *)
val leases : t -> Lease.t

(** Modelled resident size of the (single) server process. *)
val server_resident_bytes : t -> int

(** Fire the coherence state (child watches on [dir], data watches on
    its immediate children, lease interests in [dir]) — the
    ownership-flip step of online resharding. See {!Ensemble.revoke_dir}. *)
val revoke_dir : t -> string -> unit
