(** Sharded coordination: the znode namespace partitioned across
    independent ZAB ensembles, behind the unchanged {!Zk_client.handle}
    surface.

    {2 Routing invariant — parent-directory co-location}

    A znode [p]'s primary copy lives on the shard owning [parent p]
    under the {!placement} ([home p]); consequently {e all children of
    a directory live on one shard} ([kids d], the shard owning [d]
    itself). Sibling creates, sequential-suffix allocation,
    [children]/[children_with_data[_watch]] and child watches are
    therefore always single-shard operations, and each shard keeps its
    own sessions, watches, request-id dedup table and exactly-once retry
    semantics untouched.

    When [home d <> kids d] (the directory hashes apart from its own
    children), the children's shard holds a lazily materialized {e stub}
    of [d]: an empty placeholder created on first cross-shard child
    create, invisible to every read (listings of [d] route to [kids d],
    where the stub is the parent; listings of [parent d] route to
    [home d], where the primary is the child). Stat reads of such a
    directory come from the primary, whose [num_children] stays 0 — the
    child count lives on the stub. This drift, and every other
    cross-shard caveat, is documented in DESIGN.md §sharding.

    {2 Atomicity boundary}

    Single-shard {!Txn.t} multis (all op paths homed on one shard) route
    through unchanged and stay atomic. A cross-shard multi is executed
    as ordered per-shard sub-transactions (ascending shard id); each
    sub-transaction is atomic, the whole is not. On a failing
    sub-transaction the router rolls back the already-committed shards'
    creates (deletes of the created paths); committed deletes and
    data writes cannot be restored — those leave an orphan note for
    {!Fsck}-style repair and bump [rollback_failures]. Cross-shard
    deletes of a stubbed directory are an ordered two-phase write
    (stub first — it holds the children, so ZNOTEMPTY semantics are
    preserved — then primary, recreating the stub if the primary
    delete refuses). All occurrences are counted in {!stats}. *)

type stats = {
  mutable cross_shard_multis : int;
  mutable cross_shard_deletes : int;  (** two-phase stub+primary deletes *)
  mutable stub_creates : int;
  mutable stub_deletes : int;
  mutable rollbacks : int;            (** undo transactions that succeeded *)
  mutable rollback_failures : int;    (** partial commits left in place *)
  mutable orphan_notes : string list; (** newest first; repair work items *)
}

val fresh_stats : unit -> stats

(** Live stubs currently standing in for cross-shard directories
    ([stub_creates - stub_deletes]). *)
val live_stubs : stats -> int

(** {2 Placement — consistent hashing with bounded loads}

    The ring alone cannot balance a small key population (a namespace
    with ~100 populated directories hashed onto 4 shards leaves the
    hottest shard near 28% of the keys, and read throughput tracks the
    hottest shard), so a directory key's shard is the ring's choice
    {e unless} that shard already holds [ceil ((1+eps) * keys/shards)]
    keys — then the next shard id (wrapping) under the cap takes it.
    With [eps = 0] (the default) per-shard key counts never differ by
    more than one. Assignments are memoized and therefore stable for
    the placement's lifetime; the table models the durable
    directory-placement map a real deployment would keep in a small,
    cacheable coordination namespace (IndexFS-style). *)

type placement

(** @raise Invalid_argument if [shards < 1] or [eps < 0]. *)
val make_placement : ?eps:float -> shards:int -> unit -> placement

(** The shard owning [key] (a directory path), assigning it if new. *)
val place : placement -> string -> int

val placement_ring : placement -> Consistent_hash.t

(** {2 Deployments} *)

type t

(** [start ?trace engine ~shards cfg] boots [shards] independent
    ensembles, each from [cfg] (so [shards * cfg.servers] servers in
    total), tagged [shard0..shardN-1] for per-shard trace instruments.
    @raise Invalid_argument if [shards < 1]. *)
val start : ?trace:Obs.Trace.t -> Simkit.Engine.t -> shards:int -> Ensemble.config -> t

(** Immediate-mode deployment over [shards] {!Zk_local} trees (same
    router logic, no simulation required). *)
val local : ?clock:(unit -> float) -> shards:int -> unit -> t

(** [session t ()] opens one sub-session per shard and returns the
    routed handle. [close] closes every sub-session (per-shard ephemeral
    cleanup); [sync] syncs every shard; [session_id] is shard 0's. *)
val session : t -> unit -> Zk_client.handle

(** Route an explicit handle array (shard [i] = [handles.(i)]) — the
    seam fault-injection tests use to wrap individual shards. [stats]
    defaults to a fresh record. Sessions of one deployment must share
    one [placement] (and its memoized assignments). *)
val wrap :
  ?stats:stats -> placement:placement -> Zk_client.handle array ->
  Zk_client.handle

(** The raw ring a placement prefers: one point set per shard id.
    @raise Invalid_argument if [shards < 1]. *)
val make_ring : shards:int -> Consistent_hash.t

(** {2 Introspection} *)

val shard_count : t -> int
val stats : t -> stats
val ring : t -> Consistent_hash.t
val placement : t -> placement

(** The shard holding [path]'s primary copy. *)
val home_shard : t -> string -> int

(** The underlying ensembles.
    @raise Invalid_argument on a {!local} deployment. *)
val ensembles : t -> Ensemble.t array

(** Current data tree of shard [i] (leader's tree, or the first live
    replica's if the shard has no leader right now). *)
val tree_of_shard : t -> int -> Ztree.t

(** Per-shard znode counts (each includes that shard's own root ["/"]
    and any stubs it hosts). *)
val node_counts : t -> int array

(** Logical znode population: total nodes minus the per-shard roots and
    minus live stubs — the number a single-ensemble deployment would
    report minus its root. Exact iff no write was lost or doubled. *)
val logical_population : t -> int

val writes_committed : t -> int
val writes_committed_by_shard : t -> int array
val dedup_hits : t -> int
val dedup_hits_by_shard : t -> int array

(** [publish t metrics] snapshots the per-shard balance into gauges:
    [zk.shard<i>.znodes], [zk.shard<i>.writes_committed],
    [zk.shard<i>.dedup_hits], and router counters
    [zk.router.cross_shard_multis], [zk.router.cross_shard_deletes],
    [zk.router.stub_creates], [zk.router.stub_deletes],
    [zk.router.rollbacks], [zk.router.rollback_failures],
    [zk.router.live_stubs]. *)
val publish : t -> Obs.Metrics.t -> unit
