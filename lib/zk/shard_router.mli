(** Sharded coordination: the znode namespace partitioned across
    independent ZAB ensembles, behind the unchanged {!Zk_client.handle}
    surface.

    {2 Routing invariant — parent-directory co-location}

    A znode [p]'s primary copy lives on the shard owning [parent p]
    under the {!placement} ([home p]); consequently {e all children of
    a directory live on one shard} ([kids d], the shard owning [d]
    itself). Sibling creates, sequential-suffix allocation,
    [children]/[children_with_data[_watch]] and child watches are
    therefore always single-shard operations, and each shard keeps its
    own sessions, watches, request-id dedup table and exactly-once retry
    semantics untouched.

    When [home d <> kids d] (the directory hashes apart from its own
    children), the children's shard holds a lazily materialized {e stub}
    of [d]: an empty placeholder created on first cross-shard child
    create, invisible to every read (listings of [d] route to [kids d],
    where the stub is the parent; listings of [parent d] route to
    [home d], where the primary is the child). Stat reads of such a
    directory come from the primary, whose [num_children] stays 0 — the
    child count lives on the stub. This drift, and every other
    cross-shard caveat, is documented in DESIGN.md §sharding.

    {2 Atomicity boundary}

    Single-shard {!Txn.t} multis (all op paths homed on one shard) route
    through unchanged and stay atomic. A cross-shard multi is executed
    as ordered per-shard sub-transactions (ascending shard id); each
    sub-transaction is atomic, the whole is not. On a failing
    sub-transaction the router rolls back the already-committed shards'
    creates (deletes of the created paths); committed deletes and
    data writes cannot be restored — those leave an orphan note for
    {!Fsck}-style repair and bump [rollback_failures]. Cross-shard
    deletes of a stubbed directory are an ordered two-phase write
    (stub first — it holds the children, so ZNOTEMPTY semantics are
    preserved — then primary, recreating the stub if the primary
    delete refuses). All occurrences are counted in {!stats}.

    {2 Online resharding}

    The shard count is dynamic: {!Reshard} migrates directory keys one
    at a time through a prepare/copy/flip/retire state machine built on
    {!prepare_reshard}, {!begin_migration}, {!freeze_migration} and
    {!finish_migration}. While a key migrates, the router parks writes
    to it (and, once frozen, reads too) in a poll loop driven by the
    {!set_block_hook} callback, so in-flight client ops are routed to
    the old owner pre-flip and to the new one post-flip. DESIGN.md §10
    documents the protocol and its flip-ordering guarantees. *)

type stats = {
  mutable cross_shard_multis : int;
  mutable cross_shard_deletes : int;  (** two-phase stub+primary deletes *)
  mutable stub_creates : int;
  mutable stub_deletes : int;
  mutable rollbacks : int;            (** undo transactions that succeeded *)
  mutable rollback_failures : int;    (** partial commits left in place *)
  mutable orphan_notes : string list;
      (** newest first; repair work items {e and} informational
          bookkeeping (migration stub promotions, flattened
          ephemerals). Capped at 200 entries — the overflow count is
          [orphan_notes_dropped]; only [rollback_failures] (not the
          log length) counts unrecoverable partial commits. *)
  mutable orphan_notes_total : int;   (** every note ever taken *)
  mutable orphan_notes_dropped : int; (** rotated out of the capped log *)
}

val fresh_stats : unit -> stats

(** Live stubs currently standing in for cross-shard directories
    ([stub_creates - stub_deletes]). *)
val live_stubs : stats -> int

(** Append an informational note (capped/rotated; never touches
    [rollback_failures]). *)
val note : stats -> string -> unit

(** Append a note that records an unrecoverable partial commit; bumps
    [rollback_failures] as well. *)
val note_failure : stats -> string -> unit

(** {2 Placement — consistent hashing with bounded loads}

    The ring alone cannot balance a small key population (a namespace
    with ~100 populated directories hashed onto 4 shards leaves the
    hottest shard near 28% of the keys, and read throughput tracks the
    hottest shard), so a directory key's shard is the ring's choice
    {e unless} that shard already holds [ceil ((1+eps) * keys/shards)]
    keys — then the next shard id (wrapping) under the cap takes it.
    With [eps = 0] (the default) per-shard key counts never differ by
    more than one. Assignments are memoized and therefore stable for
    the placement's lifetime unless a reshard migrates them; the table
    models the durable directory-placement map a real deployment would
    keep in a small, cacheable coordination namespace (IndexFS-style). *)

type placement

(** @raise Invalid_argument if [shards < 1] or [eps < 0]. *)
val make_placement : ?eps:float -> shards:int -> unit -> placement

(** The shard owning [key] (a directory path), assigning it if new. *)
val place : placement -> string -> int

val placement_ring : placement -> Consistent_hash.t

(** Current shard count of the placement (grows/shrinks on reshard). *)
val placement_shards : placement -> int

(** Copy of the per-shard key loads. *)
val placement_loads : placement -> int array

(** Keys ever assigned (stable across resharding — keys move, they are
    never forgotten). *)
val keys_assigned : placement -> int

(** The key's current shard without assigning it — [None] if the key
    was never placed. *)
val assigned_shard : placement -> string -> int option

(** {2 Online resharding primitives — used by {!Reshard}} *)

(** [prepare_reshard p ~shards] replays every assigned key (sorted, so
    the plan is deterministic) through the bounded-load algorithm over
    a fresh [shards]-point ring and returns the migration remainder as
    [(key, src, dst)] moves. The new ring, shard count and (planned)
    loads are committed immediately — new keys place under the new
    regime — while each existing key keeps its old assignment (and its
    old routing) until {!finish_migration} flips it.
    @raise Invalid_argument if [shards < 1] or a migration is open. *)
val prepare_reshard : placement -> shards:int -> (string * int * int) list

(** Open a migration for [key]: routed writes to paths keyed by it park
    at the router until the flip. *)
val begin_migration : placement -> string -> unit

(** Freeze [key]: reads park too (the copy is being verified/retired —
    neither owner can safely serve them).
    @raise Invalid_argument if [key] is not migrating. *)
val freeze_migration : placement -> string -> unit

(** Flip [key] to [dst] and release every parked op. *)
val finish_migration : placement -> string -> dst:int -> unit

val migrating : placement -> string -> bool

(** Install the poll hook parked ops spin on (a simulation deployment
    installs a short [Process.sleep]; {!start} does this itself). The
    default hook raises — an immediate-mode deployment must never leave
    a migration open across a client call. *)
val set_block_hook : placement -> (string -> unit) -> unit

(** {2 Deployments} *)

type t

(** [start ?trace engine ~shards cfg] boots [shards] independent
    ensembles, each from [cfg] (so [shards * cfg.servers] servers in
    total), tagged [shard0..shardN-1] for per-shard trace instruments.
    @raise Invalid_argument if [shards < 1]. *)
val start : ?trace:Obs.Trace.t -> Simkit.Engine.t -> shards:int -> Ensemble.config -> t

(** Immediate-mode deployment over [shards] {!Zk_local} trees (same
    router logic, no simulation required). *)
val local : ?clock:(unit -> float) -> shards:int -> unit -> t

(** Boot [count] additional shards (same config, seeds continuing the
    [cfg.seed + i] sequence, tags [shardN..]). Existing sessions reach
    the new shards lazily; the placement does not use them until a
    {!prepare_reshard} widens the ring.
    @raise Invalid_argument if [count < 1]. *)
val add_shards : t -> int -> unit

(** A raw (un-routed) session on shard [i] — the reshard controller's
    direct line to one shard. *)
val backend_session : t -> int -> Zk_client.handle

(** [revoke_dir t ~shard dir] discards every piece of coherence state
    shard [shard] still holds for directory [dir]: armed child watches
    on [dir], armed data watches on [dir]'s immediate children
    (existing or absent), and lease interests in [dir] — each fired
    with the corresponding invalidation event. Called on the old owner
    right before an ownership flip, so clients cannot keep serving
    local reads the old shard will never again invalidate. *)
val revoke_dir : t -> shard:int -> string -> unit

(** [session t ()] opens one sub-session per current shard and returns
    the routed handle; shards added by a later reshard are opened
    lazily on first routed op. [close] closes every opened sub-session
    (per-shard ephemeral cleanup); [sync] syncs them; [session_id] is
    shard 0's. *)
val session : t -> unit -> Zk_client.handle

(** Route an explicit handle array (shard [i] = [handles.(i)]) — the
    seam fault-injection tests use to wrap individual shards. [stats]
    defaults to a fresh record. Sessions of one deployment must share
    one [placement] (and its memoized assignments). *)
val wrap :
  ?stats:stats -> placement:placement -> Zk_client.handle array ->
  Zk_client.handle

(** The raw ring a placement prefers: one point set per shard id.
    @raise Invalid_argument if [shards < 1]. *)
val make_ring : shards:int -> Consistent_hash.t

(** {2 Introspection} *)

val shard_count : t -> int
val stats : t -> stats
val ring : t -> Consistent_hash.t
val placement : t -> placement

(** The shard holding [path]'s primary copy. *)
val home_shard : t -> string -> int

(** The underlying ensembles.
    @raise Invalid_argument on a {!local} deployment. *)
val ensembles : t -> Ensemble.t array

(** Current data tree of shard [i] (leader's tree, or the first live
    replica's if the shard has no leader right now). *)
val tree_of_shard : t -> int -> Ztree.t

(** Per-shard znode counts (each includes that shard's own root ["/"]
    and any stubs it hosts). *)
val node_counts : t -> int array

(** Logical znode population: total nodes minus the per-shard roots and
    minus live stubs — the number a single-ensemble deployment would
    report minus its root. Exact iff no write was lost or doubled
    (including across a reshard: migration copies, retires and stub
    promotions/demotions all balance). *)
val logical_population : t -> int

val writes_committed : t -> int
val writes_committed_by_shard : t -> int array
val dedup_hits : t -> int
val dedup_hits_by_shard : t -> int array

(** [publish t metrics] snapshots the per-shard balance into gauges:
    [zk.shard<i>.znodes], [zk.shard<i>.writes_committed],
    [zk.shard<i>.dedup_hits], and router counters
    [zk.router.cross_shard_multis], [zk.router.cross_shard_deletes],
    [zk.router.stub_creates], [zk.router.stub_deletes],
    [zk.router.rollbacks], [zk.router.rollback_failures],
    [zk.router.orphan_notes_total], [zk.router.live_stubs]. *)
val publish : t -> Obs.Metrics.t -> unit
