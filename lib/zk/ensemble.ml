module Engine = Simkit.Engine
module Process = Simkit.Process
module Mailbox = Simkit.Mailbox
module Net = Simkit.Net
module Rng = Simkit.Rng

type config = {
  servers : int;
  observers : int;
  net_latency : float;
  rpc_cpu : float;
  read_service : float;
  write_service : float;
  delete_service : float;
  set_service : float;
  persist : float;
  follower_apply : float;
  election_timeout : float;
  request_timeout : float;
  load_factor : float;
  max_batch : int;
  batch_delay : float;
  seed : int64;
  retry_backoff : float;
  retry_backoff_cap : float;
  session_timeout : float;
  stale_read_after : float;
  serve_stale_reads : bool;
  fail_fast_after : float;
  unsafe_no_dedup : bool;
  lease_ttl : float;
  max_inflight_batches : int;
  snapshot_every : int;
}

let default_config ~servers =
  { servers;
    observers = 0;
    net_latency = 60e-6;
    rpc_cpu = 5e-6;
    read_service = 40e-6;
    write_service = 50e-6;
    delete_service = 82e-6;
    set_service = 78e-6;
    persist = 20e-6;
    follower_apply = 8e-6;
    election_timeout = 0.5;
    request_timeout = 2.0;
    load_factor = 1.0;
    max_batch = 1;
    batch_delay = 0.;
    seed = 1L;
    retry_backoff = 0.;
    retry_backoff_cap = 1.;
    session_timeout = 60.;
    stale_read_after = infinity;
    serve_stale_reads = true;
    fail_fast_after = infinity;
    unsafe_no_dedup = false;
    lease_ttl = 5.0;
    max_inflight_batches = 1;
    snapshot_every = 4096 }

type reply = (Txn.result_item list, Zerror.t) result -> unit

(* Session-scoped request id (ZooKeeper's session id + client xid): the
   client stamps every write once and reuses the stamp across timeout
   retries, so the leader can recognize a resubmission of a transaction
   it already committed and return the original result instead of
   applying it twice. *)
type rid = {
  rsession : int64;
  rcxid : int64;
}

(* A committed entry carries [close_of = Some owner] when it is the
   cleanup transaction of a Close_session: every replica that applies it
   also evicts that session's dedup entries (the session can never retry
   again, so keeping its results would grow leader state without bound). *)
type entry = int64 * Txn.t * float * rid * int64 option

type role = Leader | Follower | Observer | Down

type pending_write = {
  p_txn : Txn.t;
  p_time : float;
  p_rid : rid;
  (* a timed-out retry of a still-in-flight write re-points the reply
     (and its route home) at the retry's continuation *)
  mutable p_origin : int;
  mutable p_reply : reply;
  (* acking server ids, not a bare count: under duplication or gap
     repair the same follower may ack the same zxid more than once, and
     double-counting would commit without a true quorum *)
  mutable p_acked : int list;
  (* when this entry last went out as a Propose_batch: rate-limits the
     stalled-head re-propose so a lossy burst cannot snowball *)
  mutable p_proposed_at : float;
  (* whether the leader's own txn-log append for this entry has landed.
     The stop-and-wait path persists before proposing, so it is born
     true; the pipelined path proposes first and persists concurrently,
     so the leader's vote only counts once the overlapped persist
     completes. *)
  mutable p_self_acked : bool;
  p_close : int64 option;
  p_span : Obs.Trace.wspan;
}

type applied_result = (Txn.result_item list, Zerror.t) result

(* One not-yet-proposed batch queued for the pipelined leader's proposer
   process. While a batch [b_open] (still queued, not yet picked up),
   freshly drained writes coalesce into it up to [max_batch] — the
   adaptive group commit: a write waits exactly as long as the pipeline
   is busy ahead of it and not a tick longer. Entry and span lists are
   kept reversed (append at head) and reversed once at fan-out. *)
type pbatch = {
  mutable b_entries : entry list;        (* reversed *)
  mutable b_spans : Obs.Trace.wspan list; (* reversed, parallel to b_entries *)
  mutable b_cpu : float;                 (* summed leader CPU for the batch *)
  mutable b_count : int;
  mutable b_hi : int64;                  (* highest zxid in the batch *)
  mutable b_open : bool;                 (* still coalescing? *)
}

(* [Read]/[Release] execute against the serving replica itself, not just
   its tree: lease reads must grant an interest in the server's lease
   table in the same atomic step as the read, and watch releases must
   reach the tree's watch registries. *)
type msg =
  | Write of {
      txn : Txn.t;
      rid : rid;
      origin : int;
      reply : reply;
      span : Obs.Trace.wspan;
    }
  | Read of { exec : server -> unit; refuse : Zerror.t -> unit }
  | Release of { exec : server -> unit }
    (* fire-and-forget cancellation of a still-armed fire-once watch
       (failed fill, cache eviction): no reply, best-effort on faults *)
  | Propose_batch of { epoch : int; entries : entry list; committed_upto : int64 }
    (* one leader->follower round carries a whole group-committed batch;
       a singleton batch is exactly the classic per-txn PROPOSAL.
       [committed_upto] piggybacks the leader's commit frontier (every
       zxid <= it is committed) so a busy pipeline learns commits
       without a separate Commit_batch round; [0L] carries no frontier
       — the stop-and-wait leader and the repair paths always send 0L,
       leaving the standalone Commit_batch in charge there. *)
  | Ack_batch of { epoch : int; zxids : int64 list; from : int }
  | Commit_batch of { epoch : int; zxids : int64 list }
  | Inform_batch of { epoch : int; entries : entry list }
    (* ZAB INFORM: commit + payload, sent to non-voting observers *)
  | Deliver_reply of {
      epoch : int;
      zxid : int64;
      result : (Txn.result_item list, Zerror.t) result;
      reply : reply;
      committed_upto : int64;
        (* the frontier also rides on replies: when the pipelined leader
           suppresses Commit_batch, the origin follower still learns the
           commit with (FIFO-before) the reply, preserving
           read-your-own-writes without a Fetch round *)
    }
  | Close_session of {
      owner : int64;
      rid : rid;
      origin : int;
      reply : reply;
      span : Obs.Trace.wspan;
    }
  | Fetch of { epoch : int; from_zxid : int64; upto : int64; who : int }
    (* follower->leader gap repair: a lossy link dropped a proposal or
       commit; the leader answers with the missing entries (as a
       Propose_batch) followed by the commit marks it already holds.
       Observers use the same message and are answered with an
       Inform_batch of the committed range instead. *)

and server = {
  id : int;
  mutable role : role;
  mutable epoch : int;
  mutable tree : Ztree.t;
  log : (int64, Txn.t * float * rid * int64 option) Hashtbl.t
    (* committed txns, by zxid *);
  (* request id -> (zxid, result) of every txn this replica has applied:
     the dedup table behind exactly-once writes. Replicated implicitly —
     each replica records entries as it applies the same committed
     sequence — so it survives leader failover. *)
  applied : (rid, int64 * applied_result) Hashtbl.t;
  inbox : msg Mailbox.t;
  (* leader state *)
  pending : (int64, pending_write) Hashtbl.t;
  pending_rids : (rid, int64) Hashtbl.t;  (* in-flight request ids *)
  mutable next_zxid : int64;
  mutable next_commit : int64;
  (* pipelined-leader state (max_inflight_batches > 1; inert otherwise).
     [prop_queue] holds batches awaiting the proposer process, newest
     last; [prop_unsent] counts queued-or-picked-up batches whose
     Propose_batch has not left yet — while it is positive, a commit's
     frontier is guaranteed to ride out on a future proposal, so the
     standalone Commit_batch fan-out can be skipped. [inflight_his] is
     the hi-zxid of each proposed-but-not-fully-committed batch in
     ascending order; its length is the in-flight window occupancy.
     [persist_until] serializes the leader's overlapped txn-log appends
     on the single WAL device. *)
  prop_queue : pbatch Queue.t;
  mutable prop_unsent : int;
  mutable inflight_his : int64 list;
  mutable persist_until : float;
  mutable proposer_wake : unit Simkit.Process.waiter option;
  (* follower state *)
  proposals : (int64, Txn.t * float * rid * int64 option) Hashtbl.t;
  committed : (int64, unit) Hashtbl.t;
  (* highest zxid this follower knows committed via a piggybacked
     frontier (0L = none this epoch); zxids <= it apply without an
     explicit Commit_batch mark *)
  mutable commit_frontier : int64;
  mutable next_apply : int64;
  (* when this replica last heard from its leader (proposal, commit,
     inform, or sync): the freshness clock behind stale-read detection *)
  mutable fresh_at : float;
  (* client replies held back because this server has not yet applied
     the zxid they answer for (a dropped commit broke the usual
     FIFO commit-before-reply ordering); flushed as applies catch up *)
  mutable deferred : (int64 * (unit -> unit)) list;
  (* session-level lease interests this replica granted on its reads;
     lost (cleared) when the server crashes — the TTL covers that hole *)
  leases : Lease.t;
  (* stable storage: what this server's disk holds at any instant.
     [crash] materializes its power-off truth; [restart] rebuilds the
     tree, committed log and dedup table from it. *)
  wal : Wal.t;
  (* readable-but-uncommitted WAL suffix found by local recovery: kept
     only while parked leaderless after a whole-cluster power failure
     (the recovery election's winner commits its tail); discarded the
     moment a live leader resyncs this server *)
  mutable recovered_tail : Wal.entry list;
  (* (epoch, zxid) of the last readable WAL record after local
     recovery: the recovery election compares log ends ZAB-style *)
  mutable recovered_log_end : int * int64;
  (* parked after restarting into a leaderless sub-quorum cluster;
     cleared when a quorum forms and elects *)
  mutable awaiting_quorum : bool;
  (* [recovered_tail]/[recovered_log_end] reflect the current disk
     (local recovery ran and no resync has superseded it since) *)
  mutable disk_synced : bool;
  (* counters *)
  mutable reads : int;
}

type t = {
  engine : Engine.t;
  cfg : config;
  trace : Obs.Trace.t;
  (* metric-name prefix for per-shard instruments ("" = unsharded); a
     tagged ensemble additionally records its gauges and queue-wait
     under [zk.<tag>.*] so a sharded deployment's balance is visible. *)
  tag : string;
  members : server array;
  net : Net.t;
  (* server id -> network endpoint; client sessions get their own
     endpoints that follow their home server's partition side *)
  eps : Net.endpoint array;
  session_rng : Rng.t;
  mutable leader : int;
  mutable next_session : int64;
  mutable next_server : int;
  mutable commits : int;
  mutable last_commit_at : float;
  (* pipelined-commit accounting: standalone Commit_batch rounds fanned
     out vs commit rounds whose fan-out was suppressed because the
     frontier rides on a queued proposal *)
  mutable commit_fanouts : int;
  mutable piggybacked_commits : int;
  mutable dedup_hits : int;
  mutable dedup_evictions : int;
  mutable stale_served : int;
  mutable stale_refused : int;
  mutable failed_fast : int;
  mutable sessions_expired : int;
  (* fan-out targets, precomputed so the per-batch hot path does not
     rebuild them; refreshed whenever any member changes role *)
  mutable follower_peers : server list;
  mutable observer_peers : server list;
  (* recovery accounting *)
  mutable recoveries : int;
  mutable recovery_time_total : float;
  mutable recovery_time_max : float;
  mutable wal_tail_commits : int;
  mutable transfer_diff_txns : int;
  mutable transfer_snaps : int;
}

let config t = t.cfg
let trace t = t.trace
let net t = t.net
let leader_id t = if t.members.(t.leader).role = Leader then Some t.leader else None

let leader_queue_depth t =
  let s = t.members.(t.leader) in
  if s.role = Leader then Mailbox.length s.inbox else 0

let alive_ids t =
  Array.to_list
    (Array.map (fun s -> s.id)
       (Array.of_seq
          (Seq.filter (fun s -> s.role <> Down) (Array.to_seq t.members))))

let tree_of t id = t.members.(id).tree

let server_resident_bytes t id =
  Memory_model.server_resident_bytes t.members.(id).tree

let reads_served t id = t.members.(id).reads
let writes_committed t = t.commits
let commit_fanouts t = t.commit_fanouts
let piggybacked_commits t = t.piggybacked_commits
let dedup_hits t = t.dedup_hits
let dedup_evictions t = t.dedup_evictions
let stale_reads_served t = t.stale_served
let stale_reads_refused t = t.stale_refused
let writes_failed_fast t = t.failed_fast
let sessions_expired t = t.sessions_expired

(* {2 Lease / watch-table introspection} *)

let lease_entries t id = Lease.entries t.members.(id).leases
let watch_table_size t id = Ztree.watch_count t.members.(id).tree

let sum_leases f t =
  Array.fold_left (fun acc (s : server) -> acc + f s.leases) 0 t.members

let leases_granted t = sum_leases Lease.granted t
let leases_renewed t = sum_leases Lease.renewed t
let leases_revoked t = sum_leases Lease.revoked t
let leases_expired t = sum_leases Lease.expired t

(* Ownership flip (online resharding): this ensemble is no longer the
   owner of [dir]'s contents, so any coherence state its live members
   still hold for [dir] — armed child watches on [dir], data watches on
   its immediate children (present or absent), lease interests in [dir]
   — must fire now: the writes they wait for will commit on another
   shard and never reach these tables. Crashed members already lost
   their tables; the resync/TTL paths cover them as usual. *)
let revoke_dir t dir =
  Array.iter
    (fun (s : server) ->
      if s.role <> Down then begin
        ignore (Ztree.fire_data_watches_under s.tree ~dir);
        ignore (Ztree.fire_child_watches s.tree dir);
        let children =
          match Ztree.children s.tree dir with
          | Ok names -> List.map (Zpath.concat dir) names
          | Error _ -> []
        in
        ignore (Lease.revoke_dir s.leases ~children dir)
      end)
    t.members

let debug_dump t =
  String.concat "\n"
    (Array.to_list
       (Array.map
          (fun s ->
            Printf.sprintf
              "  srv%d role=%s epoch=%d next_zxid=%Ld next_commit=%Ld \
               next_apply=%Ld pending=%d proposals=%d inbox=%d"
              s.id
              (match s.role with
              | Leader -> "L"
              | Follower -> "F"
              | Observer -> "O"
              | Down -> "D")
              s.epoch s.next_zxid s.next_commit s.next_apply
              (Hashtbl.length s.pending)
              (Hashtbl.length s.proposals)
              (Mailbox.length s.inbox))
          t.members))

let quorum t = (t.cfg.servers / 2) + 1

(* [max_inflight_batches = 1] (the default) takes the stop-and-wait
   leader path bit-for-bit: no proposer process is spawned, frontiers
   stay 0L, and every event fires exactly as it did before the pipeline
   existed — which is what keeps recorded replays byte-identical. *)
let pipelined t = t.cfg.max_inflight_batches > 1

let wake_proposer (s : server) =
  match s.proposer_wake with
  | None -> ()
  | Some w ->
    s.proposer_wake <- None;
    Simkit.Process.wake w ()

(* Forget all pipelined-leader progress and the follower's piggybacked
   frontier: called on election, crash and restart, where zxid
   numbering restarts relative to a new epoch and any queued batch or
   frontier mark would apply stale state. The proposer (if parked) is
   woken so it re-reads the emptied queue instead of sleeping on a
   window slot that no longer exists. *)
let reset_pipeline_state (s : server) =
  Queue.clear s.prop_queue;
  s.prop_unsent <- 0;
  s.inflight_his <- [];
  s.persist_until <- 0.;
  s.commit_frontier <- 0L;
  wake_proposer s
let is_observer_id t id = id >= t.cfg.servers
let member_count t = t.cfg.servers + t.cfg.observers
let member_ids t = List.init (member_count t) Fun.id

(* Service times scaled by the co-located-load factor. *)
let svc t base = base *. t.cfg.load_factor

(* Roles are exclusive, so the leader never appears in either list. *)
let refresh_peers t =
  let followers = ref [] and observers = ref [] in
  Array.iter
    (fun (s : server) ->
      match s.role with
      | Follower -> followers := s :: !followers
      | Observer -> observers := s :: !observers
      | Leader | Down -> ())
    t.members;
  t.follower_peers <- List.rev !followers;
  t.observer_peers <- List.rev !observers

(* Every message crosses the fault-injectable network. [src] is the
   sending member's id; client traffic uses [send_from] with the
   session's own endpoint. Delivery to a Down server is discarded at
   arrival time (its mailbox was flushed at crash; nothing may sneak in
   afterwards either). *)
let send_from t ~src_ep ~dst msg =
  Net.send t.net ~src:src_ep ~dst:t.eps.(dst) (fun () ->
      let s = t.members.(dst) in
      if s.role <> Down then Mailbox.send s.inbox msg)

let send t ~src ~dst msg = send_from t ~src_ep:t.eps.(src) ~dst msg

(* {2 Fault-state control} *)

(* [partition t groups] over member ids; members not named form one
   implicit extra group, so [partition t [[0; 1]]] isolates servers 0-1
   (and their clients) from everyone else. *)
let partition t groups =
  let named = List.concat groups in
  List.iter
    (fun id ->
      if id < 0 || id >= member_count t then
        invalid_arg (Printf.sprintf "Ensemble.partition: no member %d" id))
    named;
  let rest = List.filter (fun id -> not (List.mem id named)) (member_ids t) in
  let groups = if rest = [] then groups else groups @ [ rest ] in
  Net.partition t.net (List.map (List.map (fun id -> t.eps.(id))) groups)

let partition_oneway t ~from ~to_ =
  Net.block_oneway t.net ~src:t.eps.(from) ~dst:t.eps.(to_)

let heal t = Net.heal t.net
let set_drop t p = Net.set_drop t.net p
let set_extra_delay t d = Net.set_extra_delay t.net d
let set_duplicate t p = Net.set_duplicate t.net p
let set_reorder t ~p ~window = Net.set_reorder t.net ~p ~window

(* {2 Dedup-table bounding} *)

(* Applying a session's close evicts its dedup entries on this replica:
   a closed session can never retry, so its results are dead weight.
   [keep] is the close txn's own rid — that one entry stays so a retried
   close still answers from the table instead of re-running cleanup. *)
let evict_session_applied t (s : server) ~keep owner =
  let victims =
    Hashtbl.fold
      (fun rid _ acc ->
        if rid.rsession = owner && rid <> keep then rid :: acc else acc)
      s.applied []
  in
  List.iter (fun rid -> Hashtbl.remove s.applied rid) victims;
  if s.role = Leader then
    t.dedup_evictions <- t.dedup_evictions + List.length victims

let note_close_applied t (s : server) ~rid close_of =
  match close_of with
  | None -> ()
  | Some owner ->
    Lease.drop_session s.leases owner;
    evict_session_applied t s ~keep:rid owner

(* {2 State-machine apply}

   Every replica applies committed transactions through this helper so
   the lease revocation channel fires wherever the apply happens —
   leader commit, follower apply, observer inform, state transfer. *)

let apply_txn (s : server) ~zxid ~time txn =
  let result = Ztree.apply s.tree ~zxid ~time txn in
  (match result with
   | Ok items -> Lease.revoke_txn s.leases txn items
   | Error _ -> ());
  result

(* {2 Stable-storage hooks}

   Everything that reaches a server's WAL goes through these helpers.
   They are pure state updates — no events, no sleeps, no RNG — so
   wiring them into the hot paths leaves fault-free schedules
   bit-identical. *)

let wal_entry ~zxid ~txn ~time ~(rid : rid) ~close : Wal.entry =
  { Wal.e_zxid = zxid; e_txn = txn; e_time = time;
    e_rsession = rid.rsession; e_rcxid = rid.rcxid; e_close = close }

(* Append at a persist point; [start]/[done_at] bracket the device
   write so a power-off inside the window loses or tears the record. *)
let wal_append (s : server) ~start ~done_at ~zxid ~txn ~time ~rid ~close =
  Wal.append s.wal ~epoch:s.epoch ~start ~done_at
    (wal_entry ~zxid ~txn ~time ~rid ~close)

(* Mark [zxid] durably applied and roll a snapshot once the replay
   distance exceeds the configured cadence. Snapshot writing is modeled
   as free: ZooKeeper serializes fuzzy snapshots from a background
   thread off the commit path, and the simulated persist budget already
   covers the log append that actually gates each ack. *)
let wal_applied t (s : server) zxid =
  Wal.note_commit s.wal zxid;
  if
    t.cfg.snapshot_every > 0
    && Int64.to_int
         (Int64.sub (Wal.frontier s.wal) (Wal.last_snapshot_zxid s.wal))
       >= t.cfg.snapshot_every
  then
    Wal.snapshot s.wal ~zxid:(Ztree.last_zxid s.tree) ~epoch:s.epoch
      (Ztree.serialize s.tree)

(* {2 Deferred replies} *)

(* Flush replies whose zxid this server has now processed, oldest first.
   Progress is measured by [next_apply], not the tree's last zxid: an
   errored transaction never touches the tree, but its commit still
   advances the apply cursor. *)
let flush_deferred (s : server) =
  match s.deferred with
  | [] -> ()
  | ds ->
    let ready, still = List.partition (fun (z, _) -> z < s.next_apply) ds in
    s.deferred <- still;
    List.iter
      (fun (_, k) -> k ())
      (List.sort (fun (a, _) (b, _) -> Int64.compare a b) ready)

(* {2 Leader commit path} *)

let try_commit t (s : server) =
  if s.role = Leader then begin
    (* drain every consecutive quorum-acked zxid starting at next_commit;
       the leader's own persisted copy counts toward the quorum (in the
       pipelined path only once its overlapped persist has landed) *)
    let rec take acc =
      match Hashtbl.find_opt s.pending s.next_commit with
      | Some pw
        when List.length pw.p_acked + (if pw.p_self_acked then 1 else 0)
             >= quorum t ->
        let zxid = s.next_commit in
        Hashtbl.remove s.pending zxid;
        s.next_commit <- Int64.add zxid 1L;
        take ((zxid, pw) :: acc)
      | Some _ | None -> List.rev acc
    in
    match take [] with
    | [] -> ()
    | ready ->
      t.last_commit_at <- Engine.now t.engine;
      (* retire fully committed batches from the in-flight window and
         let the proposer claim the freed slots *)
      (match s.inflight_his with
       | hi :: _ when hi < s.next_commit ->
         s.inflight_his <-
           List.filter (fun hi -> hi >= s.next_commit) s.inflight_his;
         wake_proposer s
       | _ -> ());
      (if Obs.Trace.enabled t.trace then
         let now = Engine.now t.engine in
         List.iter
           (fun (_, pw) ->
             if Obs.Trace.is_real pw.p_span then
               pw.p_span.Obs.Trace.w_quorum <- now)
           ready);
      let results =
        List.map
          (fun (zxid, pw) ->
            (* each txn applies individually: a failing txn returns its
               error to its own caller without touching its batch
               neighbours (and does not consume the zxid in the tree) *)
            let result =
              if Ztree.last_zxid s.tree < zxid then
                apply_txn s ~zxid ~time:pw.p_time pw.p_txn
              else
                (* already applied (state transfer raced ahead): answer
                   from the dedup table rather than re-applying *)
                match Hashtbl.find_opt s.applied pw.p_rid with
                | Some (_, result) -> result
                | None -> Ok []
            in
            Hashtbl.replace s.applied pw.p_rid (zxid, result);
            Hashtbl.remove s.pending_rids pw.p_rid;
            Hashtbl.replace s.log zxid (pw.p_txn, pw.p_time, pw.p_rid, pw.p_close);
            note_close_applied t s ~rid:pw.p_rid pw.p_close;
            wal_applied t s zxid;
            t.commits <- t.commits + 1;
            (zxid, pw, result))
          ready
      in
      let zxids = List.map (fun (zxid, _, _) -> zxid) results in
      (* Commit piggybacking: while a proposal is still queued to go
         out, its Propose_batch will carry a frontier >= this commit on
         the same FIFO links — the standalone fan-out would be pure
         duplicate traffic. A quiescent pipeline (nothing queued) still
         fans out, so the tail of a burst always commits everywhere. *)
      if pipelined t && s.prop_unsent > 0 then
        t.piggybacked_commits <- t.piggybacked_commits + 1
      else begin
        t.commit_fanouts <- t.commit_fanouts + 1;
        List.iter
          (fun (peer : server) ->
            send t ~src:s.id ~dst:peer.id (Commit_batch { epoch = s.epoch; zxids }))
          t.follower_peers
      end;
      (match t.observer_peers with
       | [] -> ()
       | observers ->
         let entries =
           List.map
             (fun (zxid, pw, _) -> (zxid, pw.p_txn, pw.p_time, pw.p_rid, pw.p_close))
             results
         in
         List.iter
           (fun (peer : server) ->
             send t ~src:s.id ~dst:peer.id (Inform_batch { epoch = s.epoch; entries }))
           observers);
      (* replies go out after the commits: the FIFO channel back to each
         origin then delivers Commit_batch first, preserving
         read-your-own-writes on the origin server *)
      let committed_upto =
        if pipelined t then Int64.sub s.next_commit 1L else 0L
      in
      List.iter
        (fun (zxid, pw, result) ->
          if pw.p_origin = s.id then pw.p_reply result
          else
            send t ~src:s.id ~dst:pw.p_origin
              (Deliver_reply
                 { epoch = s.epoch; zxid; result; reply = pw.p_reply;
                   committed_upto }))
        results
  end

(* Leader CPU depends on the mutation kind: creates append a fresh node;
   deletes and setData must locate an existing node, update parent state
   and sweep watches — which is why the paper's Fig. 7 shows zoo_delete()
   and zoo_set() topping out well below zoo_create(). A multi costs as
   much as its most expensive op. *)
let leader_service t txn =
  let op_cost = function
    | Txn.Create _ -> t.cfg.write_service
    | Txn.Delete _ -> t.cfg.delete_service
    | Txn.Set_data _ -> t.cfg.set_service
    | Txn.Check _ -> t.cfg.write_service /. 2.
  in
  List.fold_left (fun acc op -> Float.max acc (op_cost op)) t.cfg.write_service txn

let build_session_cleanup (s : server) owner =
  List.map
    (fun path -> Txn.Delete { path; expected_version = -1 })
    (Ztree.ephemerals_of s.tree ~owner)

(* {2 Leader group commit}

   The leader drains further queued writes from its own mailbox (head
   only, so FIFO order with reads and protocol messages is preserved)
   and pays [persist] plus the follower RPC fan-out once for the whole
   batch. [max_batch = 1] reproduces the classic one-txn-per-round
   pipeline exactly. *)

let is_batchable = function
  | Write _ | Close_session _ -> true
  | _ -> false

let drain_batch ?(wait = true) t (s : server) first =
  let rec drain acc n =
    if n >= t.cfg.max_batch then (acc, n)
    else
      match Mailbox.take_head_if s.inbox is_batchable with
      | None -> (acc, n)
      | Some (Write { txn; rid; origin; reply; span }) ->
        drain ((txn, rid, origin, reply, span, None) :: acc) (n + 1)
      | Some (Close_session { owner; rid; origin; reply; span }) ->
        drain
          ((build_session_cleanup s owner, rid, origin, reply, span, Some owner)
           :: acc)
          (n + 1)
      | Some _ -> (acc, n)
  in
  let acc, n = drain [ first ] 1 in
  let acc, _ =
    if wait && n < t.cfg.max_batch && t.cfg.batch_delay > 0. then begin
      (* wait a beat for stragglers to fill the batch. The pipelined
         leader never waits here ([wait = false]): sleeping would stall
         the main loop that the pipeline exists to keep draining, and
         under backlog the coalescing queue already gathers stragglers
         for exactly as long as the window is busy. *)
      Process.sleep t.cfg.batch_delay;
      drain acc n
    end
    else (acc, n)
  in
  List.rev acc

(* The exactly-once gate. A request id the leader has already applied is
   answered from the dedup table (no new zxid, nothing re-applied); one
   that is still in flight re-points the pending write's reply at the
   retry, so the eventual commit answers the attempt the client is
   actually waiting on instead of producing a second proposal.

   [unsafe_no_dedup] disables the gate — it exists only so tests can
   demonstrate that the linearizability checker catches the double-apply
   this filter prevents. *)
let dedup_filter t (s : server) batch =
  if t.cfg.unsafe_no_dedup then batch
  else
    List.filter
      (fun (_, rid, origin, reply, _, _) ->
        match Hashtbl.find_opt s.applied rid with
        | Some (zxid, result) ->
          t.dedup_hits <- t.dedup_hits + 1;
          if origin = s.id then reply result
          else
            send t ~src:s.id ~dst:origin
              (Deliver_reply
                 { epoch = s.epoch; zxid; result; reply; committed_upto = 0L });
          false
        | None -> (
          match Hashtbl.find_opt s.pending_rids rid with
          | Some zxid -> (
            match Hashtbl.find_opt s.pending zxid with
            | Some pw ->
              t.dedup_hits <- t.dedup_hits + 1;
              pw.p_origin <- origin;
              pw.p_reply <- reply;
              pw.p_proposed_at <- Engine.now t.engine;
              (* the retry proves the original propose round may have
                 been lost: re-propose so a write stalled by a lossy
                 link can still reach quorum (duplicate proposals and
                 acks are idempotent) *)
              List.iter
                (fun (peer : server) ->
                  send t ~src:s.id ~dst:peer.id
                    (Propose_batch
                       { epoch = s.epoch;
                         entries =
                           [ (zxid, pw.p_txn, pw.p_time, pw.p_rid, pw.p_close) ];
                         committed_upto = 0L }))
                t.follower_peers;
              false
            | None ->
              Hashtbl.remove s.pending_rids rid;
              true)
          | None -> true))
      batch

(* Graceful degradation under quorum loss: when the leader has pending
   writes and has not committed anything for [fail_fast_after] seconds,
   new writes are refused immediately with ZCONNECTIONLOSS instead of
   queueing behind a stalled quorum (default: queue forever). *)
let failing_fast t (s : server) =
  t.cfg.fail_fast_after < infinity
  && Hashtbl.length s.pending > 0
  && Engine.now t.engine -. t.last_commit_at > t.cfg.fail_fast_after

(* A pending commit head older than [request_timeout] is evidence of a
   lost proposal or lost acks: re-propose it to every follower (re-acks
   are idempotent), refreshing the stamp so a lossy burst cannot
   snowball. Called only on message arrival — repair rides on flowing
   traffic, so a quiesced engine stays quiesced, and the age gate keeps
   fault-free schedules untouched (healthy commits finish far inside
   the timeout). *)
let repropose_stalled_head t (s : server) =
  match Hashtbl.find_opt s.pending s.next_commit with
  | Some pw
    when Engine.now t.engine -. pw.p_proposed_at > t.cfg.request_timeout ->
    pw.p_proposed_at <- Engine.now t.engine;
    let entries =
      [ (s.next_commit, pw.p_txn, pw.p_time, pw.p_rid, pw.p_close) ]
    in
    List.iter
      (fun (peer : server) ->
        send t ~src:s.id ~dst:peer.id
          (Propose_batch { epoch = s.epoch; entries; committed_upto = 0L }))
      t.follower_peers
  | _ -> ()

(* With a multi-batch window the head is rarely the only casualty of a
   lossy burst: every in-flight batch can lose its proposal or acks at
   once, and repairing one entry per ack round trip turns recovery into
   a serial cascade the length of the window. Resend *all* timed-out
   pending entries in zxid order in one round; refreshing each entry's
   [p_proposed_at] rate-limits the resend exactly like the head repair.
   The stop-and-wait path keeps the head-only repair so its recorded
   replays stay byte-identical. *)
let repropose_stalled t (s : server) =
  if not (pipelined t) then repropose_stalled_head t s
  else begin
    let now = Engine.now t.engine in
    let stalled =
      Hashtbl.fold
        (fun zxid pw acc ->
          if now -. pw.p_proposed_at > t.cfg.request_timeout then
            (zxid, pw) :: acc
          else acc)
        s.pending []
    in
    match List.sort (fun (a, _) (b, _) -> Int64.compare a b) stalled with
    | [] -> ()
    | stalled ->
      let entries =
        List.map
          (fun (zxid, pw) ->
            pw.p_proposed_at <- now;
            (zxid, pw.p_txn, pw.p_time, pw.p_rid, pw.p_close))
          stalled
      in
      List.iter
        (fun (peer : server) ->
          send t ~src:s.id ~dst:peer.id
            (Propose_batch
               { epoch = s.epoch; entries;
                 committed_upto = Int64.sub s.next_commit 1L }))
        t.follower_peers
  end

let refuse_fast t (s : server) ~origin ~reply =
  t.failed_fast <- t.failed_fast + 1;
  let result = Error Zerror.ZCONNECTIONLOSS in
  (if origin = s.id then reply result
   else
     send t ~src:s.id ~dst:origin
       (Deliver_reply
          { epoch = s.epoch; zxid = 0L; result; reply; committed_upto = 0L }));
  (* The stall that triggered fail-fast may itself be a stranded head
     (every follower missed the proposal during a partition, so no ack
     will ever arrive unprompted). Refusing every write would then also
     starve the repair that unwedges the commit path — so each refused
     write doubles as a repair attempt. *)
  repropose_stalled t s

let leader_handle_batch t (s : server) batch =
  match dedup_filter t s batch with
  | [] -> ()
  | batch ->
    let time = Engine.now t.engine in
    (* Stamping and gauge observations are pure accumulator writes: the
       traced run sleeps exactly as long as the untraced one. *)
    (if Obs.Trace.enabled t.trace then begin
       let depth = float_of_int (Mailbox.length s.inbox)
       and size = float_of_int (List.length batch) in
       Obs.Trace.observe t.trace "zk.leader.queue_depth" depth;
       Obs.Trace.observe t.trace "zk.leader.batch_size" size;
       if t.tag <> "" then begin
         Obs.Trace.observe t.trace ("zk." ^ t.tag ^ ".leader.queue_depth") depth;
         Obs.Trace.observe t.trace ("zk." ^ t.tag ^ ".leader.batch_size") size
       end;
       let persist_dur = svc t t.cfg.persist in
       List.iter
         (fun (_, _, _, _, span, _) ->
           if Obs.Trace.is_real span then begin
             (* queue wait, measured where the backlog lives: client
                send -> leader batch start. Recorded untagged always
                (single-ensemble profiles read this), plus per-shard
                under the tag so a sharded deployment's balance shows. *)
             Obs.Trace.observe t.trace "zk.queue_wait"
               (time -. span.Obs.Trace.w_sent);
             if t.tag <> "" then
               Obs.Trace.observe t.trace
                 ("zk." ^ t.tag ^ ".queue_wait")
                 (time -. span.Obs.Trace.w_sent);
             span.Obs.Trace.w_batch <- time;
             span.Obs.Trace.w_persist <- persist_dur
           end)
         batch
     end);
    let cpu =
      List.fold_left
        (fun acc (txn, _, _, _, _, _) -> acc +. leader_service t txn)
        0. batch
    in
    (* [device_delay] is exactly 0. unless a storage fault (disk stall /
       fail-slow) is armed, keeping the fault-free schedule untouched *)
    Process.sleep
      (svc t (cpu +. t.cfg.persist)
       +. Wal.device_delay s.wal ~now:(Engine.now t.engine));
    (* a crash may have landed mid-sleep: a deposed leader must not
       propose with stale state *)
    if s.role = Leader then begin
      let persisted_at = Engine.now t.engine in
      let entries =
        List.map
          (fun (txn, rid, origin, reply, span, close) ->
            let zxid = s.next_zxid in
            s.next_zxid <- Int64.add zxid 1L;
            Hashtbl.replace s.pending zxid
              { p_txn = txn; p_time = time; p_rid = rid; p_origin = origin;
                p_reply = reply; p_acked = []; p_proposed_at = time;
                p_self_acked = true (* persist already paid above *);
                p_close = close; p_span = span };
            Hashtbl.replace s.pending_rids rid zxid;
            wal_append s ~start:time ~done_at:persisted_at ~zxid ~txn ~time
              ~rid ~close;
            (zxid, txn, time, rid, close))
          batch
      in
      let followers = t.follower_peers in
      Process.sleep (svc t (t.cfg.rpc_cpu *. float_of_int (List.length followers)));
      if s.role = Leader then begin
        (if Obs.Trace.enabled t.trace then
           let now = Engine.now t.engine in
           List.iter
             (fun (_, _, _, _, span, _) ->
               if Obs.Trace.is_real span then span.Obs.Trace.w_proposed <- now)
             batch);
        List.iter
          (fun (peer : server) ->
            send t ~src:s.id ~dst:peer.id
              (Propose_batch { epoch = s.epoch; entries; committed_upto = 0L }))
          followers;
        try_commit t s
      end
    end

(* {2 Pipelined leader path (max_inflight_batches > 1)}

   The main server loop only assigns zxids and queues batches — it
   never sleeps for a write, so the inbox keeps draining (and batching)
   while earlier rounds are still in flight. A dedicated proposer
   process pays the leader CPU and fan-out per batch, bounded by the
   in-flight window; the leader's own persist is issued *after* the
   proposal leaves and completes concurrently with the follower round
   trip (serialized against other persists on [persist_until] — one WAL
   device), and only then does the leader's vote count ([p_self_acked]).
   Commits still advance strictly in zxid order through [try_commit]'s
   [next_commit] cursor, so linearizability is untouched: the window
   changes *when* rounds overlap, never the order in which they land. *)

(* Queue [batch] (already dedup-filtered) for the proposer, coalescing
   into the still-open tail batch while there is room. *)
let leader_enqueue_batch t (s : server) batch =
  match dedup_filter t s batch with
  | [] -> ()
  | batch ->
    let time = Engine.now t.engine in
    (if Obs.Trace.enabled t.trace then begin
       let depth = float_of_int (Mailbox.length s.inbox) in
       Obs.Trace.observe t.trace "zk.leader.queue_depth" depth;
       if t.tag <> "" then
         Obs.Trace.observe t.trace ("zk." ^ t.tag ^ ".leader.queue_depth") depth;
       List.iter
         (fun (_, _, _, _, span, _) ->
           if Obs.Trace.is_real span then begin
             Obs.Trace.observe t.trace "zk.queue_wait"
               (time -. span.Obs.Trace.w_sent);
             if t.tag <> "" then
               Obs.Trace.observe t.trace
                 ("zk." ^ t.tag ^ ".queue_wait")
                 (time -. span.Obs.Trace.w_sent);
             (* [w_persist] stays 0: the overlapped persist is off the
                critical path — its residual cost surfaces inside the
                ack phase, so the five phases still tile the latency *)
             span.Obs.Trace.w_batch <- time
           end)
         batch
     end);
    List.iter
      (fun (txn, rid, origin, reply, span, close) ->
        let zxid = s.next_zxid in
        s.next_zxid <- Int64.add zxid 1L;
        Hashtbl.replace s.pending zxid
          { p_txn = txn; p_time = time; p_rid = rid; p_origin = origin;
            p_reply = reply; p_acked = []; p_proposed_at = time;
            p_self_acked = false (* counts only after the overlapped persist *);
            p_close = close; p_span = span };
        Hashtbl.replace s.pending_rids rid zxid;
        let entry = (zxid, txn, time, rid, close) in
        let cpu = leader_service t txn in
        (* Queue exposes no tail peek; fold to it — the queue is at most
           a few batches deep (window + backlog) *)
        match Queue.fold (fun _ b -> Some b) None s.prop_queue with
        | Some b when b.b_open && b.b_count < t.cfg.max_batch ->
          b.b_entries <- entry :: b.b_entries;
          b.b_spans <- span :: b.b_spans;
          b.b_cpu <- b.b_cpu +. cpu;
          b.b_count <- b.b_count + 1;
          b.b_hi <- zxid
        | _ ->
          Queue.push
            { b_entries = [ entry ]; b_spans = [ span ]; b_cpu = cpu;
              b_count = 1; b_hi = zxid; b_open = true }
            s.prop_queue;
          s.prop_unsent <- s.prop_unsent + 1)
      batch;
    wake_proposer s

(* The proposer process: one per member (it idles unless that member
   leads), spawned only when the ensemble is pipelined so the default
   configuration replays byte-identically. *)
let rec proposer_loop t (s : server) =
  (match Queue.peek_opt s.prop_queue with
   | Some b when List.length s.inflight_his < t.cfg.max_inflight_batches ->
     ignore (Queue.pop s.prop_queue);
     b.b_open <- false;
     s.inflight_his <- s.inflight_his @ [ b.b_hi ];
     let epoch0 = s.epoch in
     Process.sleep (svc t b.b_cpu);
     (* a crash or election may have landed mid-sleep: a deposed leader
        must not propose with stale state (the reset already emptied
        the queue and window) *)
     if s.role = Leader && s.epoch = epoch0 then begin
       let followers = t.follower_peers in
       Process.sleep
         (svc t (t.cfg.rpc_cpu *. float_of_int (List.length followers)));
       if s.role = Leader && s.epoch = epoch0 then begin
         let entries = List.rev b.b_entries in
         s.prop_unsent <- s.prop_unsent - 1;
         let committed_upto = Int64.sub s.next_commit 1L in
         (if Obs.Trace.enabled t.trace then begin
            let now = Engine.now t.engine in
            let size = float_of_int b.b_count in
            Obs.Trace.observe t.trace "zk.leader.batch_size" size;
            if t.tag <> "" then
              Obs.Trace.observe t.trace
                ("zk." ^ t.tag ^ ".leader.batch_size") size;
            List.iter
              (fun (span : Obs.Trace.wspan) ->
                if Obs.Trace.is_real span then span.Obs.Trace.w_proposed <- now)
              b.b_spans
          end);
         List.iter
           (fun (peer : server) ->
             send t ~src:s.id ~dst:peer.id
               (Propose_batch { epoch = s.epoch; entries; committed_upto }))
           followers;
         (* overlapped persist: issued now, completes after any earlier
            append still holding the WAL (and after any injected disk
            stall / fail-slow surcharge — both exactly absent by
            default); the completion flips the leader's votes and
            retries the commit cursor *)
         let now = Engine.now t.engine in
         let done_at =
           Float.max (Float.max now s.persist_until) (Wal.stalled_until s.wal)
           +. svc t t.cfg.persist +. Wal.fsync_extra s.wal
         in
         s.persist_until <- done_at;
         (* the WAL records the overlapped window: a crash before
            [done_at] loses these appends even though the batch was
            already proposed (and possibly acked by followers) *)
         List.iter
           (fun (zxid, txn, time, rid, close) ->
             wal_append s ~start:now ~done_at ~zxid ~txn ~time ~rid ~close)
           entries;
         let zxids = List.map (fun (z, _, _, _, _) -> z) entries in
         Engine.schedule t.engine ~delay:(done_at -. now) (fun () ->
             if s.role = Leader && s.epoch = epoch0 then begin
               List.iter
                 (fun z ->
                   match Hashtbl.find_opt s.pending z with
                   | Some pw -> pw.p_self_acked <- true
                   | None -> ())
                 zxids;
               try_commit t s
             end)
       end
     end
   | Some _ | None ->
     Process.suspend_with
       (fun (s : server) w -> s.proposer_wake <- Some w)
       s);
  proposer_loop t s

(* {2 Follower apply path} *)

let rec follower_apply_ready t (s : server) =
  if
    Hashtbl.mem s.committed s.next_apply
    || s.next_apply <= s.commit_frontier
  then
    match Hashtbl.find_opt s.proposals s.next_apply with
    | None -> ()  (* proposal not yet received (cleared by election) *)
    | Some (txn, time, rid, close) ->
      let zxid = s.next_apply in
      Hashtbl.remove s.committed zxid;
      Hashtbl.remove s.proposals zxid;
      s.next_apply <- Int64.add zxid 1L;
      if Ztree.last_zxid s.tree < zxid then begin
        Hashtbl.replace s.applied rid (zxid, apply_txn s ~zxid ~time txn);
        note_close_applied t s ~rid close
      end;
      Hashtbl.replace s.log zxid (txn, time, rid, close);
      wal_applied t s zxid;
      follower_apply_ready t s

(* Observers buffer informs in [proposals] and apply strictly in zxid
   order from [next_apply] — an inform lost on the wire leaves a gap
   that must be repaired, never skipped (skipping silently diverges the
   observer's tree forever while it keeps serving reads). *)
let rec observer_apply_ready t (s : server) =
  match Hashtbl.find_opt s.proposals s.next_apply with
  | None -> ()
  | Some (txn, time, rid, close) ->
    let zxid = s.next_apply in
    Hashtbl.remove s.proposals zxid;
    s.next_apply <- Int64.add zxid 1L;
    if Ztree.last_zxid s.tree < zxid then begin
      Hashtbl.replace s.applied rid (zxid, apply_txn s ~zxid ~time txn);
      note_close_applied t s ~rid close;
      Hashtbl.replace s.log zxid (txn, time, rid, close);
      (* observers have no ack round: the inform itself doubles as the
         txn-log append (already committed, so it lands at the frontier) *)
      (match Wal.epoch_at s.wal zxid with
       | Some e when e = s.epoch -> ()
       | _ ->
         let now = Engine.now t.engine in
         wal_append s ~start:now ~done_at:now ~zxid ~txn ~time ~rid ~close);
      wal_applied t s zxid
    end;
    observer_apply_ready t s

(* Commit marks this follower cannot apply yet mean a proposal or an
   earlier commit was lost on the wire: ask the leader to resend. *)
let request_gap_repair t (s : server) =
  if Hashtbl.length s.committed > 0 then begin
    let upto = Hashtbl.fold (fun zxid () acc -> Int64.max zxid acc) s.committed 0L in
    send t ~src:s.id ~dst:t.leader
      (Fetch { epoch = s.epoch; from_zxid = s.next_apply; upto; who = s.id })
  end

(* A piggybacked commit frontier arrived: every zxid <= [frontier] is
   committed. Pays the same per-entry apply CPU a Commit_batch would
   (only for marks not already learned), advances the frontier, applies
   whatever proposals are now ready, and — like Commit_batch's gap
   repair — fetches the range if the frontier points past a proposal
   hole. Called from the handler process (it sleeps). [epoch] is the
   frontier's epoch: a stale frontier from a deposed leader must not
   mark the new epoch's proposals committed. *)
let advance_frontier t (s : server) ~epoch frontier =
  if epoch = s.epoch && s.role = Follower && frontier > s.commit_frontier then begin
    let base = Int64.max s.commit_frontier (Int64.sub s.next_apply 1L) in
    if frontier > base then begin
      let fresh = ref 0 in
      let z = ref (Int64.add base 1L) in
      while !z <= frontier do
        if not (Hashtbl.mem s.committed !z) then incr fresh;
        z := Int64.add !z 1L
      done;
      if !fresh > 0 then
        Process.sleep (svc t (t.cfg.follower_apply *. float_of_int !fresh));
      if s.role = Follower && epoch = s.epoch then begin
        s.commit_frontier <- Int64.max s.commit_frontier frontier;
        s.fresh_at <- Engine.now t.engine;
        follower_apply_ready t s;
        flush_deferred s;
        if s.next_apply <= s.commit_frontier then
          send t ~src:s.id ~dst:t.leader
            (Fetch
               { epoch = s.epoch; from_zxid = s.next_apply;
                 upto = s.commit_frontier; who = s.id })
      end
    end
    else s.commit_frontier <- Int64.max s.commit_frontier frontier
  end

let handle t (s : server) msg =
  match msg with
  | Read { exec; refuse } ->
    Process.sleep (svc t t.cfg.read_service);
    if s.role <> Down then begin
      let stale =
        (s.role = Follower || s.role = Observer)
        && t.cfg.stale_read_after < infinity
        && Engine.now t.engine -. s.fresh_at > t.cfg.stale_read_after
      in
      if stale && not t.cfg.serve_stale_reads then begin
        t.stale_refused <- t.stale_refused + 1;
        refuse Zerror.ZCONNECTIONLOSS
      end
      else begin
        if stale then t.stale_served <- t.stale_served + 1;
        s.reads <- s.reads + 1;
        exec s
      end
    end
  | Release { exec } ->
    Process.sleep (svc t t.cfg.rpc_cpu);
    if s.role <> Down then exec s
  | Write { txn; rid; origin; reply; span } ->
    if s.role = Leader then begin
      if failing_fast t s then refuse_fast t s ~origin ~reply
      else if pipelined t then
        leader_enqueue_batch t s
          (drain_batch ~wait:false t s (txn, rid, origin, reply, span, None))
      else
        leader_handle_batch t s (drain_batch t s (txn, rid, origin, reply, span, None))
    end
    else begin
      Process.sleep (svc t t.cfg.rpc_cpu);
      send t ~src:s.id ~dst:t.leader (Write { txn; rid; origin; reply; span })
    end
  | Close_session { owner; rid; origin; reply; span } ->
    if s.role = Leader then begin
      if failing_fast t s then refuse_fast t s ~origin ~reply
      else
        let txn = build_session_cleanup s owner in
        if pipelined t then
          leader_enqueue_batch t s
            (drain_batch ~wait:false t s (txn, rid, origin, reply, span, Some owner))
        else
          leader_handle_batch t s
            (drain_batch t s (txn, rid, origin, reply, span, Some owner))
    end
    else begin
      Process.sleep (svc t t.cfg.rpc_cpu);
      send t ~src:s.id ~dst:t.leader (Close_session { owner; rid; origin; reply; span })
    end
  | Propose_batch { epoch; entries; committed_upto } ->
    if epoch = s.epoch && s.role = Follower then begin
      let issued_at = Engine.now t.engine in
      (* one persist + one reply RPC covers the whole batch; injected
         storage faults (disk stall / fail-slow) stretch it *)
      Process.sleep
        (svc t (t.cfg.persist +. t.cfg.rpc_cpu)
         +. Wal.device_delay s.wal ~now:issued_at);
      if s.role = Follower && epoch = s.epoch then begin
        let persisted_at = Engine.now t.engine in
        s.fresh_at <- persisted_at;
        List.iter
          (fun (zxid, txn, time, rid, close) ->
            Hashtbl.replace s.proposals zxid (txn, time, rid, close);
            (* log the proposal before acking (ZAB's accept-then-ack);
               re-proposals already logged this epoch are not re-appended
               — the re-ack is idempotent and so is the disk *)
            match Wal.epoch_at s.wal zxid with
            | Some e when e = epoch -> ()
            | _ ->
              wal_append s ~start:issued_at ~done_at:persisted_at ~zxid ~txn
                ~time ~rid ~close)
          entries;
        let zxids = List.map (fun (zxid, _, _, _, _) -> zxid) entries in
        send t ~src:s.id ~dst:t.leader (Ack_batch { epoch; zxids; from = s.id });
        (* A lossy link can strand an earlier proposal: if every
           follower missed that batch, it never gathers a quorum, and
           since commits are in zxid order the uncommitted head blocks
           every later write. Any proposal arriving past a hole in this
           follower's log is evidence of exactly that — fetch the
           missing range. Repair rides on whatever traffic still flows
           (client retries re-propose), so a quiet network stays quiet
           and the simulation still quiesces. *)
        let hi =
          List.fold_left (fun acc z -> Int64.max acc z) 0L zxids
        in
        let missing = ref false in
        let z = ref s.next_apply in
        while (not !missing) && Int64.compare !z hi < 0 do
          if not (Hashtbl.mem s.proposals !z) then missing := true;
          z := Int64.add !z 1L
        done;
        if !missing then
          send t ~src:s.id ~dst:t.leader
            (Fetch
               { epoch = s.epoch; from_zxid = s.next_apply; upto = hi;
                 who = s.id });
        (* a retransmitted proposal may fill the gap a held-back commit
           is waiting on *)
        follower_apply_ready t s;
        flush_deferred s;
        (* the piggybacked commit frontier, if any, commits everything
           it covers — the pipelined leader's substitute for the
           standalone Commit_batch while rounds overlap *)
        if committed_upto > 0L then advance_frontier t s ~epoch committed_upto
      end
    end
  | Ack_batch { epoch; zxids; from } ->
    if epoch = s.epoch && s.role = Leader then begin
      Process.sleep (svc t t.cfg.rpc_cpu);
      List.iter
        (fun zxid ->
          match Hashtbl.find_opt s.pending zxid with
          | Some pw ->
            if not (List.mem from pw.p_acked) then pw.p_acked <- from :: pw.p_acked
          | None -> ())
        zxids;
      try_commit t s;
      (* An Ack_batch lost on a lossy link can strand the commit head:
         every follower holds the proposal (so no log gap to repair) and
         none will re-ack unprompted, while the leader waits for a
         quorum that never completes — and commits are zxid-ordered, so
         everything behind the head stalls too. *)
      if s.role = Leader then repropose_stalled t s
    end
  | Commit_batch { epoch; zxids } ->
    if epoch = s.epoch && s.role = Follower then begin
      (* applying stays per-txn work even when the commit is batched *)
      Process.sleep
        (svc t (t.cfg.follower_apply *. float_of_int (List.length zxids)));
      if s.role = Follower && epoch = s.epoch then begin
        s.fresh_at <- Engine.now t.engine;
        List.iter (fun zxid -> Hashtbl.replace s.committed zxid ()) zxids;
        follower_apply_ready t s;
        flush_deferred s;
        request_gap_repair t s
      end
    end
  | Inform_batch { epoch; entries } ->
    if epoch = s.epoch && s.role = Observer then begin
      Process.sleep
        (svc t (t.cfg.follower_apply *. float_of_int (List.length entries)));
      if s.role = Observer && epoch = s.epoch then begin
        (* The leader->observer channel is FIFO but not lossless: an
           inform dropped during a partition leaves a zxid gap. Buffer
           out-of-order entries and apply strictly from [next_apply] —
           an observer that skipped the gap would diverge silently and
           keep serving reads from the wrong tree. *)
        List.iter
          (fun (zxid, txn, time, rid, close) ->
            if zxid >= s.next_apply then
              Hashtbl.replace s.proposals zxid (txn, time, rid, close))
          entries;
        observer_apply_ready t s;
        let hi =
          List.fold_left
            (fun acc (zxid, _, _, _, _) -> Int64.max acc zxid)
            0L entries
        in
        if s.next_apply <= hi then
          (* gap: fetch the missing committed range; freshness must NOT
             advance — a behind observer is exactly what the stale-read
             gate exists to catch *)
          send t ~src:s.id ~dst:t.leader
            (Fetch
               { epoch = s.epoch; from_zxid = s.next_apply; upto = hi;
                 who = s.id })
        else s.fresh_at <- Engine.now t.engine
      end
    end
  | Fetch { epoch; from_zxid; upto; who } ->
    if epoch = s.epoch && s.role = Leader then begin
      Process.sleep (svc t t.cfg.rpc_cpu);
      if s.role = Leader && epoch = s.epoch then begin
        let upto = Int64.min upto (Int64.sub s.next_zxid 1L) in
        let entries = ref [] and commits = ref [] in
        let z = ref upto in
        while !z >= from_zxid do
          (match Hashtbl.find_opt s.log !z with
           | Some (txn, time, rid, close) ->
             entries := (!z, txn, time, rid, close) :: !entries;
             commits := !z :: !commits
           | None -> (
             match Hashtbl.find_opt s.pending !z with
             | Some pw ->
               entries := (!z, pw.p_txn, pw.p_time, pw.p_rid, pw.p_close) :: !entries
             | None -> ()));
          z := Int64.sub !z 1L
        done;
        if is_observer_id t who then begin
          (* observers only ever see committed state: answer with the
             committed entries of the range as an Inform_batch (the
             pending tail is not committed and must not reach them) *)
          let committed =
            List.filter (fun (zxid, _, _, _, _) -> List.mem zxid !commits) !entries
          in
          if committed <> [] then
            send t ~src:s.id ~dst:who (Inform_batch { epoch; entries = committed })
        end
        else begin
          if !entries <> [] then
            send t ~src:s.id ~dst:who
              (* frontier 0L: gap repair always ships explicit commit
                 marks right behind on the same FIFO link *)
              (Propose_batch
                 { epoch; entries = !entries; committed_upto = 0L });
          (* the commit marks ride behind the entries on the same FIFO
             link, so the follower stores before it applies *)
          if !commits <> [] then
            send t ~src:s.id ~dst:who (Commit_batch { epoch; zxids = !commits })
        end
      end
    end
  | Deliver_reply { epoch; zxid; result; reply; committed_upto } ->
    Process.sleep (svc t t.cfg.rpc_cpu);
    (* a frontier riding on the reply commits the write it answers for
       (and everything before it) at this origin — the pipelined happy
       path applies here instead of deferring below *)
    if committed_upto > 0L then advance_frontier t s ~epoch committed_upto;
    (* On a FIFO lossless link the matching Commit was processed already,
       so this server's tree reflects the write before the client
       resumes. A lossy link can break that: hold the reply until the
       apply catches up (and ask the leader for the missing entries) so
       read-your-own-writes survives message loss. *)
    if s.role = Follower && zxid > 0L && s.next_apply <= zxid then begin
      s.deferred <- (zxid, fun () -> reply result) :: s.deferred;
      send t ~src:s.id ~dst:t.leader
        (Fetch { epoch = s.epoch; from_zxid = s.next_apply; upto = zxid; who = s.id })
    end
    else reply result

let server_loop t s =
  let rec loop () =
    let msg = Mailbox.recv s.inbox in
    if s.role <> Down then handle t s msg;
    loop ()
  in
  loop ()

let make_server ~now ~lease_ttl id =
  { id;
    role = Follower;
    epoch = 0;
    tree = Ztree.create ();
    log = Hashtbl.create 1024;
    applied = Hashtbl.create 1024;
    inbox = Mailbox.create ();
    pending = Hashtbl.create 64;
    pending_rids = Hashtbl.create 64;
    next_zxid = 1L;
    next_commit = 1L;
    prop_queue = Queue.create ();
    prop_unsent = 0;
    inflight_his = [];
    persist_until = 0.;
    proposer_wake = None;
    proposals = Hashtbl.create 64;
    committed = Hashtbl.create 64;
    commit_frontier = 0L;
    next_apply = 1L;
    fresh_at = 0.;
    deferred = [];
    leases = Lease.create ~now ~ttl:lease_ttl;
    wal = Wal.create ();
    recovered_tail = [];
    recovered_log_end = (0, 0L);
    awaiting_quorum = false;
    disk_synced = false;
    reads = 0 }

let start ?(trace = Obs.Trace.null) ?(tag = "") engine cfg =
  if cfg.servers < 1 then invalid_arg "Ensemble.start: servers < 1";
  if cfg.observers < 0 then invalid_arg "Ensemble.start: observers < 0";
  if cfg.max_batch < 1 then invalid_arg "Ensemble.start: max_batch < 1";
  if cfg.max_inflight_batches < 1 then
    invalid_arg "Ensemble.start: max_inflight_batches < 1";
  if cfg.batch_delay < 0. then invalid_arg "Ensemble.start: batch_delay < 0";
  if cfg.retry_backoff < 0. then invalid_arg "Ensemble.start: retry_backoff < 0";
  if cfg.session_timeout <= 0. then
    invalid_arg "Ensemble.start: session_timeout <= 0";
  if cfg.lease_ttl <= 0. then invalid_arg "Ensemble.start: lease_ttl <= 0";
  let members =
    Array.init (cfg.servers + cfg.observers)
      (make_server ~now:(fun () -> Engine.now engine) ~lease_ttl:cfg.lease_ttl)
  in
  members.(0).role <- Leader;
  for i = cfg.servers to cfg.servers + cfg.observers - 1 do
    members.(i).role <- Observer
  done;
  let master = Rng.create ~seed:cfg.seed in
  let net =
    Net.create ~default_latency:(Net.Fixed cfg.net_latency) ~seed:(Rng.next master)
      engine
  in
  let prefix = if tag = "" then "" else tag ^ "/" in
  let eps =
    Array.init
      (cfg.servers + cfg.observers)
      (fun i -> Net.endpoint net (Printf.sprintf "%ss%d" prefix i))
  in
  let t =
    { engine; cfg; trace; tag; members; net; eps; session_rng = master;
      leader = 0; next_session = 1L; next_server = 0;
      commits = 0; last_commit_at = Engine.now engine;
      commit_fanouts = 0; piggybacked_commits = 0; dedup_hits = 0;
      dedup_evictions = 0; stale_served = 0; stale_refused = 0; failed_fast = 0;
      sessions_expired = 0; follower_peers = []; observer_peers = [];
      recoveries = 0; recovery_time_total = 0.; recovery_time_max = 0.;
      wal_tail_commits = 0; transfer_diff_txns = 0; transfer_snaps = 0 }
  in
  refresh_peers t;
  Array.iter (fun s -> Process.spawn engine (fun () -> server_loop t s)) members;
  (* proposer processes exist only in pipelined mode, so the default
     configuration's process/event schedule — and thus its recorded
     replays — stay byte-identical. Every member gets one: any voter
     may be elected later. *)
  if pipelined t then
    Array.iter (fun s -> Process.spawn engine (fun () -> proposer_loop t s)) members;
  t

(* {2 Failure injection} *)

(* How far behind a returning follower may be before the leader ships a
   whole snapshot instead of replaying the log suffix txn by txn —
   mirroring ZooKeeper's SNAP vs DIFF follower synchronization. *)
let snapshot_transfer_threshold = 512L

let state_transfer t ~from ~target =
  let src = t.members.(from) and dst = t.members.(target) in
  let now = Engine.now t.engine in
  let src_z = Ztree.last_zxid src.tree and dst_z = Ztree.last_zxid dst.tree in
  let gap = Int64.sub src_z dst_z in
  (* A live leader resyncing this server overrules any readable-but-
     uncommitted WAL tail local recovery was holding for a possible
     recovery election. *)
  dst.recovered_tail <- [];
  dst.disk_synced <- false;
  (* Two situations force a SNAP regardless of the gap size:
     - divergence: [dst] is ahead of [src]'s tree, or what [dst]'s disk
       holds at its own last zxid differs from committed history — a
       server that replayed an uncommitted suffix from a dead epoch.
       Its state must be overwritten wholesale (ZooKeeper's TRUNC,
       folded into SNAP here: [Wal.install_snapshot] discards the local
       log).
     - missing history: [src]'s in-memory log no longer covers all of
       (dst_z, src_z] because the leader itself recovered from a
       snapshot and only holds its replay suffix — a DIFF would
       silently skip transactions. *)
  let diverged =
    dst_z > src_z
    || (dst_z > 0L
        &&
        match Hashtbl.find_opt src.log dst_z with
        | Some (txn, _, _, _) -> (
          match Wal.entry_at dst.wal dst_z with
          | Some e -> e.Wal.e_txn <> txn
          | None -> false (* snapshot-covered prefix: consistent *))
        | None ->
          (* unknown at src: fine if committed long ago (src pruned it),
             divergent if it is beyond src's committed frontier *)
          dst_z > Wal.frontier src.wal)
  in
  let missing_history () =
    let missing = ref false in
    let z = ref (Int64.add dst_z 1L) in
    while (not !missing) && !z <= src_z do
      if not (Hashtbl.mem src.log !z) then missing := true;
      z := Int64.add !z 1L
    done;
    !missing
  in
  if gap > snapshot_transfer_threshold || diverged
     || (gap > 0L && missing_history ())
  then begin
    let payload = Ztree.serialize src.tree in
    match Ztree.deserialize payload with
    | Ok tree ->
      (* swapping in the snapshot must not orphan the watches armed on
         the old tree: still-connected sessions (e.g. client caches)
         rely on them for invalidation. Unchanged watches re-arm on the
         new tree; watches whose node changed during the gap fire the
         missed event now. *)
      let stale = dst.tree in
      dst.tree <- tree;
      Ztree.migrate_watches ~from:stale ~into:tree;
      Hashtbl.reset dst.log;
      Hashtbl.iter (fun zxid entry -> Hashtbl.replace dst.log zxid entry) src.log;
      Hashtbl.reset dst.applied;
      Hashtbl.iter
        (fun rid result -> Hashtbl.replace dst.applied rid result)
        src.applied;
      t.transfer_snaps <- t.transfer_snaps + 1;
      (* write-through: the installed snapshot supersedes dst's whole
         local log (TRUNC + SNAP) *)
      Wal.install_snapshot dst.wal ~zxid:src_z ~epoch:dst.epoch payload
    | Error msg ->
      (* a snapshot failure must not lose the replica: fall back to replay *)
      ignore msg
  end;
  let zxid = ref (Int64.add (Ztree.last_zxid dst.tree) 1L) in
  while !zxid <= Ztree.last_zxid src.tree do
    (match Hashtbl.find_opt src.log !zxid with
     | Some (txn, time, rid, close) ->
       Hashtbl.replace dst.applied rid
         (!zxid, apply_txn dst ~zxid:!zxid ~time txn);
       note_close_applied t dst ~rid close;
       Hashtbl.replace dst.log !zxid (txn, time, rid, close);
       t.transfer_diff_txns <- t.transfer_diff_txns + 1;
       (* write-through: a diff-synced txn lands on dst's disk too *)
       (match Wal.epoch_at dst.wal !zxid with
        | Some e when e = dst.epoch -> ()
        | _ ->
          wal_append dst ~start:now ~done_at:now ~zxid:!zxid ~txn ~time ~rid
            ~close);
       wal_applied t dst !zxid
     | None -> ());
    zxid := Int64.add !zxid 1L
  done;
  dst.fresh_at <- Engine.now t.engine

(* Crown [new_leader] under [epoch]: reset epoch-relative state on every
   live member, resync them from the leader, restart zxid numbering. *)
let crown t (new_leader : server) ~epoch =
  t.leader <- new_leader.id;
  Array.iter
    (fun s ->
      if s.role <> Down then begin
        s.epoch <- epoch;
        Wal.note_epoch s.wal epoch;
        s.awaiting_quorum <- false;
        s.recovered_tail <- [];
        s.disk_synced <- false;
        Hashtbl.reset s.proposals;
        Hashtbl.reset s.committed;
        Hashtbl.reset s.pending;
        Hashtbl.reset s.pending_rids;
        (* queued batches and frontiers are epoch-relative state *)
        reset_pipeline_state s;
        if s.id = new_leader.id then s.role <- Leader
        else begin
          s.role <- (if is_observer_id t s.id then Observer else Follower);
          state_transfer t ~from:new_leader.id ~target:s.id
        end;
        s.next_apply <- Int64.add (Ztree.last_zxid s.tree) 1L;
        s.fresh_at <- Engine.now t.engine;
        flush_deferred s
      end)
    t.members;
  new_leader.next_zxid <- Int64.add (Ztree.last_zxid new_leader.tree) 1L;
  new_leader.next_commit <- new_leader.next_zxid;
  t.last_commit_at <- Engine.now t.engine;
  refresh_peers t

let alive_voters t =
  let n = ref 0 in
  Array.iter
    (fun (s : server) ->
      if s.role <> Down && not (is_observer_id t s.id) then incr n)
    t.members;
  !n

let elect t =
  (* servers parked by a whole-cluster power failure must not be crowned
     into a minority leadership by a stale election timer: the recovery
     election in [restart] runs once a quorum of voters is back *)
  if
    Array.exists (fun (s : server) -> s.awaiting_quorum) t.members
    && alive_voters t < quorum t
  then ()
  else begin
    let best = ref None in
    Array.iter
      (fun s ->
        (* observers never lead *)
        if s.role <> Down && not (is_observer_id t s.id) then
          match !best with
          | None -> best := Some s
          | Some b ->
            let key (x : server) = (Ztree.last_zxid x.tree, x.id) in
            if key s > key b then best := Some s)
      t.members;
    match !best with
    | None -> ()  (* total outage; a later restart re-elects *)
    | Some new_leader -> crown t new_leader ~epoch:(new_leader.epoch + 1)
  end

(* {2 Whole-cluster power-failure recovery}

   Every riser recovered locally from its own disk; once a quorum of
   voters is back, ZAB elects the member with the most advanced durable
   log — comparing (epoch, zxid) of the last readable WAL record, epoch
   first — and the winner's log, readable-but-uncommitted tail
   included, becomes history. Any election quorum intersects every ack
   quorum, so each acknowledged write is on at least one riser's disk
   and the epoch-first comparison guarantees the winner holds it. *)

let commit_recovered_tail t (s : server) =
  List.iter
    (fun (e : Wal.entry) ->
      let rid = { rsession = e.Wal.e_rsession; rcxid = e.Wal.e_rcxid } in
      let zxid = e.Wal.e_zxid in
      if Ztree.last_zxid s.tree < zxid then begin
        Hashtbl.replace s.applied rid
          (zxid, apply_txn s ~zxid ~time:e.Wal.e_time e.Wal.e_txn);
        note_close_applied t s ~rid e.Wal.e_close
      end;
      Hashtbl.replace s.log zxid (e.Wal.e_txn, e.Wal.e_time, rid, e.Wal.e_close);
      wal_applied t s zxid;
      t.wal_tail_commits <- t.wal_tail_commits + 1)
    s.recovered_tail;
  s.recovered_tail <- []

let recovery_elect t =
  (* candidates that never lost power still vote with their durable
     log: read it back now so every [recovered_log_end] is current *)
  Array.iter
    (fun (s : server) ->
      if s.role <> Down && not (is_observer_id t s.id) && not s.disk_synced
      then begin
        let r = Wal.recover s.wal in
        s.recovered_tail <- r.Wal.rc_tail;
        s.recovered_log_end <- r.Wal.rc_log_end;
        s.disk_synced <- true
      end)
    t.members;
  let best = ref None in
  Array.iter
    (fun s ->
      if s.role <> Down && not (is_observer_id t s.id) then
        match !best with
        | None -> best := Some s
        | Some b ->
          let key (x : server) =
            let e, z = x.recovered_log_end in
            (e, z, x.id)
          in
          if key s > key b then best := Some s)
    t.members;
  match !best with
  | None -> ()
  | Some new_leader ->
    commit_recovered_tail t new_leader;
    let epoch =
      1
      + Array.fold_left
          (fun acc (s : server) ->
            if s.role <> Down then max acc (max s.epoch (Wal.epoch s.wal))
            else acc)
          0 t.members
    in
    crown t new_leader ~epoch

(* Local crash recovery: rebuild the tree, the committed log and the
   dedup table from stable storage — newest valid snapshot, then the
   contiguous committed WAL suffix. RAM state from before the crash is
   discarded wholesale; only armed watches migrate (still-connected
   sessions rely on them for invalidation). The modeled recovery time
   (snapshot load plus per-record replay at the configured device and
   apply costs) is recorded as an observation, not slept: restarts were
   instantaneous before this module existed and recorded schedules must
   stay byte-identical. *)
let recover_local t (s : server) =
  let r = Wal.recover s.wal in
  let stale = s.tree in
  let tree =
    match r.Wal.rc_snapshot with
    | Some payload -> (
      match Ztree.deserialize payload with
      | Ok tree -> tree
      | Error _ -> Ztree.create () (* unreachable: checksum-gated *))
    | None -> Ztree.create ()
  in
  s.tree <- tree;
  Hashtbl.reset s.log;
  Hashtbl.reset s.applied;
  List.iter
    (fun (e : Wal.entry) ->
      let rid = { rsession = e.Wal.e_rsession; rcxid = e.Wal.e_rcxid } in
      let zxid = e.Wal.e_zxid in
      if Ztree.last_zxid s.tree < zxid then begin
        Hashtbl.replace s.applied rid
          (zxid, apply_txn s ~zxid ~time:e.Wal.e_time e.Wal.e_txn);
        note_close_applied t s ~rid e.Wal.e_close
      end;
      Hashtbl.replace s.log zxid (e.Wal.e_txn, e.Wal.e_time, rid, e.Wal.e_close))
    r.Wal.rc_replay;
  (* watches migrate only once the tree is fully rebuilt: comparing
     against the half-replayed tree would fire spurious events for
     every node the replay had not reached yet *)
  Ztree.migrate_watches ~from:stale ~into:s.tree;
  s.recovered_tail <- r.Wal.rc_tail;
  s.recovered_log_end <- r.Wal.rc_log_end;
  s.disk_synced <- true;
  t.recoveries <- t.recoveries + 1;
  let recovery_time =
    (match r.Wal.rc_snapshot with
     | Some p ->
       (* snapshot load at device speed, one persist per 64 KiB page *)
       float_of_int ((String.length p / 65536) + 1) *. t.cfg.persist
     | None -> 0.)
    +. (float_of_int r.Wal.rc_replayed
        *. (t.cfg.persist +. t.cfg.follower_apply))
  in
  t.recovery_time_total <- t.recovery_time_total +. recovery_time;
  if recovery_time > t.recovery_time_max then
    t.recovery_time_max <- recovery_time;
  if Obs.Trace.enabled t.trace then
    Obs.Trace.observe t.trace "zk.wal.recovery_time" recovery_time

let crash t id =
  let s = t.members.(id) in
  if s.role <> Down then begin
    let was_leader = s.role = Leader in
    s.role <- Down;
    Hashtbl.reset s.pending;
    Hashtbl.reset s.pending_rids;
    reset_pipeline_state s;
    (* a crash loses RAM: whatever sat unprocessed in the inbox is gone,
       held-back replies die with the connection state, and so does the
       lease-interest table — clients ride out the hole on the TTL *)
    Mailbox.clear s.inbox;
    s.deferred <- [];
    Lease.clear s.leases;
    s.recovered_tail <- [];
    s.awaiting_quorum <- false;
    s.disk_synced <- false;
    (* the disk keeps only what the WAL device finished before the power
       died: un-fsynced appends are gone, the in-flight one is torn.
       [restart] rebuilds all volatile state from this. *)
    Wal.power_off s.wal ~now:(Engine.now t.engine);
    refresh_peers t;
    if was_leader then
      Engine.schedule t.engine ~delay:t.cfg.election_timeout (fun () -> elect t)
  end

let restart t id =
  let s = t.members.(id) in
  if s.role = Down then begin
    s.role <- (if is_observer_id t id then Observer else Follower);
    s.epoch <- t.members.(t.leader).epoch;
    Hashtbl.reset s.proposals;
    Hashtbl.reset s.committed;
    s.commit_frontier <- 0L;
    (* local recovery first, from disk alone: snapshot load + WAL replay.
       Only the genuinely missing remainder is then diff-synced from a
       live leader (if any). *)
    recover_local t s;
    if t.members.(t.leader).role = Leader && t.leader <> id then begin
      let leader = t.members.(t.leader) in
      state_transfer t ~from:t.leader ~target:id;
      (* Re-propose the leader's uncommitted transactions so writes that
         stalled during a quorum outage can reach quorum and commit.
         Observers do not vote, so they are not re-proposed to. *)
      if not (is_observer_id t id) then begin
        let stalled =
          Hashtbl.fold (fun zxid pw acc -> (zxid, pw) :: acc) leader.pending []
        in
        match
          List.sort (fun (a, _) (b, _) -> Int64.compare a b) stalled
        with
        | [] -> ()
        | stalled ->
          let entries =
            List.map
              (fun (zxid, pw) -> (zxid, pw.p_txn, pw.p_time, pw.p_rid, pw.p_close))
              stalled
          in
          send t ~src:t.leader ~dst:id
            (Propose_batch
               { epoch = leader.epoch; entries; committed_upto = 0L })
      end
    end
    else if t.members.(t.leader).role <> Leader then begin
      (* No live leader anywhere. If any riser is parked awaiting quorum
         (or this restart finds itself alone), the whole ensemble went
         down: wait for a quorum of voters to recover, then run the
         power-failure recovery election over durable log ends. With a
         quorum already up and nobody parked, the old path — a plain
         election among live trees — still applies (e.g. a follower
         restarting inside the leader's election-timeout window). *)
      let voters = alive_voters t in
      let parked =
        Array.exists (fun (x : server) -> x.awaiting_quorum) t.members
      in
      if voters < quorum t then
        s.awaiting_quorum <- not (is_observer_id t id)
      else if parked || s.awaiting_quorum then recovery_elect t
      else elect t
    end;
    s.next_apply <- Int64.add (Ztree.last_zxid s.tree) 1L;
    s.fresh_at <- Engine.now t.engine;
    refresh_peers t
  end

(* {2 Storage-fault injection} *)

let tear_wal_tail t id = ignore (Wal.tear_tail t.members.(id).wal)
let corrupt_wal t id ~fraction = ignore (Wal.corrupt t.members.(id).wal ~fraction)
let corrupt_snapshot t id = ignore (Wal.corrupt_snapshot t.members.(id).wal)

let disk_stall t id ~duration =
  Wal.stall t.members.(id).wal ~now:(Engine.now t.engine) ~duration

let add_fsync_delay t id d = Wal.add_fsync_delay t.members.(id).wal d

(* {2 Stable-storage introspection} *)

let sum_wal f t =
  Array.fold_left (fun acc (s : server) -> acc + f s.wal) 0 t.members

let wal_appended t = sum_wal Wal.appended t
let wal_replayed t = sum_wal Wal.replayed t
let wal_truncated t = sum_wal Wal.truncated t
let wal_tail_dropped t = sum_wal Wal.tail_dropped t
let snap_loads t = sum_wal Wal.snap_loads t
let snap_fallbacks t = sum_wal Wal.snap_fallbacks t
let wal_records t id = Wal.records t.members.(id).wal
let wal_snapshots t id = Wal.snapshots t.members.(id).wal

let durable_zxid t id =
  Wal.durable_zxid t.members.(id).wal ~now:(Engine.now t.engine)

let recoveries t = t.recoveries
let recovery_time_total t = t.recovery_time_total
let recovery_time_max t = t.recovery_time_max
let wal_tail_commits t = t.wal_tail_commits
let transfer_diff_txns t = t.transfer_diff_txns
let transfer_snaps t = t.transfer_snaps

(* {2 Client side} *)

(* Suspend the calling process until [reply] fires or [timeout] elapses;
   late replies after a timeout are ignored. The reply crosses the
   network from [from] back to the session's endpoint [cep], so it is
   subject to the same partitions and loss as the request. *)
let await_reply t ~timeout ~from ~cep issue =
  Process.suspend_v (fun resume ->
      let settled = ref false in
      let finish v = if not !settled then begin settled := true; resume v end in
      Engine.schedule t.engine ~delay:timeout (fun () ->
          finish (Error Zerror.ZOPERATIONTIMEOUT));
      issue (fun result ->
          Net.send t.net ~src:t.eps.(from) ~dst:cep (fun () -> finish result)))

let pick_alive t preferred =
  if t.members.(preferred).role <> Down then preferred
  else
    match alive_ids t with
    | [] -> preferred
    | ids -> List.nth ids (preferred mod List.length ids)

(* Span label for a client write, by mutation kind. *)
let txn_label = function
  | [ Txn.Create _ ] -> "create"
  | [ Txn.Delete _ ] -> "delete"
  | [ Txn.Set_data _ ] -> "set"
  | _ -> "multi"

(* Capped exponential backoff with full jitter between retry attempts;
   [retry_backoff = 0.] (the default) retries immediately. *)
let backoff_sleep t rng ~attempt =
  if t.cfg.retry_backoff > 0. then begin
    let base = t.cfg.retry_backoff *. (2. ** float_of_int attempt) in
    let capped = Float.min base t.cfg.retry_backoff_cap in
    Process.sleep (capped *. (0.5 +. (0.5 *. Rng.float rng)))
  end

(* The request id is fixed by the caller and reused verbatim across
   timeout retries: if the timed-out attempt actually committed, the
   leader's dedup table answers the retry with the original result
   instead of applying the transaction a second time. *)
let rec submit_attempts t ~server ~cep ~rng ~attempt ~attempts ~rid ~span txn =
  let target = pick_alive t server in
  let result =
    await_reply t ~timeout:t.cfg.request_timeout ~from:target ~cep (fun reply ->
        send_from t ~src_ep:cep ~dst:target
          (Write { txn; rid; origin = target; reply; span }))
  in
  match result with
  | Error Zerror.ZOPERATIONTIMEOUT when attempts > 1 ->
    backoff_sleep t rng ~attempt;
    submit_attempts t ~server ~cep ~rng ~attempt:(attempt + 1)
      ~attempts:(attempts - 1) ~rid ~span txn
  | result -> result

let submit t ~server ~cep ~rng ~attempts ~rid txn =
  let span = Obs.Trace.wspan t.trace ~now:(Engine.now t.engine) in
  let result =
    submit_attempts t ~server ~cep ~rng ~attempt:0 ~attempts ~rid ~span txn
  in
  (* finish_write rejects half-stamped spans, so a retried or failed-over
     write drops out of the breakdown instead of skewing it *)
  Obs.Trace.finish_write t.trace ~op:(txn_label txn) span
    ~now:(Engine.now t.engine);
  result

let rec read_attempts t ~server ~cep ~rng ~attempt ~attempts exec_read =
  let target = pick_alive t server in
  let result =
    await_reply t ~timeout:t.cfg.request_timeout ~from:target ~cep (fun reply ->
        send_from t ~src_ep:cep ~dst:target
          (Read
             { exec = (fun srv -> reply (Ok (exec_read srv)));
               refuse = (fun e -> reply (Error e)) }))
  in
  match result with
  | Error Zerror.ZOPERATIONTIMEOUT when attempts > 1 ->
    backoff_sleep t rng ~attempt;
    read_attempts t ~server ~cep ~rng ~attempt:(attempt + 1)
      ~attempts:(attempts - 1) exec_read
  | Error e -> Error e
  | Ok v -> Ok v

let read t ~server ~cep ~rng ~attempts exec_read =
  let t0 = Engine.now t.engine in
  let result = read_attempts t ~server ~cep ~rng ~attempt:0 ~attempts exec_read in
  Obs.Trace.record_span t.trace "zk.read.total" (Engine.now t.engine -. t0);
  result

let max_attempts = 8

let session t ?server () =
  let home =
    match server with
    | Some id -> id
    | None ->
      (* observers take their share of sessions: that is their point *)
      let id = t.next_server in
      t.next_server <- (t.next_server + 1) mod member_count t;
      id
  in
  let session_id = t.next_session in
  t.next_session <- Int64.add session_id 1L;
  (* the session's own network endpoint: it sits on its home server's
     side of any partition, so cutting a server off strands its clients *)
  let cep =
    Net.endpoint ~follow:t.eps.(home) t.net (Printf.sprintf "c%Ld" session_id)
  in
  let rng = Rng.split t.session_rng in
  (* ZooKeeper's cxid: one monotone stamp per client request; retries of
     the same request keep the stamp *)
  let next_cxid = ref 0L in
  let fresh_rid () =
    let cxid = !next_cxid in
    next_cxid := Int64.add cxid 1L;
    { rsession = session_id; rcxid = cxid }
  in
  (* Session-expiry detection: a session whose every request has failed
     for [session_timeout] seconds straight is declared expired — its
     ops fail fast with ZSESSIONEXPIRED, and a best-effort Close_session
     is fired so the server reaps its ephemerals (whose deletion events
     fire the session's watches) and evicts its dedup entries. *)
  let expired = ref false in
  let failing_since = ref None in
  let expire () =
    if not !expired then begin
      expired := true;
      t.sessions_expired <- t.sessions_expired + 1;
      let origin = pick_alive t home in
      send_from t ~src_ep:cep ~dst:origin
        (Close_session
           { owner = session_id; rid = fresh_rid (); origin;
             reply = ignore; span = Obs.Trace.no_wspan })
    end
  in
  let track : 'a. ('a, Zerror.t) result -> ('a, Zerror.t) result =
   fun result ->
    match result with
    | Error (Zerror.ZOPERATIONTIMEOUT | Zerror.ZCONNECTIONLOSS) -> (
      let now = Engine.now t.engine in
      match !failing_since with
      | None ->
        failing_since := Some now;
        result
      | Some since when now -. since >= t.cfg.session_timeout ->
        expire ();
        Error Zerror.ZSESSIONEXPIRED
      | Some _ -> result)
    | result ->
      failing_since := None;
      result
  in
  let submit txn =
    if !expired then Error Zerror.ZSESSIONEXPIRED
    else
      track
        (submit t ~server:home ~cep ~rng ~attempts:max_attempts
           ~rid:(fresh_rid ()) txn)
  in
  let submit_async txn callback =
    (* fire-and-callback: no retry; the deadline still bounds the wait *)
    if !expired then callback (Error Zerror.ZSESSIONEXPIRED)
    else begin
      let settled = ref false in
      let finish result =
        if not !settled then begin
          settled := true;
          callback result
        end
      in
      Engine.schedule t.engine ~delay:t.cfg.request_timeout (fun () ->
          finish (Error Zerror.ZOPERATIONTIMEOUT));
      let target = pick_alive t home in
      send_from t ~src_ep:cep ~dst:target
        (Write
           { txn;
             rid = fresh_rid ();
             origin = target;
             span = Obs.Trace.no_wspan;
             reply =
               (fun result ->
                 Net.send t.net ~src:t.eps.(target) ~dst:cep (fun () ->
                     finish result)) })
    end
  in
  let read exec =
    if !expired then Error Zerror.ZSESSIONEXPIRED
    else track (read t ~server:home ~cep ~rng ~attempts:max_attempts exec)
  in
  let or_loss = function Ok v -> v | Error e -> Error e in
  let create ?(ephemeral = false) ?(sequential = false) path ~data =
    let owner = if ephemeral then session_id else 0L in
    match submit [ Zk_client.create_op ~ephemeral:owner ~sequential path ~data ] with
    | Ok [ Txn.Created actual ] -> Ok actual
    | Ok _ -> Error Zerror.ZBADARGUMENTS
    | Error _ as e -> e
  in
  let set ?(version = -1) path ~data =
    Result.map ignore (submit [ Zk_client.set_op ~version path ~data ])
  in
  let delete ?(version = -1) path =
    Result.map ignore (submit [ Zk_client.delete_op ~version path ])
  in
  let close () =
    if not !expired then
      let rid = fresh_rid () in
      ignore
        (await_reply t ~timeout:t.cfg.request_timeout
           ~from:(pick_alive t home) ~cep (fun reply ->
             let origin = pick_alive t home in
             send_from t ~src_ep:cep ~dst:origin
               (Close_session
                  { owner = session_id; rid; origin; reply;
                    span = Obs.Trace.no_wspan })))
  in
  (* The session's single revocation channel: lease reads register this
     callback in the serving replica's lease table, and every committed
     change to a leased directory is pushed through it — one aggregated
     subscription per session, not one watch per cached znode. *)
  let invalidation = ref (fun (_ : Ztree.watch_event) -> ()) in
  let notify event = !invalidation event in
  let lease (srv : server) dir =
    Lease.grant srv.leases ~session:session_id ~dir ~notify
  in
  (* Fire-and-forget watch cancellation, aimed where reads are served
     (the home server, or its stand-in while it is down). Best-effort: a
     watch armed on a different replica by a timed-out retry stays until
     it fires once — safe, because fire-once callbacks are no-ops after
     the entry is gone. *)
  let release exec =
    if not !expired then begin
      let target = pick_alive t home in
      send_from t ~src_ep:cep ~dst:target (Release { exec })
    end
  in
  { Zk_client.create;
    get = (fun path -> or_loss (read (fun srv -> Ztree.get srv.tree path)));
    set;
    delete;
    exists = (fun path -> read (fun srv -> Ztree.exists srv.tree path));
    children =
      (fun path -> or_loss (read (fun srv -> Ztree.children srv.tree path)));
    children_with_data =
      (fun path ->
        (* one Read message — one coordination round trip for the whole
           listing, names and payloads together *)
        or_loss (read (fun srv -> Ztree.children_with_data srv.tree path)));
    children_with_data_watch =
      (fun path cb ->
        or_loss
          (read (fun srv ->
               Ztree.watch_children srv.tree path cb;
               match Ztree.children_with_data srv.tree path with
               | Ok entries ->
                 List.iter
                   (fun (name, _, _) ->
                     Ztree.watch_data srv.tree (Zpath.concat path name) cb)
                   entries;
                 Ok entries
               | Error _ as e -> e)));
    multi = submit;
    multi_async = submit_async;
    watch_data =
      (fun path cb -> ignore (read (fun srv -> Ztree.watch_data srv.tree path cb)));
    watch_children =
      (fun path cb ->
        ignore (read (fun srv -> Ztree.watch_children srv.tree path cb)));
    get_watch =
      (fun path cb ->
        (* one server visit arms the watch and reads *)
        or_loss
          (read (fun srv ->
               Ztree.watch_data srv.tree path cb;
               Ztree.get srv.tree path)));
    children_watch =
      (fun path cb ->
        or_loss
          (read (fun srv ->
               Ztree.watch_children srv.tree path cb;
               Ztree.children srv.tree path)));
    lease_get =
      (fun path ->
        or_loss
          (read (fun srv ->
               let deadline = lease srv (Zpath.parent path) in
               match Ztree.get srv.tree path with
               | Ok (data, stat) -> Ok (Some (data, stat), deadline)
               | Error Zerror.ZNONODE -> Ok (None, deadline)
               | Error _ as e -> e)));
    lease_children =
      (fun path ->
        or_loss
          (read (fun srv ->
               match Ztree.children srv.tree path with
               | Ok names -> Ok (names, lease srv path)
               | Error _ as e -> e)));
    lease_children_with_data =
      (fun path ->
        or_loss
          (read (fun srv ->
               match Ztree.children_with_data srv.tree path with
               | Ok entries -> Ok (entries, lease srv path)
               | Error _ as e -> e)));
    set_invalidation = (fun cb -> invalidation := cb);
    release_data_watch =
      (fun path cb ->
        release (fun srv -> ignore (Ztree.cancel_data_watch srv.tree path cb)));
    release_child_watch =
      (fun path cb ->
        release (fun srv -> ignore (Ztree.cancel_child_watch srv.tree path cb)));
    sync = (fun () -> ignore (submit []));
    close;
    session_id }
