module Engine = Simkit.Engine
module Process = Simkit.Process
module Mailbox = Simkit.Mailbox

type config = {
  servers : int;
  observers : int;
  net_latency : float;
  rpc_cpu : float;
  read_service : float;
  write_service : float;
  delete_service : float;
  set_service : float;
  persist : float;
  follower_apply : float;
  election_timeout : float;
  request_timeout : float;
  load_factor : float;
  max_batch : int;
  batch_delay : float;
}

let default_config ~servers =
  { servers;
    observers = 0;
    net_latency = 60e-6;
    rpc_cpu = 5e-6;
    read_service = 40e-6;
    write_service = 50e-6;
    delete_service = 82e-6;
    set_service = 78e-6;
    persist = 20e-6;
    follower_apply = 8e-6;
    election_timeout = 0.5;
    request_timeout = 2.0;
    load_factor = 1.0;
    max_batch = 1;
    batch_delay = 0. }

type reply = (Txn.result_item list, Zerror.t) result -> unit

(* Session-scoped request id (ZooKeeper's session id + client xid): the
   client stamps every write once and reuses the stamp across timeout
   retries, so the leader can recognize a resubmission of a transaction
   it already committed and return the original result instead of
   applying it twice. *)
type rid = {
  rsession : int64;
  rcxid : int64;
}

type msg =
  | Write of {
      txn : Txn.t;
      rid : rid;
      origin : int;
      reply : reply;
      span : Obs.Trace.wspan;
    }
  | Read of { exec : Ztree.t -> unit }
  | Propose_batch of { epoch : int; entries : (int64 * Txn.t * float * rid) list }
    (* one leader->follower round carries a whole group-committed batch;
       a singleton batch is exactly the classic per-txn PROPOSAL *)
  | Ack_batch of { epoch : int; zxids : int64 list; from : int }
  | Commit_batch of { epoch : int; zxids : int64 list }
  | Inform_batch of { epoch : int; entries : (int64 * Txn.t * float * rid) list }
    (* ZAB INFORM: commit + payload, sent to non-voting observers *)
  | Deliver_reply of {
      zxid : int64;
      result : (Txn.result_item list, Zerror.t) result;
      reply : reply;
    }
  | Close_session of {
      owner : int64;
      rid : rid;
      origin : int;
      reply : reply;
      span : Obs.Trace.wspan;
    }

type role = Leader | Follower | Observer | Down

type pending_write = {
  p_txn : Txn.t;
  p_time : float;
  p_rid : rid;
  (* a timed-out retry of a still-in-flight write re-points the reply
     (and its route home) at the retry's continuation *)
  mutable p_origin : int;
  mutable p_reply : reply;
  mutable p_acks : int;
  p_span : Obs.Trace.wspan;
}

type applied_result = (Txn.result_item list, Zerror.t) result

type server = {
  id : int;
  mutable role : role;
  mutable epoch : int;
  mutable tree : Ztree.t;
  log : (int64, Txn.t * float * rid) Hashtbl.t;  (* committed txns, by zxid *)
  (* request id -> result of every txn this replica has applied: the
     dedup table behind exactly-once writes. Replicated implicitly —
     each replica records entries as it applies the same committed
     sequence — so it survives leader failover. *)
  applied : (rid, applied_result) Hashtbl.t;
  inbox : msg Mailbox.t;
  (* leader state *)
  pending : (int64, pending_write) Hashtbl.t;
  pending_rids : (rid, int64) Hashtbl.t;  (* in-flight request ids *)
  mutable next_zxid : int64;
  mutable next_commit : int64;
  (* follower state *)
  proposals : (int64, Txn.t * float * rid) Hashtbl.t;
  committed : (int64, unit) Hashtbl.t;
  mutable next_apply : int64;
  (* counters *)
  mutable reads : int;
}

type t = {
  engine : Engine.t;
  cfg : config;
  trace : Obs.Trace.t;
  (* metric-name prefix for per-shard instruments ("" = unsharded); a
     tagged ensemble additionally records its gauges and queue-wait
     under [zk.<tag>.*] so a sharded deployment's balance is visible. *)
  tag : string;
  members : server array;
  mutable leader : int;
  mutable next_session : int64;
  mutable next_server : int;
  mutable commits : int;
  mutable dedup_hits : int;
  (* fan-out targets, precomputed so the per-batch hot path does not
     rebuild them; refreshed whenever any member changes role *)
  mutable follower_peers : server list;
  mutable observer_peers : server list;
}

let config t = t.cfg
let trace t = t.trace
let leader_id t = if t.members.(t.leader).role = Leader then Some t.leader else None

let leader_queue_depth t =
  let s = t.members.(t.leader) in
  if s.role = Leader then Mailbox.length s.inbox else 0

let alive_ids t =
  Array.to_list
    (Array.map (fun s -> s.id)
       (Array.of_seq
          (Seq.filter (fun s -> s.role <> Down) (Array.to_seq t.members))))

let tree_of t id = t.members.(id).tree

let server_resident_bytes t id =
  Memory_model.server_resident_bytes t.members.(id).tree

let reads_served t id = t.members.(id).reads
let writes_committed t = t.commits
let dedup_hits t = t.dedup_hits

let quorum t = (t.cfg.servers / 2) + 1
let is_observer_id t id = id >= t.cfg.servers
let member_count t = t.cfg.servers + t.cfg.observers
let member_ids t = List.init (member_count t) Fun.id

(* Service times scaled by the co-located-load factor. *)
let svc t base = base *. t.cfg.load_factor

(* Roles are exclusive, so the leader never appears in either list. *)
let refresh_peers t =
  let followers = ref [] and observers = ref [] in
  Array.iter
    (fun (s : server) ->
      match s.role with
      | Follower -> followers := s :: !followers
      | Observer -> observers := s :: !observers
      | Leader | Down -> ())
    t.members;
  t.follower_peers <- List.rev !followers;
  t.observer_peers <- List.rev !observers

let send t ~dst msg =
  Engine.schedule t.engine ~delay:t.cfg.net_latency (fun () ->
      let s = t.members.(dst) in
      if s.role <> Down then Mailbox.send s.inbox msg)

(* {2 Leader commit path} *)

let try_commit t (s : server) =
  if s.role = Leader then begin
    (* drain every consecutive quorum-acked zxid starting at next_commit;
       the leader's own persisted copy counts toward the quorum *)
    let rec take acc =
      match Hashtbl.find_opt s.pending s.next_commit with
      | Some pw when pw.p_acks + 1 >= quorum t ->
        let zxid = s.next_commit in
        Hashtbl.remove s.pending zxid;
        s.next_commit <- Int64.add zxid 1L;
        take ((zxid, pw) :: acc)
      | Some _ | None -> List.rev acc
    in
    match take [] with
    | [] -> ()
    | ready ->
      (if Obs.Trace.enabled t.trace then
         let now = Engine.now t.engine in
         List.iter
           (fun (_, pw) ->
             if Obs.Trace.is_real pw.p_span then
               pw.p_span.Obs.Trace.w_quorum <- now)
           ready);
      let results =
        List.map
          (fun (zxid, pw) ->
            (* each txn applies individually: a failing txn returns its
               error to its own caller without touching its batch
               neighbours (and does not consume the zxid in the tree) *)
            let result =
              if Ztree.last_zxid s.tree < zxid then
                Ztree.apply s.tree ~zxid ~time:pw.p_time pw.p_txn
              else
                (* already applied (state transfer raced ahead): answer
                   from the dedup table rather than re-applying *)
                match Hashtbl.find_opt s.applied pw.p_rid with
                | Some result -> result
                | None -> Ok []
            in
            Hashtbl.replace s.applied pw.p_rid result;
            Hashtbl.remove s.pending_rids pw.p_rid;
            Hashtbl.replace s.log zxid (pw.p_txn, pw.p_time, pw.p_rid);
            t.commits <- t.commits + 1;
            (zxid, pw, result))
          ready
      in
      let zxids = List.map (fun (zxid, _, _) -> zxid) results in
      List.iter
        (fun (peer : server) ->
          send t ~dst:peer.id (Commit_batch { epoch = s.epoch; zxids }))
        t.follower_peers;
      (match t.observer_peers with
       | [] -> ()
       | observers ->
         let entries =
           List.map
             (fun (zxid, pw, _) -> (zxid, pw.p_txn, pw.p_time, pw.p_rid))
             results
         in
         List.iter
           (fun (peer : server) ->
             send t ~dst:peer.id (Inform_batch { epoch = s.epoch; entries }))
           observers);
      (* replies go out after the commits: the FIFO channel back to each
         origin then delivers Commit_batch first, preserving
         read-your-own-writes on the origin server *)
      List.iter
        (fun (zxid, pw, result) ->
          if pw.p_origin = s.id then pw.p_reply result
          else
            send t ~dst:pw.p_origin (Deliver_reply { zxid; result; reply = pw.p_reply }))
        results
  end

(* Leader CPU depends on the mutation kind: creates append a fresh node;
   deletes and setData must locate an existing node, update parent state
   and sweep watches — which is why the paper's Fig. 7 shows zoo_delete()
   and zoo_set() topping out well below zoo_create(). A multi costs as
   much as its most expensive op. *)
let leader_service t txn =
  let op_cost = function
    | Txn.Create _ -> t.cfg.write_service
    | Txn.Delete _ -> t.cfg.delete_service
    | Txn.Set_data _ -> t.cfg.set_service
    | Txn.Check _ -> t.cfg.write_service /. 2.
  in
  List.fold_left (fun acc op -> Float.max acc (op_cost op)) t.cfg.write_service txn

let build_session_cleanup (s : server) owner =
  List.map
    (fun path -> Txn.Delete { path; expected_version = -1 })
    (Ztree.ephemerals_of s.tree ~owner)

(* {2 Leader group commit}

   The leader drains further queued writes from its own mailbox (head
   only, so FIFO order with reads and protocol messages is preserved)
   and pays [persist] plus the follower RPC fan-out once for the whole
   batch. [max_batch = 1] reproduces the classic one-txn-per-round
   pipeline exactly. *)

let is_batchable = function
  | Write _ | Close_session _ -> true
  | _ -> false

let drain_batch t (s : server) first =
  let rec drain acc n =
    if n >= t.cfg.max_batch then (acc, n)
    else
      match Mailbox.take_if s.inbox is_batchable with
      | None -> (acc, n)
      | Some (Write { txn; rid; origin; reply; span }) ->
        drain ((txn, rid, origin, reply, span) :: acc) (n + 1)
      | Some (Close_session { owner; rid; origin; reply; span }) ->
        drain
          ((build_session_cleanup s owner, rid, origin, reply, span) :: acc)
          (n + 1)
      | Some _ -> (acc, n)
  in
  let acc, n = drain [ first ] 1 in
  let acc, _ =
    if n < t.cfg.max_batch && t.cfg.batch_delay > 0. then begin
      (* wait a beat for stragglers to fill the batch *)
      Process.sleep t.cfg.batch_delay;
      drain acc n
    end
    else (acc, n)
  in
  List.rev acc

(* The exactly-once gate. A request id the leader has already applied is
   answered from the dedup table (no new zxid, nothing re-applied); one
   that is still in flight re-points the pending write's reply at the
   retry, so the eventual commit answers the attempt the client is
   actually waiting on instead of producing a second proposal. *)
let dedup_filter t (s : server) batch =
  List.filter
    (fun (_, rid, origin, reply, _) ->
      match Hashtbl.find_opt s.applied rid with
      | Some result ->
        t.dedup_hits <- t.dedup_hits + 1;
        if origin = s.id then reply result
        else send t ~dst:origin (Deliver_reply { zxid = 0L; result; reply });
        false
      | None -> (
        match Hashtbl.find_opt s.pending_rids rid with
        | Some zxid -> (
          match Hashtbl.find_opt s.pending zxid with
          | Some pw ->
            t.dedup_hits <- t.dedup_hits + 1;
            pw.p_origin <- origin;
            pw.p_reply <- reply;
            false
          | None ->
            Hashtbl.remove s.pending_rids rid;
            true)
        | None -> true))
    batch

let leader_handle_batch t (s : server) batch =
  match dedup_filter t s batch with
  | [] -> ()
  | batch ->
    let time = Engine.now t.engine in
    (* Stamping and gauge observations are pure accumulator writes: the
       traced run sleeps exactly as long as the untraced one. *)
    (if Obs.Trace.enabled t.trace then begin
       let depth = float_of_int (Mailbox.length s.inbox)
       and size = float_of_int (List.length batch) in
       Obs.Trace.observe t.trace "zk.leader.queue_depth" depth;
       Obs.Trace.observe t.trace "zk.leader.batch_size" size;
       if t.tag <> "" then begin
         Obs.Trace.observe t.trace ("zk." ^ t.tag ^ ".leader.queue_depth") depth;
         Obs.Trace.observe t.trace ("zk." ^ t.tag ^ ".leader.batch_size") size
       end;
       let persist_dur = svc t t.cfg.persist in
       List.iter
         (fun (_, _, _, _, span) ->
           if Obs.Trace.is_real span then begin
             (* per-shard queue wait, measured where the backlog lives:
                client send -> leader batch start *)
             if t.tag <> "" then
               Obs.Trace.observe t.trace
                 ("zk." ^ t.tag ^ ".queue_wait")
                 (time -. span.Obs.Trace.w_sent);
             span.Obs.Trace.w_batch <- time;
             span.Obs.Trace.w_persist <- persist_dur
           end)
         batch
     end);
    let cpu =
      List.fold_left
        (fun acc (txn, _, _, _, _) -> acc +. leader_service t txn)
        0. batch
    in
    Process.sleep (svc t (cpu +. t.cfg.persist));
    let entries =
      List.map
        (fun (txn, rid, origin, reply, span) ->
          let zxid = s.next_zxid in
          s.next_zxid <- Int64.add zxid 1L;
          Hashtbl.replace s.pending zxid
            { p_txn = txn; p_time = time; p_rid = rid; p_origin = origin;
              p_reply = reply; p_acks = 0; p_span = span };
          Hashtbl.replace s.pending_rids rid zxid;
          (zxid, txn, time, rid))
        batch
    in
    let followers = t.follower_peers in
    Process.sleep (svc t (t.cfg.rpc_cpu *. float_of_int (List.length followers)));
    (if Obs.Trace.enabled t.trace then
       let now = Engine.now t.engine in
       List.iter
         (fun (_, _, _, _, span) ->
           if Obs.Trace.is_real span then span.Obs.Trace.w_proposed <- now)
         batch);
    List.iter
      (fun (peer : server) ->
        send t ~dst:peer.id (Propose_batch { epoch = s.epoch; entries }))
      followers;
    try_commit t s

(* {2 Follower apply path} *)

let rec follower_apply_ready t (s : server) =
  if Hashtbl.mem s.committed s.next_apply then
    match Hashtbl.find_opt s.proposals s.next_apply with
    | None -> ()  (* proposal not yet received (cleared by election) *)
    | Some (txn, time, rid) ->
      let zxid = s.next_apply in
      Hashtbl.remove s.committed zxid;
      Hashtbl.remove s.proposals zxid;
      s.next_apply <- Int64.add zxid 1L;
      if Ztree.last_zxid s.tree < zxid then
        Hashtbl.replace s.applied rid (Ztree.apply s.tree ~zxid ~time txn);
      Hashtbl.replace s.log zxid (txn, time, rid);
      follower_apply_ready t s

let handle t (s : server) msg =
  match msg with
  | Read { exec } ->
    Process.sleep (svc t t.cfg.read_service);
    if s.role <> Down then begin
      s.reads <- s.reads + 1;
      exec s.tree
    end
  | Write { txn; rid; origin; reply; span } ->
    if s.role = Leader then
      leader_handle_batch t s (drain_batch t s (txn, rid, origin, reply, span))
    else begin
      Process.sleep (svc t t.cfg.rpc_cpu);
      send t ~dst:t.leader (Write { txn; rid; origin; reply; span })
    end
  | Close_session { owner; rid; origin; reply; span } ->
    if s.role = Leader then
      let txn = build_session_cleanup s owner in
      leader_handle_batch t s (drain_batch t s (txn, rid, origin, reply, span))
    else begin
      Process.sleep (svc t t.cfg.rpc_cpu);
      send t ~dst:t.leader (Close_session { owner; rid; origin; reply; span })
    end
  | Propose_batch { epoch; entries } ->
    if epoch = s.epoch && s.role = Follower then begin
      (* one persist + one reply RPC covers the whole batch *)
      Process.sleep (svc t (t.cfg.persist +. t.cfg.rpc_cpu));
      if s.role = Follower && epoch = s.epoch then begin
        List.iter
          (fun (zxid, txn, time, rid) ->
            Hashtbl.replace s.proposals zxid (txn, time, rid))
          entries;
        let zxids = List.map (fun (zxid, _, _, _) -> zxid) entries in
        send t ~dst:t.leader (Ack_batch { epoch; zxids; from = s.id })
      end
    end
  | Ack_batch { epoch; zxids; from = _ } ->
    if epoch = s.epoch && s.role = Leader then begin
      Process.sleep (svc t t.cfg.rpc_cpu);
      List.iter
        (fun zxid ->
          match Hashtbl.find_opt s.pending zxid with
          | Some pw -> pw.p_acks <- pw.p_acks + 1
          | None -> ())
        zxids;
      try_commit t s
    end
  | Commit_batch { epoch; zxids } ->
    if epoch = s.epoch && s.role = Follower then begin
      (* applying stays per-txn work even when the commit is batched *)
      Process.sleep
        (svc t (t.cfg.follower_apply *. float_of_int (List.length zxids)));
      if s.role = Follower && epoch = s.epoch then begin
        List.iter (fun zxid -> Hashtbl.replace s.committed zxid ()) zxids;
        follower_apply_ready t s
      end
    end
  | Inform_batch { epoch; entries } ->
    if epoch = s.epoch && s.role = Observer then begin
      Process.sleep
        (svc t (t.cfg.follower_apply *. float_of_int (List.length entries)));
      (* leader->observer channel is FIFO, so informs arrive in order *)
      if s.role = Observer && epoch = s.epoch then
        List.iter
          (fun (zxid, txn, time, rid) ->
            if Ztree.last_zxid s.tree < zxid then begin
              Hashtbl.replace s.applied rid (Ztree.apply s.tree ~zxid ~time txn);
              Hashtbl.replace s.log zxid (txn, time, rid)
            end)
          entries
    end
  | Deliver_reply { zxid = _; result; reply } ->
    (* FIFO channels mean the matching Commit was processed already, so
       this server's tree reflects the write before the client resumes. *)
    Process.sleep (svc t t.cfg.rpc_cpu);
    reply result

let server_loop t s =
  let rec loop () =
    let msg = Mailbox.recv s.inbox in
    if s.role <> Down then handle t s msg;
    loop ()
  in
  loop ()

let make_server id =
  { id;
    role = Follower;
    epoch = 0;
    tree = Ztree.create ();
    log = Hashtbl.create 1024;
    applied = Hashtbl.create 1024;
    inbox = Mailbox.create ();
    pending = Hashtbl.create 64;
    pending_rids = Hashtbl.create 64;
    next_zxid = 1L;
    next_commit = 1L;
    proposals = Hashtbl.create 64;
    committed = Hashtbl.create 64;
    next_apply = 1L;
    reads = 0 }

let start ?(trace = Obs.Trace.null) ?(tag = "") engine cfg =
  if cfg.servers < 1 then invalid_arg "Ensemble.start: servers < 1";
  if cfg.observers < 0 then invalid_arg "Ensemble.start: observers < 0";
  if cfg.max_batch < 1 then invalid_arg "Ensemble.start: max_batch < 1";
  if cfg.batch_delay < 0. then invalid_arg "Ensemble.start: batch_delay < 0";
  let members = Array.init (cfg.servers + cfg.observers) make_server in
  members.(0).role <- Leader;
  for i = cfg.servers to cfg.servers + cfg.observers - 1 do
    members.(i).role <- Observer
  done;
  let t =
    { engine; cfg; trace; tag; members; leader = 0; next_session = 1L; next_server = 0;
      commits = 0; dedup_hits = 0; follower_peers = []; observer_peers = [] }
  in
  refresh_peers t;
  Array.iter (fun s -> Process.spawn engine (fun () -> server_loop t s)) members;
  t

(* {2 Failure injection} *)

(* How far behind a returning follower may be before the leader ships a
   whole snapshot instead of replaying the log suffix txn by txn —
   mirroring ZooKeeper's SNAP vs DIFF follower synchronization. *)
let snapshot_transfer_threshold = 512L

let state_transfer t ~from ~target =
  let src = t.members.(from) and dst = t.members.(target) in
  let gap = Int64.sub (Ztree.last_zxid src.tree) (Ztree.last_zxid dst.tree) in
  if gap > snapshot_transfer_threshold then begin
    match Ztree.deserialize (Ztree.serialize src.tree) with
    | Ok tree ->
      (* swapping in the snapshot must not orphan the watches armed on
         the old tree: still-connected sessions (e.g. client caches)
         rely on them for invalidation. Unchanged watches re-arm on the
         new tree; watches whose node changed during the gap fire the
         missed event now. *)
      let stale = dst.tree in
      dst.tree <- tree;
      Ztree.migrate_watches ~from:stale ~into:tree;
      Hashtbl.reset dst.log;
      Hashtbl.iter (fun zxid entry -> Hashtbl.replace dst.log zxid entry) src.log;
      Hashtbl.reset dst.applied;
      Hashtbl.iter
        (fun rid result -> Hashtbl.replace dst.applied rid result)
        src.applied
    | Error msg ->
      (* a snapshot failure must not lose the replica: fall back to replay *)
      ignore msg
  end;
  let zxid = ref (Int64.add (Ztree.last_zxid dst.tree) 1L) in
  while !zxid <= Ztree.last_zxid src.tree do
    (match Hashtbl.find_opt src.log !zxid with
     | Some (txn, time, rid) ->
       Hashtbl.replace dst.applied rid (Ztree.apply dst.tree ~zxid:!zxid ~time txn);
       Hashtbl.replace dst.log !zxid (txn, time, rid)
     | None -> ());
    zxid := Int64.add !zxid 1L
  done

let elect t =
  let best = ref None in
  Array.iter
    (fun s ->
      (* observers never lead *)
      if s.role <> Down && not (is_observer_id t s.id) then
        match !best with
        | None -> best := Some s
        | Some b ->
          let key (x : server) = (Ztree.last_zxid x.tree, x.id) in
          if key s > key b then best := Some s)
    t.members;
  match !best with
  | None -> ()  (* total outage; a later restart re-elects *)
  | Some new_leader ->
    t.leader <- new_leader.id;
    let epoch = new_leader.epoch + 1 in
    Array.iter
      (fun s ->
        if s.role <> Down then begin
          s.epoch <- epoch;
          Hashtbl.reset s.proposals;
          Hashtbl.reset s.committed;
          Hashtbl.reset s.pending;
          Hashtbl.reset s.pending_rids;
          if s.id = new_leader.id then s.role <- Leader
          else begin
            s.role <- (if is_observer_id t s.id then Observer else Follower);
            state_transfer t ~from:new_leader.id ~target:s.id
          end;
          s.next_apply <- Int64.add (Ztree.last_zxid s.tree) 1L
        end)
      t.members;
    new_leader.next_zxid <- Int64.add (Ztree.last_zxid new_leader.tree) 1L;
    new_leader.next_commit <- new_leader.next_zxid;
    refresh_peers t

let crash t id =
  let s = t.members.(id) in
  if s.role <> Down then begin
    let was_leader = s.role = Leader in
    s.role <- Down;
    Hashtbl.reset s.pending;
    Hashtbl.reset s.pending_rids;
    refresh_peers t;
    if was_leader then
      Engine.schedule t.engine ~delay:t.cfg.election_timeout (fun () -> elect t)
  end

let restart t id =
  let s = t.members.(id) in
  if s.role = Down then begin
    s.role <- (if is_observer_id t id then Observer else Follower);
    s.epoch <- t.members.(t.leader).epoch;
    Hashtbl.reset s.proposals;
    Hashtbl.reset s.committed;
    if t.members.(t.leader).role = Leader && t.leader <> id then begin
      let leader = t.members.(t.leader) in
      state_transfer t ~from:t.leader ~target:id;
      (* Re-propose the leader's uncommitted transactions so writes that
         stalled during a quorum outage can reach quorum and commit.
         Observers do not vote, so they are not re-proposed to. *)
      if not (is_observer_id t id) then begin
        let stalled =
          Hashtbl.fold (fun zxid pw acc -> (zxid, pw) :: acc) leader.pending []
        in
        match
          List.sort (fun (a, _) (b, _) -> Int64.compare a b) stalled
        with
        | [] -> ()
        | stalled ->
          let entries =
            List.map (fun (zxid, pw) -> (zxid, pw.p_txn, pw.p_time, pw.p_rid)) stalled
          in
          send t ~dst:id (Propose_batch { epoch = leader.epoch; entries })
      end
    end
    else if t.members.(t.leader).role <> Leader then
      (* the whole ensemble was down: this server seeds a new election *)
      elect t;
    s.next_apply <- Int64.add (Ztree.last_zxid s.tree) 1L;
    refresh_peers t
  end

(* {2 Client side} *)

(* Suspend the calling process until [reply] fires or [timeout] elapses;
   late replies after a timeout are ignored. *)
let await_reply t ~timeout issue =
  Process.suspend_v (fun resume ->
      let settled = ref false in
      let finish v = if not !settled then begin settled := true; resume v end in
      Engine.schedule t.engine ~delay:timeout (fun () ->
          finish (Error Zerror.ZOPERATIONTIMEOUT));
      issue (fun result ->
          Engine.schedule t.engine ~delay:t.cfg.net_latency (fun () -> finish result)))

let pick_alive t preferred =
  if t.members.(preferred).role <> Down then preferred
  else
    match alive_ids t with
    | [] -> preferred
    | ids -> List.nth ids (preferred mod List.length ids)

(* Span label for a client write, by mutation kind. *)
let txn_label = function
  | [ Txn.Create _ ] -> "create"
  | [ Txn.Delete _ ] -> "delete"
  | [ Txn.Set_data _ ] -> "set"
  | _ -> "multi"

(* The request id is fixed by the caller and reused verbatim across
   timeout retries: if the timed-out attempt actually committed, the
   leader's dedup table answers the retry with the original result
   instead of applying the transaction a second time. *)
let rec submit_attempts t ~server ~attempts ~rid ~span txn =
  let target = pick_alive t server in
  let result =
    await_reply t ~timeout:t.cfg.request_timeout (fun reply ->
        send t ~dst:target (Write { txn; rid; origin = target; reply; span }))
  in
  match result with
  | Error Zerror.ZOPERATIONTIMEOUT when attempts > 1 ->
    submit_attempts t ~server ~attempts:(attempts - 1) ~rid ~span txn
  | result -> result

let submit t ~server ~attempts ~rid txn =
  let span = Obs.Trace.wspan t.trace ~now:(Engine.now t.engine) in
  let result = submit_attempts t ~server ~attempts ~rid ~span txn in
  (* finish_write rejects half-stamped spans, so a retried or failed-over
     write drops out of the breakdown instead of skewing it *)
  Obs.Trace.finish_write t.trace ~op:(txn_label txn) span
    ~now:(Engine.now t.engine);
  result

let rec read_attempts t ~server ~attempts exec_read =
  let target = pick_alive t server in
  let result =
    await_reply t ~timeout:t.cfg.request_timeout (fun reply ->
        send t ~dst:target (Read { exec = (fun tree -> reply (Ok (exec_read tree))) }))
  in
  match result with
  | Error Zerror.ZOPERATIONTIMEOUT when attempts > 1 ->
    read_attempts t ~server ~attempts:(attempts - 1) exec_read
  | Error e -> Error e
  | Ok v -> Ok v

let read t ~server ~attempts exec_read =
  let t0 = Engine.now t.engine in
  let result = read_attempts t ~server ~attempts exec_read in
  Obs.Trace.record_span t.trace "zk.read.total" (Engine.now t.engine -. t0);
  result

let max_attempts = 8

let session t ?server () =
  let home =
    match server with
    | Some id -> id
    | None ->
      (* observers take their share of sessions: that is their point *)
      let id = t.next_server in
      t.next_server <- (t.next_server + 1) mod member_count t;
      id
  in
  let session_id = t.next_session in
  t.next_session <- Int64.add session_id 1L;
  (* ZooKeeper's cxid: one monotone stamp per client request; retries of
     the same request keep the stamp *)
  let next_cxid = ref 0L in
  let fresh_rid () =
    let cxid = !next_cxid in
    next_cxid := Int64.add cxid 1L;
    { rsession = session_id; rcxid = cxid }
  in
  let submit txn = submit t ~server:home ~attempts:max_attempts ~rid:(fresh_rid ()) txn in
  let submit_async txn callback =
    (* fire-and-callback: no retry; the deadline still bounds the wait *)
    let settled = ref false in
    let finish result =
      if not !settled then begin
        settled := true;
        callback result
      end
    in
    Engine.schedule t.engine ~delay:t.cfg.request_timeout (fun () ->
        finish (Error Zerror.ZOPERATIONTIMEOUT));
    let target = pick_alive t home in
    send t ~dst:target
      (Write
         { txn;
           rid = fresh_rid ();
           origin = target;
           span = Obs.Trace.no_wspan;
           reply =
             (fun result ->
               Engine.schedule t.engine ~delay:t.cfg.net_latency (fun () ->
                   finish result)) })
  in
  let read exec = read t ~server:home ~attempts:max_attempts exec in
  let or_loss = function Ok v -> v | Error e -> Error e in
  let create ?(ephemeral = false) ?(sequential = false) path ~data =
    let owner = if ephemeral then session_id else 0L in
    match submit [ Zk_client.create_op ~ephemeral:owner ~sequential path ~data ] with
    | Ok [ Txn.Created actual ] -> Ok actual
    | Ok _ -> Error Zerror.ZBADARGUMENTS
    | Error _ as e -> e
  in
  let set ?(version = -1) path ~data =
    Result.map ignore (submit [ Zk_client.set_op ~version path ~data ])
  in
  let delete ?(version = -1) path =
    Result.map ignore (submit [ Zk_client.delete_op ~version path ])
  in
  let close () =
    let rid = fresh_rid () in
    ignore
      (await_reply t ~timeout:t.cfg.request_timeout (fun reply ->
           let origin = pick_alive t home in
           send t ~dst:origin
             (Close_session
                { owner = session_id; rid; origin; reply;
                  span = Obs.Trace.no_wspan })))
  in
  { Zk_client.create;
    get = (fun path -> or_loss (read (fun tree -> Ztree.get tree path)));
    set;
    delete;
    exists = (fun path -> read (fun tree -> Ztree.exists tree path));
    children = (fun path -> or_loss (read (fun tree -> Ztree.children tree path)));
    children_with_data =
      (fun path ->
        (* one Read message — one coordination round trip for the whole
           listing, names and payloads together *)
        or_loss (read (fun tree -> Ztree.children_with_data tree path)));
    children_with_data_watch =
      (fun path cb ->
        or_loss
          (read (fun tree ->
               Ztree.watch_children tree path cb;
               match Ztree.children_with_data tree path with
               | Ok entries ->
                 List.iter
                   (fun (name, _, _) ->
                     Ztree.watch_data tree (Zpath.concat path name) cb)
                   entries;
                 Ok entries
               | Error _ as e -> e)));
    multi = submit;
    multi_async = submit_async;
    watch_data =
      (fun path cb -> ignore (read (fun tree -> Ztree.watch_data tree path cb)));
    watch_children =
      (fun path cb -> ignore (read (fun tree -> Ztree.watch_children tree path cb)));
    get_watch =
      (fun path cb ->
        (* one server visit arms the watch and reads *)
        or_loss
          (read (fun tree ->
               Ztree.watch_data tree path cb;
               Ztree.get tree path)));
    children_watch =
      (fun path cb ->
        or_loss
          (read (fun tree ->
               Ztree.watch_children tree path cb;
               Ztree.children tree path)));
    sync = (fun () -> ignore (submit []));
    close;
    session_id }
