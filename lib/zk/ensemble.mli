(** A replicated coordination-service ensemble running on the simulator.

    [start] spawns one server process per replica. Writes follow the ZAB
    discipline: the session's server forwards to the leader, the leader
    assigns a zxid, persists, and broadcasts a proposal; followers persist
    and ack; the leader commits once a majority (of the configured
    ensemble) has acked, applies in zxid order, and routes the reply back
    through the session's server *after that server has applied the
    commit* — which yields ZooKeeper's read-your-own-writes session
    guarantee. Reads are served locally by the session's server.

    With [max_batch > 1] the leader group-commits: consecutive queued
    writes share one persist and one proposal/ack/commit round, while
    per-txn results still reach each caller in submission order.

    All traffic — server↔server and client↔server — crosses a
    {!Simkit.Net} instance owned by the ensemble, so partitions, loss,
    extra delay and duplication can be injected underneath the protocol
    (see the fault-state controls below). The protocol repairs loss:
    followers detect commit/proposal gaps and fetch the missing entries
    from the leader, a retried write re-proposes its stalled zxid, acks
    are deduplicated per server, and a reply that overtook its commit on
    a lossy link is held at the origin server until the apply catches up
    — preserving read-your-own-writes under message loss.

    All {!Zk_client.handle} calls must run inside a simulation process. *)

type config = {
  servers : int;            (** voting ensemble size *)
  observers : int;
      (** non-voting replicas (ZooKeeper observers): they receive and
          apply every commit and serve reads, but never ack proposals —
          so they add read capacity without raising the write cost *)
  net_latency : float;      (** one-way message latency, seconds *)
  rpc_cpu : float;          (** server CPU per message sent/forwarded *)
  read_service : float;     (** server CPU per read *)
  write_service : float;    (** leader CPU per create request *)
  delete_service : float;   (** leader CPU per delete (locate + unlink + watch sweep) *)
  set_service : float;      (** leader CPU per setData *)
  persist : float;          (** txn-log append (leader and followers) *)
  follower_apply : float;   (** follower CPU to apply a commit *)
  election_timeout : float; (** failure detection + election duration *)
  request_timeout : float;  (** client-side retry deadline *)
  load_factor : float;
      (** service-time inflation from co-located client processes
          (1.0 = dedicated servers); see {!Pfs.Costs} notes. *)
  max_batch : int;
      (** group commit: when the leader dequeues a write it drains up to
          [max_batch - 1] further queued writes and pays [persist] plus
          the follower fan-out once for the whole batch, while every txn
          keeps its own zxid, result and reply. [1] (the default) is the
          classic one-txn-per-round ZAB pipeline. *)
  batch_delay : float;
      (** seconds the leader waits for stragglers when a drained batch is
          still short of [max_batch]; [0.] (the default) never waits. *)
  seed : int64;
      (** seeds the ensemble's network and the per-session retry-jitter
          streams; identical seeds reproduce identical schedules *)
  retry_backoff : float;
      (** base for capped exponential backoff (with full jitter) between
          client retry attempts; [0.] (the default) retries immediately *)
  retry_backoff_cap : float;  (** upper bound on one backoff sleep, seconds *)
  session_timeout : float;
      (** a session whose requests have all failed for this long is
          declared expired: its ops return ZSESSIONEXPIRED and a
          best-effort close reaps its ephemerals *)
  stale_read_after : float;
      (** a follower that has not heard from its leader for this long
          considers its reads stale; [infinity] (the default) disables
          the check *)
  serve_stale_reads : bool;
      (** what a stale follower does with a read: [true] serves it and
          counts it ({!stale_reads_served}); [false] refuses it with
          ZCONNECTIONLOSS ({!stale_reads_refused}) *)
  fail_fast_after : float;
      (** leader-side graceful degradation under quorum loss: with
          pending writes and no commit for this long, new writes are
          refused immediately with ZCONNECTIONLOSS instead of queueing;
          [infinity] (the default) queues forever *)
  unsafe_no_dedup : bool;
      (** disables the exactly-once dedup filter. Exists only so tests
          can prove the linearizability checker catches the resulting
          double-applies; never enable it otherwise. *)
  lease_ttl : float;
      (** duration (virtual seconds) of the leases granted by the
          handle's [lease_*] reads: within it a client may serve the
          read locally; committed changes revoke early through the
          session's invalidation channel, and the TTL bounds staleness
          when the serving replica (and its lease table) is lost *)
  max_inflight_batches : int;
      (** proposal pipelining: with [n > 1] the leader runs a dedicated
          proposer process that keeps up to [n] Propose rounds
          outstanding, overlaps its own txn-log append with the
          follower fan-out (its vote counts only once the append
          lands), piggybacks the commit frontier on later proposals and
          replies instead of separate Commit rounds while the pipeline
          is busy, and coalesces queued writes into open batches (up to
          [max_batch]) for exactly as long as the window is full —
          [batch_delay] is never slept. Commits still apply strictly in
          zxid order. [1] (the default) is the classic stop-and-wait
          leader, bit-for-bit: no proposer process is spawned and every
          event fires exactly as without the pipeline. *)
  snapshot_every : int;
      (** snapshot cadence of the stable-storage model: each replica
          serializes its tree into {!Zk.Wal} storage every
          [snapshot_every] applied transactions (keeping the newest two
          snapshots and pruning the log below the older one), bounding
          both WAL replay length and log growth on recovery. [<= 0]
          disables snapshots: recovery replays the whole log. *)
}

val default_config : servers:int -> config

type t

(** [start ?trace engine cfg] boots the ensemble. When [trace] is enabled
    the write path stamps each request's {!Obs.Trace.wspan} as it crosses
    the quorum phases (queue-wait, propose, persist, ack, commit) and the
    leader observes queue depth and batch size per group commit; spans
    land under [zk.<op>.<phase>] in the trace's metrics registry. Tracing
    is pure accumulator bookkeeping — it never sleeps or schedules, so a
    traced run's simulated clock is identical to an untraced run's.
    A [tag] (e.g. ["shard2"]) makes the ensemble additionally record its
    leader gauges and per-write queue wait under [zk.<tag>.*], so a
    sharded deployment's per-shard balance shows up in the same trace. *)
val start : ?trace:Obs.Trace.t -> ?tag:string -> Simkit.Engine.t -> config -> t

val config : t -> config
val trace : t -> Obs.Trace.t

(** The ensemble's fault-injectable network (for counters and tests;
    prefer the wrappers below for fault control). *)
val net : t -> Simkit.Net.t

(** [session t ()] opens a session, assigned round-robin (or to [server]).
    Handle calls must be made from inside a simulation process. *)
val session : t -> ?server:int -> unit -> Zk_client.handle

(** {2 Failure injection} *)

(** [crash t id] stops server [id] immediately: its in-flight work,
    un-replied requests and queued inbox messages are lost (the mailbox
    is flushed — the network does not buffer across a reboot), and its
    disk keeps only what the WAL device finished — appends whose fsync
    had not completed are gone and the in-flight record is torn
    ({!Wal.power_off}). If [id] was the leader, an election is arranged
    after [election_timeout]. *)
val crash : t -> int -> unit

(** [restart t id] brings a crashed server back as a follower. It first
    recovers locally from stable storage — newest valid snapshot, WAL
    suffix replay, truncating at the first bad checksum — then
    diff-syncs only the genuinely missing remainder from a live leader.
    With no live leader, the riser parks until a quorum of voters is
    back, at which point a ZAB-style recovery election over durable
    (epoch, zxid) log ends crowns a leader and commits its readable
    uncommitted tail — making a whole-cluster power failure
    survivable. *)
val restart : t -> int -> unit

(** {2 Storage fault state}

    Per-member WAL-device faults; all are exactly inert until armed, so
    fault-free schedules replay bit-identically. *)

(** Tear server [id]'s newest WAL record: its checksum can never verify
    again, so recovery truncates there. *)
val tear_wal_tail : t -> int -> unit

(** Deterministic bit-rot over server [id]'s WAL: flips a byte in
    roughly [fraction] of the records (hash-selected — no RNG draw). *)
val corrupt_wal : t -> int -> fraction:float -> unit

(** Corrupt server [id]'s newest snapshot; recovery falls back to the
    previous snapshot, then to a cold start plus leader transfer. *)
val corrupt_snapshot : t -> int -> unit

(** Fail-stop pause of server [id]'s WAL device: fsyncs issued during
    the stall wait for its end (extends any ongoing stall). *)
val disk_stall : t -> int -> duration:float -> unit

(** Fail-slow disk on server [id]: permanently adds [d] seconds to
    every fsync. *)
val add_fsync_delay : t -> int -> float -> unit

(** {2 Network fault state}

    These manipulate the ensemble's {!Simkit.Net} in terms of member
    ids; client sessions ride on their home server's partition side. *)

(** [partition t groups] installs a symmetric partition between the
    listed groups of member ids; members not named form one implicit
    extra group (so [partition t [[0; 1]]] cuts servers 0–1 and their
    clients off from the rest). Replaces any previous partition. *)
val partition : t -> int list list -> unit

(** Block messages from [from]'s side to [to_]'s side only. *)
val partition_oneway : t -> from:int -> to_:int -> unit

(** Remove the partition and all one-way blocks (probabilistic faults
    are separate knobs). *)
val heal : t -> unit

val set_drop : t -> float -> unit
val set_extra_delay : t -> float -> unit
val set_duplicate : t -> float -> unit
val set_reorder : t -> p:float -> window:float -> unit

val leader_id : t -> int option

(** One line per member — role, epoch, zxid cursors, pending/proposal
    counts, inbox depth — for diagnosing stalled pipelines in tests. *)
val debug_dump : t -> string
val alive_ids : t -> int list

(** Every member id, voters then observers, alive or not. *)
val member_ids : t -> int list

(** {2 Introspection (tests, benches)} *)

val tree_of : t -> int -> Ztree.t
val server_resident_bytes : t -> int -> int

(** Committed-write and read counters per server, for load checks. *)
val reads_served : t -> int -> int

val writes_committed : t -> int

(** Standalone Commit_batch rounds the leader fanned out, and commit
    rounds whose fan-out was suppressed because the frontier rode out
    piggybacked on a queued proposal instead ([max_inflight_batches >
    1] only — the stop-and-wait path always fans out). *)
val commit_fanouts : t -> int

val piggybacked_commits : t -> int

(** Retried writes answered from the dedup table instead of re-applied.
    Every session stamps each write with a session-scoped request id
    (ZooKeeper's session + cxid) and reuses it across timeout retries;
    the leader remembers the result of every applied transaction, so a
    retry of a write that actually committed — the classic
    timeout-during-failover window — returns the original result
    exactly once instead of failing with ZNODEEXISTS/ZNONODE or, worse,
    applying twice. *)
val dedup_hits : t -> int

(** Dedup-table entries evicted because their session closed or expired
    (counted on the leader): the bound that keeps long chaos runs from
    growing leader state without limit. *)
val dedup_evictions : t -> int

(** Reads served by a follower that had not heard from its leader for
    [stale_read_after] (with [serve_stale_reads = true]). *)
val stale_reads_served : t -> int

(** Reads refused by such a follower (with [serve_stale_reads = false]). *)
val stale_reads_refused : t -> int

(** Writes refused immediately by a stalled leader ([fail_fast_after]). *)
val writes_failed_fast : t -> int

(** Sessions declared expired after [session_timeout] of solid failure. *)
val sessions_expired : t -> int

(** Messages waiting in the current leader's inbox (0 if leaderless). *)
val leader_queue_depth : t -> int

(** {2 Lease / watch-table introspection}

    The sessions bench's server-state argument: with watch coherence the
    per-server watch table grows O(cached znodes); with lease coherence
    the lease table stays O(sessions × working directories). *)

(** Live + not-yet-purged lease interests on server [id]. *)
val lease_entries : t -> int -> int

(** Armed fire-once watch registrations on server [id]'s tree. *)
val watch_table_size : t -> int -> int

(** Ensemble-wide lease counters (summed over members). A read that
    refreshes a live interest counts as renewed, not granted; revoked
    counts early invalidations pushed to clients; expired counts
    interests observed past their deadline. *)
val leases_granted : t -> int

val leases_renewed : t -> int
val leases_revoked : t -> int
val leases_expired : t -> int

(** [revoke_dir t dir] fires, on every live member, the coherence state
    still parked on [dir]: armed child watches on [dir], data watches on
    its immediate children (present or absent), and lease interests in
    [dir]. The ownership-flip step of online resharding — after [dir]
    migrates to another shard, no write on this ensemble will ever again
    invalidate entries cached under it. *)
val revoke_dir : t -> string -> unit

(** {2 Stable-storage introspection}

    Ensemble-wide sums over the members' {!Zk.Wal} counters, plus
    recovery accounting, for the durability experiment and tests. *)

val wal_appended : t -> int
val wal_replayed : t -> int

(** Records lost to torn tails or failed checksums across recoveries. *)
val wal_truncated : t -> int

(** Un-fsynced appends dropped outright by power-offs. *)
val wal_tail_dropped : t -> int

val snap_loads : t -> int

(** Recoveries whose newest snapshot failed its checksum and fell back
    to the older one. *)
val snap_fallbacks : t -> int

(** Readable WAL records on server [id]'s disk right now. *)
val wal_records : t -> int -> int

val wal_snapshots : t -> int -> int

(** Highest zxid on server [id] that would survive a power failure at
    the current instant. *)
val durable_zxid : t -> int -> int64

(** Local recoveries run (one per [restart]). *)
val recoveries : t -> int

(** Modeled recovery time (snapshot load + WAL replay at the configured
    device/apply costs), summed / worst-case per restart. *)
val recovery_time_total : t -> float

val recovery_time_max : t -> float

(** Uncommitted-tail transactions committed by power-failure recovery
    elections (the winner's log becomes history). *)
val wal_tail_commits : t -> int

(** Transactions shipped by leader diff-syncs, and whole-snapshot (SNAP)
    transfers — the gate asserts recovery stays mostly local (diff txns
    shipped < records replayed from local WALs). *)
val transfer_diff_txns : t -> int

val transfer_snaps : t -> int
