(** Per-server stable storage: a checksummed append-only transaction
    log plus periodic tree snapshots.

    The simulation's persist costs already decide {e when} an append
    reaches the platter (the [persist] sleeps on the stop-and-wait
    paths, the [persist_until] device cursor on the pipelined leader);
    this module tracks {e what} is on the platter at any instant, so
    [Ensemble.crash] can drop the un-fsynced tail and
    [Ensemble.restart] can recover locally — latest valid snapshot,
    WAL-suffix replay, truncate at the first bad checksum — before
    asking the leader for only the genuinely missing remainder.
    DESIGN.md §12 documents the record format and the crash/fsync
    semantics, including the three zero-latency durability points
    (apply marker, epoch stamp, state-transfer installs). *)

type t

(** One logged transaction, exactly the tuple the replication protocol
    carries: enough to rebuild the tree, the committed log and the
    exactly-once dedup table on replay. *)
type entry = {
  e_zxid : int64;
  e_txn : Txn.t;
  e_time : float;
  e_rsession : int64;
  e_rcxid : int64;
  e_close : int64 option;
}

val create : unit -> t

(** {2 Appending} *)

(** Append a checksummed record. [start] is when the device write was
    issued, [done_at] when it (and its fsync) completes; a power-off
    before [done_at] loses the record — torn if the write was already
    in flight, dropped entirely otherwise. *)
val append : t -> epoch:int -> start:float -> done_at:float -> entry -> unit

(** The durable apply marker: recovery replays records up to it (the
    rest of the log is the uncommitted tail). Modeled as zero-latency
    (piggybacked on the device write stream). *)
val note_commit : t -> int64 -> unit

(** Durable epoch stamp (ZooKeeper's currentEpoch file). *)
val note_epoch : t -> int -> unit

val frontier : t -> int64
val epoch : t -> int

(** Latest record (if any) logged for [zxid] — recovery keeps only the
    newest per zxid (an epoch change overwrites a stale suffix). *)
val entry_at : t -> int64 -> entry option

(** Epoch under which the latest record for [zxid] was logged. *)
val epoch_at : t -> int64 -> int option

(** {2 Snapshots} *)

(** Periodic snapshot of the applied tree ([Ztree.serialize] payload at
    [zxid]). Keeps the newest two (the older is the bit-rot fallback)
    and prunes log records at or below the older one. *)
val snapshot : t -> zxid:int64 -> epoch:int -> string -> unit

(** Leader-installed snapshot (SNAP state transfer): supersedes the
    entire local log, ZooKeeper's TRUNC included. *)
val install_snapshot : t -> zxid:int64 -> epoch:int -> string -> unit

val last_snapshot_zxid : t -> int64

(** {2 Storage faults} *)

(** Extra device latency an fsync issued at [now] pays: the remainder
    of any disk stall plus the fail-slow surcharge. Exactly [0.] when
    no storage fault is armed, keeping the default schedule
    bit-identical. *)
val device_delay : t -> now:float -> float

(** Fail-stop pause of the WAL device for [duration] seconds from
    [now] (extends, never shortens, an ongoing stall). *)
val stall : t -> now:float -> duration:float -> unit

val stalled_until : t -> float

(** Fail-slow disk: permanently add [d] seconds to every fsync. *)
val add_fsync_delay : t -> float -> unit

val fsync_extra : t -> float

(** Tear the newest record (its checksum can never verify again).
    False if the log is empty. *)
val tear_tail : t -> bool

(** Deterministic bit-rot: flips a byte in roughly [fraction] of the
    records (selected by a hash of each record's checksum — no RNG
    draw, reproducible across runs). Returns how many records rotted. *)
val corrupt : t -> fraction:float -> int

(** Flip a byte mid-payload of the newest snapshot. False if there is
    no snapshot. *)
val corrupt_snapshot : t -> bool

(** {2 Crash and recovery} *)

(** Power-off at [now]: drop appends whose device write had not
    completed; the single in-flight write survives torn. *)
val power_off : t -> now:float -> unit

type recovered = {
  rc_snapshot : string option;
      (** payload to [Ztree.deserialize]; [None] = cold start *)
  rc_snap_zxid : int64;
  rc_replay : entry list;
      (** committed records in (snapshot, frontier], ascending and
          contiguous — rebuilds tree, log and dedup table *)
  rc_tail : entry list;
      (** readable records beyond the frontier: persisted but not known
          committed. Discarded when a live leader resyncs the server;
          after a whole-cluster power failure the recovery election's
          winner commits its tail (ZAB: the leader's log is history). *)
  rc_log_end : int * int64;
      (** (epoch, zxid) of the last readable record — the recovery
          election compares log ends ZAB-style, epoch first *)
  rc_truncated : int;  (** records lost to torn tails / bad checksums *)
  rc_replayed : int;
  rc_loaded_snapshot : bool;
  rc_snap_fallback : bool;
      (** newest snapshot failed its checksum; an older one was used *)
}

(** Read the disk back: truncate the log at the first unreadable
    record, resolve zxid rewinds (newest record per zxid wins), pick
    the newest checksum-valid snapshot (falling back to the older one,
    then to a cold start) and split the readable log into the committed
    replay prefix and the uncommitted tail. *)
val recover : t -> recovered

(** {2 Introspection} *)

val records : t -> int
val snapshots : t -> int
val appended : t -> int
val replayed : t -> int
val truncated : t -> int
val tail_dropped : t -> int
val snap_loads : t -> int
val snap_fallbacks : t -> int

(** Highest zxid that would survive a power failure at [now]: its
    record's device write has completed and still verifies. *)
val durable_zxid : t -> now:float -> int64
