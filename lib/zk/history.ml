open Simkit

type op_kind =
  | K_create of string      (* data *)
  | K_create_seq of string  (* data; r_path is the sequential prefix *)
  | K_set of string
  | K_delete
  | K_get
  | K_exists

type outcome =
  | Ok_unit
  | Ok_data of string
  | Ok_created of string    (* actual path (sequential suffix resolved) *)
  | Ok_bool of bool
  | Err of Zerror.t
  | Undetermined

type record = {
  r_client : int;
  r_session : int; (* one per [wrap] call: session guarantees live here *)
  r_seq : int;
  r_path : string;
  r_kind : op_kind;
  r_invoke : float;
  mutable r_return : float; (* infinity while open or undetermined *)
  mutable r_outcome : outcome;
}

type violation = {
  v_path : string;
  v_kind : string;
  v_detail : string;
}

type t = {
  engine : Engine.t;
  mutable recs : record list; (* newest first *)
  mutable n : int;
  mutable sessions : int; (* next wrap-session id *)
  mutable last_checked : int;
  mutable last_audited : int;
}

let create engine =
  { engine; recs = []; n = 0; sessions = 0; last_checked = 0; last_audited = 0 }

let recorded t = t.n

let undetermined t =
  List.length (List.filter (fun r -> r.r_outcome = Undetermined) t.recs)

let checked_ops t = t.last_checked
let audited_paths t = t.last_audited

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)

let begin_op t ~client ~session ~path ~kind =
  let r =
    { r_client = client; r_session = session; r_seq = t.n; r_path = path;
      r_kind = kind; r_invoke = Engine.now t.engine; r_return = infinity;
      r_outcome = Undetermined }
  in
  t.n <- t.n + 1;
  t.recs <- r :: t.recs;
  r

(* Transport-level failures leave the op's fate unknown: the request or
   its reply may have been lost on either side of the commit. *)
let undetermined_error = function
  | Zerror.ZOPERATIONTIMEOUT | Zerror.ZCONNECTIONLOSS
  | Zerror.ZSESSIONEXPIRED -> true
  | _ -> false

let end_op t r outcome =
  match outcome with
  | Err e when undetermined_error e -> () (* stays Undetermined, ret = inf *)
  | o ->
    r.r_return <- Engine.now t.engine;
    r.r_outcome <- o

let wrap t ~client (h : Zk_client.handle) : Zk_client.handle =
  let session = t.sessions in
  t.sessions <- t.sessions + 1;
  let create ?(ephemeral = false) ?(sequential = false) path ~data =
    if ephemeral then
      (* Session-close cleanup deletes ephemerals outside any recorded
         operation; they would look like spontaneous register writes. *)
      h.Zk_client.create ~ephemeral ~sequential path ~data
    else begin
      let kind = if sequential then K_create_seq data else K_create data in
      let r = begin_op t ~client ~session ~path ~kind in
      let res = h.Zk_client.create ~sequential path ~data in
      (match res with
       | Ok actual -> end_op t r (Ok_created actual)
       | Error e -> end_op t r (Err e));
      res
    end
  in
  let get path =
    let r = begin_op t ~client ~session ~path ~kind:K_get in
    let res = h.Zk_client.get path in
    (match res with
     | Ok (data, _) -> end_op t r (Ok_data data)
     | Error e -> end_op t r (Err e));
    res
  in
  let set ?version path ~data =
    match version with
    | Some v when v >= 0 ->
      (* Conditional writes are outside the register model. *)
      h.Zk_client.set ~version:v path ~data
    | _ ->
      let r = begin_op t ~client ~session ~path ~kind:(K_set data) in
      let res = h.Zk_client.set ?version path ~data in
      (match res with
       | Ok () -> end_op t r Ok_unit
       | Error e -> end_op t r (Err e));
      res
  in
  let delete ?version path =
    match version with
    | Some v when v >= 0 -> h.Zk_client.delete ~version:v path
    | _ ->
      let r = begin_op t ~client ~session ~path ~kind:K_delete in
      let res = h.Zk_client.delete ?version path in
      (match res with
       | Ok () -> end_op t r Ok_unit
       | Error e -> end_op t r (Err e));
      res
  in
  let exists path =
    let r = begin_op t ~client ~session ~path ~kind:K_exists in
    let res = h.Zk_client.exists path in
    (match res with
     | Ok st -> end_op t r (Ok_bool (st <> None))
     | Error e -> end_op t r (Err e));
    res
  in
  { h with create; get; set; delete; exists }

(* ------------------------------------------------------------------ *)
(* Digest                                                              *)

let kind_to_string = function
  | K_create d -> "create:" ^ d
  | K_create_seq d -> "createseq:" ^ d
  | K_set d -> "set:" ^ d
  | K_delete -> "delete"
  | K_get -> "get"
  | K_exists -> "exists"

let outcome_to_string = function
  | Ok_unit -> "ok"
  | Ok_data d -> "data:" ^ d
  | Ok_created p -> "created:" ^ p
  | Ok_bool b -> if b then "present" else "absent"
  | Err e -> "err:" ^ Zerror.to_string e
  | Undetermined -> "?"

let digest t =
  let ctx = Md5.init () in
  List.iter
    (fun r ->
      Md5.update ctx
        (Printf.sprintf "%d|%d|%d|%s|%s|%.17g|%.17g|%s\n" r.r_client
           r.r_session r.r_seq r.r_path (kind_to_string r.r_kind) r.r_invoke
           r.r_return
           (outcome_to_string r.r_outcome)))
    (List.rev t.recs);
  let raw = Md5.finalize ctx in
  String.concat ""
    (List.init (String.length raw) (fun i ->
         Printf.sprintf "%02x" (Char.code raw.[i])))

(* ------------------------------------------------------------------ *)
(* Register checker (Wing & Gong)                                      *)

exception Found
exception Too_hard

(* Possible register states after linearizing [r] in state [st]; [] if
   [r]'s observed outcome is impossible here. The state is the node's
   data, [None] = absent; the recorder must have seen the path's whole
   lifetime (first recorded op runs against an absent node).
   An Undetermined write branches: applied here (if its precondition
   holds) or never applied / applied after every recorded op — both
   futures are indistinguishable to the recorded reads. *)
let apply st r =
  match r.r_kind, r.r_outcome with
  | K_create d, Ok_created _ -> if st = None then [ Some d ] else []
  | K_create _, Err Zerror.ZNODEEXISTS -> if st <> None then [ st ] else []
  | K_create d, Undetermined -> if st = None then [ Some d; st ] else [ st ]
  | K_set d, Ok_unit -> if st <> None then [ Some d ] else []
  | K_set _, Err Zerror.ZNONODE -> if st = None then [ st ] else []
  | K_set d, Undetermined -> if st <> None then [ Some d; st ] else [ st ]
  | K_delete, Ok_unit -> if st <> None then [ None ] else []
  | K_delete, Err Zerror.ZNONODE -> if st = None then [ st ] else []
  | K_delete, Undetermined -> if st <> None then [ None; st ] else [ st ]
  | K_get, Ok_data d ->
    (match st with Some v when String.equal v d -> [ st ] | _ -> [])
  | K_get, Err Zerror.ZNONODE -> if st = None then [ st ] else []
  | (K_get | K_exists), Undetermined -> [ st ]
  | K_exists, Ok_bool b -> if (st <> None) = b then [ st ] else []
  | _, Err _ -> [ st ] (* unexpected error class: permissive, no effect *)
  | _, _ -> [ st ]

let bit bs j = Char.code (Bytes.get bs (j lsr 3)) land (1 lsl (j land 7)) <> 0

let with_bit bs j =
  let bs' = Bytes.copy bs in
  Bytes.set bs' (j lsr 3)
    (Char.chr (Char.code (Bytes.get bs' (j lsr 3)) lor (1 lsl (j land 7))));
  bs'

let state_key st done_ =
  (match st with None -> "-" | Some v -> "+" ^ v) ^ "\x00"
  ^ Bytes.to_string done_

(* What is actually guaranteed — and therefore what we check — is
   ZooKeeper's contract, not full linearizability of every operation:

   - Writes (create/set/delete, including their error outcomes, which
     the leader evaluated against the committed tree) are linearizable:
     real-time order among determined writes is enforced, and an
     Undetermined write branches between "applied at this point" and
     "never applied within the recorded window".

   - Reads (get/exists) are served from a follower's local tree. A
     follower that missed a commit legally serves stale data to other
     sessions, so reads are only *sequentially consistent*: a read may
     linearize in the past relative to other clients' completed writes,
     but it must (a) return a value the register actually held at its
     linearization point and (b) respect its own wrap-session's order —
     it comes after every determined same-session op that completed
     before it was invoked (read-your-writes, monotonic reads).
     Undetermined reads constrain nothing and are dropped.

   Because reads never change the state and their admission rule is
   monotone (doing an admissible read earlier only relaxes later
   constraints), any matching enabled read can be linearized greedily;
   the search branches over write interleavings only. *)
let check_register ~max_states path ops =
  let ops =
    Array.of_list
      (List.sort
         (fun a b ->
           let c = compare a.r_invoke b.r_invoke in
           if c <> 0 then c else compare a.r_seq b.r_seq)
         (List.filter
            (fun r ->
              match r.r_kind, r.r_outcome with
              | (K_get | K_exists), Undetermined -> false (* vacuous *)
              | _ -> true)
            ops))
  in
  let n = Array.length ops in
  let is_read j =
    match ops.(j).r_kind with K_get | K_exists -> true | _ -> false
  in
  (* Only determined writes pin real time; reads and undetermined
     writes stay "open" and never force another op to wait for them. *)
  let ret_eff j = if is_read j then infinity else ops.(j).r_return in
  (* prereq.(j): same-session ops that completed before j was invoked —
     the session-order constraint that real time no longer implies once
     reads may linearize in the past. *)
  let prereq = Array.make n [] in
  for j = 0 to n - 1 do
    for k = 0 to n - 1 do
      if
        k <> j
        && ops.(k).r_session = ops.(j).r_session
        && ops.(k).r_return < ops.(j).r_invoke
      then prereq.(j) <- k :: prereq.(j)
    done
  done;
  let prereqs_done done_ j = List.for_all (fun k -> bit done_ k) prereq.(j) in
  let states = ref 0 in
  let memo : (string, unit) Hashtbl.t = Hashtbl.create 1024 in
  (* Greedily linearize every enabled read whose observed value matches
     the current state; loop to a fixpoint since one read completing
     can satisfy another's session prereq. *)
  let absorb st done_ remaining =
    let done_ = ref done_ and remaining = ref remaining in
    let changed = ref true in
    while !changed do
      changed := false;
      for j = 0 to n - 1 do
        if
          is_read j
          && (not (bit !done_ j))
          && prereqs_done !done_ j
          && apply st ops.(j) <> []
        then begin
          done_ := with_bit !done_ j;
          decr remaining;
          changed := true
        end
      done
    done;
    (!done_, !remaining)
  in
  let rec dfs st done_ remaining =
    let done_, remaining = absorb st done_ remaining in
    if remaining = 0 then raise Found;
    incr states;
    if !states > max_states then raise Too_hard;
    let key = state_key st done_ in
    if not (Hashtbl.mem memo key) then begin
      (* A write can be the next linearization point only if no pending
         determined write returned before it was invoked. *)
      let min_ret = ref infinity in
      for i = 0 to n - 1 do
        if (not (bit done_ i)) && ret_eff i < !min_ret then
          min_ret := ret_eff i
      done;
      for j = 0 to n - 1 do
        if
          (not (is_read j))
          && (not (bit done_ j))
          && ops.(j).r_invoke <= !min_ret
          && prereqs_done done_ j
        then
          List.iter
            (fun st' -> dfs st' (with_bit done_ j) (remaining - 1))
            (apply st ops.(j))
      done;
      Hashtbl.add memo key ()
    end
  in
  if n = 0 then None
  else
    match dfs None (Bytes.make ((n + 7) / 8) '\000') n with
    | () ->
      Some
        { v_path = path; v_kind = "register";
          v_detail =
            Printf.sprintf "no linearization of %d ops (%d states searched)"
              n !states }
    | exception Found -> None
    | exception Too_hard ->
      Some
        { v_path = path; v_kind = "exhausted";
          v_detail =
            Printf.sprintf
              "search exceeded %d states over %d ops: verdict unknown"
              max_states n }

(* ------------------------------------------------------------------ *)
(* Sequential-create checker                                           *)

let seq_suffix prefix actual =
  let pl = String.length prefix in
  if String.length actual > pl && String.sub actual 0 pl = prefix then
    int_of_string_opt (String.sub actual pl (String.length actual - pl))
  else None

let check_sequential prefix ops =
  let violations = ref [] in
  let succ =
    List.filter_map
      (fun r ->
        match r.r_outcome with Ok_created p -> Some (r, p) | _ -> None)
      ops
  in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (_, p) ->
      if Hashtbl.mem seen p then
        violations :=
          { v_path = prefix; v_kind = "sequential";
            v_detail = "duplicate sequential path " ^ p }
          :: !violations
      else Hashtbl.add seen p ())
    succ;
  let arr = Array.of_list succ in
  Array.iter
    (fun (a, pa) ->
      Array.iter
        (fun (b, pb) ->
          if a.r_return < b.r_invoke then
            match seq_suffix prefix pa, seq_suffix prefix pb with
            | Some sa, Some sb when sa >= sb ->
              violations :=
                { v_path = prefix; v_kind = "sequential";
                  v_detail =
                    Printf.sprintf
                      "%s finished before %s began but its suffix is not \
                       smaller"
                      pa pb }
                :: !violations
            | _ -> ())
        arr)
    arr;
  !violations

(* ------------------------------------------------------------------ *)

let check ?(max_states = 500_000) t =
  let regs : (string, record list) Hashtbl.t = Hashtbl.create 64 in
  let seqs : (string, record list) Hashtbl.t = Hashtbl.create 16 in
  let add tbl k r =
    Hashtbl.replace tbl k (r :: (try Hashtbl.find tbl k with Not_found -> []))
  in
  List.iter
    (fun r ->
      match r.r_kind with
      | K_create_seq _ -> add seqs r.r_path r
      | _ -> add regs r.r_path r)
    t.recs;
  let checked = ref 0 in
  let violations = ref [] in
  let reg_paths =
    List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) regs [])
  in
  List.iter
    (fun path ->
      let ops = Hashtbl.find regs path in
      checked := !checked + List.length ops;
      match check_register ~max_states path ops with
      | Some v -> violations := v :: !violations
      | None -> ())
    reg_paths;
  let seq_paths =
    List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) seqs [])
  in
  List.iter
    (fun prefix ->
      let ops = Hashtbl.find seqs prefix in
      checked := !checked + List.length ops;
      violations := check_sequential prefix ops @ !violations)
    seq_paths;
  t.last_checked <- !checked;
  List.rev !violations

(* ------------------------------------------------------------------ *)
(* Durability oracle                                                   *)

(* The final value an effectful acknowledged write leaves behind
   ([None] = node absent). Error outcomes changed nothing; reads never
   do. A successful sequential create keys on its resolved path. *)
let acked_write_value r =
  match r.r_kind, r.r_outcome with
  | (K_create d | K_create_seq d), Ok_created _ -> Some (Some d)
  | K_set d, Ok_unit -> Some (Some d)
  | K_delete, Ok_unit -> Some None
  | _ -> None

(* Value an undetermined write would leave if the service applied it
   after all (its effect may land at any point, even after the client
   gave up — the open-ended window of [check]). *)
let undetermined_write_value r =
  match r.r_kind, r.r_outcome with
  | K_create d, Undetermined -> Some (Some d)
  | K_set d, Undetermined -> Some (Some d)
  | K_delete, Undetermined -> Some None
  | _ -> None

let value_to_string = function
  | None -> "absent"
  | Some d -> Printf.sprintf "%S" d

let durability_audit t ~lookup =
  let by_path : (string, record list) Hashtbl.t = Hashtbl.create 64 in
  let add path r =
    Hashtbl.replace by_path path
      (r :: Option.value ~default:[] (Hashtbl.find_opt by_path path))
  in
  List.iter
    (fun r ->
      match r.r_kind with
      | K_create _ | K_set _ | K_delete -> add r.r_path r
      | K_create_seq _ -> (
        (* the register only exists at the resolved path; an
           undetermined sequential create has no knowable path *)
        match r.r_outcome with
        | Ok_created actual -> add actual r
        | _ -> ())
      | K_get | K_exists -> ())
    t.recs;
  let paths =
    List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) by_path [])
  in
  let violations = ref [] in
  List.iter
    (fun path ->
      let recs = Hashtbl.find by_path path in
      let acked =
        List.filter_map
          (fun r -> Option.map (fun v -> (r, v)) (acked_write_value r))
          recs
      in
      let undet = List.filter_map undetermined_write_value recs in
      (* An acknowledged write can be the register's final state iff no
         other acknowledged write certainly linearizes after it (began
         after it returned). Undetermined writes have an open-ended
         window, so nothing ever supersedes them with certainty. *)
      let plausible_acked =
        List.filter_map
          (fun ((w, v) : record * string option) ->
            if
              List.exists
                (fun ((w', _) : record * string option) ->
                  w' != w && w'.r_invoke > w.r_return)
                acked
            then None
            else Some v)
          acked
      in
      (* With no acknowledged effectful write, the never-applied branch
         of every undetermined write leaves the node absent. *)
      let plausible =
        plausible_acked @ undet @ (if acked = [] then [ None ] else [])
      in
      let observed = lookup path in
      let matches = function
        | None, None -> true
        | Some a, Some b -> String.equal a b
        | _ -> false
      in
      if not (List.exists (fun v -> matches (v, observed)) plausible) then
        violations :=
          { v_path = path; v_kind = "durability";
            v_detail =
              Printf.sprintf
                "recovered %s but the %d acked + %d undetermined writes \
                 only allow {%s}"
                (value_to_string observed)
                (List.length acked) (List.length undet)
                (String.concat "; "
                   (List.sort_uniq compare (List.map value_to_string plausible))) }
          :: !violations)
    paths;
  t.last_audited <- List.length paths;
  List.rev !violations
