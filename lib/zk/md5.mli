(** MD5 message digest (RFC 1321), implemented from scratch.

    DUFS uses MD5 only as the uniform hash inside its deterministic
    mapping function (§IV-F); implementing it in-repo keeps the mapping
    fully specified and testable against the RFC vectors. *)

type ctx

val init : unit -> ctx

(** Absorb [len] bytes of [s] starting at [off] (defaults: whole string). *)
val update : ctx -> ?off:int -> ?len:int -> string -> unit

(** Finish and return the 16-byte raw digest. The context must not be
    reused afterwards. *)
val finalize : ctx -> string

(** One-shot digest: 16 raw bytes. *)
val digest : string -> string

(** One-shot digest as 32 lowercase hex characters. *)
val hex : string -> string

(** First 8 digest bytes as a non-negative int (big-endian, sign bit
    cleared) — the integer the mapping function reduces mod N. *)
val to_int : string -> int
