(** Client-visible history recording and linearizability checking.

    [wrap] interposes on a {!Zk_client.handle} and records every
    single-path register operation (create / set / delete / get /
    exists) as an invoke/return interval with its observed outcome.
    After a run, [check] verifies ZooKeeper's actual contract per path:

    - {e Writes are linearizable.} There must be a total order of the
      recorded writes (create/set/delete, error outcomes included —
      the leader evaluated those against the committed tree) that
      respects real time and register semantics: create succeeds iff
      absent, set/delete succeed iff present.
    - {e Reads are sequentially consistent.} get/exists are served from
      a replica's local tree, and a replica that missed a commit
      legally serves stale data to {e other} sessions — so a read may
      linearize in the past relative to other clients' completed
      writes. It must still return a value the register actually held
      at its linearization point, and must respect its own
      wrap-session's order (read-your-writes / monotonic reads within
      the session).

    The search is Wing–Gong style over write interleavings — pick any
    minimal-in-real-time unlinearized write consistent with the current
    state, apply it, backtrack on dead ends, memoizing visited
    (state, done-set) pairs — with enabled matching reads linearized
    greedily (sound and complete, since reads have no effect and
    admitting one earlier only relaxes later constraints).

    Operations that ended in ZOPERATIONTIMEOUT / ZCONNECTIONLOSS /
    ZSESSIONEXPIRED are {e undetermined}: the service may or may not
    have applied them (their effect may even land after the client gave
    up). The checker gives undetermined writes an open-ended window and
    branches on applied-vs-not — exactly the ambiguity exactly-once
    retries are meant to collapse — and drops undetermined reads as
    vacuous.

    Checked: single-path register ops, and sequential creates (suffix
    uniqueness + real-time order of suffixes per parent prefix).
    Recorded-but-not-checked blind spots (see DESIGN.md §7): multi-op
    transactions, version-conditioned set/delete, ephemeral creates
    (their session-close cleanup would mutate registers outside the
    recorded history), children listings, and watch deliveries. *)

type t

type violation = {
  v_path : string;   (** the register (or sequential-prefix) at fault *)
  v_kind : string;   (** "register" | "sequential" | "exhausted" *)
  v_detail : string;
}

val create : Simkit.Engine.t -> t

(** [wrap t ~client handle] records through to [handle]. [client] tags
    the records (for the digest and diagnostics); each [wrap] call also
    opens a fresh recorder session, the unit of the reads' session-order
    guarantee — re-wrap after reopening an expired session. Must be
    applied before the ops it should see. *)
val wrap : t -> client:int -> Zk_client.handle -> Zk_client.handle

(** Operations recorded so far. *)
val recorded : t -> int

(** Recorded operations whose outcome is undetermined. *)
val undetermined : t -> int

(** MD5 over the full recorded history (clients, intervals, outcomes):
    two runs with the same seed must produce equal digests. *)
val digest : t -> string

(** Run the checker over everything recorded. Returns all violations
    (empty = linearizable). [max_states] bounds the memoized search per
    register; exhaustion reports a ["exhausted"] violation rather than
    silently passing. *)
val check : ?max_states:int -> t -> violation list

(** Operations covered by the last [check] call. *)
val checked_ops : t -> int

(** {2 Durability oracle}

    [durability_audit t ~lookup] compares the recovered service state
    against the recorded history after a whole-cluster crash+restart:
    [lookup path] must return the node's data in the recovered tree
    ([None] = absent). Per register the oracle computes the plausible
    final values — every {e acknowledged} effectful write that no other
    acknowledged write certainly supersedes (real-time order), every
    {e undetermined} write's value (its effect may land at any point,
    so it may legally appear or not), and absence when no write was
    ever acknowledged — and reports a ["durability"] violation when the
    recovered value is outside that set. So: acked writes must survive
    a power failure, unacked writes may be lost, but a lost-then-
    resurrected value that contradicts the acknowledged history is a
    violation. Paths only touched by reads, ephemeral creates or
    unresolved sequential creates are not auditable and are skipped. *)
val durability_audit :
  t -> lookup:(string -> string option) -> violation list

(** Registers covered by the last [durability_audit] call. *)
val audited_paths : t -> int
