type handle = {
  create :
    ?ephemeral:bool -> ?sequential:bool -> string -> data:string ->
    (string, Zerror.t) result;
  get : string -> (string * Ztree.stat, Zerror.t) result;
  set : ?version:int -> string -> data:string -> (unit, Zerror.t) result;
  delete : ?version:int -> string -> (unit, Zerror.t) result;
  exists : string -> (Ztree.stat option, Zerror.t) result;
  children : string -> (string list, Zerror.t) result;
  children_with_data :
    string -> ((string * string * Ztree.stat) list, Zerror.t) result;
  children_with_data_watch :
    string -> (Ztree.watch_event -> unit) ->
    ((string * string * Ztree.stat) list, Zerror.t) result;
  multi : Txn.t -> (Txn.result_item list, Zerror.t) result;
  multi_async : Txn.t -> ((Txn.result_item list, Zerror.t) result -> unit) -> unit;
  watch_data : string -> (Ztree.watch_event -> unit) -> unit;
  watch_children : string -> (Ztree.watch_event -> unit) -> unit;
  get_watch :
    string -> (Ztree.watch_event -> unit) -> (string * Ztree.stat, Zerror.t) result;
  children_watch :
    string -> (Ztree.watch_event -> unit) -> (string list, Zerror.t) result;
  (* {2 Lease coherence} — reads that grant a time-bounded lease instead
     of arming a per-znode watch. The [float] is the lease deadline on
     the sim clock; [None] from [lease_get] is a leased negative result
     (node absent). Revocations before the deadline arrive through the
     session's single [set_invalidation] callback. *)
  lease_get :
    string -> ((string * Ztree.stat) option * float, Zerror.t) result;
  lease_children : string -> (string list * float, Zerror.t) result;
  lease_children_with_data :
    string -> ((string * string * Ztree.stat) list * float, Zerror.t) result;
  set_invalidation : (Ztree.watch_event -> unit) -> unit;
  (* {2 Watch release} — cancel a still-armed fire-once watch this
     session registered (failed fills, cache evictions). Matched by
     callback identity; best-effort on a faulty network. *)
  release_data_watch : string -> (Ztree.watch_event -> unit) -> unit;
  release_child_watch : string -> (Ztree.watch_event -> unit) -> unit;
  sync : unit -> unit;
  close : unit -> unit;
  session_id : int64;
}

let create_op ?(ephemeral = 0L) ?(sequential = false) path ~data =
  Txn.Create { path; data; ephemeral_owner = ephemeral; sequential }

let delete_op ?(version = -1) path = Txn.Delete { path; expected_version = version }

let set_op ?(version = -1) path ~data =
  Txn.Set_data { path; data; expected_version = version }

let check_op ?(version = -1) path = Txn.Check { path; expected_version = version }
