(* Re-export: the ring moved into lib/zk so Shard_router can reuse it
   for znode-namespace partitioning. [Dufs.Consistent_hash] stays the
   name the mapping layer and examples use. *)
include Zk.Consistent_hash
