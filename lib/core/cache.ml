module Zk_client = Zk.Zk_client
module Zerror = Zk.Zerror
module Zpath = Zk.Zpath

(* Lazy LRU: entries carry a generation; the eviction queue may hold
   stale (path, generation) pairs which are skipped when popping. *)
type 'a store = {
  capacity : int;
  table : (string, 'a * int) Hashtbl.t;
  order : (string * int) Queue.t;
  mutable generation : int;
}

let store_create capacity =
  { capacity; table = Hashtbl.create 256; order = Queue.create (); generation = 0 }

let store_find store path = Option.map fst (Hashtbl.find_opt store.table path)

let rec store_evict store =
  if Hashtbl.length store.table > store.capacity then
    match Queue.take_opt store.order with
    | None -> ()
    | Some (path, generation) ->
      (match Hashtbl.find_opt store.table path with
       | Some (_, g) when g = generation -> Hashtbl.remove store.table path
       | Some _ | None -> ());
      store_evict store

(* Every push can leave one stale pair behind (the entry's previous
   generation), so a hit-heavy workload grows [order] without bound
   unless it is periodically rebuilt from the live generations. *)
let store_compact store =
  if Queue.length store.order > 2 * store.capacity then begin
    let live = Queue.create () in
    Queue.iter
      (fun (path, generation) ->
        match Hashtbl.find_opt store.table path with
        | Some (_, g) when g = generation -> Queue.push (path, generation) live
        | Some _ | None -> ())
      store.order;
    Queue.clear store.order;
    Queue.transfer live store.order
  end

let store_put store path value =
  store.generation <- store.generation + 1;
  Hashtbl.replace store.table path (value, store.generation);
  Queue.push (path, store.generation) store.order;
  store_evict store;
  store_compact store

let store_touch store path =
  match Hashtbl.find_opt store.table path with
  | None -> ()
  | Some (value, _) ->
    store.generation <- store.generation + 1;
    Hashtbl.replace store.table path (value, store.generation);
    Queue.push (path, store.generation) store.order;
    store_compact store

let store_remove store path = Hashtbl.remove store.table path

type data_entry =
  | Present of string * Zk.Ztree.stat
  | Absent

type t = {
  inner : Zk_client.handle;
  data : data_entry store;
  kids : string list store;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable wrapped : Zk_client.handle option;
}

let hits t = t.hits
let misses t = t.misses
let invalidations t = t.invalidations
let size t = Hashtbl.length t.data.table + Hashtbl.length t.kids.table
let queue_length t = Queue.length t.data.order + Queue.length t.kids.order

let invalidate_data t path =
  if Hashtbl.mem t.data.table path then begin
    t.invalidations <- t.invalidations + 1;
    store_remove t.data path
  end

let invalidate_children t path =
  if Hashtbl.mem t.kids.table path then begin
    t.invalidations <- t.invalidations + 1;
    store_remove t.kids path
  end

(* A mutation on [path] changes its own entry and its parent's child
   list; for deletes, also any cached children list of the node itself. *)
let invalidate_mutation t path =
  invalidate_data t path;
  invalidate_children t path;
  invalidate_children t (Zpath.parent path)

let cached_get t path =
  match store_find t.data path with
  | Some (Present (data, stat)) ->
    t.hits <- t.hits + 1;
    store_touch t.data path;
    Ok (data, stat)
  | Some Absent ->
    t.hits <- t.hits + 1;
    store_touch t.data path;
    Error Zerror.ZNONODE
  | None ->
    t.misses <- t.misses + 1;
    (* one server visit: read + arm the invalidation watch *)
    let result = t.inner.Zk_client.get_watch path (fun _ -> invalidate_data t path) in
    (match result with
     | Ok (data, stat) -> store_put t.data path (Present (data, stat))
     | Error Zerror.ZNONODE ->
       (* negative entry; the armed exists-watch fires on creation *)
       store_put t.data path Absent
     | Error _ -> ());
    result

let cached_children t path =
  match store_find t.kids path with
  | Some names ->
    t.hits <- t.hits + 1;
    store_touch t.kids path;
    Ok names
  | None ->
    t.misses <- t.misses + 1;
    let result =
      t.inner.Zk_client.children_watch path (fun _ -> invalidate_children t path)
    in
    (match result with
     | Ok names -> store_put t.kids path names
     | Error _ -> ());
    result

(* Bulk readdir. A hit assembles the listing from the cached child-name
   list plus per-child data entries; a miss fetches everything in one
   server visit and warms those same entries, so a later [get] of any
   child is already cached. The piggybacked watches (child watch on the
   parent, data watch per child) keep the warmed entries coherent. *)
let cached_children_with_data t path =
  let bulk_watch (ev : Zk.Ztree.watch_event) =
    match ev.kind with
    | Zk.Ztree.Node_children_changed -> invalidate_children t ev.path
    | Zk.Ztree.Node_created | Zk.Ztree.Node_deleted
    | Zk.Ztree.Node_data_changed ->
      invalidate_data t ev.path
  in
  let fill () =
    t.misses <- t.misses + 1;
    let result = t.inner.Zk_client.children_with_data_watch path bulk_watch in
    (match result with
     | Ok entries ->
       store_put t.kids path (List.map (fun (name, _, _) -> name) entries);
       List.iter
         (fun (name, data, stat) ->
           store_put t.data (Zpath.concat path name) (Present (data, stat)))
         entries
     | Error _ -> ());
    result
  in
  let assemble names =
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | name :: rest ->
        (match store_find t.data (Zpath.concat path name) with
         | Some (Present (data, stat)) -> go ((name, data, stat) :: acc) rest
         | Some Absent | None -> None)
    in
    go [] names
  in
  match store_find t.kids path with
  | None -> fill ()
  | Some names ->
    (match assemble names with
     | None -> fill ()  (* some child's data entry was evicted *)
     | Some entries ->
       t.hits <- t.hits + 1;
       store_touch t.kids path;
       List.iter (fun name -> store_touch t.data (Zpath.concat path name)) names;
       Ok entries)

let wrap ?(capacity = 4096) inner =
  if capacity < 1 then invalid_arg "Cache.wrap: capacity < 1";
  let t =
    { inner;
      data = store_create capacity;
      kids = store_create capacity;
      hits = 0;
      misses = 0;
      invalidations = 0;
      wrapped = None }
  in
  let create ?ephemeral ?sequential path ~data =
    let result = inner.Zk_client.create ?ephemeral ?sequential path ~data in
    (match result with
     | Ok actual ->
       invalidate_mutation t actual;
       if actual <> path then invalidate_mutation t path
     | Error _ -> ());
    result
  in
  let set ?version path ~data =
    let result = inner.Zk_client.set ?version path ~data in
    invalidate_data t path;
    result
  in
  let delete ?version path =
    let result = inner.Zk_client.delete ?version path in
    invalidate_mutation t path;
    result
  in
  let multi txn =
    let result = inner.Zk_client.multi txn in
    List.iter (fun op -> invalidate_mutation t (Zk.Txn.op_path op)) txn;
    (* sequential creates materialize under a different name *)
    (match result with
     | Ok items ->
       List.iter
         (function
           | Zk.Txn.Created actual -> invalidate_mutation t actual
           | Zk.Txn.Deleted | Zk.Txn.Data_set | Zk.Txn.Checked -> ())
         items
     | Error _ -> ());
    result
  in
  let multi_async txn callback =
    inner.Zk_client.multi_async txn (fun result ->
        List.iter (fun op -> invalidate_mutation t (Zk.Txn.op_path op)) txn;
        callback result)
  in
  let handle =
    { Zk_client.create;
      get = cached_get t;
      set;
      delete;
      exists =
        (fun path ->
          (* only a definitive "no such node" answer maps to None; a
             transient read failure (timeout, connection loss) must not
             make an existing file look deleted *)
          match cached_get t path with
          | Ok (_, stat) -> Ok (Some stat)
          | Error Zerror.ZNONODE -> Ok None
          | Error e -> Error e);
      children = cached_children t;
      children_with_data = cached_children_with_data t;
      children_with_data_watch = inner.Zk_client.children_with_data_watch;
      multi;
      multi_async;
      watch_data = inner.Zk_client.watch_data;
      watch_children = inner.Zk_client.watch_children;
      get_watch = inner.Zk_client.get_watch;
      children_watch = inner.Zk_client.children_watch;
      sync = inner.Zk_client.sync;
      close = inner.Zk_client.close;
      session_id = inner.Zk_client.session_id }
  in
  t.wrapped <- Some handle;
  t

let handle t =
  match t.wrapped with
  | Some h -> h
  | None -> assert false (* set by [wrap] before returning *)
