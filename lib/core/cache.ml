module Zk_client = Zk.Zk_client
module Zerror = Zk.Zerror
module Zpath = Zk.Zpath

type coherence = Watches | Leases

(* Every cached value carries its coherence bookkeeping: the fire-once
   watch callback that guards it (so eviction can release the server-side
   registration — [Watches] mode only) and the lease deadline before
   which it may be served locally ([infinity] in [Watches] mode, where
   entries stay valid until invalidated). *)
type 'a entry = {
  value : 'a;
  watch : (Zk.Ztree.watch_event -> unit) option;
  lease_until : float;
}

(* Lazy LRU: entries carry a generation; the eviction queue may hold
   stale (path, generation) pairs which are skipped when popping.
   [on_drop] fires when the store itself drops a live entry — LRU
   eviction or overwrite by a fresh fill — so the owner can release the
   entry's server-side watch. It deliberately does NOT fire on
   [store_remove] (invalidation): a fired watch is already consumed. *)
type 'a store = {
  capacity : int;
  table : (string, 'a entry * int) Hashtbl.t;
  order : (string * int) Queue.t;
  mutable generation : int;
  mutable on_drop : string -> 'a entry -> unit;
}

let store_create capacity =
  { capacity;
    (* small initial tables: a 100k-session sweep allocates two stores
       per session, so pre-sizing for the capacity would be ~100x waste *)
    table = Hashtbl.create (max 8 (min capacity 64));
    order = Queue.create ();
    generation = 0;
    on_drop = (fun _ _ -> ()) }

let store_find store path = Option.map fst (Hashtbl.find_opt store.table path)

let rec store_evict store =
  if Hashtbl.length store.table > store.capacity then
    match Queue.take_opt store.order with
    | None -> ()
    | Some (path, generation) ->
      (match Hashtbl.find_opt store.table path with
       | Some (entry, g) when g = generation ->
         Hashtbl.remove store.table path;
         store.on_drop path entry
       | Some _ | None -> ());
      store_evict store

(* Every push can leave one stale pair behind (the entry's previous
   generation), so a hit-heavy workload grows [order] without bound
   unless it is periodically rebuilt from the live generations. *)
let store_compact store =
  if Queue.length store.order > 2 * store.capacity then begin
    let live = Queue.create () in
    Queue.iter
      (fun (path, generation) ->
        match Hashtbl.find_opt store.table path with
        | Some (_, g) when g = generation -> Queue.push (path, generation) live
        | Some _ | None -> ())
      store.order;
    Queue.clear store.order;
    Queue.transfer live store.order
  end

let store_put store path entry =
  (match Hashtbl.find_opt store.table path with
   | Some (old, _) -> store.on_drop path old
   | None -> ());
  store.generation <- store.generation + 1;
  Hashtbl.replace store.table path (entry, store.generation);
  Queue.push (path, store.generation) store.order;
  store_evict store;
  store_compact store

let store_touch store path =
  match Hashtbl.find_opt store.table path with
  | None -> ()
  | Some (entry, _) ->
    store.generation <- store.generation + 1;
    Hashtbl.replace store.table path (entry, store.generation);
    Queue.push (path, store.generation) store.order;
    store_compact store

let store_remove store path = Hashtbl.remove store.table path

type data_entry =
  | Present of string * Zk.Ztree.stat
  | Absent

type t = {
  inner : Zk_client.handle;
  mode : coherence;
  now : unit -> float;
  data : data_entry store;
  kids : string list store;
  (* Fill fences (the stale re-fill fix): one counter per path, bumped on
     EVERY invalidation — including when no entry is cached, because the
     race window is precisely "watch event consumed while the fill's
     reply is still in flight", when the table has nothing under the
     path. A fill snapshots the counter before going to the server and
     stores only if it is unchanged on return. [epoch] is the global sum,
     fencing bulk fills whose child set is unknown before the reply. *)
  data_gen : (string, int) Hashtbl.t;
  kids_gen : (string, int) Hashtbl.t;
  mutable epoch : int;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable watch_releases : int;
  mutable lease_expired_hits : int;
  released_counter : Simkit.Stat.Counter.t option;
  expired_counter : Simkit.Stat.Counter.t option;
  mutable wrapped : Zk_client.handle option;
}

let hits t = t.hits
let misses t = t.misses
let invalidations t = t.invalidations
let watch_releases t = t.watch_releases
let lease_expired_hits t = t.lease_expired_hits
let size t = Hashtbl.length t.data.table + Hashtbl.length t.kids.table
let queue_length t = Queue.length t.data.order + Queue.length t.kids.order

let gen_of tbl path = Option.value ~default:0 (Hashtbl.find_opt tbl path)

let bump t tbl path =
  Hashtbl.replace tbl path (gen_of tbl path + 1);
  t.epoch <- t.epoch + 1

let count_release t =
  t.watch_releases <- t.watch_releases + 1;
  Option.iter Simkit.Stat.Counter.incr t.released_counter

let release_data t path cb =
  t.inner.Zk_client.release_data_watch path cb;
  count_release t

let release_kids t path cb =
  t.inner.Zk_client.release_child_watch path cb;
  count_release t

let invalidate_data t path =
  bump t t.data_gen path;
  if Hashtbl.mem t.data.table path then begin
    t.invalidations <- t.invalidations + 1;
    store_remove t.data path
  end

let invalidate_children t path =
  bump t t.kids_gen path;
  if Hashtbl.mem t.kids.table path then begin
    t.invalidations <- t.invalidations + 1;
    store_remove t.kids path
  end

(* A mutation on [path] changes its own entry and its parent's child
   list; for deletes, also any cached children list of the node itself. *)
let invalidate_mutation t path =
  invalidate_data t path;
  invalidate_children t path;
  invalidate_children t (Zpath.parent path)

(* The lease revocation channel: one aggregated callback per session,
   dispatching on the changed path — the bulk replacement for the
   per-znode watch fan-in. *)
let on_revocation t (ev : Zk.Ztree.watch_event) =
  match ev.kind with
  | Zk.Ztree.Node_data_changed -> invalidate_data t ev.path
  | Zk.Ztree.Node_created | Zk.Ztree.Node_deleted ->
    (* creation also kills leased negative entries; deletion also kills
       any cached listing of the node itself *)
    invalidate_data t ev.path;
    invalidate_children t ev.path;
    invalidate_children t (Zpath.parent ev.path)
  | Zk.Ztree.Node_children_changed -> invalidate_children t ev.path

(* A leased entry is served locally only before its deadline; at or past
   it the entry no longer carries any coherence guarantee (the serving
   replica may have died with the lease table) and must be re-fetched —
   which re-grants the lease in the same round trip. *)
let entry_live t entry =
  match t.mode with
  | Watches -> true
  | Leases -> t.now () < entry.lease_until

let note_expired t =
  t.lease_expired_hits <- t.lease_expired_hits + 1;
  Option.iter Simkit.Stat.Counter.incr t.expired_counter

(* {2 Fills}

   Each fill snapshots the path's fence before the server visit and
   stores only if no invalidation arrived while the reply was in flight.
   A skipped fill releases the watch it armed (best-effort — if the
   invalidation consumed it server-side, the release finds nothing). *)

let fill_get_watches t path =
  let cb (_ : Zk.Ztree.watch_event) = invalidate_data t path in
  let fence = gen_of t.data_gen path in
  let result = t.inner.Zk_client.get_watch path cb in
  (match result with
   | Ok (data, stat) ->
     if gen_of t.data_gen path = fence then
       store_put t.data path
         { value = Present (data, stat); watch = Some cb; lease_until = infinity }
     else release_data t path cb
   | Error Zerror.ZNONODE ->
     (* negative entry; the armed exists-watch fires on creation *)
     if gen_of t.data_gen path = fence then
       store_put t.data path
         { value = Absent; watch = Some cb; lease_until = infinity }
     else release_data t path cb
   | Error _ ->
     (* transport failure: nothing was cached, so the armed watch would
        fire into nothing — release it instead of leaking it *)
     release_data t path cb);
  result

let fill_get_leases t path =
  let fence = gen_of t.data_gen path in
  match t.inner.Zk_client.lease_get path with
  | Ok (value, deadline) ->
    let value = match value with
      | Some (data, stat) -> Present (data, stat)
      | None -> Absent
    in
    if gen_of t.data_gen path = fence then
      store_put t.data path { value; watch = None; lease_until = deadline };
    (match value with
     | Present (data, stat) -> Ok (data, stat)
     | Absent -> Error Zerror.ZNONODE)
  | Error e -> Error e

let cached_get t path =
  match store_find t.data path with
  | Some entry when entry_live t entry -> (
    t.hits <- t.hits + 1;
    store_touch t.data path;
    match entry.value with
    | Present (data, stat) -> Ok (data, stat)
    | Absent -> Error Zerror.ZNONODE)
  | stale ->
    if Option.is_some stale then note_expired t;
    t.misses <- t.misses + 1;
    (match t.mode with
     | Watches -> fill_get_watches t path
     | Leases -> fill_get_leases t path)

let fill_children_watches t path =
  let cb (_ : Zk.Ztree.watch_event) = invalidate_children t path in
  let fence = gen_of t.kids_gen path in
  let result = t.inner.Zk_client.children_watch path cb in
  (match result with
   | Ok names ->
     if gen_of t.kids_gen path = fence then
       store_put t.kids path
         { value = names; watch = Some cb; lease_until = infinity }
     else release_kids t path cb
   | Error _ -> release_kids t path cb);
  result

let fill_children_leases t path =
  let fence = gen_of t.kids_gen path in
  match t.inner.Zk_client.lease_children path with
  | Ok (names, deadline) ->
    if gen_of t.kids_gen path = fence then
      store_put t.kids path { value = names; watch = None; lease_until = deadline };
    Ok names
  | Error e -> Error e

let cached_children t path =
  match store_find t.kids path with
  | Some entry when entry_live t entry ->
    t.hits <- t.hits + 1;
    store_touch t.kids path;
    Ok entry.value
  | stale ->
    if Option.is_some stale then note_expired t;
    t.misses <- t.misses + 1;
    (match t.mode with
     | Watches -> fill_children_watches t path
     | Leases -> fill_children_leases t path)

(* Bulk readdir. A hit assembles the listing from the cached child-name
   list plus per-child data entries; a miss fetches everything in one
   server visit and warms those same entries, so a later [get] of any
   child is already cached. In [Watches] mode the piggybacked watches
   (child watch on the parent, data watch per child) keep the warmed
   entries coherent; in [Leases] mode one lease deadline covers the
   listing and every warmed child. *)
let fill_bulk_watches t path =
  let cb (ev : Zk.Ztree.watch_event) =
    match ev.kind with
    | Zk.Ztree.Node_children_changed -> invalidate_children t ev.path
    | Zk.Ztree.Node_data_changed -> invalidate_data t ev.path
    | Zk.Ztree.Node_created | Zk.Ztree.Node_deleted ->
      (* the path may be the listed parent (its own deletion reaches us
         through the child watch) or a warmed child: drop both shapes *)
      invalidate_data t ev.path;
      invalidate_children t ev.path
  in
  let fence = t.epoch in
  let result = t.inner.Zk_client.children_with_data_watch path cb in
  (match result with
   | Ok entries ->
     if t.epoch = fence then begin
       store_put t.kids path
         { value = List.map (fun (name, _, _) -> name) entries;
           watch = Some cb;
           lease_until = infinity };
       List.iter
         (fun (name, data, stat) ->
           store_put t.data (Zpath.concat path name)
             { value = Present (data, stat); watch = Some cb;
               lease_until = infinity })
         entries
     end
     else begin
       (* an invalidation raced the reply: drop the whole warm-up and
          release every registration this fill armed (consumed ones
          cancel to nothing) *)
       release_kids t path cb;
       List.iter
         (fun (name, _, _) -> release_data t (Zpath.concat path name) cb)
         entries
     end
   | Error _ ->
     (* the parent child-watch was armed before the listing was read;
        per-child data watches (armed only on success, and unknown to a
        timed-out client) are left to their fire-once consumption *)
     release_kids t path cb);
  result

let fill_bulk_leases t path =
  let fence = t.epoch in
  match t.inner.Zk_client.lease_children_with_data path with
  | Ok (entries, deadline) ->
    if t.epoch = fence then begin
      store_put t.kids path
        { value = List.map (fun (name, _, _) -> name) entries;
          watch = None;
          lease_until = deadline };
      List.iter
        (fun (name, data, stat) ->
          store_put t.data (Zpath.concat path name)
            { value = Present (data, stat); watch = None;
              lease_until = deadline })
        entries
    end;
    Ok entries
  | Error e -> Error e

let cached_children_with_data t path =
  let fill () =
    t.misses <- t.misses + 1;
    match t.mode with
    | Watches -> fill_bulk_watches t path
    | Leases -> fill_bulk_leases t path
  in
  let assemble names =
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | name :: rest ->
        (match store_find t.data (Zpath.concat path name) with
         | Some ({ value = Present (data, stat); _ } as e) when entry_live t e ->
           go ((name, data, stat) :: acc) rest
         | Some _ | None -> None)
    in
    go [] names
  in
  match store_find t.kids path with
  | Some entry when entry_live t entry -> (
    match assemble entry.value with
    | None -> fill ()  (* a child's data entry was evicted or expired *)
    | Some entries ->
      t.hits <- t.hits + 1;
      store_touch t.kids path;
      List.iter
        (fun name -> store_touch t.data (Zpath.concat path name))
        entry.value;
      Ok entries)
  | Some _ -> note_expired t; fill ()
  | None -> fill ()

let wrap ?(capacity = 4096) ?(coherence = Watches) ?(now = fun () -> 0.)
    ?metrics inner =
  if capacity < 1 then invalid_arg "Cache.wrap: capacity < 1";
  let t =
    { inner;
      mode = coherence;
      now;
      data = store_create capacity;
      kids = store_create capacity;
      data_gen = Hashtbl.create 16;
      kids_gen = Hashtbl.create 16;
      epoch = 0;
      hits = 0;
      misses = 0;
      invalidations = 0;
      watch_releases = 0;
      lease_expired_hits = 0;
      released_counter =
        Option.map (fun m -> Obs.Metrics.counter m "cache.watch.released") metrics;
      expired_counter =
        Option.map (fun m -> Obs.Metrics.counter m "cache.lease.expired_hit")
          metrics;
      wrapped = None }
  in
  (* LRU eviction (and overwrite of a live entry) drops state the server
     still guards with an armed watch: release it, or the server's watch
     tables grow with every entry this cache has ever held. *)
  t.data.on_drop <-
    (fun path entry ->
      match entry.watch with
      | Some cb -> release_data t path cb
      | None -> ());
  t.kids.on_drop <-
    (fun path entry ->
      match entry.watch with
      | Some cb -> release_kids t path cb
      | None -> ());
  (* one aggregated revocation channel per session (lease mode) *)
  if coherence = Leases then
    inner.Zk_client.set_invalidation (fun ev -> on_revocation t ev);
  let create ?ephemeral ?sequential path ~data =
    let result = inner.Zk_client.create ?ephemeral ?sequential path ~data in
    (match result with
     | Ok actual ->
       invalidate_mutation t actual;
       if actual <> path then invalidate_mutation t path
     | Error _ -> ());
    result
  in
  let set ?version path ~data =
    let result = inner.Zk_client.set ?version path ~data in
    invalidate_data t path;
    result
  in
  let delete ?version path =
    let result = inner.Zk_client.delete ?version path in
    invalidate_mutation t path;
    result
  in
  let multi txn =
    let result = inner.Zk_client.multi txn in
    List.iter (fun op -> invalidate_mutation t (Zk.Txn.op_path op)) txn;
    (* sequential creates materialize under a different name *)
    (match result with
     | Ok items ->
       List.iter
         (function
           | Zk.Txn.Created actual -> invalidate_mutation t actual
           | Zk.Txn.Deleted | Zk.Txn.Data_set | Zk.Txn.Checked -> ())
         items
     | Error _ -> ());
    result
  in
  let multi_async txn callback =
    inner.Zk_client.multi_async txn (fun result ->
        List.iter (fun op -> invalidate_mutation t (Zk.Txn.op_path op)) txn;
        callback result)
  in
  let handle =
    { Zk_client.create;
      get = cached_get t;
      set;
      delete;
      exists =
        (fun path ->
          (* only a definitive "no such node" answer maps to None; a
             transient read failure (timeout, connection loss) must not
             make an existing file look deleted *)
          match cached_get t path with
          | Ok (_, stat) -> Ok (Some stat)
          | Error Zerror.ZNONODE -> Ok None
          | Error e -> Error e);
      children = cached_children t;
      children_with_data = cached_children_with_data t;
      children_with_data_watch = inner.Zk_client.children_with_data_watch;
      multi;
      multi_async;
      watch_data = inner.Zk_client.watch_data;
      watch_children = inner.Zk_client.watch_children;
      get_watch = inner.Zk_client.get_watch;
      children_watch = inner.Zk_client.children_watch;
      lease_get = inner.Zk_client.lease_get;
      lease_children = inner.Zk_client.lease_children;
      lease_children_with_data = inner.Zk_client.lease_children_with_data;
      set_invalidation = inner.Zk_client.set_invalidation;
      release_data_watch = inner.Zk_client.release_data_watch;
      release_child_watch = inner.Zk_client.release_child_watch;
      sync = inner.Zk_client.sync;
      close = inner.Zk_client.close;
      session_id = inner.Zk_client.session_id }
  in
  t.wrapped <- Some handle;
  t

let handle t =
  match t.wrapped with
  | Some h -> h
  | None -> assert false (* set by [wrap] before returning *)
