(** Alias of {!Zk.Md5} (the implementation lives beside the shard
    router, which consistent-hashes znode paths; DUFS keeps using it as
    the uniform hash inside its deterministic mapping function). *)

include module type of struct
  include Zk.Md5
end
