(** Alias of {!Zk.Consistent_hash} (shared by the DUFS back-end mapping
    function and the coordination-layer shard router). *)

include module type of struct
  include Zk.Consistent_hash
end
