(** Physical-data rebalancing when the back-end set changes — the
    machinery behind the paper's §VII future work.

    With the paper's [MD5(fid) mod N] mapping, changing N remaps almost
    every FID; with consistent hashing, only ≈ 1/(N+1) of FIDs move when a
    back-end is added. Either way the procedure is the same: compute the
    FIDs whose owner changed, copy each physical file to its new home,
    then delete the old copy. Virtual names and FIDs never change, so the
    namespace in the coordination service is untouched. *)

type move = {
  vpath : string;
  fid : Fid.t;
  src : int;
  dst : int;
}

type stats = {
  examined : int;   (** files in the namespace *)
  moved : int;      (** physical files relocated *)
  bytes_moved : int64;
}

(** [plan ~coord ~old_locate ~new_locate ()] — every file whose back-end
    under [new_locate] differs from [old_locate]. *)
val plan :
  coord:Zk.Zk_client.handle ->
  old_locate:(Fid.t -> int) ->
  new_locate:(Fid.t -> int) ->
  ?zroot:string ->
  unit ->
  (move list, Zk.Zerror.t) result

(** [execute ~backends moves] copies and deletes; [backends] must cover
    every [src] and [dst] index and be formatted with [layout]. Stops at
    the first filesystem error.

    [note] receives a write-ahead intent line before each move's first
    destination mutation and a "double presence" line if the source
    unlink fails after the destination copy committed — the window in
    which a crash leaves the file on both back-ends with nothing else
    recording it (wire it to {!Zk.Shard_router.note} or any durable
    log; {!Fsck.scan} finds and {!Fsck.repair} dedups the leftovers). *)
val execute :
  backends:Fuselike.Vfs.ops array ->
  ?layout:Physical.layout ->
  ?note:(string -> unit) ->
  move list ->
  (stats, Fuselike.Errno.t) result

(** Convenience for the common case: grow the back-end set by one under a
    given strategy. Returns the plan together with the strategy to mount
    new clients with. *)
val plan_add_backend :
  coord:Zk.Zk_client.handle ->
  strategy:Mapping.strategy ->
  backends_before:int ->
  ?zroot:string ->
  unit ->
  (move list * Mapping.strategy, Zk.Zerror.t) result
