(** Client-side metadata cache — an extension exploring the trade-off the
    paper's related work discusses (§VI: client caching is usually
    disabled under concurrent update workloads because of consistency
    overhead; a coordination service makes invalidation cheap).

    [wrap] decorates a coordination handle with one of two coherence
    protocols:

    {ul
    {- [Watches] (default): each fill registers a fire-once watch on the
       session's server and the event evicts the entry. Precise, but the
       server carries one registration per cached entry — O(cached
       znodes) server state.}
    {- [Leases]: each fill is stamped by the server with a lease deadline
       on the sim clock and registers one {e session-level} interest per
       directory; within the lease the entry is served locally with zero
       per-znode server state, committed changes revoke early through
       the session's single aggregated invalidation channel, and at the
       deadline the entry silently expires (the staleness bound when a
       server dies with its lease table — DESIGN.md §9).}}

    In both modes the session's own mutations evict affected paths
    immediately (read-your-own-writes), entries are bounded by an LRU of
    [capacity], and fills are fenced by per-path generation counters so
    an invalidation that lands while a read reply is in flight can never
    be buried by the stale fill. Evicted or overwritten entries release
    their server-side watch, keeping the server's watch tables bounded
    by live cache contents rather than by everything ever cached. *)

type t

(** Which coherence protocol guards cached entries. *)
type coherence = Watches | Leases

(** [wrap ?capacity ?coherence ?now ?metrics handle] — a caching view
    over [handle]; the returned handle shares the session with the
    original. [now] must be the sim clock when [coherence = Leases]
    (lease deadlines are compared against it; the default constant [0.]
    never expires anything). [metrics] mirrors the release/expiry
    counters as [cache.watch.released] / [cache.lease.expired_hit]. *)
val wrap :
  ?capacity:int -> ?coherence:coherence -> ?now:(unit -> float) ->
  ?metrics:Obs.Metrics.t -> Zk.Zk_client.handle -> t

val handle : t -> Zk.Zk_client.handle

(** {2 Statistics} *)

val hits : t -> int
val misses : t -> int
val invalidations : t -> int

(** Server-side watch registrations this cache explicitly cancelled
    (failed fills, LRU evictions, overwrites) — the lifecycle half that
    keeps {!Zk.Ztree.watch_count} bounded. *)
val watch_releases : t -> int

(** Cached entries found past their lease deadline (served as misses and
    re-leased in the refill round trip). *)
val lease_expired_hits : t -> int

(** Entries currently cached. *)
val size : t -> int

(** Total length of the lazy-LRU eviction queues, stale pairs included.
    Bounded at ~2× capacity per store by compaction; exposed so tests can
    assert hit-heavy workloads do not grow it without bound. *)
val queue_length : t -> int
