(** Client-side metadata cache with watch-based invalidation — an
    extension exploring the trade-off the paper's related work discusses
    (§VI: client caching is usually disabled under concurrent update
    workloads because of consistency overhead; a coordination service
    with watches makes invalidation cheap).

    [wrap] decorates a coordination handle: [get]/[exists]/[children]
    results are cached; each fill registers a fire-once watch on the
    session's server, and the event evicts the entry. The session's own
    mutations also evict affected paths immediately, preserving
    read-your-own-writes. Entries are bounded by an LRU of [capacity].

    Cached reads cost no server round trip — which is exactly why cached
    DUFS directory stats scale past the raw zoo_get ceiling in the
    `ablation-cache` experiment — at the price of a staleness window of
    one watch-delivery latency for remote updates. *)

type t

(** [wrap ?capacity handle] — a caching view over [handle]. The returned
    handle shares the session (and its watches) with the original. *)
val wrap : ?capacity:int -> Zk.Zk_client.handle -> t

val handle : t -> Zk.Zk_client.handle

(** {2 Statistics} *)

val hits : t -> int
val misses : t -> int
val invalidations : t -> int

(** Entries currently cached. *)
val size : t -> int

(** Total length of the lazy-LRU eviction queues, stale pairs included.
    Bounded at ~2× capacity per store by compaction; exposed so tests can
    assert hit-heavy workloads do not grow it without bound. *)
val queue_length : t -> int
