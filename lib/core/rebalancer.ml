module Vfs = Fuselike.Vfs
module Errno = Fuselike.Errno
module Inode = Fuselike.Inode

type move = {
  vpath : string;
  fid : Fid.t;
  src : int;
  dst : int;
}

type stats = {
  examined : int;
  moved : int;
  bytes_moved : int64;
}

let plan ~coord ~old_locate ~new_locate ?(zroot = "/dufs") () =
  Result.map
    (fun files ->
      List.filter_map
        (fun (vpath, fid) ->
          let src = old_locate fid and dst = new_locate fid in
          if src = dst then None else Some { vpath; fid; src; dst })
        files)
    (Namespace.files coord ~zroot)

let execute ~backends ?(layout = Physical.default_layout) ?(note = fun _ -> ())
    moves =
  let ( let* ) = Result.bind in
  let examined = List.length moves in
  let rec go moved bytes_moved = function
    | [] -> Ok { examined; moved; bytes_moved }
    | { vpath; fid; src; dst } :: rest ->
      let path = Physical.path layout fid in
      let src_ops = backends.(src) and dst_ops = backends.(dst) in
      let* attr = src_ops.Vfs.getattr path in
      let size = Int64.to_int attr.Inode.size in
      let* contents = src_ops.Vfs.read path ~off:0 ~len:size in
      (* Write-ahead intent: from the first dst mutation until the src
         unlink commits, the file exists on both back-ends. A crash (or
         error exit) inside that window would otherwise leave the double
         presence with no record anywhere — this note is what points
         Fsck at it. *)
      note
        (Printf.sprintf "move in flight: %s (fid %s) backend %d -> %d" vpath
           (Fid.to_hex fid) src dst);
      let* () =
        match dst_ops.Vfs.create path ~mode:attr.Inode.mode with
        | Ok () | Error Errno.EEXIST -> Ok ()
        | Error Errno.ENOENT ->
          (* destination mount not formatted with this layout *)
          let* () = Vfs.mkdir_p dst_ops (Fuselike.Fspath.parent path) ~mode:0o755 in
          dst_ops.Vfs.create path ~mode:attr.Inode.mode
        | Error _ as e -> e
      in
      let* _n = dst_ops.Vfs.write path ~off:0 contents in
      let* () = dst_ops.Vfs.chmod path ~mode:attr.Inode.mode in
      (match src_ops.Vfs.unlink path with
       | Ok () -> go (moved + 1) (Int64.add bytes_moved attr.Inode.size) rest
       | Error e ->
         note
           (Printf.sprintf
              "double presence: %s (fid %s) committed to backend %d but unlink \
               on %d failed (%s)"
              vpath (Fid.to_hex fid) dst src (Errno.to_string e));
         Error e)
  in
  go 0 0L moves

let plan_add_backend ~coord ~strategy ~backends_before ?(zroot = "/dufs") () =
  let n = backends_before in
  let old_locate fid = Mapping.locate strategy ~backends:n fid in
  let new_strategy =
    match strategy with
    | Mapping.Md5_mod -> Mapping.Md5_mod
    | Mapping.Consistent ring -> Mapping.Consistent (Consistent_hash.add_node ring n)
  in
  let new_locate fid = Mapping.locate new_strategy ~backends:(n + 1) fid in
  Result.map
    (fun moves -> (moves, new_strategy))
    (plan ~coord ~old_locate ~new_locate ~zroot ())
