module Vfs = Fuselike.Vfs
module Errno = Fuselike.Errno
module Fspath = Fuselike.Fspath
module Inode = Fuselike.Inode

type issue =
  | Missing_physical of { vpath : string; fid : Fid.t; backend : int }
  | Misplaced_physical of {
      vpath : string;
      fid : Fid.t;
      expected : int;
      actual : int;
    }
  | Orphan_physical of { backend : int; path : string }
  | Double_presence of { vpath : string; fid : Fid.t; expected : int; extra : int }
  | Undecodable_meta of { vpath : string; data : string }

type report = {
  issues : issue list;
  files_checked : int;
  dirs_checked : int;
  physicals_checked : int;
}

let pp_issue fmt = function
  | Missing_physical { vpath; fid; backend } ->
    Format.fprintf fmt "missing physical: %s (fid %a) not on backend %d" vpath Fid.pp
      fid backend
  | Misplaced_physical { vpath; fid; expected; actual } ->
    Format.fprintf fmt "misplaced physical: %s (fid %a) on backend %d, maps to %d"
      vpath Fid.pp fid actual expected
  | Orphan_physical { backend; path } ->
    Format.fprintf fmt "orphan physical: backend %d %s" backend path
  | Double_presence { vpath; fid; expected; extra } ->
    Format.fprintf fmt
      "double presence: %s (fid %a) on backend %d and its home %d" vpath Fid.pp
      fid extra expected
  | Undecodable_meta { vpath; data } ->
    Format.fprintf fmt "undecodable metadata at %s: %S" vpath data

let is_clean report = report.issues = []

(* All FID-named physical files under the layout's hash directories. *)
let physical_files (ops : Vfs.ops) layout =
  let rec walk dir depth acc =
    match ops.Vfs.readdir dir with
    | Error _ -> acc
    | Ok entries ->
      List.fold_left
        (fun acc (e : Vfs.dirent) ->
          let child = Fspath.concat dir e.Vfs.name in
          match e.Vfs.kind with
          | Inode.Directory when depth < layout.Physical.levels -> walk child (depth + 1) acc
          | Inode.Directory | Inode.Symlink -> acc
          | Inode.Regular -> (
            match Fid.of_hex e.Vfs.name with
            | Some fid -> (child, fid) :: acc
            | None -> acc))
        acc entries
  in
  walk "/" 0 []

let scan ~coord ~backends ?(layout = Physical.default_layout)
    ?(strategy = Mapping.Md5_mod) ?(zroot = "/dufs") () =
  match Namespace.scan coord ~zroot with
  | Error _ as e -> e
  | Ok entries ->
    let n = Array.length backends in
    let locate fid = Mapping.locate strategy ~backends:n fid in
    let issues = ref [] in
    let files = ref 0 and dirs = ref 0 in
    (* fids the namespace claims, with their expected location *)
    let claimed = Hashtbl.create 1024 in
    List.iter
      (function
        | Either.Left { Namespace.vpath; meta } ->
          (match meta.Meta.kind with
           | Meta.Dir -> incr dirs
           | Meta.Symlink _ -> ()
           | Meta.File fid ->
             incr files;
             let expected = locate fid in
             Hashtbl.replace claimed (Fid.to_hex fid) (vpath, fid, expected);
             let ppath = Physical.path layout fid in
             if not (Vfs.exists backends.(expected) ppath) then begin
               (* missing where it belongs — is it sitting elsewhere? *)
               let misplaced = ref None in
               Array.iteri
                 (fun i ops ->
                   if i <> expected && !misplaced = None && Vfs.exists ops ppath then
                     misplaced := Some i)
                 backends;
               match !misplaced with
               | Some actual ->
                 issues :=
                   Misplaced_physical { vpath; fid; expected; actual } :: !issues
               | None ->
                 issues := Missing_physical { vpath; fid; backend = expected } :: !issues
             end)
        | Either.Right (`Undecodable (vpath, data)) ->
          issues := Undecodable_meta { vpath; data } :: !issues)
      entries;
    (* physical files nobody claims, or claimed but on the wrong mount *)
    let physicals = ref 0 in
    Array.iteri
      (fun backend ops ->
        List.iter
          (fun (path, fid) ->
            incr physicals;
            match Hashtbl.find_opt claimed (Fid.to_hex fid) with
            | Some (_, _, expected) when expected = backend -> ()
            | Some (vpath, fid, expected) ->
              (* A claimed file on the wrong back-end. If its home copy
                 is missing, the namespace pass already reported it as
                 misplaced; if the home copy is also present — a
                 rebalance that died between the dst write and the src
                 unlink — nothing else will report it. *)
              if Vfs.exists backends.(expected) (Physical.path layout fid) then
                issues :=
                  Double_presence { vpath; fid; expected; extra = backend }
                  :: !issues
            | None -> issues := Orphan_physical { backend; path } :: !issues)
          (physical_files ops layout))
      backends;
    Ok
      { issues = List.rev !issues;
        files_checked = !files;
        dirs_checked = !dirs;
        physicals_checked = !physicals }

type repair_stats = {
  recreated : int;
  moved : int;
  deleted : int;
  deduplicated : int;
  unrepairable : int;
}

let copy_file (src : Vfs.ops) (dst : Vfs.ops) path =
  let ( let* ) = Result.bind in
  let* attr = src.Vfs.getattr path in
  let size = Int64.to_int attr.Inode.size in
  let* contents = src.Vfs.read path ~off:0 ~len:size in
  let* () =
    match dst.Vfs.create path ~mode:attr.Inode.mode with
    | Ok () | Error Errno.EEXIST -> Ok ()
    | Error _ as e -> e
  in
  let* _written = dst.Vfs.write path ~off:0 contents in
  dst.Vfs.chmod path ~mode:attr.Inode.mode

let repair ~backends ?(layout = Physical.default_layout) report =
  let stats =
    ref { recreated = 0; moved = 0; deleted = 0; deduplicated = 0; unrepairable = 0 }
  in
  let bump f = stats := f !stats in
  List.iter
    (fun issue ->
      match issue with
      | Missing_physical { fid; backend; _ } ->
        (match backends.(backend).Vfs.create (Physical.path layout fid) ~mode:0o644 with
         | Ok () -> bump (fun s -> { s with recreated = s.recreated + 1 })
         | Error _ -> bump (fun s -> { s with unrepairable = s.unrepairable + 1 }))
      | Misplaced_physical { fid; expected; actual; _ } ->
        let path = Physical.path layout fid in
        (match copy_file backends.(actual) backends.(expected) path with
         | Ok () ->
           (match backends.(actual).Vfs.unlink path with
            | Ok () | Error _ -> ());
           bump (fun s -> { s with moved = s.moved + 1 })
         | Error _ -> bump (fun s -> { s with unrepairable = s.unrepairable + 1 }))
      | Orphan_physical { backend; path } ->
        (match backends.(backend).Vfs.unlink path with
         | Ok () -> bump (fun s -> { s with deleted = s.deleted + 1 })
         | Error _ -> bump (fun s -> { s with unrepairable = s.unrepairable + 1 }))
      | Double_presence { fid; extra; _ } ->
        (* the home copy is authoritative; drop the stale one *)
        (match backends.(extra).Vfs.unlink (Physical.path layout fid) with
         | Ok () -> bump (fun s -> { s with deduplicated = s.deduplicated + 1 })
         | Error _ -> bump (fun s -> { s with unrepairable = s.unrepairable + 1 }))
      | Undecodable_meta _ ->
        bump (fun s -> { s with unrepairable = s.unrepairable + 1 }))
    report.issues;
  !stats
