(* Re-export: the implementation moved into lib/zk so the shard router
   can hash paths without a zk -> dufs dependency cycle. Existing users
   keep addressing it as [Dufs.Md5]. *)
include Zk.Md5
