(** Consistency checker for a DUFS deployment.

    DUFS splits the truth between the coordination service (names, FIDs)
    and the back-end mounts (file contents). [scan] cross-checks the two:
    every file znode must have its physical file on exactly the back-end
    the mapping function selects, and every physical file must be owned by
    some znode. [repair] fixes what can be fixed mechanically. *)

type issue =
  | Missing_physical of { vpath : string; fid : Fid.t; backend : int }
      (** znode exists but the mapped back-end has no physical file *)
  | Misplaced_physical of {
      vpath : string;
      fid : Fid.t;
      expected : int;
      actual : int;
    }  (** physical file found, but on the wrong back-end *)
  | Orphan_physical of { backend : int; path : string }
      (** physical file not referenced by any znode *)
  | Double_presence of { vpath : string; fid : Fid.t; expected : int; extra : int }
      (** physical file present on its mapped back-end {e and} a second
          one — a rebalance that died between the destination write and
          the source unlink (see {!Rebalancer.execute}'s [note]) *)
  | Undecodable_meta of { vpath : string; data : string }
      (** znode data field is not a valid DUFS payload *)

type report = {
  issues : issue list;
  files_checked : int;
  dirs_checked : int;
  physicals_checked : int;
}

val pp_issue : Format.formatter -> issue -> unit
val is_clean : report -> bool

(** [scan ~coord ~backends ()] — read-only cross-check. *)
val scan :
  coord:Zk.Zk_client.handle ->
  backends:Fuselike.Vfs.ops array ->
  ?layout:Physical.layout ->
  ?strategy:Mapping.strategy ->
  ?zroot:string ->
  unit ->
  (report, Zk.Zerror.t) result

type repair_stats = {
  recreated : int;    (** empty physical files created for missing ones *)
  moved : int;        (** misplaced physical files moved home *)
  deleted : int;      (** orphan physical files removed *)
  deduplicated : int; (** stale double-presence copies removed *)
  unrepairable : int;
}

(** [repair ~coord ~backends report] applies mechanical fixes:
    missing physicals are recreated empty (the contents are gone),
    misplaced physicals are copied to the mapped back-end and removed from
    the wrong one, orphans are deleted, the stale copy of a double
    presence is unlinked (the home copy is authoritative). Undecodable
    metadata is left for a human. *)
val repair :
  backends:Fuselike.Vfs.ops array ->
  ?layout:Physical.layout ->
  report ->
  repair_stats
