module Vfs = Fuselike.Vfs
module Errno = Fuselike.Errno
module Fspath = Fuselike.Fspath
module Inode = Fuselike.Inode
module Zk_client = Zk.Zk_client
module Zerror = Zk.Zerror
module Txn = Zk.Txn
module Zpath = Zk.Zpath

type t = {
  coord : Zk_client.handle;
  backends : Vfs.ops array;
  layout : Physical.layout;
  strategy : Mapping.strategy;
  zroot : string;
  clock : unit -> float;
  delay : float -> unit;
  overhead : float;
  trace : Obs.Trace.t;
  fid_gen : Fid.Gen.t;
  (* znodes whose create rolled back but whose rollback delete also
     failed: each is a Missing_physical orphan until fsck repairs it *)
  mutable orphan_notes : string list;
}

let default_overhead = 15e-6

let errno_of_zerror = function
  | Zerror.ZNONODE -> Errno.ENOENT
  | Zerror.ZNODEEXISTS -> Errno.EEXIST
  | Zerror.ZNOTEMPTY -> Errno.ENOTEMPTY
  | Zerror.ZBADARGUMENTS -> Errno.EINVAL
  | Zerror.ZBADVERSION
  | Zerror.ZNOCHILDRENFOREPHEMERALS
  | Zerror.ZCONNECTIONLOSS
  | Zerror.ZSESSIONEXPIRED
  | Zerror.ZOPERATIONTIMEOUT -> Errno.EIO

let mount ~coord ~backends ?client_id ?(layout = Physical.default_layout)
    ?(strategy = Mapping.Md5_mod) ?(zroot = "/dufs") ?(clock = fun () -> 0.)
    ?(delay = fun _ -> ()) ?(overhead = default_overhead)
    ?(trace = Obs.Trace.null) () =
  if Array.length backends = 0 then invalid_arg "Client.mount: no backends";
  (match strategy with
  | Mapping.Md5_mod -> ()
  | Mapping.Consistent ring ->
    if
      List.exists
        (fun node -> node < 0 || node >= Array.length backends)
        (Consistent_hash.nodes ring)
    then invalid_arg "Client.mount: ring node outside the backend range");
  let client_id =
    match client_id with Some id -> id | None -> coord.Zk_client.session_id
  in
  let t =
    { coord;
      backends;
      layout;
      strategy;
      zroot;
      clock;
      delay;
      overhead;
      trace;
      fid_gen = Fid.Gen.create ~client_id;
      orphan_notes = [] }
  in
  (* the namespace root is a plain directory znode *)
  (match
     coord.Zk_client.create zroot
       ~data:(Meta.encode (Meta.dir ~mode:0o755 ~ctime:(clock ())))
   with
  | Ok _ | Error Zerror.ZNODEEXISTS -> ()
  | Error e ->
    invalid_arg ("Client.mount: cannot create namespace root: " ^ Zerror.to_string e));
  t

let backend_count t = Array.length t.backends
let orphan_notes t = List.rev t.orphan_notes
let layout t = t.layout
let strategy t = t.strategy
let files_created t = Fid.Gen.generated t.fid_gen
let locate t fid = Mapping.locate t.strategy ~backends:(Array.length t.backends) fid

(* FUSE channel buffers + ZooKeeper client library + mapping tables; none
   of it grows with the namespace (the client is stateless, §IV-I). *)
let resident_bytes _t = (10 * 132 * 1024) + (8 * 1024 * 1024)

(* virtual path -> znode path *)
let zpath t vpath =
  let vpath = Fspath.normalize vpath in
  if vpath = "/" then t.zroot else t.zroot ^ vpath

let backend_for t fid = t.backends.(locate t fid)
let physical t fid = Physical.path t.layout fid

let ( let* ) = Result.bind

(* Classify a missing path the way the kernel's walk does: ENOTDIR if the
   nearest existing ancestor is not a directory, ENOENT otherwise. *)
let rec classify_missing t vpath =
  let parent = Fspath.parent vpath in
  if parent = vpath then Errno.ENOENT
  else
    match t.coord.Zk_client.get (zpath t parent) with
    | Ok (data, _) ->
      (match Meta.decode data with
       | Ok { Meta.kind = Meta.Dir; _ } -> Errno.ENOENT
       | Ok { Meta.kind = Meta.File _ | Meta.Symlink _; _ } -> Errno.ENOTDIR
       | Error _ -> Errno.EIO)
    | Error Zerror.ZNONODE -> classify_missing t parent
    | Error e -> errno_of_zerror e

(* Look up a virtual path's metadata: znode data + stat, decoded. *)
let lookup t vpath =
  match t.coord.Zk_client.get (zpath t vpath) with
  | Error Zerror.ZNONODE -> Error (classify_missing t (Fspath.normalize vpath))
  | Error e -> Error (errno_of_zerror e)
  | Ok (data, stat) ->
    (match Meta.decode data with
     | Ok meta -> Ok (meta, stat)
     | Error _ -> Error Errno.EIO)

let charge t = t.delay t.overhead

(* [parent_dir_of t vpath] — the parent must exist and be a directory,
   mirroring the kernel's path-resolution order. *)
let parent_dir_of t vpath =
  let parent = Fspath.parent (Fspath.normalize vpath) in
  let* meta, _stat = lookup t parent in
  match meta.Meta.kind with
  | Meta.Dir -> Ok ()
  | Meta.File _ | Meta.Symlink _ -> Error Errno.ENOTDIR

let dir_attr (meta : Meta.t) (stat : Zk.Ztree.stat) =
  { Inode.kind = Inode.Directory;
    ino = stat.Zk.Ztree.czxid;
    mode = meta.Meta.mode;
    uid = 0;
    gid = 0;
    size = Int64.of_int stat.Zk.Ztree.num_children;
    nlink = 2;
    atime = stat.Zk.Ztree.mtime;
    mtime = stat.Zk.Ztree.mtime;
    ctime = meta.Meta.ctime }

let symlink_attr (target : string) (meta : Meta.t) (stat : Zk.Ztree.stat) =
  { Inode.kind = Inode.Symlink;
    ino = stat.Zk.Ztree.czxid;
    mode = 0o777;
    uid = 0;
    gid = 0;
    size = Int64.of_int (String.length target);
    nlink = 1;
    atime = stat.Zk.Ztree.mtime;
    mtime = stat.Zk.Ztree.mtime;
    ctime = meta.Meta.ctime }

(* Algorithm of Fig. 6: directories are answered from the coordination
   service alone; files redirect to a physical stat on the back-end. *)
let getattr t vpath =
  charge t;
  let* meta, stat = lookup t vpath in
  match meta.Meta.kind with
  | Meta.Dir -> Ok (dir_attr meta stat)
  | Meta.Symlink target -> Ok (symlink_attr target meta stat)
  | Meta.File fid -> (backend_for t fid).Vfs.getattr (physical t fid)

let access t vpath = Result.map (fun (_ : Inode.attr) -> ()) (getattr t vpath)

(* Algorithm of Fig. 5. *)
let mkdir t vpath ~mode =
  charge t;
  let* () = parent_dir_of t vpath in
  let data = Meta.encode (Meta.dir ~mode ~ctime:(t.clock ())) in
  match t.coord.Zk_client.create (zpath t vpath) ~data with
  | Ok _ -> Ok ()
  | Error e -> Error (errno_of_zerror e)

let rec rmdir_with_retries t ~attempts vpath =
  let* meta, stat = lookup t vpath in
  match meta.Meta.kind with
  | Meta.File _ | Meta.Symlink _ -> Error Errno.ENOTDIR
  | Meta.Dir ->
    if Fspath.normalize vpath = "/" then Error Errno.EINVAL
    else begin
      (* the version guard makes the emptiness check race-free: the
         delete only succeeds against the exact state the lookup judged,
         and a concurrent metadata update turns into a clean re-read *)
      match
        t.coord.Zk_client.delete ~version:stat.Zk.Ztree.version (zpath t vpath)
      with
      | Ok () -> Ok ()
      | Error Zerror.ZBADVERSION when attempts > 1 ->
        rmdir_with_retries t ~attempts:(attempts - 1) vpath
      | Error e -> Error (errno_of_zerror e)
    end

let rmdir t vpath =
  charge t;
  rmdir_with_retries t ~attempts:8 vpath

(* Create the znode first (atomically claiming the name), then the
   physical file; roll the znode back if the back-end fails. *)
let create_file t vpath ~mode =
  charge t;
  let* () = parent_dir_of t vpath in
  let fid = Fid.Gen.next t.fid_gen in
  let data = Meta.encode (Meta.file fid ~mode ~ctime:(t.clock ())) in
  match t.coord.Zk_client.create (zpath t vpath) ~data with
  | Error e -> Error (errno_of_zerror e)
  | Ok _ ->
    let backend = backend_for t fid in
    let ppath = physical t fid in
    let created =
      match backend.Vfs.create ppath ~mode with
      | Ok () -> Ok ()
      | Error Errno.ENOENT ->
        (* hierarchy not formatted: create it on demand, then retry *)
        let* () = Vfs.mkdir_p backend (Fspath.parent ppath) ~mode:0o755 in
        backend.Vfs.create ppath ~mode
      | Error _ as e -> e
    in
    (match created with
     | Ok () -> Ok ()
     | Error _ ->
       (match t.coord.Zk_client.delete (zpath t vpath) with
        | Ok () | Error Zerror.ZNONODE -> ()
        | Error e ->
          (* rollback failed too: the znode survives with no physical
             file behind it — exactly the Missing_physical orphan
             Fsck.scan reports. Leave a breadcrumb for the operator. *)
          t.orphan_notes <-
            Printf.sprintf "%s: create rolled back but znode delete failed (%s)"
              (zpath t vpath) (Zerror.to_string e)
            :: t.orphan_notes);
       Error Errno.EIO)

let unlink t vpath =
  charge t;
  let* meta, _stat = lookup t vpath in
  match meta.Meta.kind with
  | Meta.Dir -> Error Errno.EISDIR
  | Meta.Symlink _ ->
    (match t.coord.Zk_client.delete (zpath t vpath) with
     | Ok () -> Ok ()
     | Error e -> Error (errno_of_zerror e))
  | Meta.File fid ->
    (match t.coord.Zk_client.delete (zpath t vpath) with
     | Error e -> Error (errno_of_zerror e)
     | Ok () ->
       (* the name is gone; physical cleanup failures only leak space *)
       (match (backend_for t fid).Vfs.unlink (physical t fid) with
        | Ok () | Error _ -> Ok ()))

let readdir t vpath =
  charge t;
  (* bulk fetch first: names and payloads arrive in one coordination
     round trip, so listing an N-entry directory costs 1 visit, not N+1 *)
  match t.coord.Zk_client.children_with_data (zpath t vpath) with
  | Error Zerror.ZNONODE -> Error (classify_missing t (Fspath.normalize vpath))
  | Error e -> Error (errno_of_zerror e)
  | Ok [] ->
    (* an empty listing is ambiguous: files and symlinks are leaf znodes
       too, so only now read the node itself to tell them apart *)
    let* meta, _stat = lookup t vpath in
    (match meta.Meta.kind with
     | Meta.Dir -> Ok []
     | Meta.File _ | Meta.Symlink _ -> Error Errno.ENOTDIR)
  | Ok entries ->
    (* children exist, so the znode is a DUFS directory: files and
       symlinks never have children *)
    let kind_of data =
      match Meta.decode data with
      | Ok { Meta.kind = Meta.Dir; _ } -> Inode.Directory
      | Ok { Meta.kind = Meta.File _; _ } -> Inode.Regular
      | Ok { Meta.kind = Meta.Symlink _; _ } -> Inode.Symlink
      | Error _ -> Inode.Regular
    in
    Ok (List.map (fun (name, data, _) -> { Vfs.name; kind = kind_of data }) entries)

let symlink t ~target vpath =
  charge t;
  let* () = parent_dir_of t vpath in
  let data = Meta.encode (Meta.symlink ~target ~ctime:(t.clock ())) in
  match t.coord.Zk_client.create (zpath t vpath) ~data with
  | Ok _ -> Ok ()
  | Error e -> Error (errno_of_zerror e)

let readlink t vpath =
  charge t;
  let* meta, _stat = lookup t vpath in
  match meta.Meta.kind with
  | Meta.Symlink target -> Ok target
  | Meta.Dir | Meta.File _ -> Error Errno.EINVAL

(* {2 Rename}

   Rename is a pure metadata operation: the FID (and hence the physical
   file) never moves. The whole update — including moving a directory
   subtree's znodes — is submitted as one atomic multi-transaction,
   guarded by a version check on the source so a concurrent modification
   retries rather than corrupting the namespace. *)

let collect_subtree t zsrc =
  (* breadth-first: parents precede children. The frontier is a Queue so
     enqueueing a level is O(children), not the O(n²) of [rest @ children];
     each visited node's bulk listing yields its children's payloads too,
     halving the round trips of a get + children walk. *)
  match t.coord.Zk_client.get zsrc with
  | Error e -> Error (errno_of_zerror e)
  | Ok (root_data, _) ->
    let frontier = Queue.create () in
    Queue.push zsrc frontier;
    let rec walk acc =
      match Queue.take_opt frontier with
      | None -> Ok (List.rev acc)
      | Some path ->
        (match t.coord.Zk_client.children_with_data path with
         | Error e -> Error (errno_of_zerror e)
         | Ok entries ->
           let acc =
             List.fold_left
               (fun acc (name, data, _) ->
                 Queue.push (Zpath.concat path name) frontier;
                 (Zpath.concat path name, data) :: acc)
               acc entries
           in
           walk acc)
    in
    walk [ (zsrc, root_data) ]

let rebase ~from ~onto path =
  if path = from then onto
  else onto ^ String.sub path (String.length from) (String.length path - String.length from)

let rename_txn t ~zsrc ~zdst ~src_version ~dst_existing =
  let* nodes = collect_subtree t zsrc in
  let deletes_of_dst =
    match dst_existing with
    | None -> []
    | Some () -> [ Zk_client.delete_op zdst ]
  in
  let creates =
    List.map
      (fun (path, data) -> Zk_client.create_op (rebase ~from:zsrc ~onto:zdst path) ~data)
      nodes
  in
  let deletes =
    (* deepest first, so children disappear before their parents *)
    List.map (fun (path, _) -> Zk_client.delete_op path) (List.rev nodes)
  in
  Ok ([ Zk_client.check_op ~version:src_version zsrc ] @ deletes_of_dst @ creates @ deletes)

let rec rename_with_retries t ~attempts vsrc vdst =
  let zsrc = zpath t vsrc and zdst = zpath t vdst in
  let* () = parent_dir_of t vsrc in
  let* () = parent_dir_of t vdst in
  let* src_meta, src_stat = lookup t vsrc in
  let src_is_dir = match src_meta.Meta.kind with Meta.Dir -> true | _ -> false in
  if Fspath.normalize vsrc = Fspath.normalize vdst then Ok ()
  else if src_is_dir && Fspath.is_prefix ~prefix:vsrc vdst then Error Errno.EINVAL
  else begin
    let dst_state =
      match lookup t vdst with
      | Ok (dst_meta, dst_stat) -> `Exists (dst_meta, dst_stat)
      | Error Errno.ENOENT -> `Absent
      | Error e -> `Err e
    in
    let* dst_existing =
      match dst_state with
      | `Err e -> Error e
      | `Absent -> Ok None
      | `Exists (dst_meta, _) ->
        (match src_meta.Meta.kind, dst_meta.Meta.kind with
         | Meta.Dir, Meta.Dir ->
           (* a children query, not the stat's [num_children]: under a
              sharded coordination service the primary of a directory
              homed apart from its children always reports 0 there *)
           (match t.coord.Zk_client.children zdst with
            | Ok (_ :: _) -> Error Errno.ENOTEMPTY
            | Ok [] -> Ok (Some ())
            | Error e -> Error (errno_of_zerror e))
         | Meta.Dir, (Meta.File _ | Meta.Symlink _) -> Error Errno.ENOTDIR
         | (Meta.File _ | Meta.Symlink _), Meta.Dir -> Error Errno.EISDIR
         | (Meta.File _ | Meta.Symlink _), (Meta.File _ | Meta.Symlink _) ->
           Ok (Some ()))
    in
    let* txn =
      rename_txn t ~zsrc ~zdst ~src_version:src_stat.Zk.Ztree.version ~dst_existing
    in
    match t.coord.Zk_client.multi txn with
    | Ok _ -> Ok ()
    | Error (Zerror.ZBADVERSION | Zerror.ZNODEEXISTS | Zerror.ZNONODE | Zerror.ZNOTEMPTY)
      when attempts > 1 ->
      (* lost a race with a concurrent namespace update: re-read and retry *)
      rename_with_retries t ~attempts:(attempts - 1) vsrc vdst
    | Error e -> Error (errno_of_zerror e)
  end

let rename t vsrc vdst =
  charge t;
  if Fspath.normalize vsrc = "/" then Error Errno.EINVAL
  else rename_with_retries t ~attempts:8 vsrc vdst

(* {2 Attribute updates} *)

let rec set_meta_with_retries t ~attempts vpath update =
  let* meta, stat = lookup t vpath in
  let* meta' = update meta in
  match
    t.coord.Zk_client.set ~version:stat.Zk.Ztree.version (zpath t vpath)
      ~data:(Meta.encode meta')
  with
  | Ok () -> Ok ()
  | Error Zerror.ZBADVERSION when attempts > 1 ->
    set_meta_with_retries t ~attempts:(attempts - 1) vpath update
  | Error e -> Error (errno_of_zerror e)

let chmod t vpath ~mode =
  charge t;
  let* meta, _stat = lookup t vpath in
  match meta.Meta.kind with
  | Meta.File fid -> (backend_for t fid).Vfs.chmod (physical t fid) ~mode
  | Meta.Symlink _ -> Ok ()
  | Meta.Dir ->
    set_meta_with_retries t ~attempts:8 vpath (fun meta ->
        Ok { meta with Meta.mode })

let truncate t vpath ~size =
  charge t;
  let* meta, _stat = lookup t vpath in
  match meta.Meta.kind with
  | Meta.Dir -> Error Errno.EISDIR
  | Meta.Symlink _ -> Error Errno.EINVAL
  | Meta.File fid -> (backend_for t fid).Vfs.truncate (physical t fid) ~size

(* {2 Data path} *)

let with_file t vpath f =
  let* meta, _stat = lookup t vpath in
  match meta.Meta.kind with
  | Meta.Dir -> Error Errno.EISDIR
  | Meta.Symlink _ -> Error Errno.EINVAL
  | Meta.File fid -> f (backend_for t fid) (physical t fid)

let read t vpath ~off ~len =
  charge t;
  with_file t vpath (fun backend ppath -> backend.Vfs.read ppath ~off ~len)

let write t vpath ~off data =
  charge t;
  with_file t vpath (fun backend ppath -> backend.Vfs.write ppath ~off data)

let statfs t () =
  Array.fold_left
    (fun acc backend ->
      let s = backend.Vfs.statfs () in
      { Vfs.files = acc.Vfs.files + s.Vfs.files;
        directories = acc.Vfs.directories + s.Vfs.directories;
        symlinks = acc.Vfs.symlinks + s.Vfs.symlinks;
        bytes_used = Int64.add acc.Vfs.bytes_used s.Vfs.bytes_used })
    { Vfs.files = 0; directories = 0; symlinks = 0; bytes_used = 0L }
    t.backends

(* Root span around one POSIX op against the simulated clock. Recording
   is accumulator-only, so traced and untraced runs tick identically. *)
let traced t name f =
  if Obs.Trace.enabled t.trace then begin
    let t0 = t.clock () in
    let r = f () in
    Obs.Trace.record_span t.trace name (t.clock () -. t0);
    r
  end
  else f ()

let ops t =
  { Vfs.getattr = (fun p -> traced t "dufs.getattr" (fun () -> getattr t p));
    access = (fun p -> traced t "dufs.access" (fun () -> access t p));
    mkdir = (fun p ~mode -> traced t "dufs.mkdir" (fun () -> mkdir t p ~mode));
    rmdir = (fun p -> traced t "dufs.rmdir" (fun () -> rmdir t p));
    create =
      (fun p ~mode -> traced t "dufs.create" (fun () -> create_file t p ~mode));
    unlink = (fun p -> traced t "dufs.unlink" (fun () -> unlink t p));
    rename = (fun a b -> traced t "dufs.rename" (fun () -> rename t a b));
    readdir = (fun p -> traced t "dufs.readdir" (fun () -> readdir t p));
    symlink =
      (fun ~target p -> traced t "dufs.symlink" (fun () -> symlink t ~target p));
    readlink = (fun p -> traced t "dufs.readlink" (fun () -> readlink t p));
    chmod = (fun p ~mode -> traced t "dufs.chmod" (fun () -> chmod t p ~mode));
    truncate =
      (fun p ~size -> traced t "dufs.truncate" (fun () -> truncate t p ~size));
    read =
      (fun p ~off ~len -> traced t "dufs.read" (fun () -> read t p ~off ~len));
    write =
      (fun p ~off data -> traced t "dufs.write" (fun () -> write t p ~off data));
    statfs = (fun () -> traced t "dufs.statfs" (fun () -> statfs t ())) }
