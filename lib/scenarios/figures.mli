(** One driver per table/figure of the paper's evaluation (§V), plus the
    extension ablations. Each [figN] function runs the simulations (memoized
    in {!Systems}) and prints the same rows/series the paper plots; the
    [*_data] variants return the numbers for tests and EXPERIMENTS.md. *)

(** Client-process counts used on the x-axis (paper: up to 256). *)
val default_procs : int list

(** Bar-chart process counts (Figs. 8 and 9 use 64/128/256). *)
val bar_procs : int list

(** {2 Fig. 7 — raw ZooKeeper op throughput vs ensemble size} *)

val fig7_data :
  ?procs_list:int list -> unit -> (string * (int * (int * float) list) list) list
(** [(op, [(servers, [(procs, rate)])])] *)

val fig7 : ?procs_list:int list -> unit -> unit

(** {2 Fig. 8 — DUFS vs #ZooKeeper servers (2 Lustre back-ends)} *)

val fig8 : unit -> unit

(** {2 Fig. 9 — DUFS with 2 vs 4 Lustre back-ends (file ops)} *)

val fig9 : unit -> unit

(** {2 Fig. 10 — DUFS vs Basic Lustre and Basic PVFS2, 6 ops} *)

val fig10 : unit -> unit

(** {2 §V-D headline ratios at 256 procs} *)

type headline = {
  dir_create_vs_lustre : float;  (** paper: 1.9 *)
  dir_create_vs_pvfs : float;    (** paper: 23 *)
  file_stat_vs_lustre : float;   (** paper: 1.3 *)
  file_stat_vs_pvfs : float;     (** paper: 3.0 *)
}

val headline_data : ?procs:int -> unit -> headline
val headline : unit -> unit

(** {2 Fig. 11 — memory usage vs created directories} *)

val fig11_data :
  ?millions:float list -> unit -> (float * float * float * float) list
(** [(millions of dirs, zookeeper MB, dufs MB, dummy-fuse MB)] *)

val fig11 : ?millions:float list -> unit -> unit

(** {2 Extension ablations} *)

(** MD5-mod-N vs consistent hashing: balance and relocation on grow. *)
val ablation_mapping : unit -> unit

(** DUFS vs a hypothetical Lustre Clustered MDS (CMD, §VI): the global
    lock serializing cross-server updates vs ZooKeeper's ordered
    broadcast. *)
val ablation_cmd : unit -> unit

(** Shared vs unique working directories (mdtest -u): isolates the DLM
    lock-contention component of Lustre's decline. *)
val ablation_unique : unit -> unit

(** Synchronous vs pipelined (async) coordination API: what the paper's
    prototype left on the table by using the synchronous API. *)
val ablation_async : unit -> unit

(** DUFS with vs without the client-side metadata cache. *)
val ablation_cache : unit -> unit

(** GIGA+-style directory indexing vs DUFS vs Lustre on a single huge
    directory, and the availability cost of unreplicated partitions. *)
val ablation_giga : unit -> unit

(** Non-voting observers: read scaling without write cost. *)
val ablation_observers : unit -> unit

(** Throughput timeline across leader crash, quorum loss and recovery. *)
val ablation_faults : unit -> unit

(** {2 ZAB group commit — batched vs unbatched metadata pipeline} *)

val batching_data :
  unit -> (Mdtest.Runner.phase * (string * (int * float) list) list) list
(** [(phase, [(config label, [(procs, ops/s)])])] for mdtest file-create
    and dir-stat, [max_batch = 1] vs [max_batch = 16]. *)

(** Print the comparison; with [json_path], also write the points in the
    {!Mdtest.Report.bench_point} schema (the BENCH_pr1.json artifact). *)
val batching : ?json_path:string -> unit -> unit

(** {2 The failure path — mdtest under declarative fault schedules} *)

val fault_plans : (string * string) list
(** Named {!Faults.Faultplan} schedules exercised by the benchmark:
    sub-quorum leader loss with delayed recovery, and rolling follower
    crash/restart. Parseable with {!Faults.Faultplan.parse}. *)

val faults_data : unit -> (string * Systems.fault_run) list
(** One {!Systems.mdtest_faulted} run per configuration, headed by the
    exactly-comparable fault-free baseline (empty plan). *)

(** Print per-phase rates plus the exactly-once invariants (errors,
    dedup hits, znode accounting) for each schedule; with [json_path],
    also write the points in the {!Mdtest.Report.bench_point} schema
    (the BENCH_pr2.json artifact). *)
val faults : ?json_path:string -> unit -> unit

(** The DUFS stack every profile run traces: 2 Lustre back-ends, 8
    coordination servers. *)
val profile_spec : Systems.dufs_spec

(** [profile ()] runs mdtest with span tracing on at each scale in
    [procs_list] (default 64/128/256) and prints, per scale: client op
    latency percentiles (p50/p95/p99 per op type), the quorum-phase
    critical-path breakdown of each coordination write kind (with its
    coverage against the measured op latency), read latency, leader
    queue/batch distributions, and each back-end MDS station's
    wait-vs-service split. With [json_path], also writes the points (the
    BENCH_pr3.json artifact): mdtest points carry the latency block,
    [zk-<op>-breakdown] points carry the phase durations.
    @raise Failure if any op's phase sum diverges more than 5% from its
    measured mean latency. *)
val profile : ?procs_list:int list -> ?json_path:string -> unit -> unit

(** {2 Sharded coordination — N independent ZAB leaders}

    mdtest over {!Zk.Shard_router} deployments at a constant total
    server count (8) and constant back-end count (8 Lustre): one
    8-server ensemble vs 2x4 vs 4x2 shards, unbatched and batched.
    Every run is span-traced, so the same run yields throughput, the
    create queue-wait breakdown, per-shard queue-wait/balance, and the
    per-shard znode accounting (checked exact — the run fails on any
    surplus or deficit). With [json_path] writes the BENCH_pr4.json
    artifact: [mdtest-*] points with latency blocks,
    [zk-create-breakdown] points with phase durations, and
    [sharding-znode-accounting] points whose [shards] block records the
    per-shard balance ([expected_logical] and [live_stubs] ride in the
    config string for external validation). *)

val sharding_data :
  ?procs_list:int list ->
  ?topologies:(int * int) list ->
  ?batches:int list ->
  unit ->
  ((int * int * int * int) * Systems.sharded_profile_run) list
(** [((shards, servers_per_shard, max_batch, procs), run)] for each
    combination, defaults 1x8/2x4/4x2 x batch 1/16 x 64/128/256. *)

val sharding :
  ?procs_list:int list ->
  ?topologies:(int * int) list ->
  ?batches:int list ->
  ?json_path:string ->
  unit ->
  unit

(** {2 Chaos — randomized network fault schedules + linearizability
    oracle}

    [chaos ()] runs one {!Systems.chaos_run} per [(shards, seed)] entry
    of [runs] (default: 12 single-shard + 8 four-shard schedules),
    prints a per-run table (ops recorded/checked, undetermined ops,
    expired sessions, dedup activity, post-heal recovery time,
    violations), re-runs the first schedule to prove bit-identical
    history digests, and summarizes recovery percentiles. With
    [json_path] writes the BENCH_pr5.json artifact: one [chaos] point
    per run (violations, ops checked, recovery and the degradation
    counters in the [phases] block; [recovery_s = -1] means the run
    never recovered) plus a [chaos-summary] point with totals and
    recovery percentiles.
    @raise Failure on any linearizability violation, on a run that
    never recovers after the closing heal, or if the re-run digest
    differs (the run is then not seed-deterministic). *)
val chaos :
  ?runs:(int * int64) list ->
  ?clients:int ->
  ?registers:int ->
  ?heal_at:float ->
  ?post_heal:float ->
  ?events:int ->
  ?json_path:string ->
  unit ->
  unit

(** The CI variant: 2 fixed schedules (1-shard and 4-shard) at 64
    client processes over a shorter window — the BENCH_pr5_smoke.json
    artifact. Same failure conditions as {!chaos}. *)
val chaos_smoke : ?json_path:string -> unit -> unit

(** {2 Engine throughput — wall-clock events/sec of the simulator core}

    Delegates to {!Engine_bench.run}: three seeded mixes (timer-heavy,
    mailbox-heavy, net-fault-heavy) of ~[events] engine events each,
    timed with bechamel and replay-gated. With [json_path] writes the
    BENCH_pr6.json artifact. *)
val engine :
  ?events:int -> ?quota_s:float -> ?json_path:string -> unit -> unit

(** {2 Sessions — client-cache coherence at 1k-100k sessions}

    Delegates to {!Sessions_bench.run}: lease vs per-znode-watch
    coherence over mdtest-stat and readdir-storm read sweeps with a
    mid-sweep writer, observer read scaling, and the server-state
    accounting (watch tables vs lease tables). With [json_path] writes
    the BENCH_pr7.json artifact. *)
val sessions : ?json_path:string -> unit -> unit

(** The CI variant: 1k sessions, both coherence modes — the
    BENCH_pr7_smoke.json artifact. *)
val sessions_smoke : ?json_path:string -> unit -> unit

(** {2 Elastic resharding — live shard split/merge under mdtest}

    At each process count: the no-split 2-shard baseline, the live
    2->4 split fired at the file-create barrier, and (at the smallest
    process count) a 4->2 merge — all through
    {!Systems.mdtest_reshard}, with the linearizability oracle on a
    slice of the client sessions. Fails if any run reports client
    errors, an inexact logical census, oracle violations, or a
    migration that is not a proper bounded-load remainder. With
    [json_path] writes the BENCH_pr8.json artifact. *)
val reshard :
  ?procs_list:int list -> ?max_batch:int -> ?json_path:string -> unit -> unit

(** The CI variant: 64 processes only — the BENCH_pr8_smoke.json
    artifact. Same failure conditions as {!reshard}. *)
val reshard_smoke : ?json_path:string -> unit -> unit

(** {2 Write pipeline — windowed ZAB proposals vs stop-and-wait}

    The traced mdtest profile of {!profile}, run once per leader
    write-path configuration — classic unbatched stop-and-wait
    ([batch1-w1]), group commit alone ([batch16-w1]), and group commit
    plus a pipelined proposal window ([batch16-w8],
    [max_inflight_batches = 8]) — followed by a chaos sweep (the PR 5
    seeded schedules) with [max_inflight_batches = 4] on every shard.
    With [json_path] writes the BENCH_pr9.json artifact: [mdtest-*]
    points with latency blocks and [zk-<op>-breakdown] points with
    phase durations per configuration, one [pipeline-chaos] point per
    schedule, and a [pipeline-summary] point carrying the
    queue-wait + ack improvement of the pipelined configuration over
    the window = 1 baseline at the largest scale.
    @raise Failure if any phase is non-finite or negative, any op's
    phase sum diverges more than 5% from its measured mean latency, the
    improvement falls short of [min_improvement] percent (default 30),
    any chaos schedule reports a violation or fails to recover, or the
    re-run schedule's digest differs. *)
val pipeline :
  ?procs_list:int list ->
  ?chaos_runs:(int * int64) list ->
  ?min_improvement:float ->
  ?json_path:string ->
  unit ->
  unit

(** The CI variant: 64 processes, 2 chaos schedules, 10% improvement
    floor — the BENCH_pr9_smoke.json artifact. *)
val pipeline_smoke : ?json_path:string -> unit -> unit

(** {2 Durability — power failures and storage corruption over mdtest}

    Seeded schedules that power-fail the whole coordination ensemble in
    the middle of the file-create phase, cycling through storage-damage
    flavors on one member's disk (none, torn tail, WAL bit-rot,
    snapshot corruption, torn+snapshot, fail-slow + post-restart
    stall). Each run is a {!Systems.durability_run}; with [json_path]
    writes the BENCH_pr10.json artifact: one [durability] point per
    schedule (WAL/snapshot/recovery counters in [phases], dotted
    [wal.*]/[snap.*]/[recovery.*]/[transfer.*] keys) plus a
    [durability-summary] point.
    @raise Failure if any schedule fails to recover, recovered replicas
    disagree, any linearizability or durability-oracle violation is
    found, the torn/bit-rot schedules truncate nothing, leader
    diff-syncs ship at least as many transactions as local WAL replay
    recovered, or the re-run digest differs. *)
val durability :
  ?seeds:int64 list ->
  ?procs:int ->
  ?reg_clients:int ->
  ?ops_per_client:int ->
  ?dirs_per_proc:int ->
  ?files_per_proc:int ->
  ?json_path:string ->
  unit ->
  unit

(** The CI variant: 4 schedules (power-failure, torn-tail, WAL bit-rot,
    snapshot-rot) at 16 processes — the BENCH_pr10_smoke.json artifact.
    Same failure conditions as {!durability}. *)
val durability_smoke : ?json_path:string -> unit -> unit

(** Run everything (the full bench suite). *)
val all : unit -> unit
