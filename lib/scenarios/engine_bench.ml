module Engine = Simkit.Engine
module Process = Simkit.Process
module Mailbox = Simkit.Mailbox
module Net = Simkit.Net
module Rng = Simkit.Rng

type result = {
  mix : string;
  actors : int;
  events_executed : int;
  virtual_s : float;
  ns_per_event : float;
  events_per_sec : float;
  minor_words_per_event : float;
}

(* Every mix returns (executed events, final virtual clock) — the replay
   digest. All randomness is seeded, so two runs of the same mix must
   return identical digests. *)

(* {2 timer: the future-event queue under high occupancy}

   [outstanding] timers are always armed; each firing re-arms itself at
   an exponential offset. The pending queue therefore sits at
   ~[outstanding] entries for the whole run — the regime where a binary
   heap pays its log factor on every single event. *)
let timer_mix ~outstanding ~events () =
  let e = Engine.create () in
  let rng = Rng.create ~seed:0x7153e5L in
  let budget = ref events in
  let rec arm () =
    if !budget > 0 then begin
      decr budget;
      Engine.schedule e ~delay:(Rng.exponential rng ~mean:1e-3) arm
    end
  in
  for _ = 1 to outstanding do
    arm ()
  done;
  Engine.run e;
  (Engine.executed_events e, Engine.now e)

(* {2 mailbox: delay-0 group-commit fan-out/fan-in}

   One coordinator broadcasts a batch of [batch] messages to each of
   [workers] parked processes and gathers their batched replies, round
   after round — the shape of ZAB group commit ([batch] mirrors the
   repo's [max_batch = 16] config): each wake drains a burst from the
   inbox and pushes a burst of replies. All traffic is [delay:0.];
   virtual time never advances, so the whole run exercises the
   zero-delay lane, suspend/resume, and mailbox queueing. *)
let mailbox_mix ~workers ~events () =
  let batch = 16 in
  let e = Engine.create () in
  let to_w = Array.init workers (fun _ -> Mailbox.create ()) in
  let from_w = Mailbox.create () in
  (* one round ≈ 1 event per worker (its wake; coordinator wakes
     amortize away) carrying ~2*batch messages *)
  let rounds = max 1 (events / workers) in
  for i = 0 to workers - 1 do
    Process.spawn e (fun () ->
        for _ = 1 to rounds do
          for _ = 1 to batch do
            ignore (Mailbox.recv to_w.(i))
          done;
          for b = 1 to batch do
            Mailbox.send from_w (b + i)
          done
        done)
  done;
  Process.spawn e (fun () ->
      for _ = 1 to rounds do
        for i = 0 to workers - 1 do
          for b = 1 to batch do
            Mailbox.send to_w.(i) b
          done
        done;
        for _ = 1 to workers * batch do
          ignore (Mailbox.recv from_w)
        done
      done);
  Engine.run e;
  (Engine.executed_events e, Engine.now e)

(* {2 net: fault-active message flows}

   [flows] independent flows send to random endpoints through a network
   with every probabilistic fault knob live plus periodic partition
   churn — the event profile of a chaos run: latency draws, fault draws,
   duplicated deliveries, and timer-driven resends interleaved. *)
let net_mix ~flows ~events () =
  let e = Engine.create () in
  let net = Net.create ~default_latency:(Net.Uniform_lat (2e-4, 8e-4)) ~seed:0x9e7a1L e in
  let n_eps = 24 in
  let eps = Array.init n_eps (fun i -> Net.endpoint net (Printf.sprintf "ep%d" i)) in
  Net.set_drop net 0.02;
  Net.set_duplicate net 0.01;
  Net.set_reorder net ~p:0.05 ~window:2e-3;
  Net.set_extra_delay net 1e-4;
  let rng = Rng.create ~seed:0x51a9L in
  let budget = ref events in
  let rec churn healed =
    if !budget > 0 then begin
      (if healed then Net.partition net [ [ eps.(Rng.int rng n_eps) ] ]
       else Net.heal net);
      Engine.schedule e ~delay:0.05 (fun () -> churn (not healed))
    end
  in
  churn true;
  let rec flow src =
    if !budget > 0 then begin
      decr budget;
      Net.send net ~src:eps.(src) ~dst:eps.(Rng.int rng n_eps) ignore;
      Engine.schedule e ~delay:(Rng.exponential rng ~mean:5e-4) (fun () -> flow src)
    end
  in
  for f = 1 to flows do
    flow (f mod n_eps)
  done;
  Engine.run e;
  (Engine.executed_events e, Engine.now e)

let mixes ~events =
  [ ("timer", 4096, timer_mix ~outstanding:4096 ~events);
    ("mailbox", 2048, mailbox_mix ~workers:2048 ~events);
    ("net", 512, net_mix ~flows:512 ~events) ]

let mix_names = [ "timer"; "mailbox"; "net" ]

(* Allocation per event, measured over one whole run. Gc.minor_words is
   a process-global accumulator; single-threaded, so the delta is ours. *)
let minor_words_of run executed =
  let before = Gc.minor_words () in
  ignore (run ());
  (Gc.minor_words () -. before) /. float_of_int executed

let bechamel_ns_per_run ~quota_s ~name run =
  let open Bechamel in
  let test = Test.make ~name (Staged.stage (fun () -> ignore (run ()))) in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second quota_s) ~kde:None
      ~stabilize:false ()
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"" [ test ]) in
  let analyzed = Analyze.all ols instance raw in
  let estimate = ref nan in
  Hashtbl.iter
    (fun _ result ->
      match Analyze.OLS.estimates result with
      | Some [ ns ] -> estimate := ns
      | Some _ | None -> ())
    analyzed;
  if Float.is_finite !estimate then !estimate
  else failwith (Printf.sprintf "Engine_bench: no OLS estimate for %s" name)

let run_data ?(events = 1_000_000) ?(quota_s = 2.0) () =
  List.map
    (fun (name, actors, mix) ->
      (* replay gate: the digest must survive a re-run before we bother
         timing anything *)
      let executed, virtual_s = mix () in
      let executed', virtual_s' = mix () in
      if executed <> executed' || virtual_s <> virtual_s' then
        failwith
          (Printf.sprintf
             "Engine_bench: %s mix is not deterministic (%d@%.9g vs %d@%.9g)"
             name executed virtual_s executed' virtual_s');
      let minor_words = minor_words_of mix executed in
      let ns_per_run = bechamel_ns_per_run ~quota_s ~name mix in
      let ns_per_event = ns_per_run /. float_of_int executed in
      { mix = name;
        actors;
        events_executed = executed;
        virtual_s;
        ns_per_event;
        events_per_sec = 1e9 /. ns_per_event;
        minor_words_per_event = minor_words })
    (mixes ~events)

let run ?events ?quota_s ?json_path () =
  Mdtest.Report.print_header "Engine throughput: wall-clock events/sec per mix";
  let results = run_data ?events ?quota_s () in
  Printf.printf "  %-10s %8s %12s %12s %14s %10s\n" "mix" "actors" "events"
    "ns/event" "events/sec" "words/ev";
  List.iter
    (fun r ->
      Printf.printf "  %-10s %8d %12d %12.1f %14.0f %10.1f\n" r.mix r.actors
        r.events_executed r.ns_per_event r.events_per_sec
        r.minor_words_per_event)
    results;
  flush stdout;
  match json_path with
  | None -> ()
  | Some path ->
    let points =
      List.map
        (fun r ->
          Mdtest.Report.point
            ~experiment:("engine-" ^ r.mix)
            ~procs:r.actors
            ~config:
              (Printf.sprintf "events=%d|queue=calendar+fifo" r.events_executed)
            ~ops_per_sec:r.events_per_sec
            ~phases:
              [ ("events_executed", float_of_int r.events_executed);
                ("ns_per_event", r.ns_per_event);
                ("virtual_s", r.virtual_s);
                ("minor_words_per_event", r.minor_words_per_event) ]
            ())
        results
    in
    Mdtest.Report.emit_json ~path points;
    Printf.printf "  wrote %s\n%!" path
