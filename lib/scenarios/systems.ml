module Engine = Simkit.Engine
module Process = Simkit.Process
module Vfs = Fuselike.Vfs

type backend_kind = Lustre | Pvfs

type dufs_spec = {
  zk_servers : int;
  backends : int;
  backend_kind : backend_kind;
}

type system =
  | Basic_lustre
  | Basic_pvfs
  | Lustre_cmd of int
  | Dufs of dufs_spec
  | Dufs_cached of dufs_spec
  | Dufs_batched of dufs_spec * int
  | Dufs_sharded of dufs_spec * int * int
      (* spec (zk_servers = servers PER shard), shard count, max_batch *)

let system_label = function
  | Basic_lustre -> "Basic Lustre"
  | Basic_pvfs -> "Basic PVFS"
  | Lustre_cmd mds -> Printf.sprintf "Lustre CMD %d MDS" mds
  | Dufs { zk_servers; backends; backend_kind } ->
    Printf.sprintf "DUFS %dx%s/%dzk" backends
      (match backend_kind with Lustre -> "Lustre" | Pvfs -> "PVFS")
      zk_servers
  | Dufs_cached { zk_servers; backends; backend_kind } ->
    Printf.sprintf "DUFS+cache %dx%s/%dzk" backends
      (match backend_kind with Lustre -> "Lustre" | Pvfs -> "PVFS")
      zk_servers
  | Dufs_batched ({ zk_servers; backends; backend_kind }, max_batch) ->
    Printf.sprintf "DUFS+batch%d %dx%s/%dzk" max_batch backends
      (match backend_kind with Lustre -> "Lustre" | Pvfs -> "PVFS")
      zk_servers
  | Dufs_sharded ({ zk_servers; backends; backend_kind }, shards, max_batch) ->
    Printf.sprintf "DUFS+shards%dx%d+batch%d %dx%s" shards zk_servers max_batch
      backends
      (match backend_kind with Lustre -> "Lustre" | Pvfs -> "PVFS")

let zk_config ?(max_batch = 1) ~servers ~procs () =
  { (Zk.Ensemble.default_config ~servers) with
    Zk.Ensemble.max_batch;
    read_service = Pfs.Costs.Zookeeper.read_service;
    write_service = Pfs.Costs.Zookeeper.write_service;
    delete_service = Pfs.Costs.Zookeeper.delete_service;
    set_service = Pfs.Costs.Zookeeper.set_service;
    persist = Pfs.Costs.Zookeeper.persist;
    rpc_cpu = Pfs.Costs.Zookeeper.rpc_cpu;
    follower_apply = Pfs.Costs.Zookeeper.follower_apply;
    net_latency = Pfs.Costs.gige_latency;
    load_factor =
      Pfs.Costs.colocated_load_factor ~procs ~nodes:Pfs.Costs.client_nodes
        ~cores:Pfs.Costs.cores_per_node }

(* DUFS stack builder, exposed separately from [build_system] so fault
   experiments can keep a handle on the ensemble they are crashing, and
   profile runs can thread a span trace through the whole request path
   (ensemble quorum phases + client root spans) and read back each
   back-end metadata station's wait-vs-service split. *)
let build_backends engine ~spec =
  let { backends; backend_kind; zk_servers = _ } = spec in
  let layout = Dufs.Physical.default_layout in
  match backend_kind with
    | Lustre ->
      let mounts =
        Array.init backends (fun _ ->
            Pfs.Lustre_sim.create engine ~config:(Pfs.Lustre_sim.backend_config ()) ())
      in
      Array.iter
        (fun mount ->
          match Dufs.Physical.format layout (Pfs.Lustre_sim.local_ops mount) with
          | Ok () -> ()
          | Error e -> failwith (Fuselike.Errno.to_string e))
        mounts;
      ( (fun proc ->
          Array.mapi
            (fun i mount ->
              Pfs.Lustre_sim.client mount ~client_id:((proc * backends) + i))
            mounts),
        Array.map
          (fun mount ->
            (Pfs.Lustre_sim.mds_wait_summary mount,
             Pfs.Lustre_sim.mds_hold_summary mount))
          mounts )
    | Pvfs ->
      let mounts =
        Array.init backends (fun _ ->
            Pfs.Pvfs_sim.create engine ~config:(Pfs.Pvfs_sim.backend_config ()) ())
      in
      Array.iter
        (fun mount ->
          match Dufs.Physical.format layout (Pfs.Pvfs_sim.local_ops mount) with
          | Ok () -> ()
          | Error e -> failwith (Fuselike.Errno.to_string e))
        mounts;
      ( (fun proc ->
          Array.mapi
            (fun i mount -> Pfs.Pvfs_sim.client mount ~client_id:((proc * backends) + i))
            mounts),
        Array.concat
          (Array.to_list
             (Array.map
                (fun mount ->
                  Array.map2
                    (fun w h -> (w, h))
                    (Pfs.Pvfs_sim.wait_summaries mount)
                    (Pfs.Pvfs_sim.hold_summaries mount))
                mounts)) )

(* Per-proc VFS ops over an arbitrary coordination session factory —
   shared by the single-ensemble and sharded builders. *)
let dufs_ops_for_proc ~trace engine ~session_of ~backend_clients ~cached proc =
  let session : Zk.Zk_client.handle = session_of () in
  let coord =
    if cached then Dufs.Cache.handle (Dufs.Cache.wrap session) else session
  in
  let client =
    Dufs.Client.mount ~coord ~backends:(backend_clients proc)
      ~client_id:(Int64.of_int (proc + 1))
      ~layout:Dufs.Physical.default_layout
      ~clock:(fun () -> Engine.now engine)
      ~delay:Process.sleep
      ~overhead:(Pfs.Costs.fuse_crossing +. Pfs.Costs.dufs_overhead)
      ~trace
      ()
  in
  Dufs.Client.ops client

let build_dufs ?(trace = Obs.Trace.null) engine ~spec ~config ~cached =
  let ensemble = Zk.Ensemble.start ~trace engine config in
  let backend_clients, backend_stations = build_backends engine ~spec in
  let ops_for_proc =
    dufs_ops_for_proc ~trace engine
      ~session_of:(fun () -> Zk.Ensemble.session ensemble ())
      ~backend_clients ~cached
  in
  (ensemble, ops_for_proc, backend_stations)

(* The sharded stack: [shards] independent ensembles, each built from
   [config] (so [shards * config.servers] coordination servers in
   total), behind a {!Zk.Shard_router} session per client process. *)
let build_dufs_sharded ?(trace = Obs.Trace.null) engine ~spec ~config ~shards
    ~cached =
  let router = Zk.Shard_router.start ~trace engine ~shards config in
  let backend_clients, backend_stations = build_backends engine ~spec in
  let ops_for_proc =
    dufs_ops_for_proc ~trace engine
      ~session_of:(fun () -> Zk.Shard_router.session router ())
      ~backend_clients ~cached
  in
  (router, ops_for_proc, backend_stations)

(* Build per-process operation tables for one system on [engine]. The
   returned closure must be invoked from inside the process's own
   simulation context (Runner.run does). *)
let build_system engine system ~procs =
  match system with
  | Basic_lustre ->
    let fs = Pfs.Lustre_sim.create engine () in
    fun proc -> Pfs.Lustre_sim.client fs ~client_id:proc
  | Basic_pvfs ->
    let fs = Pfs.Pvfs_sim.create engine () in
    fun proc -> Pfs.Pvfs_sim.client fs ~client_id:proc
  | Lustre_cmd mds ->
    let fs =
      Pfs.Cmd_sim.create engine ~config:(Pfs.Cmd_sim.default_config ~mds_count:mds) ()
    in
    fun proc -> Pfs.Cmd_sim.client fs ~client_id:proc
  | (Dufs spec | Dufs_cached spec | Dufs_batched (spec, _)) as sys ->
    let cached = match sys with Dufs_cached _ -> true | _ -> false in
    let max_batch = match sys with Dufs_batched (_, b) -> b | _ -> 1 in
    let config = zk_config ~max_batch ~servers:spec.zk_servers ~procs () in
    let _, ops_for_proc, _ = build_dufs engine ~spec ~config ~cached in
    ops_for_proc
  | Dufs_sharded (spec, shards, max_batch) ->
    let config = zk_config ~max_batch ~servers:spec.zk_servers ~procs () in
    let _, ops_for_proc, _ =
      build_dufs_sharded engine ~spec ~config ~shards ~cached:false
    in
    ops_for_proc

let cache : (string, Mdtest.Runner.results) Hashtbl.t = Hashtbl.create 64
let reset_cache () = Hashtbl.reset cache

let mdtest ?(dirs_per_proc = 60) ?(files_per_proc = 60) ?(unique = false) system ~procs
    () =
  let key =
    Printf.sprintf "%s|%d|%d|%d|%b" (system_label system) procs dirs_per_proc
      files_per_proc unique
  in
  match Hashtbl.find_opt cache key with
  | Some results -> results
  | None ->
    let engine = Engine.create () in
    let ops_for_proc = build_system engine system ~procs in
    let cfg =
      Mdtest.Workload.config ~dirs_per_proc ~files_per_proc
        ~unique_working_dirs:unique ~procs ()
    in
    let results = Mdtest.Runner.run engine cfg ~ops_for_proc in
    Hashtbl.replace cache key results;
    results

(* {2 mdtest under a fault schedule} *)

type fault_run = {
  results : Mdtest.Runner.results;
  dedup_hits : int;
  writes_committed : int;
  faults_fired : int;
  znodes_after_create : int;
  expected_znodes_after_create : int;
}

let mdtest_faulted ?(dirs_per_proc = 60) ?(files_per_proc = 60) ?(unique = false)
    ?(cached = false) ?(config_adjust = fun c -> c) ~spec ~procs ~plan () =
  let engine = Engine.create () in
  let config = config_adjust (zk_config ~servers:spec.zk_servers ~procs ()) in
  let ensemble, ops_for_proc, _ = build_dufs engine ~spec ~config ~cached in
  let armed = Faults.Faultplan.arm engine ensemble plan in
  let cfg =
    Mdtest.Workload.config ~dirs_per_proc ~files_per_proc
      ~unique_working_dirs:unique ~procs ()
  in
  let znodes_after_create = ref 0 in
  let on_phase phase =
    (* the file-stat barrier is the moment every file create has
       committed and no removal has begun: the znode population should
       equal exactly root + zroot + skeleton + files created — any
       surplus is a duplicated apply, any deficit a lost write *)
    (if phase = Mdtest.Runner.File_stat then
       let id =
         match Zk.Ensemble.leader_id ensemble with
         | Some id -> id
         | None -> List.hd (Zk.Ensemble.alive_ids ensemble)
       in
       znodes_after_create :=
         Zk.Ztree.node_count (Zk.Ensemble.tree_of ensemble id));
    Faults.Faultplan.notify_phase armed (Mdtest.Runner.phase_to_string phase)
  in
  let results = Mdtest.Runner.run ~on_phase engine cfg ~ops_for_proc in
  { results;
    dedup_hits = Zk.Ensemble.dedup_hits ensemble;
    writes_committed = Zk.Ensemble.writes_committed ensemble;
    faults_fired = Faults.Faultplan.fired armed;
    znodes_after_create = !znodes_after_create;
    expected_znodes_after_create =
      (* ztree root "/" + the DUFS namespace root znode + skeleton dirs *)
      2 + List.length (Mdtest.Workload.skeleton cfg) + (procs * files_per_proc) }

(* {2 mdtest with the span trace enabled (profile runs)} *)

type profile_run = {
  results : Mdtest.Runner.results;
  trace : Obs.Trace.t;
  backend_stations : (Simkit.Stat.Summary.t * Simkit.Stat.Summary.t) array;
}

let mdtest_profiled ?(dirs_per_proc = 60) ?(files_per_proc = 60)
    ?(config_adjust = fun c -> c) ~spec ~procs () =
  let engine = Engine.create () in
  let trace = Obs.Trace.create () in
  Obs.Trace.enable trace;
  let config = config_adjust (zk_config ~servers:spec.zk_servers ~procs ()) in
  let _ensemble, ops_for_proc, backend_stations =
    build_dufs ~trace engine ~spec ~config ~cached:false
  in
  let cfg = Mdtest.Workload.config ~dirs_per_proc ~files_per_proc ~procs () in
  let results = Mdtest.Runner.run engine cfg ~ops_for_proc in
  { results; trace; backend_stations }

(* {2 Sharded mdtest runs}

   Shared accounting: at the file-stat barrier every file create has
   committed and no removal has begun, so the logical znode population
   (per-shard node counts minus each shard's own root minus live stubs)
   must equal zroot + skeleton + files exactly — any surplus is a
   doubled apply or a leaked stub, any deficit a lost write. *)

let expected_logical_znodes cfg ~procs ~files_per_proc =
  1 + List.length (Mdtest.Workload.skeleton cfg) + (procs * files_per_proc)

type sharded_profile_run = {
  results : Mdtest.Runner.results;
  trace : Obs.Trace.t;
  router : Zk.Shard_router.t;
  backend_stations : (Simkit.Stat.Summary.t * Simkit.Stat.Summary.t) array;
  per_shard_znodes : int array;   (* at the file-stat barrier *)
  live_stubs_at_stat : int;
  logical_znodes_at_stat : int;
  expected_logical_znodes : int;
}

let mdtest_sharded_profiled ?(dirs_per_proc = 60) ?(files_per_proc = 60)
    ?(max_batch = 1) ~spec ~shards ~procs () =
  let engine = Engine.create () in
  let trace = Obs.Trace.create () in
  Obs.Trace.enable trace;
  let config = zk_config ~max_batch ~servers:spec.zk_servers ~procs () in
  let router, ops_for_proc, backend_stations =
    build_dufs_sharded ~trace engine ~spec ~config ~shards ~cached:false
  in
  let cfg = Mdtest.Workload.config ~dirs_per_proc ~files_per_proc ~procs () in
  let per_shard_znodes = ref [||] and live_stubs_at_stat = ref 0 in
  let on_phase phase =
    if phase = Mdtest.Runner.File_stat then begin
      per_shard_znodes := Zk.Shard_router.node_counts router;
      live_stubs_at_stat :=
        Zk.Shard_router.live_stubs (Zk.Shard_router.stats router)
    end
  in
  let results = Mdtest.Runner.run ~on_phase engine cfg ~ops_for_proc in
  Zk.Shard_router.publish router (Obs.Trace.metrics trace);
  { results;
    trace;
    router;
    backend_stations;
    per_shard_znodes = !per_shard_znodes;
    live_stubs_at_stat = !live_stubs_at_stat;
    logical_znodes_at_stat =
      Array.fold_left (fun acc n -> acc + (n - 1)) 0 !per_shard_znodes
      - !live_stubs_at_stat;
    expected_logical_znodes = expected_logical_znodes cfg ~procs ~files_per_proc }

type sharded_fault_run = {
  results : Mdtest.Runner.results;
  dedup_hits : int;
  dedup_hits_by_shard : int array;
  writes_committed : int;
  writes_committed_by_shard : int array;
  faults_fired : int;
  per_shard_znodes : int array;
  live_stubs_at_stat : int;
  logical_znodes_at_stat : int;
  expected_logical_znodes : int;
  router_stats : Zk.Shard_router.stats;
}

let mdtest_sharded_faulted ?(dirs_per_proc = 60) ?(files_per_proc = 60)
    ?(max_batch = 1) ?(config_adjust = fun c -> c) ~spec ~shards ~procs ~plan () =
  let engine = Engine.create () in
  let config =
    config_adjust (zk_config ~max_batch ~servers:spec.zk_servers ~procs ())
  in
  let router, ops_for_proc, _ =
    build_dufs_sharded engine ~spec ~config ~shards ~cached:false
  in
  let armed =
    Faults.Faultplan.arm_shards engine (Zk.Shard_router.ensembles router) plan
  in
  let cfg = Mdtest.Workload.config ~dirs_per_proc ~files_per_proc ~procs () in
  let per_shard_znodes = ref [||] and live_stubs_at_stat = ref 0 in
  let on_phase phase =
    if phase = Mdtest.Runner.File_stat then begin
      per_shard_znodes := Zk.Shard_router.node_counts router;
      live_stubs_at_stat :=
        Zk.Shard_router.live_stubs (Zk.Shard_router.stats router)
    end;
    Faults.Faultplan.notify_phase armed (Mdtest.Runner.phase_to_string phase)
  in
  let results = Mdtest.Runner.run ~on_phase engine cfg ~ops_for_proc in
  { results;
    dedup_hits = Zk.Shard_router.dedup_hits router;
    dedup_hits_by_shard = Zk.Shard_router.dedup_hits_by_shard router;
    writes_committed = Zk.Shard_router.writes_committed router;
    writes_committed_by_shard = Zk.Shard_router.writes_committed_by_shard router;
    faults_fired = Faults.Faultplan.fired armed;
    per_shard_znodes = !per_shard_znodes;
    live_stubs_at_stat = !live_stubs_at_stat;
    logical_znodes_at_stat =
      Array.fold_left (fun acc n -> acc + (n - 1)) 0 !per_shard_znodes
      - !live_stubs_at_stat;
    expected_logical_znodes = expected_logical_znodes cfg ~procs ~files_per_proc;
    router_stats = Zk.Shard_router.stats router }

(* {2 Live resharding under mdtest (elastic split / merge)}

   The controller fires at the file-create barrier, so the split runs
   while every process is writing: routed ops to migrating keys park at
   the router and resume against the new owner after the flip. A slice
   of the client sessions records through {!Zk.History}, so the flip
   itself is subject to the linearizability oracle. The census is still
   sampled at the file-stat barrier — proc 0 waits there for the
   controller to finish first, so the exactness invariant sees the
   post-split tree. *)

type reshard_run = {
  results : Mdtest.Runner.results;
  router : Zk.Shard_router.t;
  reshard : Zk.Reshard.stats option;  (* [None] on the no-split baseline *)
  reshard_window : float;             (* sim-seconds, controller start -> done *)
  history_recorded : int;
  history_checked : int;
  violations : Zk.History.violation list;
  per_shard_znodes : int array;
  live_stubs_at_stat : int;
  logical_znodes_at_stat : int;
  expected_logical_znodes : int;
}

let mdtest_reshard ?(dirs_per_proc = 60) ?(files_per_proc = 60) ?(max_batch = 1)
    ?(history_clients = 8) ~spec ~shards ~to_shards ~procs () =
  let engine = Engine.create () in
  let config = zk_config ~max_batch ~servers:spec.zk_servers ~procs () in
  let router = Zk.Shard_router.start engine ~shards config in
  let backend_clients, _ = build_backends engine ~spec in
  let hist = Zk.History.create engine in
  let next_client = ref 0 in
  (* one session per process (dufs_ops_for_proc calls this once per
     proc); the first [history_clients] of them record *)
  let session_of () =
    let s = Zk.Shard_router.session router () in
    let id = !next_client in
    incr next_client;
    if id < history_clients then Zk.History.wrap hist ~client:id s else s
  in
  let ops_for_proc =
    dufs_ops_for_proc ~trace:Obs.Trace.null engine ~session_of ~backend_clients
      ~cached:false
  in
  let cfg = Mdtest.Workload.config ~dirs_per_proc ~files_per_proc ~procs () in
  let reshard_done = ref (to_shards = shards) in
  let reshard_stats = ref None in
  let t0 = ref 0. and t1 = ref 0. in
  let per_shard_znodes = ref [||] and live_stubs_at_stat = ref 0 in
  let on_phase phase =
    (match phase with
     | Mdtest.Runner.File_create when to_shards <> shards ->
       Process.spawn engine (fun () ->
           t0 := Engine.now engine;
           let st =
             if to_shards > shards then Zk.Reshard.split router ~to_shards ()
             else Zk.Reshard.merge router ~to_shards ()
           in
           t1 := Engine.now engine;
           reshard_stats := Some st;
           reshard_done := true)
     | _ -> ());
    if phase = Mdtest.Runner.File_stat then begin
      while not !reshard_done do
        Process.sleep 0.005
      done;
      per_shard_znodes := Zk.Shard_router.node_counts router;
      live_stubs_at_stat :=
        Zk.Shard_router.live_stubs (Zk.Shard_router.stats router)
    end
  in
  let results = Mdtest.Runner.run ~on_phase engine cfg ~ops_for_proc in
  let violations = Zk.History.check hist in
  { results;
    router;
    reshard = !reshard_stats;
    reshard_window = !t1 -. !t0;
    history_recorded = Zk.History.recorded hist;
    history_checked = Zk.History.checked_ops hist;
    violations;
    per_shard_znodes = !per_shard_znodes;
    live_stubs_at_stat = !live_stubs_at_stat;
    logical_znodes_at_stat =
      Array.fold_left (fun acc n -> acc + (n - 1)) 0 !per_shard_znodes
      - !live_stubs_at_stat;
    expected_logical_znodes = expected_logical_znodes cfg ~procs ~files_per_proc }

(* {2 Chaos: randomized network-fault schedules with a linearizability
      oracle}

   Clients speak to the coordination layer directly (no PFS back-ends —
   the oracle checks the quorum, not the data path) through a
   {!Zk.History} recorder, while a seeded {!Faults.Faultplan.chaos}
   schedule partitions, drops, delays, duplicates and crashes
   underneath them. Register paths are one-per-directory so a sharded
   deployment spreads them across shards (children co-locate with
   their parent). After the closing heal a probe measures how long
   each shard takes to commit a write again; after the run the
   Wing–Gong checker searches the recorded history. *)

type chaos_run = {
  seed : int64;
  shards : int;
  recorded : int;
  checked : int;
  undetermined_ops : int;
  violations : Zk.History.violation list;
  digest : string;
  recovery_s : float;  (** heal → every probed shard committed; nan = never *)
  faults_fired : int;
  ops_ok : int;        (** client ops with a determined outcome *)
  ops_err : int;       (** transport-failed client ops (undetermined) *)
  dedup_hits : int;
  dedup_evictions : int;
  sessions_expired : int;
  writes_failed_fast : int;
  stale_reads_served : int;
  writes_committed : int;
}

let chaos_reg_dir k = Printf.sprintf "/d%d" k
let chaos_seq_dir = "/dseq"

let chaos_run ?(servers = 5) ?(shards = 1) ?(clients = 8) ?(registers = 6)
    ?(heal_at = 15.) ?(post_heal = 10.) ?(events = 12) ?(think = 0.05)
    ?(unsafe_no_dedup = false) ?(config_adjust = fun c -> c) ?plan ~seed () =
  let engine = Engine.create () in
  let config =
    config_adjust
      { (zk_config ~servers ~procs:clients ()) with
        Zk.Ensemble.seed;
        request_timeout = 0.5;
        retry_backoff = 0.05;
        retry_backoff_cap = 1.0;
        session_timeout = 6.0;
        stale_read_after = 1.0;
        serve_stale_reads = true;
        fail_fast_after = 2.0;
        unsafe_no_dedup }
  in
  let router = Zk.Shard_router.start engine ~shards config in
  let hist = Zk.History.create engine in
  let plan =
    match plan with
    | Some p -> p
    | None ->
      Faults.Faultplan.chaos ~seed:(Int64.add seed 101L) ~servers ~shards
        ~start:1.0 ~heal_at ~events ()
  in
  let armed =
    Faults.Faultplan.arm_shards engine (Zk.Shard_router.ensembles router) plan
  in
  let stop = heal_at +. post_heal in
  let ops_ok = ref 0 and ops_err = ref 0 in
  (* Setup: the register directories, so each register's children land
     on that directory's shard. Runs before the chaos window opens. *)
  Process.spawn engine (fun () ->
      let s = Zk.Shard_router.session router () in
      let mk p =
        match s.Zk.Zk_client.create p ~data:"" with
        | Ok _ -> ()
        | Error e -> failwith ("chaos setup " ^ p ^ ": " ^ Zk.Zerror.to_string e)
      in
      for k = 0 to registers - 1 do
        mk (chaos_reg_dir k)
      done;
      mk chaos_seq_dir);
  for i = 0 to clients - 1 do
    let rng =
      Simkit.Rng.create ~seed:(Int64.add seed (Int64.of_int ((i + 1) * 7919)))
    in
    Process.spawn engine (fun () ->
        let h =
          ref (Zk.History.wrap hist ~client:i (Zk.Shard_router.session router ()))
        in
        let n = ref 0 in
        let fresh_data () =
          incr n;
          Printf.sprintf "%d.%d" i !n
        in
        (* let the setup commits land before the first register op *)
        Process.sleep (0.2 +. Simkit.Rng.exponential rng ~mean:think);
        while Engine.now engine < stop do
          let reg =
            chaos_reg_dir (Simkit.Rng.int rng registers) ^ "/r"
          in
          let outcome =
            match Simkit.Rng.int rng 100 with
            | x when x < 25 ->
              Result.map ignore ((!h).Zk.Zk_client.create reg ~data:(fresh_data ()))
            | x when x < 45 -> (!h).Zk.Zk_client.set reg ~data:(fresh_data ())
            | x when x < 60 -> (!h).Zk.Zk_client.delete reg
            | x when x < 80 -> Result.map ignore ((!h).Zk.Zk_client.get reg)
            | x when x < 90 -> Result.map ignore ((!h).Zk.Zk_client.exists reg)
            | _ ->
              Result.map ignore
                ((!h).Zk.Zk_client.create ~sequential:true
                   (chaos_seq_dir ^ "/s-") ~data:(fresh_data ()))
          in
          (match outcome with
           | Ok () -> incr ops_ok
           | Error
               (Zk.Zerror.ZNONODE | Zk.Zerror.ZNODEEXISTS | Zk.Zerror.ZNOTEMPTY
               | Zk.Zerror.ZBADVERSION) ->
             (* semantic outcome of racing clients: the service answered *)
             incr ops_ok
           | Error Zk.Zerror.ZSESSIONEXPIRED ->
             incr ops_err;
             h :=
               Zk.History.wrap hist ~client:i (Zk.Shard_router.session router ());
             Process.sleep (Simkit.Rng.exponential rng ~mean:0.2)
           | Error _ ->
             incr ops_err;
             Process.sleep (Simkit.Rng.exponential rng ~mean:0.3));
          Process.sleep (Simkit.Rng.exponential rng ~mean:think)
        done;
        (!h).Zk.Zk_client.close ())
  done;
  (* Recovery probe: one representative register directory per shard;
     recovery is the time from heal until every one of them has
     committed a fresh write. *)
  let recovery = ref Float.nan in
  Engine.schedule engine ~delay:heal_at (fun () ->
      Process.spawn engine (fun () ->
          let by_shard = Hashtbl.create 8 in
          for k = registers - 1 downto 0 do
            let dir = chaos_reg_dir k in
            Hashtbl.replace by_shard
              (Zk.Shard_router.home_shard router (dir ^ "/r"))
              dir
          done;
          let dirs =
            List.sort compare
              (Hashtbl.fold (fun _ dir acc -> dir :: acc) by_shard [])
          in
          let s = ref (Zk.Shard_router.session router ()) in
          let n = ref 0 in
          List.iter
            (fun dir ->
              let rec attempt () =
                incr n;
                let path = Printf.sprintf "%s/probe%d" dir !n in
                match (!s).Zk.Zk_client.create path ~data:"" with
                | Ok _ -> ()
                | Error Zk.Zerror.ZSESSIONEXPIRED ->
                  s := Zk.Shard_router.session router ();
                  Process.sleep 0.05;
                  attempt ()
                | Error _ ->
                  Process.sleep 0.05;
                  attempt ()
              in
              attempt ())
            dirs;
          recovery := Engine.now engine -. heal_at));
  Engine.run engine;
  let violations = Zk.History.check ~max_states:2_000_000 hist in
  let sum f =
    Array.fold_left
      (fun acc e -> acc + f e)
      0
      (Zk.Shard_router.ensembles router)
  in
  { seed;
    shards;
    recorded = Zk.History.recorded hist;
    checked = Zk.History.checked_ops hist;
    undetermined_ops = Zk.History.undetermined hist;
    violations;
    digest = Zk.History.digest hist;
    recovery_s = !recovery;
    faults_fired = Faults.Faultplan.fired armed;
    ops_ok = !ops_ok;
    ops_err = !ops_err;
    dedup_hits = sum Zk.Ensemble.dedup_hits;
    dedup_evictions = sum Zk.Ensemble.dedup_evictions;
    sessions_expired = sum Zk.Ensemble.sessions_expired;
    writes_failed_fast = sum Zk.Ensemble.writes_failed_fast;
    stale_reads_served = sum Zk.Ensemble.stale_reads_served;
    writes_committed = sum Zk.Ensemble.writes_committed }

(* {2 Durability: power-failure and storage-corruption schedules with a
      durability oracle}

   A 64-proc mdtest runs over the full DUFS stack while the fault plan
   power-fails the whole coordination ensemble (optionally tearing,
   bit-rotting or snapshot-corrupting one member's disk during the
   outage). Alongside the mdtest load, a few register clients issue
   {e unconditioned} writes with unique data values through a
   {!Zk.History} recorder — mdtest's own rmdir is version-conditioned
   and therefore outside the recorded-register model, so the audit runs
   over the overlay registers the oracle can actually reason about.
   After the run (engine fully drained: every restart has recovered and
   re-elected), a probe write confirms the service is live again, the
   Wing–Gong checker validates the recorded history, and the durability
   oracle compares the leader's recovered tree against it: acked writes
   must have survived the power failure, unacked ones may be lost but
   must not resurrect inconsistently. *)

type durability_run = {
  d_seed : int64;
  d_label : string;
  d_results : Mdtest.Runner.results;
  d_mdtest_errors : int;
  d_recorded : int;
  d_checked : int;
  d_undetermined : int;
  d_audited : int;
  d_violations : Zk.History.violation list;   (* linearizability *)
  d_durability_violations : Zk.History.violation list;
  d_digest : string;
  d_recovered : bool;      (* post-outage probe write committed *)
  d_trees_agree : bool;    (* all live replicas fingerprint-equal *)
  d_faults_fired : int;
  d_reg_ok : int;
  d_reg_err : int;
  d_wal_appended : int;
  d_wal_replayed : int;
  d_wal_truncated : int;
  d_wal_tail_dropped : int;
  d_snap_loads : int;
  d_snap_fallbacks : int;
  d_recoveries : int;
  d_recovery_time_total : float;
  d_recovery_time_max : float;
  d_wal_tail_commits : int;
  d_transfer_diff_txns : int;
  d_transfer_snaps : int;
}

let dur_reg_dir k = Printf.sprintf "/dur%d" k

let durability_run ?(servers = 5) ?(procs = 64) ?(reg_clients = 8)
    ?(registers = 8) ?(ops_per_client = 50) ?(dirs_per_proc = 12)
    ?(files_per_proc = 12) ?(think = 0.02) ~plan ~label ~seed () =
  let engine = Engine.create () in
  let spec = { zk_servers = servers; backends = 4; backend_kind = Lustre } in
  let config =
    { (zk_config ~servers ~procs ()) with
      Zk.Ensemble.seed;
      request_timeout = 0.5;
      retry_backoff = 0.05;
      retry_backoff_cap = 1.0;
      session_timeout = 8.0;
      fail_fast_after = 2.0;
      (* low cadence so schedules cross several snapshots: corrupt-snap
         has something to corrupt and log pruning actually happens *)
      snapshot_every = 384 }
  in
  let ensemble, ops_for_proc, _stations =
    build_dufs engine ~spec ~config ~cached:false
  in
  let hist = Zk.History.create engine in
  let armed = Faults.Faultplan.arm engine ensemble plan in
  let reg_ok = ref 0 and reg_err = ref 0 in
  (* Register directories, committed before any client op or fault. *)
  Process.spawn engine (fun () ->
      let s = Zk.Ensemble.session ensemble () in
      for k = 0 to registers - 1 do
        match s.Zk.Zk_client.create (dur_reg_dir k) ~data:"" with
        | Ok _ -> ()
        | Error e ->
          failwith ("durability setup " ^ dur_reg_dir k ^ ": "
                    ^ Zk.Zerror.to_string e)
      done);
  for i = 0 to reg_clients - 1 do
    let rng =
      Simkit.Rng.create ~seed:(Int64.add seed (Int64.of_int ((i + 1) * 6007)))
    in
    Process.spawn engine (fun () ->
        let h =
          ref (Zk.History.wrap hist ~client:i (Zk.Ensemble.session ensemble ()))
        in
        let n = ref 0 in
        let fresh_data () =
          incr n;
          Printf.sprintf "%d.%d" i !n
        in
        Process.sleep (0.2 +. Simkit.Rng.exponential rng ~mean:think);
        for _op = 1 to ops_per_client do
          let reg = dur_reg_dir (Simkit.Rng.int rng registers) ^ "/r" in
          let outcome =
            match Simkit.Rng.int rng 100 with
            | x when x < 40 ->
              Result.map ignore
                ((!h).Zk.Zk_client.create reg ~data:(fresh_data ()))
            | x when x < 70 -> (!h).Zk.Zk_client.set reg ~data:(fresh_data ())
            | x when x < 85 -> (!h).Zk.Zk_client.delete reg
            | _ -> Result.map ignore ((!h).Zk.Zk_client.get reg)
          in
          (match outcome with
           | Ok () -> incr reg_ok
           | Error (Zk.Zerror.ZNONODE | Zk.Zerror.ZNODEEXISTS) -> incr reg_ok
           | Error Zk.Zerror.ZSESSIONEXPIRED ->
             incr reg_err;
             h :=
               Zk.History.wrap hist ~client:i (Zk.Ensemble.session ensemble ());
             Process.sleep (Simkit.Rng.exponential rng ~mean:0.2)
           | Error _ ->
             incr reg_err;
             Process.sleep (Simkit.Rng.exponential rng ~mean:0.3));
          Process.sleep (Simkit.Rng.exponential rng ~mean:think)
        done;
        (!h).Zk.Zk_client.close ())
  done;
  let cfg = Mdtest.Workload.config ~dirs_per_proc ~files_per_proc ~procs () in
  let results =
    Mdtest.Runner.run
      ~on_phase:(fun p ->
        Faults.Faultplan.notify_phase armed (Mdtest.Runner.phase_to_string p))
      engine cfg ~ops_for_proc
  in
  (* The run drained with every restart recovered; prove the service is
     actually live again by committing one more write. *)
  let recovered = ref false in
  Process.spawn engine (fun () ->
      let s = ref (Zk.Ensemble.session ensemble ()) in
      let attempts = ref 0 in
      let rec go () =
        incr attempts;
        if !attempts <= 200 then
          match
            (!s).Zk.Zk_client.create
              (Printf.sprintf "/dur-probe%d" !attempts) ~data:""
          with
          | Ok _ -> recovered := true
          | Error Zk.Zerror.ZSESSIONEXPIRED ->
            s := Zk.Ensemble.session ensemble ();
            Process.sleep 0.05;
            go ()
          | Error _ ->
            Process.sleep 0.05;
            go ()
      in
      go ());
  Engine.run engine;
  let violations = Zk.History.check ~max_states:2_000_000 hist in
  let lookup path =
    match Zk.Ensemble.leader_id ensemble with
    | None -> None
    | Some id -> (
      match Zk.Ztree.get (Zk.Ensemble.tree_of ensemble id) path with
      | Ok (data, _) -> Some data
      | Error _ -> None)
  in
  let durability_violations = Zk.History.durability_audit hist ~lookup in
  let trees_agree =
    match Zk.Ensemble.alive_ids ensemble with
    | [] -> false
    | id0 :: rest ->
      let f0 = Zk.Ztree.fingerprint (Zk.Ensemble.tree_of ensemble id0) in
      List.for_all
        (fun id -> Zk.Ztree.fingerprint (Zk.Ensemble.tree_of ensemble id) = f0)
        rest
  in
  { d_seed = seed;
    d_label = label;
    d_results = results;
    d_mdtest_errors = results.Mdtest.Runner.errors;
    d_recorded = Zk.History.recorded hist;
    d_checked = Zk.History.checked_ops hist;
    d_undetermined = Zk.History.undetermined hist;
    d_audited = Zk.History.audited_paths hist;
    d_violations = violations;
    d_durability_violations = durability_violations;
    d_digest = Zk.History.digest hist;
    d_recovered = !recovered;
    d_trees_agree = trees_agree;
    d_faults_fired = Faults.Faultplan.fired armed;
    d_reg_ok = !reg_ok;
    d_reg_err = !reg_err;
    d_wal_appended = Zk.Ensemble.wal_appended ensemble;
    d_wal_replayed = Zk.Ensemble.wal_replayed ensemble;
    d_wal_truncated = Zk.Ensemble.wal_truncated ensemble;
    d_wal_tail_dropped = Zk.Ensemble.wal_tail_dropped ensemble;
    d_snap_loads = Zk.Ensemble.snap_loads ensemble;
    d_snap_fallbacks = Zk.Ensemble.snap_fallbacks ensemble;
    d_recoveries = Zk.Ensemble.recoveries ensemble;
    d_recovery_time_total = Zk.Ensemble.recovery_time_total ensemble;
    d_recovery_time_max = Zk.Ensemble.recovery_time_max ensemble;
    d_wal_tail_commits = Zk.Ensemble.wal_tail_commits ensemble;
    d_transfer_diff_txns = Zk.Ensemble.transfer_diff_txns ensemble;
    d_transfer_snaps = Zk.Ensemble.transfer_snaps ensemble }

let zk_raw ~servers ~procs ?(items = 80) () =
  let engine = Engine.create () in
  let ensemble = Zk.Ensemble.start engine (zk_config ~servers ~procs ()) in
  let sessions = Array.init procs (fun _ -> Zk.Ensemble.session ensemble ()) in
  (* setup: a parent node for all items *)
  Process.spawn engine (fun () ->
      match sessions.(0).Zk.Zk_client.create "/f7" ~data:"" with
      | Ok _ -> ()
      | Error e -> failwith (Zk.Zerror.to_string e));
  Engine.run engine;
  let path ~proc ~item = Printf.sprintf "/f7/n%d_%d" proc item in
  let must label = function
    | Ok _ -> ()
    | Error e -> failwith (label ^ ": " ^ Zk.Zerror.to_string e)
  in
  let create_rate =
    Mdtest.Runner.closed_loop engine ~procs ~items (fun ~proc ~item ->
        must "create" (sessions.(proc).Zk.Zk_client.create (path ~proc ~item) ~data:"x"))
  in
  let get_rate =
    Mdtest.Runner.closed_loop engine ~procs ~items (fun ~proc ~item ->
        must "get" (sessions.(proc).Zk.Zk_client.get (path ~proc ~item)))
  in
  let set_rate =
    Mdtest.Runner.closed_loop engine ~procs ~items (fun ~proc ~item ->
        must "set" (sessions.(proc).Zk.Zk_client.set (path ~proc ~item) ~data:"y"))
  in
  let delete_rate =
    Mdtest.Runner.closed_loop engine ~procs ~items (fun ~proc ~item ->
        must "delete" (sessions.(proc).Zk.Zk_client.delete (path ~proc ~item)))
  in
  [ ("zoo_create", create_rate);
    ("zoo_get", get_rate);
    ("zoo_set", set_rate);
    ("zoo_delete", delete_rate) ]
