module Report = Mdtest.Report
module Runner = Mdtest.Runner
module Engine = Simkit.Engine
module Process = Simkit.Process

let default_procs = [ 16; 64; 128; 256 ]
let bar_procs = [ 64; 128; 256 ]

(* {2 Fig. 7} *)

let fig7_servers = [ 1; 4; 8 ]

let fig7_data ?(procs_list = default_procs) () =
  let runs =
    List.map
      (fun servers ->
        ( servers,
          List.map (fun procs -> (procs, Systems.zk_raw ~servers ~procs ())) procs_list ))
      fig7_servers
  in
  List.map
    (fun op ->
      ( op,
        List.map
          (fun (servers, by_procs) ->
            ( servers,
              List.map (fun (procs, rates) -> (procs, List.assoc op rates)) by_procs ))
          runs ))
    [ "zoo_create"; "zoo_delete"; "zoo_set"; "zoo_get" ]

let fig7 ?procs_list () =
  let data = fig7_data ?procs_list () in
  List.iter
    (fun (op, by_servers) ->
      let series =
        List.map
          (fun (servers, points) ->
            { Report.label = Printf.sprintf "%d zk server%s" servers
                  (if servers > 1 then "s" else "");
              points })
          by_servers
      in
      Report.print_figure
        ~title:(Printf.sprintf "Fig. 7 — ZooKeeper %s() throughput" op)
        ~x_label:"procs" series)
    data

(* {2 Fig. 8} *)

let phase_series_label phase = Runner.phase_to_string phase

let fig8 () =
  let zk_counts = [ 1; 4; 8 ] in
  List.iter
    (fun phase ->
      let lustre_series =
        { Report.label = "Basic Lustre";
          points =
            List.map
              (fun procs ->
                (procs, Runner.rate (Systems.mdtest Systems.Basic_lustre ~procs ()) phase))
              bar_procs }
      in
      let dufs_series =
        List.map
          (fun zk_servers ->
            { Report.label = Printf.sprintf "%d Zookeeper" zk_servers;
              points =
                List.map
                  (fun procs ->
                    ( procs,
                      Runner.rate
                        (Systems.mdtest
                           (Systems.Dufs
                              { zk_servers; backends = 2; backend_kind = Systems.Lustre })
                           ~procs ())
                        phase ))
                  bar_procs })
          zk_counts
      in
      Report.print_figure
        ~title:
          (Printf.sprintf "Fig. 8 — %s vs number of ZooKeeper servers (2 Lustre backends)"
             (phase_series_label phase))
        ~x_label:"procs"
        (lustre_series :: dufs_series))
    Runner.all_phases

(* {2 Fig. 9} *)

let fig9 () =
  let file_phases = [ Runner.File_create; Runner.File_remove; Runner.File_stat ] in
  List.iter
    (fun phase ->
      let series =
        { Report.label = "Basic Lustre";
          points =
            List.map
              (fun procs ->
                (procs, Runner.rate (Systems.mdtest Systems.Basic_lustre ~procs ()) phase))
              bar_procs }
        :: List.map
             (fun backends ->
               { Report.label = Printf.sprintf "DUFS %d Lustre backends" backends;
                 points =
                   List.map
                     (fun procs ->
                       ( procs,
                         Runner.rate
                           (Systems.mdtest
                              (Systems.Dufs
                                 { zk_servers = 8; backends;
                                   backend_kind = Systems.Lustre })
                              ~procs ())
                           phase ))
                     bar_procs })
             [ 2; 4 ]
      in
      Report.print_figure
        ~title:
          (Printf.sprintf "Fig. 9 — %s vs number of backend storages"
             (phase_series_label phase))
        ~x_label:"procs" series)
    file_phases

(* {2 Fig. 10} *)

let fig10_systems =
  [ Systems.Basic_lustre;
    Systems.Dufs { zk_servers = 8; backends = 2; backend_kind = Systems.Lustre };
    Systems.Basic_pvfs;
    Systems.Dufs { zk_servers = 8; backends = 2; backend_kind = Systems.Pvfs } ]

let fig10 () =
  List.iter
    (fun phase ->
      let series =
        List.map
          (fun system ->
            { Report.label = Systems.system_label system;
              points =
                List.map
                  (fun procs ->
                    (procs, Runner.rate (Systems.mdtest system ~procs ()) phase))
                  default_procs })
          fig10_systems
      in
      Report.print_figure
        ~title:
          (Printf.sprintf "Fig. 10 — %s: DUFS vs Lustre and PVFS2"
             (phase_series_label phase))
        ~x_label:"procs" series)
    Runner.all_phases

(* {2 Headline ratios (§V-D)} *)

type headline = {
  dir_create_vs_lustre : float;
  dir_create_vs_pvfs : float;
  file_stat_vs_lustre : float;
  file_stat_vs_pvfs : float;
}

let headline_data ?(procs = 256) () =
  let rate system phase = Runner.rate (Systems.mdtest system ~procs ()) phase in
  let dufs_lustre =
    Systems.Dufs { zk_servers = 8; backends = 2; backend_kind = Systems.Lustre }
  in
  let dufs_pvfs =
    Systems.Dufs { zk_servers = 8; backends = 2; backend_kind = Systems.Pvfs }
  in
  { dir_create_vs_lustre =
      rate dufs_lustre Runner.Dir_create /. rate Systems.Basic_lustre Runner.Dir_create;
    dir_create_vs_pvfs =
      rate dufs_pvfs Runner.Dir_create /. rate Systems.Basic_pvfs Runner.Dir_create;
    file_stat_vs_lustre =
      rate dufs_lustre Runner.File_stat /. rate Systems.Basic_lustre Runner.File_stat;
    file_stat_vs_pvfs =
      rate dufs_pvfs Runner.File_stat /. rate Systems.Basic_pvfs Runner.File_stat }

let headline () =
  let h = headline_data () in
  Report.print_header "§V-D headline ratios at 256 client processes (paper in parens)";
  Report.print_ratio ~label:"directory create: DUFS(2xLustre) / Basic Lustre  (1.9)"
    h.dir_create_vs_lustre;
  Report.print_ratio ~label:"directory create: DUFS(2xPVFS) / Basic PVFS      (23)"
    h.dir_create_vs_pvfs;
  Report.print_ratio ~label:"file stat:        DUFS(2xLustre) / Basic Lustre  (1.3)"
    h.file_stat_vs_lustre;
  Report.print_ratio ~label:"file stat:        DUFS(2xPVFS) / Basic PVFS      (3.0)"
    h.file_stat_vs_pvfs

(* {2 Fig. 11 — memory usage} *)

let fig11_data ?(millions = [ 0.5; 1.0; 1.5; 2.0; 2.5 ]) () =
  let zk = Zk.Zk_local.create () in
  let session = Zk.Zk_local.session zk in
  (match session.Zk.Zk_client.create "/m" ~data:"" with
   | Ok _ -> ()
   | Error e -> failwith (Zk.Zerror.to_string e));
  let backend = Fuselike.Memfs.create ~clock:(fun () -> 0.) () in
  let backend_ops = Fuselike.Memfs.ops backend in
  (match Dufs.Physical.format Dufs.Physical.default_layout backend_ops with
   | Ok () -> ()
   | Error e -> failwith (Fuselike.Errno.to_string e));
  let dufs =
    Dufs.Client.mount ~coord:(Zk.Zk_local.session zk) ~backends:[| backend_ops |] ()
  in
  let passthrough = Fuselike.Passthrough.create backend_ops in
  let dir_meta = Dufs.Meta.encode (Dufs.Meta.dir ~mode:0o755 ~ctime:0.) in
  let created = ref 0 in
  let mib = Zk.Memory_model.to_mib in
  List.map
    (fun m ->
      let target = int_of_float (m *. 1e6) in
      while !created < target do
        (match
           session.Zk.Zk_client.create
             (Printf.sprintf "/m/d%08d" !created)
             ~data:dir_meta
         with
        | Ok _ -> ()
        | Error e -> failwith (Zk.Zerror.to_string e));
        incr created
      done;
      ( m,
        mib (Zk.Zk_local.server_resident_bytes zk),
        mib (Dufs.Client.resident_bytes dufs),
        mib (Fuselike.Passthrough.resident_bytes passthrough) ))
    (List.sort compare millions)

let fig11 ?millions () =
  let rows = fig11_data ?millions () in
  Report.print_header "Fig. 11 — resident memory vs millions of directories created";
  Printf.printf "%-12s %14s %14s %14s   [MiB]\n" "dirs (M)" "Zookeeper" "DUFS"
    "Dummy FUSE";
  List.iter
    (fun (m, zk_mb, dufs_mb, fuse_mb) ->
      Printf.printf "%-12.1f %14.0f %14.1f %14.1f\n" m zk_mb dufs_mb fuse_mb)
    rows;
  flush stdout

(* {2 Ablation: mapping strategies} *)

let ablation_mapping () =
  Report.print_header
    "Ablation — MD5-mod-N vs consistent hashing (200k FIDs from 8 clients)";
  let fids =
    List.concat_map
      (fun client ->
        let gen = Dufs.Fid.Gen.create ~client_id:(Int64.of_int (client + 1)) in
        List.init 25_000 (fun _ -> Dufs.Fid.Gen.next gen))
      (List.init 8 Fun.id)
  in
  Printf.printf "%-28s %12s %12s %18s\n" "strategy" "N" "imbalance"
    "relocated N->N+1";
  List.iter
    (fun n ->
      let md5_imbalance =
        Dufs.Mapping.imbalance (Dufs.Mapping.md5_mod ~backends:n) ~backends:n fids
      in
      let md5_moved =
        let before = Dufs.Mapping.md5_mod ~backends:n in
        let after = Dufs.Mapping.md5_mod ~backends:(n + 1) in
        let moved = List.filter (fun fid -> before fid <> after fid) fids in
        float_of_int (List.length moved) /. float_of_int (List.length fids)
      in
      let ring = Dufs.Consistent_hash.create (List.init n Fun.id) in
      let ring' = Dufs.Consistent_hash.add_node ring n in
      let ch_imbalance =
        Dufs.Mapping.imbalance
          (fun fid -> Dufs.Consistent_hash.lookup ring (Dufs.Fid.to_bytes fid))
          ~backends:n fids
      in
      let ch_moved =
        Dufs.Consistent_hash.relocated ~before:ring ~after:ring'
          (List.map Dufs.Fid.to_bytes fids)
      in
      Printf.printf "%-28s %12d %12.3f %17.1f%%\n" "MD5 mod N (paper)" n md5_imbalance
        (100. *. md5_moved);
      Printf.printf "%-28s %12d %12.3f %17.1f%%\n" "consistent hashing (§VII)" n
        ch_imbalance (100. *. ch_moved))
    [ 2; 4; 8 ];
  flush stdout

(* {2 Ablation: DUFS vs hypothetical Lustre Clustered MDS (§VI)} *)

let ablation_cmd () =
  Report.print_header
    "Ablation — DUFS vs Lustre Clustered MDS (CMD): global-lock cost of \
     cross-server updates";
  let systems =
    [ Systems.Basic_lustre;
      Systems.Lustre_cmd 2;
      Systems.Lustre_cmd 4;
      Systems.Dufs { zk_servers = 8; backends = 2; backend_kind = Systems.Lustre } ]
  in
  List.iter
    (fun phase ->
      let series =
        List.map
          (fun system ->
            { Report.label = Systems.system_label system;
              points =
                List.map
                  (fun procs ->
                    (procs, Runner.rate (Systems.mdtest system ~procs ()) phase))
                  bar_procs })
          systems
      in
      Report.print_figure
        ~title:
          (Printf.sprintf "ablation-cmd — %s" (phase_series_label phase))
        ~x_label:"procs" series)
    [ Runner.Dir_create; Runner.Dir_stat ];
  print_endline
    "  (CMD shards lookups nicely, but ~1/2 of 2-MDS mutations and ~3/4 of\n\
    \   4-MDS mutations cross servers and serialize on the global lock —\n\
    \   the consistency cost §VI predicts; DUFS replaces that lock with\n\
    \   ZooKeeper's totally-ordered broadcast)";
  flush stdout

(* {2 Ablation: shared vs unique working directories (mdtest -u)} *)

let ablation_unique () =
  Report.print_header
    "Ablation — shared leaf dirs vs unique per-process dirs (mdtest -u), 256 procs";
  Printf.printf "%-22s %-10s %14s %14s\n" "system" "mode" "dir-create/s" "file-create/s";
  List.iter
    (fun (system, label) ->
      List.iter
        (fun unique ->
          let r = Systems.mdtest ~unique system ~procs:256 () in
          Printf.printf "%-22s %-10s %14.0f %14.0f\n" label
            (if unique then "unique" else "shared")
            (Runner.rate r Runner.Dir_create)
            (Runner.rate r Runner.File_create))
        [ false; true ])
    [ (Systems.Basic_lustre, "Basic Lustre");
      ( Systems.Dufs { zk_servers = 8; backends = 2; backend_kind = Systems.Lustre },
        "DUFS 2xLustre/8zk" ) ];
  print_endline
    "  (Lustre gains from -u because private directories end the DLM lock\n\
    \   ping-pong; DUFS is indifferent — znode creates take no directory lock)";
  flush stdout

(* {2 Ablation: observers — read capacity without quorum cost} *)

let observer_rates ~servers ~observers ~procs =
  let engine = Engine.create () in
  let ensemble =
    Zk.Ensemble.start engine
      { (Systems.zk_config ~servers ~procs ()) with Zk.Ensemble.observers }
  in
  let sessions = Array.init procs (fun _ -> Zk.Ensemble.session ensemble ()) in
  Process.spawn engine (fun () ->
      match sessions.(0).Zk.Zk_client.create "/obs" ~data:"" with
      | Ok _ -> ()
      | Error e -> failwith (Zk.Zerror.to_string e));
  Engine.run engine;
  let writes =
    Mdtest.Runner.closed_loop engine ~procs ~items:60 (fun ~proc ~item ->
        ignore
          (sessions.(proc).Zk.Zk_client.create
             (Printf.sprintf "/obs/w%d_%d" proc item)
             ~data:""))
  in
  let reads =
    Mdtest.Runner.closed_loop engine ~procs ~items:60 (fun ~proc ~item:_ ->
        ignore (sessions.(proc).Zk.Zk_client.get "/obs"))
  in
  (writes, reads)

let ablation_observers () =
  Report.print_header
    "Ablation — non-voting observers: read capacity without quorum cost (256 procs)";
  Printf.printf "%-28s %14s %14s\n" "ensemble" "creates/s" "gets/s";
  List.iter
    (fun (label, servers, observers) ->
      let writes, reads = observer_rates ~servers ~observers ~procs:256 in
      Printf.printf "%-28s %14.0f %14.0f\n" label writes reads)
    [ ("3 voters", 3, 0); ("7 voters", 7, 0); ("3 voters + 4 observers", 3, 4) ];
  print_endline
    "  (observers apply commits and serve reads but never vote: they buy\n\
    \   close to 7-server read capacity at close to 3-server write cost)";
  flush stdout

(* {2 Ablation: GIGA+-style directory indexing (§VI)} *)

(* All clients hammer ONE directory. Lustre serializes on its MDS + the
   directory's DLM lock; DUFS on the coordination service's write path;
   GIGA+ splits the directory over servers with no shared state. *)
let giga_single_dir_rate ~procs variant =
  let engine = Engine.create () in
  let items = 100 in
  match variant with
  | `Lustre ->
    let fs = Pfs.Lustre_sim.create engine () in
    Process.spawn engine (fun () ->
        match (Pfs.Lustre_sim.client fs ~client_id:0).Fuselike.Vfs.mkdir "/huge"
                ~mode:0o755
        with
        | Ok () -> ()
        | Error e -> failwith (Fuselike.Errno.to_string e));
    Engine.run engine;
    Mdtest.Runner.closed_loop engine ~procs ~items (fun ~proc ~item ->
        ignore
          ((Pfs.Lustre_sim.client fs ~client_id:proc).Fuselike.Vfs.create
             (Printf.sprintf "/huge/f%d_%d" proc item)
             ~mode:0o644))
  | `Dufs ->
    let ensemble = Zk.Ensemble.start engine (Systems.zk_config ~servers:8 ~procs ()) in
    let sessions = Array.init procs (fun _ -> Zk.Ensemble.session ensemble ()) in
    Process.spawn engine (fun () ->
        match sessions.(0).Zk.Zk_client.create "/huge" ~data:"" with
        | Ok _ -> ()
        | Error e -> failwith (Zk.Zerror.to_string e));
    Engine.run engine;
    Mdtest.Runner.closed_loop engine ~procs ~items (fun ~proc ~item ->
        ignore
          (sessions.(proc).Zk.Zk_client.create
             (Printf.sprintf "/huge/f%d_%d" proc item)
             ~data:""))
  | `Giga servers ->
    let t =
      Gigaplus.Giga.create engine
        ~config:
          { (Gigaplus.Giga.default_config ~servers) with
            Gigaplus.Giga.split_threshold = 400 }
        ()
    in
    (* warm past the early single-partition phase, untimed *)
    Process.spawn engine (fun () ->
        let c = Gigaplus.Giga.client t in
        for i = 0 to 7999 do
          ignore (Gigaplus.Giga.create_file c (Printf.sprintf "warm%05d" i))
        done);
    Engine.run engine;
    let clients = Array.init procs (fun _ -> Gigaplus.Giga.client t) in
    Mdtest.Runner.closed_loop engine ~procs ~items (fun ~proc ~item ->
        ignore
          (Gigaplus.Giga.create_file clients.(proc) (Printf.sprintf "f%d_%d" proc item)))

let ablation_giga () =
  Report.print_header
    "Ablation — creates in ONE huge directory: GIGA+ indexing vs DUFS vs Lustre";
  let variants =
    [ ("Basic Lustre (DLM lock)", `Lustre);
      ("DUFS 8zk", `Dufs);
      ("GIGA+ 4 servers", `Giga 4);
      ("GIGA+ 8 servers", `Giga 8) ]
  in
  Printf.printf "%-26s %14s %14s   [creates/s]\n" "system" "64 procs" "256 procs";
  List.iter
    (fun (label, variant) ->
      let r64 = giga_single_dir_rate ~procs:64 variant in
      let r256 = giga_single_dir_rate ~procs:256 variant in
      Printf.printf "%-26s %14.0f %14.0f\n" label r64 r256)
    variants;
  (* the price §VI points out: unreplicated partitions *)
  let engine = Engine.create () in
  let t =
    Gigaplus.Giga.create engine
      ~config:
        { (Gigaplus.Giga.default_config ~servers:8) with
          Gigaplus.Giga.split_threshold = 200 }
      ()
  in
  Process.spawn engine (fun () ->
      let c = Gigaplus.Giga.client t in
      for i = 0 to 9999 do
        ignore (Gigaplus.Giga.create_file c (Printf.sprintf "e%05d" i))
      done);
  Engine.run engine;
  Gigaplus.Giga.crash_server t 0;
  Printf.printf
    "availability after losing 1 of 8 GIGA+ servers: %.1f%% of the directory\n"
    (100. *. Gigaplus.Giga.available_fraction t);
  print_endline
    "  (GIGA+ out-scales both on pure insert rate — no shared state — but a\n\
    \   single server loss makes part of the namespace unreachable; DUFS keeps\n\
    \   100% availability while a quorum of coordination servers survives)";
  flush stdout

(* {2 Ablation: client-side metadata cache} *)

(* Hot-entry stat loop: every client re-stats the same few directories
   (polling / ls -l behaviour), first uncached then cached. *)
let cache_stat_rate ~procs ~cached =
  let engine = Engine.create () in
  let ensemble = Zk.Ensemble.start engine (Systems.zk_config ~servers:8 ~procs ()) in
  Process.spawn engine (fun () ->
      let s = Zk.Ensemble.session ensemble () in
      for i = 0 to 9 do
        match s.Zk.Zk_client.create (Printf.sprintf "/hot%d" i) ~data:"" with
        | Ok _ -> ()
        | Error e -> failwith (Zk.Zerror.to_string e)
      done);
  Engine.run engine;
  let sessions =
    Array.init procs (fun _ ->
        let s = Zk.Ensemble.session ensemble () in
        if cached then Dufs.Cache.handle (Dufs.Cache.wrap s) else s)
  in
  Mdtest.Runner.closed_loop engine ~procs ~items:300 (fun ~proc ~item ->
      ignore (sessions.(proc).Zk.Zk_client.get (Printf.sprintf "/hot%d" ((proc + item) mod 10))))

let ablation_cache () =
  Report.print_header
    "Ablation — client-side metadata cache with watch invalidation";
  (* part 1: mdtest is scan-once, so the cache must be neutral there *)
  let spec = { Systems.zk_servers = 8; backends = 2; backend_kind = Systems.Lustre } in
  let mdtest_row system phase =
    Runner.rate (Systems.mdtest system ~procs:256 ()) phase
  in
  Printf.printf "mdtest (each entry touched once per phase, 256 procs):\n";
  Printf.printf "  %-14s %14s %14s\n" "phase" "DUFS" "DUFS+cache";
  List.iter
    (fun phase ->
      Printf.printf "  %-14s %14.0f %14.0f\n" (phase_series_label phase)
        (mdtest_row (Systems.Dufs spec) phase)
        (mdtest_row (Systems.Dufs_cached spec) phase))
    [ Runner.Dir_stat; Runner.Dir_create ];
  print_endline
    "  (neutral, as expected: a scan-once workload has no re-references,\n\
    \   and watch piggybacking makes a cache miss cost exactly one visit)";
  (* part 2: re-reference workload — where client caching pays off *)
  Printf.printf "\nhot-entry stat loop (10 shared dirs re-stat'd 300x per client):\n";
  Printf.printf "  %-8s %16s %16s %10s\n" "procs" "uncached (op/s)" "cached (op/s)"
    "speedup";
  List.iter
    (fun procs ->
      let plain = cache_stat_rate ~procs ~cached:false in
      let cached = cache_stat_rate ~procs ~cached:true in
      Printf.printf "  %-8d %16.0f %16.0f %9.1fx\n" procs plain cached (cached /. plain))
    [ 64; 256 ];
  print_endline
    "  (hits are served locally; watches keep remote updates visible — the\n\
    \   consistency overhead §VI says usually forces client caching off is\n\
    \   carried by the coordination service instead)";
  flush stdout

(* {2 Ablation: synchronous vs pipelined (async) coordination API} *)

(* Closed loop where each client keeps [window] writes in flight using
   the zoo_amulti-style API; window = 1 is the paper's synchronous API. *)
let pipelined_create_rate ~servers ~clients ~per_client ~window =
  let engine = Engine.create () in
  let ensemble = Zk.Ensemble.start engine (Systems.zk_config ~servers ~procs:clients ()) in
  let finish_time = ref 0. in
  let remaining_clients = ref clients in
  for client = 0 to clients - 1 do
    let session = Zk.Ensemble.session ensemble () in
    let submitted = ref 0 and completed = ref 0 in
    let rec refill () =
      if !submitted < per_client then begin
        let i = !submitted in
        incr submitted;
        session.Zk.Zk_client.multi_async
          [ Zk.Zk_client.create_op (Printf.sprintf "/a%d_%d" client i) ~data:"" ]
          (fun _result ->
            incr completed;
            if !completed = per_client then begin
              decr remaining_clients;
              if !remaining_clients = 0 then finish_time := Engine.now engine
            end
            else refill ())
      end
    in
    for _ = 1 to window do
      refill ()
    done
  done;
  Engine.run engine;
  float_of_int (clients * per_client) /. !finish_time

let ablation_async () =
  Report.print_header
    "Ablation — synchronous API (paper §IV-D) vs pipelined async API, creates";
  Printf.printf "%-34s %10s %14s\n" "configuration" "window" "creates/s";
  List.iter
    (fun (clients, servers) ->
      List.iter
        (fun window ->
          let rate =
            pipelined_create_rate ~servers ~clients ~per_client:200 ~window
          in
          Printf.printf "%2d clients / %d zk servers %10d %14.0f\n" clients servers
            window rate)
        [ 1; 4; 16 ])
    [ (1, 8); (2, 8); (8, 8) ];
  print_endline
    "  (few synchronous clients cannot saturate the write pipeline —\n\
    \   async windows recover the throughput that §V needed 64+ processes\n\
    \   to reach)";
  flush stdout

(* {2 Ablation: ensemble fault injection} *)

let ablation_faults () =
  Report.print_header
    "Ablation — ensemble of 5 under leader crash, quorum loss and recovery";
  let engine = Engine.create () in
  let cfg =
    { (Zk.Ensemble.default_config ~servers:5) with
      Zk.Ensemble.election_timeout = 0.25;
      request_timeout = 0.4 }
  in
  let ensemble = Zk.Ensemble.start engine cfg in
  let horizon = 12.0 in
  let completed = ref 0 in
  let clients = 16 in
  for proc = 0 to clients - 1 do
    Process.spawn engine (fun () ->
        let session = Zk.Ensemble.session ensemble () in
        let i = ref 0 in
        while Engine.now engine < horizon do
          (match
             session.Zk.Zk_client.create
               (Printf.sprintf "/flt%d_%d" proc !i)
               ~data:""
           with
          | Ok _ -> incr completed
          | Error _ -> ());
          incr i
        done)
  done;
  (* fault schedule: crash leader @2s; crash follower @4s (still quorate);
     crash another @6s (quorum lost); restart two @8s *)
  let crash_at time id =
    Engine.schedule engine ~delay:time (fun () -> Zk.Ensemble.crash ensemble id)
  in
  let restart_at time id =
    Engine.schedule engine ~delay:time (fun () -> Zk.Ensemble.restart ensemble id)
  in
  crash_at 2.0 0;
  crash_at 4.0 1;
  crash_at 6.0 2;
  restart_at 8.0 1;
  restart_at 8.2 2;
  let window = 0.5 in
  let rows = ref [] in
  Process.spawn engine (fun () ->
      let prev = ref 0 in
      while Engine.now engine < horizon do
        Process.sleep window;
        let now_done = !completed in
        let rate = float_of_int (now_done - !prev) /. window in
        prev := now_done;
        rows :=
          ( Engine.now engine,
            rate,
            Zk.Ensemble.leader_id ensemble,
            List.length (Zk.Ensemble.alive_ids ensemble) )
          :: !rows
      done);
  Engine.run ~until:(horizon +. 1.) engine;
  Printf.printf "%-8s %12s %10s %8s\n" "t (s)" "creates/s" "leader" "alive";
  List.iter
    (fun (t, rate, leader, alive) ->
      Printf.printf "%-8.1f %12.0f %10s %8d\n" t rate
        (match leader with Some id -> string_of_int id | None -> "-")
        alive)
    (List.rev !rows);
  flush stdout

(* {2 ZAB group commit: batched vs unbatched metadata pipeline} *)

let batching_max_batch = 16

let batching_data () =
  let spec =
    { Systems.zk_servers = 8; backends = 2; backend_kind = Systems.Lustre }
  in
  let configs =
    [ ("max_batch=1", Systems.Dufs spec);
      (Printf.sprintf "max_batch=%d" batching_max_batch,
       Systems.Dufs_batched (spec, batching_max_batch)) ]
  in
  List.map
    (fun phase ->
      ( phase,
        List.map
          (fun (label, system) ->
            ( label,
              List.map
                (fun procs ->
                  (procs, Runner.rate (Systems.mdtest system ~procs ()) phase))
                bar_procs ))
          configs ))
    [ Runner.File_create; Runner.Dir_stat ]

let batching ?json_path () =
  let data = batching_data () in
  List.iter
    (fun (phase, by_config) ->
      Report.print_figure
        ~title:
          (Printf.sprintf "Group commit — mdtest %s, batched vs unbatched"
             (Runner.phase_to_string phase))
        ~x_label:"procs"
        (List.map (fun (label, points) -> { Report.label; points }) by_config))
    data;
  match json_path with
  | None -> ()
  | Some path ->
    let points =
      List.concat_map
        (fun (phase, by_config) ->
          List.concat_map
            (fun (config, points) ->
              List.map
                (fun (procs, rate) ->
                  Report.point
                    ~experiment:("mdtest-" ^ Runner.phase_to_string phase)
                    ~procs
                    ~config:(config ^ "|zk=8|backends=2xLustre")
                    ~ops_per_sec:rate ())
                points)
            by_config)
        data
    in
    Report.emit_json ~path points;
    Printf.printf "\nwrote %s (%d bench points)\n%!" path (List.length points)

(* {2 mdtest under declarative fault schedules (failure-path benchmark)} *)

let faults_spec = { Systems.zk_servers = 5; backends = 2; backend_kind = Systems.Lustre }
let faults_procs = 64

(* Two complementary failure shapes. The quorum-loss schedule holds the
   ensemble below quorum for longer than the client request timeout, so
   retries of still-pending writes must be answered by re-pointing the
   in-flight proposal (not by a second apply). The rolling schedule
   kills follower homes of committed writes, so retries are answered
   from the replicated dedup table. Offsets are virtual seconds after
   the named mdtest phase begins. *)
let fault_plans =
  [ ("leader-quorum-loss",
     "crash-leader@file-create+0.05;crash=1@file-create+0.1;\
      crash=2@file-create+0.15;restart-all@file-create+4.5");
    ("rolling-followers",
     "crash=1@dir-create+0.05;restart=1@dir-create+1.5;\
      crash=2@file-create+0.05;restart=2@file-create+1.5") ]

let faults_data () =
  let parse label text =
    match Faults.Faultplan.parse text with
    | Ok plan -> plan
    | Error msg -> failwith (Printf.sprintf "fault plan %s: %s" label msg)
  in
  let run label plan =
    (label, Systems.mdtest_faulted ~spec:faults_spec ~procs:faults_procs ~plan ())
  in
  run "fault-free" []
  :: List.map (fun (label, text) -> run label (parse label text)) fault_plans

let faults ?json_path () =
  Report.print_header
    (Printf.sprintf
       "Faults — mdtest %d procs over DUFS 2xLustre/5zk while the ensemble \
        crashes and recovers"
       faults_procs);
  List.iter
    (fun (label, text) -> Printf.printf "  %-20s %s\n" label text)
    fault_plans;
  print_newline ();
  let data = faults_data () in
  Printf.printf "%-14s" "ops/sec";
  List.iter (fun (label, _) -> Printf.printf " %20s" label) data;
  print_newline ();
  List.iter
    (fun phase ->
      Printf.printf "%-14s" (Runner.phase_to_string phase);
      List.iter
        (fun (_, (r : Systems.fault_run)) ->
          Printf.printf " %20.0f" (Runner.rate r.Systems.results phase))
        data;
      print_newline ())
    Runner.all_phases;
  print_newline ();
  List.iter
    (fun (label, (r : Systems.fault_run)) ->
      Printf.printf
        "%-20s errors=%d  dedup_hits=%d  faults_fired=%d  znodes@file-stat=%d \
         (expected %d%s)\n"
        label r.Systems.results.Runner.errors r.Systems.dedup_hits
        r.Systems.faults_fired r.Systems.znodes_after_create
        r.Systems.expected_znodes_after_create
        (if r.Systems.znodes_after_create = r.Systems.expected_znodes_after_create
         then ", exact"
         else ", MISMATCH"))
    data;
  flush stdout;
  match json_path with
  | None -> ()
  | Some path ->
    let points =
      List.concat_map
        (fun (label, (r : Systems.fault_run)) ->
          List.map
            (fun phase ->
              Report.point
                ~experiment:("mdtest-" ^ Runner.phase_to_string phase)
                ~procs:faults_procs
                ~config:(label ^ "|zk=5|backends=2xLustre")
                ~ops_per_sec:(Runner.rate r.Systems.results phase) ())
            Runner.all_phases)
        data
    in
    Report.emit_json ~path points;
    Printf.printf "\nwrote %s (%d bench points)\n%!" path (List.length points)

(* {2 Span-trace profile: where inside the stack does an op's time go?}

   One mdtest run per scale with the trace enabled end to end. The
   quorum phase durations are stamped on each write's wspan, so per op
   they sum to the measured op latency exactly — the coverage column is
   the honesty check, not a modelling assumption. *)

let profile_spec =
  { Systems.zk_servers = 8; backends = 2; backend_kind = Systems.Lustre }

let profile_config = "profile|zk=8|backends=2xLustre"
let zk_write_ops = [ "create"; "delete"; "set"; "multi" ]

(* Mean duration of each quorum phase of [op], with the op count and the
   exact total mean; [None] if no such op was traced. *)
let quorum_breakdown trace op =
  let base = "zk." ^ op in
  match Obs.Trace.span_mean trace (base ^ ".total") with
  | None -> None
  | Some total ->
    let phases =
      List.map
        (fun p ->
          ( p,
            Option.value ~default:0.
              (Obs.Trace.span_mean trace (base ^ "." ^ p)) ))
        Obs.Trace.phases
    in
    Some (Obs.Trace.span_count trace (base ^ ".total"), total, phases)

let summary_line label (s : Simkit.Stat.Summary.t) =
  match Simkit.Stat.Summary.max s with
  | None -> Printf.printf "  %-28s (no samples)\n" label
  | Some max ->
    Printf.printf "  %-28s count=%-7d mean=%.3g  max=%.3g\n" label
      (Simkit.Stat.Summary.count s)
      (Simkit.Stat.Summary.mean s)
      max

let profile ?(procs_list = [ 64; 128; 256 ]) ?json_path () =
  let runs =
    List.map
      (fun procs ->
        (procs, Systems.mdtest_profiled ~spec:profile_spec ~procs ()))
      procs_list
  in
  let coverage_failures = ref [] in
  List.iter
    (fun (procs, (r : Systems.profile_run)) ->
      let trace = r.Systems.trace in
      Report.print_header
        (Printf.sprintf
           "Profile — mdtest over DUFS 2xLustre/8zk, %d procs (span tracing on)"
           procs);
      Printf.printf "  %-12s %10s %8s %10s %10s %10s %10s %10s\n" "phase"
        "ops/sec" "samples" "mean_s" "p50_s" "p95_s" "p99_s" "max_s";
      List.iter
        (fun phase ->
          match Runner.latency_of r.Systems.results phase with
          | None -> ()
          | Some l ->
            Printf.printf
              "  %-12s %10.0f %8d %10.3g %10.3g %10.3g %10.3g %10.3g\n"
              (Runner.phase_to_string phase)
              (Runner.rate r.Systems.results phase)
              l.Runner.samples l.Runner.mean l.Runner.p50 l.Runner.p95
              l.Runner.p99 l.Runner.max)
        Runner.all_phases;
      Printf.printf "\n  quorum write phases (mean seconds per op):\n";
      Printf.printf "  %-8s %8s %10s" "op" "count" "total_s";
      List.iter (fun p -> Printf.printf " %10s" p) Obs.Trace.phases;
      Printf.printf " %10s %9s\n" "phase_sum" "coverage";
      List.iter
        (fun op ->
          match quorum_breakdown trace op with
          | None -> ()
          | Some (count, total, phases) ->
            let sum = List.fold_left (fun acc (_, m) -> acc +. m) 0. phases in
            let coverage = 100. *. sum /. total in
            Printf.printf "  %-8s %8d %10.3g" op count total;
            List.iter (fun (_, m) -> Printf.printf " %10.3g" m) phases;
            Printf.printf " %10.3g %8.2f%%\n" sum coverage;
            if Float.abs (sum -. total) > 0.05 *. total then
              coverage_failures :=
                Printf.sprintf "%d procs, zk.%s: phase sum %.6g vs total %.6g"
                  procs op sum total
                :: !coverage_failures)
        zk_write_ops;
      print_newline ();
      (match Obs.Trace.span_mean trace "zk.read.total" with
       | None -> ()
       | Some mean ->
         Printf.printf
           "  zk reads: count=%d  mean=%.3g  p99=%.3g\n"
           (Obs.Trace.span_count trace "zk.read.total")
           mean
           (Option.value ~default:0.
              (Obs.Trace.span_quantile trace "zk.read.total" 0.99)));
      let metrics = Obs.Trace.metrics trace in
      List.iter
        (fun name ->
          match Obs.Metrics.summary_opt metrics name with
          | Some s -> summary_line name s
          | None -> ())
        ([ "zk.leader.queue_depth"; "zk.leader.batch_size" ]
         (* sharded deployments tag per-shard instruments zk.shard<i>.*;
            list them too so the per-shard queue wait is visible in the
            same breakdown *)
         @ List.filter
             (fun n -> String.length n > 8 && String.sub n 0 8 = "zk.shard")
             (Obs.Metrics.names metrics));
      Array.iteri
        (fun i (wait, hold) ->
          summary_line (Printf.sprintf "backend[%d] MDS wait_s" i) wait;
          summary_line (Printf.sprintf "backend[%d] MDS hold_s" i) hold)
        r.Systems.backend_stations)
    runs;
  (match !coverage_failures with
   | [] ->
     Printf.printf
       "\n  check: quorum phase sums within 5%% of measured op latency — OK\n%!"
   | failures ->
     List.iter (Printf.printf "  COVERAGE FAIL: %s\n") (List.rev failures);
     failwith "profile: quorum phase sums diverge from measured op latency");
  match json_path with
  | None -> ()
  | Some path ->
    let points =
      List.concat_map
        (fun (procs, (r : Systems.profile_run)) ->
          let client_points =
            List.filter_map
              (fun phase ->
                match Runner.latency_of r.Systems.results phase with
                | None -> None
                | Some l ->
                  Some
                    (Report.point
                       ~experiment:("mdtest-" ^ Runner.phase_to_string phase)
                       ~procs ~config:profile_config
                       ~ops_per_sec:(Runner.rate r.Systems.results phase)
                       ~latency:(Report.latency_of_runner l) ()))
              Runner.all_phases
          in
          let trace = r.Systems.trace in
          let wall = r.Systems.results.Runner.wall in
          let breakdown_points =
            List.filter_map
              (fun op ->
                match quorum_breakdown trace op with
                | None -> None
                | Some (count, total, phases) ->
                  let base = "zk." ^ op in
                  let q p =
                    Option.value ~default:total
                      (Obs.Trace.span_quantile trace (base ^ ".total") p)
                  in
                  Some
                    (Report.point
                       ~experiment:("zk-" ^ op ^ "-breakdown")
                       ~procs ~config:profile_config
                       ~ops_per_sec:
                         (if wall > 0. then float_of_int count /. wall else 0.)
                       ~latency:
                         { Report.samples = count;
                           mean_s = total;
                           p50_s = q 0.5;
                           p95_s = q 0.95;
                           p99_s = q 0.99;
                           max_s =
                             Option.value ~default:total
                               (Obs.Trace.span_max trace (base ^ ".total")) }
                       ~phases ()))
              zk_write_ops
          in
          client_points @ breakdown_points)
        runs
    in
    Report.emit_json ~path points;
    Printf.printf "\nwrote %s (%d bench points)\n%!" path (List.length points)

(* {2 Sharded coordination: N independent ZAB leaders}

   PR 3 measured that a coordination write spends ~96% of its latency in
   leader queue-wait + ack: one ZAB leader serializes every mutation.
   This experiment partitions the znode namespace across independent
   ensembles (Zk.Shard_router) at a constant total server count and
   constant back-end count, so the only variable is how many leaders
   share the write load. Every run is span-traced; the per-shard
   queue-wait summaries make the backlog collapse directly visible. *)

(* 8 Lustre back-ends keep the physical layer off the critical path at
   256 procs — the experiment isolates the coordination bottleneck. (At
   4 back-ends the file-create phase saturates the back-end MDSes near
   20k ops/s and every sharded configuration flatlines there.) *)
let sharding_spec ~servers =
  { Systems.zk_servers = servers; backends = 8; backend_kind = Systems.Lustre }

(* shards x servers-per-shard, all 8 servers in total *)
let sharding_topologies = [ (1, 8); (2, 4); (4, 2) ]
let sharding_batches = [ 1; 16 ]

let sharding_config_label ~shards ~servers ~max_batch =
  Printf.sprintf "shards=%dx%d|max_batch=%d|backends=8xLustre" shards servers
    max_batch

let sharding_data ?(procs_list = bar_procs) ?(topologies = sharding_topologies)
    ?(batches = sharding_batches) () =
  List.concat_map
    (fun (shards, servers) ->
      List.concat_map
        (fun max_batch ->
          List.map
            (fun procs ->
              ( (shards, servers, max_batch, procs),
                Systems.mdtest_sharded_profiled ~spec:(sharding_spec ~servers)
                  ~shards ~max_batch ~procs () ))
            procs_list)
        batches)
    topologies

let sharding_phases =
  [ Runner.Dir_create; Runner.File_create; Runner.Dir_stat; Runner.File_stat ]

let shard_queue_wait_mean trace i =
  match
    Obs.Metrics.summary_opt (Obs.Trace.metrics trace)
      (Printf.sprintf "zk.shard%d.queue_wait" i)
  with
  | Some s when Simkit.Stat.Summary.count s > 0 ->
    Some (Simkit.Stat.Summary.mean s)
  | Some _ | None -> None

let shard_stats_of (r : Systems.sharded_profile_run) =
  let writes = Zk.Shard_router.writes_committed_by_shard r.Systems.router
  and hits = Zk.Shard_router.dedup_hits_by_shard r.Systems.router in
  Array.to_list
    (Array.mapi
       (fun i znodes ->
         { Report.shard = i;
           znodes;
           writes_committed = writes.(i);
           dedup_hits = hits.(i);
           queue_wait_mean_s = shard_queue_wait_mean r.Systems.trace i })
       r.Systems.per_shard_znodes)

let sharding ?procs_list ?topologies ?batches ?json_path () =
  let data = sharding_data ?procs_list ?topologies ?batches () in
  let label_of (shards, servers, max_batch, _) =
    sharding_config_label ~shards ~servers ~max_batch
  in
  (* throughput, one figure per op of interest *)
  List.iter
    (fun phase ->
      let by_config =
        List.sort_uniq compare
          (List.map (fun ((s, v, b, _), _) -> (s, v, b)) data)
      in
      Report.print_figure
        ~title:
          (Printf.sprintf "Sharding — mdtest %s, %d coordination servers total"
             (Runner.phase_to_string phase)
             (match by_config with (s, v, _) :: _ -> s * v | [] -> 0))
        ~x_label:"procs"
        (List.map
           (fun (s, v, b) ->
             { Report.label = sharding_config_label ~shards:s ~servers:v ~max_batch:b;
               points =
                 List.filter_map
                   (fun ((s', v', b', procs), (r : Systems.sharded_profile_run)) ->
                     if (s', v', b') = (s, v, b) then
                       Some (procs, Runner.rate r.Systems.results phase)
                     else None)
                   data })
           by_config))
    sharding_phases;
  (* the backlog itself: mean queue-wait per coordination write, overall
     and per shard, plus the znode balance and accounting *)
  Report.print_header
    "Sharding — leader queue-wait per create (mean seconds) and per-shard balance";
  Printf.printf "  %-44s %6s %12s %14s  %s\n" "config" "procs" "create_qw_s"
    "znodes@stat" "per-shard [znodes qw_s]";
  let accounting_failures = ref [] in
  List.iter
    (fun (key, (r : Systems.sharded_profile_run)) ->
      let _, _, _, procs = key in
      let trace = r.Systems.trace in
      let qw =
        Option.value ~default:Float.nan
          (Obs.Trace.span_mean trace "zk.create.queue-wait")
      in
      Printf.printf "  %-44s %6d %12.3g %7d/%-6d " (label_of key) procs qw
        r.Systems.logical_znodes_at_stat r.Systems.expected_logical_znodes;
      Array.iteri
        (fun i n ->
          Printf.printf " [%d: %d %.3g]" i n
            (Option.value ~default:Float.nan (shard_queue_wait_mean trace i)))
        r.Systems.per_shard_znodes;
      print_newline ();
      if r.Systems.logical_znodes_at_stat <> r.Systems.expected_logical_znodes
      then
        accounting_failures :=
          Printf.sprintf "%s procs=%d: logical znodes %d, expected %d"
            (label_of key) procs r.Systems.logical_znodes_at_stat
            r.Systems.expected_logical_znodes
          :: !accounting_failures)
    data;
  (match !accounting_failures with
   | [] ->
     Printf.printf
       "\n  check: per-shard znode accounting exact on every run — OK\n"
   | failures ->
     List.iter (Printf.printf "  ACCOUNTING FAIL: %s\n") (List.rev failures);
     failwith "sharding: per-shard znode accounting does not balance");
  (* headline ratios at the largest scale: most shards vs single
     ensemble, both batched (the strongest baseline) *)
  let max_procs = List.fold_left (fun a ((_, _, _, p), _) -> max a p) 0 data in
  let max_shards = List.fold_left (fun a ((s, _, _, _), _) -> max a s) 0 data in
  let max_batch = List.fold_left (fun a ((_, _, b, _), _) -> max a b) 0 data in
  let find shards =
    List.find_opt
      (fun ((s, _, b, p), _) -> s = shards && b = max_batch && p = max_procs)
      data
  in
  (match (find 1, find max_shards) with
   | Some (_, base), Some (_, best) when max_shards > 1 ->
     Report.print_header
       (Printf.sprintf
          "Sharding — %d shards vs one ensemble (both max_batch=%d, %d procs)"
          max_shards max_batch max_procs);
     List.iter
       (fun phase ->
         let b = Runner.rate base.Systems.results phase
         and s = Runner.rate best.Systems.results phase in
         Report.print_ratio
           ~label:(Printf.sprintf "%s: %d shards / 1 ensemble"
                     (Runner.phase_to_string phase) max_shards)
           (if b > 0. then s /. b else 0.))
       sharding_phases
   | _ -> ());
  flush stdout;
  match json_path with
  | None -> ()
  | Some path ->
    let points =
      List.concat_map
        (fun ((shards, servers, max_batch, procs), (r : Systems.sharded_profile_run)) ->
          let config = sharding_config_label ~shards ~servers ~max_batch in
          let mdtest_points =
            List.filter_map
              (fun phase ->
                match Runner.latency_of r.Systems.results phase with
                | None -> None
                | Some l ->
                  Some
                    (Report.point
                       ~experiment:("mdtest-" ^ Runner.phase_to_string phase)
                       ~procs ~config
                       ~ops_per_sec:(Runner.rate r.Systems.results phase)
                       ~latency:(Report.latency_of_runner l) ()))
              Runner.all_phases
          in
          let breakdown =
            match quorum_breakdown r.Systems.trace "create" with
            | None -> []
            | Some (count, total, phases) ->
              let wall = r.Systems.results.Runner.wall in
              let q p =
                Option.value ~default:total
                  (Obs.Trace.span_quantile r.Systems.trace "zk.create.total" p)
              in
              [ Report.point ~experiment:"zk-create-breakdown" ~procs ~config
                  ~ops_per_sec:
                    (if wall > 0. then float_of_int count /. wall else 0.)
                  ~latency:
                    { Report.samples = count;
                      mean_s = total;
                      p50_s = q 0.5;
                      p95_s = q 0.95;
                      p99_s = q 0.99;
                      max_s =
                        Option.value ~default:total
                          (Obs.Trace.span_max r.Systems.trace "zk.create.total") }
                  ~phases () ]
          in
          let accounting =
            [ Report.point ~experiment:"sharding-znode-accounting" ~procs
                ~config:
                  (Printf.sprintf "%s|expected_logical=%d|live_stubs=%d" config
                     r.Systems.expected_logical_znodes
                     r.Systems.live_stubs_at_stat)
                ~ops_per_sec:0.0
                ~shards:(shard_stats_of r) () ]
          in
          mdtest_points @ breakdown @ accounting)
        data
    in
    Report.emit_json ~path points;
    Printf.printf "\nwrote %s (%d bench points)\n%!" path (List.length points)

(* {2 Chaos — randomized network fault schedules + linearizability oracle} *)

let chaos_servers = 5
let chaos_clients = 8

let chaos_runs_default =
  List.map (fun s -> (1, Int64.of_int s)) [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ]
  @ List.map (fun s -> (4, Int64.of_int s)) [ 101; 102; 103; 104; 105; 106; 107; 108 ]

let percentile sorted q =
  match Array.length sorted with
  | 0 -> Float.nan
  | n ->
    let idx = int_of_float (ceil (q *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))

let chaos ?(runs = chaos_runs_default) ?(clients = chaos_clients)
    ?(registers = 6) ?(heal_at = 15.) ?(post_heal = 10.) ?(events = 12)
    ?json_path () =
  Report.print_header
    (Printf.sprintf
       "Chaos — %d seeded random fault schedules (partitions, loss, delay, \
        duplication, crashes) over %d-server-per-shard ensembles, %d clients; \
        Wing-Gong linearizability check over every recorded history"
       (List.length runs) chaos_servers clients);
  Printf.printf "%6s %7s %9s %8s %7s %7s %11s %11s %9s %8s\n" "shards" "seed"
    "recorded" "checked" "undet" "expired" "dedup_hits" "evictions" "recovery"
    "violations";
  let results =
    List.map
      (fun (shards, seed) ->
        let r =
          Systems.chaos_run ~servers:chaos_servers ~shards ~clients ~registers
            ~heal_at ~post_heal ~events ~seed ()
        in
        Printf.printf "%6d %7Ld %9d %8d %7d %7d %11d %11d %8.2fs %10d\n%!"
          shards seed r.Systems.recorded r.Systems.checked
          r.Systems.undetermined_ops r.Systems.sessions_expired
          r.Systems.dedup_hits r.Systems.dedup_evictions r.Systems.recovery_s
          (List.length r.Systems.violations);
        List.iter
          (fun (v : Zk.History.violation) ->
            Printf.printf "    VIOLATION [%s] %s: %s\n" v.Zk.History.v_kind
              v.Zk.History.v_path v.Zk.History.v_detail)
          r.Systems.violations;
        r)
      runs
  in
  (* Determinism: the first schedule again, bit-identical history. *)
  let shards0, seed0 = List.hd runs in
  let again =
    Systems.chaos_run ~servers:chaos_servers ~shards:shards0 ~clients ~registers
      ~heal_at ~post_heal ~events ~seed:seed0 ()
  in
  let deterministic = again.Systems.digest = (List.hd results).Systems.digest in
  let total_checked =
    List.fold_left (fun acc r -> acc + r.Systems.checked) 0 results
  in
  let total_violations =
    List.fold_left
      (fun acc r -> acc + List.length r.Systems.violations)
      0 results
  in
  let recoveries =
    let a =
      Array.of_list
        (List.filter Float.is_finite
           (List.map (fun (r : Systems.chaos_run) -> r.Systems.recovery_s) results))
    in
    Array.sort compare a;
    a
  in
  let all_recovered = Array.length recoveries = List.length results in
  Printf.printf
    "\ntotal: %d ops checked, %d violations; recovery p50=%.2fs p95=%.2fs \
     max=%.2fs (%d/%d runs recovered); seed %Ld re-run digest %s\n%!"
    total_checked total_violations (percentile recoveries 0.50)
    (percentile recoveries 0.95) (percentile recoveries 1.0)
    (Array.length recoveries) (List.length results)
    seed0
    (if deterministic then "identical" else "DIFFERS (nondeterminism!)");
  (match json_path with
   | None -> ()
   | Some path ->
     let duration = heal_at +. post_heal in
     let points =
       List.map
         (fun (r : Systems.chaos_run) ->
           Report.point ~experiment:"chaos" ~procs:clients
             ~config:
               (Printf.sprintf "seed=%Ld|shards=%d|zk=%d" r.Systems.seed
                  r.Systems.shards chaos_servers)
             ~ops_per_sec:(float_of_int r.Systems.ops_ok /. duration)
             ~phases:
               [ ("violations", float_of_int (List.length r.Systems.violations));
                 ("ops_checked", float_of_int r.Systems.checked);
                 ("ops_recorded", float_of_int r.Systems.recorded);
                 ("undetermined", float_of_int r.Systems.undetermined_ops);
                 ( "recovery_s",
                   if Float.is_finite r.Systems.recovery_s then
                     r.Systems.recovery_s
                   else -1. );
                 ("sessions_expired", float_of_int r.Systems.sessions_expired);
                 ("dedup_hits", float_of_int r.Systems.dedup_hits);
                 ("dedup_evictions", float_of_int r.Systems.dedup_evictions);
                 ( "writes_failed_fast",
                   float_of_int r.Systems.writes_failed_fast );
                 ( "stale_reads_served",
                   float_of_int r.Systems.stale_reads_served ) ]
             ())
         results
       @ [ Report.point ~experiment:"chaos-summary" ~procs:clients
             ~config:
               (Printf.sprintf "runs=%d|zk=%d" (List.length results)
                  chaos_servers)
             ~ops_per_sec:(float_of_int total_checked /. duration)
             ~phases:
               [ ("violations_total", float_of_int total_violations);
                 ("ops_checked_total", float_of_int total_checked);
                 ("recovery_p50_s", percentile recoveries 0.50);
                 ("recovery_p95_s", percentile recoveries 0.95);
                 ("recovery_max_s", percentile recoveries 1.0);
                 ("runs_recovered", float_of_int (Array.length recoveries));
                 ("runs", float_of_int (List.length results));
                 ("deterministic", if deterministic then 1. else 0.) ]
             () ]
     in
     Report.emit_json ~path points;
     Printf.printf "\nwrote %s (%d bench points)\n%!" path (List.length points));
  if not all_recovered then failwith "chaos: a run never recovered after heal";
  if not deterministic then
    failwith "chaos: identical seed produced a different history";
  if total_violations > 0 then
    failwith "chaos: linearizability violations found"

let chaos_smoke ?json_path () =
  chaos
    ~runs:[ (1, 11L); (4, 12L) ]
    ~clients:64 ~registers:16 ~heal_at:8. ~post_heal:6. ~events:8 ?json_path ()

let engine ?events ?quota_s ?json_path () =
  Engine_bench.run ?events ?quota_s ?json_path ()

let sessions ?json_path () = ignore (Sessions_bench.run ?json_path ())
let sessions_smoke ?json_path () = Sessions_bench.smoke ?json_path ()

(* {2 Elastic resharding — live shard split / merge under mdtest}

   One controller changes the shard count while the file-create phase
   runs (Systems.mdtest_reshard). Three configurations per process
   count: the no-split baseline (to_shards = shards, exactly
   comparable), the live 2->4 split, and — at the smallest process
   count — a 4->2 merge. The driver enforces the run's own invariants
   (zero client errors, exact logical census, zero linearizability
   violations, remainder-only migration) so a regression fails the
   bench run itself, not just the CI gate downstream. *)

let reshard_servers = 4 (* per shard; the 2-shard baseline matches the
                           (2, 4) sharding topology above *)

let reshard_config_label ~shards ~to_shards ~max_batch =
  Printf.sprintf "reshard=%d->%d|servers=%d|max_batch=%d|backends=8xLustre"
    shards to_shards reshard_servers max_batch

let reshard_shard_stats (r : Systems.reshard_run) =
  let writes = Zk.Shard_router.writes_committed_by_shard r.Systems.router
  and hits = Zk.Shard_router.dedup_hits_by_shard r.Systems.router in
  Array.to_list
    (Array.mapi
       (fun i znodes ->
         { Report.shard = i;
           znodes;
           writes_committed = writes.(i);
           dedup_hits = hits.(i);
           queue_wait_mean_s = None })
       r.Systems.per_shard_znodes)

let reshard ?(procs_list = [ 64; 256 ]) ?(max_batch = 16) ?json_path () =
  Report.print_header
    "Elastic resharding: live shard split/merge during mdtest file creates";
  let spec = sharding_spec ~servers:reshard_servers in
  let runs =
    List.concat_map
      (fun procs ->
        let go ~shards ~to_shards =
          ( (shards, to_shards, procs),
            Systems.mdtest_reshard ~max_batch ~spec ~shards ~to_shards ~procs
              () )
        in
        [ go ~shards:2 ~to_shards:2 (* no-split baseline *);
          go ~shards:2 ~to_shards:4 (* the live split *) ]
        @
        if procs = List.hd procs_list then [ go ~shards:4 ~to_shards:2 ]
        else [])
      procs_list
  in
  Printf.printf "%-14s %5s %12s %12s %9s %13s %7s %5s\n" "config" "procs"
    "create/s" "p99 (ms)" "window" "migrated" "stubs" "viol";
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  List.iter
    (fun ((shards, to_shards, procs), (r : Systems.reshard_run)) ->
      let label = Printf.sprintf "%d->%d shards" shards to_shards in
      let p99_ms =
        match Runner.latency_of r.Systems.results Runner.File_create with
        | Some l -> l.Runner.p99 *. 1e3
        | None -> 0.
      in
      let migrated =
        match r.Systems.reshard with
        | Some st ->
          Printf.sprintf "%d/%d" st.Zk.Reshard.keys_migrated
            st.Zk.Reshard.keys_total
        | None -> "-"
      in
      Printf.printf "%-14s %5d %12.0f %12.2f %8.2fs %13s %7d %5d\n" label procs
        (Runner.rate r.Systems.results Runner.File_create)
        p99_ms r.Systems.reshard_window migrated r.Systems.live_stubs_at_stat
        (List.length r.Systems.violations);
      let ctx = Printf.sprintf "reshard %s @%d procs" label procs in
      if r.Systems.results.Runner.errors > 0 then
        fail "%s: %d client op errors" ctx r.Systems.results.Runner.errors;
      if r.Systems.logical_znodes_at_stat <> r.Systems.expected_logical_znodes
      then
        fail "%s: census %d <> expected %d" ctx r.Systems.logical_znodes_at_stat
          r.Systems.expected_logical_znodes;
      if r.Systems.violations <> [] then
        fail "%s: %d linearizability violations" ctx
          (List.length r.Systems.violations);
      if r.Systems.history_checked = 0 then fail "%s: oracle checked 0 ops" ctx;
      match r.Systems.reshard with
      | None ->
        if to_shards <> shards then fail "%s: controller never finished" ctx
      | Some st ->
        if st.Zk.Reshard.errors > 0 then
          fail "%s: %d controller errors" ctx st.Zk.Reshard.errors;
        if not (st.keys_migrated > 0 && st.keys_migrated < st.keys_total) then
          fail "%s: migrated %d of %d keys — not a bounded-load remainder" ctx
            st.keys_migrated st.keys_total)
    runs;
  flush stdout;
  (match json_path with
  | None -> ()
  | Some path ->
    let points =
      List.concat_map
        (fun ((shards, to_shards, procs), (r : Systems.reshard_run)) ->
          let config = reshard_config_label ~shards ~to_shards ~max_batch in
          let mdtest_points =
            List.filter_map
              (fun phase ->
                match Runner.latency_of r.Systems.results phase with
                | None -> None
                | Some l ->
                  Some
                    (Report.point
                       ~experiment:("mdtest-" ^ Runner.phase_to_string phase)
                       ~procs ~config
                       ~ops_per_sec:(Runner.rate r.Systems.results phase)
                       ~latency:(Report.latency_of_runner l) ()))
              Runner.all_phases
          in
          let keys_total, keys_migrated, controller_errors =
            match r.Systems.reshard with
            | Some st ->
              (st.Zk.Reshard.keys_total, st.keys_migrated, st.Zk.Reshard.errors)
            | None -> (0, 0, 0)
          in
          let accounting =
            [ Report.point ~experiment:"reshard-accounting" ~procs
                ~config:
                  (Printf.sprintf
                     "%s|expected_logical=%d|logical=%d|live_stubs=%d|keys_total=%d|keys_migrated=%d|violations=%d|history_checked=%d|history_recorded=%d|window_s=%.4f|controller_errors=%d|client_errors=%d"
                     config r.Systems.expected_logical_znodes
                     r.Systems.logical_znodes_at_stat
                     r.Systems.live_stubs_at_stat keys_total keys_migrated
                     (List.length r.Systems.violations) r.Systems.history_checked
                     r.Systems.history_recorded r.Systems.reshard_window
                     controller_errors r.Systems.results.Runner.errors)
                ~ops_per_sec:0.0
                ~shards:(reshard_shard_stats r) () ]
          in
          mdtest_points @ accounting)
        runs
    in
    Report.emit_json ~path points;
    Printf.printf "\nwrote %s (%d bench points)\n%!" path (List.length points));
  match !failures with
  | [] -> ()
  | fs -> failwith ("reshard: " ^ String.concat "; " (List.rev fs))

let reshard_smoke ?json_path () = reshard ~procs_list:[ 64 ] ?json_path ()

(* {2 Write pipeline — windowed ZAB proposals vs stop-and-wait}

   The PR 9 bench: the same traced mdtest profile as [profile], once per
   leader write-path configuration — classic unbatched stop-and-wait,
   group commit alone, and group commit plus a pipelined proposal
   window — and then a chaos sweep with the window open, because a
   faster write path that loses linearizability under faults is
   worthless. The driver enforces the PR's acceptance bar itself: every
   phase finite and non-negative, phase sums telescoping within 5%, the
   queue-wait + ack share of a create at the largest scale improving at
   least [min_improvement] percent over the window = 1 group-commit
   baseline in the very same run, zero history violations across the
   chaos schedules, every schedule recovering, and the first schedule
   bit-identical on re-run. *)

let pipeline_batch = 16
let pipeline_window = 8
let pipeline_chaos_window = 4

let pipeline_variants =
  [ ("batch1-w1", 1, 1) (* classic one-txn-per-round ZAB *);
    ("batch16-w1", pipeline_batch, 1) (* group commit, stop-and-wait *);
    ("batch16-w8", pipeline_batch, pipeline_window) (* + proposal window *) ]

let pipeline_config_label name =
  Printf.sprintf "pipeline=%s|zk=8|backends=2xLustre" name

let pipeline ?(procs_list = [ 64; 128; 256 ])
    ?(chaos_runs = chaos_runs_default) ?(min_improvement = 30.) ?json_path ()
    =
  Report.print_header
    (Printf.sprintf
       "Write pipeline — windowed ZAB proposals (window=%d) vs stop-and-wait, \
        traced mdtest over DUFS 2xLustre/8zk"
       pipeline_window);
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let runs =
    List.concat_map
      (fun procs ->
        List.map
          (fun (name, max_batch, window) ->
            let config_adjust c =
              { c with
                Zk.Ensemble.max_batch;
                max_inflight_batches = window }
            in
            ( (name, procs),
              Systems.mdtest_profiled ~config_adjust ~spec:profile_spec ~procs
                () ))
          pipeline_variants)
      procs_list
  in
  Printf.printf "%-12s %5s %10s %9s" "config" "procs" "create/s" "total_s";
  List.iter (fun p -> Printf.printf " %9s" p) Obs.Trace.phases;
  Printf.printf " %9s %9s\n" "qw+ack" "coverage";
  let qw_ack = Hashtbl.create 16 in
  List.iter
    (fun ((name, procs), (r : Systems.profile_run)) ->
      let trace = r.Systems.trace in
      List.iter
        (fun op ->
          match quorum_breakdown trace op with
          | None -> ()
          | Some (_count, total, phases) ->
            let sum = List.fold_left (fun acc (_, m) -> acc +. m) 0. phases in
            if Float.abs (sum -. total) > 0.05 *. total then
              fail "%s @%d procs, zk.%s: phase sum %.6g vs total %.6g" name
                procs op sum total;
            List.iter
              (fun (p, m) ->
                if not (Float.is_finite m) || m < 0. then
                  fail "%s @%d procs, zk.%s: phase %s = %g" name procs op p m)
              phases)
        zk_write_ops;
      match quorum_breakdown trace "create" with
      | None -> fail "%s @%d procs: no traced creates" name procs
      | Some (_count, total, phases) ->
        let sum = List.fold_left (fun acc (_, m) -> acc +. m) 0. phases in
        let qa =
          List.fold_left
            (fun acc (p, m) ->
              if p = "queue-wait" || p = "ack" then acc +. m else acc)
            0. phases
        in
        Hashtbl.replace qw_ack (name, procs) qa;
        Printf.printf "%-12s %5d %10.0f %9.3g" name procs
          (Runner.rate r.Systems.results Runner.File_create)
          total;
        List.iter (fun (_, m) -> Printf.printf " %9.3g" m) phases;
        Printf.printf " %9.3g %8.2f%%\n%!" qa (100. *. sum /. total))
    runs;
  let max_procs = List.fold_left max 0 procs_list in
  let qa_of name = Hashtbl.find_opt qw_ack (name, max_procs) in
  let improvement = ref Float.nan in
  let qa_base = ref Float.nan and qa_piped = ref Float.nan in
  (match (qa_of "batch16-w1", qa_of "batch16-w8") with
   | Some base, Some piped when base > 0. ->
     let impr = 100. *. (base -. piped) /. base in
     improvement := impr;
     qa_base := base;
     qa_piped := piped;
     Printf.printf
       "\n  create queue-wait+ack @%d procs: stop-and-wait %.3g s -> \
        pipelined %.3g s (%.1f%% better; gate: >= %.0f%%)\n"
       max_procs base piped impr min_improvement;
     if impr < min_improvement then
       fail "queue-wait+ack improved only %.1f%% (< %.0f%%)" impr
         min_improvement
   | _ ->
     fail "missing the %d-proc batch16 runs for the improvement gate"
       max_procs);
  (* The chaos sweep: the same seeded schedules as the PR 5 oracle, but
     with the proposal window open on every shard's ensemble. *)
  Printf.printf
    "\n  chaos sweep, max_inflight_batches = %d, max_batch = 8 (%d \
     schedules):\n"
    pipeline_chaos_window (List.length chaos_runs);
  let chaos_adjust c =
    { c with
      Zk.Ensemble.max_batch = 8;
      max_inflight_batches = pipeline_chaos_window }
  in
  let chaos_go ~shards ~seed =
    Systems.chaos_run ~servers:chaos_servers ~shards ~clients:chaos_clients
      ~registers:6 ~heal_at:15. ~post_heal:10. ~events:12
      ~config_adjust:chaos_adjust ~seed ()
  in
  let chaos_results =
    List.map
      (fun (shards, seed) ->
        let r = chaos_go ~shards ~seed in
        Printf.printf
          "    shards=%d seed=%-4Ld checked=%-6d violations=%d \
           recovery=%.2fs\n%!"
          shards seed r.Systems.checked
          (List.length r.Systems.violations)
          r.Systems.recovery_s;
        List.iter
          (fun (v : Zk.History.violation) ->
            Printf.printf "      VIOLATION [%s] %s: %s\n" v.Zk.History.v_kind
              v.Zk.History.v_path v.Zk.History.v_detail)
          r.Systems.violations;
        if r.Systems.violations <> [] then
          fail "chaos shards=%d seed=%Ld: %d violations" shards seed
            (List.length r.Systems.violations);
        if not (Float.is_finite r.Systems.recovery_s) then
          fail "chaos shards=%d seed=%Ld never recovered" shards seed;
        r)
      chaos_runs
  in
  let shards0, seed0 = List.hd chaos_runs in
  let again = chaos_go ~shards:shards0 ~seed:seed0 in
  let deterministic =
    again.Systems.digest = (List.hd chaos_results).Systems.digest
  in
  if not deterministic then
    fail "chaos seed %Ld re-run digest differs under the pipeline" seed0;
  let total_violations =
    List.fold_left
      (fun acc r -> acc + List.length r.Systems.violations)
      0 chaos_results
  in
  Printf.printf
    "  chaos total: %d schedules, %d violations; seed %Ld re-run digest %s\n%!"
    (List.length chaos_results)
    total_violations seed0
    (if deterministic then "identical" else "DIFFERS (nondeterminism!)");
  (match json_path with
   | None -> ()
   | Some path ->
     let mdtest_points =
       List.concat_map
         (fun ((name, procs), (r : Systems.profile_run)) ->
           let config = pipeline_config_label name in
           let client_points =
             List.filter_map
               (fun phase ->
                 match Runner.latency_of r.Systems.results phase with
                 | None -> None
                 | Some l ->
                   Some
                     (Report.point
                        ~experiment:("mdtest-" ^ Runner.phase_to_string phase)
                        ~procs ~config
                        ~ops_per_sec:(Runner.rate r.Systems.results phase)
                        ~latency:(Report.latency_of_runner l) ()))
               Runner.all_phases
           in
           let trace = r.Systems.trace in
           let wall = r.Systems.results.Runner.wall in
           let breakdown_points =
             List.filter_map
               (fun op ->
                 match quorum_breakdown trace op with
                 | None -> None
                 | Some (count, total, phases) ->
                   let base = "zk." ^ op in
                   let q p =
                     Option.value ~default:total
                       (Obs.Trace.span_quantile trace (base ^ ".total") p)
                   in
                   Some
                     (Report.point
                        ~experiment:("zk-" ^ op ^ "-breakdown")
                        ~procs ~config
                        ~ops_per_sec:
                          (if wall > 0. then float_of_int count /. wall
                           else 0.)
                        ~latency:
                          { Report.samples = count;
                            mean_s = total;
                            p50_s = q 0.5;
                            p95_s = q 0.95;
                            p99_s = q 0.99;
                            max_s =
                              Option.value ~default:total
                                (Obs.Trace.span_max trace (base ^ ".total")) }
                        ~phases ()))
               zk_write_ops
           in
           client_points @ breakdown_points)
         runs
     in
     let chaos_points =
       List.map
         (fun (r : Systems.chaos_run) ->
           Report.point ~experiment:"pipeline-chaos" ~procs:chaos_clients
             ~config:
               (Printf.sprintf "seed=%Ld|shards=%d|zk=%d|window=%d"
                  r.Systems.seed r.Systems.shards chaos_servers
                  pipeline_chaos_window)
             ~ops_per_sec:(float_of_int r.Systems.ops_ok /. 25.)
             ~phases:
               [ ( "violations",
                   float_of_int (List.length r.Systems.violations) );
                 ("ops_checked", float_of_int r.Systems.checked);
                 ("undetermined", float_of_int r.Systems.undetermined_ops);
                 ( "recovery_s",
                   if Float.is_finite r.Systems.recovery_s then
                     r.Systems.recovery_s
                   else -1. );
                 ("dedup_hits", float_of_int r.Systems.dedup_hits) ]
             ())
         chaos_results
     in
     let summary =
       Report.point ~experiment:"pipeline-summary" ~procs:max_procs
         ~config:
           (Printf.sprintf
              "baseline=batch16-w1|pipelined=batch16-w%d|chaos_window=%d|zk=8"
              pipeline_window pipeline_chaos_window)
         ~ops_per_sec:0.
         ~phases:
           [ ("qw_ack_baseline_s", !qa_base);
             ("qw_ack_pipelined_s", !qa_piped);
             ("improvement_pct", !improvement);
             ("min_improvement_pct", min_improvement);
             ("chaos_runs", float_of_int (List.length chaos_results));
             ("violations_total", float_of_int total_violations);
             ("deterministic", if deterministic then 1. else 0.) ]
         ()
     in
     let points = mdtest_points @ chaos_points @ [ summary ] in
     Report.emit_json ~path points;
     Printf.printf "\nwrote %s (%d bench points)\n%!" path
       (List.length points));
  match !failures with
  | [] -> ()
  | fs -> failwith ("pipeline: " ^ String.concat "; " (List.rev fs))

(* The CI variant: one scale, two chaos schedules. The 30% acceptance
   bar is measured on the full run's 256-proc point; the smoke run keeps
   a softer 10% floor so a genuinely broken pipeline still fails fast
   without making CI sensitive to the smaller scale's exact split. *)
let pipeline_smoke ?json_path () =
  pipeline ~procs_list:[ 64 ]
    ~chaos_runs:[ (1, 11L); (4, 12L) ]
    ~min_improvement:10. ?json_path ()

(* {2 Durability — whole-cluster power failures and storage corruption
      over mdtest}

   Every schedule power-fails the entire coordination ensemble in the
   middle of the file-create phase; the flavors additionally damage one
   member's disk (torn tail, WAL bit-rot, snapshot corruption,
   fail-slow fsyncs plus a post-restart stall). The driver enforces the
   run's own invariants: the service must recover (a probe write
   commits), the recovered replicas must agree byte-for-byte, the
   recorded register history must check linearizable, the durability
   oracle must find every acknowledged write in the recovered tree, the
   torn/bit-rot schedules must actually truncate records (teeth), and
   recovery must be mostly local — WAL-replayed transactions strictly
   dominate leader diff-syncs. *)

let durability_servers = 5

let durability_flavors =
  [| "power-failure"; "torn-tail"; "wal-bit-rot"; "snap-rot";
     "torn+snap-rot"; "fail-slow" |]

let durability_plan ~servers ~seed ~flavor =
  let open Faults.Faultplan in
  (* seed-deterministic crash point / outage length / disk victim *)
  let rng = Simkit.Rng.create ~seed:(Int64.add seed 977L) in
  let t_crash = 0.3 +. (Simkit.Rng.float rng *. 0.4) in
  let outage = 0.6 +. (Simkit.Rng.float rng *. 0.6) in
  let victim = Simkit.Rng.int rng servers in
  let ev off action = { anchor = After_phase ("file-create", off); action } in
  let mid = t_crash +. (outage /. 2.) in
  let storage =
    (* at most one member's disk is damaged, so quorum copies survive
       and every acknowledged write must still be recoverable *)
    match flavor with
    | "power-failure" -> []
    | "torn-tail" -> [ ev mid (Torn_tail (None, victim)) ]
    | "wal-bit-rot" -> [ ev mid (Corrupt_wal (None, victim, 0.08)) ]
    | "snap-rot" -> [ ev mid (Corrupt_snap (None, victim)) ]
    | "torn+snap-rot" ->
      [ ev mid (Torn_tail (None, victim));
        ev mid (Corrupt_snap (None, victim)) ]
    | "fail-slow" ->
      [ ev 0.05 (Fsync_delay (None, victim, 2e-4));
        ev (t_crash +. outage +. 0.1) (Disk_stall (None, victim, 0.15)) ]
    | f -> invalid_arg ("durability_plan: unknown flavor " ^ f)
  in
  List.init servers (fun id -> ev t_crash (Crash id))
  @ storage
  @ [ ev (t_crash +. outage) Restart_all_down ]

let durability ?(seeds = List.map Int64.of_int [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ])
    ?(procs = 64) ?(reg_clients = 8) ?(ops_per_client = 50)
    ?(dirs_per_proc = 12) ?(files_per_proc = 12) ?json_path () =
  Report.print_header
    (Printf.sprintf
       "Durability — %d whole-cluster power-failure schedules (plus torn \
        tails, WAL bit-rot, snapshot corruption, fail-slow disks) under \
        %d-proc mdtest over %d-server ensembles; checksummed-WAL recovery \
        + durability oracle"
       (List.length seeds) procs durability_servers);
  Printf.printf "%5s %14s %9s %7s %6s %7s %8s %9s %6s %6s %6s %7s %5s %5s\n"
    "seed" "flavor" "recorded" "audited" "undet" "mderr" "replayed" "truncated"
    "snaps" "falls" "diff" "rectime" "lin" "dur";
  let run_one i seed =
    let label = durability_flavors.(i mod Array.length durability_flavors) in
    let plan = durability_plan ~servers:durability_servers ~seed ~flavor:label in
    let r =
      Systems.durability_run ~servers:durability_servers ~procs ~reg_clients
        ~ops_per_client ~dirs_per_proc ~files_per_proc ~plan ~label ~seed ()
    in
    Printf.printf
      "%5Ld %14s %9d %7d %6d %7d %8d %9d %6d %6d %6d %6.3fs %5d %5d%s\n%!"
      seed label r.Systems.d_recorded r.Systems.d_audited
      r.Systems.d_undetermined r.Systems.d_mdtest_errors
      r.Systems.d_wal_replayed r.Systems.d_wal_truncated
      r.Systems.d_snap_loads r.Systems.d_snap_fallbacks
      r.Systems.d_transfer_diff_txns r.Systems.d_recovery_time_max
      (List.length r.Systems.d_violations)
      (List.length r.Systems.d_durability_violations)
      ((if r.Systems.d_recovered then "" else "  NOT-RECOVERED")
       ^ if r.Systems.d_trees_agree then "" else "  REPLICAS-DISAGREE");
    List.iter
      (fun (v : Zk.History.violation) ->
        Printf.printf "    VIOLATION [%s] %s: %s\n" v.Zk.History.v_kind
          v.Zk.History.v_path v.Zk.History.v_detail)
      (r.Systems.d_violations @ r.Systems.d_durability_violations);
    r
  in
  let results = List.mapi run_one seeds in
  (* Determinism: the first schedule again, bit-identical history. *)
  let again = run_one 0 (List.hd seeds) in
  let deterministic =
    again.Systems.d_digest = (List.hd results).Systems.d_digest
  in
  let total f = List.fold_left (fun acc r -> acc + f r) 0 results in
  let lin_violations =
    total (fun (r : Systems.durability_run) -> List.length r.Systems.d_violations)
  in
  let dur_violations =
    total (fun (r : Systems.durability_run) ->
        List.length r.Systems.d_durability_violations)
  in
  let recovered_runs =
    List.length (List.filter (fun (r : Systems.durability_run) -> r.Systems.d_recovered) results)
  in
  let agree_runs =
    List.length
      (List.filter (fun (r : Systems.durability_run) -> r.Systems.d_trees_agree) results)
  in
  let truncating_flavor (r : Systems.durability_run) =
    match r.Systems.d_label with
    | "torn-tail" | "wal-bit-rot" | "torn+snap-rot" -> true
    | _ -> false
  in
  let truncated_torn =
    List.fold_left
      (fun acc r ->
        if truncating_flavor r then acc + r.Systems.d_wal_truncated else acc)
      0 results
  in
  let replayed_total = total (fun r -> r.Systems.d_wal_replayed) in
  let diff_total = total (fun r -> r.Systems.d_transfer_diff_txns) in
  let recoveries_total = total (fun r -> r.Systems.d_recoveries) in
  let rec_time_total =
    List.fold_left
      (fun acc (r : Systems.durability_run) -> acc +. r.Systems.d_recovery_time_total)
      0. results
  in
  let rec_time_max =
    List.fold_left
      (fun acc (r : Systems.durability_run) -> Float.max acc r.Systems.d_recovery_time_max)
      0. results
  in
  Printf.printf
    "\ntotal: %d runs (%d recovered, %d replicas-agree), %d lin + %d \
     durability violations; %d recoveries, per-restart recovery mean=%.3fs \
     max=%.3fs; wal replayed %d vs leader diff-sync %d txns (+%d SNAP); \
     truncated %d under torn/bit-rot; seed %Ld re-run digest %s\n%!"
    (List.length results) recovered_runs agree_runs lin_violations
    dur_violations recoveries_total
    (if recoveries_total > 0 then rec_time_total /. float_of_int recoveries_total
     else 0.)
    rec_time_max replayed_total diff_total
    (total (fun r -> r.Systems.d_transfer_snaps))
    truncated_torn (List.hd seeds)
    (if deterministic then "identical" else "DIFFERS (nondeterminism!)");
  (match json_path with
   | None -> ()
   | Some path ->
     let points =
       List.map
         (fun (r : Systems.durability_run) ->
           Report.point ~experiment:"durability" ~procs
             ~config:
               (Printf.sprintf "seed=%Ld|flavor=%s|zk=%d" r.Systems.d_seed
                  r.Systems.d_label durability_servers)
             ~ops_per_sec:
               (Mdtest.Runner.rate r.Systems.d_results Mdtest.Runner.File_create)
             ~phases:
               [ ("violations", float_of_int (List.length r.Systems.d_violations));
                 ( "durability_violations",
                   float_of_int (List.length r.Systems.d_durability_violations) );
                 ("ops_recorded", float_of_int r.Systems.d_recorded);
                 ("registers_audited", float_of_int r.Systems.d_audited);
                 ("undetermined", float_of_int r.Systems.d_undetermined);
                 ("mdtest_errors", float_of_int r.Systems.d_mdtest_errors);
                 ("power_failure_recovered", if r.Systems.d_recovered then 1. else 0.);
                 ("replicas_agree", if r.Systems.d_trees_agree then 1. else 0.);
                 ("faults_fired", float_of_int r.Systems.d_faults_fired);
                 ("wal.appended", float_of_int r.Systems.d_wal_appended);
                 ("wal.replayed", float_of_int r.Systems.d_wal_replayed);
                 ("wal.truncated_records", float_of_int r.Systems.d_wal_truncated);
                 ("wal.tail_dropped", float_of_int r.Systems.d_wal_tail_dropped);
                 ("wal.tail_commits", float_of_int r.Systems.d_wal_tail_commits);
                 ("snap.loads", float_of_int r.Systems.d_snap_loads);
                 ( "snap.corrupt_fallbacks",
                   float_of_int r.Systems.d_snap_fallbacks );
                 ("recovery.count", float_of_int r.Systems.d_recoveries);
                 ("recovery.time_total_s", r.Systems.d_recovery_time_total);
                 ("recovery.time_max_s", r.Systems.d_recovery_time_max);
                 ("transfer.diff_txns", float_of_int r.Systems.d_transfer_diff_txns);
                 ("transfer.snaps", float_of_int r.Systems.d_transfer_snaps) ]
             ())
         results
       @ [ Report.point ~experiment:"durability-summary" ~procs
             ~config:
               (Printf.sprintf "runs=%d|zk=%d|reg_clients=%d"
                  (List.length results) durability_servers reg_clients)
             ~ops_per_sec:0.
             ~phases:
               [ ("runs", float_of_int (List.length results));
                 ("violations_total", float_of_int lin_violations);
                 ("durability_violations_total", float_of_int dur_violations);
                 ("power_failures_recovered", float_of_int recovered_runs);
                 ("replicas_agree_runs", float_of_int agree_runs);
                 ("wal.replayed_total", float_of_int replayed_total);
                 ("wal.truncated_torn_total", float_of_int truncated_torn);
                 ("transfer.diff_txns_total", float_of_int diff_total);
                 ("recovery.count_total", float_of_int recoveries_total);
                 ( "recovery.per_restart_mean_s",
                   if recoveries_total > 0 then
                     rec_time_total /. float_of_int recoveries_total
                   else 0. );
                 ("recovery.max_s", rec_time_max);
                 ("deterministic", if deterministic then 1. else 0.) ]
             () ]
     in
     Report.emit_json ~path points;
     Printf.printf "\nwrote %s (%d bench points)\n%!" path (List.length points));
  if recovered_runs < List.length results then
    failwith "durability: a power-failure schedule never recovered";
  if agree_runs < List.length results then
    failwith "durability: recovered replicas disagree";
  if lin_violations > 0 then
    failwith "durability: linearizability violations found";
  if dur_violations > 0 then
    failwith "durability: acked writes lost or unacked writes resurrected";
  if truncated_torn = 0 then
    failwith "durability: torn/bit-rot schedules truncated nothing (no teeth)";
  if diff_total >= replayed_total then
    failwith "durability: recovery not mostly local (diff-sync >= WAL replay)";
  if not deterministic then
    failwith "durability: identical seed produced a different history"

let durability_smoke ?json_path () =
  durability
    ~seeds:(List.map Int64.of_int [ 1; 2; 3; 4 ])
    ~procs:16 ~ops_per_client:30 ~dirs_per_proc:6 ~files_per_proc:6 ?json_path ()

let all () =
  fig7 ();
  fig8 ();
  fig9 ();
  fig10 ();
  headline ();
  fig11 ();
  ablation_mapping ();
  ablation_cmd ();
  ablation_unique ();
  ablation_async ();
  ablation_cache ();
  ablation_giga ();
  ablation_observers ();
  ablation_faults ();
  batching ();
  faults ();
  profile ();
  sharding ();
  chaos ();
  engine ();
  sessions ();
  reshard ();
  pipeline ();
  durability ()
