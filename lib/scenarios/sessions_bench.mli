(** The sessions experiment: 1k–100k client sessions, each with its own
    metadata cache, sweeping a fixed namespace with mdtest-stat and
    readdir-storm read passes — cold (server-bound, observers add
    capacity) then warm (cache-local) — while a writer mutates a slice
    of the namespace between passes and a sample of sessions is recorded
    through the linearizability checker. Contrasts per-znode watch
    coherence (server watch tables O(sessions × cached znodes)) with
    lease coherence (lease tables O(sessions × working dirs), watch
    tables empty). *)

type coherence = Watches | Leases

type phase_times = {
  mutable cold_s : float;
  mutable warm_s : float;
}

type case_result = {
  sessions : int;
  observers : int;
  mode : coherence;
  stat : phase_times;
  readdir : phase_times;
  stat_reads : int;
  readdir_reads : int;
  hits : int;
  misses : int;
  invalidations : int;
  watch_releases : int;
  watch_table_total : int;
  lease_entries_total : int;
  leases_granted : int;
  leases_renewed : int;
  leases_revoked : int;
  observer_reads : int;
  voter_reads : int;
  znodes : int;
  history_checked : int;
  violations : int;
}

val run_case :
  sessions:int -> observers:int -> mode:coherence -> seed:int64 -> unit ->
  case_result

(** [run ?cases ?json_path ()] — each case is
    [(sessions, observers, coherence)]; two {!Mdtest.Report.bench_point}s
    (stat, readdir) per case land in [json_path]. *)
val run :
  ?cases:(int * int * coherence) list -> ?json_path:string -> unit ->
  case_result list

(** The CI case list: 1k sessions in both coherence modes. *)
val smoke : ?json_path:string -> unit -> unit
