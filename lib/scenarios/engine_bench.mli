(** Wall-clock throughput benchmark of the Simkit engine core.

    Unlike every other experiment in this tree, which measures *virtual*
    time, this one measures how fast the simulator itself burns through
    events — the number that decides whether a 10^6-event chaos run is
    routine or a coffee break. Three representative mixes drive the
    engine hot paths:

    - [timer]: thousands of always-armed exponential timers — stresses
      the future-event queue (push/pop at high occupancy).
    - [mailbox]: broadcast/gather rounds over parked process mailboxes —
      every event is a [delay:0.] suspend/resume, the dominant event
      class in the coordination protocol.
    - [net]: seeded fault-active message flows (drop/dup/reorder/
      partition churn) through {!Simkit.Net} — the chaos-run event
      profile.

    Each mix is fully seeded and allocation-profiled: [run_data] also
    re-runs every mix once and fails if the replay digest (executed
    events, final virtual clock) differs — engine speed work is gated on
    determinism. Wall time comes from a [bechamel] monotonic-clock OLS
    fit over whole-mix runs. *)

type result = {
  mix : string;              (** mix name: timer / mailbox / net *)
  actors : int;              (** concurrent timers / workers / flows *)
  events_executed : int;     (** engine events per run (deterministic) *)
  virtual_s : float;         (** final virtual clock of one run *)
  ns_per_event : float;      (** wall nanoseconds per engine event *)
  events_per_sec : float;    (** wall-clock engine throughput *)
  minor_words_per_event : float;
      (** minor-heap allocation per event — the zero-alloc-quiet-path
          regression meter *)
}

(** Mix names in execution order. *)
val mix_names : string list

(** Run every mix at [events] target events (default 1_000_000) with a
    [quota_s]-second bechamel quota per mix (default 2.0).
    @raise Failure if any mix's replay digest differs between runs. *)
val run_data : ?events:int -> ?quota_s:float -> unit -> result list

(** [run ()] prints the table; with [json_path] also writes the
    BENCH_pr6.json artifact: one [engine-<mix>] point per mix whose
    [ops_per_sec] is wall-clock events/sec and whose [phases] block
    carries [events_executed], [ns_per_event], [virtual_s] and
    [minor_words_per_event]. *)
val run : ?events:int -> ?quota_s:float -> ?json_path:string -> unit -> unit
