(** System configurations under test, mirroring §V: native Lustre, native
    PVFS2, and DUFS over N back-end mounts of either, with a ZooKeeper
    ensemble co-located with the client nodes. *)

type backend_kind = Lustre | Pvfs

type dufs_spec = {
  zk_servers : int;
  backends : int;
  backend_kind : backend_kind;
}

type system =
  | Basic_lustre
  | Basic_pvfs
  | Lustre_cmd of int
      (** hypothetical Lustre Clustered MDS with n active servers (§VI) *)
  | Dufs of dufs_spec
  | Dufs_cached of dufs_spec
      (** DUFS with the client-side metadata cache ({!Dufs.Cache}) *)
  | Dufs_batched of dufs_spec * int
      (** DUFS with ZAB group commit: the leader batches up to the given
          [max_batch] queued writes per persist + proposal round *)
  | Dufs_sharded of dufs_spec * int * int
      (** DUFS over a {!Zk.Shard_router} deployment:
          [(spec, shards, max_batch)] with [spec.zk_servers] servers
          {e per shard}, so [shards * zk_servers] coordination servers
          in total, each shard its own batched ZAB ensemble *)

val system_label : system -> string

(** [mdtest system ~procs ()] runs the six-phase mdtest workload on a
    fresh simulation of [system] and returns per-phase throughput.
    Results are memoized on (system, procs, items, unique). *)
val mdtest :
  ?dirs_per_proc:int ->
  ?files_per_proc:int ->
  ?unique:bool ->
  system ->
  procs:int ->
  unit ->
  Mdtest.Runner.results

(** [build_dufs engine ~spec ~config ~cached] assembles the DUFS stack
    (ensemble + formatted back-ends + per-proc client factory) and keeps
    the ensemble visible — fault experiments need it to schedule crashes
    while the workload runs. The third component is each back-end
    metadata station's (wait, hold) time summaries. [trace] (default
    off) threads one span trace through the ensemble's quorum phases and
    every client's root spans. *)
val build_dufs :
  ?trace:Obs.Trace.t ->
  Simkit.Engine.t ->
  spec:dufs_spec ->
  config:Zk.Ensemble.config ->
  cached:bool ->
  Zk.Ensemble.t
  * (int -> Fuselike.Vfs.ops)
  * (Simkit.Stat.Summary.t * Simkit.Stat.Summary.t) array

(** [build_dufs_sharded engine ~spec ~config ~shards ~cached] — the
    sharded counterpart of {!build_dufs}: [shards] independent
    ensembles, each built from [config], behind a {!Zk.Shard_router}
    session per client process. The router stays visible so fault
    experiments can crash individual shards and accounting can read
    per-shard populations. *)
val build_dufs_sharded :
  ?trace:Obs.Trace.t ->
  Simkit.Engine.t ->
  spec:dufs_spec ->
  config:Zk.Ensemble.config ->
  shards:int ->
  cached:bool ->
  Zk.Shard_router.t
  * (int -> Fuselike.Vfs.ops)
  * (Simkit.Stat.Summary.t * Simkit.Stat.Summary.t) array

(** One mdtest run under a fault schedule, plus the invariants the
    failure path must preserve. *)
type fault_run = {
  results : Mdtest.Runner.results;
  dedup_hits : int;          (** retried writes answered exactly-once *)
  writes_committed : int;
  faults_fired : int;        (** schedule events that executed *)
  znodes_after_create : int;
      (** znode population at the file-stat barrier (all creates
          committed, no removes yet) *)
  expected_znodes_after_create : int;
      (** root + namespace root + skeleton + files created: equality
          with [znodes_after_create] rules out duplicate or lost
          applies *)
}

(** [mdtest_faulted ~spec ~procs ~plan ()] — mdtest over DUFS while
    [plan] crashes and restarts ensemble servers underneath it.
    [config_adjust] tweaks the ensemble configuration (tests shrink the
    timeouts); an empty plan gives the exactly-comparable fault-free
    baseline. Not memoized. *)
val mdtest_faulted :
  ?dirs_per_proc:int ->
  ?files_per_proc:int ->
  ?unique:bool ->
  ?cached:bool ->
  ?config_adjust:(Zk.Ensemble.config -> Zk.Ensemble.config) ->
  spec:dufs_spec ->
  procs:int ->
  plan:Faults.Faultplan.t ->
  unit ->
  fault_run

(** One mdtest run with the span trace enabled end to end. *)
type profile_run = {
  results : Mdtest.Runner.results;
  trace : Obs.Trace.t;
      (** spans recorded during the run: [dufs.<op>] client root spans,
          [zk.<op>.<phase>] quorum phases, leader queue/batch gauges *)
  backend_stations : (Simkit.Stat.Summary.t * Simkit.Stat.Summary.t) array;
      (** per back-end metadata station: (handler-queue wait, in-service
          hold) time summaries *)
}

(** [mdtest_profiled ~spec ~procs ()] — mdtest over DUFS with tracing
    on. Not memoized; the trace belongs to this run alone. Tracing never
    sleeps or schedules, so throughput equals the untraced run's.
    [config_adjust] tweaks the ensemble configuration (the write-pipeline
    bench turns on group commit and proposal pipelining with it). *)
val mdtest_profiled :
  ?dirs_per_proc:int ->
  ?files_per_proc:int ->
  ?config_adjust:(Zk.Ensemble.config -> Zk.Ensemble.config) ->
  spec:dufs_spec ->
  procs:int ->
  unit ->
  profile_run

(** {2 Sharded runs}

    Both sharded run types carry the same accounting, sampled at the
    file-stat barrier (every file create committed, no removal begun):
    per-shard raw node counts, the router's live stub count at that
    instant, and the derived logical population
    [sum (counts - 1) - live_stubs], which must equal
    [expected_logical_znodes] (zroot + skeleton + files) exactly —
    a surplus is a doubled apply or leaked stub, a deficit a lost
    write. *)

(** Sharded mdtest with the span trace enabled end to end ([publish]ed
    per-shard gauges included). Not memoized. *)
type sharded_profile_run = {
  results : Mdtest.Runner.results;
  trace : Obs.Trace.t;
  router : Zk.Shard_router.t;
  backend_stations : (Simkit.Stat.Summary.t * Simkit.Stat.Summary.t) array;
  per_shard_znodes : int array;
  live_stubs_at_stat : int;
  logical_znodes_at_stat : int;
  expected_logical_znodes : int;
}

val mdtest_sharded_profiled :
  ?dirs_per_proc:int ->
  ?files_per_proc:int ->
  ?max_batch:int ->
  spec:dufs_spec ->
  shards:int ->
  procs:int ->
  unit ->
  sharded_profile_run

(** Sharded mdtest under a fault schedule (see {!mdtest_faulted});
    the plan may address shards with the [crash=<shard>/<id>] /
    [crash-leader@shard=<k>] syntax. Untraced. *)
type sharded_fault_run = {
  results : Mdtest.Runner.results;
  dedup_hits : int;
  dedup_hits_by_shard : int array;
  writes_committed : int;
  writes_committed_by_shard : int array;
  faults_fired : int;
  per_shard_znodes : int array;
  live_stubs_at_stat : int;
  logical_znodes_at_stat : int;
  expected_logical_znodes : int;
  router_stats : Zk.Shard_router.stats;
}

val mdtest_sharded_faulted :
  ?dirs_per_proc:int ->
  ?files_per_proc:int ->
  ?max_batch:int ->
  ?config_adjust:(Zk.Ensemble.config -> Zk.Ensemble.config) ->
  spec:dufs_spec ->
  shards:int ->
  procs:int ->
  plan:Faults.Faultplan.t ->
  unit ->
  sharded_fault_run

(** {2 Live resharding under mdtest}

    One mdtest run over a sharded deployment whose shard count changes
    {e while the file-create phase runs}: a controller process spawned
    at the file-create barrier executes {!Zk.Reshard.split} (or
    [merge], when [to_shards < shards]), migrating the bounded-load
    remainder of directory keys under full write traffic. The first
    [history_clients] client sessions record through {!Zk.History}
    (wrapped below the DUFS client, so every routed coordination op the
    oracle can check is checked across the flip). Census fields carry
    the same exactness contract as the other sharded runs — sampled at
    the file-stat barrier {e after} the controller finished.
    [to_shards = shards] is the exactly-comparable no-split baseline
    ([reshard = None], [reshard_window = 0]). Not memoized. *)

type reshard_run = {
  results : Mdtest.Runner.results;
  router : Zk.Shard_router.t;
  reshard : Zk.Reshard.stats option;
      (** controller counters; [None] on the no-split baseline *)
  reshard_window : float;
      (** sim-seconds from controller start to completion *)
  history_recorded : int;
  history_checked : int;
  violations : Zk.History.violation list;
  per_shard_znodes : int array;
  live_stubs_at_stat : int;
  logical_znodes_at_stat : int;
  expected_logical_znodes : int;
}

val mdtest_reshard :
  ?dirs_per_proc:int ->
  ?files_per_proc:int ->
  ?max_batch:int ->
  ?history_clients:int ->
  spec:dufs_spec ->
  shards:int ->
  to_shards:int ->
  procs:int ->
  unit ->
  reshard_run

(** {2 Chaos runs — randomized network faults + linearizability oracle}

    One seeded schedule: [clients] processes hammer [registers]
    register znodes (one per directory, so a sharded deployment spreads
    them) and a sequential-create directory through a {!Zk.History}
    recorder while a {!Faults.Faultplan.chaos} plan (or the explicit
    [?plan]) partitions, drops, delays, duplicates and crashes the
    deployment until [heal_at]; the run continues [post_heal] seconds
    of healthy traffic, a probe measures per-shard write recovery, and
    the checker searches the whole recorded history. Identical
    arguments (seed included) reproduce bit-identical histories —
    compare [digest]s. [unsafe_no_dedup] exists for the checker's
    teeth test only. *)

type chaos_run = {
  seed : int64;
  shards : int;
  recorded : int;
  checked : int;
  undetermined_ops : int;
  violations : Zk.History.violation list;
  digest : string;
  recovery_s : float;  (** heal → every probed shard committed; nan = never *)
  faults_fired : int;
  ops_ok : int;        (** client ops with a determined outcome *)
  ops_err : int;       (** transport-failed client ops (undetermined) *)
  dedup_hits : int;
  dedup_evictions : int;
  sessions_expired : int;
  writes_failed_fast : int;
  stale_reads_served : int;
  writes_committed : int;
}

val chaos_run :
  ?servers:int ->
  ?shards:int ->
  ?clients:int ->
  ?registers:int ->
  ?heal_at:float ->
  ?post_heal:float ->
  ?events:int ->
  ?think:float ->
  ?unsafe_no_dedup:bool ->
  ?config_adjust:(Zk.Ensemble.config -> Zk.Ensemble.config) ->
  ?plan:Faults.Faultplan.t ->
  seed:int64 ->
  unit ->
  chaos_run

(** {2 Durability runs — power failures and storage corruption + oracle}

    One seeded schedule: [procs]-process mdtest runs over the full DUFS
    stack while [plan] power-fails the coordination ensemble (and
    optionally tears / bit-rots / snapshot-corrupts one member's disk
    during the outage — see the {!Faults.Faultplan} storage grammar).
    Alongside, [reg_clients] processes issue unconditioned register
    writes with unique data through a {!Zk.History} recorder; after the
    drained run a probe write proves the service recovered, the
    Wing–Gong checker validates the history, and
    {!Zk.History.durability_audit} compares the leader's recovered tree
    against it. WAL/recovery counters come from the ensemble's
    stable-storage introspection. *)

type durability_run = {
  d_seed : int64;
  d_label : string;              (** schedule flavor, for reports *)
  d_results : Mdtest.Runner.results;
  d_mdtest_errors : int;         (** VFS ops failed during the outage *)
  d_recorded : int;
  d_checked : int;
  d_undetermined : int;
  d_audited : int;               (** registers the oracle could audit *)
  d_violations : Zk.History.violation list;  (** linearizability *)
  d_durability_violations : Zk.History.violation list;
  d_digest : string;
  d_recovered : bool;            (** post-outage probe write committed *)
  d_trees_agree : bool;          (** live replicas fingerprint-equal *)
  d_faults_fired : int;
  d_reg_ok : int;
  d_reg_err : int;
  d_wal_appended : int;
  d_wal_replayed : int;
  d_wal_truncated : int;
  d_wal_tail_dropped : int;
  d_snap_loads : int;
  d_snap_fallbacks : int;
  d_recoveries : int;
  d_recovery_time_total : float;
  d_recovery_time_max : float;
  d_wal_tail_commits : int;
  d_transfer_diff_txns : int;
  d_transfer_snaps : int;
}

val durability_run :
  ?servers:int ->
  ?procs:int ->
  ?reg_clients:int ->
  ?registers:int ->
  ?ops_per_client:int ->
  ?dirs_per_proc:int ->
  ?files_per_proc:int ->
  ?think:float ->
  plan:Faults.Faultplan.t ->
  label:string ->
  seed:int64 ->
  unit ->
  durability_run

(** Raw coordination-service throughput (Fig. 7): closed loop of [items]
    ops per client for each of the four basic operations. Returns
    [(op name, ops/sec)] in order create, get, set, delete. *)
val zk_raw : servers:int -> procs:int -> ?items:int -> unit -> (string * float) list

(** Clear the memo table (tests). *)
val reset_cache : unit -> unit

(** The coordination-service configuration used for all experiments:
    cost constants from {!Pfs.Costs.Zookeeper} plus the co-located-load
    inflation for [procs] client processes. [max_batch] (default 1)
    enables ZAB group commit. *)
val zk_config : ?max_batch:int -> servers:int -> procs:int -> unit -> Zk.Ensemble.config
