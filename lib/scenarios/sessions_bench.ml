(* The sessions experiment: how far client-cache coherence scales.

   N sessions (1k / 10k / 100k simulated client processes, each with its
   own metadata cache) sweep a fixed 512-directory x 16-file namespace
   with the two read-heavy mdtest shapes — per-file stat and readdir
   storm — twice each: a cold pass that fills every cache from the
   ensemble (server-bound; observers add read capacity) and a warm pass
   served from the caches (client-local). A writer mutates a slice of
   the namespace between the passes so the coherence protocol's
   invalidation path runs under load, and the first few sessions are
   recorded through the linearizability checker.

   The server-state argument the sweep exists to make: with per-znode
   watch coherence the ensemble's watch tables grow O(sessions x cached
   znodes); with lease coherence the lease tables stay O(sessions x
   working directories) — here one directory per session — while the
   watch tables stay empty. *)

module Engine = Simkit.Engine
module Process = Simkit.Process
module Mailbox = Simkit.Mailbox
module Ensemble = Zk.Ensemble
module Zk_client = Zk.Zk_client
module Report = Mdtest.Report

type coherence = Watches | Leases

let coherence_name = function Watches -> "watches" | Leases -> "leases"

(* Fixed namespace: 1 root + dirs + dirs*files znodes, identical across
   every case so the accounting gate can pin the exact count. *)
let n_dirs = 512
let n_files = 16

(* Client-side CPU per cache-served op: without it a warm pass takes
   zero virtual time and "ops/sec" is a division by zero. 1 us is the
   scale of a hash lookup plus a VFS dispatch on the client. *)
let client_op_cost = 1e-6

(* Virtual seconds of lease validity. Long enough that entries filled in
   the cold pass are still leased in the warm pass of the largest sweep
   (whose cold pass costs tens of virtual seconds of server CPU);
   expiry behaviour itself is pinned by unit tests, not the bench. *)
let bench_lease_ttl = 120.

type phase_times = {
  mutable cold_s : float;
  mutable warm_s : float;
}

type case_result = {
  sessions : int;
  observers : int;
  mode : coherence;
  stat : phase_times;
  readdir : phase_times;
  stat_reads : int;        (* server reads a cold stat pass issues *)
  readdir_reads : int;
  hits : int;
  misses : int;
  invalidations : int;
  watch_releases : int;
  watch_table_total : int; (* armed watches across all members, post-run *)
  lease_entries_total : int;
  leases_granted : int;
  leases_renewed : int;
  leases_revoked : int;
  observer_reads : int;    (* reads served by non-voting members *)
  voter_reads : int;
  znodes : int;
  history_checked : int;
  violations : int;
}

let dir_path d = Printf.sprintf "/d%03d" d
let file_path d f = Printf.sprintf "/d%03d/f%02d" d f

let zk_ok label = function
  | Ok v -> v
  | Error e ->
    failwith (Printf.sprintf "Sessions_bench %s: %s" label (Zk.Zerror.to_string e))

let run_case ~sessions ~observers ~mode ~seed () =
  let engine = Engine.create () in
  let cfg =
    { (Ensemble.default_config ~servers:3) with
      Ensemble.observers;
      seed;
      max_batch = 16;
      lease_ttl = bench_lease_ttl }
  in
  let ensemble = Ensemble.start engine cfg in
  let history = Zk.History.create engine in
  let recorded_sessions = min 32 sessions in
  let caches = Array.make sessions None in
  let gates = Array.init sessions (fun _ -> Mailbox.create ()) in
  let finished = Mailbox.create () in
  let stat = { cold_s = 0.; warm_s = 0. } in
  let readdir = { cold_s = 0.; warm_s = 0. } in
  let observer_reads = ref 0 and voter_reads = ref 0 in
  let znodes = ref 0 in
  (* Each session: wait at the gate, run the released pass over its
     working directory, report back. Pass 0/1 = stat cold/warm, pass
     2/3 = readdir cold/warm. *)
  for i = 0 to sessions - 1 do
    Process.spawn engine (fun () ->
        let raw = Ensemble.session ensemble () in
        let cache =
          match mode with
          | Watches -> Dufs.Cache.wrap ~capacity:64 raw
          | Leases ->
            Dufs.Cache.wrap ~capacity:64 ~coherence:Dufs.Cache.Leases
              ~now:(fun () -> Engine.now engine)
              raw
        in
        caches.(i) <- Some cache;
        let h =
          if i < recorded_sessions then
            Zk.History.wrap history ~client:(i + 1) (Dufs.Cache.handle cache)
          else Dufs.Cache.handle cache
        in
        let d = i mod n_dirs in
        let stat_pass () =
          for f = 0 to n_files - 1 do
            Process.sleep client_op_cost;
            ignore (zk_ok "stat" (h.Zk_client.get (file_path d f)))
          done
        in
        let readdir_pass () =
          Process.sleep client_op_cost;
          let listing = zk_ok "readdir" (h.Zk_client.children_with_data (dir_path d)) in
          if List.length listing <> n_files then
            failwith
              (Printf.sprintf "Sessions_bench: %s listed %d entries, expected %d"
                 (dir_path d) (List.length listing) n_files)
        in
        List.iter
          (fun pass ->
            Mailbox.recv gates.(i);
            pass ();
            Mailbox.send finished ())
          [ stat_pass; stat_pass; readdir_pass; readdir_pass ])
  done;
  (* The coordinator owns setup, the phase barriers, and the mid-sweep
     writer bursts. *)
  Process.spawn engine (fun () ->
      let writer =
        Zk.History.wrap history ~client:0 (Ensemble.session ensemble ~server:0 ())
      in
      (* plain creates, not one multi per dir: the checker models every
         register as initially absent, so creations must be recorded *)
      for d = 0 to n_dirs - 1 do
        ignore (zk_ok "setup" (writer.Zk_client.create (dir_path d) ~data:""));
        for f = 0 to n_files - 1 do
          ignore (zk_ok "setup" (writer.Zk_client.create (file_path d f) ~data:"v0"))
        done
      done;
      let release_and_wait () =
        let t0 = Engine.now engine in
        Array.iter (fun gate -> Mailbox.send gate ()) gates;
        for _ = 1 to sessions do
          ignore (Mailbox.recv finished)
        done;
        Engine.now engine -. t0
      in
      let writer_burst ~file data =
        (* every 8th directory mutated: the coherence protocol must
           push the change into thousands of warm caches *)
        let d = ref 0 in
        while !d < n_dirs do
          ignore (zk_ok "burst" (writer.Zk_client.set (file_path !d file) ~data));
          d := !d + 8
        done
      in
      stat.cold_s <- release_and_wait ();
      writer_burst ~file:1 "v1";
      stat.warm_s <- release_and_wait ();
      readdir.cold_s <- release_and_wait ();
      writer_burst ~file:0 "v2";
      readdir.warm_s <- release_and_wait ();
      List.iter
        (fun id ->
          let served = Ensemble.reads_served ensemble id in
          if id < cfg.Ensemble.servers then voter_reads := !voter_reads + served
          else observer_reads := !observer_reads + served)
        (Ensemble.member_ids ensemble);
      (match Ensemble.leader_id ensemble with
       | Some leader -> znodes := Zk.Ztree.node_count (Ensemble.tree_of ensemble leader)
       | None -> failwith "Sessions_bench: no leader at the end of a fault-free run"));
  Engine.run engine;
  let sum f =
    Array.fold_left
      (fun acc c -> match c with Some c -> acc + f c | None -> acc)
      0 caches
  in
  let violations = Zk.History.check history in
  List.iter
    (fun (v : Zk.History.violation) ->
      Printf.printf "  VIOLATION [%s] %s: %s\n%!" v.Zk.History.v_kind
        v.Zk.History.v_path v.Zk.History.v_detail)
    violations;
  { sessions;
    observers;
    mode;
    stat;
    readdir;
    stat_reads = sessions * n_files;
    readdir_reads = sessions;
    hits = sum Dufs.Cache.hits;
    misses = sum Dufs.Cache.misses;
    invalidations = sum Dufs.Cache.invalidations;
    watch_releases = sum Dufs.Cache.watch_releases;
    watch_table_total =
      List.fold_left
        (fun acc id -> acc + Ensemble.watch_table_size ensemble id)
        0
        (Ensemble.member_ids ensemble);
    lease_entries_total =
      List.fold_left
        (fun acc id -> acc + Ensemble.lease_entries ensemble id)
        0
        (Ensemble.member_ids ensemble);
    leases_granted = Ensemble.leases_granted ensemble;
    leases_renewed = Ensemble.leases_renewed ensemble;
    leases_revoked = Ensemble.leases_revoked ensemble;
    observer_reads = !observer_reads;
    voter_reads = !voter_reads;
    znodes = !znodes;
    history_checked = Zk.History.checked_ops history;
    violations = List.length violations }

let points_of (r : case_result) =
  let config =
    Printf.sprintf "coherence=%s|sessions=%d|servers=3|observers=%d|dirs=%d|files=%d"
      (coherence_name r.mode) r.sessions r.observers n_dirs n_files
  in
  let shared =
    [ ("hits", float_of_int r.hits);
      ("misses", float_of_int r.misses);
      ("invalidations", float_of_int r.invalidations);
      ("watch_releases", float_of_int r.watch_releases);
      ("watch_table_total", float_of_int r.watch_table_total);
      ("lease_entries_total", float_of_int r.lease_entries_total);
      ("leases_granted", float_of_int r.leases_granted);
      ("leases_renewed", float_of_int r.leases_renewed);
      ("leases_revoked", float_of_int r.leases_revoked);
      ("observer_reads", float_of_int r.observer_reads);
      ("voter_reads", float_of_int r.voter_reads);
      ("znodes", float_of_int r.znodes);
      ("history_checked", float_of_int r.history_checked);
      ("violations", float_of_int r.violations) ]
  in
  let point ~workload ~reads (p : phase_times) =
    Report.point
      ~experiment:("sessions-" ^ workload)
      ~procs:r.sessions ~config
      ~ops_per_sec:(float_of_int reads /. p.cold_s)
      ~phases:
        ([ ("cold_s", p.cold_s);
           ("warm_s", p.warm_s);
           ("warm_ops_per_sec", float_of_int reads /. p.warm_s) ]
         @ shared)
      ()
  in
  [ point ~workload:"stat" ~reads:r.stat_reads r.stat;
    point ~workload:"readdir" ~reads:r.readdir_reads r.readdir ]

let print_case (r : case_result) =
  Printf.printf
    "  %-7s %8d %4d | stat %10.3fs cold %10.6fs warm | readdir %8.3fs cold \
     %8.6fs warm | watches %7d leases %7d | viol %d\n%!"
    (coherence_name r.mode) r.sessions r.observers r.stat.cold_s r.stat.warm_s
    r.readdir.cold_s r.readdir.warm_s r.watch_table_total r.lease_entries_total
    r.violations

let default_cases =
  (* lease coherence scaling with session count (observers fixed) ... *)
  [ (1_000, 2, Leases);
    (10_000, 2, Leases);
    (100_000, 2, Leases);
    (* ... read capacity scaling with observer count (sessions fixed) ... *)
    (10_000, 0, Leases);
    (10_000, 6, Leases);
    (* ... and the per-znode watch baseline, which is already carrying
       sessions x files watch registrations at 10k sessions *)
    (1_000, 2, Watches);
    (10_000, 2, Watches) ]

let smoke_cases = [ (1_000, 2, Leases); (1_000, 2, Watches) ]

let run ?(cases = default_cases) ?json_path () =
  Report.print_header
    "Sessions: client-cache coherence at 1k-100k sessions (stat + readdir)";
  Printf.printf "  %-7s %8s %4s\n" "mode" "sessions" "obs";
  let results =
    List.map
      (fun (sessions, observers, mode) ->
        let r = run_case ~sessions ~observers ~mode ~seed:0x5e55L () in
        print_case r;
        r)
      cases
  in
  (match json_path with
   | None -> ()
   | Some path ->
     Report.emit_json ~path (List.concat_map points_of results);
     Printf.printf "  wrote %s\n%!" path);
  results

let smoke ?json_path () = ignore (run ~cases:smoke_cases ?json_path ())
