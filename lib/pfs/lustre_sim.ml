module Process = Simkit.Process
module Resource = Simkit.Resource
module Vfs = Fuselike.Vfs
module Memfs = Fuselike.Memfs
module Fspath = Fuselike.Fspath

type config = {
  net_latency : float;
  mds_threads : int;
  mkdir_service : float;
  rmdir_service : float;
  create_service : float;
  unlink_service : float;
  getattr_service : float;
  readdir_service : float;
  setattr_service : float;
  rename_service : float;
  oss_create : float;
  lock_revoke : float;
  thrash : float;
  namespace_penalty : float;
  oss_bandwidth : float;
}

let default_config () =
  { net_latency = Costs.gige_latency;
    mds_threads = Costs.Lustre.mds_threads;
    mkdir_service = Costs.Lustre.mkdir_service;
    rmdir_service = Costs.Lustre.rmdir_service;
    create_service = Costs.Lustre.create_service;
    unlink_service = Costs.Lustre.unlink_service;
    getattr_service = Costs.Lustre.getattr_service;
    readdir_service = Costs.Lustre.readdir_service;
    setattr_service = Costs.Lustre.setattr_service;
    rename_service = Costs.Lustre.rename_service;
    oss_create = Costs.Lustre.oss_create;
    lock_revoke = Costs.Lustre.lock_revoke;
    thrash = Costs.Lustre.thrash;
    namespace_penalty = 1.0;
    oss_bandwidth = 100e6 }

let backend_config () =
  { (default_config ()) with
    namespace_penalty = Costs.Lustre.hashed_namespace_penalty }

type t = {
  cfg : config;
  fs : Memfs.t;
  fs_ops : Vfs.ops;
  mds : Mdserver.t;
  oss : Resource.t;
  (* DLM: last client to hold each directory's update lock *)
  lock_owners : (string, int) Hashtbl.t;
  mutable revokes : int;
}

let create engine ?config () =
  let cfg = match config with Some c -> c | None -> default_config () in
  let fs = Memfs.create ~clock:(fun () -> Simkit.Engine.now engine) () in
  { cfg;
    fs;
    fs_ops = Memfs.ops fs;
    mds =
      Mdserver.create engine ~threads:cfg.mds_threads ~thrash:cfg.thrash
        ~net_latency:cfg.net_latency ();
    oss = Resource.create ~capacity:4 ();
    lock_owners = Hashtbl.create 1024;
    revokes = 0 }

let config t = t.cfg
let local_ops t = t.fs_ops
let lock_revokes t = t.revokes
let mds_served t = Mdserver.served t.mds
let mds_wait_summary t = Mdserver.wait_summary t.mds
let mds_hold_summary t = Mdserver.hold_summary t.mds

(* Cost of taking the parent directory's DLM update lock: free if this
   client already holds it, a blocking-AST round trip if it must be
   revoked from another client. *)
let dlm_visit t ~client_id dir =
  match Hashtbl.find_opt t.lock_owners dir with
  | Some owner when owner = client_id -> 0.
  | Some _ ->
    t.revokes <- t.revokes + 1;
    Hashtbl.replace t.lock_owners dir client_id;
    t.cfg.lock_revoke
  | None ->
    Hashtbl.replace t.lock_owners dir client_id;
    0.

let meta t ~client_id ?lock_dir ~service f =
  let extra =
    match lock_dir with
    | Some dir -> dlm_visit t ~client_id dir
    | None -> 0.
  in
  Mdserver.request t.mds ~service:(service *. t.cfg.namespace_penalty) ~extra f

let data t ~bytes f =
  Process.sleep t.cfg.net_latency;
  let service = 20e-6 +. (float_of_int bytes /. t.cfg.oss_bandwidth) in
  let result = Resource.with_slot t.oss (fun () -> Process.sleep service; f ()) in
  Process.sleep t.cfg.net_latency;
  result

let client t ~client_id =
  let cfg = t.cfg in
  let fs = t.fs_ops in
  { Vfs.getattr =
      (fun path ->
        meta t ~client_id ~service:cfg.getattr_service (fun () -> fs.Vfs.getattr path));
    access =
      (fun path ->
        meta t ~client_id ~service:cfg.getattr_service (fun () -> fs.Vfs.access path));
    mkdir =
      (fun path ~mode ->
        meta t ~client_id ~lock_dir:(Fspath.parent path) ~service:cfg.mkdir_service
          (fun () -> fs.Vfs.mkdir path ~mode));
    rmdir =
      (fun path ->
        meta t ~client_id ~lock_dir:(Fspath.parent path) ~service:cfg.rmdir_service
          (fun () -> fs.Vfs.rmdir path));
    create =
      (fun path ~mode ->
        meta t ~client_id ~lock_dir:(Fspath.parent path)
          ~service:(cfg.create_service +. cfg.oss_create)
          (fun () -> fs.Vfs.create path ~mode));
    unlink =
      (fun path ->
        meta t ~client_id ~lock_dir:(Fspath.parent path) ~service:cfg.unlink_service
          (fun () -> fs.Vfs.unlink path));
    rename =
      (fun src dst ->
        (* both parent directories are locked *)
        let extra2 = dlm_visit t ~client_id (Fspath.parent dst) in
        meta t ~client_id ~lock_dir:(Fspath.parent src)
          ~service:(cfg.rename_service +. extra2)
          (fun () -> fs.Vfs.rename src dst));
    readdir =
      (fun path ->
        meta t ~client_id ~service:cfg.readdir_service (fun () -> fs.Vfs.readdir path));
    symlink =
      (fun ~target path ->
        meta t ~client_id ~lock_dir:(Fspath.parent path) ~service:cfg.create_service
          (fun () -> fs.Vfs.symlink ~target path));
    readlink =
      (fun path ->
        meta t ~client_id ~service:cfg.getattr_service (fun () -> fs.Vfs.readlink path));
    chmod =
      (fun path ~mode ->
        meta t ~client_id ~service:cfg.setattr_service (fun () -> fs.Vfs.chmod path ~mode));
    truncate =
      (fun path ~size ->
        meta t ~client_id ~service:cfg.setattr_service (fun () ->
            fs.Vfs.truncate path ~size));
    read = (fun path ~off ~len -> data t ~bytes:len (fun () -> fs.Vfs.read path ~off ~len));
    write =
      (fun path ~off payload ->
        data t ~bytes:(String.length payload) (fun () -> fs.Vfs.write path ~off payload));
    statfs = fs.Vfs.statfs }
