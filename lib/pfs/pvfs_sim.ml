module Process = Simkit.Process
module Vfs = Fuselike.Vfs
module Memfs = Fuselike.Memfs
module Fspath = Fuselike.Fspath

type config = {
  net_latency : float;
  meta_servers : int;
  server_threads : int;
  mkdir_service : float;
  rmdir_service : float;
  create_service : float;
  unlink_service : float;
  getattr_service : float;
  readdir_service : float;
  setattr_service : float;
  rename_service : float;
  thrash : float;
  namespace_penalty : float;
  data_bandwidth : float;
}

let default_config () =
  { net_latency = Costs.gige_latency;
    meta_servers = Costs.Pvfs.meta_servers;
    server_threads = Costs.Pvfs.server_threads;
    mkdir_service = Costs.Pvfs.mkdir_service;
    rmdir_service = Costs.Pvfs.rmdir_service;
    create_service = Costs.Pvfs.create_service;
    unlink_service = Costs.Pvfs.unlink_service;
    getattr_service = Costs.Pvfs.getattr_service;
    readdir_service = Costs.Pvfs.readdir_service;
    setattr_service = Costs.Pvfs.setattr_service;
    rename_service = Costs.Pvfs.rename_service;
    thrash = Costs.Pvfs.thrash;
    namespace_penalty = 1.0;
    data_bandwidth = 100e6 }

let backend_config () =
  { (default_config ()) with
    namespace_penalty = Costs.Pvfs.hashed_namespace_penalty }

type t = {
  cfg : config;
  fs : Memfs.t;
  fs_ops : Vfs.ops;
  servers : Mdserver.t array;
}

let create engine ?config () =
  let cfg = match config with Some c -> c | None -> default_config () in
  let fs = Memfs.create ~clock:(fun () -> Simkit.Engine.now engine) () in
  { cfg;
    fs;
    fs_ops = Memfs.ops fs;
    servers =
      Array.init cfg.meta_servers (fun _ ->
          Mdserver.create engine ~threads:cfg.server_threads ~thrash:cfg.thrash
            ~net_latency:cfg.net_latency ()) }

let config t = t.cfg
let local_ops t = t.fs_ops
let served_per_server t = Array.map Mdserver.served t.servers
let wait_summaries t = Array.map Mdserver.wait_summary t.servers
let hold_summaries t = Array.map Mdserver.hold_summary t.servers

(* The handle space is statically hash-partitioned over the servers. *)
let server_for t key = t.servers.(Hashtbl.hash key mod Array.length t.servers)

let visit t ~key ~service f =
  Mdserver.request (server_for t key)
    ~service:(service *. t.cfg.namespace_penalty)
    f

(* Creates allocate datafile handles on one server, then insert the
   directory entry on the parent's server — two sequential visits. *)
let visit2 t ~key1 ~key2 ~service f =
  let s1 = server_for t key1 and s2 = server_for t key2 in
  if s1 == s2 then
    Mdserver.request s1 ~service:(2. *. service *. t.cfg.namespace_penalty) f
  else begin
    Mdserver.request s1 ~service:(service *. t.cfg.namespace_penalty) ignore;
    Mdserver.request s2 ~service:(service *. t.cfg.namespace_penalty) f
  end

let data t ~bytes f =
  Process.sleep t.cfg.net_latency;
  Process.sleep (40e-6 +. (float_of_int bytes /. t.cfg.data_bandwidth));
  let result = f () in
  Process.sleep t.cfg.net_latency;
  result

let client t ~client_id:_ =
  let cfg = t.cfg in
  let fs = t.fs_ops in
  { Vfs.getattr =
      (fun path -> visit t ~key:path ~service:cfg.getattr_service (fun () ->
           fs.Vfs.getattr path));
    access =
      (fun path -> visit t ~key:path ~service:cfg.getattr_service (fun () ->
           fs.Vfs.access path));
    mkdir =
      (fun path ~mode ->
        visit2 t ~key1:(Fspath.parent path) ~key2:path
          ~service:(cfg.mkdir_service /. 2.)
          (fun () -> fs.Vfs.mkdir path ~mode));
    rmdir =
      (fun path ->
        visit2 t ~key1:(Fspath.parent path) ~key2:path
          ~service:(cfg.rmdir_service /. 2.)
          (fun () -> fs.Vfs.rmdir path));
    create =
      (fun path ~mode ->
        visit2 t ~key1:path ~key2:(Fspath.parent path) ~service:cfg.create_service
          (fun () -> fs.Vfs.create path ~mode));
    unlink =
      (fun path ->
        visit2 t ~key1:(Fspath.parent path) ~key2:path
          ~service:(cfg.unlink_service /. 2.)
          (fun () -> fs.Vfs.unlink path));
    rename =
      (fun src dst ->
        visit2 t ~key1:(Fspath.parent src) ~key2:(Fspath.parent dst)
          ~service:(cfg.rename_service /. 2.)
          (fun () -> fs.Vfs.rename src dst));
    readdir =
      (fun path -> visit t ~key:path ~service:cfg.readdir_service (fun () ->
           fs.Vfs.readdir path));
    symlink =
      (fun ~target path ->
        visit2 t ~key1:path ~key2:(Fspath.parent path) ~service:cfg.create_service
          (fun () -> fs.Vfs.symlink ~target path));
    readlink =
      (fun path -> visit t ~key:path ~service:cfg.getattr_service (fun () ->
           fs.Vfs.readlink path));
    chmod =
      (fun path ~mode ->
        visit t ~key:path ~service:cfg.setattr_service (fun () ->
            fs.Vfs.chmod path ~mode));
    truncate =
      (fun path ~size ->
        visit t ~key:path ~service:cfg.setattr_service (fun () ->
            fs.Vfs.truncate path ~size));
    read = (fun path ~off ~len -> data t ~bytes:len (fun () -> fs.Vfs.read path ~off ~len));
    write =
      (fun path ~off payload ->
        data t ~bytes:(String.length payload) (fun () -> fs.Vfs.write path ~off payload));
    statfs = fs.Vfs.statfs }
