(** PVFS2 filesystem simulator: hash-partitioned userspace metadata
    servers, no client caching, no locks. Creates touch two servers
    (directory entry + datafile handles), and every operation is a full
    round trip to a userspace server with synchronous metadata commits —
    which is what makes PVFS2's absolute metadata rates far lower than
    Lustre's in the paper (factor ≈ 23 on creates at 256 procs). *)

type config = {
  net_latency : float;
  meta_servers : int;       (** servers the handle space is split over *)
  server_threads : int;
  mkdir_service : float;
  rmdir_service : float;
  create_service : float;   (** charged on each of the two create visits *)
  unlink_service : float;
  getattr_service : float;
  readdir_service : float;
  setattr_service : float;
  rename_service : float;
  thrash : float;
  namespace_penalty : float;
  data_bandwidth : float;
}

val default_config : unit -> config
val backend_config : unit -> config

type t

val create : Simkit.Engine.t -> ?config:config -> unit -> t
val config : t -> config
val client : t -> client_id:int -> Fuselike.Vfs.ops
val local_ops : t -> Fuselike.Vfs.ops

(** Requests served per metadata server. *)
val served_per_server : t -> int array

(** Per-server handler-queue wait vs service (hold) time distributions. *)
val wait_summaries : t -> Simkit.Stat.Summary.t array

val hold_summaries : t -> Simkit.Stat.Summary.t array
