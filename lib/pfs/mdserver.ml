module Process = Simkit.Process
module Resource = Simkit.Resource

type t = {
  handlers : Resource.t;
  thrash : float;
  net_latency : float;
  mutable served : int;
}

let create _engine ~threads ~thrash ~net_latency () =
  { handlers = Resource.create ~capacity:threads ();
    thrash;
    net_latency;
    served = 0 }

let load t = Resource.in_use t.handlers + Resource.queue_length t.handlers
let served t = t.served
let wait_summary t = Resource.wait_summary t.handlers
let hold_summary t = Resource.hold_summary t.handlers

let request t ~service ?(extra = 0.) f =
  Process.sleep t.net_latency;
  let queue_at_arrival = float_of_int (load t) in
  let result =
    Resource.with_slot t.handlers (fun () ->
        Process.sleep (extra +. (service *. (1. +. (t.thrash *. queue_at_arrival))));
        f ())
  in
  t.served <- t.served + 1;
  Process.sleep t.net_latency;
  result
