(** A metadata-server queueing station.

    Models one server: a bounded pool of request handlers in front of a
    service queue, with load-dependent service-time inflation ("thrash":
    lock-state growth, handler contention and backing-filesystem seeks as
    the queue deepens). Shared by the Lustre MDS and the PVFS2 metadata
    servers. *)

type t

val create :
  Simkit.Engine.t ->
  threads:int ->
  thrash:float ->
  net_latency:float ->
  unit ->
  t

(** [request t ~service ~extra f] performs one client RPC from the calling
    simulation process: client→server latency, queueing for a handler,
    [extra + service * (1 + thrash * queue-at-arrival)] of service time,
    then [f ()] (the actual state change, instantaneous), then the reply
    latency. Returns [f]'s result. *)
val request : t -> service:float -> ?extra:float -> (unit -> 'a) -> 'a

(** Requests currently queued or in service. *)
val load : t -> int

(** Total requests served. *)
val served : t -> int

(** Handler-queue wait vs in-service (hold) time distributions, from the
    underlying {!Simkit.Resource} — the wait-vs-service split behind
    every latency this station reports. *)
val wait_summary : t -> Simkit.Stat.Summary.t

val hold_summary : t -> Simkit.Stat.Summary.t
