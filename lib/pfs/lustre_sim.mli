(** Lustre filesystem simulator: one MDS (with DLM directory locks and
    load-dependent thrashing) plus an OSS pool, over an in-memory
    namespace. The comparison baseline of the paper's evaluation, and the
    back-end storage behind DUFS-over-Lustre. *)

type config = {
  net_latency : float;
  mds_threads : int;
  mkdir_service : float;
  rmdir_service : float;
  create_service : float;
  unlink_service : float;
  getattr_service : float;
  readdir_service : float;
  setattr_service : float;
  rename_service : float;
  oss_create : float;       (** object preallocation charged to create *)
  lock_revoke : float;      (** DLM lock ownership change penalty *)
  thrash : float;
  namespace_penalty : float;
      (** multiplier for DUFS back-end mounts (deep hashed namespace,
          cold dentries); 1.0 for a native mount *)
  oss_bandwidth : float;    (** bytes/second for read/write payloads *)
}

(** Native-mount configuration from {!Costs.Lustre}. *)
val default_config : unit -> config

(** {!default_config} with the hashed-namespace penalty applied — the
    configuration for a mount used as DUFS back-end storage. *)
val backend_config : unit -> config

type t

(** One filesystem instance (its own MDS, OSS and namespace). *)
val create : Simkit.Engine.t -> ?config:config -> unit -> t

val config : t -> config

(** [client t ~client_id] — simulation-mode ops for one client process;
    every call charges network + MDS/OSS time to the calling process.
    [client_id] identifies the DLM lock owner. *)
val client : t -> client_id:int -> Fuselike.Vfs.ops

(** Zero-cost direct ops (setup/verification outside the simulation). *)
val local_ops : t -> Fuselike.Vfs.ops

(** Observed DLM lock-revoke count (lock ping-pong between clients). *)
val lock_revokes : t -> int

(** Requests served by the MDS. *)
val mds_served : t -> int

(** MDS handler-queue wait vs service (hold) time distributions. *)
val mds_wait_summary : t -> Simkit.Stat.Summary.t

val mds_hold_summary : t -> Simkit.Stat.Summary.t
