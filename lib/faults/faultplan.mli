(** Declarative fault schedules for the replicated metadata ensemble.

    A plan is a list of timed crash/restart events. Each event fires at
    an absolute virtual time or at an offset after a named workload
    phase begins (the [?on_phase] hook of {!Mdtest.Runner.run} supplies
    the phase notifications). [arm] turns the plan into engine events,
    so a benchmark runs unchanged while servers fail underneath it.

    Textual grammar ([parse] / [to_string] are inverses on canonical
    forms; [parse] additionally accepts "ms"/"us"/"s" suffixes on
    durations, which [to_string] prints as bare seconds):

    {v
    plan   ::= event (";" event)*
    event  ::= action "@" anchor
    action ::= "crash=" <id> | "restart=" <id>
             | "crash=" <shard> "/" <id> | "restart=" <shard> "/" <id>
             | "crash-leader" | "crash-leader@shard=" <shard>
             | "restart-all"
             | "partition=" [<shard> "/"] <group> ("|" <group>)*
             | "heal" | "heal@shard=" <shard>
             | "drop="  [<shard> "/"] <probability>
             | "delay+=" [<shard> "/"] <duration>
             | "dup="   [<shard> "/"] <probability>
             | "reorder=" [<shard> "/"] <probability> ":" <duration>
             | "torn-tail="    [<shard> "/"] <id>
             | "corrupt-wal="  [<shard> "/"] <id> ":" <probability>
             | "corrupt-snap=" [<shard> "/"] <id>
             | "disk-stall="   [<shard> "/"] <id> ":" <duration>
             | "fsync-delay+=" [<shard> "/"] <id> ":" <duration>
    group  ::= <id> ("," <id>)*
    anchor ::= <seconds> | <phase-name> | <phase-name> "+" <seconds>
    v}

    Network actions drive the target ensemble's {!Simkit.Net} fault
    state: [partition] installs a symmetric split (members not named
    form the implicit other side, and clients ride with their home
    server), [drop]/[dup]/[delay+]/[reorder] set the probabilistic
    knobs, and [heal] restores the network completely — partition gone
    {e and} every probabilistic knob back to zero (["heal"] heals every
    shard; ["heal@shard=k"] just one).

    Storage actions drive one member's {!Zk.Wal} fault state and are
    deliberately per-server (a media fault hits one disk, not the
    ensemble): [torn-tail] tears the newest WAL record, [corrupt-wal]
    bit-rots roughly the given fraction of records (hash-selected, no
    RNG draw), [corrupt-snap] corrupts the newest snapshot,
    [disk-stall] fail-stops the WAL device for the duration, and
    [fsync-delay+] permanently adds fail-slow latency to every fsync.
    None of them is emitted by {!chaos} — storage schedules are built
    explicitly by the durability experiment so the PR 5 chaos replays
    stay byte-identical.

    The anchor follows the {e last} ["@"] of an event, so the sharded
    ["crash-leader@shard=2@file-create+0.05"] parses as expected; plans
    written for single-ensemble deployments parse unchanged (a bare
    server id or ["crash-leader"] addresses shard 0, and
    ["restart-all"] restarts every down server of {e every} shard).

    e.g. ["crash-leader@file-create+0.05;restart-all@file-create+1.5"]
    crashes whoever leads 50 ms into the file-create phase and restarts
    every down server 1.5 s into it. *)

type action =
  | Crash of int        (** crash server [id] (shard 0) *)
  | Restart of int      (** restart server [id] (no-op if alive) *)
  | Crash_leader        (** crash shard 0's leader, resolved at fire time *)
  | Restart_all_down    (** restart every down server on every shard *)
  | Crash_on of int * int    (** crash server [id] of shard [s] *)
  | Restart_on of int * int  (** restart server [id] of shard [s] *)
  | Crash_leader_of of int   (** crash shard [s]'s current leader *)
  | Partition of int option * int list list
      (** symmetric partition of the shard's members ([None] = shard 0) *)
  | Heal of int option  (** restore the network ([None] = every shard) *)
  | Drop of int option * float       (** P(message lost) *)
  | Delay of int option * float      (** seconds added to every hop *)
  | Duplicate of int option * float  (** P(message delivered twice) *)
  | Reorder of int option * float * float
      (** (probability, window): see {!Simkit.Net.set_reorder} — this
          knowingly violates the protocol's FIFO-link assumption *)
  | Torn_tail of int option * int
      (** tear server [id]'s newest WAL record *)
  | Corrupt_wal of int option * int * float
      (** bit-rot [fraction] of server [id]'s WAL records *)
  | Corrupt_snap of int option * int
      (** corrupt server [id]'s newest snapshot *)
  | Disk_stall of int option * int * float
      (** fail-stop server [id]'s WAL device for the duration *)
  | Fsync_delay of int option * int * float
      (** fail-slow: add seconds to every fsync of server [id] *)

type anchor =
  | At of float                   (** absolute virtual time, seconds *)
  | After_phase of string * float (** seconds after the named phase begins *)

type event = {
  anchor : anchor;
  action : action;
}

type t = event list

val parse : string -> (t, string) result
val to_string : t -> string

(** A plan instantiated against one engine + ensemble. *)
type armed

(** [arm engine ensemble plan] schedules every [At] event now and holds
    the [After_phase] events until {!notify_phase} names their phase.
    Equivalent to [arm_shards] with a one-ensemble deployment. *)
val arm : Simkit.Engine.t -> Zk.Ensemble.t -> t -> armed

(** [arm_shards engine ensembles plan] arms the plan against a sharded
    deployment ([ensembles.(s)] is shard [s], e.g.
    {!Zk.Shard_router.ensembles}). Unqualified actions address shard 0;
    an event naming a shard the deployment does not have raises
    [Invalid_argument] at fire time. *)
val arm_shards : Simkit.Engine.t -> Zk.Ensemble.t array -> t -> armed

(** [notify_phase armed name] — a workload phase named [name] is
    starting; its pending events are scheduled at their offsets. Wire
    this to {!Mdtest.Runner.run}'s [?on_phase] via
    {!Mdtest.Runner.phase_to_string}. *)
val notify_phase : armed -> string -> unit

(** Events executed so far. *)
val fired : armed -> int

(** [chaos ~seed ~servers ~start ~heal_at ~events ()] emits a
    seed-deterministic random schedule: [events] faults (partitions,
    loss, extra delay, duplication, crashes, mid-run heals and
    restarts) at sorted random times in [[start, heal_at)], closed by a
    full ["heal"] and ["restart-all"] at [heal_at]. With [shards > 1]
    the network and crash faults are shard-qualified at random. Reorder
    is deliberately excluded (FIFO-link assumption; DESIGN.md §7).
    Identical arguments produce identical plans. *)
val chaos :
  seed:int64 ->
  servers:int ->
  ?shards:int ->
  start:float ->
  heal_at:float ->
  events:int ->
  unit ->
  t
