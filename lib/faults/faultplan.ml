module Engine = Simkit.Engine

type action =
  | Crash of int
  | Restart of int
  | Crash_leader
  | Restart_all_down

type anchor =
  | At of float
  | After_phase of string * float

type event = {
  anchor : anchor;
  action : action;
}

type t = event list

(* {2 Grammar} *)

let action_to_string = function
  | Crash id -> Printf.sprintf "crash=%d" id
  | Restart id -> Printf.sprintf "restart=%d" id
  | Crash_leader -> "crash-leader"
  | Restart_all_down -> "restart-all"

let anchor_to_string = function
  | At time -> Printf.sprintf "%g" time
  | After_phase (phase, offset) -> Printf.sprintf "%s+%g" phase offset

let event_to_string e = action_to_string e.action ^ "@" ^ anchor_to_string e.anchor
let to_string plan = String.concat ";" (List.map event_to_string plan)

let ( let* ) = Result.bind

let parse_action str =
  match str with
  | "crash-leader" -> Ok Crash_leader
  | "restart-all" -> Ok Restart_all_down
  | _ -> (
    match String.index_opt str '=' with
    | None -> Error (Printf.sprintf "unknown action %S" str)
    | Some i -> (
      let verb = String.sub str 0 i in
      let arg = String.sub str (i + 1) (String.length str - i - 1) in
      match verb, int_of_string_opt arg with
      | "crash", Some id when id >= 0 -> Ok (Crash id)
      | "restart", Some id when id >= 0 -> Ok (Restart id)
      | ("crash" | "restart"), _ ->
        Error (Printf.sprintf "bad server id %S" arg)
      | _ -> Error (Printf.sprintf "unknown action %S" str)))

let parse_anchor str =
  match float_of_string_opt str with
  | Some time when time >= 0. -> Ok (At time)
  | Some _ -> Error (Printf.sprintf "negative time %S" str)
  | None -> (
    match String.index_opt str '+' with
    | None ->
      if str = "" then Error "empty anchor" else Ok (After_phase (str, 0.))
    | Some i -> (
      let phase = String.sub str 0 i in
      let offset = String.sub str (i + 1) (String.length str - i - 1) in
      match float_of_string_opt offset with
      | Some off when off >= 0. && phase <> "" -> Ok (After_phase (phase, off))
      | _ -> Error (Printf.sprintf "bad anchor %S" str)))

let parse_event str =
  match String.index_opt str '@' with
  | None -> Error (Printf.sprintf "event %S: expected <action>@<anchor>" str)
  | Some i ->
    let* action = parse_action (String.sub str 0 i) in
    let* anchor = parse_anchor (String.sub str (i + 1) (String.length str - i - 1)) in
    Ok { anchor; action }

let parse s =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | str :: rest ->
      let* event = parse_event (String.trim str) in
      go (event :: acc) rest
  in
  go []
    (List.filter
       (fun str -> String.trim str <> "")
       (String.split_on_char ';' s))

(* {2 Arming a plan against a live ensemble} *)

type armed = {
  engine : Engine.t;
  ensemble : Zk.Ensemble.t;
  (* phase name -> events waiting for that phase to begin *)
  by_phase : (string, (float * action) list) Hashtbl.t;
  mutable fired : int;
}

let perform armed action =
  armed.fired <- armed.fired + 1;
  match action with
  | Crash id -> Zk.Ensemble.crash armed.ensemble id
  | Restart id -> Zk.Ensemble.restart armed.ensemble id
  | Crash_leader -> (
    match Zk.Ensemble.leader_id armed.ensemble with
    | Some id -> Zk.Ensemble.crash armed.ensemble id
    | None -> () (* no leader to kill: the previous one is still down *))
  | Restart_all_down ->
    let alive = Zk.Ensemble.alive_ids armed.ensemble in
    List.iter
      (fun id ->
        if not (List.mem id alive) then Zk.Ensemble.restart armed.ensemble id)
      (Zk.Ensemble.member_ids armed.ensemble)

let arm engine ensemble plan =
  let armed = { engine; ensemble; by_phase = Hashtbl.create 8; fired = 0 } in
  List.iter
    (fun { anchor; action } ->
      match anchor with
      | At time ->
        let delay = Float.max 0. (time -. Engine.now engine) in
        Engine.schedule engine ~delay (fun () -> perform armed action)
      | After_phase (phase, offset) ->
        let waiting =
          Option.value ~default:[] (Hashtbl.find_opt armed.by_phase phase)
        in
        Hashtbl.replace armed.by_phase phase (waiting @ [ (offset, action) ]))
    plan;
  armed

let notify_phase armed phase =
  match Hashtbl.find_opt armed.by_phase phase with
  | None -> ()
  | Some events ->
    Hashtbl.remove armed.by_phase phase;
    List.iter
      (fun (offset, action) ->
        Engine.schedule armed.engine ~delay:offset (fun () -> perform armed action))
      events

let fired armed = armed.fired
