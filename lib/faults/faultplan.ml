module Engine = Simkit.Engine

type action =
  | Crash of int
  | Restart of int
  | Crash_leader
  | Restart_all_down
  | Crash_on of int * int
  | Restart_on of int * int
  | Crash_leader_of of int

type anchor =
  | At of float
  | After_phase of string * float

type event = {
  anchor : anchor;
  action : action;
}

type t = event list

(* {2 Grammar} *)

let action_to_string = function
  | Crash id -> Printf.sprintf "crash=%d" id
  | Restart id -> Printf.sprintf "restart=%d" id
  | Crash_leader -> "crash-leader"
  | Restart_all_down -> "restart-all"
  | Crash_on (shard, id) -> Printf.sprintf "crash=%d/%d" shard id
  | Restart_on (shard, id) -> Printf.sprintf "restart=%d/%d" shard id
  | Crash_leader_of shard -> Printf.sprintf "crash-leader@shard=%d" shard

let anchor_to_string = function
  | At time -> Printf.sprintf "%g" time
  | After_phase (phase, offset) -> Printf.sprintf "%s+%g" phase offset

let event_to_string e = action_to_string e.action ^ "@" ^ anchor_to_string e.anchor
let to_string plan = String.concat ";" (List.map event_to_string plan)

let ( let* ) = Result.bind

let parse_action str =
  match str with
  | "crash-leader" -> Ok Crash_leader
  | "restart-all" -> Ok Restart_all_down
  | _ -> (
    match String.index_opt str '=' with
    | None -> Error (Printf.sprintf "unknown action %S" str)
    | Some i -> (
      let verb = String.sub str 0 i in
      let arg = String.sub str (i + 1) (String.length str - i - 1) in
      (* a "<shard>/<id>" argument targets one shard of a sharded
         deployment; a bare "<id>" keeps the single-ensemble meaning *)
      let target =
        match String.index_opt arg '/' with
        | None -> Option.map (fun id -> (None, id)) (int_of_string_opt arg)
        | Some j -> (
          let shard = String.sub arg 0 j
          and id = String.sub arg (j + 1) (String.length arg - j - 1) in
          match (int_of_string_opt shard, int_of_string_opt id) with
          | Some s, Some id -> Some (Some s, id)
          | _ -> None)
      in
      match verb, target with
      | "crash", Some (None, id) when id >= 0 -> Ok (Crash id)
      | "restart", Some (None, id) when id >= 0 -> Ok (Restart id)
      | "crash", Some (Some s, id) when s >= 0 && id >= 0 -> Ok (Crash_on (s, id))
      | "restart", Some (Some s, id) when s >= 0 && id >= 0 ->
        Ok (Restart_on (s, id))
      | ("crash" | "restart"), _ ->
        Error (Printf.sprintf "bad server id %S" arg)
      | "crash-leader@shard", Some (None, s) when s >= 0 ->
        Ok (Crash_leader_of s)
      | _ -> Error (Printf.sprintf "unknown action %S" str)))

let parse_anchor str =
  match float_of_string_opt str with
  | Some time when time >= 0. -> Ok (At time)
  | Some _ -> Error (Printf.sprintf "negative time %S" str)
  | None -> (
    match String.index_opt str '+' with
    | None ->
      if str = "" then Error "empty anchor" else Ok (After_phase (str, 0.))
    | Some i -> (
      let phase = String.sub str 0 i in
      let offset = String.sub str (i + 1) (String.length str - i - 1) in
      match float_of_string_opt offset with
      | Some off when off >= 0. && phase <> "" -> Ok (After_phase (phase, off))
      | _ -> Error (Printf.sprintf "bad anchor %S" str)))

let parse_event str =
  (* the anchor follows the LAST '@': anchors never contain one, while
     the sharded action "crash-leader@shard=<k>" does *)
  match String.rindex_opt str '@' with
  | None -> Error (Printf.sprintf "event %S: expected <action>@<anchor>" str)
  | Some i ->
    let* action = parse_action (String.sub str 0 i) in
    let* anchor = parse_anchor (String.sub str (i + 1) (String.length str - i - 1)) in
    Ok { anchor; action }

let parse s =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | str :: rest ->
      let* event = parse_event (String.trim str) in
      go (event :: acc) rest
  in
  go []
    (List.filter
       (fun str -> String.trim str <> "")
       (String.split_on_char ';' s))

(* {2 Arming a plan against a live ensemble} *)

type armed = {
  engine : Engine.t;
  (* shard 0 is the whole deployment for single-ensemble plans *)
  ensembles : Zk.Ensemble.t array;
  (* phase name -> events waiting for that phase to begin *)
  by_phase : (string, (float * action) list) Hashtbl.t;
  mutable fired : int;
}

let crash_leader_of ensemble =
  match Zk.Ensemble.leader_id ensemble with
  | Some id -> Zk.Ensemble.crash ensemble id
  | None -> () (* no leader to kill: the previous one is still down *)

let restart_down ensemble =
  let alive = Zk.Ensemble.alive_ids ensemble in
  List.iter
    (fun id -> if not (List.mem id alive) then Zk.Ensemble.restart ensemble id)
    (Zk.Ensemble.member_ids ensemble)

(* A shard index beyond the deployment is a plan/deployment mismatch:
   ignoring it would silently weaken the schedule under test. *)
let shard armed s =
  if s < 0 || s >= Array.length armed.ensembles then
    invalid_arg (Printf.sprintf "Faultplan: no shard %d in this deployment" s)
  else armed.ensembles.(s)

let perform armed action =
  armed.fired <- armed.fired + 1;
  match action with
  | Crash id -> Zk.Ensemble.crash armed.ensembles.(0) id
  | Restart id -> Zk.Ensemble.restart armed.ensembles.(0) id
  | Crash_leader -> crash_leader_of armed.ensembles.(0)
  | Crash_on (s, id) -> Zk.Ensemble.crash (shard armed s) id
  | Restart_on (s, id) -> Zk.Ensemble.restart (shard armed s) id
  | Crash_leader_of s -> crash_leader_of (shard armed s)
  | Restart_all_down -> Array.iter restart_down armed.ensembles

let arm_shards engine ensembles plan =
  if Array.length ensembles = 0 then invalid_arg "Faultplan.arm_shards: no shards";
  let armed = { engine; ensembles; by_phase = Hashtbl.create 8; fired = 0 } in
  List.iter
    (fun { anchor; action } ->
      match anchor with
      | At time ->
        let delay = Float.max 0. (time -. Engine.now engine) in
        Engine.schedule engine ~delay (fun () -> perform armed action)
      | After_phase (phase, offset) ->
        let waiting =
          Option.value ~default:[] (Hashtbl.find_opt armed.by_phase phase)
        in
        Hashtbl.replace armed.by_phase phase (waiting @ [ (offset, action) ]))
    plan;
  armed

let arm engine ensemble plan = arm_shards engine [| ensemble |] plan

let notify_phase armed phase =
  match Hashtbl.find_opt armed.by_phase phase with
  | None -> ()
  | Some events ->
    Hashtbl.remove armed.by_phase phase;
    List.iter
      (fun (offset, action) ->
        Engine.schedule armed.engine ~delay:offset (fun () -> perform armed action))
      events

let fired armed = armed.fired
