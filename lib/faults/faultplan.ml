module Engine = Simkit.Engine

type action =
  | Crash of int
  | Restart of int
  | Crash_leader
  | Restart_all_down
  | Crash_on of int * int
  | Restart_on of int * int
  | Crash_leader_of of int
  (* network faults; the shard option is None for "shard 0" (i.e. the
     whole deployment when unsharded), mirroring the crash actions *)
  | Partition of int option * int list list
  | Heal of int option  (* None heals every shard's network *)
  | Drop of int option * float
  | Delay of int option * float
  | Duplicate of int option * float
  | Reorder of int option * float * float  (* probability, window seconds *)
  (* storage faults: one member's WAL device or media, shard-qualified
     like the crash actions (None = shard 0) *)
  | Torn_tail of int option * int
  | Corrupt_wal of int option * int * float  (* fraction of records *)
  | Corrupt_snap of int option * int
  | Disk_stall of int option * int * float  (* fail-stop, seconds *)
  | Fsync_delay of int option * int * float  (* fail-slow, seconds *)

type anchor =
  | At of float
  | After_phase of string * float

type event = {
  anchor : anchor;
  action : action;
}

type t = event list

(* {2 Grammar} *)

let shard_prefix = function
  | None -> ""
  | Some s -> Printf.sprintf "%d/" s

let groups_to_string groups =
  String.concat "|"
    (List.map
       (fun g -> String.concat "," (List.map string_of_int g))
       groups)

let action_to_string = function
  | Crash id -> Printf.sprintf "crash=%d" id
  | Restart id -> Printf.sprintf "restart=%d" id
  | Crash_leader -> "crash-leader"
  | Restart_all_down -> "restart-all"
  | Crash_on (shard, id) -> Printf.sprintf "crash=%d/%d" shard id
  | Restart_on (shard, id) -> Printf.sprintf "restart=%d/%d" shard id
  | Crash_leader_of shard -> Printf.sprintf "crash-leader@shard=%d" shard
  | Partition (sh, groups) ->
    Printf.sprintf "partition=%s%s" (shard_prefix sh) (groups_to_string groups)
  | Heal None -> "heal"
  | Heal (Some s) -> Printf.sprintf "heal@shard=%d" s
  | Drop (sh, p) -> Printf.sprintf "drop=%s%g" (shard_prefix sh) p
  | Delay (sh, d) -> Printf.sprintf "delay+=%s%g" (shard_prefix sh) d
  | Duplicate (sh, p) -> Printf.sprintf "dup=%s%g" (shard_prefix sh) p
  | Reorder (sh, p, w) ->
    Printf.sprintf "reorder=%s%g:%g" (shard_prefix sh) p w
  | Torn_tail (sh, id) -> Printf.sprintf "torn-tail=%s%d" (shard_prefix sh) id
  | Corrupt_wal (sh, id, p) ->
    Printf.sprintf "corrupt-wal=%s%d:%g" (shard_prefix sh) id p
  | Corrupt_snap (sh, id) ->
    Printf.sprintf "corrupt-snap=%s%d" (shard_prefix sh) id
  | Disk_stall (sh, id, d) ->
    Printf.sprintf "disk-stall=%s%d:%g" (shard_prefix sh) id d
  | Fsync_delay (sh, id, d) ->
    Printf.sprintf "fsync-delay+=%s%d:%g" (shard_prefix sh) id d

let anchor_to_string = function
  | At time -> Printf.sprintf "%g" time
  | After_phase (phase, offset) -> Printf.sprintf "%s+%g" phase offset

let event_to_string e = action_to_string e.action ^ "@" ^ anchor_to_string e.anchor
let to_string plan = String.concat ";" (List.map event_to_string plan)

let ( let* ) = Result.bind

(* "<shard>/<rest>" splits off an optional shard qualifier; a bare
   argument keeps the single-ensemble (shard 0) meaning. *)
let split_shard arg =
  match String.index_opt arg '/' with
  | None -> Ok (None, arg)
  | Some j -> (
    match int_of_string_opt (String.sub arg 0 j) with
    | Some s when s >= 0 ->
      Ok (Some s, String.sub arg (j + 1) (String.length arg - j - 1))
    | _ -> Error (Printf.sprintf "bad shard qualifier %S" arg))

(* Durations accept "2ms"/"500us"/"2s" suffixes or bare seconds; the
   canonical form printed by [to_string] is bare seconds. *)
let parse_duration str =
  let suffixed suffix scale =
    let sl = String.length suffix and l = String.length str in
    if l > sl && String.sub str (l - sl) sl = suffix then
      Option.map
        (fun v -> v *. scale)
        (float_of_string_opt (String.sub str 0 (l - sl)))
    else None
  in
  match suffixed "us" 1e-6 with
  | Some v -> Some v
  | None -> (
    match suffixed "ms" 1e-3 with
    | Some v -> Some v
    | None -> (
      match float_of_string_opt str with
      | Some v -> Some v
      | None -> suffixed "s" 1.))

let parse_probability str =
  match float_of_string_opt str with
  | Some p when p >= 0. && p <= 1. -> Ok p
  | _ -> Error (Printf.sprintf "bad probability %S" str)

let parse_groups str =
  let parse_group g =
    match String.split_on_char ',' g with
    | [] | [ "" ] -> Error (Printf.sprintf "empty partition group in %S" str)
    | ids ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | id :: rest -> (
          match int_of_string_opt id with
          | Some id when id >= 0 -> go (id :: acc) rest
          | _ -> Error (Printf.sprintf "bad member id %S" id))
      in
      go [] ids
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | g :: rest ->
      let* group = parse_group g in
      go (group :: acc) rest
  in
  match String.split_on_char '|' str with
  | [] | [ "" ] -> Error (Printf.sprintf "empty partition spec %S" str)
  | groups -> go [] groups

let parse_server_id str =
  match int_of_string_opt str with
  | Some id when id >= 0 -> Ok id
  | _ -> Error (Printf.sprintf "bad server id %S" str)

(* "<id>:<value>" — the shared shape of the parameterized storage
   faults (corrupt-wal fraction, disk-stall / fsync-delay+ duration). *)
let split_server_value verb str =
  match String.index_opt str ':' with
  | None -> Error (Printf.sprintf "%s wants <id>:<value>, got %S" verb str)
  | Some j ->
    let* id = parse_server_id (String.sub str 0 j) in
    Ok (id, String.sub str (j + 1) (String.length str - j - 1))

let parse_action str =
  match str with
  | "crash-leader" -> Ok Crash_leader
  | "restart-all" -> Ok Restart_all_down
  | "heal" -> Ok (Heal None)
  | _ -> (
    match String.index_opt str '=' with
    | None -> Error (Printf.sprintf "unknown action %S" str)
    | Some i -> (
      let verb = String.sub str 0 i in
      let arg = String.sub str (i + 1) (String.length str - i - 1) in
      match verb with
      | "crash" | "restart" -> (
        (* a "<shard>/<id>" argument targets one shard of a sharded
           deployment; a bare "<id>" keeps the single-ensemble meaning *)
        let target =
          match String.index_opt arg '/' with
          | None -> Option.map (fun id -> (None, id)) (int_of_string_opt arg)
          | Some j -> (
            let shard = String.sub arg 0 j
            and id = String.sub arg (j + 1) (String.length arg - j - 1) in
            match (int_of_string_opt shard, int_of_string_opt id) with
            | Some s, Some id -> Some (Some s, id)
            | _ -> None)
        in
        match (verb, target) with
        | "crash", Some (None, id) when id >= 0 -> Ok (Crash id)
        | "restart", Some (None, id) when id >= 0 -> Ok (Restart id)
        | "crash", Some (Some s, id) when s >= 0 && id >= 0 ->
          Ok (Crash_on (s, id))
        | "restart", Some (Some s, id) when s >= 0 && id >= 0 ->
          Ok (Restart_on (s, id))
        | _ -> Error (Printf.sprintf "bad server id %S" arg))
      | "crash-leader@shard" -> (
        match int_of_string_opt arg with
        | Some s when s >= 0 -> Ok (Crash_leader_of s)
        | _ -> Error (Printf.sprintf "bad shard %S" arg))
      | "heal@shard" -> (
        match int_of_string_opt arg with
        | Some s when s >= 0 -> Ok (Heal (Some s))
        | _ -> Error (Printf.sprintf "bad shard %S" arg))
      | "partition" ->
        let* sh, rest = split_shard arg in
        let* groups = parse_groups rest in
        Ok (Partition (sh, groups))
      | "drop" ->
        let* sh, rest = split_shard arg in
        let* p = parse_probability rest in
        Ok (Drop (sh, p))
      | "dup" ->
        let* sh, rest = split_shard arg in
        let* p = parse_probability rest in
        Ok (Duplicate (sh, p))
      | "delay+" -> (
        let* sh, rest = split_shard arg in
        match parse_duration rest with
        | Some d when d >= 0. -> Ok (Delay (sh, d))
        | _ -> Error (Printf.sprintf "bad delay %S" arg))
      | "reorder" -> (
        let* sh, rest = split_shard arg in
        match String.index_opt rest ':' with
        | None -> Error (Printf.sprintf "reorder wants <p>:<window>, got %S" arg)
        | Some j -> (
          let* p = parse_probability (String.sub rest 0 j) in
          match
            parse_duration (String.sub rest (j + 1) (String.length rest - j - 1))
          with
          | Some w when w >= 0. -> Ok (Reorder (sh, p, w))
          | _ -> Error (Printf.sprintf "bad reorder window %S" arg)))
      | "torn-tail" ->
        let* sh, rest = split_shard arg in
        let* id = parse_server_id rest in
        Ok (Torn_tail (sh, id))
      | "corrupt-snap" ->
        let* sh, rest = split_shard arg in
        let* id = parse_server_id rest in
        Ok (Corrupt_snap (sh, id))
      | "corrupt-wal" ->
        let* sh, rest = split_shard arg in
        let* id, value = split_server_value verb rest in
        let* p = parse_probability value in
        Ok (Corrupt_wal (sh, id, p))
      | "disk-stall" -> (
        let* sh, rest = split_shard arg in
        let* id, value = split_server_value verb rest in
        match parse_duration value with
        | Some d when d >= 0. -> Ok (Disk_stall (sh, id, d))
        | _ -> Error (Printf.sprintf "bad stall duration %S" arg))
      | "fsync-delay+" -> (
        let* sh, rest = split_shard arg in
        let* id, value = split_server_value verb rest in
        match parse_duration value with
        | Some d when d >= 0. -> Ok (Fsync_delay (sh, id, d))
        | _ -> Error (Printf.sprintf "bad fsync delay %S" arg))
      | _ -> Error (Printf.sprintf "unknown action %S" str)))

let parse_anchor str =
  match float_of_string_opt str with
  | Some time when time >= 0. -> Ok (At time)
  | Some _ -> Error (Printf.sprintf "negative time %S" str)
  | None -> (
    match String.index_opt str '+' with
    | None ->
      if str = "" then Error "empty anchor" else Ok (After_phase (str, 0.))
    | Some i -> (
      let phase = String.sub str 0 i in
      let offset = String.sub str (i + 1) (String.length str - i - 1) in
      match float_of_string_opt offset with
      | Some off when off >= 0. && phase <> "" -> Ok (After_phase (phase, off))
      | _ -> Error (Printf.sprintf "bad anchor %S" str)))

let parse_event str =
  (* the anchor follows the LAST '@': anchors never contain one, while
     the sharded action "crash-leader@shard=<k>" does *)
  match String.rindex_opt str '@' with
  | None -> Error (Printf.sprintf "event %S: expected <action>@<anchor>" str)
  | Some i ->
    let* action = parse_action (String.sub str 0 i) in
    let* anchor = parse_anchor (String.sub str (i + 1) (String.length str - i - 1)) in
    Ok { anchor; action }

let parse s =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | str :: rest ->
      let* event = parse_event (String.trim str) in
      go (event :: acc) rest
  in
  go []
    (List.filter
       (fun str -> String.trim str <> "")
       (String.split_on_char ';' s))

(* {2 Arming a plan against a live ensemble} *)

type armed = {
  engine : Engine.t;
  (* shard 0 is the whole deployment for single-ensemble plans *)
  ensembles : Zk.Ensemble.t array;
  (* phase name -> events waiting for that phase to begin *)
  by_phase : (string, (float * action) list) Hashtbl.t;
  mutable fired : int;
}

let crash_leader_of ensemble =
  match Zk.Ensemble.leader_id ensemble with
  | Some id -> Zk.Ensemble.crash ensemble id
  | None -> () (* no leader to kill: the previous one is still down *)

let restart_down ensemble =
  let alive = Zk.Ensemble.alive_ids ensemble in
  List.iter
    (fun id -> if not (List.mem id alive) then Zk.Ensemble.restart ensemble id)
    (Zk.Ensemble.member_ids ensemble)

(* A shard index beyond the deployment is a plan/deployment mismatch:
   ignoring it would silently weaken the schedule under test. *)
let shard armed s =
  if s < 0 || s >= Array.length armed.ensembles then
    invalid_arg (Printf.sprintf "Faultplan: no shard %d in this deployment" s)
  else armed.ensembles.(s)

(* [heal] at plan level means "give the network back": partitions and
   one-way blocks go, and every probabilistic knob returns to zero — so
   a chaos schedule's closing heal leaves a clean network for recovery
   measurement. *)
let heal_ensemble e =
  Zk.Ensemble.heal e;
  Zk.Ensemble.set_drop e 0.;
  Zk.Ensemble.set_extra_delay e 0.;
  Zk.Ensemble.set_duplicate e 0.;
  Zk.Ensemble.set_reorder e ~p:0. ~window:0.

let shard_opt armed = function
  | None -> armed.ensembles.(0)
  | Some s -> shard armed s

let perform armed action =
  armed.fired <- armed.fired + 1;
  match action with
  | Crash id -> Zk.Ensemble.crash armed.ensembles.(0) id
  | Restart id -> Zk.Ensemble.restart armed.ensembles.(0) id
  | Crash_leader -> crash_leader_of armed.ensembles.(0)
  | Crash_on (s, id) -> Zk.Ensemble.crash (shard armed s) id
  | Restart_on (s, id) -> Zk.Ensemble.restart (shard armed s) id
  | Crash_leader_of s -> crash_leader_of (shard armed s)
  | Restart_all_down -> Array.iter restart_down armed.ensembles
  | Partition (sh, groups) -> Zk.Ensemble.partition (shard_opt armed sh) groups
  | Heal None -> Array.iter heal_ensemble armed.ensembles
  | Heal (Some s) -> heal_ensemble (shard armed s)
  | Drop (sh, p) -> Zk.Ensemble.set_drop (shard_opt armed sh) p
  | Delay (sh, d) -> Zk.Ensemble.set_extra_delay (shard_opt armed sh) d
  | Duplicate (sh, p) -> Zk.Ensemble.set_duplicate (shard_opt armed sh) p
  | Reorder (sh, p, w) -> Zk.Ensemble.set_reorder (shard_opt armed sh) ~p ~window:w
  | Torn_tail (sh, id) -> Zk.Ensemble.tear_wal_tail (shard_opt armed sh) id
  | Corrupt_wal (sh, id, p) ->
    Zk.Ensemble.corrupt_wal (shard_opt armed sh) id ~fraction:p
  | Corrupt_snap (sh, id) -> Zk.Ensemble.corrupt_snapshot (shard_opt armed sh) id
  | Disk_stall (sh, id, d) ->
    Zk.Ensemble.disk_stall (shard_opt armed sh) id ~duration:d
  | Fsync_delay (sh, id, d) ->
    Zk.Ensemble.add_fsync_delay (shard_opt armed sh) id d

let arm_shards engine ensembles plan =
  if Array.length ensembles = 0 then invalid_arg "Faultplan.arm_shards: no shards";
  let armed = { engine; ensembles; by_phase = Hashtbl.create 8; fired = 0 } in
  List.iter
    (fun { anchor; action } ->
      match anchor with
      | At time ->
        let delay = Float.max 0. (time -. Engine.now engine) in
        Engine.schedule engine ~delay (fun () -> perform armed action)
      | After_phase (phase, offset) ->
        let waiting =
          Option.value ~default:[] (Hashtbl.find_opt armed.by_phase phase)
        in
        Hashtbl.replace armed.by_phase phase (waiting @ [ (offset, action) ]))
    plan;
  armed

let arm engine ensemble plan = arm_shards engine [| ensemble |] plan

let notify_phase armed phase =
  match Hashtbl.find_opt armed.by_phase phase with
  | None -> ()
  | Some events ->
    Hashtbl.remove armed.by_phase phase;
    List.iter
      (fun (offset, action) ->
        Engine.schedule armed.engine ~delay:offset (fun () -> perform armed action))
      events

let fired armed = armed.fired

(* {2 Chaos schedules} *)

(* Seed-deterministic random plans: partitions, loss, delay, duplication
   and crashes at sorted random times inside [start, heal_at), closed by
   a full heal plus restart-all at [heal_at] so every schedule ends with
   the network given back and recovery measurable. Reorder is left out
   on purpose: the protocol assumes FIFO links for reply routing, and a
   chaos schedule must only exercise faults the protocol claims to
   survive (DESIGN.md §7). *)
let chaos ~seed ~servers ?(shards = 1) ~start ~heal_at ~events () =
  if servers < 1 then invalid_arg "Faultplan.chaos: servers < 1";
  if shards < 1 then invalid_arg "Faultplan.chaos: shards < 1";
  if not (start >= 0. && heal_at > start) then
    invalid_arg "Faultplan.chaos: bad fault window";
  if events < 0 then invalid_arg "Faultplan.chaos: events < 0";
  let rng = Simkit.Rng.create ~seed in
  let sh () = if shards = 1 then None else Some (Simkit.Rng.int rng shards) in
  let random_split () =
    (* a random nonempty strict subset cut off from the rest (the
       unnamed members form the implicit other side) *)
    let ids = Array.init servers Fun.id in
    Simkit.Rng.shuffle rng ids;
    let k = 1 + Simkit.Rng.int rng (max 1 (servers - 1)) in
    [ Array.to_list (Array.sub ids 0 (min k (servers - 1))) ]
  in
  let random_action () =
    match Simkit.Rng.int rng 100 with
    | n when n < 28 -> Partition (sh (), random_split ())
    | n when n < 44 -> Drop (sh (), 0.01 +. (Simkit.Rng.float rng *. 0.09))
    | n when n < 58 -> Delay (sh (), 2e-4 +. (Simkit.Rng.float rng *. 1.8e-3))
    | n when n < 68 -> Duplicate (sh (), 0.01 +. (Simkit.Rng.float rng *. 0.04))
    | n when n < 78 -> (
      match sh () with None -> Crash_leader | Some s -> Crash_leader_of s)
    | n when n < 88 -> (
      let id = Simkit.Rng.int rng servers in
      match sh () with None -> Crash id | Some s -> Crash_on (s, id))
    | n when n < 94 -> Heal (sh ())
    | _ -> Restart_all_down
  in
  (* explicit loops: the draw order must not depend on unspecified
     evaluation order, or the same seed could yield different plans *)
  let times = Array.make events 0. in
  for i = 0 to events - 1 do
    times.(i) <- Simkit.Rng.uniform rng ~lo:start ~hi:heal_at
  done;
  Array.sort compare times;
  let body = ref [] in
  for i = 0 to events - 1 do
    body := { anchor = At times.(i); action = random_action () } :: !body
  done;
  List.rev !body
  @ [ { anchor = At heal_at; action = Heal None };
      { anchor = At heal_at; action = Restart_all_down } ]
