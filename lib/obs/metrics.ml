module Stat = Simkit.Stat

module Gauge = struct
  type t = { mutable value : float }

  let create () = { value = 0. }
  let set t v = t.value <- v
  let add t v = t.value <- t.value +. v
  let value t = t.value
end

type metric =
  | Counter of Stat.Counter.t
  | Gauge of Gauge.t
  | Summary of Stat.Summary.t
  | Histogram of Stat.Histogram.t

type t = {
  table : (string, metric) Hashtbl.t;
  (* registration order, so snapshots are stable across runs *)
  mutable order : string list;
}

let create () = { table = Hashtbl.create 64; order = [] }

let register t name metric =
  Hashtbl.replace t.table name metric;
  t.order <- name :: t.order

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Summary _ -> "summary"
  | Histogram _ -> "histogram"

let get_or_create t name ~make ~cast =
  match Hashtbl.find_opt t.table name with
  | Some m -> (
    match cast m with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf "Metrics: %S already registered as a %s" name (kind_name m)))
  | None ->
    let v, m = make () in
    register t name m;
    v

let counter t name =
  get_or_create t name
    ~make:(fun () ->
      let c = Stat.Counter.create () in
      (c, Counter c))
    ~cast:(function Counter c -> Some c | _ -> None)

let gauge t name =
  get_or_create t name
    ~make:(fun () ->
      let g = Gauge.create () in
      (g, Gauge g))
    ~cast:(function Gauge g -> Some g | _ -> None)

let summary t name =
  get_or_create t name
    ~make:(fun () ->
      let s = Stat.Summary.create () in
      (s, Summary s))
    ~cast:(function Summary s -> Some s | _ -> None)

(* Default span: 100 ns .. 100 s, ~7% relative bucket resolution. *)
let histogram ?(lo = 1e-7) ?(hi = 100.) ?(buckets = 300) t name =
  get_or_create t name
    ~make:(fun () ->
      let h = Stat.Histogram.create ~lo ~hi ~buckets () in
      (h, Histogram h))
    ~cast:(function Histogram h -> Some h | _ -> None)

let names t = List.rev t.order
let find t name = Hashtbl.find_opt t.table name

let summary_opt t name =
  match find t name with Some (Summary s) -> Some s | _ -> None

let histogram_opt t name =
  match find t name with Some (Histogram h) -> Some h | _ -> None

(* {2 The single snapshot-to-JSON path}

   Every number passes through [num], which refuses to emit NaN or
   infinities — a snapshot is either honest JSON or an error, never
   silently poisoned. Empty summaries/histograms omit their extrema and
   quantiles entirely rather than writing 0.0. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let num name v =
  if Float.is_finite v then Printf.sprintf "%.9g" v
  else invalid_arg (Printf.sprintf "Metrics.to_json: %s is not finite" name)

let fields_of name = function
  | Counter c -> [ ("kind", "\"counter\""); ("value", string_of_int (Stat.Counter.value c)) ]
  | Gauge g -> [ ("kind", "\"gauge\""); ("value", num name (Gauge.value g)) ]
  | Summary s ->
    [ ("kind", "\"summary\""); ("count", string_of_int (Stat.Summary.count s)) ]
    @ (if Stat.Summary.count s = 0 then []
       else
         [ ("mean", num name (Stat.Summary.mean s));
           ("stddev", num name (Stat.Summary.stddev s)) ]
         @ (match Stat.Summary.min s with
            | Some v -> [ ("min", num name v) ]
            | None -> [])
         @ (match Stat.Summary.max s with
            | Some v -> [ ("max", num name v) ]
            | None -> []))
  | Histogram h ->
    [ ("kind", "\"histogram\"");
      ("count", string_of_int (Stat.Histogram.count h));
      ("overflow", string_of_int (Stat.Histogram.overflow h)) ]
    @ (if Stat.Histogram.count h = 0 then []
       else
         [ ("p50", num name (Stat.Histogram.quantile h 0.5));
           ("p95", num name (Stat.Histogram.quantile h 0.95));
           ("p99", num name (Stat.Histogram.quantile h 0.99)) ]
         @
         match Stat.Histogram.max_seen h with
         | Some v -> [ ("max", num name v) ]
         | None -> [])

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  let names = names t in
  List.iteri
    (fun i name ->
      let metric = Hashtbl.find t.table name in
      Buffer.add_string buf (Printf.sprintf "  \"%s\": {" (json_escape name));
      List.iteri
        (fun j (k, v) ->
          if j > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf (Printf.sprintf "\"%s\": %s" k v))
        (fields_of name metric);
      Buffer.add_string buf "}";
      if i < List.length names - 1 then Buffer.add_string buf ",";
      Buffer.add_string buf "\n")
    names;
  Buffer.add_string buf "}";
  Buffer.contents buf
