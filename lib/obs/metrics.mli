(** Named metric registry: counters, gauges, summaries and latency
    histograms, get-or-created by name, with a single snapshot-to-JSON
    path shared by every reporter.

    All instruments are plain mutable accumulators from {!Simkit.Stat}:
    recording never allocates beyond the instrument itself and never
    touches the simulation engine, so instrumented runs stay
    deterministic. *)

module Gauge : sig
  type t

  val create : unit -> t
  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
end

type t

val create : unit -> t

(** Get-or-create by name. @raise Invalid_argument if [name] is already
    registered as a different instrument kind. *)
val counter : t -> string -> Simkit.Stat.Counter.t

val gauge : t -> string -> Gauge.t
val summary : t -> string -> Simkit.Stat.Summary.t

(** Log-scale histogram, 100 ns .. 100 s by default. *)
val histogram :
  ?lo:float -> ?hi:float -> ?buckets:int -> t -> string -> Simkit.Stat.Histogram.t

(** Registered names, in registration order. *)
val names : t -> string list

(** Lookup without creating. *)
val summary_opt : t -> string -> Simkit.Stat.Summary.t option

val histogram_opt : t -> string -> Simkit.Stat.Histogram.t option

(** Snapshot every instrument as one JSON object keyed by metric name.
    Empty summaries/histograms omit min/max/quantiles (no fake zeros);
    non-finite values raise rather than emitting invalid JSON.
    @raise Invalid_argument on NaN/infinite values. *)
val to_json : t -> string
