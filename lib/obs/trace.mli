(** Lightweight span tracing over a {!Metrics} registry.

    Default-off and cheap when off: a disabled trace records nothing and
    allocates nothing per event. Recording is pure accumulator
    bookkeeping — it never schedules events or advances the virtual
    clock, so a traced run and an untraced run of the same workload
    produce identical simulated timelines. *)

type t

(** A fresh, disabled trace with its own metrics registry. *)
val create : unit -> t

(** The shared always-off sink, for components built without a trace. *)
val null : t

(** @raise Invalid_argument on {!null}. *)
val enable : t -> unit

val disable : t -> unit
val enabled : t -> bool
val metrics : t -> Metrics.t

(** [record_span t name dur] records one completed span: [name] holds
    the latency histogram, [name ^ ".sum"] the exact online summary. *)
val record_span : t -> string -> float -> unit

(** Scalar observation (queue depth, batch size, ...): summary only. *)
val observe : t -> string -> float -> unit

(** {2 Reading spans back} *)

val span_count : t -> string -> int

(** Exact mean from the [.sum] summary; [None] if absent or empty. *)
val span_mean : t -> string -> float option

val span_max : t -> string -> float option

(** Bucketed quantile from the histogram; [None] if absent or empty. *)
val span_quantile : t -> string -> float -> float option

(** {2 Write-path span context}

    One [wspan] travels with a coordination write. The client stamps the
    send time, the leader stamps batch start / persist share / proposal
    fan-out / quorum commit, and the client calls {!finish_write} when
    the reply lands, folding the stamps into the five quorum phases
    (queue-wait, propose, persist, ack, commit) plus the op total. The
    stamps tile the op's timeline, so the phase durations sum to the
    measured op latency by construction. *)

type wspan = {
  mutable w_sent : float;
  mutable w_batch : float;
  mutable w_persist : float;  (** duration, not a stamp *)
  mutable w_proposed : float;
  mutable w_quorum : float;
}

(** The shared dummy carried by untraced writes; stamps on it are never
    read back. *)
val no_wspan : wspan

(** Fresh span stamped with [w_sent = now] when the trace is enabled;
    {!no_wspan} otherwise (no allocation). *)
val wspan : t -> now:float -> wspan

val is_real : wspan -> bool

(** The five quorum phases, in timeline order. *)
val phases : string list

(** [finish_write t ~op w ~now] records [zk.<op>.total] and the five
    [zk.<op>.<phase>] spans. Skips silently when the trace is off or the
    span is missing stamps / non-monotone (e.g. a retried write). *)
val finish_write : t -> op:string -> wspan -> now:float -> unit
