module Stat = Simkit.Stat

(* A trace is a metrics registry plus an on/off switch. Everything is
   default-off: a disabled trace records nothing, allocates nothing per
   event, and never touches the virtual clock — so traced and untraced
   runs replay the exact same event sequence. *)

type t = {
  mutable on : bool;
  metrics : Metrics.t;
}

let create () = { on = false; metrics = Metrics.create () }

(* The shared sink for components built without a trace: permanently off. *)
let null = create ()

let enable t =
  if t == null then invalid_arg "Trace.enable: the null trace stays off";
  t.on <- true

let disable t = t.on <- false
let enabled t = t.on
let metrics t = t.metrics

(* Span durations live under two instruments: [<name>] is the latency
   histogram (p50/p95/p99, overflow-honest max) and [<name>.sum] the
   exact online summary (mean for critical-path accounting). *)

let record_span t name dur =
  if t.on then begin
    Stat.Histogram.add (Metrics.histogram t.metrics name) dur;
    Stat.Summary.add (Metrics.summary t.metrics (name ^ ".sum")) dur
  end

(* Scalar observation (queue depth, batch size): summary only. *)
let observe t name v =
  if t.on then Stat.Summary.add (Metrics.summary t.metrics name) v

let span_count t name =
  match Metrics.histogram_opt t.metrics name with
  | Some h -> Stat.Histogram.count h
  | None -> 0

let span_mean t name =
  match Metrics.summary_opt t.metrics (name ^ ".sum") with
  | Some s when Stat.Summary.count s > 0 -> Some (Stat.Summary.mean s)
  | Some _ | None -> None

let span_max t name =
  match Metrics.summary_opt t.metrics (name ^ ".sum") with
  | Some s -> Stat.Summary.max s
  | None -> None

let span_quantile t name q =
  match Metrics.histogram_opt t.metrics name with
  | Some h when Stat.Histogram.count h > 0 -> Some (Stat.Histogram.quantile h q)
  | Some _ | None -> None

(* {2 Write-path span context}

   One [wspan] rides along a coordination write; the layers it crosses
   stamp it (client send, leader batch start, proposal fan-out, quorum
   commit) and the client folds the stamps into the five quorum phases
   when the reply lands. The stamps tile the op's timeline exactly, so
   phase durations sum to the measured op latency by construction. *)

type wspan = {
  mutable w_sent : float;      (* client handed the write to the wire *)
  mutable w_batch : float;     (* leader started processing its batch *)
  mutable w_persist : float;   (* persist share of the batch sleep (duration) *)
  mutable w_proposed : float;  (* proposals handed to the follower fan-out *)
  mutable w_quorum : float;    (* quorum reached, txn applied *)
}

let unstamped = Float.neg_infinity

(* Shared dummy carried by untraced writes: never read back. *)
let no_wspan =
  { w_sent = unstamped;
    w_batch = unstamped;
    w_persist = 0.;
    w_proposed = unstamped;
    w_quorum = unstamped }

let wspan t ~now =
  if t.on then
    { w_sent = now;
      w_batch = unstamped;
      w_persist = 0.;
      w_proposed = unstamped;
      w_quorum = unstamped }
  else no_wspan

let is_real w = w != no_wspan

let phases = [ "queue-wait"; "propose"; "persist"; "ack"; "commit" ]

let finish_write t ~op w ~now =
  if
    t.on && is_real w
    (* every stamp present and monotone; a retry or fail-over can leave a
       span half-stamped, and a half-stamped span is not honest data *)
    && w.w_sent >= 0.
    && w.w_batch >= w.w_sent
    && w.w_proposed >= w.w_batch +. w.w_persist
    && w.w_quorum >= w.w_proposed
    && now >= w.w_quorum
  then begin
    let base = "zk." ^ op in
    record_span t (base ^ ".total") (now -. w.w_sent);
    record_span t (base ^ ".queue-wait") (w.w_batch -. w.w_sent);
    record_span t (base ^ ".propose") (w.w_proposed -. w.w_batch -. w.w_persist);
    record_span t (base ^ ".persist") w.w_persist;
    record_span t (base ^ ".ack") (w.w_quorum -. w.w_proposed);
    record_span t (base ^ ".commit") (now -. w.w_quorum)
  end
