(* Online resharding: the live split/merge state machine. Immediate-mode
   tests pin the migration mechanics (remainder-only moves, exact znode
   census through split and merge, stub promotion/demotion, ephemeral
   flattening); simulation tests pin what clients are allowed to observe
   — a session holding warm cache state (Watches and Leases modes alike)
   over a directory that migrates mid-lease must not serve stale local
   reads after the flip, and traffic flowing through the migration
   window stays linearizable under the history checker. *)

module Engine = Simkit.Engine
module Process = Simkit.Process
module Router = Zk.Shard_router
module Reshard = Zk.Reshard
module Ensemble = Zk.Ensemble
module Zk_client = Zk.Zk_client
module Zerror = Zk.Zerror
module Cache = Dufs.Cache

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let ok label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" label (Zerror.to_string e)

let get_data label h path = fst (ok label (h.Zk_client.get path))

(* {2 Immediate-mode mechanics} *)

let dirs = 24
let files = 4

let build_namespace h =
  for d = 0 to dirs - 1 do
    let dir = Printf.sprintf "/d%02d" d in
    ignore (ok "mkdir" (h.Zk_client.create dir ~data:("meta-" ^ dir)));
    for f = 0 to files - 1 do
      let p = Printf.sprintf "%s/f%d" dir f in
      ignore (ok "create" (h.Zk_client.create p ~data:(p ^ "-v0")))
    done
  done

(* Every datum and every listing, via the routed session — the
   client-visible contents, wherever the shards put them. *)
let snapshot h =
  List.concat_map
    (fun d ->
      let dir = Printf.sprintf "/d%02d" d in
      let listing = String.concat "," (ok "children" (h.Zk_client.children dir)) in
      (dir ^ " -> " ^ listing)
      :: (dir ^ " = " ^ get_data "dir data" h dir)
      :: List.init files (fun f ->
             let p = Printf.sprintf "%s/f%d" dir f in
             p ^ " = " ^ get_data "file data" h p))
    (List.init dirs Fun.id)

let test_local_split_and_merge_roundtrip () =
  let t = Router.local ~shards:2 () in
  let h = Router.session t () in
  build_namespace h;
  let population = Router.logical_population t in
  let before = snapshot h in
  let rs = Reshard.split ~drain:0. t ~to_shards:4 () in
  check_int "no per-node errors" 0 rs.Reshard.errors;
  check_bool
    (Printf.sprintf "remainder only: %d of %d keys moved" rs.Reshard.keys_migrated
       rs.Reshard.keys_total)
    true
    (rs.Reshard.keys_migrated > 0 && rs.Reshard.keys_migrated < rs.Reshard.keys_total);
  check_int "placement widened" 4 (Router.placement_shards (Router.placement t));
  check_int "census exact after split" population (Router.logical_population t);
  let loads = Router.placement_loads (Router.placement t) in
  let mx = Array.fold_left max 0 loads and mn = Array.fold_left min max_int loads in
  check_bool "loads rebalanced within one" true (mx - mn <= 1);
  Alcotest.(check (list string)) "split is invisible to readers" before (snapshot h);
  (* new work lands under the new regime and reads back *)
  ignore (ok "post-split mkdir" (h.Zk_client.create "/after" ~data:"a"));
  ignore (ok "post-split create" (h.Zk_client.create "/after/x" ~data:"ax"));
  check_string "post-split read" "ax" (get_data "post" h "/after/x");
  let population4 = Router.logical_population t in
  (* and the whole thing contracts again: backends 2 and 3 drain *)
  let rs2 = Reshard.merge ~drain:0. t ~to_shards:2 () in
  check_int "merge: no per-node errors" 0 rs2.Reshard.errors;
  check_bool "merge moves a remainder" true (rs2.Reshard.keys_migrated > 0);
  check_int "census exact after merge" population4 (Router.logical_population t);
  Alcotest.(check (list string)) "merge is invisible to readers" before (snapshot h);
  check_string "post-split file survives the merge" "ax"
    (get_data "post merge" h "/after/x");
  Array.iteri
    (fun i n ->
      if i >= 2 then
        check_int (Printf.sprintf "drained shard %d holds only its root" i) 1 n)
    (Router.node_counts t)

let test_local_split_flattens_ephemerals () =
  let t = Router.local ~shards:2 () in
  let h = Router.session t () in
  for d = 0 to 15 do
    let dir = Printf.sprintf "/e%02d" d in
    ignore (ok "mkdir" (h.Zk_client.create dir ~data:""));
    ignore (ok "eph" (h.Zk_client.create ~ephemeral:true (dir ^ "/tmp") ~data:"t"))
  done;
  let pl = Router.placement t in
  let root_before = Router.assigned_shard pl "/" in
  let rs = Reshard.split ~drain:0. t ~to_shards:3 () in
  let root_moved = Router.assigned_shard pl "/" <> root_before in
  (* every migrated directory key carried exactly one ephemeral child;
     the root key's children (the directories) are persistent *)
  check_int "each migrated dir flattened its ephemeral"
    (rs.Reshard.keys_migrated - (if root_moved then 1 else 0))
    rs.Reshard.ephemerals_flattened;
  check_bool "flattening is logged, not counted as failure" true
    ((Router.stats t).Router.rollback_failures = 0);
  if rs.Reshard.ephemerals_flattened > 0 then
    check_bool "note taken" true
      ((Router.stats t).Router.orphan_notes_total > 0)

let test_split_rejects_non_growth () =
  let t = Router.local ~shards:2 () in
  (match Reshard.split ~drain:0. t ~to_shards:2 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "split to the same count must be rejected");
  match Reshard.merge ~drain:0. t ~to_shards:2 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "merge to the same count must be rejected"

(* {2 Mid-lease migration must not leave stale caches}

   The regression: a client warms its cache over a directory, the
   directory migrates to another shard, a writer updates it through the
   new owner — and nothing ever invalidates the old entries, because
   the watch/lease state guarding them is parked on the old shard,
   where the write will never arrive. The flip must revoke that state.
   Checked in both coherence modes, with every client-visible read
   recorded in the linearizability history. *)

let cfg ~seed =
  { (Ensemble.default_config ~servers:3) with Ensemble.seed; lease_ttl = 30.0 }

let migration_coherence ~coherence () =
  let engine = Engine.create () in
  let t = Router.start engine ~shards:2 (cfg ~seed:41L) in
  let hist = Zk.History.create engine in
  let done_ = ref false in
  Process.spawn engine (fun () ->
      let writer = Zk.History.wrap hist ~client:0 (Router.session t ()) in
      for d = 0 to 11 do
        let dir = Printf.sprintf "/d%02d" d in
        ignore (ok "mkdir" (writer.Zk_client.create dir ~data:""));
        ignore (ok "seed" (writer.Zk_client.create (dir ^ "/f") ~data:"v0"))
      done;
      ignore (ok "empty dir" (writer.Zk_client.create "/empty" ~data:""));
      let cache =
        Cache.wrap ~coherence
          ~now:(fun () -> Engine.now engine)
          (Router.session t ())
      in
      (* the history sits above the cache, so local serves are checked *)
      let reader = Zk.History.wrap hist ~client:1 (Cache.handle cache) in
      for d = 0 to 11 do
        let dir = Printf.sprintf "/d%02d" d in
        check_string "warm" "v0" (get_data "warm" reader (dir ^ "/f"));
        ignore (ok "warm listing" (reader.Zk_client.children dir))
      done;
      (* a cached empty listing and a cached negative entry *)
      Alcotest.(check (list string)) "empty dir cached" []
        (ok "empty" (reader.Zk_client.children "/empty"));
      (match reader.Zk_client.get "/empty/missing" with
      | Error Zerror.ZNONODE -> ()
      | _ -> Alcotest.fail "expected ZNONODE");
      (* split while every lease / watch above is live *)
      let rs = Reshard.split t ~to_shards:4 () in
      check_int "split: no per-node errors" 0 rs.Reshard.errors;
      check_bool "split moved keys mid-lease" true (rs.Reshard.keys_migrated > 0);
      (* writes land through the new owners *)
      for d = 0 to 11 do
        ok "update" (writer.Zk_client.set (Printf.sprintf "/d%02d/f" d) ~data:"v1")
      done;
      ignore (ok "fill" (writer.Zk_client.create "/empty/missing" ~data:"now"));
      (* no stale local serves: every cached entry must re-fetch *)
      for d = 0 to 11 do
        let dir = Printf.sprintf "/d%02d" d in
        check_string (dir ^ " is fresh after the flip") "v1"
          (get_data "fresh" reader (dir ^ "/f"));
        Alcotest.(check (list string)) (dir ^ " listing fresh") [ "f" ]
          (ok "listing" (reader.Zk_client.children dir))
      done;
      Alcotest.(check (list string)) "cached empty listing refreshed" [ "missing" ]
        (ok "empty after" (reader.Zk_client.children "/empty"));
      (match coherence with
      | Cache.Watches ->
        (* the negative entry's exists-watch on the old owner fired on
           the flip, so the create through the new owner is visible *)
        check_string "negative entry revoked on flip" "now"
          (get_data "negative" reader "/empty/missing")
      | Cache.Leases ->
        (* absent children cannot be enumerated at the flip: lease-mode
           negative entries stay TTL-bounded (DESIGN.md §10) *)
        ());
      done_ := true);
  Engine.run engine;
  check_bool "scenario ran to completion" true !done_;
  let violations = Zk.History.check hist in
  List.iter
    (fun (v : Zk.History.violation) ->
      Printf.printf "RESHARD VIOLATION [%s] %s: %s\n%!" v.Zk.History.v_kind
        v.Zk.History.v_path v.Zk.History.v_detail)
    violations;
  check_int "history clean" 0 (List.length violations);
  check_bool "history non-trivial" true (Zk.History.recorded hist > 50)

let test_mid_lease_migration_watches () = migration_coherence ~coherence:Cache.Watches ()
let test_mid_lease_migration_leases () = migration_coherence ~coherence:Cache.Leases ()

(* {2 Traffic through the migration window}

   Writers and readers keep hammering a directory while its key is
   split away. Ops issued pre-flip route to the old owner, ops issued
   mid-migration park and resume against the new owner; the recorded
   history must stay linearizable and no update may be lost. *)

let test_split_under_live_traffic_history_checked () =
  let engine = Engine.create () in
  let t = Router.start engine ~shards:2 (cfg ~seed:97L) in
  let hist = Zk.History.create engine in
  let writes = 40 and reads = 60 in
  let completed = ref 0 in
  Process.spawn engine (fun () ->
      let h = Zk.History.wrap hist ~client:0 (Router.session t ()) in
      ignore (ok "mk hot" (h.Zk_client.create "/hot" ~data:""));
      ignore (ok "mk f" (h.Zk_client.create "/hot/f" ~data:"w0"));
      (* a few cold dirs so the plan has a real remainder *)
      for d = 0 to 19 do
        ignore (ok "cold" (h.Zk_client.create (Printf.sprintf "/c%02d" d) ~data:""))
      done;
      for i = 1 to writes do
        ok "write" (h.Zk_client.set "/hot/f" ~data:(Printf.sprintf "w%d" i));
        incr completed;
        Process.sleep 0.02
      done);
  Process.spawn engine (fun () ->
      let h = Zk.History.wrap hist ~client:1 (Router.session t ()) in
      Process.sleep 0.05;
      for _ = 1 to reads do
        (match h.Zk_client.get "/hot/f" with
        | Ok _ | Error Zerror.ZNONODE -> ()
        | Error e -> Alcotest.failf "read: %s" (Zerror.to_string e));
        incr completed;
        Process.sleep 0.015
      done);
  let migrated = ref (-1) in
  Process.spawn engine (fun () ->
      Process.sleep 0.2;
      let rs = Reshard.split t ~to_shards:4 () in
      check_int "live split: no per-node errors" 0 rs.Reshard.errors;
      migrated := rs.Reshard.keys_migrated);
  Engine.run engine;
  check_int "all client ops completed" (writes + reads) !completed;
  check_bool "the split migrated keys under load" true (!migrated > 0);
  (* the last write is the value on whatever shard now owns /hot *)
  let final = ref "" in
  Process.spawn engine (fun () ->
      let h = Router.session t () in
      final := get_data "final" h "/hot/f");
  Engine.run engine;
  check_string "no lost update" (Printf.sprintf "w%d" writes) !final;
  let violations = Zk.History.check hist in
  List.iter
    (fun (v : Zk.History.violation) ->
      Printf.printf "LIVE-SPLIT VIOLATION [%s] %s: %s\n%!" v.Zk.History.v_kind
        v.Zk.History.v_path v.Zk.History.v_detail)
    violations;
  check_int "history linearizable through the split" 0 (List.length violations);
  check_bool "history non-trivial" true
    (Zk.History.recorded hist >= writes + reads)

let () =
  Alcotest.run "reshard"
    [ ( "mechanics",
        [ Alcotest.test_case "split and merge roundtrip" `Quick
            test_local_split_and_merge_roundtrip;
          Alcotest.test_case "ephemerals flatten with a note" `Quick
            test_local_split_flattens_ephemerals;
          Alcotest.test_case "direction validated" `Quick test_split_rejects_non_growth ] );
      ( "mid-lease",
        [ Alcotest.test_case "watches mode: no stale serves after flip" `Quick
            test_mid_lease_migration_watches;
          Alcotest.test_case "leases mode: no stale serves after flip" `Quick
            test_mid_lease_migration_leases ] );
      ( "live-traffic",
        [ Alcotest.test_case "linearizable through a live split" `Slow
            test_split_under_live_traffic_history_checked ] ) ]
