(* The pipelined ZAB write path ([max_inflight_batches > 1]): windowed
   proposals with in-order commit, commit-frontier piggybacking,
   overlapped leader persist, adaptive (never-sleeping) group commit,
   the generalized all-stalled-entries repropose repair, and the
   chaos/linearizability gates over all of it. The stop-and-wait
   configuration ([max_inflight_batches = 1]) must stay bit-identical
   to the pre-pipeline protocol — its recorded replays are diffed in
   CI — so several tests pin the legacy path's observable behavior
   too. *)

module Engine = Simkit.Engine
module Process = Simkit.Process
module Ensemble = Zk.Ensemble
module Ztree = Zk.Ztree
module Zerror = Zk.Zerror
module Zk_client = Zk.Zk_client
module Trace = Obs.Trace
module Systems = Scenarios.Systems
module Faultplan = Faults.Faultplan

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let ok_or_fail label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected %s" label (Zerror.to_string e)

let make ?(servers = 5) ?trace ?(config_adjust = Fun.id) () =
  let engine = Engine.create () in
  let cfg = config_adjust (Ensemble.default_config ~servers) in
  (engine, Ensemble.start ?trace engine cfg)

let windowed ?(window = 4) ?(max_batch = 8) c =
  { c with Ensemble.max_batch; max_inflight_batches = window }

let all_trees_agree ensemble ~servers =
  let reference = Ensemble.tree_of ensemble 0 in
  let rec go i =
    i >= servers
    || (Ztree.equal_state reference (Ensemble.tree_of ensemble i) && go (i + 1))
  in
  go 1

(* [procs] client processes, [per] creates each, then run to quiescence. *)
let create_storm engine ensemble ~procs ~per =
  for proc = 0 to procs - 1 do
    Process.spawn engine (fun () ->
        let s = Ensemble.session ensemble () in
        for i = 0 to per - 1 do
          ignore
            (ok_or_fail "create"
               (s.Zk_client.create (Printf.sprintf "/p%d_%d" proc i) ~data:"x"))
        done)
  done;
  Engine.run engine

(* {2 Configuration validation} *)

let test_window_validation () =
  let engine = Engine.create () in
  Alcotest.check_raises "max_inflight_batches = 0 rejected"
    (Invalid_argument "Ensemble.start: max_inflight_batches < 1") (fun () ->
      ignore
        (Ensemble.start engine
           { (Ensemble.default_config ~servers:3) with
             max_inflight_batches = 0 }))

(* {2 Correctness under an open window} *)

let test_pipelined_replication () =
  let engine, ensemble = make ~servers:5 ~config_adjust:windowed () in
  create_storm engine ensemble ~procs:8 ~per:25;
  check_int "all writes committed" 200 (Ensemble.writes_committed ensemble);
  check_bool "all five replicas converge" true
    (all_trees_agree ensemble ~servers:5);
  check_int "every replica holds all nodes" 201
    (Ztree.node_count (Ensemble.tree_of ensemble 4))

let test_pipelined_reads_own_writes () =
  let engine, ensemble = make ~servers:5 ~config_adjust:windowed () in
  let failures = ref 0 in
  for proc = 0 to 4 do
    Process.spawn engine (fun () ->
        let s = Ensemble.session ensemble ~server:proc () in
        for i = 0 to 19 do
          let path = Printf.sprintf "/rw%d_%d" proc i in
          ignore (ok_or_fail "create" (s.Zk_client.create path ~data:"v"));
          match s.Zk_client.get path with
          | Ok _ -> ()
          | Error _ -> incr failures
        done)
  done;
  Engine.run engine;
  check_int "no stale read of own write through the pipeline" 0 !failures

(* {2 The pipeline is actually faster, and for the claimed reason} *)

let traced_run ~window () =
  let trace = Trace.create () in
  Trace.enable trace;
  let engine, ensemble =
    make ~servers:5 ~trace
      ~config_adjust:(fun c -> windowed ~window ~max_batch:16 c)
      ()
  in
  create_storm engine ensemble ~procs:16 ~per:25;
  (Engine.now engine, trace, ensemble)

let qw_ack trace =
  Option.value ~default:0. (Trace.span_mean trace "zk.create.queue-wait")
  +. Option.value ~default:0. (Trace.span_mean trace "zk.create.ack")

let test_pipeline_beats_stop_and_wait () =
  let t1, trace1, _ = traced_run ~window:1 () in
  let t8, trace8, _ = traced_run ~window:8 () in
  check_bool
    (Printf.sprintf "pipelined run finishes sooner (%.6f < %.6f)" t8 t1)
    true (t8 < t1);
  let base = qw_ack trace1 and piped = qw_ack trace8 in
  check_bool
    (Printf.sprintf "create queue-wait+ack shrinks (%.3g < %.3g)" piped base)
    true
    (base > 0. && piped < base);
  (* the untagged queue-wait metric must exist on both paths (the
     satellite fix: it used to be recorded only under a shard tag) *)
  check_bool "untagged zk.queue_wait recorded, stop-and-wait" true
    (Obs.Metrics.summary_opt (Trace.metrics trace1) "zk.queue_wait" <> None);
  check_bool "untagged zk.queue_wait recorded, pipelined" true
    (Obs.Metrics.summary_opt (Trace.metrics trace8) "zk.queue_wait" <> None)

(* The stop-and-wait path pays the leader persist on the critical path
   (the span's persist phase equals the configured cost); the pipelined
   path issues it concurrently with the follower round trip, so the
   persist phase vanishes and its residual cost surfaces inside ack.
   This distinguishes a real overlap from a relabeled sleep. *)
let test_persist_overlap_visible_in_spans () =
  let _, trace1, _ = traced_run ~window:1 () in
  let _, trace8, _ = traced_run ~window:8 () in
  let persist1 =
    Option.value ~default:0. (Trace.span_mean trace1 "zk.create.persist")
  and persist8 =
    Option.value ~default:(-1.) (Trace.span_mean trace8 "zk.create.persist")
  in
  check_bool "stop-and-wait pays persist on the critical path" true
    (persist1 > 0.);
  check_bool "pipelined persist is off the critical path" true
    (persist8 = 0.)

let test_phase_telescoping_pipelined () =
  let _, trace, _ = traced_run ~window:8 () in
  match Trace.span_mean trace "zk.create.total" with
  | None -> Alcotest.fail "no traced creates"
  | Some total ->
    let sum =
      List.fold_left
        (fun acc p ->
          let m =
            Option.value ~default:0.
              (Trace.span_mean trace ("zk.create." ^ p))
          in
          check_bool (Printf.sprintf "phase %s non-negative" p) true (m >= 0.);
          acc +. m)
        0. Trace.phases
    in
    check_bool
      (Printf.sprintf "phases telescope (sum %.6g vs total %.6g)" sum total)
      true
      (Float.abs (sum -. total) <= 0.05 *. total)

(* {2 Commit piggybacking} *)

let test_commit_piggybacking () =
  let engine, ensemble =
    make ~servers:5 ~config_adjust:(windowed ~window:4 ~max_batch:8) ()
  in
  create_storm engine ensemble ~procs:16 ~per:25;
  check_bool "a busy pipeline piggybacks commit frontiers" true
    (Ensemble.piggybacked_commits ensemble > 0);
  check_bool "the quiescent tail still fans out standalone commits" true
    (Ensemble.commit_fanouts ensemble > 0);
  (* tail convergence: the last writes' commits reached every replica
     even though most commit rounds never got their own fan-out *)
  check_int "all writes committed" 400 (Ensemble.writes_committed ensemble);
  check_bool "replicas converge at the tail" true
    (all_trees_agree ensemble ~servers:5)

let test_stop_and_wait_never_piggybacks () =
  let engine, ensemble =
    make ~servers:5
      ~config_adjust:(fun c -> { c with Ensemble.max_batch = 8 })
      ()
  in
  create_storm engine ensemble ~procs:8 ~per:25;
  check_int "window = 1 never suppresses a commit fan-out" 0
    (Ensemble.piggybacked_commits ensemble);
  check_bool "every commit was a standalone fan-out" true
    (Ensemble.commit_fanouts ensemble > 0)

(* {2 Adaptive group commit: batch_delay is never slept} *)

let test_pipeline_ignores_batch_delay () =
  let run batch_delay =
    let engine, ensemble =
      make ~servers:3
        ~config_adjust:(fun c ->
          { (windowed ~window:8 ~max_batch:16 c) with batch_delay })
        ()
    in
    create_storm engine ensemble ~procs:8 ~per:10;
    check_int "all writes committed" 80 (Ensemble.writes_committed ensemble);
    Engine.now engine
  in
  (* the stop-and-wait leader sleeps batch_delay per straggler batch
     (this workload takes >100 virtual seconds at window = 1 with a 5 s
     delay); the pipelined leader coalesces by window backpressure
     instead, so the knob must have no effect at all on its timeline *)
  let t0 = run 0. and t5 = run 5.0 in
  check_bool
    (Printf.sprintf "batch_delay never slept (%.6f = %.6f)" t0 t5)
    true (t0 = t5)

(* {2 Repropose repair: all stalled entries, one round}

   Regression for the head-only repair. 40 single-entry batches are
   proposed with every follower→leader link cut, so every proposal is
   outstanding and unacked; retry backoff is huge, so no client retry
   interferes with [p_proposed_at]. After the heal, one fresh write's
   ack round triggers [repropose_stalled], which must resend *all* 40
   timed-out entries in one batch — the fresh write (zxid 41, committed
   strictly last) then completes within a couple of round trips. The
   head-only repair needs one ack round trip per stalled entry
   (~40 × 120 µs here), which blows the bound. *)

let test_repropose_resends_all_stalled () =
  let k = 40 in
  let heal_at = 1.0 and trigger_at = 1.1 in
  let engine, ensemble =
    make ~servers:3
      ~config_adjust:(fun c ->
        { (windowed ~window:64 ~max_batch:1 c) with
          request_timeout = 0.2;
          retry_backoff = 10_000.;
          retry_backoff_cap = 10_000.;
          session_timeout = 1e9 })
      ()
  in
  let leader =
    match Ensemble.leader_id ensemble with Some l -> l | None -> 0
  in
  Process.spawn engine (fun () ->
      List.iter
        (fun id ->
          if id <> leader then
            Ensemble.partition_oneway ensemble ~from:id ~to_:leader)
        (Ensemble.member_ids ensemble);
      Process.sleep heal_at;
      Ensemble.heal ensemble);
  for i = 0 to k - 1 do
    Process.spawn engine (fun () ->
        let s = Ensemble.session ensemble ~server:leader () in
        ignore (s.Zk_client.create (Printf.sprintf "/stall%d" i) ~data:"x"))
  done;
  let trigger_done = ref Float.nan in
  Process.spawn engine (fun () ->
      Process.sleep trigger_at;
      let s = Ensemble.session ensemble ~server:leader () in
      ignore (ok_or_fail "trigger" (s.Zk_client.create "/trigger" ~data:"t"));
      trigger_done := Engine.now engine);
  Engine.run engine;
  check_int "every stalled write and the trigger committed" (k + 1)
    (Ensemble.writes_committed ensemble);
  check_bool "replicas converge after the repair" true
    (all_trees_agree ensemble ~servers:3);
  let repair = !trigger_done -. trigger_at in
  check_bool
    (Printf.sprintf
       "one repropose round repairs the whole window (%.6f s after heal)"
       repair)
    true
    (Float.is_finite repair && repair < 0.0015)

(* {2 Chaos + linearizability with the window open} *)

let pipelined_adjust c =
  { c with Ensemble.max_batch = 8; max_inflight_batches = 4 }

let chaos_small ?(shards = 1) ?plan ~seed () =
  Systems.chaos_run ~servers:3 ~shards ~clients:4 ~registers:3 ~heal_at:6.
    ~post_heal:4. ~events:6 ~config_adjust:pipelined_adjust ?plan ~seed ()

let no_violations label (r : Systems.chaos_run) =
  List.iter
    (fun (v : Zk.History.violation) ->
      Printf.printf "%s VIOLATION [%s] %s: %s\n%!" label v.Zk.History.v_kind
        v.Zk.History.v_path v.Zk.History.v_detail)
    r.Systems.violations;
  check_int (label ^ ": zero violations") 0 (List.length r.Systems.violations)

let test_pipelined_chaos_clean () =
  List.iter
    (fun seed ->
      let r = chaos_small ~seed () in
      no_violations (Printf.sprintf "chaos seed %Ld" seed) r;
      check_bool "a real workload ran" true (r.Systems.checked > 200);
      check_bool "recovered after heal" true
        (Float.is_finite r.Systems.recovery_s))
    [ 21L; 22L; 23L ];
  let r = chaos_small ~shards:2 ~seed:24L () in
  no_violations "sharded pipelined chaos" r;
  check_bool "sharded run recovered" true (Float.is_finite r.Systems.recovery_s)

let test_pipelined_chaos_deterministic () =
  let a = chaos_small ~seed:25L () in
  let b = chaos_small ~seed:25L () in
  check_string "same seed, bit-identical history under the pipeline"
    a.Systems.digest b.Systems.digest

(* Leader crash with a full proposal window in flight: in-flight and
   queued batches die with the leader; retried writes must land exactly
   once under the new epoch, and the checker sees the whole history. *)
let test_leader_crash_mid_window () =
  let plan =
    match Faultplan.parse "crash-leader@1;drop=0.2@1.5;heal@4;restart-all@4.5" with
    | Ok p -> p
    | Error msg -> Alcotest.failf "plan parse: %s" msg
  in
  let r = chaos_small ~plan ~seed:31L () in
  no_violations "leader crash mid-window" r;
  check_bool "faults fired" true (r.Systems.faults_fired >= 3);
  check_bool "writes committed across the crash" true
    (r.Systems.writes_committed > 0);
  check_bool "recovered" true (Float.is_finite r.Systems.recovery_s)

(* {2 Stop-and-wait compatibility}

   [max_inflight_batches = 1] must be the pre-pipeline protocol event
   for event: same commits, same final clock as a config that never
   mentions the field. (CI additionally diffs the recorded
   BENCH_pr5_smoke replay byte-for-byte.) *)

let test_window_one_is_legacy () =
  let run config_adjust =
    let engine, ensemble = make ~servers:5 ~config_adjust () in
    create_storm engine ensemble ~procs:8 ~per:25;
    (Engine.now engine, Ensemble.writes_committed ensemble)
  in
  let t_default, w_default =
    run (fun c -> { c with Ensemble.max_batch = 8 })
  and t_w1, w_w1 =
    run (fun c ->
        { c with Ensemble.max_batch = 8; max_inflight_batches = 1 })
  in
  check_int "same commits" w_default w_w1;
  check_bool
    (Printf.sprintf "identical final clock (%.9f vs %.9f)" t_default t_w1)
    true (t_default = t_w1)

let () =
  Alcotest.run "pipeline"
    [ ( "config",
        [ Alcotest.test_case "window validation" `Quick test_window_validation ]
      );
      ( "correctness",
        [ Alcotest.test_case "replication under an open window" `Quick
            test_pipelined_replication;
          Alcotest.test_case "read-your-own-writes" `Quick
            test_pipelined_reads_own_writes;
          Alcotest.test_case "window = 1 is the legacy path" `Quick
            test_window_one_is_legacy ] );
      ( "performance",
        [ Alcotest.test_case "pipeline beats stop-and-wait" `Quick
            test_pipeline_beats_stop_and_wait;
          Alcotest.test_case "persist overlap visible in spans" `Quick
            test_persist_overlap_visible_in_spans;
          Alcotest.test_case "phase telescoping" `Quick
            test_phase_telescoping_pipelined;
          Alcotest.test_case "batch_delay never slept" `Quick
            test_pipeline_ignores_batch_delay ] );
      ( "piggybacking",
        [ Alcotest.test_case "busy pipeline piggybacks commits" `Quick
            test_commit_piggybacking;
          Alcotest.test_case "stop-and-wait never piggybacks" `Quick
            test_stop_and_wait_never_piggybacks ] );
      ( "repair",
        [ Alcotest.test_case "repropose resends all stalled entries" `Quick
            test_repropose_resends_all_stalled ] );
      ( "chaos",
        [ Alcotest.test_case "pipelined chaos clean" `Quick
            test_pipelined_chaos_clean;
          Alcotest.test_case "pipelined chaos deterministic" `Quick
            test_pipelined_chaos_deterministic;
          Alcotest.test_case "leader crash mid-window" `Quick
            test_leader_crash_mid_window ] ) ]
