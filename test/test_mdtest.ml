(* Tests for the mdtest workload harness itself: the generic closed loop,
   runner semantics over a trivial timed filesystem, and the report
   formatting helpers. *)

module Engine = Simkit.Engine
module Process = Simkit.Process
module Runner = Mdtest.Runner
module Workload = Mdtest.Workload
module Report = Mdtest.Report
module Vfs = Fuselike.Vfs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-6))

(* {2 closed_loop} *)

let test_closed_loop_rate_exact () =
  (* every op sleeps exactly 1ms and ops do not contend: with p procs the
     aggregate rate must be p * 1000 *)
  let engine = Engine.create () in
  let rate =
    Runner.closed_loop engine ~procs:4 ~items:25 (fun ~proc:_ ~item:_ ->
        Process.sleep 1e-3)
  in
  check_float "4 procs x 1k ops/s" 4000. rate

let test_closed_loop_counts_all_items () =
  let engine = Engine.create () in
  let count = ref 0 in
  let seen = Hashtbl.create 64 in
  ignore
    (Runner.closed_loop engine ~procs:3 ~items:7 (fun ~proc ~item ->
         incr count;
         Hashtbl.replace seen (proc, item) ();
         Process.sleep 1e-4));
  check_int "3*7 invocations" 21 !count;
  check_int "all distinct coordinates" 21 (Hashtbl.length seen)

let test_closed_loop_barrier_alignment () =
  (* a slow first proc delays the start for everyone: all ops begin after
     its arrival at the barrier *)
  let engine = Engine.create () in
  let earliest = ref infinity in
  Process.spawn engine (fun () -> Process.sleep 0.5);
  let _rate =
    Runner.closed_loop engine ~procs:2 ~items:3 (fun ~proc:_ ~item:_ ->
        earliest := min !earliest (Engine.now engine);
        Process.sleep 1e-3)
  in
  check_bool "work started at the common barrier" true (!earliest < 0.5)

(* {2 Runner over a unit-cost filesystem} *)

(* A filesystem where every op costs exactly [cost] of virtual time. *)
let unit_cost_fs engine ~cost =
  let inner = Fuselike.Memfs.ops (Fuselike.Memfs.create ~clock:(fun () -> 0.) ()) in
  let timed : 'a. (unit -> 'a) -> 'a =
    fun f ->
     Process.sleep cost;
     ignore (Engine.now engine);
     f ()
  in
  { inner with
    Vfs.mkdir = (fun p ~mode -> timed (fun () -> inner.Vfs.mkdir p ~mode));
    rmdir = (fun p -> timed (fun () -> inner.Vfs.rmdir p));
    create = (fun p ~mode -> timed (fun () -> inner.Vfs.create p ~mode));
    unlink = (fun p -> timed (fun () -> inner.Vfs.unlink p));
    getattr = (fun p -> timed (fun () -> inner.Vfs.getattr p)) }

let test_runner_rates_match_unit_cost () =
  let engine = Engine.create () in
  let cost = 2e-3 in
  let fs = unit_cost_fs engine ~cost in
  let cfg = Workload.config ~procs:4 ~dirs_per_proc:10 ~files_per_proc:10 () in
  let results = Runner.run engine cfg ~ops_for_proc:(fun _ -> fs) in
  check_int "no errors" 0 results.Runner.errors;
  (* ops don't contend: rate = procs / cost for every phase *)
  List.iter
    (fun (phase, rate) ->
      Alcotest.(check (float 1.))
        (Runner.phase_to_string phase ^ " rate")
        (4. /. cost) rate)
    results.Runner.rates;
  (* latency = exactly the unit cost *)
  List.iter
    (fun phase ->
      match Runner.latency_of results phase with
      | None -> Alcotest.fail (Runner.phase_to_string phase ^ ": no latency row")
      | Some l ->
        Alcotest.(check (float 1e-9)) "mean latency = cost" cost l.Runner.mean;
        Alcotest.(check (float 1e-9)) "max latency = cost" cost l.Runner.max)
    Runner.all_phases

let test_runner_counts_errors () =
  let engine = Engine.create () in
  (* a filesystem that fails every mkdir *)
  let fs =
    { (Fuselike.Memfs.ops (Fuselike.Memfs.create ~clock:(fun () -> 0.) ())) with
      Vfs.mkdir = (fun _ ~mode:_ -> Process.sleep 1e-4; Error Fuselike.Errno.EIO) }
  in
  let cfg = Workload.config ~procs:2 ~dirs_per_proc:5 ~files_per_proc:0 () in
  let results = Runner.run engine cfg ~ops_for_proc:(fun _ -> fs) in
  (* skeleton (110 dirs) + dir-create phase (10) + dir-remove phase rmdir
     of never-created dirs also fails via rmdir?  rmdir is untouched and
     returns ENOENT: count: skeleton 110 + create 10 + remove 10 *)
  check_bool
    (Printf.sprintf "errors counted (%d)" results.Runner.errors)
    true
    (results.Runner.errors >= 120)

(* {2 Workload placement} *)

let test_workload_validation () =
  Alcotest.check_raises "procs < 1" (Invalid_argument "Workload.config: procs < 1")
    (fun () -> ignore (Workload.config ~procs:0 ()))

let test_workload_spread_over_leaves () =
  let cfg = Workload.config ~procs:3 ~dirs_per_proc:50 ~files_per_proc:0 () in
  let leaves = Workload.leaves_for cfg ~proc:0 in
  let used = Hashtbl.create 64 in
  for proc = 0 to 2 do
    for item = 0 to 49 do
      let parent = Fuselike.Fspath.parent (Workload.dir_path cfg ~proc ~item) in
      Hashtbl.replace used parent ()
    done
  done;
  check_bool
    (Printf.sprintf "items spread over many leaves (%d of %d)" (Hashtbl.length used)
       (List.length leaves))
    true
    (Hashtbl.length used > 40)

let test_unique_mode_isolates_procs () =
  let cfg =
    Workload.config ~procs:4 ~dirs_per_proc:10 ~files_per_proc:0
      ~unique_working_dirs:true ()
  in
  for proc = 0 to 3 do
    for item = 0 to 9 do
      let path = Workload.dir_path cfg ~proc ~item in
      check_bool
        (Printf.sprintf "%s under /proc%d" path proc)
        true
        (Fuselike.Fspath.is_prefix ~prefix:(Printf.sprintf "/proc%d" proc) path)
    done
  done

(* {2 Report series} *)

let test_report_series_shape () =
  (* print_figure must tolerate missing points; smoke-test via a series
     with uneven x coverage (output goes to stdout, checked not to raise) *)
  Report.print_figure ~title:"test figure" ~x_label:"procs"
    [ { Report.label = "full"; points = [ (1, 10.); (2, 20.) ] };
      { Report.label = "partial"; points = [ (2, 99.) ] } ];
  Report.print_ratio ~label:"some ratio" 1.5;
  Report.print_header "done"

let () =
  Alcotest.run "mdtest-harness"
    [ ( "closed-loop",
        [ Alcotest.test_case "exact rate" `Quick test_closed_loop_rate_exact;
          Alcotest.test_case "counts all items" `Quick test_closed_loop_counts_all_items;
          Alcotest.test_case "barrier alignment" `Quick
            test_closed_loop_barrier_alignment ] );
      ( "runner",
        [ Alcotest.test_case "rates match unit cost" `Quick
            test_runner_rates_match_unit_cost;
          Alcotest.test_case "counts errors" `Quick test_runner_counts_errors ] );
      ( "workload",
        [ Alcotest.test_case "validation" `Quick test_workload_validation;
          Alcotest.test_case "spread over leaves" `Quick test_workload_spread_over_leaves;
          Alcotest.test_case "unique mode isolates" `Quick
            test_unique_mode_isolates_procs ] );
      ( "report",
        [ Alcotest.test_case "series shape" `Quick test_report_series_shape ] ) ]
