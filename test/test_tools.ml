(* Tests for the operational tooling: namespace scanning, the fsck
   consistency checker with injected corruption, the rebalancer (the
   §VII future-work machinery), and mapping-strategy selection in the
   client. *)

module Vfs = Fuselike.Vfs
module Errno = Fuselike.Errno
module Memfs = Fuselike.Memfs
module Client = Dufs.Client
module Physical = Dufs.Physical
module Fsck = Dufs.Fsck
module Rebalancer = Dufs.Rebalancer
module Namespace = Dufs.Namespace
module Mapping = Dufs.Mapping
module Fid = Dufs.Fid

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ok_fs label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" label (Errno.to_string e)

let ok_zk label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" label (Zk.Zerror.to_string e)

let make ?(backends = 2) ?strategy () =
  let service = Zk.Zk_local.create () in
  let mounts = Array.init backends (fun _ -> Memfs.create ~clock:(fun () -> 0.) ()) in
  let mount_ops = Array.map Memfs.ops mounts in
  Array.iter
    (fun ops -> ok_fs "format" (Physical.format Physical.default_layout ops))
    mount_ops;
  let coord = Zk.Zk_local.session service in
  let client = Client.mount ~coord ?strategy ~backends:mount_ops () in
  (service, coord, client, Client.ops client, mount_ops)

let populate fs =
  ok_fs "mkdir" (fs.Vfs.mkdir "/proj" ~mode:0o755);
  for i = 0 to 19 do
    let path = Printf.sprintf "/proj/f%02d" i in
    ok_fs "create" (fs.Vfs.create path ~mode:0o644);
    ignore (ok_fs "write" (fs.Vfs.write path ~off:0 (Printf.sprintf "data-%02d" i)))
  done

(* {2 Namespace} *)

let test_namespace_scan () =
  let _, coord, _, fs, _ = make () in
  populate fs;
  ok_fs "symlink" (fs.Vfs.symlink ~target:"/proj" "/link");
  let entries = ok_zk "scan" (Namespace.scan coord ~zroot:"/dufs") in
  let lefts = List.filter_map (function Either.Left e -> Some e | _ -> None) entries in
  check_int "1 dir + 20 files + 1 symlink" 22 (List.length lefts);
  (* parents precede children *)
  let index vpath =
    let rec find i = function
      | [] -> -1
      | { Namespace.vpath = v; _ } :: _ when v = vpath -> i
      | _ :: rest -> find (i + 1) rest
    in
    find 0 lefts
  in
  check_bool "parent before child" true (index "/proj" < index "/proj/f00")

let test_namespace_files () =
  let _, coord, client, fs, _ = make () in
  populate fs;
  let files = ok_zk "files" (Namespace.files coord ~zroot:"/dufs") in
  check_int "20 files" 20 (List.length files);
  List.iter
    (fun (_vpath, fid) ->
      let backend = Client.locate client fid in
      check_bool "fid maps into range" true (backend >= 0 && backend < 2))
    files

(* {2 Fsck} *)

let scan_report coord mount_ops =
  ok_zk "fsck scan" (Fsck.scan ~coord ~backends:mount_ops ())

let test_fsck_clean_system () =
  let _, coord, _, fs, mount_ops = make () in
  populate fs;
  let report = scan_report coord mount_ops in
  check_bool "clean" true (Fsck.is_clean report);
  check_int "files checked" 20 report.Fsck.files_checked;
  check_int "dirs checked" 1 report.Fsck.dirs_checked;
  check_int "physicals checked" 20 report.Fsck.physicals_checked

let find_physical mount_ops fid =
  let path = Physical.path Physical.default_layout fid in
  let rec find i =
    if i >= Array.length mount_ops then None
    else if Vfs.exists mount_ops.(i) path then Some (i, path)
    else find (i + 1)
  in
  find 0

let test_fsck_detects_missing_physical () =
  let _, coord, _, fs, mount_ops = make () in
  populate fs;
  (* corrupt: delete one physical file behind DUFS's back *)
  let files = ok_zk "files" (Namespace.files coord ~zroot:"/dufs") in
  let _, fid = List.hd files in
  (match find_physical mount_ops fid with
  | Some (i, path) -> ok_fs "corrupt" (mount_ops.(i).Vfs.unlink path)
  | None -> Alcotest.fail "physical not found");
  let report = scan_report coord mount_ops in
  (match report.Fsck.issues with
  | [ Fsck.Missing_physical { fid = f; _ } ] ->
    check_bool "right fid" true (Fid.equal f fid)
  | issues -> Alcotest.failf "expected 1 missing, got %d issues" (List.length issues));
  (* repair recreates it (empty) *)
  let stats = Fsck.repair ~backends:mount_ops report in
  check_int "recreated" 1 stats.Fsck.recreated;
  check_bool "clean after repair" true (Fsck.is_clean (scan_report coord mount_ops))

let test_fsck_detects_orphan () =
  let _, coord, _, fs, mount_ops = make () in
  populate fs;
  (* drop an unreferenced fid-named file onto a backend *)
  let stray = Fid.make ~client_id:0xdeadL ~counter:0xbeefL in
  let path = Physical.path Physical.default_layout stray in
  ok_fs "plant orphan" (mount_ops.(0).Vfs.create path ~mode:0o644);
  let report = scan_report coord mount_ops in
  (match report.Fsck.issues with
  | [ Fsck.Orphan_physical { backend = 0; path = p } ] ->
    check_bool "path matches" true (p = path)
  | issues -> Alcotest.failf "expected 1 orphan, got %d issues" (List.length issues));
  let stats = Fsck.repair ~backends:mount_ops report in
  check_int "deleted" 1 stats.Fsck.deleted;
  check_bool "orphan gone" false (Vfs.exists mount_ops.(0) path);
  check_bool "clean after repair" true (Fsck.is_clean (scan_report coord mount_ops))

let test_fsck_detects_misplaced () =
  let _, coord, _, fs, mount_ops = make () in
  populate fs;
  (* move one physical file to the wrong backend *)
  let files = ok_zk "files" (Namespace.files coord ~zroot:"/dufs") in
  let _, fid = List.hd files in
  let path = Physical.path Physical.default_layout fid in
  let home, _ = Option.get (find_physical mount_ops fid) in
  let wrong = (home + 1) mod 2 in
  let contents = ok_fs "read" (mount_ops.(home).Vfs.read path ~off:0 ~len:1024) in
  ok_fs "create wrong" (mount_ops.(wrong).Vfs.create path ~mode:0o644);
  ignore (ok_fs "write wrong" (mount_ops.(wrong).Vfs.write path ~off:0 contents));
  ok_fs "remove right" (mount_ops.(home).Vfs.unlink path);
  let report = scan_report coord mount_ops in
  (match report.Fsck.issues with
  | [ Fsck.Misplaced_physical { expected; actual; _ } ] ->
    check_int "expected home" home expected;
    check_int "actual wrong" wrong actual
  | issues -> Alcotest.failf "expected 1 misplaced, got %d issues" (List.length issues));
  let stats = Fsck.repair ~backends:mount_ops report in
  check_int "moved" 1 stats.Fsck.moved;
  check_bool "back home with contents" true
    (ok_fs "read back" (mount_ops.(home).Vfs.read path ~off:0 ~len:1024) = contents);
  check_bool "clean after repair" true (Fsck.is_clean (scan_report coord mount_ops))

let test_fsck_detects_undecodable_meta () =
  let _, coord, _, fs, mount_ops = make () in
  populate fs;
  ok_zk "corrupt meta" (coord.Zk.Zk_client.set "/dufs/proj/f00" ~data:"garbage!");
  let report = scan_report coord mount_ops in
  let has_undecodable =
    List.exists
      (function Fsck.Undecodable_meta { vpath; _ } -> vpath = "/proj/f00" | _ -> false)
      report.Fsck.issues
  in
  check_bool "found corrupt metadata" true has_undecodable;
  let stats = Fsck.repair ~backends:mount_ops report in
  check_bool "reported unrepairable" true (stats.Fsck.unrepairable >= 1)

let test_create_rollback_failure_flags_orphan () =
  (* the worst-case create: the back-end rejects the physical file AND
     the compensating znode delete times out. The client must surface
     EIO, record the stuck rollback, and fsck must find and clear the
     orphaned znode *)
  let service = Zk.Zk_local.create () in
  let real = Zk.Zk_local.session service in
  let fail_backend = ref false and fail_rollback = ref false in
  let coord =
    { real with
      Zk.Zk_client.delete =
        (fun ?version path ->
          if !fail_rollback && Filename.basename path = "f" then
            Error Zk.Zerror.ZOPERATIONTIMEOUT
          else real.Zk.Zk_client.delete ?version path) }
  in
  let mounts = Array.init 2 (fun _ -> Memfs.ops (Memfs.create ~clock:(fun () -> 0.) ())) in
  Array.iter
    (fun ops -> ok_fs "format" (Physical.format Physical.default_layout ops))
    mounts;
  let flaky =
    Array.map
      (fun ops ->
        { ops with
          Vfs.create =
            (fun path ~mode ->
              if !fail_backend then Error Errno.EIO else ops.Vfs.create path ~mode) })
      mounts
  in
  let client = Client.mount ~coord ~backends:flaky () in
  let fs = Client.ops client in
  fail_backend := true;
  fail_rollback := true;
  (match fs.Vfs.create "/f" ~mode:0o644 with
  | Error Errno.EIO -> ()
  | Ok () -> Alcotest.fail "create must fail when the back-end does"
  | Error e -> Alcotest.failf "expected EIO, got %s" (Errno.to_string e));
  (match Client.orphan_notes client with
  | [ note ] ->
    check_bool "the note names the orphaned znode" true
      (String.length note > 0
      && String.sub note 0 (String.length "/dufs/f") = "/dufs/f")
  | notes -> Alcotest.failf "expected 1 orphan note, got %d" (List.length notes));
  fail_backend := false;
  fail_rollback := false;
  let report = ok_zk "fsck scan" (Fsck.scan ~coord:real ~backends:mounts ()) in
  (match report.Fsck.issues with
  | [ Fsck.Missing_physical _ ] -> ()
  | issues ->
    Alcotest.failf "expected the orphaned znode flagged, got %d issues"
      (List.length issues));
  let stats = Fsck.repair ~backends:mounts report in
  check_int "repair recreates the physical" 1 stats.Fsck.recreated;
  check_bool "clean after repair" true
    (Fsck.is_clean (ok_zk "rescan" (Fsck.scan ~coord:real ~backends:mounts ())))

(* {2 Rebalancer} *)

let test_rebalance_md5_grow () =
  let _, coord, _, fs, mount_ops = make ~backends:2 () in
  populate fs;
  (* grow 2 -> 3 under the paper's mod-N mapping: most files move *)
  let moves, new_strategy =
    ok_zk "plan"
      (Rebalancer.plan_add_backend ~coord ~strategy:Mapping.Md5_mod ~backends_before:2 ())
  in
  check_bool "mod-N moves many files" true (List.length moves > 5);
  (match new_strategy with
  | Mapping.Md5_mod -> ()
  | Mapping.Consistent _ -> Alcotest.fail "strategy should stay Md5_mod");
  (* add the new mount and execute *)
  let extra = Memfs.ops (Memfs.create ~clock:(fun () -> 0.) ()) in
  ok_fs "format extra" (Physical.format Physical.default_layout extra);
  let all = Array.append mount_ops [| extra |] in
  let stats = ok_fs "execute" (Rebalancer.execute ~backends:all moves) in
  check_int "all planned moves done" (List.length moves) stats.Rebalancer.moved;
  check_bool "bytes moved" true (stats.Rebalancer.bytes_moved > 0L);
  (* the system is consistent under the *new* mapping *)
  let report =
    ok_zk "fsck under new mapping" (Fsck.scan ~coord ~backends:all ())
  in
  check_bool "clean after rebalance" true (Fsck.is_clean report)

let test_rebalance_consistent_moves_less () =
  let ring = Dufs.Consistent_hash.create [ 0; 1 ] in
  let strategy = Mapping.Consistent ring in
  let _, coord, _, fs, mount_ops = make ~backends:2 ~strategy () in
  populate fs;
  let moves_ch, new_strategy =
    ok_zk "plan ch" (Rebalancer.plan_add_backend ~coord ~strategy ~backends_before:2 ())
  in
  let moves_md5, _ =
    ok_zk "plan md5"
      (Rebalancer.plan_add_backend ~coord ~strategy:Mapping.Md5_mod ~backends_before:2 ())
  in
  (* consistent hashing must relocate fewer files than mod-N; with only 20
     files allow equality but not more *)
  check_bool
    (Printf.sprintf "ch moves %d <= md5 moves %d" (List.length moves_ch)
       (List.length moves_md5))
    true
    (List.length moves_ch <= List.length moves_md5);
  (* execute the consistent-hash plan and verify with fsck under the new ring *)
  let extra = Memfs.ops (Memfs.create ~clock:(fun () -> 0.) ()) in
  ok_fs "format extra" (Physical.format Physical.default_layout extra);
  let all = Array.append mount_ops [| extra |] in
  let stats = ok_fs "execute" (Rebalancer.execute ~backends:all moves_ch) in
  check_int "moves executed" (List.length moves_ch) stats.Rebalancer.moved;
  let report =
    ok_zk "fsck" (Fsck.scan ~coord ~backends:all ~strategy:new_strategy ())
  in
  check_bool "clean under new ring" true (Fsck.is_clean report)

let test_rebalance_data_survives () =
  let _, coord, _, fs, mount_ops = make ~backends:2 () in
  populate fs;
  let moves, _ =
    ok_zk "plan"
      (Rebalancer.plan_add_backend ~coord ~strategy:Mapping.Md5_mod ~backends_before:2 ())
  in
  let extra = Memfs.ops (Memfs.create ~clock:(fun () -> 0.) ()) in
  ok_fs "format extra" (Physical.format Physical.default_layout extra);
  let all = Array.append mount_ops [| extra |] in
  ignore (ok_fs "execute" (Rebalancer.execute ~backends:all moves));
  (* remount a client over 3 backends: every file's contents intact *)
  let client2 = Client.mount ~coord ~backends:all ~client_id:99L () in
  let fs2 = Client.ops client2 in
  for i = 0 to 19 do
    let path = Printf.sprintf "/proj/f%02d" i in
    Alcotest.(check string)
      (path ^ " contents intact")
      (Printf.sprintf "data-%02d" i)
      (ok_fs "read" (fs2.Vfs.read path ~off:0 ~len:64))
  done

let test_rebalance_empty_plan () =
  let _, coord, _, _, mount_ops = make () in
  (* identical mappings -> nothing to move *)
  let moves =
    ok_zk "plan"
      (Rebalancer.plan ~coord
         ~old_locate:(Mapping.md5_mod ~backends:2)
         ~new_locate:(Mapping.md5_mod ~backends:2)
         ())
  in
  check_int "no moves" 0 (List.length moves);
  let stats = ok_fs "execute" (Rebalancer.execute ~backends:mount_ops moves) in
  check_int "nothing moved" 0 stats.Rebalancer.moved

let test_rebalance_crash_window_is_recorded_and_repaired () =
  (* regression: a move that dies between the destination write and the
     source unlink used to leave the file on both back-ends with no
     record anywhere — execute noted nothing and fsck's physicals pass
     skipped claimed-but-elsewhere files as "already reported" even when
     the home copy was present too *)
  let _, coord, _, fs, mount_ops = make ~backends:2 () in
  populate fs;
  let moves, _ =
    ok_zk "plan"
      (Rebalancer.plan_add_backend ~coord ~strategy:Mapping.Md5_mod ~backends_before:2 ())
  in
  check_bool "plan is non-empty" true (moves <> []);
  let extra = Memfs.ops (Memfs.create ~clock:(fun () -> 0.) ()) in
  ok_fs "format extra" (Physical.format Physical.default_layout extra);
  (* the source back-ends refuse the unlink: the copy commits on dst,
     the delete never happens — the crash window made permanent *)
  let failing ops = { ops with Vfs.unlink = (fun _ -> Error Errno.EIO) } in
  let crippled = Array.append (Array.map failing mount_ops) [| extra |] in
  let notes = ref [] in
  (match
     Rebalancer.execute ~backends:crippled ~note:(fun m -> notes := m :: !notes)
       moves
   with
  | Ok _ -> Alcotest.fail "execute should stop on the unlink error"
  | Error Errno.EIO -> ()
  | Error e -> Alcotest.failf "unexpected error: %s" (Errno.to_string e));
  let mentions needle m =
    let nl = String.length needle and ml = String.length m in
    let rec go i = i + nl <= ml && (String.sub m i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "write-ahead intent noted" true
    (List.exists (mentions "move in flight") !notes);
  check_bool "double presence noted" true
    (List.exists (mentions "double presence") !notes);
  (* fsck over the healthy mounts sees exactly one doubled file (the
     remaining planned moves never started, so they are merely
     misplaced under the new mapping) *)
  let all = Array.append mount_ops [| extra |] in
  let report = ok_zk "scan" (Fsck.scan ~coord ~backends:all ()) in
  let doubled =
    List.filter (function Fsck.Double_presence _ -> true | _ -> false)
      report.Fsck.issues
  in
  check_int "one double presence" 1 (List.length doubled);
  let stats = Fsck.repair ~backends:all report in
  check_int "stale copy removed" 1 stats.Fsck.deduplicated;
  check_bool "clean after repair" true
    (Fsck.is_clean (ok_zk "rescan" (Fsck.scan ~coord ~backends:all ())))

(* {2 Client-side cache} *)

module Cache = Dufs.Cache

let cache_pair () =
  let service = Zk.Zk_local.create () in
  let writer = Zk.Zk_local.session service in
  let cache = Cache.wrap (Zk.Zk_local.session service) in
  (writer, cache, Cache.handle cache)

let test_cache_hits_and_misses () =
  let writer, cache, cached = cache_pair () in
  ignore (ok_zk "seed" (writer.Zk.Zk_client.create "/n" ~data:"v1"));
  (match cached.Zk.Zk_client.get "/n" with
  | Ok ("v1", _) -> ()
  | _ -> Alcotest.fail "first read");
  check_int "first read misses" 1 (Cache.misses cache);
  for _ = 1 to 5 do
    ignore (cached.Zk.Zk_client.get "/n")
  done;
  check_int "re-reads hit" 5 (Cache.hits cache);
  check_int "still one miss" 1 (Cache.misses cache)

let test_cache_remote_invalidation () =
  let writer, cache, cached = cache_pair () in
  ignore (ok_zk "seed" (writer.Zk.Zk_client.create "/n" ~data:"v1"));
  ignore (cached.Zk.Zk_client.get "/n");
  (* another session updates; the watch evicts our entry *)
  ok_zk "remote set" (writer.Zk.Zk_client.set "/n" ~data:"v2");
  check_bool "invalidated" true (Cache.invalidations cache >= 1);
  (match cached.Zk.Zk_client.get "/n" with
  | Ok ("v2", _) -> ()
  | Ok (d, _) -> Alcotest.failf "stale read %S" d
  | Error e -> Alcotest.failf "read failed: %s" (Zk.Zerror.to_string e))

let test_cache_negative_entries () =
  let writer, cache, cached = cache_pair () in
  (match cached.Zk.Zk_client.get "/future" with
  | Error Zk.Zerror.ZNONODE -> ()
  | _ -> Alcotest.fail "expected ZNONODE");
  ignore (cached.Zk.Zk_client.exists "/future");
  check_int "negative entry cached" 1 (Cache.misses cache);
  check_int "negative re-read hits" 1 (Cache.hits cache);
  (* creation by another session fires the exists-watch *)
  ignore (ok_zk "create" (writer.Zk.Zk_client.create "/future" ~data:"now"));
  (match cached.Zk.Zk_client.get "/future" with
  | Ok ("now", _) -> ()
  | _ -> Alcotest.fail "negative entry not invalidated on creation")

let test_cache_own_writes_visible () =
  let _, _, cached = cache_pair () in
  (match cached.Zk.Zk_client.get "/mine" with
  | Error Zk.Zerror.ZNONODE -> ()
  | _ -> Alcotest.fail "expected ZNONODE");
  ignore (ok_zk "create through cache" (cached.Zk.Zk_client.create "/mine" ~data:"a"));
  (match cached.Zk.Zk_client.get "/mine" with
  | Ok ("a", _) -> ()
  | _ -> Alcotest.fail "own create invisible (stale negative entry)");
  ok_zk "set through cache" (cached.Zk.Zk_client.set "/mine" ~data:"b");
  (match cached.Zk.Zk_client.get "/mine" with
  | Ok ("b", _) -> ()
  | _ -> Alcotest.fail "own set invisible");
  ok_zk "delete through cache" (cached.Zk.Zk_client.delete "/mine");
  (match cached.Zk.Zk_client.get "/mine" with
  | Error Zk.Zerror.ZNONODE -> ()
  | _ -> Alcotest.fail "own delete invisible")

let test_cache_children_invalidation () =
  let writer, _, cached = cache_pair () in
  ignore (ok_zk "mk" (writer.Zk.Zk_client.create "/d" ~data:""));
  Alcotest.(check (list string)) "initially empty" []
    (ok_zk "children" (cached.Zk.Zk_client.children "/d"));
  ignore (ok_zk "remote child" (writer.Zk.Zk_client.create "/d/c" ~data:""));
  Alcotest.(check (list string)) "sees the new child" [ "c" ]
    (ok_zk "children again" (cached.Zk.Zk_client.children "/d"))

let test_cache_lru_bound () =
  let service = Zk.Zk_local.create () in
  let writer = Zk.Zk_local.session service in
  for i = 0 to 9 do
    ignore (ok_zk "mk" (writer.Zk.Zk_client.create (Printf.sprintf "/n%d" i) ~data:""))
  done;
  let cache = Cache.wrap ~capacity:4 (Zk.Zk_local.session service) in
  let h = Cache.handle cache in
  for i = 0 to 9 do
    ignore (h.Zk.Zk_client.get (Printf.sprintf "/n%d" i))
  done;
  check_bool
    (Printf.sprintf "size %d bounded by capacity" (Cache.size cache))
    true
    (Cache.size cache <= 4);
  (* evicted entries simply miss again *)
  ignore (h.Zk.Zk_client.get "/n0");
  check_int "eviction causes a re-miss" 11 (Cache.misses cache)

let test_cache_queue_stays_bounded () =
  (* regression: repeated hits used to append one stale queue entry each,
     growing the recency queue without bound on hit-heavy workloads *)
  let service = Zk.Zk_local.create () in
  let writer = Zk.Zk_local.session service in
  ignore (ok_zk "seed" (writer.Zk.Zk_client.create "/hot" ~data:"v"));
  let cache = Cache.wrap ~capacity:8 (Zk.Zk_local.session service) in
  let h = Cache.handle cache in
  for _ = 1 to 1000 do
    match h.Zk.Zk_client.get "/hot" with
    | Ok ("v", _) -> ()
    | _ -> Alcotest.fail "hot entry misread"
  done;
  (* each of the two stores compacts before exceeding 2x capacity *)
  check_bool
    (Printf.sprintf "queue length %d bounded" (Cache.queue_length cache))
    true
    (Cache.queue_length cache <= 2 * 8 * 2);
  check_int "still a single miss" 1 (Cache.misses cache);
  check_bool "hits recorded" true (Cache.hits cache >= 999)

let test_cache_dufs_end_to_end () =
  (* DUFS mounted over a cached handle behaves identically on a mixed
     op sequence, including cross-client visibility *)
  let service = Zk.Zk_local.create () in
  let mounts = Array.init 2 (fun _ -> Memfs.create ~clock:(fun () -> 0.) ()) in
  let mount_ops = Array.map Memfs.ops mounts in
  Array.iter
    (fun ops -> ok_fs "format" (Physical.format Physical.default_layout ops))
    mount_ops;
  let cache = Cache.wrap (Zk.Zk_local.session service) in
  let c1 =
    Client.mount ~coord:(Cache.handle cache) ~backends:mount_ops ~client_id:1L ()
  in
  let c2 =
    Client.mount ~coord:(Zk.Zk_local.session service) ~backends:mount_ops
      ~client_id:2L ()
  in
  let fs1 = Client.ops c1 and fs2 = Client.ops c2 in
  ok_fs "c1 mkdir" (fs1.Vfs.mkdir "/d" ~mode:0o755);
  ignore (ok_fs "c1 stat" (fs1.Vfs.getattr "/d"));
  ignore (ok_fs "c1 stat again (cached)" (fs1.Vfs.getattr "/d"));
  check_bool "cache produced hits" true (Cache.hits cache > 0);
  (* the uncached client renames; the cached client must observe it *)
  ok_fs "c2 rename" (fs2.Vfs.rename "/d" "/e");
  (match fs1.Vfs.getattr "/d" with
  | Error Errno.ENOENT -> ()
  | Ok _ -> Alcotest.fail "cached client saw a stale directory"
  | Error e -> Alcotest.failf "unexpected %s" (Errno.to_string e));
  ignore (ok_fs "c1 sees /e" (fs1.Vfs.getattr "/e"))

(* {2 Client strategy selection} *)

let test_client_consistent_strategy_placement () =
  let ring = Dufs.Consistent_hash.create [ 0; 1; 2 ] in
  let _, _, client, fs, mount_ops = make ~backends:3 ~strategy:(Mapping.Consistent ring) () in
  for i = 0 to 59 do
    ok_fs "create" (fs.Vfs.create (Printf.sprintf "/f%02d" i) ~mode:0o644)
  done;
  (* the physical placement follows the ring, not mod-N *)
  check_int "all placed" 60
    (Array.fold_left (fun acc m -> acc + (m.Vfs.statfs ()).Vfs.files) 0 mount_ops);
  (match Client.strategy client with
  | Mapping.Consistent _ -> ()
  | Mapping.Md5_mod -> Alcotest.fail "strategy lost");
  let gen = Fid.Gen.create ~client_id:1234L in
  let fid = Fid.Gen.next gen in
  check_int "locate follows the ring"
    (Dufs.Consistent_hash.lookup ring (Fid.to_bytes fid))
    (Client.locate client fid)

let test_client_rejects_bad_ring () =
  let ring = Dufs.Consistent_hash.create [ 0; 5 ] in
  Alcotest.check_raises "node out of range"
    (Invalid_argument "Client.mount: ring node outside the backend range") (fun () ->
      let service = Zk.Zk_local.create () in
      ignore
        (Client.mount
           ~coord:(Zk.Zk_local.session service)
           ~backends:
             (Array.init 2 (fun _ ->
                  Memfs.ops (Memfs.create ~clock:(fun () -> 0.) ())))
           ~strategy:(Mapping.Consistent ring) ()))

let () =
  Alcotest.run "dufs-tools"
    [ ( "namespace",
        [ Alcotest.test_case "scan" `Quick test_namespace_scan;
          Alcotest.test_case "files" `Quick test_namespace_files ] );
      ( "fsck",
        [ Alcotest.test_case "clean system" `Quick test_fsck_clean_system;
          Alcotest.test_case "missing physical" `Quick test_fsck_detects_missing_physical;
          Alcotest.test_case "orphan physical" `Quick test_fsck_detects_orphan;
          Alcotest.test_case "misplaced physical" `Quick test_fsck_detects_misplaced;
          Alcotest.test_case "undecodable metadata" `Quick
            test_fsck_detects_undecodable_meta;
          Alcotest.test_case "create rollback failure flags orphan" `Quick
            test_create_rollback_failure_flags_orphan ] );
      ( "rebalancer",
        [ Alcotest.test_case "md5 grow" `Quick test_rebalance_md5_grow;
          Alcotest.test_case "consistent hashing moves less" `Quick
            test_rebalance_consistent_moves_less;
          Alcotest.test_case "data survives" `Quick test_rebalance_data_survives;
          Alcotest.test_case "empty plan" `Quick test_rebalance_empty_plan;
          Alcotest.test_case "crash window recorded and repaired" `Quick
            test_rebalance_crash_window_is_recorded_and_repaired ] );
      ( "cache",
        [ Alcotest.test_case "hits and misses" `Quick test_cache_hits_and_misses;
          Alcotest.test_case "remote invalidation" `Quick test_cache_remote_invalidation;
          Alcotest.test_case "negative entries" `Quick test_cache_negative_entries;
          Alcotest.test_case "own writes visible" `Quick test_cache_own_writes_visible;
          Alcotest.test_case "children invalidation" `Quick
            test_cache_children_invalidation;
          Alcotest.test_case "lru bound" `Quick test_cache_lru_bound;
          Alcotest.test_case "queue stays bounded" `Quick
            test_cache_queue_stays_bounded;
          Alcotest.test_case "dufs end-to-end" `Quick test_cache_dufs_end_to_end ] );
      ( "strategy",
        [ Alcotest.test_case "consistent placement" `Quick
            test_client_consistent_strategy_placement;
          Alcotest.test_case "rejects bad ring" `Quick test_client_rejects_bad_ring ] ) ]
