(* Tests for the shard router: bounded-load placement, the routing
   invariant (parent-directory co-location), full client-surface parity
   against the single-tree service, lazy stub semantics, the
   cross-shard atomicity boundary (two-phase deletes, multi rollback,
   orphan notes + Fsck repair), and the sharded failure path. *)

module Router = Zk.Shard_router
module Zk_local = Zk.Zk_local
module Zk_client = Zk.Zk_client
module Zerror = Zk.Zerror
module Ztree = Zk.Ztree
module Errno = Fuselike.Errno
module Memfs = Fuselike.Memfs
module Systems = Scenarios.Systems

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ok label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" label (Zerror.to_string e)

let ok_fs label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" label (Errno.to_string e)

let err = Zerror.to_string

(* {2 Placement} *)

let test_placement_balance_and_stability () =
  let p = Router.make_placement ~shards:4 () in
  let keys = List.init 100 (Printf.sprintf "/dir%02d") in
  let first = List.map (fun k -> (k, Router.place p k)) keys in
  let loads = Array.make 4 0 in
  List.iter (fun (_, s) -> loads.(s) <- loads.(s) + 1) first;
  let mx = Array.fold_left max 0 loads
  and mn = Array.fold_left min max_int loads in
  check_bool "per-shard key counts within one" true (mx - mn <= 1);
  (* memoized: a key's shard never moves *)
  List.iter (fun (k, s) -> check_int ("stable " ^ k) s (Router.place p k)) first

let test_placement_loose_eps_follows_the_ring () =
  let p = Router.make_placement ~eps:1000. ~shards:2 () in
  let ring = Router.placement_ring p in
  List.iter
    (fun k ->
      check_int ("ring choice " ^ k) (Zk.Consistent_hash.lookup ring k)
        (Router.place p k))
    (List.init 50 (Printf.sprintf "/k%d"))

(* The cap is the ceil formula alone, checked after every placement —
   including placements replayed over a widened ring by a reshard and
   fresh keys placed after the flip. *)
let prop_bounded_load =
  let gen =
    QCheck2.Gen.(
      triple (int_range 1 8) (float_range 0. 2.)
        (list_size (int_range 1 150) (int_range 0 999)))
  in
  QCheck2.Test.make
    ~name:"per-shard load never exceeds ceil((1+eps)*total/shards)" ~count:200
    gen (fun (shards, eps, keys) ->
      let p = Router.make_placement ~eps ~shards () in
      let ok = ref true in
      let check_cap () =
        let total = Router.keys_assigned p in
        let n = Router.placement_shards p in
        let cap =
          int_of_float (ceil ((1. +. eps) *. float_of_int total /. float_of_int n))
        in
        Array.iter (fun l -> if l > cap then ok := false) (Router.placement_loads p)
      in
      List.iter
        (fun k ->
          ignore (Router.place p (Printf.sprintf "/d%03d" k));
          check_cap ())
        keys;
      (* widen the ring: the migration plan commits new loads that must
         respect the new cap, before and after the per-key flips *)
      let moves = Router.prepare_reshard p ~shards:(shards + 2) in
      check_cap ();
      List.iter (fun (key, _src, dst) -> Router.finish_migration p key ~dst) moves;
      List.iter
        (fun k ->
          ignore (Router.place p (Printf.sprintf "/e%03d" k));
          check_cap ())
        keys;
      !ok)

let test_note_log_capped_and_counters_split () =
  let s = Router.fresh_stats () in
  Router.note s "first";
  check_int "informational note is not a failure" 0 s.Router.rollback_failures;
  check_int "total counts it" 1 s.Router.orphan_notes_total;
  for i = 2 to 250 do
    Router.note s (Printf.sprintf "n%d" i)
  done;
  check_int "log capped at 200" 200 (List.length s.Router.orphan_notes);
  check_int "overflow counted" 50 s.Router.orphan_notes_dropped;
  check_int "total keeps counting" 250 s.Router.orphan_notes_total;
  (match s.Router.orphan_notes with
  | newest :: _ -> Alcotest.(check string) "newest kept" "n250" newest
  | [] -> Alcotest.fail "note log empty");
  check_bool "oldest rotated out" true
    (not (List.mem "first" s.Router.orphan_notes));
  Router.note_failure s "partial commit";
  check_int "failure note bumps the counter" 1 s.Router.rollback_failures;
  check_int "and lands in the log too" 251 s.Router.orphan_notes_total

let test_placement_rejects_bad_args () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  raises (fun () -> Router.make_placement ~shards:0 ());
  raises (fun () -> Router.make_placement ~eps:(-0.1) ~shards:2 ());
  raises (fun () -> Router.make_ring ~shards:0)

(* {2 Routing invariant} *)

let test_sibling_colocation () =
  let t = Router.local ~shards:4 () in
  let h = Router.session t () in
  ignore (ok "mkdir" (h.Zk_client.create "/app" ~data:""));
  let child i = Printf.sprintf "/app/n%02d" i in
  for i = 0 to 19 do
    ignore (ok "create" (h.Zk_client.create (child i) ~data:"x"))
  done;
  let s0 = Router.home_shard t (child 0) in
  for i = 1 to 19 do
    check_int "siblings co-locate" s0 (Router.home_shard t (child i))
  done;
  check_int "every child in one listing" 20
    (List.length (ok "children" (h.Zk_client.children "/app")))

(* {2 Parity: Zk_local vs 1-shard vs 4-shard router}

   The same operation script runs against the plain single-tree service
   and routed deployments of 1 and 4 shards; the normalized transcripts
   must match byte for byte. Normalization keeps data, versions,
   ephemeralness, listings, returned paths and error codes; it excludes
   zxids, timestamps, session ids, and num_children/cversion of parent
   directories (documented stub drift). *)

type impl = {
  handle : Zk_client.handle;
  reopen : unit -> Zk_client.handle;
}

let mk_local () =
  let svc = Zk_local.create () in
  { handle = Zk_local.session svc; reopen = (fun () -> Zk_local.session svc) }

let mk_router shards =
  let t = Router.local ~shards () in
  { handle = Router.session t (); reopen = (fun () -> Router.session t ()) }

let stat_sig (st : Ztree.stat) =
  Printf.sprintf "v%d eph%b len%d" st.Ztree.version
    (st.Ztree.ephemeral_owner <> 0L)
    st.Ztree.data_length

let transcript (i : impl) =
  let h = i.handle in
  let out = ref [] in
  let p fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  let path label = function
    | Ok pa -> p "%s=ok:%s" label pa
    | Error e -> p "%s=err:%s" label (err e)
  in
  let unit label = function
    | Ok () -> p "%s=ok" label
    | Error e -> p "%s=err:%s" label (err e)
  in
  let get label = function
    | Ok (data, st) -> p "%s=ok:%s|%s" label data (stat_sig st)
    | Error e -> p "%s=err:%s" label (err e)
  in
  let exists label = function
    | Ok (Some st) -> p "%s=some:%s" label (stat_sig st)
    | Ok None -> p "%s=none" label
    | Error e -> p "%s=err:%s" label (err e)
  in
  let names label = function
    | Ok l -> p "%s=ok:%s" label (String.concat "," (List.sort compare l))
    | Error e -> p "%s=err:%s" label (err e)
  in
  let listing label = function
    | Ok l ->
      p "%s=ok:%s" label
        (String.concat ","
           (List.map (fun (n, d, st) -> n ^ ":" ^ d ^ ":" ^ stat_sig st) l))
    | Error e -> p "%s=err:%s" label (err e)
  in
  let multi label = function
    | Ok items ->
      p "%s=ok:%s" label
        (String.concat ","
           (List.map
              (function
                | Zk.Txn.Created pa -> "created:" ^ pa
                | Zk.Txn.Deleted -> "deleted"
                | Zk.Txn.Data_set -> "set"
                | Zk.Txn.Checked -> "checked")
              items))
    | Error e -> p "%s=err:%s" label (err e)
  in
  (* -- hierarchy and basic ops -- *)
  path "mk proj" (h.Zk_client.create "/proj" ~data:"");
  path "mk a" (h.Zk_client.create "/proj/a" ~data:"");
  path "mk b" (h.Zk_client.create "/proj/b" ~data:"");
  path "mk f0" (h.Zk_client.create "/proj/a/f0" ~data:"alpha");
  path "mk f1" (h.Zk_client.create "/proj/b/f1" ~data:"beta");
  path "dup" (h.Zk_client.create "/proj/a/f0" ~data:"again");
  path "orphan parent" (h.Zk_client.create "/nope/x" ~data:"");
  get "get f0" (h.Zk_client.get "/proj/a/f0");
  unit "set f0" (h.Zk_client.set "/proj/a/f0" ~data:"alpha2");
  get "get f0 v1" (h.Zk_client.get "/proj/a/f0");
  unit "set badv" (h.Zk_client.set ~version:9 "/proj/a/f0" ~data:"no");
  unit "set goodv" (h.Zk_client.set ~version:1 "/proj/a/f0" ~data:"alpha3");
  exists "exists f0" (h.Zk_client.exists "/proj/a/f0");
  exists "exists gone" (h.Zk_client.exists "/proj/a/nothing");
  (* -- sequential allocation stays per-directory -- *)
  path "seq0" (h.Zk_client.create ~sequential:true "/proj/a/s-" ~data:"");
  path "seq1" (h.Zk_client.create ~sequential:true "/proj/a/s-" ~data:"");
  path "seq2" (h.Zk_client.create ~sequential:true "/proj/b/s-" ~data:"");
  (* -- ephemerals -- *)
  path "mk eph" (h.Zk_client.create ~ephemeral:true "/proj/a/eph" ~data:"e");
  exists "exists eph" (h.Zk_client.exists "/proj/a/eph");
  path "child of eph" (h.Zk_client.create "/proj/a/eph/x" ~data:"");
  (* -- listings -- *)
  names "ls proj" (h.Zk_client.children "/proj");
  listing "lsd a" (h.Zk_client.children_with_data "/proj/a");
  names "ls missing" (h.Zk_client.children "/proj/nothing");
  (* -- deletes -- *)
  unit "rm nonempty" (h.Zk_client.delete "/proj/a");
  unit "rm badv" (h.Zk_client.delete ~version:9 "/proj/b/f1");
  unit "rm f1" (h.Zk_client.delete ~version:0 "/proj/b/f1");
  unit "rm gone" (h.Zk_client.delete "/proj/b/f1");
  (* -- multi: atomic within a directory, rejected whole on error -- *)
  multi "multi fail"
    (h.Zk_client.multi
       [ Zk_client.create_op "/proj/b/m0" ~data:"m";
         Zk_client.check_op ~version:9 "/proj/b" ]);
  exists "m0 rolled back" (h.Zk_client.exists "/proj/b/m0");
  multi "multi ok"
    (h.Zk_client.multi
       [ Zk_client.create_op "/proj/b/m0" ~data:"m";
         Zk_client.set_op "/proj/b/m0" ~data:"m2" ]);
  (* -- cross-parent multi (single-shard on Zk_local, grouped on the
        router); identical results on success -- *)
  multi "multi cross"
    (h.Zk_client.multi
       [ Zk_client.create_op "/proj/a/x0" ~data:"x";
         Zk_client.create_op "/proj/b/x1" ~data:"x";
         Zk_client.delete_op "/proj/b/m0" ]);
  (* -- multi_async: callback-delivered, same results -- *)
  let got = ref None in
  h.Zk_client.multi_async
    [ Zk_client.create_op "/proj/a/y0" ~data:"y";
      Zk_client.create_op "/proj/b/y1" ~data:"y" ]
    (fun r -> got := Some r);
  (match !got with
   | Some r -> multi "amulti" r
   | None -> p "amulti=pending");
  (* -- watches: delivery point and event identity -- *)
  let events = ref [] in
  let record (ev : Ztree.watch_event) =
    let kind =
      match ev.Ztree.kind with
      | Ztree.Node_created -> "created"
      | Ztree.Node_deleted -> "deleted"
      | Ztree.Node_data_changed -> "data"
      | Ztree.Node_children_changed -> "children"
    in
    events := (kind ^ ":" ^ ev.Ztree.path) :: !events
  in
  names "ls+watch b" (h.Zk_client.children_watch "/proj/b" record);
  get "get+watch f0" (h.Zk_client.get_watch "/proj/a/f0" record);
  listing "lsd+watch a" (h.Zk_client.children_with_data_watch "/proj/a" record);
  path "trip child watch" (h.Zk_client.create "/proj/b/w0" ~data:"");
  unit "trip data watch" (h.Zk_client.set "/proj/a/f0" ~data:"alpha4");
  p "events=%s" (String.concat "," (List.sort compare !events));
  (* -- session close reclaims ephemerals, persists the rest -- *)
  h.Zk_client.close ();
  let h2 = i.reopen () in
  exists "eph gone" (h2.Zk_client.exists "/proj/a/eph");
  exists "f0 kept" (h2.Zk_client.exists "/proj/a/f0");
  names "final ls a" (h2.Zk_client.children "/proj/a");
  names "final ls b" (h2.Zk_client.children "/proj/b");
  List.rev !out

let test_parity () =
  let reference = transcript (mk_local ()) in
  Alcotest.(check (list string))
    "1-shard router matches Zk_local" reference
    (transcript (mk_router 1));
  Alcotest.(check (list string))
    "4-shard router matches Zk_local" reference
    (transcript (mk_router 4))

(* {2 Lazy stubs and the cross-shard delete} *)

(* A directory whose children live on a different shard than its own
   primary — guaranteed to exist among a handful of names under "/"
   because bounded placement spreads fresh keys across shards. *)
let find_cross_dir t h =
  let rec go i =
    if i > 50 then Alcotest.fail "no cross-homed dir in 50 tries"
    else begin
      let d = Printf.sprintf "/x%02d" i in
      ignore (ok "mkdir" (h.Zk_client.create d ~data:""));
      if Router.home_shard t d <> Router.home_shard t (d ^ "/probe") then d
      else go (i + 1)
    end
  in
  go 0

let test_lazy_stub_lifecycle () =
  let t = Router.local ~shards:4 () in
  let h = Router.session t () in
  let d = find_cross_dir t h in
  let stats = Router.stats t in
  (* an existing-but-elsewhere-homed empty dir lists as empty, not as
     missing *)
  check_int "empty cross-homed listing" 0
    (List.length (ok "ls empty" (h.Zk_client.children d)));
  check_int "no stub for an empty dir" 0 (Router.live_stubs stats);
  let population = Router.logical_population t in
  ignore (ok "child" (h.Zk_client.create (d ^ "/c0") ~data:"x"));
  check_int "stub materialized on first child" 1 (Router.live_stubs stats);
  check_int "logical population counts the child, not the stub"
    (population + 1) (Router.logical_population t);
  Alcotest.(check (list string))
    "child visible" [ "c0" ]
    (ok "ls" (h.Zk_client.children d));
  (* the stub is invisible: the parent listing shows the dir once *)
  let name = String.sub d 1 (String.length d - 1) in
  check_int "dir listed exactly once" 1
    (List.length
       (List.filter (( = ) name) (ok "ls /" (h.Zk_client.children "/"))));
  (* ZNOTEMPTY comes from the stub side, where the children are *)
  (match h.Zk_client.delete d with
   | Error Zerror.ZNOTEMPTY -> ()
   | Ok () -> Alcotest.fail "delete of a non-empty dir succeeded"
   | Error e -> Alcotest.failf "expected ZNOTEMPTY, got %s" (err e));
  ignore (ok "rm child" (h.Zk_client.delete (d ^ "/c0")));
  let before = stats.Router.cross_shard_deletes in
  ok "rmdir" (h.Zk_client.delete d);
  check_int "two-phase delete counted" (before + 1)
    stats.Router.cross_shard_deletes;
  check_int "stub reclaimed" 0 (Router.live_stubs stats);
  check_bool "dir gone" true (ok "exists" (h.Zk_client.exists d) = None)

let test_cross_shard_delete_rollback_restores_the_stub () =
  let t = Router.local ~shards:4 () in
  let h = Router.session t () in
  let d = find_cross_dir t h in
  let stats = Router.stats t in
  ignore (ok "child" (h.Zk_client.create (d ^ "/c0") ~data:"x"));
  ignore (ok "rm child" (h.Zk_client.delete (d ^ "/c0")));
  check_int "stub standing" 1 (Router.live_stubs stats);
  (* primary refuses the versioned delete after the stub already went
     down: the router must put the stub back *)
  (match h.Zk_client.delete ~version:9 d with
   | Error Zerror.ZBADVERSION -> ()
   | Ok () -> Alcotest.fail "bad-version delete succeeded"
   | Error e -> Alcotest.failf "expected ZBADVERSION, got %s" (err e));
  check_int "rollback recorded" 1 stats.Router.rollbacks;
  check_int "no orphan note" 0 stats.Router.rollback_failures;
  check_int "stub restored" 1 (Router.live_stubs stats);
  (* the pair stayed consistent: the dir still takes children *)
  ignore (ok "child again" (h.Zk_client.create (d ^ "/c1") ~data:"x"));
  Alcotest.(check (list string))
    "listing intact" [ "c1" ]
    (ok "ls" (h.Zk_client.children d))

(* {2 Cross-shard multi: rollback leaves no trace, partial commits
   leave an orphan note} *)

(* Two dirs whose children live on shards lo < hi, so a multi grouped
   [lo; hi] commits lo's sub-transaction before hi's fails. *)
let find_ordered_pair t h =
  let dirs = List.init 8 (fun i -> Printf.sprintf "/p%d" i) in
  List.iter (fun d -> ignore (ok "mkdir" (h.Zk_client.create d ~data:""))) dirs;
  let shard_of d = Router.home_shard t (d ^ "/probe") in
  let sorted =
    List.sort (fun a b -> compare (shard_of a) (shard_of b)) dirs
  in
  let lo = List.hd sorted and hi = List.hd (List.rev sorted) in
  if shard_of lo = shard_of hi then Alcotest.fail "no shard spread over 8 dirs";
  (lo, hi)

let test_cross_shard_multi_rollback_no_orphans () =
  let t = Router.local ~shards:4 () in
  let h = Router.session t () in
  let lo, hi = find_ordered_pair t h in
  let stats = Router.stats t in
  let population = Router.logical_population t in
  let counts = Router.node_counts t in
  (match
     h.Zk_client.multi
       [ Zk_client.create_op (lo ^ "/m0") ~data:"m";
         Zk_client.create_op (hi ^ "/m1") ~data:"m";
         Zk_client.check_op ~version:9 (hi ^ "/m1") ]
   with
   | Ok _ -> Alcotest.fail "doomed multi succeeded"
   | Error Zerror.ZBADVERSION -> ()
   | Error e -> Alcotest.failf "expected ZBADVERSION, got %s" (err e));
  check_int "cross-shard multi counted" 1 stats.Router.cross_shard_multis;
  check_int "rollback ran" 1 stats.Router.rollbacks;
  check_int "no partial commit" 0 stats.Router.rollback_failures;
  check_bool "created node removed" true
    (ok "exists" (h.Zk_client.exists (lo ^ "/m0")) = None);
  check_int "logical population unchanged" population
    (Router.logical_population t);
  (* raw counts may grow only by surviving stubs (lazily planted for
     the multi's cross-homed parents, kept by design) *)
  let grown =
    Array.fold_left ( + ) 0 (Router.node_counts t)
    - Array.fold_left ( + ) 0 counts
  in
  check_int "every surviving extra node is a live stub"
    (Router.live_stubs stats) grown

let test_cross_shard_multi_partial_commit_notes_orphan () =
  let t = Router.local ~shards:4 () in
  let h = Router.session t () in
  let lo, hi = find_ordered_pair t h in
  let stats = Router.stats t in
  ignore (ok "victim" (h.Zk_client.create (lo ^ "/keep") ~data:"k"));
  let population = Router.logical_population t in
  (* the delete commits on the low shard; the high shard's group then
     fails; a committed delete cannot be rolled back *)
  (match
     h.Zk_client.multi
       [ Zk_client.delete_op (lo ^ "/keep");
         Zk_client.check_op ~version:9 hi ]
   with
   | Ok _ -> Alcotest.fail "doomed multi succeeded"
   | Error _ -> ());
  check_int "partial commit recorded" 1 stats.Router.rollback_failures;
  check_bool "orphan note names the work item" true
    (stats.Router.orphan_notes <> []);
  check_int "the committed delete shows in the accounting"
    (population - 1) (Router.logical_population t);
  (* repair per the note: reinstate the deleted node *)
  ignore (ok "repair" (h.Zk_client.create (lo ^ "/keep") ~data:"k"));
  check_int "accounting balances after repair" population
    (Router.logical_population t)

(* The same partial-commit failure seen from DUFS: the znode deleted by
   the committed low-shard group leaves its physical file orphaned —
   exactly what Fsck reports and repairs. *)
let test_fsck_repairs_after_partial_multi () =
  let t = Router.local ~shards:4 () in
  let coord = Router.session t () in
  let mounts =
    Array.init 2 (fun _ -> Memfs.create ~clock:(fun () -> 0.) ())
  in
  let mount_ops = Array.map Memfs.ops mounts in
  Array.iter
    (fun ops ->
      ok_fs "format" (Dufs.Physical.format Dufs.Physical.default_layout ops))
    mount_ops;
  let client = Dufs.Client.mount ~coord ~backends:mount_ops () in
  let fs = Dufs.Client.ops client in
  ok_fs "mkdir" (fs.Fuselike.Vfs.mkdir "/proj" ~mode:0o755);
  for i = 0 to 7 do
    let dir = Printf.sprintf "/d%d" i in
    ok_fs "mkdir" (fs.Fuselike.Vfs.mkdir dir ~mode:0o755);
    ok_fs "create" (fs.Fuselike.Vfs.create (dir ^ "/f") ~mode:0o644)
  done;
  let scan () =
    ok "fsck scan" (Dufs.Fsck.scan ~coord ~backends:mount_ops ())
  in
  check_bool "sharded namespace starts clean" true (Dufs.Fsck.is_clean (scan ()));
  (* order a victim file and a failing check across two shards *)
  let zdir i = Printf.sprintf "/dufs/d%d" i in
  let shard_of i = Router.home_shard t (zdir i ^ "/probe") in
  let vi, ci =
    let idx = List.init 8 Fun.id in
    let lo = List.fold_left (fun a b -> if shard_of b < shard_of a then b else a) 0 idx in
    let hi = List.fold_left (fun a b -> if shard_of b > shard_of a then b else a) 0 idx in
    (lo, hi)
  in
  check_bool "two shards involved" true (shard_of vi < shard_of ci);
  (match
     coord.Zk_client.multi
       [ Zk_client.delete_op (zdir vi ^ "/f");
         Zk_client.check_op ~version:9 (zdir ci ^ "/f") ]
   with
   | Ok _ -> Alcotest.fail "doomed multi succeeded"
   | Error _ -> ());
  check_bool "router noted the partial commit" true
    ((Router.stats t).Router.rollback_failures > 0);
  let report = scan () in
  check_bool "fsck sees the orphaned physical" true
    (List.exists
       (function Dufs.Fsck.Orphan_physical _ -> true | _ -> false)
       report.Dufs.Fsck.issues);
  let repair = Dufs.Fsck.repair ~backends:mount_ops report in
  check_int "orphan deleted" 1 repair.Dufs.Fsck.deleted;
  check_bool "clean after repair" true (Dufs.Fsck.is_clean (scan ()))

(* {2 The sharded failure path: exactly-once under shard-leader crash} *)

let test_sharded_mdtest_survives_shard_leader_crash () =
  (* shard 1 loses its leader plus two followers mid file-create and
     sits below quorum past the request timeout; shard 0 never falters.
     The run must stay error-free, answer every retried write from the
     dedup table, and account for each znode on its shard. *)
  let plan =
    match
      Faults.Faultplan.parse
        "crash-leader@shard=1@file-create+0.02;crash=1/1@file-create+0.05;\
         crash=1/2@file-create+0.08;restart-all@file-create+1.2"
    with
    | Ok plan -> plan
    | Error msg -> Alcotest.failf "plan: %s" msg
  in
  let spec =
    { Systems.zk_servers = 5; backends = 2; backend_kind = Systems.Lustre }
  in
  let run =
    Systems.mdtest_sharded_faulted ~dirs_per_proc:40 ~files_per_proc:40
      ~config_adjust:(fun c ->
        { c with Zk.Ensemble.election_timeout = 0.2; request_timeout = 0.3 })
      ~spec ~shards:2 ~procs:64 ~plan ()
  in
  check_int "mdtest completes error-free" 0
    run.Systems.results.Mdtest.Runner.errors;
  check_int "all four fault events fired" 4 run.Systems.faults_fired;
  check_bool "retried writes answered from the dedup table" true
    (run.Systems.dedup_hits > 0);
  check_bool "the crashed shard produced the dedup hits" true
    (run.Systems.dedup_hits_by_shard.(1) > 0);
  check_int "per-shard dedup sums to the total" run.Systems.dedup_hits
    (Array.fold_left ( + ) 0 run.Systems.dedup_hits_by_shard);
  check_int "logical znode population exact"
    run.Systems.expected_logical_znodes run.Systems.logical_znodes_at_stat;
  check_int "per-shard counts compose the logical population"
    run.Systems.logical_znodes_at_stat
    (Array.fold_left (fun a n -> a + (n - 1)) 0 run.Systems.per_shard_znodes
    - run.Systems.live_stubs_at_stat);
  check_bool "both shards committed writes" true
    (Array.for_all (fun w -> w > 0) run.Systems.writes_committed_by_shard);
  check_int "per-shard writes sum to the total" run.Systems.writes_committed
    (Array.fold_left ( + ) 0 run.Systems.writes_committed_by_shard)

let () =
  Alcotest.run "shard_router"
    [ ( "placement",
        [ Alcotest.test_case "bounded load: balance and stability" `Quick
            test_placement_balance_and_stability;
          Alcotest.test_case "loose eps follows the ring" `Quick
            test_placement_loose_eps_follows_the_ring;
          Alcotest.test_case "rejects bad arguments" `Quick
            test_placement_rejects_bad_args;
          QCheck_alcotest.to_alcotest prop_bounded_load ] );
      ( "notes",
        [ Alcotest.test_case "log capped, counters split" `Quick
            test_note_log_capped_and_counters_split ] );
      ( "routing",
        [ Alcotest.test_case "siblings co-locate" `Quick test_sibling_colocation ] );
      ( "parity",
        [ Alcotest.test_case "Zk_local vs 1-shard vs 4-shard" `Quick test_parity ] );
      ( "stubs",
        [ Alcotest.test_case "lazy stub lifecycle" `Quick test_lazy_stub_lifecycle;
          Alcotest.test_case "delete rollback restores the stub" `Quick
            test_cross_shard_delete_rollback_restores_the_stub ] );
      ( "multi",
        [ Alcotest.test_case "rollback leaves no orphans" `Quick
            test_cross_shard_multi_rollback_no_orphans;
          Alcotest.test_case "partial commit notes an orphan" `Quick
            test_cross_shard_multi_partial_commit_notes_orphan;
          Alcotest.test_case "fsck repairs after a partial multi" `Quick
            test_fsck_repairs_after_partial_multi ] );
      ( "faults",
        [ Alcotest.test_case "mdtest survives a shard-leader crash" `Slow
            test_sharded_mdtest_survives_shard_leader_crash ] ) ]
